(* Standalone hunt daemon binary — the same service as `avis_cli huntd`.

   Note on journals: memo keys are fingerprinted by the binary that
   computes them, so a journal written by avis_huntd serves avis_huntd
   (and its forked workers), while `avis_cli huntd` shares its journal
   with in-process `avis_cli hunt` runs. Pick one per journal file. *)

let () =
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.v
          (Cmdliner.Cmd.info "avis_huntd" ~version:"1.0.0"
             ~doc:"Avis hunt daemon: campaign hunts as a service")
          Huntd_cmd.term))
