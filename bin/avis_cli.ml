(* Command-line front end for the Avis reproduction: fly missions, hunt for
   sensor bugs, replay findings, and browse the bug study. *)

open Cmdliner
open Avis_core

let policy_of_string = function
  | "apm" | "ardupilot" -> Ok Avis_firmware.Policy.apm
  | "px4" -> Ok Avis_firmware.Policy.px4
  | s -> Error (`Msg (Printf.sprintf "unknown firmware %S (apm|px4)" s))

let policy_conv =
  Arg.conv
    ( policy_of_string,
      fun ppf p -> Format.pp_print_string ppf p.Avis_firmware.Policy.name )

let workload_conv =
  Arg.conv
    ( (fun s ->
        match Workload.by_name s with
        | Some w -> Ok w
        | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown workload %S (quickstart|manual-box|auto-box|fence-mission)"
                 s))),
      fun ppf w -> Format.pp_print_string ppf w.Workload.name )

let fault_conv =
  (* "<kind>[index]@<seconds>", e.g. "gps[0]@12.5"; "<kind>@t" fails every
     instance of the kind. Parsing and printing live in {!Fault_spec} so
     the round-trip is testable outside cmdliner. *)
  let parse s =
    match Fault_spec.parse s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  let print ppf f = Format.pp_print_string ppf (Fault_spec.to_string f) in
  Arg.conv (parse, print)

let faults_to_plan faults =
  List.concat_map
    (fun { Fault_spec.kind; index; at } ->
      let indices =
        match index with
        | Some i -> [ i ]
        | None ->
          List.init
            (let c = Avis_sensors.Suite.iris_complement in
             match kind with
             | Avis_sensors.Sensor.Accelerometer -> c.Avis_sensors.Suite.accelerometers
             | Avis_sensors.Sensor.Gyroscope -> c.Avis_sensors.Suite.gyroscopes
             | Avis_sensors.Sensor.Compass -> c.Avis_sensors.Suite.compasses
             | Avis_sensors.Sensor.Gps -> c.Avis_sensors.Suite.gps_receivers
             | Avis_sensors.Sensor.Barometer -> c.Avis_sensors.Suite.barometers
             | Avis_sensors.Sensor.Battery -> c.Avis_sensors.Suite.batteries)
            Fun.id
      in
      List.map
        (fun index ->
          { Avis_hinj.Hinj.sensor = { Avis_sensors.Sensor.kind; index }; at })
        indices)
    faults

let firmware_arg =
  Arg.(value & opt policy_conv Avis_firmware.Policy.apm
       & info [ "f"; "firmware" ] ~docv:"FIRMWARE" ~doc:"Firmware personality (apm|px4).")

let workload_arg =
  Arg.(value & opt workload_conv Workload.auto_box
       & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload to execute.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.")

(* fly *)

let fly policy workload seed faults =
  let base = Avis_sitl.Sim.default_config policy in
  let config =
    {
      base with
      Avis_sitl.Sim.seed;
      max_duration = workload.Workload.nominal_duration +. 60.0;
      environment = workload.Workload.environment ();
    }
  in
  let sim = Avis_sitl.Sim.create ~plan:(faults_to_plan faults) config in
  let passed = Workload.execute workload sim in
  let outcome = Avis_sitl.Sim.outcome sim ~workload_passed:passed in
  Printf.printf "workload %s on %s: %s after %.1f s\n" workload.Workload.name
    policy.Avis_firmware.Policy.name
    (if passed then "PASSED" else "FAILED")
    outcome.Avis_sitl.Sim.duration;
  (match outcome.Avis_sitl.Sim.crash with
  | Some e ->
    Printf.printf "crash: %s\n" (Format.asprintf "%a" Avis_physics.World.pp_contact e)
  | None -> ());
  Printf.printf "mode transitions:\n";
  List.iter
    (fun tr ->
      Printf.printf "  %6.2f s  %s -> %s\n" tr.Avis_hinj.Hinj.time
        tr.Avis_hinj.Hinj.from_mode tr.Avis_hinj.Hinj.to_mode)
    outcome.Avis_sitl.Sim.transitions;
  (match outcome.Avis_sitl.Sim.triggered_bugs with
  | [] -> ()
  | bugs ->
    Printf.printf "flawed code paths exercised: %s\n"
      (String.concat ", "
         (List.map
            (fun id -> (Avis_firmware.Bug.info id).Avis_firmware.Bug.report)
            bugs)));
  Printf.printf "sensor reads intercepted: %d\n" outcome.Avis_sitl.Sim.sensor_reads

let fly_cmd =
  let faults =
    Arg.(value & opt_all fault_conv []
         & info [ "fail" ] ~docv:"SENSOR@T"
             ~doc:"Inject a clean sensor failure, e.g. gps@12.5 or gyroscope[1]@30.")
  in
  Cmd.v
    (Cmd.info "fly" ~doc:"Fly one simulated mission, optionally injecting failures.")
    Term.(const fly $ firmware_arg $ workload_arg $ seed_arg $ faults)

(* hunt *)

(* First ^C asks every in-flight campaign to stop at its next scheduling
   boundary (partial results and the trace still get written, journal
   records are marked incomplete); a second ^C aborts immediately. *)
let exit_interrupted = 130

let install_interrupt_handler () =
  let again = ref false in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if !again then exit exit_interrupted
         else begin
           again := true;
           Campaign.request_interrupt ();
           prerr_endline
             "\n[avis] interrupt: stopping at the next scheduling boundary, \
              writing partial results (^C again to abort now)"
         end))

(* Resolving the name eagerly (before any campaign starts) lets a typo in
   a multi-approach hunt fail before budget is spent on the others. The
   name table itself lives in {!Avis_server.Worker} so the daemon resolves
   identically. *)
let strategy_of_name name =
  match Avis_server.Worker.strategy_of_name name with
  | Some strategy -> strategy
  | None -> invalid_arg ("unknown approach " ^ name)

let hunt policy workload seed approaches budget jobs lanes verbose artefacts trace
    journal_path =
  (* Tracing spans every campaign, simulation, cache serve and search
     decision; the file is Chrome trace format (open in Perfetto). *)
  if trace <> None then Avis_util.Trace.set_enabled true;
  install_interrupt_handler ();
  let journal = Option.map (fun path -> Run_journal.open_ path) journal_path in
  let approaches =
    String.split_on_char ',' approaches
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  (* Fail on a typo before spending any budget on the other approaches —
     and as a usage error, not an "internal error" backtrace. *)
  (try
     if approaches = [] then invalid_arg "no approach given";
     List.iter
       (fun name ->
         let (_ : Search.context -> Search.t) = strategy_of_name name in
         ())
       approaches
   with Invalid_argument msg ->
     Printf.eprintf "avis: %s (avis|strat-bfi|bfi|random|dfs|bfs)\n" msg;
     exit Cmd.Exit.cli_error);
  let jobs =
    max 1 (match jobs with Some j -> j | None -> Avis_util.Pool.jobs_of_env ())
  in
  Printf.printf
    "hunting with %s on %s / %s (budget %.0f s wall-clock each, %d domain(s))...\n%!"
    (String.concat ", " approaches)
    policy.Avis_firmware.Policy.name workload.Workload.name budget jobs;
  let hunt_one name =
    let label =
      Printf.sprintf "%s/%s/%s" name policy.Avis_firmware.Policy.name
        workload.Workload.name
    in
    let started = Avis_util.Metrics.now_s () in
    let config =
      {
        (Campaign.default_config policy workload) with
        Campaign.budget_s = budget;
        seed =
          Campaign.cell_seed ~base:seed ~policy:policy.Avis_firmware.Policy.name
            ~workload:workload.Workload.name ~approach:name ();
      }
    in
    let outcome =
      match Option.map (fun j -> Campaign.journal_memo j config ~approach:name) journal with
      | Some (Some record) -> `Memo record
      | Some None | None -> (
        match
          Campaign.run_supervised ?lanes ?journal ~journal_approach:name config
            ~strategy:(strategy_of_name name)
        with
        | Campaign.Completed r -> `Live r
        | Campaign.Quarantined e -> `Quarantine e)
    in
    (match (journal, outcome) with
    | Some j, (`Live _ | `Quarantine _) when Campaign.interrupted () ->
      Run_journal.record_interrupted j
        ~key:(Campaign.journal_key j config ~approach:name)
        ~label
    | _ -> ());
    let wall_s = Avis_util.Metrics.now_s () -. started in
    let snapshot =
      let zero =
        {
          Avis_util.Metrics.cell = label; simulations = 0; inferences = 0;
          spent_s = 0.0; budget_s = budget; findings = 0; wall_s;
          minor_words = 0.0; major_collections = 0; store_hits = 0;
          store_misses = 0; store_bytes = 0;
        }
      in
      match outcome with
      | `Live result ->
        let store_hits, store_misses, store_bytes =
          match result.Campaign.cache_stats with
          | Some s -> Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
          | None -> (0, 0, 0)
        in
        {
          zero with
          Avis_util.Metrics.simulations = result.Campaign.simulations;
          inferences = result.Campaign.inferences;
          spent_s = result.Campaign.wall_clock_spent_s;
          findings = Campaign.unsafe_count result;
          minor_words = result.Campaign.minor_words;
          major_collections = result.Campaign.major_collections;
          store_hits;
          store_misses;
          store_bytes;
        }
      | `Memo record ->
        {
          zero with
          Avis_util.Metrics.simulations = record.Run_journal.simulations;
          inferences = record.Run_journal.inferences;
          spent_s = Run_journal.spent_s record;
          findings = List.length record.Run_journal.findings;
        }
      | `Quarantine _ -> zero
    in
    let event =
      match outcome with
      | `Live _ -> "done"
      | `Memo _ -> "memo"
      | `Quarantine _ -> "quarantined"
    in
    Avis_util.Metrics.emit ~event snapshot;
    (name, outcome, snapshot)
  in
  (* Predicted-longest cells first (LPT): the journal's recorded
     durations, when present, keep a long cell from starting last and
     straggling. Per-cell seeding keeps the output bytes identical to
     arrival order. *)
  let cost =
    match journal with
    | Some j -> Cost_model.of_journal j
    | None -> Cost_model.create ()
  in
  let weight name =
    Cost_model.predict cost
      ~label:
        (Printf.sprintf "%s/%s/%s" name policy.Avis_firmware.Policy.name
           workload.Workload.name)
      ~budget_s:budget
  in
  let results = Avis_util.Pool.map_lpt ~jobs ~weight hunt_one approaches in
  let memo_bucket_counts findings =
    List.fold_left
      (fun acc (f : Run_journal.finding) ->
        match List.assoc_opt f.Run_journal.bucket acc with
        | Some n -> (f.Run_journal.bucket, n + 1) :: List.remove_assoc f.Run_journal.bucket acc
        | None -> (f.Run_journal.bucket, 1) :: acc)
      [] findings
    |> List.rev
  in
  List.iter
    (fun (name, outcome, _) ->
      match outcome with
      | `Quarantine (e : Campaign.cell_error) ->
        Printf.printf "%s: QUARANTINED [%s] after %d attempt(s): %s\n" name
          e.Campaign.code e.Campaign.attempts e.Campaign.message
      | `Memo record ->
        Printf.printf
          "%s: %d unsafe conditions in %d simulations (%d inferences, %.0f s \
           spent) [served from journal]\n"
          name
          (List.length record.Run_journal.findings)
          record.Run_journal.simulations record.Run_journal.inferences
          (Run_journal.spent_s record);
        List.iter
          (fun (bucket, n) -> Printf.printf "  %-8s %d\n" bucket n)
          (memo_bucket_counts record.Run_journal.findings);
        if verbose then
          List.iteri
            (fun i (f : Run_journal.finding) ->
              Printf.printf "[%02d] sim#%d %s\n" i f.Run_journal.simulation_index
                f.Run_journal.description)
            record.Run_journal.findings;
        if artefacts <> None then
          Printf.printf
            "(journal memos carry no profile; rerun without --journal to \
             write artefacts)\n"
      | `Live result -> (
        Printf.printf
          "%s: %d unsafe conditions in %d simulations (%d inferences, %.0f s spent)\n"
          result.Campaign.approach
          (Campaign.unsafe_count result)
          result.Campaign.simulations result.Campaign.inferences
          result.Campaign.wall_clock_spent_s;
        List.iter
          (fun (bucket, n) ->
            Printf.printf "  %-8s %d\n" (Report.bucket_label bucket) n)
          (Campaign.count_by_bucket result);
        if verbose then
          List.iteri
            (fun i f ->
              Printf.printf "[%02d] sim#%d %s\n" i f.Campaign.simulation_index
                (Report.describe f.Campaign.report))
            result.Campaign.findings;
        match artefacts with
        | None -> ()
        | Some dir ->
          let base =
            Filename.concat dir
              (policy.Avis_firmware.Policy.name ^ "-" ^ workload.Workload.name
             ^ "-" ^ name)
          in
          Export.write_file ~path:(base ^ "-campaign.json")
            (Avis_util.Json.to_string_pretty (Export.campaign_to_json result));
          Export.write_file ~path:(base ^ "-modes.dot")
            (Export.mode_graph_to_dot (Monitor.graph result.Campaign.profile));
          Printf.printf "artefacts written under %s\n" dir))
    results;
  (match results with
  | [] | [ _ ] -> ()
  | _ -> Avis_util.Metrics.summary (List.map (fun (_, _, s) -> s) results));
  (match trace with
  | None -> ()
  | Some path ->
    Avis_util.Trace.write_chrome ~path;
    Printf.printf
      "trace: wrote %s (%d events; open in https://ui.perfetto.dev or \
       chrome://tracing)\n"
      path
      (Avis_util.Trace.event_count ());
    print_string (Avis_util.Table.render (Avis_util.Trace.summary_table ()));
    print_newline ());
  if Campaign.interrupted () then begin
    prerr_endline "[avis] interrupted: partial results above";
    exit exit_interrupted
  end

let hunt_cmd =
  let approach =
    Arg.(value & opt string "avis"
         & info [ "a"; "approach" ] ~docv:"APPROACHES"
             ~doc:"Comma-separated search strategies \
                   (avis|strat-bfi|bfi|random|dfs|bfs). Each runs as its own \
                   campaign with its own budget and a seed derived from \
                   --seed and the cell's labels.")
  in
  let budget =
    Arg.(value & opt float 1200.0
         & info [ "b"; "budget" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget in seconds (the paper uses 7200).")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Campaigns to run in parallel (domains). Defaults to \
                   \\$AVIS_JOBS, then to the hardware's recommendation. \
                   Results do not depend on N.")
  in
  let lanes =
    Arg.(value & opt (some int) None
         & info [ "lanes" ] ~docv:"N"
             ~doc:"Scenarios to keep in flight per campaign, stepped \
                   through a structure-of-arrays lane batch. Defaults to \
                   \\$AVIS_LANES, then 1 (unbatched). With random search \
                   the findings and budget ledger are bit-identical to \
                   --lanes 1.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every finding.")
  in
  let artefacts =
    Arg.(value & opt (some string) None
         & info [ "artefacts" ] ~docv:"DIR"
             ~doc:"Write the campaign result (JSON) and mode graph (DOT) under this directory.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record every campaign, simulation, cache serve and \
                   search decision as spans, and write them to FILE in \
                   Chrome trace format (open in chrome://tracing or \
                   https://ui.perfetto.dev); a per-span summary table is \
                   printed too.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Resumable run journal (JSONL). Completed cells found in \
                   the journal are served as memos instead of re-running; \
                   newly completed cells are appended. A journal written by \
                   a different build of this binary is renamed aside and \
                   started fresh.")
  in
  Cmd.v
    (Cmd.info "hunt" ~doc:"Run model-checking campaigns against the firmware.")
    Term.(const hunt $ firmware_arg $ workload_arg $ seed_arg $ approach $ budget $ jobs $ lanes $ verbose $ artefacts $ trace $ journal)

(* huntd / submit / watch *)

let socket_arg =
  Arg.(value & opt string "avis-huntd.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"The hunt daemon's Unix-domain socket.")

let connect_daemon socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "avis: cannot connect to the daemon at %s: %s\n"
       socket_path (Unix.error_message e);
     exit Cmd.Exit.some_error);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

(* A daemon result printed exactly as `hunt` prints a live one: the
   record carries the same counts, spent seconds (by bits) and findings
   a local run would have produced, so cold, memo-served and
   resumed-after-a-crash submissions all render identical bytes. *)
let print_daemon_record ~verbose name (record : Run_journal.record) =
  Printf.printf
    "%s: %d unsafe conditions in %d simulations (%d inferences, %.0f s spent)\n"
    name
    (List.length record.Run_journal.findings)
    record.Run_journal.simulations record.Run_journal.inferences
    (Run_journal.spent_s record);
  List.iter
    (fun bucket ->
      let label = Report.bucket_label bucket in
      let n =
        List.length
          (List.filter
             (fun (f : Run_journal.finding) -> f.Run_journal.bucket = label)
             record.Run_journal.findings)
      in
      Printf.printf "  %-8s %d\n" label n)
    Report.all_buckets;
  if verbose then
    List.iteri
      (fun i (f : Run_journal.finding) ->
        Printf.printf "[%02d] sim#%d %s\n" i f.Run_journal.simulation_index
          f.Run_journal.description)
      record.Run_journal.findings

let submit policy workload seed approaches budget shards lanes verbose socket =
  let approaches =
    String.split_on_char ',' approaches
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let ic, oc = connect_daemon socket in
  output_string oc
    (Avis_server.Wire.render_request
       (Avis_server.Wire.Submit
          {
            Avis_server.Wire.firmware = policy.Avis_firmware.Policy.name;
            workload = workload.Workload.name;
            approaches;
            budget_s = budget;
            seed;
            lanes;
            shards;
          })
    ^ "\n");
  flush oc;
  ignore (shards : int);
  Printf.printf
    "submitting %s on %s / %s (budget %.0f s wall-clock each)...\n%!"
    (String.concat ", " approaches)
    policy.Avis_firmware.Policy.name workload.Workload.name budget;
  (* Stream: metrics lines relay to stderr (where `hunt` emits its own),
     cell results collect here and print in submission order on Done. *)
  let results = Hashtbl.create 8 in
  let rec loop req_id =
    match input_line ic with
    | exception End_of_file ->
      prerr_endline "[avis] submit: daemon closed the connection mid-hunt";
      exit Cmd.Exit.some_error
    | line ->
      if Avis_server.Wire.is_metrics_line line then begin
        Printf.eprintf "%s\n%!" line;
        loop req_id
      end
      else (
        match Avis_server.Wire.parse_response line with
        | Error e ->
          Printf.eprintf "[avis] submit: %s\n%!" e;
          loop req_id
        | Ok (Avis_server.Wire.Rejected { reason }) ->
          Printf.eprintf "avis: daemon rejected the hunt: %s\n" reason;
          exit Cmd.Exit.cli_error
        | Ok (Avis_server.Wire.Accepted { req; cells = _ }) -> loop (Some req)
        | Ok (Avis_server.Wire.Cell { req; approach; label; status })
          when req_id = Some req ->
          Hashtbl.replace results label (approach, status);
          loop req_id
        | Ok (Avis_server.Wire.Done { req; retries; quarantined })
          when req_id = Some req ->
          (retries, quarantined)
        | Ok _ -> loop req_id)
  in
  let retries, quarantined = loop None in
  List.iter
    (fun name ->
      let label =
        Printf.sprintf "%s/%s/%s" name policy.Avis_firmware.Policy.name
          workload.Workload.name
      in
      match Hashtbl.find_opt results label with
      | Some (_, Avis_server.Wire.Cell_done record)
      | Some (_, Avis_server.Wire.Cell_memo record) ->
        print_daemon_record ~verbose (Avis_server.Worker.display_name name)
          record
      | Some (_, Avis_server.Wire.Cell_quarantined { code; message; attempts })
        ->
        Printf.printf "%s: QUARANTINED [%s] after %d attempt(s): %s\n" name
          code attempts message
      | None -> Printf.printf "%s: no result reported\n" name)
    approaches;
  if retries > 0 || quarantined > 0 then
    Printf.eprintf
      "[avis] submit: daemon recovered from %d lost worker(s); %d cell(s) \
       quarantined\n%!"
      retries quarantined

let submit_cmd =
  let approach =
    Arg.(value & opt string "avis"
         & info [ "a"; "approach" ] ~docv:"APPROACHES"
             ~doc:"Comma-separated search strategies \
                   (avis|strat-bfi|bfi|random|dfs|bfs), one daemon cell \
                   each. Seeds derive from --seed and the cell's labels \
                   exactly as `hunt` derives them.")
  in
  let budget =
    Arg.(value & opt float 1200.0
         & info [ "b"; "budget" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget in seconds per cell.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Historical (pre-pull daemons sharded cells statically). \
                   Accepted and sent for wire compatibility; the daemon's \
                   pull-based dispatcher sizes workers from pending work \
                   and ignores it.")
  in
  let lanes =
    Arg.(value & opt (some int) None
         & info [ "lanes" ] ~docv:"N"
             ~doc:"Scenarios in flight per campaign inside the worker; \
                   defaults to the worker's \\$AVIS_LANES.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every finding.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a hunt to a running daemon and stream its progress. \
             Results are byte-identical to `hunt` of the same request.")
    Term.(const submit $ firmware_arg $ workload_arg $ seed_arg $ approach
          $ budget $ shards $ lanes $ verbose $ socket_arg)

let watch socket =
  let ic, oc = connect_daemon socket in
  output_string oc
    (Avis_server.Wire.render_request Avis_server.Wire.Watch ^ "\n");
  flush oc;
  Printf.eprintf "[avis] watching %s (^C to stop)\n%!" socket;
  try
    while true do
      Printf.printf "%s\n%!" (input_line ic)
    done
  with End_of_file -> prerr_endline "[avis] watch: daemon closed the connection"

let watch_cmd =
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Subscribe to a running daemon's full metrics and result \
             stream (every request, newline-delimited, to stdout).")
    Term.(const watch $ socket_arg)

(* replay *)

let replay_cmd_run policy workload seed =
  let config =
    {
      (Campaign.default_config policy workload) with
      Campaign.budget_s = 2400.0;
      seed;
    }
  in
  Printf.printf "hunting until the first unsafe condition...\n%!";
  let result =
    Campaign.run ~stop_when:(fun _ -> true) config ~strategy:(fun ctx -> Sabre.make ctx)
  in
  match result.Campaign.findings with
  | [] -> Printf.printf "no unsafe condition found within the budget\n"
  | finding :: _ ->
    let report = finding.Campaign.report in
    Printf.printf "found: %s\n" (Report.describe report);
    Printf.printf "replaying under a different nondeterminism seed...\n%!";
    let replayed =
      Replay.replay ~config ~profile:result.Campaign.profile ~seed:(seed + 500)
        report
    in
    Printf.printf "replay %s: %s\n"
      (if replayed.Replay.reproduced then "REPRODUCED the unsafe condition"
       else "did not reproduce")
      (match replayed.Replay.verdict with
      | Monitor.Unsafe v -> Monitor.describe v
      | Monitor.Safe -> "run judged safe")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Find one unsafe condition, then replay it by mode-relative offsets.")
    Term.(const replay_cmd_run $ firmware_arg $ workload_arg $ seed_arg)

(* selftest *)

let selftest soak_minutes =
  match soak_minutes with
  | Some minutes ->
    Printf.printf
      "soaking: looping a fixed mini campaign under rotating seeds for \
       %.1f min...\n%!"
      minutes;
    let s =
      Selftest.soak ~minutes
        ~progress:(fun i -> Printf.eprintf "[avis] soak: iteration %d done\n%!" i)
        ()
    in
    if s.Selftest.drift = [] then
      Printf.printf "soak: %d iterations, no drift\n" s.Selftest.iterations
    else begin
      Printf.printf "soak: %d iterations, %d DRIFT event(s):\n"
        s.Selftest.iterations
        (List.length s.Selftest.drift);
      List.iter (fun d -> Printf.printf "  %s\n" d) s.Selftest.drift;
      exit 1
    end
  | None ->
    let reports =
      List.map
        (fun (c : Selftest.check) ->
          Printf.eprintf "[avis] selftest: running %s...\n%!" c.Selftest.code;
          Selftest.run_check c)
        (Selftest.checks ())
    in
    print_string (Avis_util.Table.render (Selftest.table reports));
    print_newline ();
    if Selftest.all_passed reports then
      Printf.printf "selftest: all %d checks passed\n" (List.length reports)
    else begin
      Printf.printf "selftest: FAILED (%s)\n"
        (String.concat ", "
           (List.filter_map
              (fun (r : Selftest.report) ->
                if r.Selftest.passed then None else Some r.Selftest.code)
              reports));
      exit 1
    end

let selftest_cmd =
  let soak =
    Arg.(value & opt (some float) None
         & info [ "soak" ] ~docv:"MINUTES"
             ~doc:"Instead of the staged checks, loop a small fixed campaign \
                   under rotating seeds for this many minutes and report any \
                   run-to-run drift in outcome fingerprints.")
  in
  Cmd.v
    (Cmd.info "selftest"
       ~doc:"Run the staged burn-in diagnostics (determinism, snapshots, \
             store, cache, pool, allocation) and exit non-zero on any \
             failure.")
    Term.(const selftest $ soak)

(* study *)

let study () =
  Printf.printf "Bug study over %d pruned reports (reproducing §III):\n\n"
    Avis_bugstudy.Bugstudy.total;
  Printf.printf "Finding 1: sensor bugs are %.0f%% of bugs but %.0f%% of crash bugs\n"
    (100.0 *. Avis_bugstudy.Bugstudy.fraction_by_cause
                Avis_bugstudy.Bugstudy.Sensor_fault)
    (100.0 *. Avis_bugstudy.Bugstudy.crash_fraction_by_cause
                Avis_bugstudy.Bugstudy.Sensor_fault);
  Printf.printf "Finding 2: %.0f%% of sensor bugs reproduce under default settings\n"
    (100.0 *. Avis_bugstudy.Bugstudy.sensor_default_reproducible_fraction);
  Printf.printf "Finding 3: %.0f%% of sensor bugs have serious symptoms\n"
    (100.0 *. Avis_bugstudy.Bugstudy.sensor_serious_fraction);
  Printf.printf "(semantic bugs are %.0f%% asymptomatic)\n"
    (100.0 *. Avis_bugstudy.Bugstudy.semantic_asymptomatic_fraction)

let study_cmd =
  Cmd.v (Cmd.info "study" ~doc:"Print the §III bug-study findings.")
    Term.(const study $ const ())

(* bugs *)

let bugs () =
  List.iter
    (fun id ->
      let info = Avis_firmware.Bug.info id in
      Printf.printf "%-10s %-9s %-15s %-13s %-28s %s\n" info.Avis_firmware.Bug.report
        (Avis_firmware.Bug.firmware_name info.Avis_firmware.Bug.firmware)
        (Avis_firmware.Bug.symptom_to_string info.Avis_firmware.Bug.symptom)
        (Avis_sensors.Sensor.kind_to_string info.Avis_firmware.Bug.sensor)
        info.Avis_firmware.Bug.window_label
        (if info.Avis_firmware.Bug.known then "(known, re-insertable)" else "(unknown)"))
    Avis_firmware.Bug.all

let bugs_cmd =
  Cmd.v (Cmd.info "bugs" ~doc:"List the reproduced bug catalogue.")
    Term.(const bugs $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "avis" ~version:"1.0.0"
             ~doc:"Avis: in-situ model checking for unmanned aerial vehicles")
          [
            fly_cmd; hunt_cmd; Huntd_cmd.cmd; submit_cmd; watch_cmd;
            replay_cmd; selftest_cmd; study_cmd; bugs_cmd;
          ]))
