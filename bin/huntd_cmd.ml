(* The `huntd` command: shared between `avis_cli huntd` and the thin
   standalone `avis_huntd` executable. Prefer the subcommand when daemon
   results must interchange with in-process `avis_cli hunt` memos — the
   journal is fingerprinted by the binary that writes it, and the
   standalone daemon is a different binary. *)

open Cmdliner

let run socket tcp_port journal store_dir workers jobs =
  let base = Avis_server.Hunt_service.default_config () in
  Avis_server.Hunt_service.serve
    {
      Avis_server.Hunt_service.socket_path = socket;
      tcp_port;
      journal_path = journal;
      store_dir;
      workers =
        (match workers with
        | Some w -> max 1 w
        | None -> base.Avis_server.Hunt_service.workers);
      jobs = max 1 jobs;
    }

let socket_arg =
  Arg.(value & opt string "avis-huntd.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (removed on shutdown).")

let tcp_arg =
  Arg.(value & opt (some int) None
       & info [ "tcp-port" ] ~docv:"PORT"
           ~doc:"Also listen on 127.0.0.1:PORT (same wire protocol).")

let journal_arg =
  Arg.(value & opt string "avis-huntd-journal.jsonl"
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Campaign memo journal shared by every worker process. A \
                 killed daemon restarted on the same journal serves \
                 completed cells as memos instead of re-running them.")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store-dir" ] ~docv:"DIR"
           ~doc:"Content-addressed checkpoint store shared by the worker \
                 processes (exported to them as \\$AVIS_STORE_DIR).")

let workers_arg =
  Arg.(value & opt (some int) None
       & info [ "workers" ] ~docv:"N"
           ~doc:"Concurrent worker processes; each pulls cells from the \
                 daemon's LPT-ordered queue as its slots free up. Defaults \
                 to \\$AVIS_JOBS, then the hardware's recommendation.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Cell slots per worker process: domains in its pool, and \
                 the cells it may hold in flight at once.")

let term =
  Term.(const run $ socket_arg $ tcp_arg $ journal_arg $ store_arg
        $ workers_arg $ jobs_arg)

let cmd =
  Cmd.v
    (Cmd.info "huntd"
       ~doc:"Run the multi-tenant hunt daemon (pair with `submit` and \
             `watch`).")
    term
