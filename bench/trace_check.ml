(* Schema-check a Chrome-trace JSON artefact (BENCH_*.trace.json, or the
   output of `avis_cli hunt --trace`): parse it back with Avis_util.Json,
   validate every event, and measure how much of each campaign cell's wall
   time its child spans account for.

   Usage: trace_check [--min-coverage PCT] FILE...

   Exits non-zero on a parse failure, a schema violation, a spanless
   trace, or (when --min-coverage is given) a campaign cell whose child
   spans cover less of its wall time than PCT percent. CI runs this over
   the bench smoke artefact. *)

open Avis_util

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let number = function Some (Json.Number f) -> Some f | _ -> None
let string_ = function Some (Json.String s) -> Some s | _ -> None

type span = { name : string; tid : int; ts : float; dur : float }

(* Every counter track the library emits. A counter name outside this set
   is a schema violation: either a typo at the emission site or a new
   counter that was not added here (and to the docs) when introduced. *)
let known_counters =
  [
    "cache.hits"; "cache.misses"; "cache.bypasses"; "cache.evictions";
    "cache.resident_bytes"; "snapshot.bytes"; "pool.queue_depth";
    "pool.queue_wait_s";
    "budget.spent_s"; "link.dropped"; "link.corrupted"; "link.duplicated";
    "lanes.active"; "lanes.forks"; "lanes.retired";
    "cell.retries"; "cell.quarantined"; "cell.deadline_hits";
  ]

let check_event ~path i ev =
  let get k = Json.member k ev in
  let name =
    match string_ (get "name") with
    | Some n -> n
    | None -> fail "%s: event %d has no string \"name\"" path i
  in
  let ph =
    match string_ (get "ph") with
    | Some p -> p
    | None -> fail "%s: event %d (%s) has no string \"ph\"" path i name
  in
  let ts () =
    match number (get "ts") with
    | Some t when t >= 0.0 -> t
    | Some _ -> fail "%s: event %d (%s) has a negative ts" path i name
    | None -> fail "%s: event %d (%s, ph=%s) has no numeric \"ts\"" path i name ph
  in
  let tid =
    match number (get "tid") with Some t -> int_of_float t | None -> 0
  in
  match ph with
  | "X" ->
    let ts = ts () in
    let dur =
      match number (get "dur") with
      | Some d when d >= 0.0 -> d
      | Some _ -> fail "%s: event %d (%s) has a negative dur" path i name
      | None -> fail "%s: span %d (%s) has no numeric \"dur\"" path i name
    in
    Some { name; tid; ts; dur }
  | "C" ->
    let (_ : float) = ts () in
    if not (List.mem name known_counters) then
      fail "%s: counter %d has unknown name %S (add new counters to \
            trace_check's known set)"
        path i name;
    (match Json.member "args" ev with
    | Some (Json.Assoc _) -> None
    | _ -> fail "%s: counter %d (%s) has no \"args\" object" path i name)
  | "i" ->
    let (_ : float) = ts () in
    None
  | "M" -> None
  | other -> fail "%s: event %d (%s) has unknown ph %S" path i name other

(* Fraction of [cell]'s duration covered by the union of the other spans
   recorded strictly inside it on the same thread. Nested spans overlap,
   which the interval union absorbs. *)
let cell_coverage cell spans =
  let inside =
    List.filter
      (fun s ->
        s.tid = cell.tid && s != cell && s.ts >= cell.ts
        && s.ts +. s.dur <= cell.ts +. cell.dur
        && s.name <> "campaign.cell")
      spans
  in
  let sorted = List.sort (fun a b -> compare a.ts b.ts) inside in
  let covered, _ =
    List.fold_left
      (fun (acc, edge) s ->
        let lo = Float.max s.ts edge in
        let hi = s.ts +. s.dur in
        if hi <= lo then (acc, edge) else (acc +. (hi -. lo), hi))
      (0.0, cell.ts) sorted
  in
  if cell.dur <= 0.0 then 1.0 else covered /. cell.dur

let check_file ~min_coverage path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "%s: %s" path e
  in
  let json =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> fail "%s: not valid JSON: %s" path e
  in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ -> fail "%s: no \"traceEvents\" array" path
  in
  let spans =
    List.concat
      (List.mapi
         (fun i ev -> Option.to_list (check_event ~path i ev))
         events)
  in
  if spans = [] then fail "%s: no complete (\"X\") span events" path;
  let cells = List.filter (fun s -> s.name = "campaign.cell") spans in
  let coverages = List.map (fun c -> cell_coverage c spans) cells in
  let worst = List.fold_left Float.min 1.0 coverages in
  Printf.printf "%s: %d events, %d spans, %d campaign cells%s\n" path
    (List.length events) (List.length spans) (List.length cells)
    (if cells = [] then ""
     else Printf.sprintf ", worst cell span coverage %.1f%%" (100.0 *. worst));
  match min_coverage with
  | Some pct when cells <> [] && 100.0 *. worst < pct ->
    fail "%s: a campaign cell's child spans cover only %.1f%% of its wall \
          time (< %.1f%%)"
      path (100.0 *. worst) pct
  | _ -> ()

let () =
  let min_coverage = ref None in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--min-coverage" :: v :: rest ->
      (match float_of_string_opt v with
      | Some pct -> min_coverage := Some pct
      | None -> fail "bad --min-coverage %S" v);
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [] -> fail "usage: trace_check [--min-coverage PCT] FILE..."
  | files -> List.iter (check_file ~min_coverage:!min_coverage) files
