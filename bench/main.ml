(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (§III and §VI), the design-choice ablations called
   out in DESIGN.md, and a bechamel micro-benchmark suite.

   The campaign budget defaults to 7200 s of modelled wall-clock per
   approach; set AVIS_BUDGET=7200 for the paper's full two hours (the
   comparison shape is the same, the absolute counts grow).

   Campaign cells are independent jobs: the matrix, Table V and the
   search-order ablation all run on a domain pool sized by AVIS_JOBS
   (default: what the hardware recommends). Results are bit-identical to
   AVIS_JOBS=1 because every cell derives its own seed and budget. *)

open Avis_util
open Avis_sensors
open Avis_firmware
open Avis_core

let budget_s = Env.positive_float ~var:"AVIS_BUDGET" ~default:7200.0 ()

let jobs = Pool.jobs_of_env ()

(* AVIS_TRACE=1 records every campaign cell, simulation, cache serve and
   search decision as spans; the run then writes a Chrome-trace JSON
   artefact (open in Perfetto) and prints the per-phase summary. Off by
   default: tracing disabled costs one branch per span site, keeping the
   bench comparable with untraced baselines. *)
let tracing = Trace.enabled_by_env ()

let () = Trace.set_enabled tracing

let trace_path = "BENCH_evaluation.trace.json"

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

(* ------------------------------------------------------------------ *)
(* Campaign matrix: run once, reused by Tables II, III and IV.         *)
(* ------------------------------------------------------------------ *)

let approaches =
  [
    ("Avis", fun ctx -> Sabre.make ctx);
    ("Strat. BFI", fun ctx -> Strat_bfi.make ctx);
    ("BFI", fun ctx -> Bfi.make ctx);
    ("Random", fun ctx -> Random_search.make ctx);
  ]

let policies = [ Policy.apm; Policy.px4 ]

let workloads = [ Workload.manual_box; Workload.auto_box ]

(* A matrix cell either ran live in this process or was served from the
   resumable run journal (AVIS_JOURNAL) written by an earlier, possibly
   killed, process. Memo records carry exactly the fields the tables
   need (counts, the spent ledger's bits, finding descriptions/buckets/
   bug attributions), so every table derives identically from either
   arm; what they cannot carry is the monitor profile, which no table
   reads. *)
type outcome = Live of Campaign.result | Memo of Run_journal.record

type cell = {
  policy : Policy.t;
  workload : Workload.t;
  approach : string;
  outcome : outcome;
  wall_s : float;
}

let cell_simulations c =
  match c.outcome with
  | Live r -> r.Campaign.simulations
  | Memo m -> m.Run_journal.simulations

let cell_inferences c =
  match c.outcome with
  | Live r -> r.Campaign.inferences
  | Memo m -> m.Run_journal.inferences

let cell_spent_s c =
  match c.outcome with
  | Live r -> r.Campaign.wall_clock_spent_s
  | Memo m -> Run_journal.spent_s m

let cell_unsafe c =
  match c.outcome with
  | Live r -> Campaign.unsafe_count r
  | Memo m -> List.length m.Run_journal.findings

let cell_found_bug c bug =
  match c.outcome with
  | Live r -> Campaign.found_bug r bug
  | Memo m ->
    let report = (Bug.info bug).Bug.report in
    List.exists
      (fun (f : Run_journal.finding) -> List.mem report f.Run_journal.bugs)
      m.Run_journal.findings

let cell_bucket_count c bucket =
  match c.outcome with
  | Live r -> List.assoc bucket (Campaign.count_by_bucket r)
  | Memo m ->
    let label = Report.bucket_label bucket in
    List.length
      (List.filter
         (fun (f : Run_journal.finding) -> f.Run_journal.bucket = label)
         m.Run_journal.findings)

let cell_label ~approach ~policy ~workload =
  (* No spaces, so metrics lines stay grep-able key=value records. *)
  String.map
    (function ' ' -> '_' | c -> c)
    (Printf.sprintf "%s/%s/%s" approach policy workload)

let snapshot_of_cell c =
  let store_hits, store_misses, store_bytes =
    match c.outcome with
    | Live { Campaign.cache_stats = Some s; _ } ->
      Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
    | Live { Campaign.cache_stats = None; _ } | Memo _ -> (0, 0, 0)
  in
  let minor_words, major_collections =
    match c.outcome with
    | Live r -> (r.Campaign.minor_words, r.Campaign.major_collections)
    | Memo _ -> (0.0, 0)
  in
  {
    Metrics.cell =
      cell_label ~approach:c.approach ~policy:c.policy.Policy.name
        ~workload:c.workload.Workload.name;
    simulations = cell_simulations c;
    inferences = cell_inferences c;
    spent_s = cell_spent_s c;
    budget_s;
    findings = cell_unsafe c;
    wall_s = c.wall_s;
    minor_words;
    major_collections;
    store_hits;
    store_misses;
    store_bytes;
  }

(* Emit a metrics line whenever the cell crosses another 10% of its
   budget, rather than after every simulation: sixteen interleaved cells
   stay readable. *)
let decile_progress ~label ~started =
  let last = ref (-1) in
  fun (p : Campaign.progress) ->
    let decile =
      int_of_float (10.0 *. p.Campaign.spent_s /. Float.max 1e-9 p.Campaign.budget_s)
    in
    if decile > !last then begin
      last := decile;
      Metrics.emit ~event:"progress"
        {
          Metrics.cell = label;
          simulations = p.Campaign.simulations;
          inferences = p.Campaign.inferences;
          spent_s = p.Campaign.spent_s;
          budget_s = p.Campaign.budget_s;
          findings = p.Campaign.findings;
          wall_s = Metrics.now_s () -. started;
          minor_words = p.Campaign.minor_words;
          major_collections = p.Campaign.major_collections;
          store_hits = p.Campaign.store_hits;
          store_misses = p.Campaign.store_misses;
          store_bytes = p.Campaign.store_bytes;
        }
    end

let run_cell journal (policy, workload, (name, strategy)) =
  let label =
    cell_label ~approach:name ~policy:policy.Policy.name
      ~workload:workload.Workload.name
  in
  let started = Metrics.now_s () in
  let config =
    {
      (Campaign.default_config policy workload) with
      Campaign.budget_s;
      seed =
        Campaign.cell_seed ~policy:policy.Policy.name
          ~workload:workload.Workload.name ~approach:name ();
    }
  in
  let memo =
    match journal with
    | Some j -> Campaign.journal_memo j config ~approach:name
    | None -> None
  in
  match memo with
  | Some record ->
    let cell =
      { policy; workload; approach = name; outcome = Memo record;
        wall_s = Metrics.now_s () -. started }
    in
    Metrics.emit ~event:"memo" (snapshot_of_cell cell);
    Some cell
  | None -> (
    match
      Campaign.run_supervised ~progress:(decile_progress ~label ~started)
        ?journal ~journal_approach:name config ~strategy
    with
    | Campaign.Completed result ->
      let cell =
        { policy; workload; approach = name; outcome = Live result;
          wall_s = Metrics.now_s () -. started }
      in
      Metrics.emit ~event:"done" (snapshot_of_cell cell);
      Some cell
    | Campaign.Quarantined e ->
      Printf.eprintf
        "[bench] cell %s QUARANTINED [%s] after %d attempt(s): %s\n%!" label
        e.Campaign.code e.Campaign.attempts e.Campaign.message;
      None)

let campaign_matrix =
  lazy
    (let specs =
       List.concat_map
         (fun policy ->
           List.concat_map
             (fun workload ->
               List.map (fun approach -> (policy, workload, approach)) approaches)
             workloads)
         policies
     in
     (* Opened before the pool fans out: Run_journal.open_ reads and
        indexes the file once, and the handle's appends are mutex-held,
        so sharing one handle across domains is safe. *)
     let journal =
       Option.map
         (fun path -> Run_journal.open_ path)
         (Sys.getenv_opt "AVIS_JOURNAL")
     in
     (match journal with
     | Some j ->
       Printf.eprintf "[bench] journal %s: %d completed cell(s) on file\n%!"
         (Run_journal.path j)
         (Run_journal.completed_count j)
     | None -> ());
     Printf.eprintf "[bench] campaign matrix: %d cells on %d domain(s)\n%!"
       (List.length specs) jobs;
     (* Predicted-longest first: journal timings (when resuming) keep a
        long cell from landing last and straggling. Weights only reorder
        the feed — per-cell seeding keeps the tables bit-identical. *)
     let cost =
       match journal with
       | Some j -> Cost_model.of_journal j
       | None -> Cost_model.create ()
     in
     let weight (policy, workload, (name, _)) =
       Cost_model.predict cost
         ~label:
           (cell_label ~approach:name ~policy:policy.Policy.name
              ~workload:workload.Workload.name)
         ~budget_s
     in
     let cells =
       List.filter_map Fun.id
         (Pool.map_lpt ~jobs ~weight (run_cell journal) specs)
     in
     let dropped = List.length specs - List.length cells in
     if dropped > 0 then
       Printf.eprintf
         "[bench] %d quarantined cell(s) excluded from the tables\n%!" dropped;
     Metrics.summary (List.map snapshot_of_cell cells);
     cells)

let cells_for ?approach ?policy () =
  List.filter
    (fun c ->
      (match approach with Some a -> c.approach = a | None -> true)
      && match policy with Some p -> c.policy == p | None -> true)
    (Lazy.force campaign_matrix)

let total_unsafe cells =
  List.fold_left (fun acc c -> acc + cell_unsafe c) 0 cells

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: distinguishing features of the approaches";
  let t =
    Table.create ~header:[ "Features"; "Avis"; "Strat. BFI"; "BFI"; "Rnd" ]
  in
  Table.add_row t
    [ "Targets operating mode transitions"; "yes"; "no"; "no"; "no" ];
  Table.add_row t [ "Prior bugs inform injection sites"; "yes"; "yes"; "yes"; "no" ];
  Table.add_row t [ "Search dissimilar scenarios first"; "yes"; "yes"; "no"; "yes" ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 3 (the bug study)                                            *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Figure 3: analysis of reported bugs (215 pruned reports)";
  let open Avis_bugstudy in
  subsection "(A) root causes of crash-causing bugs";
  let t = Table.create ~header:[ "Root cause"; "% of all bugs"; "% of crash bugs" ] in
  List.iter
    (fun cause ->
      Table.add_row t
        [
          Bugstudy.root_cause_to_string cause;
          Printf.sprintf "%.0f%%" (100.0 *. Bugstudy.fraction_by_cause cause);
          Printf.sprintf "%.0f%%" (100.0 *. Bugstudy.crash_fraction_by_cause cause);
        ])
    [ Bugstudy.Semantic; Bugstudy.Sensor_fault; Bugstudy.Memory; Bugstudy.Other ];
  Table.print t;
  subsection "(B) sensor-bug reproducibility";
  Printf.printf "default settings: %.0f%%   special settings: %.0f%%\n"
    (100.0 *. Bugstudy.sensor_default_reproducible_fraction)
    (100.0 *. (1.0 -. Bugstudy.sensor_default_reproducible_fraction));
  subsection "(C) sensor-bug symptoms";
  let t = Table.create ~header:[ "Symptom"; "count"; "share" ] in
  List.iter
    (fun (symptom, n) ->
      Table.add_row t
        [
          Bugstudy.symptom_to_string symptom;
          string_of_int n;
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int n /. 44.0);
        ])
    (Bugstudy.symptom_breakdown Bugstudy.sensor_bugs);
  Table.print t;
  Printf.printf
    "Findings: sensor bugs are %.0f%% of reports but %.0f%% of crash bugs; \
     %.0f%% reproduce under default settings; %.0f%% are serious.\n"
    (100.0 *. Bugstudy.fraction_by_cause Bugstudy.Sensor_fault)
    (100.0 *. Bugstudy.crash_fraction_by_cause Bugstudy.Sensor_fault)
    (100.0 *. Bugstudy.sensor_default_reproducible_fraction)
    (100.0 *. Bugstudy.sensor_serious_fraction)

(* ------------------------------------------------------------------ *)
(* Figure 5 (search orders on the toy fault space)                     *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5: exploration order on the 2-sensor, 5-step example";
  (* Two single-instance sensors, transitions discovered at t1, t2 and t4
     (of t1..t5), exactly as in the figure. *)
  let instances =
    [ { Sensor.kind = Sensor.Gps; index = 0 };
      { Sensor.kind = Sensor.Barometer; index = 0 } ]
  in
  let ctx =
    {
      Search.transitions =
        [ (1.0, "Pre-Flight", "Takeoff"); (2.0, "Takeoff", "Cruise");
          (4.0, "Cruise", "Land") ];
      mission_duration = 5.0;
      instances;
      instances_of_kind = (fun _ -> 1);
      mode_at = (fun _ -> Some "Cruise");
      rng = Rng.create 0;
    }
  in
  let render scenario =
    (* <F1,...,F5> with permanent failures, as in the paper's notation. *)
    let cell t =
      let failed =
        List.filter_map
          (fun f ->
            if Scenario.fault_time f <= t +. 1e-9 then
              Some
                (match f with
                | Scenario.Link_loss _ -> "Link"
                | Scenario.Sensor_fault sf -> (
                  match sf.Scenario.sensor.Sensor.kind with
                  | Sensor.Gps -> "GPS"
                  | Sensor.Barometer -> "Baro"
                  | _ -> "?"))
            else None)
          scenario
      in
      match failed with [] -> "0" | fs -> "{" ^ String.concat "," fs ^ "}"
    in
    "<" ^ String.concat ", " (List.map (fun i -> cell (float_of_int i)) [ 1; 2; 3; 4; 5 ]) ^ ">"
  in
  let first_n searcher n =
    let rec loop acc k =
      if k = 0 then List.rev acc
      else
        match searcher.Search.next () with
        | Search.Exhausted -> List.rev acc
        | Search.Think _ -> loop acc k
        | Search.Run (s, _) ->
          searcher.Search.observe s
            { Search.unsafe = false; observed_transitions = [] };
          loop (render s :: acc) (k - 1)
    in
    loop [] n
  in
  List.iter
    (fun (name, make) ->
      subsection name;
      List.iter print_endline (first_n (make ()) 6))
    [
      ("depth-first search", fun () -> Dfs.make ~site_step_s:1.0 ctx);
      ("breadth-first search", fun () -> Bfs.make ~start_s:1.0 ~site_step_s:1.0 ctx);
      ("SABRE (transitions first)", fun () -> Sabre.make ~shift_s:1.0 ctx);
    ]

(* ------------------------------------------------------------------ *)
(* Figure 6 (sensor-instance symmetry)                                 *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Figure 6: sensor-instance symmetry on three compasses";
  let compass i = { Sensor.kind = Sensor.Compass; index = i } in
  let subsets =
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ]
  in
  let prune = Prune.create () in
  let t = Table.create ~header:[ "Failure set"; "decision" ] in
  List.iter
    (fun subset ->
      let scenario =
        Scenario.of_faults
          (List.map (fun i -> Scenario.sensor_fault (compass i) 10.0) subset)
      in
      let name =
        "{"
        ^ String.concat ","
            (List.map (function 0 -> "P" | 1 -> "B1" | i -> "B" ^ string_of_int i) subset)
        ^ "}"
      in
      if Prune.should_prune prune scenario then Table.add_row t [ name; "pruned (symmetry)" ]
      else begin
        Prune.note_run prune scenario;
        Table.add_row t [ name; "run" ]
      end)
    subsets;
  Table.print t;
  let t = Table.create ~header:[ "instances N"; "N(2^N-1)"; "2N-1 (with symmetry)" ] in
  List.iter
    (fun n ->
      Table.add_row t
        [
          string_of_int n;
          string_of_int (Prune.unpruned_scenarios ~instances:n);
          string_of_int (Prune.symmetry_scenarios ~instances:n);
        ])
    [ 1; 2; 3; 4; 5 ];
  Table.print ~title:"scenario counts per site and sensor kind:" t

(* ------------------------------------------------------------------ *)
(* Figures 1, 9, 10 (altitude traces, golden vs fault)                 *)
(* ------------------------------------------------------------------ *)

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let run_auto_box policy ~enabled ~plan =
  let base = Avis_sitl.Sim.default_config policy in
  let config =
    {
      base with
      Avis_sitl.Sim.seed = 1001;
      enabled_bugs = enabled;
      max_duration = Workload.auto_box.Workload.nominal_duration +. 60.0;
    }
  in
  let sim = Avis_sitl.Sim.create ~plan config in
  let passed = Workload.execute Workload.auto_box sim in
  Avis_sitl.Sim.outcome sim ~workload_passed:passed

let transition_into (outcome : Avis_sitl.Sim.outcome) to_mode =
  List.find_map
    (fun tr ->
      if tr.Avis_hinj.Hinj.to_mode = to_mode then Some tr.Avis_hinj.Hinj.time
      else None)
    outcome.Avis_sitl.Sim.transitions

let altitude_figure ~title ~bug ~sensor ~window_mode ~offset =
  section title;
  let golden = run_auto_box Policy.apm ~enabled:[] ~plan:[] in
  let site =
    match transition_into golden window_mode with
    | Some t -> t +. offset
    | None -> failwith ("no transition into " ^ window_mode)
  in
  let fault = run_auto_box Policy.apm ~enabled:[ bug ] ~plan:(fail_kind sensor site) in
  Printf.printf "injection: %s at t=%.2f s (%s window); outcome: %s\n"
    (Sensor.kind_to_string sensor) site window_mode
    (match fault.Avis_sitl.Sim.crash with
    | Some e -> Format.asprintf "%a" Avis_physics.World.pp_contact e
    | None -> "no collision (see monitor verdict in Table II runs)");
  let series outcome =
    (* One sample per whole second. *)
    let seen = Hashtbl.create 128 in
    List.filter
      (fun (t, _) ->
        let second = int_of_float t in
        if Hashtbl.mem seen second then false
        else begin
          Hashtbl.add seen second ();
          true
        end)
      (Avis_sitl.Trace.altitude_series outcome.Avis_sitl.Sim.trace)
  in
  let t = Table.create ~header:[ "t (s)"; "golden alt (m)"; "fault alt (m)" ] in
  let golden_series = series golden and fault_series = series fault in
  List.iter
    (fun (time, alt) ->
      let fault_alt =
        List.find_opt (fun (ft, _) -> Float.abs (ft -. time) < 0.3) fault_series
      in
      match fault_alt with
      | Some (_, fa) ->
        Table.add_row t
          [ Printf.sprintf "%.0f" time; Printf.sprintf "%6.2f" alt;
            Printf.sprintf "%6.2f" fa ]
      | None ->
        Table.add_row t
          [ Printf.sprintf "%.0f" time; Printf.sprintf "%6.2f" alt; "(crashed)" ])
    golden_series;
  Table.print t

let fig1 () =
  altitude_figure
    ~title:"Figure 1: IMU failure at the end of landing (APM-16682)"
    ~bug:Bug.Apm_16682 ~sensor:Sensor.Accelerometer ~window_mode:"Land"
    ~offset:1.0

let fig9 () =
  altitude_figure
    ~title:"Figure 9: APM-16021, accelerometer failure late in the climb"
    ~bug:Bug.Apm_16021 ~sensor:Sensor.Accelerometer ~window_mode:"Takeoff"
    ~offset:7.0

let fig10 () =
  altitude_figure
    ~title:"Figure 10: APM-16967, compass failure between waypoints"
    ~bug:Bug.Apm_16967 ~sensor:Sensor.Compass ~window_mode:"Waypoint 2"
    ~offset:0.5

(* ------------------------------------------------------------------ *)
(* Table II                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table II: previously-unknown bugs detected";
  let t =
    Table.create
      ~header:
        [ "Report #"; "Firmware"; "Symptom"; "Sensor Failure";
          "Failure Starting Moment"; "Avis"; "Strat. BFI" ]
  in
  List.iter
    (fun bug ->
      let info = Bug.info bug in
      if not info.Bug.known then begin
        let found approach =
          let cells =
            cells_for ~approach ~policy:(Policy.of_firmware info.Bug.firmware) ()
          in
          List.exists (fun c -> cell_found_bug c bug) cells
        in
        Table.add_row t
          [
            info.Bug.report;
            Bug.firmware_name info.Bug.firmware;
            Bug.symptom_to_string info.Bug.symptom;
            Sensor.kind_to_string info.Bug.sensor;
            info.Bug.window_label;
            (if found "Avis" then "found" else "missed");
            (if found "Strat. BFI" then "found" else "missed");
          ]
      end)
    Bug.all;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table III                                                            *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section
    (Printf.sprintf
       "Table III: unsafe scenarios identified per approach (%.0f s budget \
        per approach per workload)"
       budget_s);
  let t =
    Table.create
      ~header:[ "Approach"; "ArduPilot Unsafe #"; "PX4 Unsafe #"; "Total #" ]
  in
  List.iter
    (fun (name, _) ->
      let apm = total_unsafe (cells_for ~approach:name ~policy:Policy.apm ()) in
      let px4 = total_unsafe (cells_for ~approach:name ~policy:Policy.px4 ()) in
      Table.add_row t
        [ name; string_of_int apm; string_of_int px4; string_of_int (apm + px4) ])
    approaches;
  Table.print t;
  let avis = total_unsafe (cells_for ~approach:"Avis" ()) in
  let strat = total_unsafe (cells_for ~approach:"Strat. BFI" ()) in
  if strat > 0 then
    Printf.printf "Avis found %.1fx more unsafe conditions than Stratified BFI.\n"
      (float_of_int avis /. float_of_int strat)

(* ------------------------------------------------------------------ *)
(* Table IV                                                             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table IV: unsafe scenarios per operating mode at injection";
  let t =
    Table.create
      ~header:[ "Approach"; "Takeoff #"; "Manual #"; "Waypoint #"; "Land #" ]
  in
  List.iter
    (fun (name, _) ->
      let cells = cells_for ~approach:name () in
      let count bucket =
        List.fold_left (fun acc c -> acc + cell_bucket_count c bucket) 0 cells
      in
      Table.add_row t
        [
          name;
          string_of_int (count Report.Takeoff_bucket);
          string_of_int (count Report.Manual_bucket);
          string_of_int (count Report.Waypoint_bucket);
          string_of_int (count Report.Land_bucket);
        ])
    approaches;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table V                                                              *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table V: re-inserted known bugs";
  let t =
    Table.create
      ~header:
        [ "Bug ID"; "Avis found"; "Avis sims"; "Strat. BFI found";
          "Strat. BFI sims" ]
  in
  let known = List.filter (fun bug -> (Bug.info bug).Bug.known) Bug.all in
  let row_for bug =
    let info = Bug.info bug in
    Printf.eprintf "[bench] Table V campaign for %s...\n%!" info.Bug.report;
    let policy = Policy.of_firmware info.Bug.firmware in
    let workload =
      if bug = Bug.Apm_4455 then Workload.manual_box else Workload.auto_box
    in
    let run approach strategy =
      let config =
        {
          (Campaign.default_config policy workload) with
          Campaign.budget_s;
          enabled_bugs = [ bug ];
          seed =
            Campaign.cell_seed ~policy:policy.Policy.name
              ~workload:workload.Workload.name
              ~approach:(approach ^ "/" ^ info.Bug.report) ();
        }
      in
      let result =
        Campaign.run
          ~stop_when:(fun f -> List.mem bug f.Campaign.report.Report.triggered_bugs)
          config ~strategy
      in
      Campaign.simulations_until_bug result bug
    in
    let avis = run "Avis" (fun ctx -> Sabre.make ctx) in
    let strat = run "Strat. BFI" (fun ctx -> Strat_bfi.make ctx) in
    let show = function
      | Some n -> ("found", string_of_int n)
      | None -> ("missed", "n/a")
    in
    let avis_found, avis_sims = show avis in
    let strat_found, strat_sims = show strat in
    [ info.Bug.report; avis_found; avis_sims; strat_found; strat_sims ]
  in
  List.iter (Table.add_row t) (Pool.map ~jobs row_for known);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablation_search_order () =
  section "Ablation: search order under an equal (reduced) budget";
  let t =
    Table.create ~header:[ "Strategy"; "simulations"; "unsafe found" ]
  in
  let row_for (name, strategy) =
    Printf.eprintf "[bench] ablation strategy %s...\n%!" name;
    let config =
      {
        (Campaign.default_config Policy.apm Workload.auto_box) with
        Campaign.budget_s = Float.min budget_s 1200.0;
      }
    in
    let result = Campaign.run config ~strategy in
    [
      name;
      string_of_int result.Campaign.simulations;
      string_of_int (Campaign.unsafe_count result);
    ]
  in
  List.iter (Table.add_row t)
    (Pool.map ~jobs row_for
       [
         ("SABRE", fun ctx -> Sabre.make ctx);
         ("SABRE, no pruning", fun ctx ->
           Sabre.make ~prune:(Prune.create ~symmetry:false ~found_bug:false ()) ctx);
         ("plain BFS", fun ctx -> Bfs.make ctx);
         ("plain DFS", fun ctx -> Dfs.make ctx);
       ]);
  Table.print t

let ablation_liveliness_metric () =
  section "Ablation: liveliness metric (position-only vs full state tuple)";
  let config = Campaign.default_config Policy.apm Workload.auto_box in
  let profile, _, golden = Campaign.profile_and_context config in
  let takeoff =
    match transition_into golden "Takeoff" with Some t -> t | None -> 2.0 in
  let wp1 =
    match transition_into golden "Waypoint 1" with Some t -> t | None -> 10.0 in
  let t =
    Table.create
      ~header:[ "Scenario"; "fault at"; "full-metric detection"; "position-only" ]
  in
  List.iter
    (fun (label, bug, kind, at) ->
      let o = run_auto_box Policy.apm ~enabled:[ bug ] ~plan:(fail_kind kind at) in
      let show metric =
        match Monitor.detection_time ~metric profile o with
        | Some time -> Printf.sprintf "t=%.1f s (+%.1f s)" time (time -. at)
        | None -> "not detected"
      in
      Table.add_row t
        [
          label; Printf.sprintf "%.1f" at;
          show Distance.Full; show Distance.Position_only;
        ])
    [
      ("APM-16027 fly-away", Bug.Apm_16027, Sensor.Barometer, takeoff +. 0.1);
      ("APM-16020 fly-away", Bug.Apm_16020, Sensor.Gps, wp1 +. 0.2);
      ("APM-16967 heading loss",
       Bug.Apm_16967, Sensor.Compass,
       (match transition_into golden "Waypoint 2" with Some t -> t +. 0.5 | None -> 15.0));
    ];
  Table.print t

let ablation_replay () =
  section "Ablation: mode-relative vs absolute-time replay";
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = Float.min budget_s 1200.0;
    }
  in
  let result =
    Campaign.run ~stop_when:(fun _ -> true) config
      ~strategy:(fun ctx -> Sabre.make ctx)
  in
  match result.Campaign.findings with
  | [] -> Printf.printf "no finding available for the replay ablation\n"
  | finding :: _ ->
    let report = finding.Campaign.report in
    Printf.printf "finding: %s\n" (Report.describe report);
    let seeds = [ 101; 202; 303; 404; 505; 606 ] in
    let relative_ok =
      List.length
        (List.filter
           (fun seed ->
             (Replay.replay ~config ~profile:result.Campaign.profile ~seed report)
               .Replay.reproduced)
           seeds)
    in
    (* Absolute-time replay: re-inject at the original timestamps. *)
    let absolute_ok =
      List.length
        (List.filter
           (fun seed ->
             let base = Avis_sitl.Sim.default_config Policy.apm in
             let sim_cfg =
               {
                 base with
                 Avis_sitl.Sim.seed;
                 max_duration = Workload.auto_box.Workload.nominal_duration +. 60.0;
               }
             in
             let sim =
               Avis_sitl.Sim.create ~plan:(Scenario.to_plan report.Report.scenario)
                 sim_cfg
             in
             let passed = Workload.execute Workload.auto_box sim in
             let o = Avis_sitl.Sim.outcome sim ~workload_passed:passed in
             match Monitor.check result.Campaign.profile o with
             | Monitor.Unsafe _ -> true
             | Monitor.Safe -> false)
           seeds)
    in
    Printf.printf
      "mode-relative replay reproduced %d/%d; absolute-time replay %d/%d\n"
      relative_ok (List.length seeds) absolute_ok (List.length seeds)

(* ------------------------------------------------------------------ *)
(* Prefix cache: cold vs cached campaign wall-clock                     *)
(* ------------------------------------------------------------------ *)

let prefix_cache_bench () =
  section "Prefix cache: cold vs cached campaign wall-clock";
  let bench_budget = Float.min budget_s 900.0 in
  let bench_workloads =
    [ Workload.quickstart; Workload.manual_box; Workload.auto_box ]
  in
  let specs =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun workload ->
            List.map (fun approach -> (policy, workload, approach)) approaches)
          bench_workloads)
      policies
  in
  (* Three campaigns per cell, back to back on the same domain so their
     wall-clock ratios are insulated from pool scheduling: cold (no cache),
     cached (fresh cache — the first-run win comes from forking scenarios
     off the clean run and off earlier scenarios' faulty prefixes), and
     replay (same cache again — the regression-re-run / finding-reproduction
     path, where every scenario forks from its last checkpoint and only the
     tail is simulated). All three must produce identical results. *)
  let run_cell (policy, workload, (name, strategy)) =
    let config cached =
      {
        (Campaign.default_config policy workload) with
        Campaign.budget_s = bench_budget;
        prefix_cache = cached;
        seed =
          Campaign.cell_seed ~policy:policy.Policy.name
            ~workload:workload.Workload.name ~approach:name ();
      }
    in
    let time ?cache cached =
      let t0 = Metrics.now_s () in
      let result = Campaign.run ?cache (config cached) ~strategy in
      (result, Metrics.now_s () -. t0)
    in
    let cold, cold_s = time false in
    let cache = Campaign.make_cache (config true) in
    let cached, cached_s = time ~cache true in
    let replay, replay_s = time ~cache true in
    let same a b =
      a.Campaign.simulations = b.Campaign.simulations
      && Campaign.unsafe_count a = Campaign.unsafe_count b
      && a.Campaign.wall_clock_spent_s = b.Campaign.wall_clock_spent_s
      && List.map (fun f -> f.Campaign.simulation_index) a.Campaign.findings
         = List.map (fun f -> f.Campaign.simulation_index) b.Campaign.findings
    in
    let identical = same cold cached && same cold replay in
    (policy, workload, name, cold, cached, cold_s, cached_s, replay_s, identical)
  in
  let rows = Pool.map ~jobs run_cell specs in
  let speedup cold_s s = cold_s /. Float.max 1e-9 s in
  let t =
    Table.create
      ~header:
        [ "Approach"; "Firmware"; "Workload"; "cold (s)"; "cached (s)";
          "speedup"; "replay (s)"; "speedup"; "identical" ]
  in
  List.iter
    (fun (policy, workload, name, _, _, cold_s, cached_s, replay_s, identical) ->
      Table.add_row t
        [
          name; policy.Policy.name; workload.Workload.name;
          Printf.sprintf "%.2f" cold_s;
          Printf.sprintf "%.2f" cached_s;
          Printf.sprintf "%.1fx" (speedup cold_s cached_s);
          Printf.sprintf "%.2f" replay_s;
          Printf.sprintf "%.1fx" (speedup cold_s replay_s);
          (if identical then "yes" else "NO");
        ])
    rows;
  Table.print t;
  List.iter
    (fun (policy, workload, name, _, _, cold_s, cached_s, replay_s, _) ->
      if
        name = "Avis"
        && workload.Workload.name = Workload.quickstart.Workload.name
      then
        Printf.printf
          "SABRE quickstart (%s): first run %.1fx, campaign replay %.1fx\n"
          policy.Policy.name
          (speedup cold_s cached_s)
          (speedup cold_s replay_s))
    rows;
  let json =
    Json.Assoc
      [
        ("budget_s", Json.Number bench_budget);
        ( "cells",
          Json.List
            (List.map
               (fun ( policy, workload, name, cold, cached,
                      cold_s, cached_s, replay_s, identical ) ->
                 let stats =
                   match cached.Campaign.cache_stats with
                   | None -> []
                   | Some s ->
                     [
                       ("cache_hits", Json.int s.Prefix_cache.hits);
                       ("cache_misses", Json.int s.Prefix_cache.misses);
                       ("saved_sim_s", Json.Number s.Prefix_cache.saved_sim_s);
                     ]
                 in
                 Json.Assoc
                   ([
                      ("approach", Json.String name);
                      ("firmware", Json.String policy.Policy.name);
                      ("workload", Json.String workload.Workload.name);
                      ("cold_wall_s", Json.Number cold_s);
                      ("cached_wall_s", Json.Number cached_s);
                      ("speedup", Json.Number (speedup cold_s cached_s));
                      ("replay_wall_s", Json.Number replay_s);
                      ("replay_speedup", Json.Number (speedup cold_s replay_s));
                      ("simulations", Json.int cold.Campaign.simulations);
                      ("findings", Json.int (Campaign.unsafe_count cold));
                      ("identical", Json.Bool identical);
                    ]
                   @ stats))
               rows) );
      ]
  in
  let path = "BENCH_prefix_cache.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string_pretty json);
      output_char oc '\n');
  Printf.printf "wrote %s (%d cells)\n" path (List.length rows)

(* ------------------------------------------------------------------ *)
(* Checkpoint store: cold vs warm-process campaign wall-clock           *)
(* ------------------------------------------------------------------ *)

let store_bench () =
  section "Checkpoint store: cold vs warm-process campaign wall-clock";
  let bench_budget = Float.min budget_s 300.0 in
  let policy = Policy.apm and workload = Workload.quickstart in
  let name, strategy = List.hd approaches in
  let store_dir =
    match Sys.getenv_opt "AVIS_STORE_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "avis-bench-store"
  in
  (* Did a previous *process* leave checkpoints behind? When CI runs this
     section twice against one store dir, the second pass must start warm
     and be served from disk. *)
  let warm_start =
    Sys.file_exists store_dir
    && (try
          Array.exists
            (fun f -> Filename.check_suffix f ".ckpt")
            (Sys.readdir store_dir)
        with Sys_error _ -> false)
  in
  let config cached =
    {
      (Campaign.default_config policy workload) with
      Campaign.budget_s = bench_budget;
      prefix_cache = cached;
      seed =
        Campaign.cell_seed ~policy:policy.Policy.name
          ~workload:workload.Workload.name ~approach:name ();
    }
  in
  let time ?cache cached =
    let t0 = Metrics.now_s () in
    let result = Campaign.run ?cache (config cached) ~strategy in
    (result, Metrics.now_s () -. t0)
  in
  (* Three campaigns: cold (no cache, no store), then two with *fresh*
     prefix-cache instances sharing the store directory. The second
     instance starts with empty memory, so everything it restores comes
     off disk — the same path a brand-new process takes. *)
  let cold, cold_s = time false in
  let first, first_s = time ~cache:(Campaign.make_cache ~store_dir (config true)) true in
  let second, second_s =
    time ~cache:(Campaign.make_cache ~store_dir (config true)) true
  in
  let same a b =
    a.Campaign.simulations = b.Campaign.simulations
    && Campaign.unsafe_count a = Campaign.unsafe_count b
    && a.Campaign.wall_clock_spent_s = b.Campaign.wall_clock_spent_s
    && List.map (fun f -> f.Campaign.simulation_index) a.Campaign.findings
       = List.map (fun f -> f.Campaign.simulation_index) b.Campaign.findings
  in
  let identical = same cold first && same cold second in
  let store_counters (r : Campaign.result) =
    match r.Campaign.cache_stats with
    | Some s -> Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
    | None -> (0, 0, 0)
  in
  let first_hits, first_misses, _ = store_counters first in
  let second_hits, second_misses, store_bytes = store_counters second in
  let t =
    Table.create
      ~header:
        [ "campaign"; "wall (s)"; "store hits"; "store miss"; "identical" ]
  in
  let yn b = if b then "yes" else "NO" in
  Table.add_row t [ "cold (store off)"; Printf.sprintf "%.2f" cold_s; "-"; "-"; "-" ];
  Table.add_row t
    [ "first instance"; Printf.sprintf "%.2f" first_s;
      string_of_int first_hits; string_of_int first_misses;
      yn (same cold first) ];
  Table.add_row t
    [ "second instance"; Printf.sprintf "%.2f" second_s;
      string_of_int second_hits; string_of_int second_misses;
      yn (same cold second) ];
  Table.print t;
  Printf.printf
    "store dir %s: %d bytes, warm start %s, second instance served %s\n"
    store_dir store_bytes (yn warm_start) (yn (second_hits > 0));
  let json =
    Json.Assoc
      [
        ("budget_s", Json.Number bench_budget);
        ("approach", Json.String name);
        ("firmware", Json.String policy.Policy.name);
        ("workload", Json.String workload.Workload.name);
        ("store_dir", Json.String store_dir);
        ("warm_start", Json.Bool warm_start);
        ("cold_wall_s", Json.Number cold_s);
        ("first_wall_s", Json.Number first_s);
        ("second_wall_s", Json.Number second_s);
        ("first_store_hits", Json.int first_hits);
        ("first_store_misses", Json.int first_misses);
        ("second_store_hits", Json.int second_hits);
        ("second_store_misses", Json.int second_misses);
        ("store_bytes", Json.int store_bytes);
        ("store_served", Json.Bool (second_hits > 0));
        ("simulations", Json.int cold.Campaign.simulations);
        ("findings", Json.int (Campaign.unsafe_count cold));
        ("identical", Json.Bool identical);
      ]
  in
  let path = "BENCH_store.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string_pretty json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Link faults: campaigns over the link-outage scenario space           *)
(* ------------------------------------------------------------------ *)

let link_faults_bench () =
  section "Link faults: GCS-loss findings per personality";
  let bench_budget = budget_s in
  (* One cell per personality: a SABRE campaign restricted (via the gate)
     to the link-outage scenario space — outages at mode boundaries plus
     the sensor faults SABRE composes onto the failsafe transitions those
     outages induce — stopped at the first finding whose scenario includes
     the outage. Each cell runs cold and cached; both must agree on every
     count, so the outage scenarios fork bit-identically from snapshots. *)
  let run_cell policy =
    let config cached =
      {
        (Campaign.default_config policy Workload.auto_box) with
        Campaign.budget_s = bench_budget;
        prefix_cache = cached;
        seed =
          Campaign.cell_seed ~policy:policy.Policy.name
            ~workload:Workload.auto_box.Workload.name ~approach:"link" ();
      }
    in
    let link_finding f =
      Scenario.has_link_loss f.Campaign.report.Report.scenario
    in
    let gate s = (0.0, Scenario.has_link_loss s) in
    let time cached =
      let t0 = Metrics.now_s () in
      let result =
        Campaign.run ~stop_when:link_finding (config cached)
          ~strategy:(fun ctx -> Sabre.make ~gate ctx)
      in
      (result, Metrics.now_s () -. t0)
    in
    let cold, cold_s = time false in
    let cached, cached_s = time true in
    let identical =
      cold.Campaign.simulations = cached.Campaign.simulations
      && Campaign.unsafe_count cold = Campaign.unsafe_count cached
      && cold.Campaign.wall_clock_spent_s = cached.Campaign.wall_clock_spent_s
      && List.map (fun f -> f.Campaign.simulation_index) cold.Campaign.findings
         = List.map
             (fun f -> f.Campaign.simulation_index)
             cached.Campaign.findings
    in
    let found = List.filter link_finding cold.Campaign.findings in
    (policy, cold, found, cold_s, cached_s, identical)
  in
  let rows = Pool.map ~jobs run_cell policies in
  let t =
    Table.create
      ~header:
        [ "Firmware"; "sims"; "findings"; "link findings"; "cold (s)";
          "cached (s)"; "identical" ]
  in
  List.iter
    (fun (policy, cold, found, cold_s, cached_s, identical) ->
      Table.add_row t
        [
          policy.Policy.name;
          string_of_int cold.Campaign.simulations;
          string_of_int (Campaign.unsafe_count cold);
          string_of_int (List.length found);
          Printf.sprintf "%.2f" cold_s;
          Printf.sprintf "%.2f" cached_s;
          (if identical then "yes" else "NO");
        ])
    rows;
  Table.print t;
  List.iter
    (fun (policy, _, found, _, _, _) ->
      match found with
      | f :: _ ->
        Printf.printf "%s first link finding: %s\n" policy.Policy.name
          (Report.describe f.Campaign.report)
      | [] ->
        Printf.printf
          "%s: no link finding within the budget (raise AVIS_BUDGET)\n"
          policy.Policy.name)
    rows;
  let json =
    Json.Assoc
      [
        ("budget_s", Json.Number bench_budget);
        ( "cells",
          Json.List
            (List.map
               (fun (policy, cold, found, cold_s, cached_s, identical) ->
                 Json.Assoc
                   [
                     ("firmware", Json.String policy.Policy.name);
                     ("workload", Json.String Workload.auto_box.Workload.name);
                     ("simulations", Json.int cold.Campaign.simulations);
                     ("findings", Json.int (Campaign.unsafe_count cold));
                     ("link_findings", Json.int (List.length found));
                     ( "first_link_finding",
                       match found with
                       | [] -> Json.Null
                       | f :: _ ->
                         Json.String (Report.describe f.Campaign.report) );
                     ("cold_wall_s", Json.Number cold_s);
                     ("cached_wall_s", Json.Number cached_s);
                     ("identical", Json.Bool identical);
                   ])
               rows) );
      ]
  in
  let path = "BENCH_link_faults.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string_pretty json);
      output_char oc '\n');
  Printf.printf "wrote %s (%d cells)\n" path (List.length rows)

(* ------------------------------------------------------------------ *)
(* Hot loop: allocation-free kernel vs the reference step               *)
(* ------------------------------------------------------------------ *)

let hotloop_bench () =
  section "Hot loop: allocation-free kernel vs reference step";
  let open Avis_geo in
  let open Avis_physics in
  let hover = Airframe.hover_throttle Airframe.iris in
  let dt = 0.004 in
  (* Stable hover far above the ground: neither loop may ever take the
     crashed fast path, or the ratio measures a no-op. *)
  let make_world () = World.create ~position:(Vec3.make 0.0 0.0 100.0) () in
  let cmds = Array.make 4 hover in
  (* Open-loop hover is only metastable — rounding in the torque balance
     tips the vehicle over after ~11 k steps — so the loop re-arms from a
     pristine snapshot every [batch] steps. The restore is a handful of
     blits, invisible at this cadence. *)
  let batch = 8_000 in
  let time_steps stepf n =
    let pristine = World.snapshot (make_world ()) in
    let warm = World.restore pristine in
    for _ = 1 to 1000 do
      ignore (stepf warm ~motor_commands:cmds ~dt)
    done;
    if World.crashed warm then failwith "hotloop: bench vehicle crashed";
    let remaining = ref n in
    let t0 = Metrics.now_s () in
    while !remaining > 0 do
      let k = min batch !remaining in
      let w = World.restore pristine in
      for _ = 1 to k do
        ignore (stepf w ~motor_commands:cmds ~dt)
      done;
      if World.crashed w then failwith "hotloop: bench vehicle crashed";
      remaining := !remaining - k
    done;
    let s = Metrics.now_s () -. t0 in
    float_of_int n /. Float.max 1e-9 s
  in
  let n = 500_000 in
  let steps_per_sec = time_steps World.step n in
  let baseline_steps_per_sec = time_steps World.step_reference n in
  let speedup = steps_per_sec /. Float.max 1e-9 baseline_steps_per_sec in
  (* Steady-state allocation of the full kernel — physics step, sensor
     tick, trace record — in minor-heap words per step. *)
  let minor_words_per_step =
    let w = make_world () in
    let suite = Suite.create ~rng:(Rng.create 1) () in
    let trace = Avis_sitl.Trace.create () in
    let steps = ref 0 in
    let kernel () =
      ignore (World.step w ~motor_commands:cmds ~dt);
      Suite.tick suite w ~dt;
      incr steps;
      Avis_sitl.Trace.record trace ~steps:!steps ~dt w ~mode:"Manual"
    in
    for _ = 1 to 2000 do kernel () done;
    let w0 = Gc.minor_words () in
    for _ = 1 to 1000 do kernel () done;
    (Gc.minor_words () -. w0) /. 1000.0
  in
  (* Bit-identity of the optimised kernel against the reference over a
     profile that exercises climb, asymmetric thrust and descent, in calm
     and windy air. *)
  let fingerprint w =
    let b = World.body w in
    let p = Rigid_body.position_v b
    and v = Rigid_body.velocity_v b
    and q = Rigid_body.attitude_q b
    and o = Rigid_body.angular_velocity_v b in
    List.map Int64.bits_of_float
      [ p.Vec3.x; p.y; p.z; v.x; v.y; v.z; q.Quat.w; q.Quat.x; q.Quat.y;
        q.Quat.z; o.Vec3.x; o.y; o.z; World.time w ]
  in
  let profile i =
    if i < 200 then Array.make 4 (hover *. 1.2)
    else if i < 1200 then [| hover *. 1.02; hover *. 0.98; hover; hover |]
    else Array.make 4 (hover *. 0.9)
  in
  let flight_world ~windy =
    let environment =
      if windy then
        Environment.create
          ~wind:
            (Some
               { Environment.steady = Vec3.make 3.0 1.0 0.0;
                 gust_stddev = 1.0; gust_correlation_s = 1.0 })
          ()
      else Environment.benign ()
    in
    World.create ~environment ~rng:(Rng.create 7)
      ~position:(Vec3.make 0.0 0.0 0.0) ()
  in
  let flight stepf ~windy =
    let w = flight_world ~windy in
    for i = 0 to 2999 do
      ignore (stepf w ~motor_commands:(profile i) ~dt)
    done;
    fingerprint w
  in
  let kernel_identical =
    List.for_all
      (fun windy -> flight World.step ~windy = flight World.step_reference ~windy)
      [ false; true ]
  in
  (* Compact snapshot: exact byte size and capture/restore latency. *)
  let snap_world = make_world () in
  for _ = 1 to 500 do
    ignore (World.step snap_world ~motor_commands:cmds ~dt)
  done;
  let snap = World.snapshot snap_world in
  let snapshot_bytes = World.snapshot_bytes snap in
  let k = 20_000 in
  let t0 = Metrics.now_s () in
  for _ = 1 to k do
    ignore (World.snapshot snap_world)
  done;
  let snapshot_ms = 1000.0 *. (Metrics.now_s () -. t0) /. float_of_int k in
  let t0 = Metrics.now_s () in
  for _ = 1 to k do
    ignore (World.restore snap)
  done;
  let restore_ms = 1000.0 *. (Metrics.now_s () -. t0) /. float_of_int k in
  (* End-to-end outcome identity: the same small campaign with the prefix
     cache on and off must agree on every count. *)
  let bench_budget = Float.min budget_s 120.0 in
  let config cached =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = bench_budget;
      prefix_cache = cached;
      seed =
        Campaign.cell_seed ~policy:Policy.apm.Policy.name
          ~workload:Workload.auto_box.Workload.name ~approach:"hotloop" ();
    }
  in
  let run cached =
    Campaign.run (config cached) ~strategy:(fun ctx -> Sabre.make ctx)
  in
  let cold = run false in
  let cached = run true in
  let campaign_identical =
    cold.Campaign.simulations = cached.Campaign.simulations
    && Campaign.unsafe_count cold = Campaign.unsafe_count cached
    && cold.Campaign.wall_clock_spent_s = cached.Campaign.wall_clock_spent_s
    && List.map (fun f -> f.Campaign.simulation_index) cold.Campaign.findings
       = List.map (fun f -> f.Campaign.simulation_index) cached.Campaign.findings
  in
  let cache_resident_bytes, cache_evictions =
    match cached.Campaign.cache_stats with
    | Some s -> (s.Prefix_cache.resident_bytes, s.Prefix_cache.evictions)
    | None -> (0, 0)
  in
  (* Batched lanes: aggregate throughput of [lanes_width] hover worlds
     stepped in lock-step through the structure-of-arrays kernel, plus the
     two acceptance checks — every lane's 3000-step fingerprint bit-equal
     to the single-world step AND the reference step, and a lanes-on
     campaign reproducing the sequential findings and ledger exactly. *)
  let lanes_width =
    match Sys.getenv_opt "AVIS_LANES" with
    | None -> 8
    | Some _ -> max 1 (Campaign.lanes_of_env ())
  in
  let lanes_steps_per_sec =
    let pristine = World.snapshot (make_world ()) in
    let lanes = Lanes.create ~width:lanes_width ~motor_count:4 in
    let rearm () =
      for i = 0 to lanes_width - 1 do
        if Lanes.is_active lanes i then Lanes.release lanes i;
        Lanes.adopt lanes i (World.restore pristine)
      done
    in
    rearm ();
    for _ = 1 to 1000 do
      Lanes.step_all lanes ~motor_commands:cmds ~dt
    done;
    for i = 0 to lanes_width - 1 do
      Lanes.flush lanes i;
      match Lanes.world lanes i with
      | Some w when World.crashed w ->
        failwith "hotloop: batched bench vehicle crashed"
      | Some _ | None -> ()
    done;
    let remaining = ref (n / lanes_width) in
    let total = !remaining * lanes_width in
    let t0 = Metrics.now_s () in
    while !remaining > 0 do
      let k = min batch !remaining in
      rearm ();
      for _ = 1 to k do
        Lanes.step_all lanes ~motor_commands:cmds ~dt
      done;
      remaining := !remaining - k
    done;
    let s = Metrics.now_s () -. t0 in
    float_of_int total /. Float.max 1e-9 s
  in
  let lanes_ratio = lanes_steps_per_sec /. Float.max 1e-9 steps_per_sec in
  (* Minor-heap words per lock-step round of the whole batch (should be ~0
     up to GC noise: nothing in the lane kernel allocates). *)
  let lanes_minor_words_per_round =
    let lanes = Lanes.create ~width:lanes_width ~motor_count:4 in
    for i = 0 to lanes_width - 1 do
      Lanes.adopt lanes i (make_world ())
    done;
    for _ = 1 to 2000 do
      Lanes.step_all lanes ~motor_commands:cmds ~dt
    done;
    let w0 = Gc.minor_words () in
    for _ = 1 to 1000 do
      Lanes.step_all lanes ~motor_commands:cmds ~dt
    done;
    (Gc.minor_words () -. w0) /. 1000.0
  in
  let lanes_identical =
    List.for_all
      (fun windy ->
        let lanes = Lanes.create ~width:lanes_width ~motor_count:4 in
        for i = 0 to lanes_width - 1 do
          Lanes.adopt lanes i (flight_world ~windy)
        done;
        for i = 0 to 2999 do
          Lanes.step_all lanes ~motor_commands:(profile i) ~dt
        done;
        let opt = flight World.step ~windy in
        let reference = flight World.step_reference ~windy in
        opt = reference
        && List.for_all
             (fun i ->
               Lanes.flush lanes i;
               match Lanes.world lanes i with
               | Some w -> fingerprint w = reference
               | None -> false)
             (List.init lanes_width Fun.id))
      [ false; true ]
  in
  (* Lanes-on vs lanes-off campaign: random search never consults its
     observations, so the batched driver must reproduce the sequential
     findings and budget charges bit-for-bit. *)
  let lanes_config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = Float.min budget_s 60.0;
      seed =
        Campaign.cell_seed ~policy:Policy.apm.Policy.name
          ~workload:Workload.auto_box.Workload.name ~approach:"hotloop-lanes"
          ();
    }
  in
  let lanes_run w =
    Campaign.run ~lanes:w lanes_config
      ~strategy:(fun ctx -> Random_search.make ctx)
  in
  let lanes_off = lanes_run 1 in
  let lanes_on = lanes_run (max 2 lanes_width) in
  let lanes_campaign_identical =
    lanes_off.Campaign.simulations = lanes_on.Campaign.simulations
    && lanes_off.Campaign.inferences = lanes_on.Campaign.inferences
    && Campaign.unsafe_count lanes_off = Campaign.unsafe_count lanes_on
    && lanes_off.Campaign.wall_clock_spent_s
       = lanes_on.Campaign.wall_clock_spent_s
    && List.map
         (fun f -> f.Campaign.simulation_index)
         lanes_off.Campaign.findings
       = List.map
           (fun f -> f.Campaign.simulation_index)
           lanes_on.Campaign.findings
  in
  let batched_identical = lanes_identical && lanes_campaign_identical in
  let identical = kernel_identical && campaign_identical in
  let t =
    Table.create
      ~header:[ "metric"; "optimised"; "reference" ]
  in
  Table.add_row t
    [ "steps/s"; Printf.sprintf "%.2e" steps_per_sec;
      Printf.sprintf "%.2e" baseline_steps_per_sec ];
  Table.add_row t [ "speedup"; Printf.sprintf "%.1fx" speedup; "1.0x" ];
  Table.add_row t
    [ "minor words/step"; Printf.sprintf "%.3f" minor_words_per_step; "-" ];
  Table.add_row t
    [ "snapshot"; Printf.sprintf "%.4f ms / %d B" snapshot_ms snapshot_bytes;
      "-" ];
  Table.add_row t [ "restore"; Printf.sprintf "%.4f ms" restore_ms; "-" ];
  Table.add_row t
    [ Printf.sprintf "batched steps/s (%d lanes)" lanes_width;
      Printf.sprintf "%.2e (%.2fx)" lanes_steps_per_sec lanes_ratio; "-" ];
  Table.add_row t
    [ "batched minor words/round";
      Printf.sprintf "%.3f" lanes_minor_words_per_round; "-" ];
  Table.add_row t
    [ "batched identical"; (if batched_identical then "yes" else "NO");
      "baseline" ];
  Table.add_row t
    [ "identical"; (if identical then "yes" else "NO"); "baseline" ];
  Table.print t;
  Printf.printf
    "campaign cache-on vs cache-off: %s (resident %d B, %d evictions)\n"
    (if campaign_identical then "identical" else "DIVERGED")
    cache_resident_bytes cache_evictions;
  Printf.printf
    "campaign lanes-on vs lanes-off: %s (%d lanes, aggregate %.2e steps/s, \
     %.2fx single-world)\n"
    (if lanes_campaign_identical then "identical" else "DIVERGED")
    lanes_width lanes_steps_per_sec lanes_ratio;
  let json =
    Json.Assoc
      [
        ("steps_per_sec", Json.Number steps_per_sec);
        ("baseline_steps_per_sec", Json.Number baseline_steps_per_sec);
        ("speedup", Json.Number speedup);
        ("minor_words_per_step", Json.Number minor_words_per_step);
        ("snapshot_ms", Json.Number snapshot_ms);
        ("snapshot_bytes", Json.int snapshot_bytes);
        ("restore_ms", Json.Number restore_ms);
        ("cache_resident_bytes", Json.int cache_resident_bytes);
        ("cache_evictions", Json.int cache_evictions);
        ("identical", Json.Bool identical);
        ( "batched",
          Json.Assoc
            [
              ("lanes", Json.int lanes_width);
              ("aggregate_steps_per_sec", Json.Number lanes_steps_per_sec);
              ("ratio_vs_single", Json.Number lanes_ratio);
              ( "ratio_vs_reference",
                Json.Number
                  (lanes_steps_per_sec
                  /. Float.max 1e-9 baseline_steps_per_sec) );
              ( "minor_words_per_round",
                Json.Number lanes_minor_words_per_round );
              ("lane_fingerprints_identical", Json.Bool lanes_identical);
              ("campaign_identical", Json.Bool lanes_campaign_identical);
              ("identical", Json.Bool batched_identical);
            ] );
      ]
  in
  let path = "BENCH_hotloop.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string_pretty json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Scheduling: cost-model-guided LPT vs static shards                   *)
(* ------------------------------------------------------------------ *)

(* A deliberately skewed matrix — twelve short cells plus one ~4.5x
   longer cell, long cell last in arrival order — is where scheduling
   policy shows: round-robin static shards trap the long cell behind a
   shard-mate backlog, and arrival-order dispatch starts it last so it
   straggles. Makespans are computed by deterministic list-scheduling
   simulation over each cell's measured duration (a real parallel run's
   wall-clock would measure the CI runner's core count, not the
   scheduler); the real runs below feed the identity check instead. *)

type sched_spec = {
  sname : string;
  spolicy : Policy.t;
  sbudget_s : float;
  sbase : int;  (** Base seed: distinct per short cell. *)
}

let sched_workers = 4

let sched_specs =
  let short_budget_s = 20.0 in
  List.init 12 (fun i ->
      {
        sname = Printf.sprintf "short%02d" i;
        spolicy = Policy.apm;
        sbudget_s = short_budget_s;
        sbase = i + 1;
      })
  (* Same approach and workload as the shorts but a different firmware:
     a distinct cost-model class (the label keys approach x firmware x
     workload). The px4 model costs roughly half the wall-clock of apm
     per modelled second, so 8.5x the modelled budget lands the long
     cell's wall time near 4x a short's — the skew that maximises the
     static-shard straggler penalty ((3s + L) vs max(L, 4s)). *)
  @ [ { sname = "long"; spolicy = Policy.px4;
        sbudget_s = 8.5 *. short_budget_s; sbase = 1 } ]

let sched_config spec =
  {
    (Campaign.default_config spec.spolicy Workload.quickstart) with
    Campaign.budget_s = spec.sbudget_s;
    seed =
      Campaign.cell_seed ~base:spec.sbase ~policy:spec.spolicy.Policy.name
        ~workload:Workload.quickstart.Workload.name ~approach:"random" ();
  }

let sched_label spec =
  Campaign.label_of (sched_config spec) ~approach:"random"

(* The canonical journal-record bytes, elapsed normalized out (wall
   measurements differ run to run; everything that matters — counts,
   spent bits, findings — must not). *)
let sched_digest spec (result : Campaign.result) =
  let record =
    Campaign.record_of_result (sched_config spec) ~approach:"random"
      ~fingerprint:"sched-bench" result
  in
  Json.to_string
    (Run_journal.record_to_json { record with Run_journal.elapsed_bits = None })

let sched_run spec =
  Campaign.run (sched_config spec) ~strategy:(fun ctx -> Random_search.make ctx)

(* Greedy list scheduling (earliest-free worker takes the next cell in
   [order]): what the pull dispatcher converges to when every cell's
   duration is known. Returns the makespan and per-worker busy seconds. *)
let sched_simulate ~workers order =
  let free = Array.make workers 0.0 in
  let busy = Array.make workers 0.0 in
  List.iter
    (fun (_, d) ->
      let w = ref 0 in
      Array.iteri (fun i t -> if t < free.(!w) then w := i) free;
      free.(!w) <- free.(!w) +. d;
      busy.(!w) <- busy.(!w) +. d)
    order;
  (Array.fold_left Float.max 0.0 free, busy)

let sched_bench () =
  section "Scheduling (pull dispatch + LPT vs static shards)";
  (* Sequential reference: measures every cell's duration (the cost
     model's training data and the simulation's ground truth) and fixes
     the result bytes the parallel runs must reproduce. *)
  let reference =
    List.map
      (fun spec ->
        let t0 = Metrics.now_s () in
        let result = sched_run spec in
        let elapsed_s = Metrics.now_s () -. t0 in
        (spec, sched_digest spec result, elapsed_s))
      sched_specs
  in
  let cost = Cost_model.create () in
  List.iter
    (fun (spec, _, elapsed_s) ->
      Cost_model.observe cost ~label:(sched_label spec) ~elapsed_s)
    reference;
  let arrival = List.map (fun (spec, _, d) -> (spec, d)) reference in
  (* Heaviest predicted first, through the same model the daemon and the
     matrix runners use; ties keep arrival order. *)
  let weight spec =
    Cost_model.predict cost ~label:(sched_label spec) ~budget_s:spec.sbudget_s
  in
  let lpt =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare (weight b) (weight a))
      arrival
  in
  (* The historical static schedule: cells round-robined into one shard
     per worker up front, each shard a sequential run. *)
  let shard_sums =
    List.map
      (fun shard -> List.fold_left (fun acc (_, d) -> acc +. d) 0.0 shard)
      (Avis_server.Worker.shard_cells ~shards:sched_workers arrival)
  in
  let makespan_static = List.fold_left Float.max 0.0 shard_sums in
  let makespan_pull_arrival, _ =
    sched_simulate ~workers:sched_workers arrival
  in
  let makespan_pull_lpt, busy = sched_simulate ~workers:sched_workers lpt in
  let makespan_ratio = makespan_static /. Float.max 1e-9 makespan_pull_lpt in
  let lpt_gain = makespan_pull_arrival /. Float.max 1e-9 makespan_pull_lpt in
  let speedup_ok = makespan_ratio >= 1.5 in
  (* Identity: the same cells through a real static-shard run and a real
     pull-order (LPT) run must reproduce the sequential bytes exactly —
     scheduling must never touch results. *)
  let digests_of run_name results =
    List.map2
      (fun (spec, want, _) got ->
        let ok = got = want in
        if not ok then
          Printf.eprintf "[bench] sched: %s diverged on %s\n%!" run_name
            spec.sname;
        ok)
      reference results
  in
  let static_results =
    Pool.map ~jobs:sched_workers
      (fun shard -> List.map (fun (spec, _) -> sched_digest spec (sched_run spec)) shard)
      (Avis_server.Worker.shard_cells ~shards:sched_workers arrival)
    |> List.concat
  in
  (* Shards permute the cells; compare by name against the reference. *)
  let static_by_ref =
    let shard_specs =
      List.concat (Avis_server.Worker.shard_cells ~shards:sched_workers arrival)
    in
    List.map
      (fun (spec, _, _) ->
        let rec find = function
          | [] -> ""
          | ((s, _), digest) :: rest ->
            if s.sname = spec.sname then digest else find rest
        in
        find (List.combine shard_specs static_results))
      reference
  in
  let lpt_results =
    Pool.map_lpt ~jobs:sched_workers ~weight:(fun (spec, _) -> weight spec)
      (fun (spec, _) -> sched_digest spec (sched_run spec))
      arrival
  in
  let identical =
    List.for_all Fun.id (digests_of "static-shard run" static_by_ref)
    && List.for_all Fun.id (digests_of "pull-LPT run" lpt_results)
  in
  let total_busy = Array.fold_left ( +. ) 0.0 busy in
  Printf.printf
    "13 cells (12 short + 1 long), %d workers\n\
     static shards, arrival order: makespan %.2f s\n\
     pull dispatch, arrival order: makespan %.2f s\n\
     pull dispatch, LPT order:     makespan %.2f s\n\
     static/LPT ratio %.2fx (gate >= 1.5x: %s), LPT/arrival gain %.2fx\n\
     results identical across schedules: %b\n"
    sched_workers makespan_static makespan_pull_arrival makespan_pull_lpt
    makespan_ratio
    (if speedup_ok then "ok" else "MISSED")
    lpt_gain identical;
  let json =
    Json.Assoc
      [
        ("workers", Json.int sched_workers);
        ("cells", Json.int (List.length sched_specs));
        ( "durations_s",
          Json.Assoc
            (List.map
               (fun (spec, _, d) -> (spec.sname, Json.Number d))
               reference) );
        ("makespan_static_shard_s", Json.Number makespan_static);
        ("makespan_pull_arrival_s", Json.Number makespan_pull_arrival);
        ("makespan_pull_lpt_s", Json.Number makespan_pull_lpt);
        ("makespan_ratio", Json.Number makespan_ratio);
        ("lpt_gain", Json.Number lpt_gain);
        ("speedup_ok", Json.Bool speedup_ok);
        ( "workers_busy_fraction",
          Json.List
            (List.map
               (fun b ->
                 Json.Number (b /. Float.max 1e-9 makespan_pull_lpt))
               (Array.to_list busy)) );
        ( "workers_idle_fraction",
          Json.List
            (List.map
               (fun b ->
                 Json.Number (1.0 -. (b /. Float.max 1e-9 makespan_pull_lpt)))
               (Array.to_list busy)) );
        ( "parallel_efficiency",
          Json.Number
            (total_busy
            /. Float.max 1e-9
                 (float_of_int sched_workers *. makespan_pull_lpt)) );
        ("identical", Json.Bool identical);
      ]
  in
  let path = "BENCH_sched.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string_pretty json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Simulator characteristics (the paper's slowdown discussion)          *)
(* ------------------------------------------------------------------ *)

let simulator_stats () =
  section "Simulator characteristics";
  let golden = run_auto_box Policy.apm ~enabled:[] ~plan:[] in
  Printf.printf
    "auto-box mission: %.1f simulated s, %d sensor reads (%.0f reads/s), %d \
     mode transitions\n"
    golden.Avis_sitl.Sim.duration golden.Avis_sitl.Sim.sensor_reads
    (float_of_int golden.Avis_sitl.Sim.sensor_reads /. golden.Avis_sitl.Sim.duration)
    (List.length golden.Avis_sitl.Sim.transitions);
  (* Monotonic: a wall-clock step (NTP, DST) must not skew the ratio. *)
  let t0 = Metrics.now_s () in
  ignore (run_auto_box Policy.apm ~enabled:[] ~plan:[]);
  let real = Metrics.now_s () -. t0 in
  Printf.printf "real-time speed-up on this machine: %.0fx\n"
    (golden.Avis_sitl.Sim.duration /. real)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  (* One Test.make per table/figure driver cost centre. *)
  let sim_step =
    let sim =
      Avis_sitl.Sim.create
        { (Avis_sitl.Sim.default_config Policy.apm) with
          Avis_sitl.Sim.max_duration = 1.0e12 }
    in
    Test.make ~name:"table2-4: simulation step"
      (Staged.stage (fun () -> Avis_sitl.Sim.step sim))
  in
  let monitor_check =
    let config = Campaign.default_config Policy.apm Workload.auto_box in
    let profile, _, golden = Campaign.profile_and_context config in
    Test.make ~name:"table3: monitor check of one run"
      (Staged.stage (fun () -> ignore (Monitor.check profile golden)))
  in
  let sabre_schedule =
    Test.make ~name:"fig5: SABRE scheduling decision"
      (Staged.stage
         (let ctx =
            {
              Search.transitions = [ (2.0, "Pre-Flight", "Takeoff") ];
              mission_duration = 1.0e9;
              instances = Suite.instances_of_complement Suite.iris_complement;
              instances_of_kind = (fun _ -> 2);
              mode_at = (fun _ -> Some "Takeoff");
              rng = Rng.create 0;
            }
          in
          let searcher = Sabre.make ctx in
          fun () ->
            match searcher.Search.next () with
            | Search.Run (s, _) ->
              searcher.Search.observe s
                { Search.unsafe = false; observed_transitions = [] }
            | Search.Think _ | Search.Exhausted -> ()))
  in
  let bfi_inference =
    let model = Bfi_model.default () in
    let features =
      { Bfi_model.mode_class = "Waypoint"; kinds = [ Sensor.Gps ];
        whole_kind_lost = true; multiplicity = 1 }
    in
    Test.make ~name:"table1: BFI model inference"
      (Staged.stage (fun () -> ignore (Bfi_model.predict model features)))
  in
  let frame_codec =
    let msg = Avis_mavlink.Msg.Heartbeat { custom_mode = 3; armed = true; system_status = 4 } in
    Test.make ~name:"fig7: frame encode+decode"
      (Staged.stage (fun () ->
           let encoded = Avis_mavlink.Frame.encode ~seq:0 ~sysid:1 ~compid:1 msg in
           ignore (Avis_mavlink.Frame.feed (Avis_mavlink.Frame.decoder ()) encoded)))
  in
  let tests =
    Test.make_grouped ~name:"avis"
      [ sim_step; monitor_check; sabre_schedule; bfi_inference; frame_codec ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark () in
  let t = Table.create ~header:[ "benchmark"; "ns/run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (v :: _) -> Printf.sprintf "%.0f" v
        | Some [] | None -> "n/a"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter (fun (name, ns) -> Table.add_row t [ name; ns ])
    (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "Avis reproduction benchmarks (budget %.0f s of modelled wall-clock per \
     approach per workload, %d campaign domain(s); override with AVIS_BUDGET \
     and AVIS_JOBS%s)\n"
    budget_s jobs
    (if tracing then "; tracing ON (AVIS_TRACE)" else "");
  (* AVIS_BENCH_ONLY=<part> runs a single section — CI uses it to replay
     the store section against a persistent store dir without re-running
     the whole evaluation. *)
  let only =
    match Sys.getenv_opt "AVIS_BENCH_ONLY" with
    | Some v when String.trim v <> "" -> Some (String.trim v)
    | _ -> None
  in
  let parts =
    [
      ("table1", table1);
      ("fig3", fig3);
      ("fig5", fig5);
      ("fig6", fig6);
      ("fig1", fig1);
      ("fig9", fig9);
      ("fig10", fig10);
      ("table2", table2);
      ("table3", table3);
      ("table4", table4);
      ("table5", table5);
      ("ablation_search_order", ablation_search_order);
      ("ablation_liveliness_metric", ablation_liveliness_metric);
      ("ablation_replay", ablation_replay);
      ("prefix_cache", prefix_cache_bench);
      ("store", store_bench);
      ("link_faults", link_faults_bench);
      ("hotloop", hotloop_bench);
      ("sched", sched_bench);
      ("simulator_stats", simulator_stats);
      ("micro", micro_benchmarks);
    ]
  in
  (* A typo'd section name must fail loudly: silently running zero
     sections and exiting 0 turns a broken CI invocation into a pass. *)
  (match only with
  | Some o when not (List.mem_assoc o parts) ->
    Printf.eprintf
      "avis_bench: unknown AVIS_BENCH_ONLY section %S.\nValid sections: %s\n"
      o
      (String.concat ", " (List.map fst parts));
    exit 2
  | Some _ | None -> ());
  List.iter
    (fun (name, f) ->
      match only with
      | Some o when o <> name -> ()
      | _ -> Trace.span ~cat:"bench" ("bench." ^ name) f)
    parts;
  if tracing then begin
    Trace.write_chrome ~path:trace_path;
    section "Trace: per-phase wall-clock attribution";
    Printf.printf
      "wrote %s (%d events; open in https://ui.perfetto.dev or \
       chrome://tracing)\n"
      trace_path (Trace.event_count ());
    print_string (Table.render (Trace.summary_table ()));
    print_newline ()
  end
