open Avis_firmware
open Avis_mavlink

type config = {
  policy : Policy.t;
  enabled_bugs : Bug.id list;
  seed : int;
  dt : float;
  max_duration : float;
  link_jitter_steps : int;
  link_faults : Link.fault_profile;
  environment : Avis_physics.Environment.t option;
  airframe : Avis_physics.Airframe.t;
}

let default_config policy =
  {
    policy;
    enabled_bugs = Bug.unknown_bugs policy.Policy.firmware;
    seed = 0;
    dt = 0.004;
    max_duration = 120.0;
    link_jitter_steps = 2;
    link_faults = Link.no_faults;
    environment = None;
    airframe = Avis_physics.Airframe.iris;
  }

(* While a harness is bound to a batch lane, [step] advances the physics
   and battery through the lane kernels instead of [World.step]/[Suite.tick]
   — bit-identical by the lane identity property, and the lane flushes every
   step so the world object stays coherent for the firmware, monitors and
   snapshots. *)
type lane_binding = {
  lb_phys : Avis_physics.Lanes.t;
  lb_sens : Avis_sensors.Lanes.t;
  lb_slot : int;
}

type t = {
  config : config;
  frame : Avis_geo.Geodesy.frame;
  world : Avis_physics.World.t;
  suite : Avis_sensors.Suite.t;
  hinj : Avis_hinj.Hinj.t;
  vehicle : Vehicle.t;
  link : Link.t;
  gcs : Gcs.t;
  trace : Trace.t;
  mutable steps : int;
  mutable lane : lane_binding option;
}

(* The local frame is anchored at a fixed home location (the PX4 SITL
   default near Zurich); all workloads use coordinates relative to it. *)
let home_geodetic = { Avis_geo.Geodesy.lat = 47.397742; lon = 8.545594; alt = 0.0 }

(* Seconds to the step whose send window covers that instant; the small
   epsilon keeps times that land exactly on a step boundary on that step. *)
let steps_of_time ~dt at = int_of_float (Float.ceil ((at /. dt) -. 1e-6))

let outage_windows ~dt spans =
  List.map
    (fun (at, duration) ->
      {
        Link.from_step = steps_of_time ~dt at;
        until_step = steps_of_time ~dt (at +. duration);
      })
    spans

let create ?(plan = []) ?(degradations = []) ?(link_outages = []) config =
  Avis_util.Trace.span ~cat:"sim" "sim.create" @@ fun () ->
  let rng = Avis_util.Rng.create config.seed in
  let env_rng = Avis_util.Rng.split rng in
  let suite_rng = Avis_util.Rng.split rng in
  let jitter_rng = Avis_util.Rng.split rng in
  (* Split unconditionally so the env/suite/jitter streams stay where they
     were before channel faults existed, whatever the profile. *)
  let link_fault_rng = Avis_util.Rng.split rng in
  (* Copy the caller's environment: it carries mutable gust state, and two
     sims built from one config must not couple through it. *)
  let environment =
    match config.environment with
    | Some e -> Avis_physics.Environment.copy e
    | None -> Avis_physics.Environment.benign ()
  in
  let world =
    Avis_physics.World.create ~environment ~rng:env_rng
      ~airframe:config.airframe ()
  in
  let suite = Avis_sensors.Suite.create ~rng:suite_rng () in
  let hinj = Avis_hinj.Hinj.create ~plan ~degradations () in
  let link =
    let outages = outage_windows ~dt:config.dt link_outages in
    let faults = (config.link_faults, link_fault_rng) in
    if config.link_jitter_steps > 0 then
      Link.create ~jitter:(jitter_rng, config.link_jitter_steps) ~faults
        ~outages ()
    else Link.create ~faults ~outages ()
  in
  let frame = Avis_geo.Geodesy.frame_at home_geodetic in
  let bugs = Bug.registry ~enabled:config.enabled_bugs config.policy.Policy.firmware in
  let vehicle =
    Vehicle.create
      ?fence:(Avis_physics.Environment.fence environment)
      ~airframe:config.airframe ~policy:config.policy ~bugs ~suite ~hinj ~link
      ~frame ()
  in
  let trace = Trace.create () in
  { config; frame; world; suite; hinj; vehicle; link; gcs = Gcs.create link;
    trace; steps = 0; lane = None }

type snapshot = {
  snap_config : config;
  snap_frame : Avis_geo.Geodesy.frame;
  snap_world : Avis_physics.World.snapshot;
  snap_suite : Avis_sensors.Suite.snapshot;
  snap_hinj : Avis_hinj.Hinj.snapshot;
  snap_vehicle : Vehicle.snapshot;
  snap_link : Link.snapshot;
  snap_gcs : Gcs.snapshot;
  snap_trace : Trace.snapshot;
  snap_steps : int;
}

let snapshot t =
  Avis_util.Trace.span ~cat:"sim" "sim.snapshot" @@ fun () ->
  {
    snap_config = t.config;
    snap_frame = t.frame;
    snap_world = Avis_physics.World.snapshot t.world;
    snap_suite = Avis_sensors.Suite.snapshot t.suite;
    snap_hinj = Avis_hinj.Hinj.snapshot t.hinj;
    snap_vehicle = Vehicle.snapshot t.vehicle;
    snap_link = Link.snapshot t.link;
    snap_gcs = Gcs.snapshot t.gcs;
    snap_trace = Trace.snapshot t.trace;
    snap_steps = t.steps;
  }

let snapshot_bytes s =
  Obj.reachable_words (Obj.repr s) * (Sys.word_size / 8)

let restore ?plan ?link_outages s =
  (* A restore with a substituted plan or outage schedule is the fork
     operation, the span every prefix-cache hit hangs off. *)
  Avis_util.Trace.span ~cat:"sim" "sim.restore" @@ fun () ->
  let world = Avis_physics.World.restore s.snap_world in
  let suite = Avis_sensors.Suite.restore s.snap_suite in
  let hinj = Avis_hinj.Hinj.restore ?plan s.snap_hinj in
  let outages =
    Option.map (outage_windows ~dt:s.snap_config.dt) link_outages
  in
  let link = Link.restore ?outages s.snap_link in
  let vehicle = Vehicle.restore ~suite ~hinj ~link s.snap_vehicle in
  let gcs = Gcs.restore ~link s.snap_gcs in
  {
    config = s.snap_config;
    frame = s.snap_frame;
    world;
    suite;
    hinj;
    vehicle;
    link;
    gcs;
    trace = Trace.restore s.snap_trace;
    steps = s.snap_steps;
    lane = None;
  }

let config t = t.config
let frame t = t.frame
let gcs t = t.gcs
let link t = t.link
let world t = t.world
let vehicle t = t.vehicle
let hinj t = t.hinj
let trace t = t.trace
let time t = float_of_int t.steps *. t.config.dt
let steps t = t.steps

let finished t =
  Avis_physics.World.crashed t.world || time t >= t.config.max_duration

let step t =
  if not (finished t) then begin
    t.steps <- t.steps + 1;
    Link.step t.link;
    let motors = Vehicle.step t.vehicle t.world ~dt:t.config.dt in
    (match t.lane with
    | None ->
      let (_ : Avis_physics.World.contact_event option) =
        Avis_physics.World.step t.world ~motor_commands:motors ~dt:t.config.dt
      in
      Avis_sensors.Suite.tick t.suite t.world ~dt:t.config.dt
    | Some lb ->
      let (_ : Avis_physics.World.contact_event option) =
        Avis_physics.Lanes.step lb.lb_phys lb.lb_slot ~motor_commands:motors
          ~dt:t.config.dt
      in
      Avis_sensors.Lanes.tick lb.lb_sens lb.lb_slot ~dt:t.config.dt);
    (* Pass steps and dt rather than a freshly computed time: [record]
       rebuilds the identical float internally, and the call site stays
       free of a boxed-float argument. *)
    Trace.record t.trace ~steps:t.steps ~dt:t.config.dt t.world
      ~mode:(Phase.label (Vehicle.phase t.vehicle));
    ignore (Gcs.tick t.gcs ~time:(time t))
  end

let run_until t pred =
  let rec loop () =
    if pred t then true
    else if finished t then pred t
    else begin
      step t;
      loop ()
    end
  in
  loop ()

type outcome = {
  trace : Trace.t;
  crash : Avis_physics.World.contact_event option;
  fence_breached : bool;
  workload_passed : bool;
  transitions : Avis_hinj.Hinj.transition list;
  triggered_bugs : Bug.id list;
  duration : float;
  sensor_reads : int;
}

let outcome (t : t) ~workload_passed =
  {
    trace = t.trace;
    crash = Avis_physics.World.crash_event t.world;
    fence_breached = Avis_physics.World.fence_breached t.world;
    workload_passed;
    transitions = Avis_hinj.Hinj.transitions t.hinj;
    triggered_bugs = Vehicle.triggered_bugs t.vehicle;
    duration = time t;
    sensor_reads = Avis_hinj.Hinj.read_count t.hinj;
  }

let encode_config b (c : config) =
  let open Avis_util.Codec in
  w_version b 1;
  w_u8 b (match c.policy.Policy.firmware with Bug.Ardupilot -> 0 | Bug.Px4 -> 1);
  w_list b Bug.encode_id c.enabled_bugs;
  w_int b c.seed;
  w_f64 b c.dt;
  w_f64 b c.max_duration;
  w_int b c.link_jitter_steps;
  w_f64 b c.link_faults.Link.drop;
  w_f64 b c.link_faults.Link.corrupt;
  w_f64 b c.link_faults.Link.duplicate;
  w_option b Avis_physics.Environment.encode c.environment;
  Avis_physics.Airframe.encode b c.airframe

let decode_config r : config =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let policy =
    match r_u8 r with
    | 0 -> Policy.of_firmware Bug.Ardupilot
    | 1 -> Policy.of_firmware Bug.Px4
    | t -> corrupt "bad firmware tag %d" t
  in
  let enabled_bugs = r_list r Bug.decode_id in
  let seed = r_int r in
  let dt = r_f64 r in
  let max_duration = r_f64 r in
  let link_jitter_steps = r_int r in
  let drop = r_f64 r in
  let corrupt_p = r_f64 r in
  let duplicate = r_f64 r in
  let environment = r_option r Avis_physics.Environment.decode in
  let airframe = Avis_physics.Airframe.decode r in
  {
    policy;
    enabled_bugs;
    seed;
    dt;
    max_duration;
    link_jitter_steps;
    link_faults = { Link.drop; corrupt = corrupt_p; duplicate };
    environment;
    airframe;
  }

let config_to_bytes c = Avis_util.Codec.to_string encode_config c

(* Each layer travels as a length-prefixed blob so the layers version
   independently: bumping one codec's version invalidates only its blob's
   decoding, and the outer layout never changes. *)
let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  encode_config b s.snap_config;
  Avis_geo.Geodesy.encode_frame b s.snap_frame;
  w_bytes b (to_string Avis_physics.World.encode_snapshot s.snap_world);
  w_bytes b (Avis_sensors.Suite.to_bytes s.snap_suite);
  w_bytes b (Avis_hinj.Hinj.to_bytes s.snap_hinj);
  w_bytes b (Link.to_bytes s.snap_link);
  w_bytes b (Vehicle.to_bytes s.snap_vehicle);
  w_bytes b (Gcs.to_bytes s.snap_gcs);
  w_bytes b (Trace.to_bytes s.snap_trace);
  w_int b s.snap_steps

let decode_snapshot r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let snap_config = decode_config r in
  let snap_frame = Avis_geo.Geodesy.decode_frame r in
  let snap_world = of_string Avis_physics.World.decode_snapshot (r_bytes r) in
  let snap_suite = Avis_sensors.Suite.of_bytes (r_bytes r) in
  let snap_hinj = Avis_hinj.Hinj.of_bytes (r_bytes r) in
  let snap_link = Link.of_bytes (r_bytes r) in
  (* The vehicle and GCS decoders need live collaborators to attach to;
     [restore] substitutes its own, so these interim instances only give
     the decoded records well-typed fields. *)
  let suite = Avis_sensors.Suite.restore snap_suite in
  let hinj = Avis_hinj.Hinj.restore snap_hinj in
  let link = Link.restore snap_link in
  let snap_vehicle = Vehicle.of_bytes ~suite ~hinj ~link (r_bytes r) in
  let snap_gcs = Gcs.of_bytes ~link (r_bytes r) in
  let snap_trace = Trace.of_bytes (r_bytes r) in
  let snap_steps = r_int r in
  {
    snap_config;
    snap_frame;
    snap_world;
    snap_suite;
    snap_hinj;
    snap_vehicle;
    snap_link;
    snap_gcs;
    snap_trace;
    snap_steps;
  }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s
let of_bytes data = Avis_util.Codec.of_string decode_snapshot data

module Batch = struct
  type sim = t

  type nonrec t = {
    phys : Avis_physics.Lanes.t;
    sens : Avis_sensors.Lanes.t;
    sims : sim option array;
    motor_count : int;
    mutable forks : int;
    mutable retired : int;
  }

  let create ~width ~motor_count =
    {
      phys = Avis_physics.Lanes.create ~width ~motor_count;
      sens = Avis_sensors.Lanes.create ~width;
      sims = Array.make width None;
      motor_count;
      forks = 0;
      retired = 0;
    }

  let width b = Avis_physics.Lanes.width b.phys
  let active b = Avis_physics.Lanes.active b.phys
  let free_slot b = Avis_physics.Lanes.free_slot b.phys
  let sim b slot = b.sims.(slot)

  let[@inline] emit_active b =
    Avis_util.Trace.counter "lanes.active" (float_of_int (active b))

  let adopt b sim =
    let frame = Avis_physics.World.airframe sim.world in
    if frame.Avis_physics.Airframe.motor_count <> b.motor_count then None
    else
      match (free_slot b, sim.lane) with
      | None, _ | _, Some _ -> None
      | Some slot, None ->
        Avis_physics.Lanes.adopt b.phys slot sim.world;
        Avis_sensors.Lanes.adopt b.sens slot sim.suite sim.world;
        b.sims.(slot) <- Some sim;
        sim.lane <- Some { lb_phys = b.phys; lb_sens = b.sens; lb_slot = slot };
        b.forks <- b.forks + 1;
        Avis_util.Trace.counter "lanes.forks" (float_of_int b.forks);
        emit_active b;
        Some slot

  let release b slot =
    match b.sims.(slot) with
    | None -> ()
    | Some sim ->
      Avis_physics.Lanes.release b.phys slot;
      Avis_sensors.Lanes.release b.sens slot;
      sim.lane <- None;
      b.sims.(slot) <- None;
      b.retired <- b.retired + 1;
      Avis_util.Trace.counter "lanes.retired" (float_of_int b.retired);
      emit_active b

  let retire_finished b =
    let n = ref 0 in
    for slot = 0 to Array.length b.sims - 1 do
      match b.sims.(slot) with
      | Some sim when finished sim ->
        release b slot;
        incr n
      | Some _ | None -> ()
    done;
    !n

  let forks b = b.forks
  let retired b = b.retired
end
