open Avis_firmware
open Avis_mavlink

type config = {
  policy : Policy.t;
  enabled_bugs : Bug.id list;
  seed : int;
  dt : float;
  max_duration : float;
  link_jitter_steps : int;
  link_faults : Link.fault_profile;
  environment : Avis_physics.Environment.t option;
  airframe : Avis_physics.Airframe.t;
}

let default_config policy =
  {
    policy;
    enabled_bugs = Bug.unknown_bugs policy.Policy.firmware;
    seed = 0;
    dt = 0.004;
    max_duration = 120.0;
    link_jitter_steps = 2;
    link_faults = Link.no_faults;
    environment = None;
    airframe = Avis_physics.Airframe.iris;
  }

type t = {
  config : config;
  frame : Avis_geo.Geodesy.frame;
  world : Avis_physics.World.t;
  suite : Avis_sensors.Suite.t;
  hinj : Avis_hinj.Hinj.t;
  vehicle : Vehicle.t;
  link : Link.t;
  gcs : Gcs.t;
  trace : Trace.t;
  mutable steps : int;
}

(* The local frame is anchored at a fixed home location (the PX4 SITL
   default near Zurich); all workloads use coordinates relative to it. *)
let home_geodetic = { Avis_geo.Geodesy.lat = 47.397742; lon = 8.545594; alt = 0.0 }

(* Seconds to the step whose send window covers that instant; the small
   epsilon keeps times that land exactly on a step boundary on that step. *)
let steps_of_time ~dt at = int_of_float (Float.ceil ((at /. dt) -. 1e-6))

let outage_windows ~dt spans =
  List.map
    (fun (at, duration) ->
      {
        Link.from_step = steps_of_time ~dt at;
        until_step = steps_of_time ~dt (at +. duration);
      })
    spans

let create ?(plan = []) ?(degradations = []) ?(link_outages = []) config =
  Avis_util.Trace.span ~cat:"sim" "sim.create" @@ fun () ->
  let rng = Avis_util.Rng.create config.seed in
  let env_rng = Avis_util.Rng.split rng in
  let suite_rng = Avis_util.Rng.split rng in
  let jitter_rng = Avis_util.Rng.split rng in
  (* Split unconditionally so the env/suite/jitter streams stay where they
     were before channel faults existed, whatever the profile. *)
  let link_fault_rng = Avis_util.Rng.split rng in
  let environment =
    match config.environment with
    | Some e -> e
    | None -> Avis_physics.Environment.benign ()
  in
  let world =
    Avis_physics.World.create ~environment ~rng:env_rng
      ~airframe:config.airframe ()
  in
  let suite = Avis_sensors.Suite.create ~rng:suite_rng () in
  let hinj = Avis_hinj.Hinj.create ~plan ~degradations () in
  let link =
    let outages = outage_windows ~dt:config.dt link_outages in
    let faults = (config.link_faults, link_fault_rng) in
    if config.link_jitter_steps > 0 then
      Link.create ~jitter:(jitter_rng, config.link_jitter_steps) ~faults
        ~outages ()
    else Link.create ~faults ~outages ()
  in
  let frame = Avis_geo.Geodesy.frame_at home_geodetic in
  let bugs = Bug.registry ~enabled:config.enabled_bugs config.policy.Policy.firmware in
  let vehicle =
    Vehicle.create
      ?fence:(Avis_physics.Environment.fence environment)
      ~airframe:config.airframe ~policy:config.policy ~bugs ~suite ~hinj ~link
      ~frame ()
  in
  let trace = Trace.create () in
  { config; frame; world; suite; hinj; vehicle; link; gcs = Gcs.create link;
    trace; steps = 0 }

type snapshot = {
  snap_config : config;
  snap_frame : Avis_geo.Geodesy.frame;
  snap_world : Avis_physics.World.snapshot;
  snap_suite : Avis_sensors.Suite.snapshot;
  snap_hinj : Avis_hinj.Hinj.snapshot;
  snap_vehicle : Vehicle.snapshot;
  snap_link : Link.snapshot;
  snap_gcs : Gcs.snapshot;
  snap_trace : Trace.snapshot;
  snap_steps : int;
}

let snapshot t =
  Avis_util.Trace.span ~cat:"sim" "sim.snapshot" @@ fun () ->
  {
    snap_config = t.config;
    snap_frame = t.frame;
    snap_world = Avis_physics.World.snapshot t.world;
    snap_suite = Avis_sensors.Suite.snapshot t.suite;
    snap_hinj = Avis_hinj.Hinj.snapshot t.hinj;
    snap_vehicle = Vehicle.snapshot t.vehicle;
    snap_link = Link.snapshot t.link;
    snap_gcs = Gcs.snapshot t.gcs;
    snap_trace = Trace.snapshot t.trace;
    snap_steps = t.steps;
  }

let snapshot_bytes s =
  Obj.reachable_words (Obj.repr s) * (Sys.word_size / 8)

let restore ?plan ?link_outages s =
  (* A restore with a substituted plan or outage schedule is the fork
     operation, the span every prefix-cache hit hangs off. *)
  Avis_util.Trace.span ~cat:"sim" "sim.restore" @@ fun () ->
  let world = Avis_physics.World.restore s.snap_world in
  let suite = Avis_sensors.Suite.restore s.snap_suite in
  let hinj = Avis_hinj.Hinj.restore ?plan s.snap_hinj in
  let outages =
    Option.map (outage_windows ~dt:s.snap_config.dt) link_outages
  in
  let link = Link.restore ?outages s.snap_link in
  let vehicle = Vehicle.restore ~suite ~hinj ~link s.snap_vehicle in
  let gcs = Gcs.restore ~link s.snap_gcs in
  {
    config = s.snap_config;
    frame = s.snap_frame;
    world;
    suite;
    hinj;
    vehicle;
    link;
    gcs;
    trace = Trace.restore s.snap_trace;
    steps = s.snap_steps;
  }

let config t = t.config
let frame t = t.frame
let gcs t = t.gcs
let link t = t.link
let world t = t.world
let vehicle t = t.vehicle
let hinj t = t.hinj
let trace t = t.trace
let time t = float_of_int t.steps *. t.config.dt
let steps t = t.steps

let finished t =
  Avis_physics.World.crashed t.world || time t >= t.config.max_duration

let step t =
  if not (finished t) then begin
    t.steps <- t.steps + 1;
    Link.step t.link;
    let motors = Vehicle.step t.vehicle t.world ~dt:t.config.dt in
    let (_ : Avis_physics.World.contact_event option) =
      Avis_physics.World.step t.world ~motor_commands:motors ~dt:t.config.dt
    in
    Avis_sensors.Suite.tick t.suite t.world ~dt:t.config.dt;
    (* Pass steps and dt rather than a freshly computed time: [record]
       rebuilds the identical float internally, and the call site stays
       free of a boxed-float argument. *)
    Trace.record t.trace ~steps:t.steps ~dt:t.config.dt t.world
      ~mode:(Phase.label (Vehicle.phase t.vehicle));
    ignore (Gcs.tick t.gcs ~time:(time t))
  end

let run_until t pred =
  let rec loop () =
    if pred t then true
    else if finished t then pred t
    else begin
      step t;
      loop ()
    end
  in
  loop ()

type outcome = {
  trace : Trace.t;
  crash : Avis_physics.World.contact_event option;
  fence_breached : bool;
  workload_passed : bool;
  transitions : Avis_hinj.Hinj.transition list;
  triggered_bugs : Bug.id list;
  duration : float;
  sensor_reads : int;
}

let outcome (t : t) ~workload_passed =
  {
    trace = t.trace;
    crash = Avis_physics.World.crash_event t.world;
    fence_breached = Avis_physics.World.fence_breached t.world;
    workload_passed;
    transitions = Avis_hinj.Hinj.transitions t.hinj;
    triggered_bugs = Vehicle.triggered_bugs t.vehicle;
    duration = time t;
    sensor_reads = Avis_hinj.Hinj.read_count t.hinj;
  }
