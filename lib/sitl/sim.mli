(** The software-in-the-loop test harness.

    Each test provisions a fresh simulator + firmware + ground-control link
    (the paper's per-test provisioning), then a workload drives the ground
    station and calls [step] — the step() RPC of Fig. 7 — which advances
    the link, the firmware, the physics and the trace by one time-step.

    The harness is deliberately workload-agnostic: the high-level blocking
    workload API lives in the core library on top of this. *)

open Avis_firmware
open Avis_mavlink

type config = {
  policy : Policy.t;
  enabled_bugs : Bug.id list;
  seed : int;
  dt : float;
  max_duration : float;  (** Hard stop, simulated seconds. *)
  link_jitter_steps : int;
      (** Maximum extra delivery delay per message chunk, in steps —
          the scheduler nondeterminism the monitor must tolerate. *)
  link_faults : Link.fault_profile;
      (** Probabilistic datalink degradation (drop/corrupt/duplicate),
          driven by a dedicated RNG split off the run seed. [no_faults] by
          default. *)
  environment : Avis_physics.Environment.t option;
      (** Defaults to the paper's benign evaluation environment. *)
  airframe : Avis_physics.Airframe.t;
      (** The evaluation uses the Iris; [Airframe.hexa] is also available. *)
}

val default_config : Policy.t -> config
(** 4 ms step, 120 s cap, seed 0, jitter 2 steps, the firmware's default
    (unknown) bugs enabled. *)

type t

val create :
  ?plan:Avis_hinj.Hinj.plan ->
  ?degradations:Avis_hinj.Hinj.degradation list ->
  ?link_outages:(float * float) list ->
  config ->
  t
(** Provision a run with the given fault-injection plan, optional sensor
    degradations, and optional scheduled datalink outages (each
    [(at, duration)] in simulated seconds; none by default). *)

val config : t -> config

type snapshot
(** The whole harness frozen mid-run: physics, sensors, injector, firmware,
    link, ground station and trace. Taking a snapshot does not disturb the
    live run. *)

val snapshot : t -> snapshot

val snapshot_bytes : snapshot -> int
(** Total heap footprint of a snapshot in bytes (words reachable from it,
    including structure shared with the live run), for cache accounting. *)

val restore :
  ?plan:Avis_hinj.Hinj.plan ->
  ?link_outages:(float * float) list ->
  snapshot ->
  t
(** Rebuild an independent harness from a snapshot; the same snapshot can be
    restored any number of times. [?plan] substitutes a different injection
    plan and [?link_outages] a different outage schedule in the restored run
    (the prefix cache's fork operation) — sound only when no fault in the
    new plan (sensor or outage) starts at or before the snapshot time, since
    the original run must not yet have observed any difference. *)

val frame : t -> Avis_geo.Geodesy.frame
(** The local tangent frame anchored at the home location. *)

val home_geodetic : Avis_geo.Geodesy.geodetic
(** The fixed home location all runs are anchored at. *)

val gcs : t -> Gcs.t
val link : t -> Link.t
val world : t -> Avis_physics.World.t
val vehicle : t -> Vehicle.t
val hinj : t -> Avis_hinj.Hinj.t
val trace : t -> Trace.t
val time : t -> float
val steps : t -> int

val step : t -> unit
(** Advance one time-step (no-op once [finished]). *)

val run_until : t -> (t -> bool) -> bool
(** Step until the predicate holds or the run [finished]; returns whether
    the predicate held. *)

val finished : t -> bool
(** True when the vehicle has crashed (the simulation freezes a crashed
    world) or the duration cap was reached. *)

(** Everything the model checker needs to judge a run. *)
type outcome = {
  trace : Trace.t;
  crash : Avis_physics.World.contact_event option;
  fence_breached : bool;
  workload_passed : bool;
  transitions : Avis_hinj.Hinj.transition list;
  triggered_bugs : Bug.id list;  (** Ground-truth diagnostics only. *)
  duration : float;
  sensor_reads : int;
}

val outcome : t -> workload_passed:bool -> outcome

(** {2 Binary persistence}

    Snapshots serialise to a versioned, self-describing binary form: every
    float travels as its IEEE-754 bits, so a decoded snapshot restores to a
    run that is bit-identical to one restored from the in-memory snapshot.
    Each layer (world, sensors, injector, link, firmware, ground station,
    trace) is a length-prefixed blob with its own version byte. *)

val encode_config : Buffer.t -> config -> unit
(** Canonical binary form of a run configuration — the identity half of a
    checkpoint-store key. *)

val decode_config : Avis_util.Codec.reader -> config
(** Inverse of {!encode_config}. Raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val config_to_bytes : config -> string
(** [encode_config] as a standalone string. Equal configurations produce
    equal strings. *)

val to_bytes : snapshot -> string

val of_bytes : string -> snapshot
(** Inverse of {!to_bytes}. Raises [Avis_util.Codec.Corrupt] on malformed
    or truncated input (a decoded snapshot is usable with {!restore}). *)

(** {2 Batched lane stepping}

    A batch is a fixed-width set of lanes (structure-of-arrays columns in
    {!Avis_physics.Lanes} and {!Avis_sensors.Lanes}) that harnesses are
    adopted into. A lane-bound harness's [step] advances the physics and the
    battery through the lane kernels — bit-identical to the unbatched path,
    with the world flushed every step so firmware, monitors and snapshots
    always see current state. Typical driver loop: fork a harness (create or
    restore from a cached prefix), [adopt] it into a free slot, [step] every
    bound harness in lock-step, then [retire_finished] to free slots for the
    next scenarios in the queue.

    Adoption, retirement and occupancy are recorded as the
    [lanes.forks] / [lanes.retired] / [lanes.active] counter tracks in the
    evaluation trace. *)
module Batch : sig
  type sim := t

  type t

  val create : width:int -> motor_count:int -> t

  val width : t -> int

  val active : t -> int
  (** Occupied lanes. *)

  val free_slot : t -> int option

  val sim : t -> int -> sim option
  (** The harness bound to a slot, if occupied. *)

  val adopt : t -> sim -> int option
  (** Bind a harness to the lowest free lane, returning the slot — or
      [None] when the batch is full, the harness is already lane-bound, or
      its airframe's motor count does not match the batch (the caller then
      just steps it unbatched). *)

  val release : t -> int -> unit
  (** Unbind the harness in a slot (no-op on a free slot). The harness is
      left coherent and steps on the unbatched path afterwards. *)

  val retire_finished : t -> int
  (** Release every slot whose harness is [finished]; returns how many were
      retired. *)

  val forks : t -> int
  val retired : t -> int
  (** Lifetime adoption / retirement counts. *)
end
