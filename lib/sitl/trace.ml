open Avis_geo

type sample = {
  time : float;
  position : Vec3.t;
  acceleration : Vec3.t;
  mode : string;
}

(* Samples live in fixed-size columnar chunks: float columns for the numeric
   state and a string column for the mode label. Recording a sample is a
   handful of unboxed stores into the current chunk — no list cons, no
   re-materialisation — and a full chunk is never written again, so
   snapshots share every chunk except the partial tail. *)

let chunk_bits = 8
let chunk_cap = 1 lsl chunk_bits (* 256 samples = 25.6 s at 10 Hz *)
let chunk_mask = chunk_cap - 1

type chunk = {
  c_time : float array;
  c_px : float array;
  c_py : float array;
  c_pz : float array;
  c_ax : float array;
  c_ay : float array;
  c_az : float array;
  c_mode : string array;
}

let fresh_chunk () =
  {
    c_time = Array.make chunk_cap 0.0;
    c_px = Array.make chunk_cap 0.0;
    c_py = Array.make chunk_cap 0.0;
    c_pz = Array.make chunk_cap 0.0;
    c_ax = Array.make chunk_cap 0.0;
    c_ay = Array.make chunk_cap 0.0;
    c_az = Array.make chunk_cap 0.0;
    c_mode = Array.make chunk_cap "";
  }

let copy_chunk c =
  {
    c_time = Array.copy c.c_time;
    c_px = Array.copy c.c_px;
    c_py = Array.copy c.c_py;
    c_pz = Array.copy c.c_pz;
    c_ax = Array.copy c.c_ax;
    c_ay = Array.copy c.c_ay;
    c_az = Array.copy c.c_az;
    c_mode = Array.copy c.c_mode;
  }

type t = {
  period : float;
  mutable chunks : chunk array; (* exactly the chunks created so far *)
  mutable len : int; (* total recorded samples *)
  sched : float array; (* single cell: next sample due time (unboxed) *)
  mutable cache : sample array option;
}

let create ?(period = 0.1) () =
  { period; chunks = [||]; len = 0; sched = [| 0.0 |]; cache = None }

let period t = t.period

type snapshot = t

let copy t =
  let chunks = Array.copy t.chunks in
  (* Full chunks are frozen and shared; only the chunk still being appended
     to must be detached so the two sides' future writes don't alias. *)
  if t.len land chunk_mask <> 0 then begin
    let tail = t.len lsr chunk_bits in
    chunks.(tail) <- copy_chunk chunks.(tail)
  end;
  {
    period = t.period;
    chunks;
    len = t.len;
    sched = Array.copy t.sched;
    cache = t.cache;
  }

let snapshot = copy
let restore = copy

(* Appending a chunk copies the (tiny) chunk-pointer array; it happens once
   per [chunk_cap] samples. *)
let add_chunk t =
  let c = fresh_chunk () in
  t.chunks <- Array.append t.chunks [| c |];
  c

let record t ~steps ~dt world ~mode =
  let time = float_of_int steps *. dt in
  if time >= t.sched.(0) then begin
    t.sched.(0) <- t.sched.(0) +. t.period;
    if t.sched.(0) <= time then t.sched.(0) <- time +. t.period;
    let body = Avis_physics.World.body world in
    let i = t.len in
    let ci = i lsr chunk_bits and off = i land chunk_mask in
    let c = if ci < Array.length t.chunks then t.chunks.(ci) else add_chunk t in
    c.c_time.(off) <- time;
    let p = body.Avis_physics.Rigid_body.position in
    c.c_px.(off) <- p.Vec3.Mut.x;
    c.c_py.(off) <- p.Vec3.Mut.y;
    c.c_pz.(off) <- p.Vec3.Mut.z;
    let a = body.Avis_physics.Rigid_body.acceleration in
    c.c_ax.(off) <- a.Vec3.Mut.x;
    c.c_ay.(off) <- a.Vec3.Mut.y;
    c.c_az.(off) <- a.Vec3.Mut.z;
    c.c_mode.(off) <- mode;
    t.len <- i + 1;
    t.cache <- None
  end

let[@inline] length t = t.len

let sample_at t i =
  let c = t.chunks.(i lsr chunk_bits) and off = i land chunk_mask in
  {
    time = c.c_time.(off);
    position = Vec3.make c.c_px.(off) c.c_py.(off) c.c_pz.(off);
    acceleration = Vec3.make c.c_ax.(off) c.c_ay.(off) c.c_az.(off);
    mode = c.c_mode.(off);
  }

let samples t =
  match t.cache with
  | Some a -> a
  | None ->
    let a = Array.init t.len (fun i -> sample_at t i) in
    t.cache <- Some a;
    a

let nth t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.nth: out of range";
  match t.cache with Some a -> a.(i) | None -> sample_at t i

let nth_padded t i =
  let n = t.len in
  if n = 0 then invalid_arg "Trace.nth_padded: empty trace";
  if i < 0 then invalid_arg "Trace.nth_padded: negative index";
  let i = min i (n - 1) in
  match t.cache with Some a -> a.(i) | None -> sample_at t i

let altitude_series t =
  Array.to_list
    (Array.map (fun s -> (s.time, s.position.Vec3.z)) (samples t))

let final_mode t =
  if t.len = 0 then None
  else
    let i = t.len - 1 in
    Some t.chunks.(i lsr chunk_bits).c_mode.(i land chunk_mask)

(* Only the [len] recorded samples are serialised: cells beyond the write
   cursor are still at their [fresh_chunk] defaults (writes happen exactly
   once, at monotonically increasing indices), so rebuilding from fresh
   chunks reproduces the trace bit-for-bit. *)
let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  w_f64 b s.period;
  w_int b s.len;
  w_f64 b s.sched.(0);
  for i = 0 to s.len - 1 do
    let c = s.chunks.(i lsr chunk_bits) and off = i land chunk_mask in
    w_f64 b c.c_time.(off);
    w_f64 b c.c_px.(off);
    w_f64 b c.c_py.(off);
    w_f64 b c.c_pz.(off);
    w_f64 b c.c_ax.(off);
    w_f64 b c.c_ay.(off);
    w_f64 b c.c_az.(off);
    w_string b c.c_mode.(off)
  done

let decode_snapshot r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let period = r_f64 r in
  let len = r_int r in
  let sched0 = r_f64 r in
  (* Each sample needs at least 57 bytes; bound [len] before allocating. *)
  if len < 0 || (len > 0 && len > remaining r / 57) then
    corrupt "bad trace length %d" len;
  let nchunks = (len + chunk_cap - 1) lsr chunk_bits in
  let chunks = Array.init nchunks (fun _ -> fresh_chunk ()) in
  for i = 0 to len - 1 do
    let c = chunks.(i lsr chunk_bits) and off = i land chunk_mask in
    c.c_time.(off) <- r_f64 r;
    c.c_px.(off) <- r_f64 r;
    c.c_py.(off) <- r_f64 r;
    c.c_pz.(off) <- r_f64 r;
    c.c_ax.(off) <- r_f64 r;
    c.c_ay.(off) <- r_f64 r;
    c.c_az.(off) <- r_f64 r;
    c.c_mode.(off) <- r_string r
  done;
  { period; chunks; len; sched = [| sched0 |]; cache = None }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s
let of_bytes data = Avis_util.Codec.of_string decode_snapshot data
