open Avis_geo

type sample = {
  time : float;
  position : Vec3.t;
  acceleration : Vec3.t;
  mode : string;
}

type t = {
  period : float;
  mutable samples : sample list; (* newest first *)
  mutable next_due : float;
  mutable cache : sample array option;
}

let create ?(period = 0.1) () =
  { period; samples = []; next_due = 0.0; cache = None }

let period t = t.period

type snapshot = t

(* Samples are immutable and the cached array is only ever replaced, never
   mutated in place, so sharing both is safe. *)
let copy t = { t with samples = t.samples }

let snapshot = copy
let restore = copy

let record t ~time world ~mode =
  if time >= t.next_due then begin
    t.next_due <- t.next_due +. t.period;
    if t.next_due <= time then t.next_due <- time +. t.period;
    let body = Avis_physics.World.body world in
    t.samples <-
      {
        time;
        position = body.Avis_physics.Rigid_body.position;
        acceleration = body.Avis_physics.Rigid_body.acceleration;
        mode;
      }
      :: t.samples;
    t.cache <- None
  end

let samples t =
  match t.cache with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev t.samples) in
    t.cache <- Some a;
    a

let length t = List.length t.samples

let nth t i =
  let a = samples t in
  if i < 0 || i >= Array.length a then invalid_arg "Trace.nth: out of range";
  a.(i)

let nth_padded t i =
  let a = samples t in
  let n = Array.length a in
  if n = 0 then invalid_arg "Trace.nth_padded: empty trace";
  if i < 0 then invalid_arg "Trace.nth_padded: negative index";
  a.(min i (n - 1))

let altitude_series t =
  Array.to_list
    (Array.map (fun s -> (s.time, s.position.Vec3.z)) (samples t))

let final_mode t =
  match t.samples with [] -> None | s :: _ -> Some s.mode
