(** Recording of a simulated flight.

    The invariant monitor compares runs by the state tuple (P, α, M) —
    position, acceleration, mode — sampled at a fixed period; the trace is
    exactly that series, taken from the simulator's ground truth (the
    monitor observes physics, not the firmware's beliefs). *)

open Avis_geo

type sample = {
  time : float;
  position : Vec3.t;
  acceleration : Vec3.t;
  mode : string;  (** The firmware's operating-mode label at this time. *)
}

type t

val create : ?period:float -> unit -> t
(** Sampling period defaults to 0.1 s (10 Hz). *)

val period : t -> float

type snapshot
(** The recorded series and sampling schedule, frozen. *)

val snapshot : t -> snapshot
val restore : snapshot -> t

val record : t -> time:float -> Avis_physics.World.t -> mode:string -> unit
(** Append a sample if the period has elapsed since the last one. *)

val samples : t -> sample array
(** All samples, oldest first. *)

val length : t -> int

val nth : t -> int -> sample
(** Raises [Invalid_argument] when out of range. *)

val nth_padded : t -> int -> sample
(** Like [nth] but repeats the final sample beyond the end — the paper's
    padding rule for comparing runs of different durations. Raises
    [Invalid_argument] on an empty trace. *)

val altitude_series : t -> (float * float) list
(** (time, altitude) pairs, for figure reproduction. *)

val final_mode : t -> string option
