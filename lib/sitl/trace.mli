(** Recording of a simulated flight.

    The invariant monitor compares runs by the state tuple (P, α, M) —
    position, acceleration, mode — sampled at a fixed period; the trace is
    exactly that series, taken from the simulator's ground truth (the
    monitor observes physics, not the firmware's beliefs).

    Samples are stored in fixed-size columnar chunks: [record] is a few
    unboxed stores (O(1) amortised, allocation-free between chunk
    boundaries), [length]/[nth] are O(1), and snapshots share every full
    chunk with the live trace. *)

open Avis_geo

type sample = {
  time : float;
  position : Vec3.t;
  acceleration : Vec3.t;
  mode : string;  (** The firmware's operating-mode label at this time. *)
}

type t

val create : ?period:float -> unit -> t
(** Sampling period defaults to 0.1 s (10 Hz). *)

val period : t -> float

type snapshot
(** The recorded series and sampling schedule, frozen. Full chunks are
    shared with the live trace; the partial tail chunk is detached. *)

val snapshot : t -> snapshot
val restore : snapshot -> t

val record :
  t -> steps:int -> dt:float -> Avis_physics.World.t -> mode:string -> unit
(** Append a sample if the period has elapsed since the last one. The
    sample time is [steps * dt] — computed here from the simulator's step
    counter so the call site passes no freshly boxed float. *)

val samples : t -> sample array
(** All samples, oldest first. The array is materialised from the columns
    on first call and cached until the next [record]. *)

val length : t -> int
(** O(1), allocation-free. *)

val nth : t -> int -> sample
(** O(1). Raises [Invalid_argument] when out of range. *)

val nth_padded : t -> int -> sample
(** Like [nth] but repeats the final sample beyond the end — the paper's
    padding rule for comparing runs of different durations. Raises
    [Invalid_argument] on an empty trace. *)

val altitude_series : t -> (float * float) list
(** (time, altitude) pairs, for figure reproduction. *)

val final_mode : t -> string option

val encode_snapshot : Buffer.t -> snapshot -> unit
(** Versioned bit-exact binary layout of the recorded series (only the
    samples actually recorded; chunk padding is reconstructed). *)

val decode_snapshot : Avis_util.Codec.reader -> snapshot
(** Inverse of {!encode_snapshot}. Raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val to_bytes : snapshot -> string

val of_bytes : string -> snapshot
(** Raises [Avis_util.Codec.Corrupt] on malformed input. *)
