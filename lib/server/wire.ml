open Avis_util
open Avis_core

type hunt_request = {
  firmware : string;
  workload : string;
  approaches : string list;
  budget_s : float;
  seed : int;
  lanes : int option;
  shards : int;
}

type request =
  | Submit of hunt_request
  | Watch
  | Status
  | Ping

type cell_status =
  | Cell_done of Run_journal.record
  | Cell_memo of Run_journal.record
  | Cell_quarantined of { code : string; message : string; attempts : int }

type status_info = {
  active : int;
  queued : int;
  workers : int;
  memo_served : int;
  worker_retries : int;
}

type response =
  | Accepted of { req : string; cells : string list }
  | Rejected of { reason : string }
  | Cell of { req : string; approach : string; label : string; status : cell_status }
  | Done of { req : string; retries : int; quarantined : int }
  | Status_info of status_info
  | Pong
  | Cell_request
  | Cell_result of
      { req : string; approach : string; label : string; status : cell_status }

type assignment = {
  a_req : string;
  a_firmware : string;
  a_workload : string;
  a_approach : string;
  a_budget_s : float;
  a_seed : int;
  a_lanes : int option;
}

type directive =
  | Cell_assign of assignment
  | Drain

let is_metrics_line line =
  String.length line >= 6 && String.sub line 0 6 = "[avis]"

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

let request_to_json = function
  | Submit r ->
    Json.Assoc
      (List.concat
         [
           [
             ("op", Json.String "submit");
             ("firmware", Json.String r.firmware);
             ("workload", Json.String r.workload);
             ( "approaches",
               Json.List (List.map (fun a -> Json.String a) r.approaches) );
             (* The budget participates in the journal key by its IEEE-754
                bits, so it must cross the wire losslessly — as bits, not
                as a decimal rendering. *)
             ( "budget_bits",
               Json.String (Printf.sprintf "%016Lx" (Int64.bits_of_float r.budget_s)) );
             ("seed", Json.int r.seed);
             ("shards", Json.int r.shards);
           ];
           (match r.lanes with
           | Some n -> [ ("lanes", Json.int n) ]
           | None -> []);
         ])
  | Watch -> Json.Assoc [ ("op", Json.String "watch") ]
  | Status -> Json.Assoc [ ("op", Json.String "status") ]
  | Ping -> Json.Assoc [ ("op", Json.String "ping") ]

let str = function Some (Json.String s) -> Some s | _ -> None
let num = function Some (Json.Number f) -> Some (int_of_float f) | _ -> None
let ( let* ) = Option.bind

let hunt_request_of_json j =
  let* firmware = str (Json.member "firmware" j) in
  let* workload = str (Json.member "workload" j) in
  let* approaches =
    match Json.member "approaches" j with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc a ->
          match (acc, a) with
          | Some acc, Json.String s -> Some (s :: acc)
          | _ -> None)
        (Some []) l
      |> Option.map List.rev
    | _ -> None
  in
  let* budget_s =
    let* hex = str (Json.member "budget_bits" j) in
    let* bits = Int64.of_string_opt ("0x" ^ hex) in
    Some (Int64.float_of_bits bits)
  in
  let* seed = num (Json.member "seed" j) in
  let* shards = num (Json.member "shards" j) in
  let lanes = num (Json.member "lanes" j) in
  Some { firmware; workload; approaches; budget_s; seed; lanes; shards }

let request_of_json j =
  match str (Json.member "op" j) with
  | Some "submit" ->
    Option.map (fun r -> Submit r) (hunt_request_of_json j)
  | Some "watch" -> Some Watch
  | Some "status" -> Some Status
  | Some "ping" -> Some Ping
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

let status_to_json = function
  | Cell_done record ->
    [ ("status", Json.String "done"); ("record", Run_journal.record_to_json record) ]
  | Cell_memo record ->
    [ ("status", Json.String "memo"); ("record", Run_journal.record_to_json record) ]
  | Cell_quarantined { code; message; attempts } ->
    [
      ("status", Json.String "quarantined");
      ("code", Json.String code);
      ("message", Json.String message);
      ("attempts", Json.int attempts);
    ]

let response_to_json = function
  | Accepted { req; cells } ->
    Json.Assoc
      [
        ("type", Json.String "accepted");
        ("req", Json.String req);
        ("cells", Json.List (List.map (fun c -> Json.String c) cells));
      ]
  | Rejected { reason } ->
    Json.Assoc
      [ ("type", Json.String "rejected"); ("reason", Json.String reason) ]
  | Cell { req; approach; label; status } ->
    Json.Assoc
      (( ("type", Json.String "cell")
       :: ("req", Json.String req)
       :: ("approach", Json.String approach)
       :: ("label", Json.String label)
       :: status_to_json status ))
  | Done { req; retries; quarantined } ->
    Json.Assoc
      [
        ("type", Json.String "done");
        ("req", Json.String req);
        ("retries", Json.int retries);
        ("quarantined", Json.int quarantined);
      ]
  | Status_info s ->
    Json.Assoc
      [
        ("type", Json.String "status");
        ("active", Json.int s.active);
        ("queued", Json.int s.queued);
        ("workers", Json.int s.workers);
        ("memo_served", Json.int s.memo_served);
        ("worker_retries", Json.int s.worker_retries);
      ]
  | Pong -> Json.Assoc [ ("type", Json.String "pong") ]
  | Cell_request -> Json.Assoc [ ("type", Json.String "cell-request") ]
  | Cell_result { req; approach; label; status } ->
    Json.Assoc
      (( ("type", Json.String "cell-result")
       :: ("req", Json.String req)
       :: ("approach", Json.String approach)
       :: ("label", Json.String label)
       :: status_to_json status ))

let status_of_json j =
  match str (Json.member "status" j) with
  | Some "done" ->
    let* record = Json.member "record" j in
    Option.map (fun r -> Cell_done r) (Run_journal.record_of_json record)
  | Some "memo" ->
    let* record = Json.member "record" j in
    Option.map (fun r -> Cell_memo r) (Run_journal.record_of_json record)
  | Some "quarantined" ->
    let* code = str (Json.member "code" j) in
    let* message = str (Json.member "message" j) in
    let* attempts = num (Json.member "attempts" j) in
    Some (Cell_quarantined { code; message; attempts })
  | Some _ | None -> None

let response_of_json j =
  match str (Json.member "type" j) with
  | Some "accepted" ->
    let* req = str (Json.member "req" j) in
    let* cells =
      match Json.member "cells" j with
      | Some (Json.List l) ->
        List.fold_left
          (fun acc c ->
            match (acc, c) with
            | Some acc, Json.String s -> Some (s :: acc)
            | _ -> None)
          (Some []) l
        |> Option.map List.rev
      | _ -> None
    in
    Some (Accepted { req; cells })
  | Some "rejected" ->
    let* reason = str (Json.member "reason" j) in
    Some (Rejected { reason })
  | Some "cell" ->
    let* req = str (Json.member "req" j) in
    let* approach = str (Json.member "approach" j) in
    let* label = str (Json.member "label" j) in
    let* status = status_of_json j in
    Some (Cell { req; approach; label; status })
  | Some "done" ->
    let* req = str (Json.member "req" j) in
    let* retries = num (Json.member "retries" j) in
    let* quarantined = num (Json.member "quarantined" j) in
    Some (Done { req; retries; quarantined })
  | Some "status" ->
    let* active = num (Json.member "active" j) in
    let* queued = num (Json.member "queued" j) in
    let* workers = num (Json.member "workers" j) in
    let* memo_served = num (Json.member "memo_served" j) in
    let* worker_retries = num (Json.member "worker_retries" j) in
    Some (Status_info { active; queued; workers; memo_served; worker_retries })
  | Some "pong" -> Some Pong
  | Some "cell-request" -> Some Cell_request
  | Some "cell-result" ->
    let* req = str (Json.member "req" j) in
    let* approach = str (Json.member "approach" j) in
    let* label = str (Json.member "label" j) in
    let* status = status_of_json j in
    Some (Cell_result { req; approach; label; status })
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Directives (daemon -> worker)                                        *)
(* ------------------------------------------------------------------ *)

let directive_to_json = function
  | Cell_assign a ->
    Json.Assoc
      (List.concat
         [
           [
             ("op", Json.String "cell-assign");
             ("req", Json.String a.a_req);
             ("firmware", Json.String a.a_firmware);
             ("workload", Json.String a.a_workload);
             ("approach", Json.String a.a_approach);
             (* As with submit: the budget reaches the worker by its
                IEEE-754 bits so the cell's journal key is bit-exact. *)
             ( "budget_bits",
               Json.String
                 (Printf.sprintf "%016Lx" (Int64.bits_of_float a.a_budget_s)) );
             ("seed", Json.int a.a_seed);
           ];
           (match a.a_lanes with
           | Some n -> [ ("lanes", Json.int n) ]
           | None -> []);
         ])
  | Drain -> Json.Assoc [ ("op", Json.String "drain") ]

let directive_of_json j =
  match str (Json.member "op" j) with
  | Some "cell-assign" ->
    let* a_req = str (Json.member "req" j) in
    let* a_firmware = str (Json.member "firmware" j) in
    let* a_workload = str (Json.member "workload" j) in
    let* a_approach = str (Json.member "approach" j) in
    let* a_budget_s =
      let* hex = str (Json.member "budget_bits" j) in
      let* bits = Int64.of_string_opt ("0x" ^ hex) in
      Some (Int64.float_of_bits bits)
    in
    let* a_seed = num (Json.member "seed" j) in
    let a_lanes = num (Json.member "lanes" j) in
    Some
      (Cell_assign
         { a_req; a_firmware; a_workload; a_approach; a_budget_s; a_seed; a_lanes })
  | Some "drain" -> Some Drain
  | Some _ | None -> None

let parse_of of_json kind line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "malformed %s line: %s" kind e)
  | Ok j -> (
    match of_json j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "unrecognised %s: %s" kind line))

let render_request r = Json.to_string (request_to_json r)
let parse_request line = parse_of request_of_json "request" line
let render_response r = Json.to_string (response_to_json r)
let parse_response line = parse_of response_of_json "response" line
let render_directive d = Json.to_string (directive_to_json d)
let parse_directive line = parse_of directive_of_json "directive" line
