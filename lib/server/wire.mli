(** The hunt daemon's wire protocol.

    One line per message over a Unix-domain (or TCP) stream socket, in two
    interleaved layers the first byte distinguishes:

    - lines starting with ['{'] are control messages — strict JSON parsed
      with {!Avis_util.Json} (requests client-to-server, responses
      server-to-client);
    - lines starting with ["[avis]"] are streamed {!Avis_util.Metrics}
      records, relayed verbatim from the worker that produced them, each
      tagged with the owning request id ([req=...]).

    Campaign results travel as {!Avis_core.Run_journal.record} values in
    their journal JSON encoding, so the bytes a client receives for a cell
    are exactly the bytes the daemon's journal memoises — a served result
    and a resumed one cannot differ. *)

open Avis_core

type hunt_request = {
  firmware : string;  (** ["apm"] or ["px4"]. *)
  workload : string;  (** A {!Workload.by_name} name. *)
  approaches : string list;  (** Search strategies, one cell each. *)
  budget_s : float;  (** Modelled wall-clock budget per cell. *)
  seed : int;  (** Base seed; each cell derives its own via FNV-1a. *)
  lanes : int option;
      (** Scenarios in flight per campaign; [None] follows the worker's
          [AVIS_LANES]. *)
  shards : int;
      (** Historical: the static-shard count of the pre-pull daemon.
          Accepted (and round-tripped) for wire compatibility, but the
          pull-based dispatcher sizes workers from pending work, so the
          value no longer influences scheduling. *)
}

type request =
  | Submit of hunt_request
  | Watch  (** Subscribe to every request's metrics stream. *)
  | Status
  | Ping

type cell_status =
  | Cell_done of Run_journal.record  (** Ran live in a worker. *)
  | Cell_memo of Run_journal.record
      (** Served from the daemon's journal or a completed worker, without
          re-running. Bit-identical to [Cell_done] of the same cell. *)
  | Cell_quarantined of { code : string; message : string; attempts : int }

type status_info = {
  active : int;  (** Long-lived worker processes currently alive. *)
  queued : int;  (** Cells pending dispatch (LPT order). *)
  workers : int;  (** The daemon's concurrent-worker budget. *)
  memo_served : int;  (** Cells served without forking since startup. *)
  worker_retries : int;  (** Cells re-queued after their worker died. *)
}

(** Server-to-client frames, plus the worker-to-daemon half of the
    pull-dispatch handshake ({!Cell_request}/{!Cell_result}) which shares
    the response layer of the worker pipe and is never forwarded to
    clients — a client only ever sees [Cell] frames the daemon re-emits
    from worker results. *)
type response =
  | Accepted of { req : string; cells : string list }
  | Rejected of { reason : string }
  | Cell of { req : string; approach : string; label : string; status : cell_status }
  | Done of { req : string; retries : int; quarantined : int }
  | Status_info of status_info
  | Pong
  | Cell_request
      (** Worker to daemon: a cell slot went idle; assign the next cell. *)
  | Cell_result of
      { req : string; approach : string; label : string; status : cell_status }
      (** Worker to daemon: the terminal outcome of one assigned cell. *)

(** One cell of work, daemon to worker. Carries the originating request's
    raw fields rather than a serialised config: the worker re-expands them
    through {!Worker.cells_of_request} exactly as `submit` and in-process
    `hunt` do, so an assigned cell's config — and therefore its journal
    key and result bytes — cannot drift from the other entry points. *)
type assignment = {
  a_req : string;  (** Owning request id, echoed in {!Cell_result}. *)
  a_firmware : string;
  a_workload : string;
  a_approach : string;
  a_budget_s : float;  (** Crosses as IEEE-754 bits, like [budget_s]. *)
  a_seed : int;  (** The request's base seed (cells re-derive theirs). *)
  a_lanes : int option;
}

(** Daemon-to-worker control frames on the assignment pipe. *)
type directive =
  | Cell_assign of assignment
  | Drain  (** No more work is coming: finish in-flight cells and exit. *)

val is_metrics_line : string -> bool
(** Does this line belong to the metrics layer (starts with ["[avis]"])? *)

val render_request : request -> string
(** One line of JSON, no trailing newline. *)

val parse_request : string -> (request, string) result

val render_response : response -> string

val parse_response : string -> (response, string) result

val render_directive : directive -> string

val parse_directive : string -> (directive, string) result
