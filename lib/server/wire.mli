(** The hunt daemon's wire protocol.

    One line per message over a Unix-domain (or TCP) stream socket, in two
    interleaved layers the first byte distinguishes:

    - lines starting with ['{'] are control messages — strict JSON parsed
      with {!Avis_util.Json} (requests client-to-server, responses
      server-to-client);
    - lines starting with ["[avis]"] are streamed {!Avis_util.Metrics}
      records, relayed verbatim from the worker that produced them, each
      tagged with the owning request id ([req=...]).

    Campaign results travel as {!Avis_core.Run_journal.record} values in
    their journal JSON encoding, so the bytes a client receives for a cell
    are exactly the bytes the daemon's journal memoises — a served result
    and a resumed one cannot differ. *)

open Avis_core

type hunt_request = {
  firmware : string;  (** ["apm"] or ["px4"]. *)
  workload : string;  (** A {!Workload.by_name} name. *)
  approaches : string list;  (** Search strategies, one cell each. *)
  budget_s : float;  (** Modelled wall-clock budget per cell. *)
  seed : int;  (** Base seed; each cell derives its own via FNV-1a. *)
  lanes : int option;
      (** Scenarios in flight per campaign; [None] follows the worker's
          [AVIS_LANES]. *)
  shards : int;
      (** Worker processes to spread this request's cells over (clamped to
          the cell count and the daemon's worker budget). *)
}

type request =
  | Submit of hunt_request
  | Watch  (** Subscribe to every request's metrics stream. *)
  | Status
  | Ping

type cell_status =
  | Cell_done of Run_journal.record  (** Ran live in a worker. *)
  | Cell_memo of Run_journal.record
      (** Served from the daemon's journal or a completed worker, without
          re-running. Bit-identical to [Cell_done] of the same cell. *)
  | Cell_quarantined of { code : string; message : string; attempts : int }

type status_info = {
  active : int;  (** Worker processes currently running. *)
  queued : int;  (** Shards waiting for a worker slot. *)
  workers : int;  (** The daemon's concurrent-worker budget. *)
  memo_served : int;  (** Cells served without forking since startup. *)
  worker_retries : int;  (** Workers re-forked after dying mid-shard. *)
}

type response =
  | Accepted of { req : string; cells : string list }
  | Rejected of { reason : string }
  | Cell of { req : string; approach : string; label : string; status : cell_status }
  | Done of { req : string; retries : int; quarantined : int }
  | Status_info of status_info
  | Pong

val is_metrics_line : string -> bool
(** Does this line belong to the metrics layer (starts with ["[avis]"])? *)

val render_request : request -> string
(** One line of JSON, no trailing newline. *)

val parse_request : string -> (request, string) result

val render_response : response -> string

val parse_response : string -> (response, string) result
