open Avis_core

type config = {
  socket_path : string;
  tcp_port : int option;
  journal_path : string;
  store_dir : string option;
  workers : int;
  jobs : int;
}

let default_config () =
  {
    socket_path = "avis-huntd.sock";
    tcp_port = None;
    journal_path = "avis-huntd-journal.jsonl";
    store_dir = None;
    workers = Avis_util.Pool.jobs_of_env ();
    jobs = 1;
  }

let worker_attempts = 3

let log fmt = Printf.eprintf ("[avis] huntd: " ^^ fmt ^^ "\n%!")

(* A slow or dead client must not wedge the daemon: writes are
   non-blocking with a bounded queue that sheds metrics lines first —
   control messages (results) are never dropped. *)
let max_queued_lines = 4096

type client = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (** Partial request line. *)
  outq : string Queue.t;  (** Newline-terminated lines pending write. *)
  mutable outbuf : string;  (** Partially written head line. *)
  mutable watching : bool;
}

type req_state = {
  id : string;
  mutable owner : Unix.file_descr option;
      (** The submitting client; [None] once it disconnects (the hunt
          still runs to completion — results live in the journal). *)
  lanes : int option;
  mutable outstanding : int;
  mutable retries : int;
  mutable quarantined : int;
}

(* One cell awaiting (or re-awaiting) dispatch. The assignment is built
   once at submit time from the request's raw fields; re-dispatch after a
   worker loss re-sends the identical frame. *)
type pending = {
  preq : req_state;
  pcell : Worker.cell;
  passign : Wire.assignment;
  mutable pattempts : int;  (** Dispatches consumed, including the first. *)
  pweight : float;  (** Predicted duration (LPT sort key), fixed at submit. *)
}

type worker_proc = {
  pid : int;
  rpipe : Unix.file_descr;  (** Worker-to-daemon: results and metrics. *)
  wpipe : Unix.file_descr;  (** Daemon-to-worker: directives. *)
  mutable wbuf : string;  (** Partial line from [rpipe]. *)
  mutable slots : int;  (** Unanswered [Cell_request]s (idle cell slots). *)
  mutable inflight : pending list;  (** Assigned, not yet reported. *)
}

type state = {
  cfg : config;
  journal : Run_journal.t;
  cost : Cost_model.t;
      (** Primed from the journal at startup, trained from every live or
          memo result a worker reports. Read when a submit computes its
          cells' LPT weights. *)
  memos : (string, Run_journal.record) Hashtbl.t;
      (** Records journalled since startup, keyed by journal key — the
          parent's in-memory view of what workers have completed (the
          on-disk journal covers everything before startup). *)
  listeners : Unix.file_descr list;
  clients : (Unix.file_descr, client) Hashtbl.t;
  workers : (Unix.file_descr, worker_proc) Hashtbl.t;  (** By [rpipe]. *)
  mutable pending : pending list;  (** Heaviest predicted first (LPT). *)
  mutable reqs : req_state list;
  mutable req_counter : int;
  mutable memo_served : int;
  mutable worker_retries : int;
}

(* ------------------------------------------------------------------ *)
(* Client output                                                        *)
(* ------------------------------------------------------------------ *)

let disconnect st (c : client) =
  Hashtbl.remove st.clients c.fd;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  List.iter
    (fun rq -> if rq.owner = Some c.fd then rq.owner <- None)
    st.reqs

let rec flush_client st (c : client) =
  if not (Hashtbl.mem st.clients c.fd) then ()
  else if c.outbuf <> "" then (
    match Unix.write_substring c.fd c.outbuf 0 (String.length c.outbuf) with
    | n ->
      c.outbuf <- String.sub c.outbuf n (String.length c.outbuf - n);
      if c.outbuf = "" then flush_client st c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> disconnect st c)
  else
    match Queue.take_opt c.outq with
    | Some line ->
      c.outbuf <- line;
      flush_client st c
    | None -> ()

let enqueue st (c : client) line =
  if
    Queue.length c.outq < max_queued_lines || not (Wire.is_metrics_line line)
  then begin
    Queue.add (line ^ "\n") c.outq;
    flush_client st c
  end

let send_to fd st line =
  match Hashtbl.find_opt st.clients fd with
  | Some c -> enqueue st c line
  | None -> ()

(* Owner plus every watcher (watchers see all requests' streams). *)
let broadcast st (rq : req_state) line =
  (match rq.owner with Some fd -> send_to fd st line | None -> ());
  Hashtbl.iter
    (fun fd c -> if c.watching && Some fd <> rq.owner then enqueue st c line)
    st.clients

let finish_req_if_done st rq =
  if rq.outstanding = 0 then begin
    broadcast st rq
      (Wire.render_response
         (Wire.Done
            { req = rq.id; retries = rq.retries; quarantined = rq.quarantined }));
    st.reqs <- List.filter (fun r -> r != rq) st.reqs;
    log "%s done (%d retrie(s), %d quarantined)" rq.id rq.retries
      rq.quarantined
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

(* Keep [st.pending] sorted heaviest-first; equal weights keep arrival
   order (a new cell goes after existing peers), so LPT degrades to FIFO
   exactly when the cost model cannot tell cells apart. *)
let insert_pending st p =
  let rec ins = function
    | q :: rest when q.pweight >= p.pweight -> q :: ins rest
    | rest -> p :: rest
  in
  st.pending <- ins st.pending

let spawn st =
  let dir_r, dir_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* Worker child: drop every parent fd except its two pipe ends —
       including other workers' directive pipes, or closing one there
       would never deliver its EOF — restore default signal
       dispositions, serve cells, and _exit without running the parent's
       at_exit handlers. *)
    Unix.close dir_w;
    Unix.close res_r;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listeners;
    Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) st.clients;
    Hashtbl.iter
      (fun _ w ->
        (try Unix.close w.rpipe with Unix.Unix_error _ -> ());
        try Unix.close w.wpipe with Unix.Unix_error _ -> ())
      st.workers;
    Sys.set_signal Sys.sigterm Sys.Signal_default;
    Sys.set_signal Sys.sigint Sys.Signal_default;
    (try
       Worker.serve_pull ~journal_path:st.cfg.journal_path ~jobs:st.cfg.jobs
         ~input:dir_r ~out:res_w ()
     with e ->
       Printf.eprintf "[avis] huntd worker: uncaught %s\n%!"
         (Printexc.to_string e));
    Unix._exit 0
  | pid ->
    Unix.close dir_r;
    Unix.close res_w;
    Hashtbl.replace st.workers res_r
      { pid; rpipe = res_r; wpipe = dir_w; wbuf = ""; slots = 0; inflight = [] };
    log "worker pid=%d forked (%d cell slot(s))" pid (max 1 st.cfg.jobs)

let maybe_spawn st =
  let live = Hashtbl.length st.workers in
  let idle_slots = Hashtbl.fold (fun _ w acc -> acc + w.slots) st.workers 0 in
  let n =
    Worker.fork_budget ~limit:st.cfg.workers ~live ~idle_slots
      ~pending:(List.length st.pending)
  in
  for _ = 1 to n do
    spawn st
  done

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

(* Writes on the directive pipe block at most briefly: a worker holds at
   most [jobs] outstanding requests, so the pipe never carries more than
   a few short lines. A failed write means the worker died — its in-flight
   cells come back through [reap] when the result pipe reports EOF; here
   we only stop offering it work. *)
let write_directive (w : worker_proc) d =
  let payload = Bytes.of_string (Wire.render_directive d ^ "\n") in
  match write_all w.wpipe payload 0 (Bytes.length payload) with
  | () -> true
  | exception Unix.Unix_error _ -> false

(* Hand the heaviest pending cells to whichever workers have idle slots.
   Every dispatch decision goes through here, so LPT order is a property
   of the queue, not of any particular caller. *)
let rec assign_pending st =
  match st.pending with
  | [] -> ()
  | p :: rest -> (
    let free =
      Hashtbl.fold
        (fun _ w acc ->
          match acc with Some _ -> acc | None -> if w.slots > 0 then Some w else None)
        st.workers None
    in
    match free with
    | None -> ()
    | Some w ->
      st.pending <- rest;
      if write_directive w (Wire.Cell_assign p.passign) then begin
        p.pattempts <- p.pattempts + 1;
        w.slots <- w.slots - 1;
        w.inflight <- p :: w.inflight
      end
      else begin
        st.pending <- p :: st.pending;
        w.slots <- 0
      end;
      assign_pending st)

let quarantine_cell st (rq : req_state) (p : pending) ~attempts =
  rq.quarantined <- rq.quarantined + 1;
  rq.outstanding <- rq.outstanding - 1;
  broadcast st rq
    (Wire.render_response
       (Wire.Cell
          {
            req = rq.id;
            approach = p.pcell.Worker.approach;
            label = p.pcell.Worker.label;
            status =
              Wire.Cell_quarantined
                {
                  code = "WORKER-LOST";
                  message =
                    Printf.sprintf
                      "worker process died before reporting this cell (%d \
                       dispatch(es))"
                      attempts;
                  attempts;
                };
          }))

(* EOF on a worker's result pipe: reap it, then re-queue exactly its
   in-flight cells — everything it already reported is done, everything
   still queued was never its problem. Each cell re-enters the LPT queue
   at its original weight and is quarantined only once its own dispatch
   budget is spent. *)
let reap st (w : worker_proc) =
  Hashtbl.remove st.workers w.rpipe;
  (try Unix.close w.rpipe with Unix.Unix_error _ -> ());
  (try Unix.close w.wpipe with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  List.iter
    (fun p ->
      let rq = p.preq in
      if p.pattempts < worker_attempts then begin
        rq.retries <- rq.retries + 1;
        st.worker_retries <- st.worker_retries + 1;
        log
          "worker pid=%d lost mid-cell; re-queueing cell %s (dispatch %d/%d)"
          w.pid p.pcell.Worker.label (p.pattempts + 1) worker_attempts;
        insert_pending st p
      end
      else begin
        log "worker pid=%d lost; quarantining cell %s after %d dispatch(es)"
          w.pid p.pcell.Worker.label p.pattempts;
        quarantine_cell st rq p ~attempts:p.pattempts;
        finish_req_if_done st rq
      end)
    w.inflight;
  w.inflight <- []

(* Metrics lines only know their request through the req=... tag the
   worker stamped on them; an unparsable or unknown tag still reaches
   watchers (it is diagnostic output, not protocol state). *)
let relay_metrics st line =
  let rq =
    match Avis_util.Metrics.parse_line line with
    | Ok (_, _, tags) -> (
      match List.assoc_opt "req" tags with
      | Some id -> List.find_opt (fun rq -> rq.id = id) st.reqs
      | None -> None)
    | Error _ -> None
  in
  match rq with
  | Some rq -> broadcast st rq line
  | None ->
    Hashtbl.iter (fun _ c -> if c.watching then enqueue st c line) st.clients

let handle_worker_line st (w : worker_proc) line =
  if Wire.is_metrics_line line then relay_metrics st line
  else
    match Wire.parse_response line with
    | Ok Wire.Cell_request ->
      w.slots <- w.slots + 1;
      assign_pending st
    | Ok (Wire.Cell_result { approach; label; status; _ }) -> (
      match List.find_opt (fun p -> p.pcell.Worker.label = label) w.inflight with
      | None -> log "worker pid=%d reported unknown cell %S" w.pid label
      | Some p ->
        w.inflight <- List.filter (fun q -> q != p) w.inflight;
        let rq = p.preq in
        (match status with
        | Wire.Cell_done record | Wire.Cell_memo record ->
          Hashtbl.replace st.memos record.Run_journal.key record;
          Cost_model.observe_record st.cost record
        | Wire.Cell_quarantined _ -> rq.quarantined <- rq.quarantined + 1);
        rq.outstanding <- rq.outstanding - 1;
        broadcast st rq
          (Wire.render_response
             (Wire.Cell { req = rq.id; approach; label; status }));
        finish_req_if_done st rq)
    | Ok _ | Error _ ->
      log "ignoring unexpected line from worker pid=%d: %s" w.pid line

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

let memo_for st (cell : Worker.cell) =
  let key =
    Campaign.journal_key st.journal cell.Worker.config
      ~approach:cell.Worker.approach
  in
  match Hashtbl.find_opt st.memos key with
  | Some record -> Some record
  | None -> Run_journal.find st.journal ~key

let submit st (c : client) (r : Wire.hunt_request) =
  match Worker.cells_of_request r with
  | Error reason -> enqueue st c (Wire.render_response (Wire.Rejected { reason }))
  | Ok cells ->
    st.req_counter <- st.req_counter + 1;
    let rq =
      {
        id = Printf.sprintf "r%d" st.req_counter;
        owner = Some c.fd;
        lanes = r.Wire.lanes;
        outstanding = List.length cells;
        retries = 0;
        quarantined = 0;
      }
    in
    st.reqs <- rq :: st.reqs;
    enqueue st c
      (Wire.render_response
         (Wire.Accepted
            { req = rq.id; cells = List.map (fun cl -> cl.Worker.label) cells }));
    log "%s accepted from client: %d cell(s)" rq.id (List.length cells);
    (* Serve memoised cells without dispatching at all. *)
    let fresh =
      List.filter_map
        (fun (cell : Worker.cell) ->
          match memo_for st cell with
          | Some record ->
            st.memo_served <- st.memo_served + 1;
            rq.outstanding <- rq.outstanding - 1;
            broadcast st rq
              (Avis_util.Metrics.line
                 ~tags:[ ("req", rq.id) ]
                 ~event:"memo"
                 (Worker.memo_snapshot
                    ~budget_s:cell.Worker.config.Campaign.budget_s ~wall_s:0.0
                    record));
            broadcast st rq
              (Wire.render_response
                 (Wire.Cell
                    {
                      req = rq.id;
                      approach = cell.Worker.approach;
                      label = cell.Worker.label;
                      status = Wire.Cell_memo record;
                    }));
            None
          | None -> Some cell)
        cells
    in
    if fresh = [] then finish_req_if_done st rq
    else begin
      List.iter
        (fun (cell : Worker.cell) ->
          insert_pending st
            {
              preq = rq;
              pcell = cell;
              passign =
                {
                  Wire.a_req = rq.id;
                  a_firmware = r.Wire.firmware;
                  a_workload = r.Wire.workload;
                  a_approach = cell.Worker.approach;
                  a_budget_s = r.Wire.budget_s;
                  a_seed = r.Wire.seed;
                  a_lanes = r.Wire.lanes;
                };
              pattempts = 0;
              pweight =
                Cost_model.predict st.cost ~label:cell.Worker.label
                  ~budget_s:r.Wire.budget_s;
            })
        fresh;
      maybe_spawn st;
      assign_pending st
    end

let handle_request st (c : client) line =
  match Wire.parse_request line with
  | Error reason -> enqueue st c (Wire.render_response (Wire.Rejected { reason }))
  | Ok Wire.Ping -> enqueue st c (Wire.render_response Wire.Pong)
  | Ok Wire.Watch -> c.watching <- true
  | Ok Wire.Status ->
    enqueue st c
      (Wire.render_response
         (Wire.Status_info
            {
              active = Hashtbl.length st.workers;
              queued = List.length st.pending;
              workers = st.cfg.workers;
              memo_served = st.memo_served;
              worker_retries = st.worker_retries;
            }))
  | Ok (Wire.Submit r) -> submit st c r

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

let split_lines buf data =
  let all = buf ^ data in
  let rec go start acc =
    match String.index_from_opt all start '\n' with
    | Some i -> go (i + 1) (String.sub all start (i - start) :: acc)
    | None -> (List.rev acc, String.sub all start (String.length all - start))
  in
  go 0 []

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Eof
  | n -> `Data (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Data ""
  | exception Unix.Unix_error _ -> `Eof

let handle_readable st fd =
  if List.mem fd st.listeners then begin
    match Unix.accept fd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      Hashtbl.replace st.clients cfd
        {
          fd = cfd;
          inbuf = "";
          outq = Queue.create ();
          outbuf = "";
          watching = false;
        }
    | exception Unix.Unix_error _ -> ()
  end
  else
    match Hashtbl.find_opt st.clients fd with
    | Some c -> (
      match read_chunk fd with
      | `Eof -> disconnect st c
      | `Data data ->
        let lines, rest = split_lines c.inbuf data in
        c.inbuf <- rest;
        List.iter
          (fun line -> if String.trim line <> "" then handle_request st c line)
          lines)
    | None -> (
      match Hashtbl.find_opt st.workers fd with
      | Some w -> (
        match read_chunk fd with
        | `Eof -> reap st w
        | `Data data ->
          let lines, rest = split_lines w.wbuf data in
          w.wbuf <- rest;
          List.iter (fun line -> handle_worker_line st w line) lines)
      | None -> ())

let serve cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = ref false in
  let on_stop = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm on_stop;
  Sys.set_signal Sys.sigint on_stop;
  (match cfg.store_dir with
  | Some dir -> Unix.putenv "AVIS_STORE_DIR" dir
  | None -> ());
  (* Open (and thereby create) the journal before any fork, so workers
     only ever see an existing file with a valid header. *)
  let journal = Run_journal.open_ cfg.journal_path in
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let unix_l = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_l (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen unix_l 16;
  let tcp_l =
    Option.map
      (fun port ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen s 16;
        s)
      cfg.tcp_port
  in
  let cost = Cost_model.of_journal journal in
  let st =
    {
      cfg;
      journal;
      cost;
      memos = Hashtbl.create 64;
      listeners = unix_l :: Option.to_list tcp_l;
      clients = Hashtbl.create 16;
      workers = Hashtbl.create 16;
      pending = [];
      reqs = [];
      req_counter = 0;
      memo_served = 0;
      worker_retries = 0;
    }
  in
  log "listening on %s%s (journal %s: %d memo(s), %d timing(s); %d worker \
       slot(s) x %d domain(s))"
    cfg.socket_path
    (match cfg.tcp_port with
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
    | None -> "")
    cfg.journal_path
    (Run_journal.completed_count journal)
    (Cost_model.observations cost) (max 1 cfg.workers) (max 1 cfg.jobs);
  while not !stop do
    maybe_spawn st;
    assign_pending st;
    let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients [] in
    let worker_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.workers [] in
    let writable_wanted =
      Hashtbl.fold
        (fun fd c acc ->
          if c.outbuf <> "" || not (Queue.is_empty c.outq) then fd :: acc
          else acc)
        st.clients []
    in
    match
      Unix.select
        (st.listeners @ client_fds @ worker_fds)
        writable_wanted [] 0.2
    with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      List.iter (fun fd -> handle_readable st fd) readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt st.clients fd with
          | Some c -> flush_client st c
          | None -> ())
        writable
  done;
  log "shutting down: %d worker(s) to stop" (Hashtbl.length st.workers);
  Hashtbl.iter
    (fun _ w ->
      (* Closing the directive pipe is the drain signal; SIGTERM then
         stops any still-running campaign rather than waiting it out. *)
      (try Unix.close w.wpipe with Unix.Unix_error _ -> ());
      (try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
      try Unix.close w.rpipe with Unix.Unix_error _ -> ())
    st.workers;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) st.clients;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listeners;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path
