open Avis_core

type config = {
  socket_path : string;
  tcp_port : int option;
  journal_path : string;
  store_dir : string option;
  workers : int;
  jobs : int;
}

let default_config () =
  {
    socket_path = "avis-huntd.sock";
    tcp_port = None;
    journal_path = "avis-huntd-journal.jsonl";
    store_dir = None;
    workers = Avis_util.Pool.jobs_of_env ();
    jobs = 1;
  }

let worker_attempts = 3

let log fmt = Printf.eprintf ("[avis] huntd: " ^^ fmt ^^ "\n%!")

(* A slow or dead client must not wedge the daemon: writes are
   non-blocking with a bounded queue that sheds metrics lines first —
   control messages (results) are never dropped. *)
let max_queued_lines = 4096

type client = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (** Partial request line. *)
  outq : string Queue.t;  (** Newline-terminated lines pending write. *)
  mutable outbuf : string;  (** Partially written head line. *)
  mutable watching : bool;
}

type cell_state = { cell : Worker.cell; mutable done_ : bool }

type req_state = {
  id : string;
  mutable owner : Unix.file_descr option;
      (** The submitting client; [None] once it disconnects (the hunt
          still runs to completion — results live in the journal). *)
  lanes : int option;
  mutable outstanding : int;
  mutable retries : int;
  mutable quarantined : int;
}

type shard = {
  sreq : req_state;
  mutable remaining : cell_state list;  (** Cells not yet reported. *)
  mutable attempts : int;  (** Forks consumed, including the first. *)
}

type worker_proc = {
  pid : int;
  pipe : Unix.file_descr;
  mutable wbuf : string;  (** Partial line from the pipe. *)
  wshard : shard;
}

type state = {
  cfg : config;
  journal : Run_journal.t;
  memos : (string, Run_journal.record) Hashtbl.t;
      (** Records journalled since startup, keyed by journal key — the
          parent's in-memory view of what workers have completed (the
          on-disk journal covers everything before startup). *)
  listeners : Unix.file_descr list;
  clients : (Unix.file_descr, client) Hashtbl.t;
  workers : (Unix.file_descr, worker_proc) Hashtbl.t;  (** By pipe fd. *)
  queue : shard Queue.t;
  mutable reqs : req_state list;
  mutable req_counter : int;
  mutable memo_served : int;
  mutable worker_retries : int;
}

(* ------------------------------------------------------------------ *)
(* Client output                                                        *)
(* ------------------------------------------------------------------ *)

let disconnect st (c : client) =
  Hashtbl.remove st.clients c.fd;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  List.iter
    (fun rq -> if rq.owner = Some c.fd then rq.owner <- None)
    st.reqs

let rec flush_client st (c : client) =
  if not (Hashtbl.mem st.clients c.fd) then ()
  else if c.outbuf <> "" then (
    match Unix.write_substring c.fd c.outbuf 0 (String.length c.outbuf) with
    | n ->
      c.outbuf <- String.sub c.outbuf n (String.length c.outbuf - n);
      if c.outbuf = "" then flush_client st c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> disconnect st c)
  else
    match Queue.take_opt c.outq with
    | Some line ->
      c.outbuf <- line;
      flush_client st c
    | None -> ()

let enqueue st (c : client) line =
  if
    Queue.length c.outq < max_queued_lines || not (Wire.is_metrics_line line)
  then begin
    Queue.add (line ^ "\n") c.outq;
    flush_client st c
  end

let send_to fd st line =
  match Hashtbl.find_opt st.clients fd with
  | Some c -> enqueue st c line
  | None -> ()

(* Owner plus every watcher (watchers see all requests' streams). *)
let broadcast st (rq : req_state) line =
  (match rq.owner with Some fd -> send_to fd st line | None -> ());
  Hashtbl.iter
    (fun fd c -> if c.watching && Some fd <> rq.owner then enqueue st c line)
    st.clients

let finish_req_if_done st rq =
  if rq.outstanding = 0 then begin
    broadcast st rq
      (Wire.render_response
         (Wire.Done
            { req = rq.id; retries = rq.retries; quarantined = rq.quarantined }));
    st.reqs <- List.filter (fun r -> r != rq) st.reqs;
    log "%s done (%d retrie(s), %d quarantined)" rq.id rq.retries
      rq.quarantined
  end

(* ------------------------------------------------------------------ *)
(* Workers                                                              *)
(* ------------------------------------------------------------------ *)

let spawn st (sh : shard) =
  let cells = List.filter (fun cs -> not cs.done_) sh.remaining in
  sh.remaining <- cells;
  if cells = [] then ()
  else begin
    let r, w = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (* Worker child: drop every parent fd except the pipe, restore
         default signal dispositions, run the shard, and _exit without
         running the parent's at_exit handlers. *)
      Unix.close r;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listeners;
      Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) st.clients;
      Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) st.workers;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      (try
         Worker.run_shard ~req:sh.sreq.id ~journal_path:st.cfg.journal_path
           ?lanes:sh.sreq.lanes ~jobs:st.cfg.jobs ~out:w
           (List.map (fun cs -> cs.cell) cells)
       with e ->
         Printf.eprintf "[avis] huntd worker: uncaught %s\n%!"
           (Printexc.to_string e));
      Unix._exit 0
    | pid ->
      Unix.close w;
      Hashtbl.replace st.workers r { pid; pipe = r; wbuf = ""; wshard = sh };
      log "worker pid=%d forked for %s (%d cell(s), attempt %d/%d)" pid
        sh.sreq.id (List.length cells) sh.attempts worker_attempts
  end

let maybe_spawn st =
  while
    Hashtbl.length st.workers < max 1 st.cfg.workers
    && not (Queue.is_empty st.queue)
  do
    spawn st (Queue.take st.queue)
  done

let quarantine_cell st (rq : req_state) (cs : cell_state) ~attempts =
  cs.done_ <- true;
  rq.quarantined <- rq.quarantined + 1;
  rq.outstanding <- rq.outstanding - 1;
  broadcast st rq
    (Wire.render_response
       (Wire.Cell
          {
            req = rq.id;
            approach = cs.cell.Worker.approach;
            label = cs.cell.Worker.label;
            status =
              Wire.Cell_quarantined
                {
                  code = "WORKER-LOST";
                  message =
                    Printf.sprintf
                      "worker process died before reporting this cell (%d \
                       fork(s))"
                      attempts;
                  attempts;
                };
          }))

(* EOF on a worker pipe: reap it, then either re-fork the shard's
   unreported cells (the journal memo-serves whatever the dead worker
   already finished) or quarantine them once the fork budget is spent. *)
let reap st (w : worker_proc) =
  Hashtbl.remove st.workers w.pipe;
  (try Unix.close w.pipe with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  let sh = w.wshard in
  let rq = sh.sreq in
  sh.remaining <- List.filter (fun cs -> not cs.done_) sh.remaining;
  if sh.remaining <> [] then
    if sh.attempts < worker_attempts then begin
      sh.attempts <- sh.attempts + 1;
      rq.retries <- rq.retries + 1;
      st.worker_retries <- st.worker_retries + 1;
      log
        "worker pid=%d lost with %d cell(s) unreported; re-forking shard \
         (attempt %d/%d)"
        w.pid (List.length sh.remaining) sh.attempts worker_attempts;
      Queue.add sh st.queue
    end
    else begin
      log "worker pid=%d lost; quarantining %d cell(s) after %d fork(s)" w.pid
        (List.length sh.remaining) sh.attempts;
      List.iter
        (fun cs -> quarantine_cell st rq cs ~attempts:sh.attempts)
        sh.remaining;
      sh.remaining <- [];
      finish_req_if_done st rq
    end

let handle_worker_line st (w : worker_proc) line =
  let rq = w.wshard.sreq in
  if Wire.is_metrics_line line then broadcast st rq line
  else
    match Wire.parse_response line with
    | Ok (Wire.Cell { label; status; _ }) ->
      (match status with
      | Wire.Cell_done record | Wire.Cell_memo record ->
        Hashtbl.replace st.memos record.Run_journal.key record
      | Wire.Cell_quarantined _ -> rq.quarantined <- rq.quarantined + 1);
      (match
         List.find_opt
           (fun cs -> (not cs.done_) && cs.cell.Worker.label = label)
           w.wshard.remaining
       with
      | Some cs ->
        cs.done_ <- true;
        rq.outstanding <- rq.outstanding - 1
      | None -> log "worker pid=%d reported unknown cell %S" w.pid label);
      broadcast st rq line;
      finish_req_if_done st rq
    | Ok _ | Error _ ->
      log "ignoring unexpected line from worker pid=%d: %s" w.pid line

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

let memo_for st (cell : Worker.cell) =
  let key =
    Campaign.journal_key st.journal cell.Worker.config
      ~approach:cell.Worker.approach
  in
  match Hashtbl.find_opt st.memos key with
  | Some record -> Some record
  | None -> Run_journal.find st.journal ~key

let submit st (c : client) (r : Wire.hunt_request) =
  match Worker.cells_of_request r with
  | Error reason -> enqueue st c (Wire.render_response (Wire.Rejected { reason }))
  | Ok cells ->
    st.req_counter <- st.req_counter + 1;
    let rq =
      {
        id = Printf.sprintf "r%d" st.req_counter;
        owner = Some c.fd;
        lanes = r.Wire.lanes;
        outstanding = List.length cells;
        retries = 0;
        quarantined = 0;
      }
    in
    st.reqs <- rq :: st.reqs;
    enqueue st c
      (Wire.render_response
         (Wire.Accepted
            { req = rq.id; cells = List.map (fun cl -> cl.Worker.label) cells }));
    log "%s accepted from client: %d cell(s), %d shard(s) requested" rq.id
      (List.length cells) r.Wire.shards;
    (* Serve memoised cells without forking at all. *)
    let pending =
      List.filter_map
        (fun (cell : Worker.cell) ->
          match memo_for st cell with
          | Some record ->
            st.memo_served <- st.memo_served + 1;
            rq.outstanding <- rq.outstanding - 1;
            broadcast st rq
              (Avis_util.Metrics.line
                 ~tags:[ ("req", rq.id) ]
                 ~event:"memo"
                 (Worker.memo_snapshot
                    ~budget_s:cell.Worker.config.Campaign.budget_s ~wall_s:0.0
                    record));
            broadcast st rq
              (Wire.render_response
                 (Wire.Cell
                    {
                      req = rq.id;
                      approach = cell.Worker.approach;
                      label = cell.Worker.label;
                      status = Wire.Cell_memo record;
                    }));
            None
          | None -> Some { cell; done_ = false })
        cells
    in
    if pending = [] then finish_req_if_done st rq
    else begin
      let shards =
        max 1 (min r.Wire.shards (min (max 1 st.cfg.workers) (List.length pending)))
      in
      List.iter
        (fun group -> Queue.add { sreq = rq; remaining = group; attempts = 1 } st.queue)
        (Worker.shard_cells ~shards pending);
      maybe_spawn st
    end

let handle_request st (c : client) line =
  match Wire.parse_request line with
  | Error reason -> enqueue st c (Wire.render_response (Wire.Rejected { reason }))
  | Ok Wire.Ping -> enqueue st c (Wire.render_response Wire.Pong)
  | Ok Wire.Watch -> c.watching <- true
  | Ok Wire.Status ->
    enqueue st c
      (Wire.render_response
         (Wire.Status_info
            {
              active = Hashtbl.length st.workers;
              queued = Queue.length st.queue;
              workers = st.cfg.workers;
              memo_served = st.memo_served;
              worker_retries = st.worker_retries;
            }))
  | Ok (Wire.Submit r) -> submit st c r

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

let split_lines buf data =
  let all = buf ^ data in
  let rec go start acc =
    match String.index_from_opt all start '\n' with
    | Some i -> go (i + 1) (String.sub all start (i - start) :: acc)
    | None -> (List.rev acc, String.sub all start (String.length all - start))
  in
  go 0 []

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Eof
  | n -> `Data (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Data ""
  | exception Unix.Unix_error _ -> `Eof

let handle_readable st fd =
  if List.mem fd st.listeners then begin
    match Unix.accept fd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      Hashtbl.replace st.clients cfd
        {
          fd = cfd;
          inbuf = "";
          outq = Queue.create ();
          outbuf = "";
          watching = false;
        }
    | exception Unix.Unix_error _ -> ()
  end
  else
    match Hashtbl.find_opt st.clients fd with
    | Some c -> (
      match read_chunk fd with
      | `Eof -> disconnect st c
      | `Data data ->
        let lines, rest = split_lines c.inbuf data in
        c.inbuf <- rest;
        List.iter
          (fun line -> if String.trim line <> "" then handle_request st c line)
          lines)
    | None -> (
      match Hashtbl.find_opt st.workers fd with
      | Some w -> (
        match read_chunk fd with
        | `Eof -> reap st w
        | `Data data ->
          let lines, rest = split_lines w.wbuf data in
          w.wbuf <- rest;
          List.iter (fun line -> handle_worker_line st w line) lines)
      | None -> ())

let serve cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = ref false in
  let on_stop = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm on_stop;
  Sys.set_signal Sys.sigint on_stop;
  (match cfg.store_dir with
  | Some dir -> Unix.putenv "AVIS_STORE_DIR" dir
  | None -> ());
  (* Open (and thereby create) the journal before any fork, so workers
     only ever see an existing file with a valid header. *)
  let journal = Run_journal.open_ cfg.journal_path in
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let unix_l = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_l (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen unix_l 16;
  let tcp_l =
    Option.map
      (fun port ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen s 16;
        s)
      cfg.tcp_port
  in
  let st =
    {
      cfg;
      journal;
      memos = Hashtbl.create 64;
      listeners = unix_l :: Option.to_list tcp_l;
      clients = Hashtbl.create 16;
      workers = Hashtbl.create 16;
      queue = Queue.create ();
      reqs = [];
      req_counter = 0;
      memo_served = 0;
      worker_retries = 0;
    }
  in
  log "listening on %s%s (journal %s: %d memo(s); %d worker slot(s) x %d \
       domain(s))"
    cfg.socket_path
    (match cfg.tcp_port with
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
    | None -> "")
    cfg.journal_path
    (Run_journal.completed_count journal)
    (max 1 cfg.workers) (max 1 cfg.jobs);
  while not !stop do
    maybe_spawn st;
    let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients [] in
    let worker_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.workers [] in
    let writable_wanted =
      Hashtbl.fold
        (fun fd c acc ->
          if c.outbuf <> "" || not (Queue.is_empty c.outq) then fd :: acc
          else acc)
        st.clients []
    in
    match
      Unix.select
        (st.listeners @ client_fds @ worker_fds)
        writable_wanted [] 0.2
    with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      List.iter (fun fd -> handle_readable st fd) readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt st.clients fd with
          | Some c -> flush_client st c
          | None -> ())
        writable
  done;
  log "shutting down: %d worker(s) to stop" (Hashtbl.length st.workers);
  Hashtbl.iter
    (fun _ w ->
      (try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
      try Unix.close w.pipe with Unix.Unix_error _ -> ())
    st.workers;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) st.clients;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listeners;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path
