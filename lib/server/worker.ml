open Avis_core

type cell = {
  approach : string;
  config : Campaign.config;
  strategy : Search.context -> Search.t;
  label : string;
}

let policy_of_name name =
  match String.lowercase_ascii name with
  | "apm" | "ardupilot" -> Some Avis_firmware.Policy.apm
  | "px4" -> Some Avis_firmware.Policy.px4
  | _ -> None

let strategy_of_name name =
  match name with
  | "avis" | "sabre" -> Some (fun ctx -> Sabre.make ctx)
  | "strat-bfi" -> Some (fun ctx -> Strat_bfi.make ctx)
  | "bfi" -> Some (fun ctx -> Bfi.make ctx)
  | "random" -> Some (fun ctx -> Random_search.make ctx)
  | "dfs" -> Some (fun ctx -> Dfs.make ctx)
  | "bfs" -> Some (fun ctx -> Bfs.make ctx)
  | _ -> None

(* Must agree with each strategy's [Search.name]: `submit` uses this to
   print daemon results exactly as `hunt` prints live ones. *)
let display_name = function
  | "avis" | "sabre" -> "Avis (SABRE)"
  | "strat-bfi" -> "Stratified BFI"
  | "bfi" -> "BFI"
  | "random" -> "Random"
  | "dfs" -> "DFS"
  | "bfs" -> "BFS"
  | s -> s

let cells_of_request (r : Wire.hunt_request) =
  match policy_of_name r.firmware with
  | None ->
    Error (Printf.sprintf "unknown firmware %S (apm|px4)" r.firmware)
  | Some policy -> (
    match Workload.by_name r.workload with
    | None ->
      Error
        (Printf.sprintf
           "unknown workload %S (quickstart|manual-box|auto-box|fence-mission)"
           r.workload)
    | Some workload ->
      if r.approaches = [] then Error "no approach given"
      else if not (Float.is_finite r.budget_s) || r.budget_s <= 0.0 then
        Error (Printf.sprintf "budget must be finite and positive")
      else
        let rec build acc = function
          | [] -> Ok (List.rev acc)
          | name :: rest -> (
            match strategy_of_name name with
            | None ->
              Error
                (Printf.sprintf
                   "unknown approach %S (avis|strat-bfi|bfi|random|dfs|bfs)"
                   name)
            | Some strategy ->
              (* The exact config [avis_cli hunt] builds for this cell:
                 byte-identical journal keys depend on it. *)
              let config =
                {
                  (Campaign.default_config policy workload) with
                  Campaign.budget_s = r.budget_s;
                  seed =
                    Campaign.cell_seed ~base:r.seed
                      ~policy:policy.Avis_firmware.Policy.name
                      ~workload:workload.Workload.name ~approach:name ();
                }
              in
              let label = Campaign.label_of config ~approach:name in
              build ({ approach = name; config; strategy; label } :: acc) rest)
        in
        build [] r.approaches)

let shard_cells ~shards cells =
  let shards = max 1 shards in
  let buckets = Array.make shards [] in
  List.iteri (fun i c -> buckets.(i mod shards) <- c :: buckets.(i mod shards)) cells;
  Array.to_list buckets |> List.map List.rev |> List.filter (fun s -> s <> [])

(* ------------------------------------------------------------------ *)
(* Shard execution (forked child)                                       *)
(* ------------------------------------------------------------------ *)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let snapshot_of_progress ~label ~started (p : Campaign.progress) =
  {
    Avis_util.Metrics.cell = label;
    simulations = p.Campaign.simulations;
    inferences = p.Campaign.inferences;
    spent_s = p.Campaign.spent_s;
    budget_s = p.Campaign.budget_s;
    findings = p.Campaign.findings;
    wall_s = Avis_util.Metrics.now_s () -. started;
    minor_words = p.Campaign.minor_words;
    major_collections = p.Campaign.major_collections;
    store_hits = p.Campaign.store_hits;
    store_misses = p.Campaign.store_misses;
    store_bytes = p.Campaign.store_bytes;
  }

let memo_snapshot ~budget_s ~wall_s (record : Run_journal.record) =
  {
    Avis_util.Metrics.cell = record.Run_journal.label;
    simulations = record.Run_journal.simulations;
    inferences = record.Run_journal.inferences;
    spent_s = Run_journal.spent_s record;
    budget_s;
    findings = List.length record.Run_journal.findings;
    wall_s;
    minor_words = 0.0;
    major_collections = 0;
    store_hits = 0;
    store_misses = 0;
    store_bytes = 0;
  }

let snapshot_of_result ~label ~budget_s ~wall_s (result : Campaign.result) =
  let store_hits, store_misses, store_bytes =
    match result.Campaign.cache_stats with
    | Some s -> Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
    | None -> (0, 0, 0)
  in
  {
    Avis_util.Metrics.cell = label;
    simulations = result.Campaign.simulations;
    inferences = result.Campaign.inferences;
    spent_s = result.Campaign.wall_clock_spent_s;
    budget_s;
    findings = Campaign.unsafe_count result;
    wall_s;
    minor_words = result.Campaign.minor_words;
    major_collections = result.Campaign.major_collections;
    store_hits;
    store_misses;
    store_bytes;
  }

(* Progress lines are throttled per cell so a fast campaign doesn't flood
   the pipe; terminal events (memo/done/quarantined) always go out. *)
let progress_interval_s = 0.25

let run_shard ~req ?journal_path ?lanes ~jobs ~out cells =
  let write_mutex = Mutex.create () in
  let send line =
    let payload = Bytes.of_string (line ^ "\n") in
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () ->
        try write_all out payload 0 (Bytes.length payload)
        with Unix.Unix_error (Unix.EPIPE, _, _) ->
          (* Daemon gone; keep running so the journal still gets the
             records — the next daemon will memo-serve them. *)
          ())
  in
  let tags = [ ("req", req) ] in
  let send_metrics ~event snapshot =
    send (Avis_util.Metrics.line ~tags ~event snapshot)
  in
  let send_cell ~approach ~label status =
    send (Wire.render_response (Wire.Cell { req; approach; label; status }))
  in
  let journal = Option.map (fun p -> Run_journal.open_ p) journal_path in
  let fingerprint =
    match journal with
    | Some j -> Run_journal.fingerprint j
    | None -> Checkpoint_store.default_fingerprint ()
  in
  let run_cell cell =
    let started = Avis_util.Metrics.now_s () in
    match
      Option.bind journal (fun j ->
          Campaign.journal_memo j cell.config ~approach:cell.approach)
    with
    | Some record ->
      let wall_s = Avis_util.Metrics.now_s () -. started in
      send_metrics ~event:"memo"
        (memo_snapshot ~budget_s:cell.config.Campaign.budget_s ~wall_s record);
      send_cell ~approach:cell.approach ~label:cell.label
        (Wire.Cell_memo record)
    | None -> (
      let last_progress = ref neg_infinity in
      let progress p =
        let now = Avis_util.Metrics.now_s () in
        if now -. !last_progress >= progress_interval_s then begin
          last_progress := now;
          send_metrics ~event:"progress"
            (snapshot_of_progress ~label:cell.label ~started p)
        end
      in
      match
        Campaign.run_supervised ?lanes ?journal ~journal_approach:cell.approach
          ~progress cell.config ~strategy:cell.strategy
      with
      | Campaign.Completed result ->
        let record =
          Campaign.record_of_result cell.config ~approach:cell.approach
            ~fingerprint result
        in
        let wall_s = Avis_util.Metrics.now_s () -. started in
        send_metrics ~event:"done"
          (snapshot_of_result ~label:cell.label
             ~budget_s:cell.config.Campaign.budget_s ~wall_s result);
        send_cell ~approach:cell.approach ~label:cell.label
          (Wire.Cell_done record)
      | Campaign.Quarantined e ->
        let wall_s = Avis_util.Metrics.now_s () -. started in
        send_metrics ~event:"quarantined"
          {
            Avis_util.Metrics.cell = cell.label;
            simulations = 0; inferences = 0; spent_s = 0.0;
            budget_s = cell.config.Campaign.budget_s; findings = 0; wall_s;
            minor_words = 0.0; major_collections = 0; store_hits = 0;
            store_misses = 0; store_bytes = 0;
          };
        send_cell ~approach:cell.approach ~label:cell.label
          (Wire.Cell_quarantined
             {
               code = e.Campaign.code;
               message = e.Campaign.message;
               attempts = e.Campaign.attempts;
             }))
  in
  ignore (Avis_util.Pool.map ~jobs run_cell cells : unit list)
