open Avis_core

type cell = {
  approach : string;
  config : Campaign.config;
  strategy : Search.context -> Search.t;
  label : string;
}

let policy_of_name name =
  match String.lowercase_ascii name with
  | "apm" | "ardupilot" -> Some Avis_firmware.Policy.apm
  | "px4" -> Some Avis_firmware.Policy.px4
  | _ -> None

let strategy_of_name name =
  match name with
  | "avis" | "sabre" -> Some (fun ctx -> Sabre.make ctx)
  | "strat-bfi" -> Some (fun ctx -> Strat_bfi.make ctx)
  | "bfi" -> Some (fun ctx -> Bfi.make ctx)
  | "random" -> Some (fun ctx -> Random_search.make ctx)
  | "dfs" -> Some (fun ctx -> Dfs.make ctx)
  | "bfs" -> Some (fun ctx -> Bfs.make ctx)
  | _ -> None

(* Must agree with each strategy's [Search.name]: `submit` uses this to
   print daemon results exactly as `hunt` prints live ones. *)
let display_name = function
  | "avis" | "sabre" -> "Avis (SABRE)"
  | "strat-bfi" -> "Stratified BFI"
  | "bfi" -> "BFI"
  | "random" -> "Random"
  | "dfs" -> "DFS"
  | "bfs" -> "BFS"
  | s -> s

let cells_of_request (r : Wire.hunt_request) =
  match policy_of_name r.firmware with
  | None ->
    Error (Printf.sprintf "unknown firmware %S (apm|px4)" r.firmware)
  | Some policy -> (
    match Workload.by_name r.workload with
    | None ->
      Error
        (Printf.sprintf
           "unknown workload %S (quickstart|manual-box|auto-box|fence-mission)"
           r.workload)
    | Some workload ->
      if r.approaches = [] then Error "no approach given"
      else if not (Float.is_finite r.budget_s) || r.budget_s <= 0.0 then
        Error (Printf.sprintf "budget must be finite and positive")
      else
        let rec build acc = function
          | [] -> Ok (List.rev acc)
          | name :: rest -> (
            match strategy_of_name name with
            | None ->
              Error
                (Printf.sprintf
                   "unknown approach %S (avis|strat-bfi|bfi|random|dfs|bfs)"
                   name)
            | Some strategy ->
              (* The exact config [avis_cli hunt] builds for this cell:
                 byte-identical journal keys depend on it. *)
              let config =
                {
                  (Campaign.default_config policy workload) with
                  Campaign.budget_s = r.budget_s;
                  seed =
                    Campaign.cell_seed ~base:r.seed
                      ~policy:policy.Avis_firmware.Policy.name
                      ~workload:workload.Workload.name ~approach:name ();
                }
              in
              let label = Campaign.label_of config ~approach:name in
              build ({ approach = name; config; strategy; label } :: acc) rest)
        in
        build [] r.approaches)

let shard_cells ~shards cells =
  let shards = max 1 shards in
  let buckets = Array.make shards [] in
  List.iteri (fun i c -> buckets.(i mod shards) <- c :: buckets.(i mod shards)) cells;
  Array.to_list buckets |> List.map List.rev |> List.filter (fun s -> s <> [])

(* How many additional workers pending work justifies: never more than the
   configured limit allows, and never more than the cells that no existing
   idle slot could absorb — forking a process that would only ever block on
   an empty queue wastes a fork and a journal load. *)
let fork_budget ~limit ~live ~idle_slots ~pending =
  let limit = max 1 limit in
  max 0 (min (limit - live) (pending - idle_slots))

let cell_of_assignment (a : Wire.assignment) =
  match
    cells_of_request
      {
        Wire.firmware = a.Wire.a_firmware;
        workload = a.Wire.a_workload;
        approaches = [ a.Wire.a_approach ];
        budget_s = a.Wire.a_budget_s;
        seed = a.Wire.a_seed;
        lanes = a.Wire.a_lanes;
        shards = 1;
      }
  with
  | Ok [ cell ] -> Ok cell
  | Ok _ -> Error "assignment expanded to more than one cell"
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Cell execution (forked child)                                        *)
(* ------------------------------------------------------------------ *)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let snapshot_of_progress ~label ~started (p : Campaign.progress) =
  {
    Avis_util.Metrics.cell = label;
    simulations = p.Campaign.simulations;
    inferences = p.Campaign.inferences;
    spent_s = p.Campaign.spent_s;
    budget_s = p.Campaign.budget_s;
    findings = p.Campaign.findings;
    wall_s = Avis_util.Metrics.now_s () -. started;
    minor_words = p.Campaign.minor_words;
    major_collections = p.Campaign.major_collections;
    store_hits = p.Campaign.store_hits;
    store_misses = p.Campaign.store_misses;
    store_bytes = p.Campaign.store_bytes;
  }

let memo_snapshot ~budget_s ~wall_s (record : Run_journal.record) =
  {
    Avis_util.Metrics.cell = record.Run_journal.label;
    simulations = record.Run_journal.simulations;
    inferences = record.Run_journal.inferences;
    spent_s = Run_journal.spent_s record;
    budget_s;
    findings = List.length record.Run_journal.findings;
    wall_s;
    minor_words = 0.0;
    major_collections = 0;
    store_hits = 0;
    store_misses = 0;
    store_bytes = 0;
  }

let snapshot_of_result ~label ~budget_s ~wall_s (result : Campaign.result) =
  let store_hits, store_misses, store_bytes =
    match result.Campaign.cache_stats with
    | Some s -> Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
    | None -> (0, 0, 0)
  in
  {
    Avis_util.Metrics.cell = label;
    simulations = result.Campaign.simulations;
    inferences = result.Campaign.inferences;
    spent_s = result.Campaign.wall_clock_spent_s;
    budget_s;
    findings = Campaign.unsafe_count result;
    wall_s;
    minor_words = result.Campaign.minor_words;
    major_collections = result.Campaign.major_collections;
    store_hits;
    store_misses;
    store_bytes;
  }

(* Progress lines are throttled per cell so a fast campaign doesn't flood
   the pipe; terminal events (memo/done/quarantined) always go out. *)
let progress_interval_s = 0.25

(* Run one assigned cell and report its terminal [Cell_result]. A live
   result's record is read back from the journal (which [Campaign.run]
   just appended, elapsed seconds included), so the bytes on the wire are
   exactly the bytes a later memo-serve of the same cell would produce. *)
let execute_cell ~send ~journal ~fingerprint (a : Wire.assignment) =
  let req = a.Wire.a_req in
  let tags = [ ("req", req) ] in
  let send_metrics ~event snapshot =
    send (Avis_util.Metrics.line ~tags ~event snapshot)
  in
  let send_result ~approach ~label status =
    send
      (Wire.render_response (Wire.Cell_result { req; approach; label; status }))
  in
  match cell_of_assignment a with
  | Error message ->
    (* Unreachable from a well-behaved daemon: assignments are expanded
       from requests the daemon already validated. Reported rather than
       crashed so one malformed frame cannot kill a whole executor. *)
    send_result ~approach:a.Wire.a_approach
      ~label:(Printf.sprintf "%s/?/%s" a.Wire.a_approach a.Wire.a_workload)
      (Wire.Cell_quarantined
         { code = "BAD-ASSIGNMENT"; message; attempts = 1 })
  | Ok cell -> (
    let started = Avis_util.Metrics.now_s () in
    match
      Option.bind journal (fun j ->
          Campaign.journal_memo j cell.config ~approach:cell.approach)
    with
    | Some record ->
      let wall_s = Avis_util.Metrics.now_s () -. started in
      send_metrics ~event:"memo"
        (memo_snapshot ~budget_s:cell.config.Campaign.budget_s ~wall_s record);
      send_result ~approach:cell.approach ~label:cell.label
        (Wire.Cell_memo record)
    | None -> (
      let last_progress = ref neg_infinity in
      let progress p =
        let now = Avis_util.Metrics.now_s () in
        if now -. !last_progress >= progress_interval_s then begin
          last_progress := now;
          send_metrics ~event:"progress"
            (snapshot_of_progress ~label:cell.label ~started p)
        end
      in
      match
        Campaign.run_supervised ?lanes:a.Wire.a_lanes ?journal
          ~journal_approach:cell.approach ~progress cell.config
          ~strategy:cell.strategy
      with
      | Campaign.Completed result ->
        let wall_s = Avis_util.Metrics.now_s () -. started in
        let record =
          match
            Option.bind journal (fun j ->
                Campaign.journal_memo j cell.config ~approach:cell.approach)
          with
          | Some record -> record
          | None ->
            Campaign.record_of_result ~elapsed_s:wall_s cell.config
              ~approach:cell.approach ~fingerprint result
        in
        send_metrics ~event:"done"
          (snapshot_of_result ~label:cell.label
             ~budget_s:cell.config.Campaign.budget_s ~wall_s result);
        send_result ~approach:cell.approach ~label:cell.label
          (Wire.Cell_done record)
      | Campaign.Quarantined e ->
        let wall_s = Avis_util.Metrics.now_s () -. started in
        send_metrics ~event:"quarantined"
          {
            Avis_util.Metrics.cell = cell.label;
            simulations = 0; inferences = 0; spent_s = 0.0;
            budget_s = cell.config.Campaign.budget_s; findings = 0; wall_s;
            minor_words = 0.0; major_collections = 0; store_hits = 0;
            store_misses = 0; store_bytes = 0;
          };
        send_result ~approach:cell.approach ~label:cell.label
          (Wire.Cell_quarantined
             {
               code = e.Campaign.code;
               message = e.Campaign.message;
               attempts = e.Campaign.attempts;
             })))

let serve_pull ?journal_path ~jobs ~input ~out () =
  let write_mutex = Mutex.create () in
  let send line =
    let payload = Bytes.of_string (line ^ "\n") in
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () ->
        try write_all out payload 0 (Bytes.length payload)
        with Unix.Unix_error (Unix.EPIPE, _, _) ->
          (* Daemon gone; keep running so the journal still gets the
             records — the next daemon will memo-serve them. *)
          ())
  in
  let journal = Option.map (fun p -> Run_journal.open_ p) journal_path in
  let fingerprint =
    match journal with
    | Some j -> Run_journal.fingerprint j
    | None -> Checkpoint_store.default_fingerprint ()
  in
  let pool = Avis_util.Pool.create ~jobs:(max 1 jobs) in
  let request_cell () = send (Wire.render_response Wire.Cell_request) in
  let ic = Unix.in_channel_of_descr input in
  (* One outstanding request per cell slot; each completion requests the
     next cell, so the daemon never assigns more than the executor can
     hold and the in-flight set it must re-queue on our death stays at
     most [jobs] cells. *)
  for _ = 1 to Avis_util.Pool.jobs pool do
    request_cell ()
  done;
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
      match Wire.parse_directive line with
      | Ok (Wire.Cell_assign a) ->
        Avis_util.Pool.submit pool (fun () ->
            execute_cell ~send ~journal ~fingerprint a;
            request_cell ());
        loop ()
      | Ok Wire.Drain -> ()
      | Error e ->
        Printf.eprintf "[avis] huntd worker: %s\n%!" e;
        loop ())
  in
  loop ();
  (* Finish in-flight cells before exiting: their results (and journal
     records) are the whole point of a graceful drain. *)
  try Avis_util.Pool.close_and_wait pool
  with e ->
    Printf.eprintf "[avis] huntd worker: cell failed during drain: %s\n%!"
      (Printexc.to_string e)
