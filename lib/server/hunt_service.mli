(** The hunt daemon: a long-lived, multi-tenant campaign service.

    [serve] listens on a Unix-domain stream socket (and optionally a
    loopback TCP port), accepts newline-delimited {!Wire} requests from
    any number of clients, and dispatches submitted cells pull-style:
    each forked worker is a long-lived executor that requests a cell per
    idle slot of its domain {!Avis_util.Pool}, and the daemon answers
    from one pending queue ordered longest-predicted-first (LPT, weights
    from a {!Avis_core.Cost_model} primed on the journal's recorded
    durations). Per-cell progress streams back to the submitting client
    (and to [watch] subscribers) as request-tagged {!Avis_util.Metrics}
    lines; results arrive as journal records. Scheduling only moves
    cells between processes: per-cell seeding keeps every result's bytes
    identical whatever the dispatch order.

    {2 Crash behaviour}

    Every completed cell is appended to the daemon's {!Avis_core.Run_journal}
    by the worker that ran it, before it is reported. A worker that dies
    mid-cell (crash, OOM-kill, [SIGKILL]) costs exactly its in-flight
    cells — at most [jobs] of them: each is re-queued (at its original
    LPT weight) and re-dispatched to any live worker, up to
    {!worker_attempts} dispatches per cell, after which that cell is
    quarantined with code [WORKER-LOST] instead of wedging the daemon.
    Cells the dead worker already reported are done; cells still queued
    were never its problem. A killed {e daemon} resumes the same way:
    restart it on the same journal and resubmit.

    The parent process stays single-domain (a [select] loop, no {!Pool}),
    which is what makes the [fork] per worker safe under OCaml 5. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** Also listen on 127.0.0.1:port. *)
  journal_path : string;  (** The shared campaign memo journal. *)
  store_dir : string option;
      (** Exported to workers as [AVIS_STORE_DIR]: one content-addressed
          checkpoint store shared by every worker process. *)
  workers : int;  (** Concurrent worker processes. *)
  jobs : int;  (** Cell slots per worker ({!Avis_util.Pool} width). *)
}

val default_config : unit -> config
(** [avis-huntd.sock] in the working directory, no TCP, journal
    [avis-huntd-journal.jsonl], no store, [workers] from
    {!Avis_util.Pool.jobs_of_env}, one cell slot per worker. *)

val worker_attempts : int
(** Times one cell is dispatched before it is quarantined (3). *)

val serve : config -> unit
(** Run the daemon until [SIGTERM]/[SIGINT]. Logs lifecycle events to
    stderr — including one [worker pid=N] line per fork, which is how the
    crash-recovery smoke test picks a victim, and one [re-queueing cell]
    line per cell a lost worker had in flight. Removes a stale socket
    file at startup and unlinks it on shutdown. *)
