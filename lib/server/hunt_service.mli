(** The hunt daemon: a long-lived, multi-tenant campaign service.

    [serve] listens on a Unix-domain stream socket (and optionally a
    loopback TCP port), accepts newline-delimited {!Wire} requests from
    any number of clients, and runs each submitted hunt by sharding its
    cells across forked worker processes — each worker running its shard
    on the domain {!Avis_util.Pool}. Per-cell progress streams back to
    the submitting client (and to [watch] subscribers) as request-tagged
    {!Avis_util.Metrics} lines; results arrive as journal records.

    {2 Crash behaviour}

    Every completed cell is appended to the daemon's {!Avis_core.Run_journal}
    by the worker that ran it, before it is reported. A worker that dies
    mid-shard (crash, OOM-kill, [SIGKILL]) is re-forked up to
    {!worker_attempts} times with the shard's unreported cells; the
    journal memo-serves whatever the dead worker had already finished, so
    a retried shard never re-simulates — and never alters — completed
    work. A shard that keeps dying quarantines its remaining cells with
    code [WORKER-LOST] instead of wedging the daemon. A killed {e daemon}
    resumes the same way: restart it on the same journal and resubmit.

    The parent process stays single-domain (a [select] loop, no {!Pool}),
    which is what makes the [fork] per shard safe under OCaml 5. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** Also listen on 127.0.0.1:port. *)
  journal_path : string;  (** The shared campaign memo journal. *)
  store_dir : string option;
      (** Exported to workers as [AVIS_STORE_DIR]: one content-addressed
          checkpoint store shared by every worker process. *)
  workers : int;  (** Concurrent worker processes (shards in flight). *)
  jobs : int;  (** Domains per worker ({!Avis_util.Pool} width). *)
}

val default_config : unit -> config
(** [avis-huntd.sock] in the working directory, no TCP, journal
    [avis-huntd-journal.jsonl], no store, [workers] from
    {!Avis_util.Pool.jobs_of_env}, one domain per worker. *)

val worker_attempts : int
(** Times a shard is forked before its cells are quarantined (3). *)

val serve : config -> unit
(** Run the daemon until [SIGTERM]/[SIGINT]. Logs lifecycle events to
    stderr — including one [worker pid=N] line per fork, which is how the
    crash-recovery smoke test picks a victim. Removes a stale socket file
    at startup and unlinks it on shutdown. *)
