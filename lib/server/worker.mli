(** The hunt daemon's worker side: turning a {!Wire.hunt_request} into
    campaign cells and running a shard of them in a forked process.

    A worker is a fork of the daemon, so it shares the daemon's binary
    fingerprint: the journal records it appends — and the
    {!Wire.cell_status} records it streams back over its pipe — carry
    exactly the keys an in-process [avis_cli hunt] of the same request
    would compute. Cells inside the shard run on the domain {!Avis_util.Pool}
    ([jobs] wide), so one request is parallel along both axes: processes
    across shards, domains within a shard. *)

open Avis_core

type cell = {
  approach : string;
  config : Campaign.config;
  strategy : Search.context -> Search.t;
  label : string;  (** {!Campaign.label_of}: [approach/policy/workload]. *)
}

val policy_of_name : string -> Avis_firmware.Policy.t option
(** ["apm"]/["ardupilot"] or ["px4"], case-insensitively — both the CLI
    short names and the policies' display names resolve. *)

val strategy_of_name : string -> (Search.context -> Search.t) option
(** The CLI's approach names: avis|sabre|strat-bfi|bfi|random|dfs|bfs. *)

val display_name : string -> string
(** The strategy's [Search.name] for a CLI approach name (identity for
    unknown names) — what a live campaign result reports as its
    approach, and therefore what `submit` prints so daemon output
    matches `hunt` output byte for byte. *)

val cells_of_request : Wire.hunt_request -> (cell list, string) result
(** Validate and expand a request into one cell per approach. Each cell's
    config is built exactly as [avis_cli hunt] builds it — same
    {!Campaign.default_config}, budget and {!Campaign.cell_seed} — which
    is what makes daemon results byte-comparable to in-process runs. *)

val shard_cells : shards:int -> 'a list -> 'a list list
(** Round-robin the cells into [max 1 shards] non-empty groups (fewer
    when there are fewer cells than shards). *)

val memo_snapshot :
  budget_s:float -> wall_s:float -> Run_journal.record ->
  Avis_util.Metrics.snapshot
(** The metrics snapshot a memo-served cell reports: counters from the
    record, no GC or store activity (nothing ran). Shared by the worker,
    the daemon's parent-side memo path and the client's reconstruction,
    so a memo-served cell's metrics line is identical wherever the memo
    was found. *)

val run_shard :
  req:string -> ?journal_path:string -> ?lanes:int -> jobs:int ->
  out:Unix.file_descr -> cell list -> unit
(** The forked child's main: run every cell (memo-serving from the
    journal at [journal_path] when it already holds the cell), writing
    newline-terminated {!Wire} response lines and [req]-tagged
    {!Avis_util.Metrics} lines to [out]. Each line is written whole under
    a mutex, so the stream stays line-atomic even though cells run on
    concurrent domains. Never raises: a cell failure is reported as
    [Cell_quarantined] by the supervised runner. *)
