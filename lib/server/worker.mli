(** The hunt daemon's worker side: a long-lived cell executor forked from
    the daemon.

    A worker is a fork of the daemon, so it shares the daemon's binary
    fingerprint: the journal records it appends — and the
    {!Wire.cell_status} records it streams back over its pipe — carry
    exactly the keys an in-process [avis_cli hunt] of the same request
    would compute. Dispatch is pull-based: the executor sends one
    {!Wire.response.Cell_request} per idle slot on its domain
    {!Avis_util.Pool} ([jobs] wide) and the daemon answers each with a
    {!Wire.directive.Cell_assign}, so a worker never holds more than
    [jobs] cells and losing one costs at most that many re-queues. *)

open Avis_core

type cell = {
  approach : string;
  config : Campaign.config;
  strategy : Search.context -> Search.t;
  label : string;  (** {!Campaign.label_of}: [approach/policy/workload]. *)
}

val policy_of_name : string -> Avis_firmware.Policy.t option
(** ["apm"]/["ardupilot"] or ["px4"], case-insensitively — both the CLI
    short names and the policies' display names resolve. *)

val strategy_of_name : string -> (Search.context -> Search.t) option
(** The CLI's approach names: avis|sabre|strat-bfi|bfi|random|dfs|bfs. *)

val display_name : string -> string
(** The strategy's [Search.name] for a CLI approach name (identity for
    unknown names) — what a live campaign result reports as its
    approach, and therefore what `submit` prints so daemon output
    matches `hunt` output byte for byte. *)

val cells_of_request : Wire.hunt_request -> (cell list, string) result
(** Validate and expand a request into one cell per approach. Each cell's
    config is built exactly as [avis_cli hunt] builds it — same
    {!Campaign.default_config}, budget and {!Campaign.cell_seed} — which
    is what makes daemon results byte-comparable to in-process runs. *)

val shard_cells : shards:int -> 'a list -> 'a list list
(** Round-robin the cells into [max 1 shards] non-empty groups (fewer
    when there are fewer cells than shards). No longer on the daemon's
    dispatch path — it pulls cells one at a time — but still the model
    of the historical static-shard schedule, which the scheduling bench
    simulates against and `hunt --shards` documentation refers to. *)

val fork_budget : limit:int -> live:int -> idle_slots:int -> pending:int -> int
(** How many additional workers pending work justifies: never more than
    [limit - live], and never more than the [pending] cells that the
    [idle_slots] already waiting on existing workers could not absorb —
    forking a process that would only ever block on an empty queue wastes
    a fork and a journal load. Never negative; [limit] is clamped to at
    least 1. *)

val cell_of_assignment : Wire.assignment -> (cell, string) result
(** Expand one assignment through {!cells_of_request} (the assignment's
    approach as the sole entry), so an assigned cell's config cannot
    drift from what `submit` validated. *)

val memo_snapshot :
  budget_s:float -> wall_s:float -> Run_journal.record ->
  Avis_util.Metrics.snapshot
(** The metrics snapshot a memo-served cell reports: counters from the
    record, no GC or store activity (nothing ran). Shared by the worker,
    the daemon's parent-side memo path and the client's reconstruction,
    so a memo-served cell's metrics line is identical wherever the memo
    was found. *)

val serve_pull :
  ?journal_path:string -> jobs:int -> input:Unix.file_descr ->
  out:Unix.file_descr -> unit -> unit
(** The forked child's main: request cells over [out] (one
    {!Wire.response.Cell_request} per free slot), execute each
    {!Wire.directive.Cell_assign} read from [input] (memo-serving from
    the journal at [journal_path] when it already holds the cell), and
    report terminal {!Wire.response.Cell_result} lines plus req-tagged
    {!Avis_util.Metrics} lines. A live cell's record is read back from
    the journal after the run, so its wire bytes equal a later memo's.
    Each line is written whole under a mutex, so the stream stays
    line-atomic even though cells run on concurrent domains. Returns
    after [Drain] or EOF on [input], once in-flight cells finish. Never
    raises on a cell failure: the supervised runner reports it as
    [Cell_quarantined]. *)
