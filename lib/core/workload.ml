open Avis_geo
open Avis_mavlink
open Avis_sitl

(* Mission items as data: converted to geodetic MAVLink items only when the
   upload starts, using the simulation's local frame. *)
type mission_step =
  | Takeoff_item of float
  | Waypoint_item of { north : float; east : float; alt : float }
  | Land_item
  | Rtl_item

type step =
  | Wait_time of float
  | Upload_mission of mission_step list
  | Arm
  | Enter_auto
  | Takeoff of float
  | Reposition of { north : float; east : float; alt : float }
  | Land_now
  | Return_to_launch
  | Wait_altitude of { alt : float; tolerance : float; timeout : float }
  | Wait_mode of int
  | Wait_disarmed
  | Wait_near of { north : float; east : float; radius : float; timeout : float }

let wait_altitude ?(tolerance = 0.75) ?(timeout = infinity) alt =
  Wait_altitude { alt; tolerance; timeout }

let wait_near ?(radius = 2.5) ?(timeout = infinity) ~north ~east () =
  Wait_near { north; east; radius; timeout }

type t = {
  name : string;
  description : string;
  environment : unit -> Avis_physics.Environment.t option;
  nominal_duration : float;
  script : step list;
}

let mission_items frame steps =
  List.mapi
    (fun seq ms ->
      match ms with
      | Takeoff_item alt ->
        { Msg.seq; command = Msg.cmd_takeoff; param1 = 0.0; x = 0.0; y = 0.0;
          z = alt }
      | Waypoint_item { north; east; alt } ->
        let geo = Geodesy.of_local frame (Vec3.make north east alt) in
        { Msg.seq; command = Msg.cmd_waypoint; param1 = 0.0;
          x = geo.Geodesy.lat; y = geo.Geodesy.lon; z = alt }
      | Land_item ->
        { Msg.seq; command = Msg.cmd_land; param1 = 0.0; x = 0.0; y = 0.0;
          z = 0.0 }
      | Rtl_item ->
        { Msg.seq; command = Msg.cmd_return_to_launch; param1 = 0.0; x = 0.0;
          y = 0.0; z = 0.0 })
    steps

module Stepper = struct
  type status = Running | Done of bool

  type stepper = {
    script : step array;
    mutable pc : int;
    mutable entered : bool;
    mutable until : float;  (** [Wait_time] target, absolute seconds. *)
    mutable deadline : float;  (** Current step's timeout, absolute. *)
    mutable seen_armed : bool;  (** [Wait_disarmed] edge detector. *)
    mutable status : status;
  }

  let create (w : t) =
    {
      script = Array.of_list w.script;
      pc = 0;
      entered = false;
      until = 0.0;
      deadline = infinity;
      seen_armed = false;
      status = Running;
    }

  type snapshot = stepper

  (* The program counter is plain data — that is the whole point of the
     script representation — so the stepper copies in O(1). *)
  let copy st = { st with pc = st.pc }
  let snapshot = copy
  let restore = copy

  let status st = st.status

  (* Entry actions fire once, when the program counter first reaches the
     step; they run back-to-back at the same simulated time as the previous
     step's satisfaction, exactly as the old blocking primitives did. *)
  let enter st sim stp =
    let gcs = Sim.gcs sim in
    let now = Sim.time sim in
    st.deadline <- infinity;
    match stp with
    | Wait_time s -> st.until <- now +. s
    | Upload_mission items ->
      Gcs.start_mission_upload gcs (mission_items (Sim.frame sim) items);
      st.deadline <- now +. 30.0
    | Arm ->
      Gcs.send_command gcs ~command:Msg.cmd_arm_disarm ~param1:1.0 ();
      st.deadline <- now +. 10.0
    | Enter_auto -> Gcs.request_mode gcs 3
    | Takeoff alt ->
      Gcs.send_command gcs ~command:Msg.cmd_takeoff ~param1:alt ();
      st.deadline <- now +. 10.0
    | Reposition { north; east; alt } ->
      Gcs.send_command gcs ~command:Msg.cmd_reposition ~param1:north
        ~param2:east ~param3:alt ()
    | Land_now -> Gcs.send_command gcs ~command:Msg.cmd_land ~param1:0.0 ()
    | Return_to_launch ->
      Gcs.send_command gcs ~command:Msg.cmd_return_to_launch ~param1:0.0 ()
    | Wait_altitude { timeout; _ } | Wait_near { timeout; _ } ->
      if timeout < infinity then st.deadline <- now +. timeout
    | Wait_mode _ -> ()
    | Wait_disarmed -> st.seen_armed <- false

  type verdict = Sat | Failed | Not_yet

  let local_position sim =
    let gcs = Sim.gcs sim in
    let geo =
      {
        Geodesy.lat = Gcs.latitude gcs;
        lon = Gcs.longitude gcs;
        alt = Gcs.relative_alt gcs;
      }
    in
    Geodesy.to_local (Sim.frame sim) geo

  let check st sim stp =
    let gcs = Sim.gcs sim in
    match stp with
    | Wait_time _ -> if Sim.time sim >= st.until then Sat else Not_yet
    | Upload_mission _ -> (
      match Gcs.upload_state gcs with
      | Gcs.Upload_done -> Sat
      | Gcs.Upload_failed | Gcs.Upload_timed_out -> Failed
      | Gcs.Upload_idle | Gcs.Upload_in_progress -> Not_yet)
    | Arm -> (
      match Gcs.command_status gcs ~command:Msg.cmd_arm_disarm with
      | Gcs.Tx_acked true -> Sat
      | Gcs.Tx_acked false | Gcs.Tx_timed_out -> Failed
      | Gcs.Tx_pending -> Not_yet)
    | Takeoff _ -> (
      match Gcs.command_status gcs ~command:Msg.cmd_takeoff with
      | Gcs.Tx_acked true -> Sat
      | Gcs.Tx_acked false | Gcs.Tx_timed_out -> Failed
      | Gcs.Tx_pending -> Not_yet)
    | Enter_auto | Reposition _ | Land_now | Return_to_launch ->
      (* Fire-and-forget: satisfied at entry, so the next step's entry
         action runs at the same simulated time. *)
      Sat
    | Wait_altitude { alt; tolerance; _ } ->
      if Float.abs (Gcs.relative_alt gcs -. alt) <= tolerance then Sat
      else Not_yet
    | Wait_mode code ->
      if Gcs.vehicle_mode gcs = Some code then Sat else Not_yet
    | Wait_disarmed ->
      (* Armed state rides on heartbeats (1 Hz); wait for one that said
         armed, then for one that says disarmed. *)
      let armed = Gcs.armed gcs in
      if armed then st.seen_armed <- true;
      if st.seen_armed && not armed then Sat else Not_yet
    | Wait_near { north; east; radius; _ } ->
      let open Vec3 in
      let p = local_position sim in
      if norm (horizontal (sub p (make north east 0.0))) < radius then Sat
      else Not_yet


  let encode_mission_step b ms =
    let open Avis_util.Codec in
    match ms with
    | Takeoff_item alt ->
      w_u8 b 0;
      w_f64 b alt
    | Waypoint_item { north; east; alt } ->
      w_u8 b 1;
      w_f64 b north;
      w_f64 b east;
      w_f64 b alt
    | Land_item -> w_u8 b 2
    | Rtl_item -> w_u8 b 3

  let decode_mission_step r =
    let open Avis_util.Codec in
    match r_u8 r with
    | 0 -> Takeoff_item (r_f64 r)
    | 1 ->
      let north = r_f64 r in
      let east = r_f64 r in
      let alt = r_f64 r in
      Waypoint_item { north; east; alt }
    | 2 -> Land_item
    | 3 -> Rtl_item
    | t -> corrupt "bad mission-step tag %d" t

  let encode_step b stp =
    let open Avis_util.Codec in
    match stp with
    | Wait_time s ->
      w_u8 b 0;
      w_f64 b s
    | Upload_mission items ->
      w_u8 b 1;
      w_list b encode_mission_step items
    | Arm -> w_u8 b 2
    | Enter_auto -> w_u8 b 3
    | Takeoff alt ->
      w_u8 b 4;
      w_f64 b alt
    | Reposition { north; east; alt } ->
      w_u8 b 5;
      w_f64 b north;
      w_f64 b east;
      w_f64 b alt
    | Land_now -> w_u8 b 6
    | Return_to_launch -> w_u8 b 7
    | Wait_altitude { alt; tolerance; timeout } ->
      w_u8 b 8;
      w_f64 b alt;
      w_f64 b tolerance;
      w_f64 b timeout
    | Wait_mode code ->
      w_u8 b 9;
      w_int b code
    | Wait_disarmed -> w_u8 b 10
    | Wait_near { north; east; radius; timeout } ->
      w_u8 b 11;
      w_f64 b north;
      w_f64 b east;
      w_f64 b radius;
      w_f64 b timeout

  let decode_step r =
    let open Avis_util.Codec in
    match r_u8 r with
    | 0 -> Wait_time (r_f64 r)
    | 1 -> Upload_mission (r_list r decode_mission_step)
    | 2 -> Arm
    | 3 -> Enter_auto
    | 4 -> Takeoff (r_f64 r)
    | 5 ->
      let north = r_f64 r in
      let east = r_f64 r in
      let alt = r_f64 r in
      Reposition { north; east; alt }
    | 6 -> Land_now
    | 7 -> Return_to_launch
    | 8 ->
      let alt = r_f64 r in
      let tolerance = r_f64 r in
      let timeout = r_f64 r in
      Wait_altitude { alt; tolerance; timeout }
    | 9 -> Wait_mode (r_int r)
    | 10 -> Wait_disarmed
    | 11 ->
      let north = r_f64 r in
      let east = r_f64 r in
      let radius = r_f64 r in
      let timeout = r_f64 r in
      Wait_near { north; east; radius; timeout }
    | t -> corrupt "bad workload-step tag %d" t

  (* The script itself travels in the snapshot, so a decoded stepper is
     self-contained: resuming it needs no lookup of the original workload. *)
  let encode_snapshot b (s : snapshot) =
    let open Avis_util.Codec in
    w_version b 1;
    w_array b encode_step s.script;
    w_int b s.pc;
    w_bool b s.entered;
    w_f64 b s.until;
    w_f64 b s.deadline;
    w_bool b s.seen_armed;
    (match s.status with
    | Running -> w_u8 b 0
    | Done passed ->
      w_u8 b 1;
      w_bool b passed)

  let decode_snapshot r : snapshot =
    let open Avis_util.Codec in
    let (_ : int) = r_version r ~expect:1 in
    let script = r_array r decode_step in
    let pc = r_int r in
    let entered = r_bool r in
    let until = r_f64 r in
    let deadline = r_f64 r in
    let seen_armed = r_bool r in
    let status =
      match r_u8 r with
      | 0 -> Running
      | 1 -> Done (r_bool r)
      | t -> corrupt "bad stepper-status tag %d" t
    in
    { script; pc; entered; until; deadline; seen_armed; status }

  let to_bytes s = Avis_util.Codec.to_string encode_snapshot s
  let of_bytes data = Avis_util.Codec.of_string decode_snapshot data

  (* One span per pumped segment: between two pauses, this loop is where
     the simulated world actually advances, so these spans are the "sim
     steps" share of a cell's wall time. *)
  let run st sim ~until =
    Avis_util.Trace.span ~cat:"sim" "sim.steps" @@ fun () ->
    let dt = (Sim.config sim).Sim.dt in
    let rec loop () =
      match st.status with
      | Done _ -> st.status
      | Running ->
        if st.pc >= Array.length st.script then begin
          st.status <- Done true;
          st.status
        end
        else begin
          let stp = st.script.(st.pc) in
          if not st.entered then begin
            enter st sim stp;
            st.entered <- true
          end;
          match check st sim stp with
          | Sat ->
            st.pc <- st.pc + 1;
            st.entered <- false;
            loop ()
          | Failed ->
            st.status <- Done false;
            st.status
          | Not_yet ->
            if Sim.time sim >= st.deadline then begin
              st.status <- Done false;
              st.status
            end
            else if Sim.finished sim then begin
              st.status <- Done false;
              st.status
            end
            else begin
              (* Pause strictly before [until]: computing the next step's
                 time from the step count (not by accumulation) keeps the
                 pause point bit-identical to an uninterrupted run. *)
              let next_time = float_of_int (Sim.steps sim + 1) *. dt in
              if next_time >= until then st.status
              else begin
                Sim.step sim;
                loop ()
              end
            end
        end
    in
    loop ()
end

let execute w sim =
  let st = Stepper.create w in
  match Stepper.run st sim ~until:infinity with
  | Stepper.Done passed -> passed
  | Stepper.Running -> false (* unreachable: nothing pauses at infinity *)

let no_environment () = None

let quickstart =
  {
    name = "quickstart";
    description = "Fig. 8: takeoff to 20 m under the auto mission, then land";
    environment = no_environment;
    nominal_duration = 45.0;
    script =
      [
        Wait_time 2.0;
        Upload_mission [ Takeoff_item 20.0; Land_item ];
        Arm;
        Enter_auto;
        wait_altitude 20.0;
        wait_altitude 0.0;
        Wait_disarmed;
      ];
  }

let box_corners = [ (20.0, 0.0); (20.0, 20.0); (0.0, 20.0); (0.0, 0.0) ]

let manual_box =
  {
    name = "manual-box";
    description =
      "Position-hold workload: ascend to 20 m, fly the perimeter of a \
       20 m x 20 m box, land at the launch point";
    environment = no_environment;
    nominal_duration = 75.0;
    script =
      [ Wait_time 2.0; Arm; Takeoff 20.0; wait_altitude 20.0;
        (* The vehicle switches to Manual only after the climb completes;
           repositions sent before that would be rejected. *)
        Wait_mode 2 ]
      @ List.concat_map
          (fun (north, east) ->
            [
              Reposition { north; east; alt = 20.0 };
              wait_near ~timeout:30.0 ~north ~east ();
            ])
          box_corners
      @ [ Land_now; Wait_disarmed ];
  }

let auto_box =
  {
    name = "auto-box";
    description =
      "Auto mission: takeoff to 20 m, the four corners of a 20 m box, \
       return to launch";
    environment = no_environment;
    nominal_duration = 85.0;
    script =
      [
        Wait_time 2.0;
        Upload_mission
          ((Takeoff_item 20.0
           :: List.map
                (fun (north, east) -> Waypoint_item { north; east; alt = 20.0 })
                box_corners)
          @ [ Rtl_item ]);
        Arm;
        Enter_auto;
        wait_altitude 20.0;
        Wait_disarmed;
      ];
  }

let fence_mission =
  {
    name = "fence-mission";
    description =
      "Auto mission whose second leg crosses a geofence; the firmware must \
       refuse the leg and return to launch";
    environment =
      (fun () ->
        Some
          (Avis_physics.Environment.create
             ~fence:
               (Some
                  {
                    Avis_physics.Environment.centre_xy = Vec3.zero;
                    radius_m = 30.0;
                    max_alt_m = 60.0;
                  })
             ()));
    nominal_duration = 70.0;
    script =
      [
        Wait_time 2.0;
        Upload_mission
          [
            Takeoff_item 20.0;
            Waypoint_item { north = 20.0; east = 0.0; alt = 20.0 };
            (* This target lies outside the 30 m fence. *)
            Waypoint_item { north = 70.0; east = 0.0; alt = 20.0 };
            Rtl_item;
          ];
        Arm;
        Enter_auto;
        wait_altitude 20.0;
        Wait_disarmed;
      ];
  }

let defaults = [ manual_box; auto_box ]

let all = [ quickstart; manual_box; auto_box; fence_mission ]

let by_name name = List.find_opt (fun w -> w.name = name) all
