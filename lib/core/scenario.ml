open Avis_sensors

type sensor_fault = Avis_hinj.Hinj.fault = { sensor : Sensor.id; at : float }

type fault =
  | Sensor_fault of sensor_fault
  | Link_loss of { at : float; duration : float }

type t = fault list

let empty = []

let sensor_fault sensor at = Sensor_fault { sensor; at }

let link_loss ~at ~duration = Link_loss { at; duration }

let fault_time = function Sensor_fault f -> f.at | Link_loss l -> l.at

let bucket at = int_of_float (Float.round (at *. 1000.0))

let compare_fault a b =
  match compare (bucket (fault_time a)) (bucket (fault_time b)) with
  | 0 -> (
    (* Same time bucket: sensor faults sort before link outages. *)
    match (a, b) with
    | Sensor_fault fa, Sensor_fault fb -> Sensor.compare_id fa.sensor fb.sensor
    | Sensor_fault _, Link_loss _ -> -1
    | Link_loss _, Sensor_fault _ -> 1
    | Link_loss la, Link_loss lb ->
      compare (bucket la.duration) (bucket lb.duration))
  | c -> c

let of_faults faults =
  let sorted = List.sort_uniq compare_fault faults in
  sorted

let add t fault = of_faults (fault :: t)

let union a b = of_faults (a @ b)

let to_plan t =
  List.filter_map (function Sensor_fault f -> Some f | Link_loss _ -> None) t

let link_outages t =
  List.filter_map
    (function
      | Link_loss { at; duration } -> Some (at, duration) | Sensor_fault _ -> None)
    t

let cardinality = List.length

let fault_key = function
  | Sensor_fault f ->
    Printf.sprintf "%s@%d" (Sensor.id_to_string f.sensor) (bucket f.at)
  | Link_loss { at; duration } ->
    Printf.sprintf "link@%d+%d" (bucket at) (bucket duration)

let key t = String.concat ";" (List.map fault_key t)

let role_key t =
  String.concat ";"
    (List.map
       (function
         | Sensor_fault f ->
           let role =
             match Sensor.role_of f.sensor with
             | Sensor.Primary -> "P"
             | Sensor.Backup -> "B"
           in
           Printf.sprintf "%s/%s@%d"
             (Sensor.kind_to_string f.sensor.Sensor.kind)
             role (bucket f.at)
         | Link_loss _ as f ->
           (* There is only one datalink: no instance symmetry to fold. *)
           fault_key f)
       t)

let subsumes ~smaller ~larger =
  List.for_all
    (fun f -> List.exists (fun g -> compare_fault f g = 0) larger)
    smaller

let sensors_failed t =
  List.filter_map
    (function Sensor_fault f -> Some f.sensor | Link_loss _ -> None)
    t

let has_link_loss t =
  List.exists (function Link_loss _ -> true | Sensor_fault _ -> false) t

let first_injection_time = function
  | [] -> None
  | f :: rest ->
    Some
      (List.fold_left
         (fun acc g -> Float.min acc (fault_time g))
         (fault_time f) rest)

let pp_fault ppf = function
  | Sensor_fault f ->
    Format.fprintf ppf "%s@%.2fs" (Sensor.id_to_string f.sensor) f.at
  | Link_loss { at; duration } ->
    Format.fprintf ppf "link-loss@%.2fs(+%.1fs)" at duration

let pp ppf t =
  if t = [] then Format.fprintf ppf "(no faults)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      pp_fault ppf t

let to_string t = Format.asprintf "%a" pp t
