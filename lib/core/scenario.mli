(** Fault-injection scenarios.

    A scenario is a set of scheduled faults — the paper's set of
    (Timestamp, Fault) tuples, extended with datalink outages alongside
    sensor failures. Scenarios are kept in a canonical sorted form so that
    equality, hashing and the pruning policies are well defined. *)

open Avis_sensors

type sensor_fault = Avis_hinj.Hinj.fault = { sensor : Sensor.id; at : float }

type fault =
  | Sensor_fault of sensor_fault
  | Link_loss of { at : float; duration : float }
      (** The GCS↔vehicle datalink goes silent at [at] for [duration]
          simulated seconds. *)

type t = fault list
(** Canonically sorted (by time, then sensor faults before link outages,
    then identity). *)

val empty : t

val sensor_fault : Sensor.id -> float -> fault
val link_loss : at:float -> duration:float -> fault

val fault_time : fault -> float

val of_faults : fault list -> t
(** Sort into canonical form and drop exact duplicates. *)

val add : t -> fault -> t

val union : t -> t -> t

val to_plan : t -> Avis_hinj.Hinj.plan
(** The sensor faults only, as an injection plan. *)

val link_outages : t -> (float * float) list
(** The link outages only, as [(at, duration)] spans for the simulator. *)

val cardinality : t -> int

val key : t -> string
(** Canonical string key for the explored-scenario hash set. Times are
    bucketed to the millisecond; link outages render as
    ["link@<ms>+<duration ms>"]. *)

val role_key : t -> string
(** Key under sensor-instance symmetry: instances are reduced to their
    roles, so two scenarios failing "some backup compass at t" get the
    same key (§IV-B's symmetry policy). The datalink has a single
    instance, so link outages keep their canonical key. *)

val subsumes : smaller:t -> larger:t -> bool
(** [subsumes ~smaller ~larger] when every fault of [smaller] appears in
    [larger] (same fault, same time bucket) — the found-bug pruning
    relation. *)

val sensors_failed : t -> Sensor.id list

val has_link_loss : t -> bool

val first_injection_time : t -> float option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
