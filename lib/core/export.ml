open Avis_util
open Avis_geo

let vec3_to_json v = Json.List [ Json.Number v.Vec3.x; Json.Number v.Vec3.y; Json.Number v.Vec3.z ]

let trace_to_json trace =
  Json.List
    (Array.to_list
       (Array.map
          (fun s ->
            Json.Assoc
              [
                ("t", Json.Number s.Avis_sitl.Trace.time);
                ("position", vec3_to_json s.Avis_sitl.Trace.position);
                ("acceleration", vec3_to_json s.Avis_sitl.Trace.acceleration);
                ("mode", Json.String s.Avis_sitl.Trace.mode);
              ])
          (Avis_sitl.Trace.samples trace)))

let transitions_to_json transitions =
  Json.List
    (List.map
       (fun tr ->
         Json.Assoc
           [
             ("t", Json.Number tr.Avis_hinj.Hinj.time);
             ("from", Json.String tr.Avis_hinj.Hinj.from_mode);
             ("to", Json.String tr.Avis_hinj.Hinj.to_mode);
           ])
       transitions)

let outcome_to_json (o : Avis_sitl.Sim.outcome) =
  Json.Assoc
    [
      ("duration_s", Json.Number o.Avis_sitl.Sim.duration);
      ("workload_passed", Json.Bool o.Avis_sitl.Sim.workload_passed);
      ( "crash",
        match o.Avis_sitl.Sim.crash with
        | Some e ->
          Json.String (Format.asprintf "%a" Avis_physics.World.pp_contact e)
        | None -> Json.Null );
      ("fence_breached", Json.Bool o.Avis_sitl.Sim.fence_breached);
      ("sensor_reads", Json.int o.Avis_sitl.Sim.sensor_reads);
      ("transitions", transitions_to_json o.Avis_sitl.Sim.transitions);
      ("trace", trace_to_json o.Avis_sitl.Sim.trace);
    ]

let scenario_to_json scenario =
  Json.List
    (List.map
       (fun f ->
         match f with
         | Scenario.Sensor_fault sf ->
           Json.Assoc
             [
               ( "sensor",
                 Json.String (Avis_sensors.Sensor.id_to_string sf.Scenario.sensor) );
               ("at_s", Json.Number sf.Scenario.at);
             ]
         | Scenario.Link_loss { at; duration } ->
           Json.Assoc
             [
               ("link_loss", Json.Bool true);
               ("at_s", Json.Number at);
               ("duration_s", Json.Number duration);
             ])
       scenario)

let violation_to_json (v : Monitor.violation) =
  Json.Assoc
    [
      ( "kind",
        Json.String
          (match v.Monitor.kind with
          | Monitor.Safety s -> "safety: " ^ s
          | Monitor.Fence_breach -> "fence breach"
          | Monitor.Liveliness -> "liveliness"
          | Monitor.Safe_mode_invariant m -> "safe-mode invariant: " ^ m) );
      ("time_s", Json.Number v.Monitor.time);
      ("mode", Json.String v.Monitor.mode);
      ("symptom", Json.String (Monitor.symptom_to_string v.Monitor.symptom));
    ]

let report_to_json (r : Report.t) =
  Json.Assoc
    [
      ("scenario", scenario_to_json r.Report.scenario);
      ("violation", violation_to_json r.Report.violation);
      ("injection_mode", Json.String r.Report.injection_mode);
      ( "relative_faults",
        Json.List
          (List.map
             (fun rf ->
               let subject =
                 match rf.Report.subject with
                 | Report.Subject_sensor id ->
                   ( "sensor",
                     Json.String (Avis_sensors.Sensor.id_to_string id) )
                 | Report.Subject_link duration ->
                   ("link_loss_duration_s", Json.Number duration)
               in
               Json.Assoc
                 [
                   subject;
                   ("mode", Json.String rf.Report.mode);
                   ("offset_s", Json.Number rf.Report.offset_s);
                 ])
             r.Report.relative_faults) );
      ( "triggered_bugs",
        Json.List
          (List.map
             (fun id ->
               Json.String (Avis_firmware.Bug.info id).Avis_firmware.Bug.report)
             r.Report.triggered_bugs) );
      ("duration_s", Json.Number r.Report.duration);
    ]

let campaign_to_json (result : Campaign.result) =
  Json.Assoc
    [
      ("approach", Json.String result.Campaign.approach);
      ("simulations", Json.int result.Campaign.simulations);
      ("inferences", Json.int result.Campaign.inferences);
      ("wall_clock_spent_s", Json.Number result.Campaign.wall_clock_spent_s);
      ("unsafe_conditions", Json.int (Campaign.unsafe_count result));
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Assoc
                 [
                   ("simulation_index", Json.int f.Campaign.simulation_index);
                   ("report", report_to_json f.Campaign.report);
                 ])
             result.Campaign.findings) );
    ]

let mode_graph_to_dot graph =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph modes {\n";
  List.iter
    (fun mode -> Buffer.add_string buf (Printf.sprintf "  %S;\n" mode))
    (Mode_graph.modes graph);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" a b))
    (Mode_graph.edges graph);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path contents =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
