(** Crash-safe, resumable campaign memo journal.

    A long campaign matrix killed mid-run (crash, OOM-kill, pre-emption)
    loses every completed cell: the next invocation re-simulates them all.
    The journal fixes that: each completed cell is appended as one JSONL
    record keyed by the MD5 of [(binary fingerprint, canonical cell
    configuration bytes)], so a re-run with the same binary and
    configuration serves the finished cells from the journal and only
    simulates the rest — with counts, budget charges and finding indices
    bit-identical to an uninterrupted run (the record stores the spent
    seconds by their IEEE-754 bits).

    {2 Durability}

    Records are appended as single lines to a file opened in append mode
    and flushed per record, so a crash can lose at most the record being
    written — and a torn trailing line is detected at load time, warned
    about, and skipped (subsequent appends first terminate it with a
    newline so no later record is corrupted by concatenation).

    {2 Staleness}

    The first line is a header carrying the binary fingerprint (the digest
    of the running executable, {!Checkpoint_store.default_fingerprint}). A
    journal written by a different build is invalidated {e loudly}: the
    stale file is renamed to [PATH.stale] with a warning, and a fresh
    journal is started — memos from another binary are never served
    silently. *)

type finding = {
  simulation_index : int;
  description : string;  (** {!Report.describe} of the finding. *)
  bucket : string;  (** {!Report.bucket_label} of the injection bucket. *)
  bugs : string list;  (** Report ids of the ground-truth triggered bugs. *)
}

type record = {
  key : string;  (** Hex MD5 of (fingerprint, cell config bytes). *)
  label : string;  (** Human-readable cell label (diagnostics only). *)
  simulations : int;
  inferences : int;
  spent_bits : int64;  (** IEEE-754 bits of the spent budget seconds. *)
  elapsed_bits : int64 option;
      (** IEEE-754 bits of the cell's real wall-clock duration, feeding
          the scheduler's {!Cost_model}. [None] for journals written
          before the field existed — such records still memo-serve; only
          duration prediction falls back to the budget-derived estimate.
          Informational: the value is a measurement, not part of the
          deterministic result, so identity checks compare records with
          it normalised out. *)
  findings : finding list;  (** Oldest first. *)
}

type t

val open_ : ?fingerprint:string -> string -> t
(** Open (creating if needed) the journal at the given path and load every
    complete record. [fingerprint] overrides the binary fingerprint (tests
    use this to simulate a rebuilt binary). A header mismatch renames the
    file to [PATH.stale] and starts fresh; unparseable interior lines are
    warned about and skipped. *)

val path : t -> string
val fingerprint : t -> string

val key : fingerprint:string -> config_bytes:string -> string
(** The journal key for a cell: hex MD5 over the fingerprint and the
    cell's canonical configuration bytes (null-separated). *)

val find : t -> key:string -> record option
(** The completed record under [key], if any. *)

val record_complete : t -> record -> unit
(** Append a completed cell (one line, flushed) and index it for {!find}.
    Safe to call concurrently from worker domains. *)

val record_interrupted : t -> key:string -> label:string -> unit
(** Append an incomplete marker for a cell that was interrupted mid-run.
    The marker is diagnostic only: it is never served by {!find}. *)

val completed_count : t -> int
(** Complete records loaded when the journal was opened (not counting
    records appended since). *)

val interrupted_count : t -> int
(** Incomplete markers seen at load time. *)

val spent_s : record -> float
(** [Int64.float_of_bits record.spent_bits]. *)

val elapsed_s : record -> float option
(** The cell's measured wall-clock duration in seconds, when recorded. *)

val fold_records : t -> init:'a -> f:('a -> record -> 'a) -> 'a
(** Fold over every complete record currently indexed (load-time records
    plus any appended since), in unspecified order. Used to prime the
    scheduler's cost model from journal history. *)

(** {2 Record serialisation}

    The journal's one-line JSON encoding of a completed cell, exposed so
    the hunt daemon can carry records over its wire protocol byte-for-byte
    as they would be journalled — the client's view of a result and the
    journal's memo of it are the same bytes. *)

val record_to_json : record -> Avis_util.Json.t

val record_of_json : Avis_util.Json.t -> record option
(** [None] on any missing or ill-typed field. *)
