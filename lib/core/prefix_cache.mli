(** Snapshot-based prefix caching for campaign test runs.

    Every test run in a campaign replays a shared prefix before diverging:
    the clean flight — provision, arm, climb — and, for searches that stack
    faults onto a previously observed scenario (SABRE's sites), the faulty
    flight of that base scenario too. The cache checkpoints both with
    {!Avis_sitl.Sim.snapshot} and {!Workload.Stepper.snapshot}:

    - the clean run is simulated {e once} (same config and seed as the test
      runs) and checkpointed lazily at the requested times, and
    - every executed scenario is itself checkpointed at those times as it
      runs, each checkpoint keyed by the exact set of faults — sensor
      failures and link outages alike — already active when it was taken
      (an outage stays in the key after its window closes: the traffic it
      dropped leaves the run permanently different).

    A scenario is then served by restoring the latest checkpoint whose
    active-fault set is a float-for-float prefix of the scenario and whose
    time lies strictly before the scenario's next injection, substituting
    the full fault schedule with {!Avis_sitl.Sim.restore}, and simulating
    only the suffix. Because the fixed test seed makes runs with identical
    fault histories bit-identical, and the restored simulator keeps its
    step counter, every outcome — trace, transitions, duration, sensor
    reads — is bit-identical to a cold run of the same scenario, and budget
    accounting (which charges the full virtual duration) is unchanged. The
    win is wall-clock only.

    Configurations the key cannot encode are refused wholesale: if the
    provisioned runs carry sensor degradations or a probabilistic link
    fault profile, every scenario is simulated cold and counted as a miss
    (see {!bypassing}). *)

type t

val create :
  ?cache_mb:int ->
  ?store_dir:string ->
  ?store_mb:int ->
  workload:Workload.t ->
  make_sim:(scenario:Scenario.t -> Avis_sitl.Sim.t) ->
  checkpoint_times:float list ->
  unit ->
  t
(** [make_sim] must provision a simulator exactly as the campaign's test
    runs do (same seed, config and environment), differing only in the
    scenario's fault schedule. [checkpoint_times] need not be sorted or
    unique; non-positive times are dropped. [create] probes [make_sim]
    once (with the empty scenario) to detect uncacheable configurations.

    [cache_mb] bounds the resident checkpoint bytes; it defaults to the
    [AVIS_CACHE_MB] environment variable, else 1024 MiB (zero, negative
    and malformed values are warned about and replaced by the default).
    When a capture would push the resident set past the budget, whole
    checkpoints are evicted in global least-recently-used order (hits and
    captures both count as uses) until it fits; a lone checkpoint larger
    than the whole budget is itself evicted, so the bound holds
    unconditionally. Eviction only costs future wall-clock (the evicted
    prefix re-simulates cold) — outcomes are unaffected.

    [store_dir] (default the [AVIS_STORE_DIR] environment variable, else
    no store) adds a persistent tier behind the in-memory one: a
    {!Checkpoint_store} rooted there, keyed by the campaign's code
    fingerprint, canonical configuration bytes, workload and fault
    history. Captures are written through (lazily — nothing is serialised
    when the file already exists), memory misses fall back to the store
    before running cold, and a fresh process forks its clean builder from
    the best stored clean checkpoint instead of re-simulating it. Stored
    checkpoints are served only on bit-exact key matches, so outcomes
    remain bit-identical to cold runs, across processes. [store_mb]
    bounds the store directory (default [AVIS_STORE_MB], else 1024 MiB);
    bypassing configurations never open a store. *)

val execute : t -> scenario:Scenario.t -> Avis_sitl.Sim.outcome
(** Run one scenario, forking from the best applicable checkpoint — clean
    or faulty-prefix — when one exists, and cold otherwise. Either way the
    outcome is bit-identical to a cold run. Equivalent to {!begin_run}
    followed by [continue_run ~until:infinity]. *)

type run
(** A scenario mid-execution: the forked (or cold) harness plus the
    capture schedule still owed. Produced by {!begin_run}, advanced by
    {!continue_run} — the incremental interface the batched campaign
    driver interleaves lanes with. *)

val begin_run : t -> scenario:Scenario.t -> run
(** Provision a scenario exactly as {!execute} would — serve the best
    checkpoint, fall back to the store, or run cold; bypassing configs
    count as misses — but return before simulating anything. *)

val run_sim : run -> Avis_sitl.Sim.t
(** The run's live harness (e.g. to adopt into a lane batch). *)

val continue_run : t -> run -> until:float -> Avis_sitl.Sim.outcome option
(** Advance the run, capturing checkpoints at the cache's times as it
    passes them, until it completes ([Some outcome]) or the simulation
    clock is about to reach [until] ([None]; resume with a later call).
    Slicing a run with intermediate [until]s is bit-identical to
    [continue_run ~until:infinity] in one call — same outcome, same
    captured checkpoints. *)

val bypassing : t -> bool
(** True when the provisioned runs carry state the cache key cannot encode
    (sensor degradations, probabilistic link faults); every [execute] is
    then a cold run counted as a miss. *)

type stats = {
  hits : int;  (** Scenarios served from a checkpoint. *)
  misses : int;  (** Scenarios simulated cold. *)
  saved_sim_s : float;
      (** Simulated seconds skipped by restoring instead of replaying. *)
  evictions : int;  (** Checkpoints dropped to stay within the budget. *)
  resident_bytes : int;  (** Current accounted checkpoint bytes. *)
  store_hits : int;
      (** Restores served from the persistent store (scenario forks and
          clean-builder forks alike); 0 when no store is configured. *)
  store_misses : int;
      (** Scenarios the store was consulted for but could not serve. *)
  store_bytes : int;  (** Bytes currently on disk under the store. *)
}

val stats : t -> stats

val enabled_by_env : unit -> bool
(** The [AVIS_PREFIX_CACHE] toggle: caching is on unless the variable is
    set to ["0"], ["false"], ["off"] or ["no"] (case-insensitive). *)
