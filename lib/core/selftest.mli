(** Staged burn-in diagnostics for unattended operation.

    Every optimisation PRs 2–7 layered onto the pipeline — the fused
    physics kernel, the lane batcher, snapshot round-tripping, the
    persistent checkpoint store, the prefix cache, the domain pool, the
    allocation-free hot loop — carries a machine-checkable invariant.
    This module packages those invariants as an ordered list of cheap
    checks with {e stable string error codes}, so an operator (or the
    future hunt-as-a-service daemon at boot) can prove on {e this}
    machine, with {e this} binary, that the determinism assumptions a
    long campaign rests on actually hold before burning budget:

    - [DET-FP] — optimised {!Avis_physics.World.step} vs
      [step_reference]: bit-equal state fingerprints over a
      climb/cruise/descend profile in calm and windy air;
    - [LANE-ID] — the structure-of-arrays lane batcher vs single-world
      stepping: bit-equal fingerprints for every lane;
    - [SNAP-RT] — simulator snapshot → bytes → snapshot: byte-stable
      re-encoding, and the restored run steps bit-identically;
    - [STORE-RW] — checkpoint store in a temp dir: write/read round-trip,
      corrupt-file detection, stale-fingerprint isolation;
    - [CACHE-ID] — a mini campaign with the prefix cache on vs off:
      identical counts, ledger bits and finding indices;
    - [POOL-SANE] — domain pool: ordered [map], exception propagation,
      idempotent close, closed-pool submission rejected;
    - [ALLOC-0] — the step/sense/record hot loop allocates no minor-heap
      words per step.

    Checks run in order and all of them run (a failure does not stop the
    sequence): the table is the diagnosis, the exit code the verdict.
    [avis_cli selftest] is the command-line entry (exit 0/1). *)

type report = {
  code : string;  (** Stable error code, e.g. [DET-FP]. *)
  name : string;  (** Human-readable one-liner. *)
  passed : bool;
  detail : string;  (** What was measured, or what diverged. *)
  elapsed_s : float;
}

type check = {
  code : string;
  name : string;
  run : unit -> (string, string) result;
      (** [Ok detail] / [Error detail]. Exceptions are caught by
          {!run_check} and reported as failures. *)
}

val det_fp :
  ?optimized:
    (Avis_physics.World.t ->
    motor_commands:float array ->
    dt:float ->
    Avis_physics.World.contact_event option) ->
  unit ->
  check
(** The [DET-FP] check. [optimized] substitutes the kernel under test
    (default {!Avis_physics.World.step}) — tests inject a perturbed
    stepper to force the failure path. *)

val store_rw : ?dir:string -> unit -> check
(** The [STORE-RW] check. [dir] overrides the store directory (default a
    fresh temp dir, removed afterwards) — tests pass an unusable path to
    force the failure path. *)

val checks : unit -> check list
(** The standard staged sequence, in order: [DET-FP], [LANE-ID],
    [SNAP-RT], [STORE-RW], [CACHE-ID], [POOL-SANE], [ALLOC-0]. *)

val run_check : check -> report

val run_all : ?checks:check list -> unit -> report list
(** Run every check (default {!checks}) in order; never raises. *)

val all_passed : report list -> bool

val table : report list -> Avis_util.Table.t
(** The selftest report as a printable table. *)

(** {2 Soak mode}

    Loops a small fixed campaign under a rotating seed and fingerprints
    each iteration's outcome (simulation and inference counts, the spent
    ledger's bits, every finding's index and description). Any mismatch
    between two iterations with the same seed is {e drift} — the
    determinism contract broken by thermal throttling, a flaky allocator,
    cosmic rays, or a real bug — and is reported per occurrence. *)

type soak = {
  iterations : int;
  drift : string list;  (** One human-readable entry per mismatch. *)
}

val soak :
  ?iterations:int -> ?progress:(int -> unit) -> minutes:float -> unit -> soak
(** Run for [minutes] of wall clock (at least one full seed rotation), or
    exactly [iterations] iterations when given. [progress] is called with
    the 1-based iteration number as each iteration completes. *)
