(** Replaying recorded unsafe conditions (§IV-D).

    Avis saves each finding's faults as offsets from the mode transitions
    that preceded them; to reconstruct the unsafe condition under a
    different nondeterminism seed it re-executes the mission and injects
    the same faults at the same offsets *relative to the modes they
    affect*, which survives the small timing shifts the OS scheduler (our
    link jitter) introduces. *)

val reconstruct_scenario :
  reference:Avis_hinj.Hinj.transition list ->
  Report.relative_fault list ->
  Scenario.t
(** Map recorded mode-relative faults (sensor failures and link outages
    alike) onto a (possibly shifted) new run's transition log. Faults whose
    mode never appears in the reference are scheduled at their recorded
    offset from the start. *)

type outcome = {
  reproduced : bool;  (** The replay was also judged unsafe. *)
  verdict : Monitor.verdict;
  original : Report.t;
  replay_duration : float;
}

val replay :
  config:Campaign.config -> profile:Monitor.profile -> seed:int -> Report.t -> outcome
(** Re-execute the mission with a different seed: first a clean probe run
    to observe the new timing, then the fault run with the reconstructed
    plan. *)
