(** The CLI's fault syntax: ["<kind>[<index>]@<seconds>"].

    ["gps[0]@12.5"] fails the first GPS 12.5 simulated seconds in;
    ["gps@12.5"] (no index) fails {e every} instance of the kind. Parsing
    is strict: a bracketed index must be exactly decimal digits (a typo
    like ["gps[abc]@5"] is an error, not a silent all-instances fault),
    and injection times must be finite non-negative numbers — nan,
    infinities and negatives are rejected (an infinite time parses as a
    float but names a fault that can never fire, charging budget for a
    scenario that tests nothing). *)

type t = {
  kind : Avis_sensors.Sensor.kind;
  index : int option;  (** [None] = all instances of the kind. *)
  at : float;  (** Injection time, simulated seconds. *)
}

val parse : string -> (t, string) result

val to_string : t -> string
(** Canonical form; [parse (to_string t)] round-trips for any [t] whose
    time survives ["%g"] formatting. *)
