open Avis_util

type finding = {
  simulation_index : int;
  description : string;
  bucket : string;
  bugs : string list;
}

type record = {
  key : string;
  label : string;
  simulations : int;
  inferences : int;
  spent_bits : int64;
  elapsed_bits : int64 option;
  findings : finding list;
}

type t = {
  path : string;
  fingerprint : string;
  table : (string, record) Hashtbl.t;
  mutex : Mutex.t;
  mutable needs_newline : bool;
      (** The file ends in a torn (newline-less) line a crash left behind;
          the next append must terminate it first, or the new record would
          concatenate onto the torn one and both lines would be lost. *)
  mutable loaded : int;
  mutable interrupted : int;
}

let path t = t.path
let fingerprint t = t.fingerprint
let completed_count t = t.loaded
let interrupted_count t = t.interrupted
let spent_s r = Int64.float_of_bits r.spent_bits
let elapsed_s r = Option.map Int64.float_of_bits r.elapsed_bits

let key ~fingerprint ~config_bytes =
  Digest.to_hex (Digest.string (fingerprint ^ "\x00" ^ config_bytes))

(* One record (or the header) per line: compact JSON, never pretty. *)

let header_json fingerprint =
  Json.Assoc
    [
      ("journal", Json.String "avis-run-journal");
      ("version", Json.int 1);
      ("fingerprint", Json.String fingerprint);
    ]

let json_of_finding f =
  Json.Assoc
    [
      ("sim", Json.int f.simulation_index);
      ("desc", Json.String f.description);
      ("bucket", Json.String f.bucket);
      ("bugs", Json.List (List.map (fun b -> Json.String b) f.bugs));
    ]

let json_of_record r =
  Json.Assoc
    (List.concat
       [
         [
           ("key", Json.String r.key);
           ("label", Json.String r.label);
           ("complete", Json.Bool true);
           ("sims", Json.int r.simulations);
           ("infs", Json.int r.inferences);
           ("spent_bits", Json.String (Printf.sprintf "%016Lx" r.spent_bits));
         ];
         (* Wall-clock duration of the cell, feeding the scheduler's cost
            model. Optional: journals written before the field existed (or
            records from paths that never measured) stay servable. *)
         (match r.elapsed_bits with
         | Some bits ->
           [ ("elapsed_bits", Json.String (Printf.sprintf "%016Lx" bits)) ]
         | None -> []);
         [ ("findings", Json.List (List.map json_of_finding r.findings)) ];
       ])

let str = function Some (Json.String s) -> Some s | _ -> None
let num = function Some (Json.Number f) -> Some (int_of_float f) | _ -> None
let ( let* ) = Option.bind

let finding_of_json j =
  let* simulation_index = num (Json.member "sim" j) in
  let* description = str (Json.member "desc" j) in
  let* bucket = str (Json.member "bucket" j) in
  let* bugs =
    match Json.member "bugs" j with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc b ->
          match (acc, b) with
          | Some acc, Json.String s -> Some (s :: acc)
          | _ -> None)
        (Some []) l
      |> Option.map List.rev
    | _ -> None
  in
  Some { simulation_index; description; bucket; bugs }

let record_to_json = json_of_record

let record_of_json j =
  let* key = str (Json.member "key" j) in
  let* label = str (Json.member "label" j) in
  let* simulations = num (Json.member "sims" j) in
  let* inferences = num (Json.member "infs" j) in
  let* spent_bits =
    let* hex = str (Json.member "spent_bits" j) in
    Int64.of_string_opt ("0x" ^ hex)
  in
  (* Tolerant: a missing field (old journal line) is [None]; a present but
     malformed one rejects the record like any other ill-typed field. *)
  let* elapsed_bits =
    match Json.member "elapsed_bits" j with
    | None -> Some None
    | Some (Json.String hex) ->
      Option.map Option.some (Int64.of_string_opt ("0x" ^ hex))
    | Some _ -> None
  in
  let* findings =
    match Json.member "findings" j with
    | Some (Json.List l) ->
      List.fold_left
        (fun acc f ->
          match acc with
          | None -> None
          | Some acc -> Option.map (fun f -> f :: acc) (finding_of_json f))
        (Some []) l
      |> Option.map List.rev
    | _ -> None
  in
  Some { key; label; simulations; inferences; spent_bits; elapsed_bits; findings }

let warn fmt = Printf.eprintf ("[avis] journal: " ^^ fmt ^^ "\n%!")

let append_line t line =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 t.path
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          if t.needs_newline then begin
            output_char oc '\n';
            t.needs_newline <- false
          end;
          output_string oc line;
          output_char oc '\n';
          flush oc))

let write_header t = append_line t (Json.to_string (header_json t.fingerprint))

let read_text path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with _ -> None

(* A header written by a different binary: every memo in the file would be
   unsound to serve. Invalidate loudly — rename aside rather than delete,
   so the operator can inspect what was lost — and start fresh. *)
let invalidate t ~reason =
  let stale = t.path ^ ".stale" in
  warn "%s: %s; moving it to %s and starting a fresh journal" t.path reason
    stale;
  (try Sys.remove stale with _ -> ());
  (try Sys.rename t.path stale with _ -> ());
  t.needs_newline <- false;
  write_header t

let load t text =
  if not (String.length text > 0 && text.[String.length text - 1] = '\n')
  then t.needs_newline <- true;
  let lines = String.split_on_char '\n' text in
  (* A file ending in '\n' splits into lines plus one trailing "";
     otherwise the last element is a torn line a crash left behind. *)
  let lines, torn =
    match List.rev lines with
    | "" :: rest -> (List.rev rest, None)
    | torn :: rest -> (List.rev rest, Some torn)
    | [] -> ([], None)
  in
  (match torn with
  | Some l when String.trim l <> "" ->
    warn "%s: ignoring torn trailing line (%d bytes) from an interrupted \
          write"
      t.path (String.length l)
  | _ -> ());
  match lines with
  | [] -> invalidate t ~reason:"missing header line"
  | header :: records -> (
    let fp =
      match Json.of_string header with
      | Ok j -> (
        match (str (Json.member "journal" j), str (Json.member "fingerprint" j)) with
        | Some "avis-run-journal", Some fp -> Some fp
        | _ -> None)
      | Error _ -> None
    in
    match fp with
    | None -> invalidate t ~reason:"unrecognised header line"
    | Some fp when fp <> t.fingerprint ->
      invalidate t
        ~reason:
          (Printf.sprintf
             "written by a different binary (fingerprint %s, ours %s) — its \
              memos cannot be reused"
             fp t.fingerprint)
    | Some _ ->
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            match Json.of_string line with
            | Error e -> warn "%s: skipping unparseable line %d: %s" t.path (i + 2) e
            | Ok j -> (
              match Json.member "complete" j with
              | Some (Json.Bool false) -> t.interrupted <- t.interrupted + 1
              | _ -> (
                match record_of_json j with
                | Some r ->
                  Hashtbl.replace t.table r.key r;
                  t.loaded <- t.loaded + 1
                | None ->
                  warn "%s: skipping malformed record on line %d" t.path (i + 2))))
        records)

let open_ ?fingerprint path =
  let fingerprint =
    match fingerprint with
    | Some f -> f
    | None -> Checkpoint_store.default_fingerprint ()
  in
  let t =
    {
      path;
      fingerprint;
      table = Hashtbl.create 64;
      mutex = Mutex.create ();
      needs_newline = false;
      loaded = 0;
      interrupted = 0;
    }
  in
  (match read_text path with
  | Some text when String.length text > 0 -> load t text
  | Some _ | None -> write_header t);
  t

let find t ~key =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Hashtbl.find_opt t.table key)

let fold_records t ~init ~f =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Hashtbl.fold (fun _ r acc -> f acc r) t.table init)

let record_complete t r =
  append_line t (Json.to_string (json_of_record r));
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Hashtbl.replace t.table r.key r)

let record_interrupted t ~key ~label =
  append_line t
    (Json.to_string
       (Json.Assoc
          [
            ("key", Json.String key);
            ("label", Json.String label);
            ("complete", Json.Bool false);
          ]))
