open Avis_sitl

let reconstruct_scenario ~reference relative_faults =
  Scenario.of_faults
    (List.map
       (fun rf ->
         let entered =
           if rf.Report.mode = "Pre-Flight" then Some 0.0
           else
             List.fold_left
               (fun acc tr ->
                 match acc with
                 | Some _ -> acc
                 | None ->
                   if tr.Avis_hinj.Hinj.to_mode = rf.Report.mode then
                     Some tr.Avis_hinj.Hinj.time
                   else None)
               None reference
         in
         let base = match entered with Some t -> t | None -> 0.0 in
         let at = base +. rf.Report.offset_s in
         match rf.Report.subject with
         | Report.Subject_sensor sensor -> Scenario.sensor_fault sensor at
         | Report.Subject_link duration -> Scenario.link_loss ~at ~duration)
       relative_faults)

type outcome = {
  reproduced : bool;
  verdict : Monitor.verdict;
  original : Report.t;
  replay_duration : float;
}

let execute (config : Campaign.config) ~seed ~scenario =
  let base = Sim.default_config config.Campaign.policy in
  let sim_cfg =
    {
      base with
      Sim.enabled_bugs = config.Campaign.enabled_bugs;
      seed;
      max_duration =
        config.Campaign.workload.Workload.nominal_duration +. 60.0;
      link_jitter_steps = config.Campaign.link_jitter_steps;
      link_faults = config.Campaign.link_faults;
      environment = config.Campaign.workload.Workload.environment ();
    }
  in
  let sim =
    Sim.create ~plan:(Scenario.to_plan scenario)
      ~link_outages:(Scenario.link_outages scenario)
      sim_cfg
  in
  let passed = Workload.execute config.Campaign.workload sim in
  Sim.outcome sim ~workload_passed:passed

let replay ~config ~profile ~seed report =
  (* Probe run: observe this seed's transition timing without faults. *)
  let probe = execute config ~seed ~scenario:Scenario.empty in
  let scenario =
    reconstruct_scenario ~reference:probe.Sim.transitions
      report.Report.relative_faults
  in
  let outcome = execute config ~seed ~scenario in
  let verdict = Monitor.check profile outcome in
  {
    reproduced = (match verdict with Monitor.Unsafe _ -> true | Monitor.Safe -> false);
    verdict;
    original = report;
    replay_duration = outcome.Sim.duration;
  }
