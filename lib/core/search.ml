open Avis_sensors

type context = {
  transitions : (float * string * string) list;
  mission_duration : float;
  instances : Sensor.id list;
  instances_of_kind : Sensor.kind -> int;
  mode_at : float -> string option;
  rng : Avis_util.Rng.t;
}

let context_of_outcome ~rng ~suite_complement (outcome : Avis_sitl.Sim.outcome) =
  let transitions =
    List.map
      (fun tr ->
        Avis_hinj.Hinj.(tr.time, tr.from_mode, tr.to_mode))
      outcome.Avis_sitl.Sim.transitions
  in
  let instances = Suite.instances_of_complement suite_complement in
  let instances_of_kind kind =
    List.length (List.filter (fun id -> id.Sensor.kind = kind) instances)
  in
  (* The mode in force at a time, precomputed as a time-sorted array and
     answered by binary search — [mode_at] is called per candidate site by
     the strategies, and the transition log replay was O(transitions) per
     query. The stable sort keeps the last-writer-wins order of the old
     fold for equal timestamps. *)
  let mode_table =
    Array.of_list
      (List.stable_sort (fun (a, _, _) (b, _, _) -> compare a b) transitions)
  in
  let mode_at time =
    (* Rightmost transition with [t <= time]. *)
    let lo = ref 0 and hi = ref (Array.length mode_table) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let t, _, _ = mode_table.(mid) in
      if t <= time then lo := mid + 1 else hi := mid
    done;
    if !lo = 0 then Some "Pre-Flight"
    else
      let _, _, to_mode = mode_table.(!lo - 1) in
      Some to_mode
  in
  {
    transitions;
    mission_duration = outcome.Avis_sitl.Sim.duration;
    instances;
    instances_of_kind;
    mode_at;
    rng;
  }

type run_result = { unsafe : bool; observed_transitions : float list }

type step = Run of Scenario.t * float | Think of float | Exhausted

type t = {
  name : string;
  next : unit -> step;
  observe : Scenario.t -> run_result -> unit;
}

(* Link outages long enough to outlast the GCS-loss timeout (the firmware
   reacts at ~5 s of silence) and, in the long variant, most of the
   remaining flight. *)
let link_loss_durations = [ 15.0; 40.0 ]

let candidate_sets ctx ~at ~base =
  let fault id = Scenario.sensor_fault id at in
  let kinds = List.sort_uniq compare (List.map (fun i -> i.Sensor.kind) ctx.instances) in
  (* Whole-kind outages first: these defeat the redundancy and are the
     scenarios the firmware's failure handling actually has to survive. *)
  let kind_outage kind =
    List.filter (fun i -> i.Sensor.kind = kind) ctx.instances |> List.map fault
  in
  let whole_kind = List.map kind_outage kinds in
  (* Datalink outages are their own whole-kind loss: there is only one
     link, and silencing it is what exercises the GCS-loss failsafe. *)
  let link_outages =
    List.map
      (fun duration -> [ Scenario.link_loss ~at ~duration ])
      link_loss_durations
  in
  (* Pairs of whole-kind outages: the powerset over sensor *types* that the
     paper's Failures set ranges over (multi-type losses like GPS+battery
     are what PX4-13291 needs). *)
  let rec kind_pairs = function
    | [] -> []
    | k :: rest ->
      List.map (fun k' -> kind_outage k @ kind_outage k') rest @ kind_pairs rest
  in
  let whole_kind_pairs = kind_pairs kinds in
  let singles = List.map (fun id -> [ fault id ]) ctx.instances in
  let all = whole_kind @ link_outages @ whole_kind_pairs @ singles in
  (* Deduplicate (a whole-kind set of a 1-instance kind is also a single;
     a whole-kind set of a 2-instance kind is also a same-kind pair). *)
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun faults ->
      let scenario = Scenario.union base (Scenario.of_faults faults) in
      let key = Scenario.key scenario in
      if Hashtbl.mem seen key || Scenario.cardinality scenario = Scenario.cardinality base
      then None
      else begin
        Hashtbl.add seen key ();
        Some scenario
      end)
    all

let random_scenario ctx =
  let rng = ctx.rng in
  let at = Avis_util.Rng.float rng ctx.mission_duration in
  let all = Array.of_list ctx.instances in
  let u = Avis_util.Rng.uniform rng in
  if u < 0.05 then
    (* Occasionally schedule a datalink outage instead of sensor faults. *)
    let duration = 10.0 +. Avis_util.Rng.float rng 40.0 in
    Scenario.of_faults [ Scenario.link_loss ~at ~duration ]
  else
    let fault () = Scenario.sensor_fault (Avis_util.Rng.choose rng all) at in
    let picks = if u < 0.95 then 1 else if u < 0.995 then 2 else 3 in
    Scenario.of_faults (List.init picks (fun _ -> fault ()))
