type t = {
  total_s : float;
  speedup : float;
  mutable spent_s : float;
  mutable simulations : int;
  mutable inferences : int;
}

let min_inference_s = 0.01

let create ?(speedup = 5.0) ~total_s () =
  if total_s <= 0.0 then invalid_arg "Budget.create: non-positive budget";
  { total_s; speedup; spent_s = 0.0; simulations = 0; inferences = 0 }

let two_hours () = create ~total_s:7200.0 ()

(* The ledger never records more than the budget: once the clock would
   run past [total_s] the campaign is over, and whatever tail the last
   activity had would not have been wall-clock spent. *)
let charge t seconds =
  t.spent_s <- Float.min t.total_s (t.spent_s +. seconds);
  Avis_util.Trace.counter "budget.spent_s" t.spent_s

let charge_simulation t ~sim_seconds =
  charge t (sim_seconds /. t.speedup);
  t.simulations <- t.simulations + 1

let charge_inference t seconds =
  charge t (Float.max seconds min_inference_s);
  t.inferences <- t.inferences + 1

let spent_s t = t.spent_s
let remaining_s t = Float.max 0.0 (t.total_s -. t.spent_s)
let exhausted t = t.spent_s >= t.total_s

let can_afford_run t ~sim_seconds = t.spent_s +. (sim_seconds /. t.speedup) <= t.total_s

let simulations_run t = t.simulations
let inferences_run t = t.inferences
