(** The high-level workload framework (§V-A, Fig. 8), reified as data.

    A workload used to be an opaque [run : api -> unit] closure built from
    blocking primitives; its call stack made mid-run state uncapturable. It
    is now a *script*: a list of explicit {!step} values interpreted by a
    resumable {!Stepper} whose program counter is plain data. The stepper
    pumps the simulator step by step (the step() RPC of Fig. 7) until each
    step's condition holds, can pause at any simulated time, and can be
    snapshotted and restored together with the simulator — the mechanism
    the prefix cache forks clean runs with.

    Two default workloads mirror the paper's: a *manual box* (position-hold
    mode around a 20 m × 20 m square at 20 m) and an *auto box* mission
    (waypoints, then return to launch); [fence_mission] adds the geofenced
    variant and [quickstart] is Fig. 8's takeoff-and-land verbatim. *)

open Avis_sitl

(** {2 The step DSL} *)

(** Mission items as data; converted to geodetic MAVLink items only when
    the upload starts, using the simulation's local frame. *)
type mission_step =
  | Takeoff_item of float  (** Target altitude, metres. *)
  | Waypoint_item of { north : float; east : float; alt : float }
      (** Local offsets from home, metres. *)
  | Land_item
  | Rtl_item

(** One step of a workload script. Command steps ([Arm], [Takeoff],
    [Upload_mission]) send and then wait for the acknowledgement /
    handshake, failing the workload on rejection; fire-and-forget steps
    ([Enter_auto], [Reposition], [Land_now], [Return_to_launch]) complete
    immediately; wait steps block until their condition holds, failing on
    [timeout] (simulated seconds, [infinity] = no limit). *)
type step =
  | Wait_time of float  (** Let the simulation run for this many seconds. *)
  | Upload_mission of mission_step list
      (** Run the full COUNT → REQUEST… → ACK handshake (30 s timeout). *)
  | Arm  (** Arm and wait for a positive acknowledgement (10 s timeout). *)
  | Enter_auto  (** Request the Auto mission mode. *)
  | Takeoff of float  (** Direct takeoff command (manual workloads). *)
  | Reposition of { north : float; east : float; alt : float }
      (** Position-hold target in local metres (manual mode). *)
  | Land_now
  | Return_to_launch
  | Wait_altitude of { alt : float; tolerance : float; timeout : float }
  | Wait_mode of int  (** Wait for a heartbeat with this mode code. *)
  | Wait_disarmed
      (** Wait for an armed heartbeat followed by a disarmed one. *)
  | Wait_near of { north : float; east : float; radius : float; timeout : float }
      (** Wait until the reported position is within [radius] metres
          (horizontally) of the local-frame target. *)

val wait_altitude : ?tolerance:float -> ?timeout:float -> float -> step
(** [Wait_altitude] with the defaults: tolerance 0.75 m, no timeout. *)

val wait_near : ?radius:float -> ?timeout:float -> north:float -> east:float -> unit -> step
(** [Wait_near] with the defaults: radius 2.5 m, no timeout. *)

(** {2 Workloads} *)

type t = {
  name : string;
  description : string;
  environment : unit -> Avis_physics.Environment.t option;
      (** The physical environment this workload needs ([None] = benign). *)
  nominal_duration : float;  (** Simulated seconds a clean run takes. *)
  script : step list;
}

(** {2 The resumable interpreter} *)

module Stepper : sig
  type status =
    | Running  (** Paused at a time limit; resumable. *)
    | Done of bool  (** Finished; the payload is the pass verdict. *)

  type stepper

  val create : t -> stepper

  val run : stepper -> Sim.t -> until:float -> status
  (** Pump the simulation, interpreting the script, until the workload
      completes or fails, the run ends, or the simulation clock is about to
      reach [until] (the stepper pauses strictly before it; pass
      [infinity] to run to completion). Resuming a paused stepper with a
      later [until] continues bit-identically to an uninterrupted run. *)

  val status : stepper -> status

  type snapshot
  (** The stepper's full execution state — program counter, step-entry
      flags, timers — frozen in O(1). *)

  val snapshot : stepper -> snapshot

  val restore : snapshot -> stepper
  (** Each restore yields an independent stepper; pair it with
      {!Sim.restore} of a simulator snapshot taken at the same moment. *)

  val encode_snapshot : Buffer.t -> snapshot -> unit
  (** Versioned binary layout of the stepper's full execution state,
      including the script itself, so a decoded stepper is
      self-contained. *)

  val decode_snapshot : Avis_util.Codec.reader -> snapshot
  (** Inverse of {!encode_snapshot}. Raises [Avis_util.Codec.Corrupt] on
      malformed input. *)

  val to_bytes : snapshot -> string

  val of_bytes : string -> snapshot
  (** Raises [Avis_util.Codec.Corrupt] on malformed input. *)
end

val execute : t -> Sim.t -> bool
(** Run the workload script against a provisioned simulation; [true] when
    it completed (called [pass_test] in the paper's framework). *)

val quickstart : t
(** Fig. 8: wait, upload takeoff+land, arm, auto, wait up, wait down. *)

val manual_box : t
(** First default workload: position-hold around a 20 m box at 20 m. *)

val auto_box : t
(** Second default workload (fenceless variant): an auto mission around the
    box, then return to launch. *)

val fence_mission : t
(** The fenced variant: one leg crosses restricted airspace the firmware
    must refuse to enter. *)

val defaults : t list
(** The two default workloads used in the evaluation. *)

val all : t list

val by_name : string -> t option
