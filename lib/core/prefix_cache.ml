open Avis_sitl
open Avis_mavlink

type entry = {
  time : float;
  sim_snap : Sim.snapshot;
  stepper_snap : Workload.Stepper.snapshot;
  bytes : int;  (** Accounted size of both snapshots at capture time. *)
  mutable last_used : int;  (** Logical clock tick of last capture or hit. *)
}

(* The clean run being checkpointed. It is advanced lazily — only as far as
   the scenarios actually executed need — and abandoned once the workload
   completes (no checkpoint can lie beyond the end of the clean run). *)
type builder =
  | Unstarted
  | Live of Sim.t * Workload.Stepper.stepper
  | Finished

type t = {
  workload : Workload.t;
  make_sim : scenario:Scenario.t -> Sim.t;
  store : Checkpoint_store.t option;
      (** Persistent overflow/sharing tier: same keys as [entries], files on
          disk, shared with other processes. [None] when no store directory
          is configured or the config bypasses caching. *)
  bypass : bool;
      (** The configured runs carry state the cache key cannot encode
          (sensor degradations, probabilistic link faults): serve every
          scenario cold and count it as a miss. *)
  targets : float array;  (** Capture times, ascending. *)
  mutable clean_pending : float list;
      (** Targets the clean builder has not reached yet, ascending. *)
  mutable builder : builder;
  entries : (string, entry list) Hashtbl.t;
      (** Active-fault-prefix key -> checkpoints, latest first. *)
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
  mutable saved_sim_s : float;
  budget_bytes : int;  (** Resident-set ceiling; never exceeded. *)
  mutable resident_bytes : int;
  mutable use_tick : int;  (** Logical clock for LRU ordering. *)
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  saved_sim_s : float;
  evictions : int;
  resident_bytes : int;
  store_hits : int;
  store_misses : int;
  store_bytes : int;
}

let default_cache_mb = 1024

(* The byte budget comes from [?cache_mb], else the [AVIS_CACHE_MB]
   environment variable, else 1 GiB. Zero, negative and malformed values
   are rejected with a warning and replaced by the default, like
   [Pool.jobs_of_env]: a typo'd budget must not silently turn the cache
   stateless (a zero budget makes every capture evict itself). *)
let budget_bytes_of ?cache_mb () =
  let mb =
    match cache_mb with
    | Some mb when mb > 0 -> mb
    | Some mb ->
      Printf.eprintf
        "[avis] warning: ignoring invalid cache_mb=%d (want a positive \
         integer); using %d\n\
         %!"
        mb default_cache_mb;
      default_cache_mb
    | None ->
      Avis_util.Env.positive_int ~var:"AVIS_CACHE_MB" ~default:default_cache_mb
        ()
  in
  mb * 1024 * 1024

let create ?cache_mb ?store_dir ?store_mb ~workload ~make_sim
    ~checkpoint_times () =
  let ts =
    List.sort_uniq compare (List.filter (fun t -> t > 0.0) checkpoint_times)
  in
  (* Probe the provisioner once: degradations persist mutable per-driver
     state that [Sim.restore] cannot substitute, and a probabilistic link
     profile consumes fault randomness per chunk, so a forked run would
     diverge from a cold one. Neither appears in the cache key, so such
     configs must bypass the cache entirely. *)
  let probe = make_sim ~scenario:Scenario.empty in
  let bypass =
    Avis_hinj.Hinj.degradations (Sim.hinj probe) <> []
    || Link.probabilistic (Link.profile (Sim.link probe))
  in
  let store_dir =
    match store_dir with
    | Some _ -> store_dir
    | None -> Sys.getenv_opt "AVIS_STORE_DIR"
  in
  let store =
    match store_dir with
    | Some dir when dir <> "" && not bypass ->
      (* The store's configuration identity: the canonical config bytes
         plus the workload name — two campaigns whose runs could ever
         diverge must never share a key. *)
      let config_key =
        Sim.config_to_bytes (Sim.config probe)
        ^ "\x00" ^ workload.Workload.name
      in
      Some (Checkpoint_store.create ?store_mb ~dir ~config_key ())
    | _ -> None
  in
  {
    workload;
    make_sim;
    store;
    bypass;
    targets = Array.of_list ts;
    clean_pending = ts;
    builder = Unstarted;
    entries = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    bypasses = 0;
    saved_sim_s = 0.0;
    budget_bytes = budget_bytes_of ?cache_mb ();
    resident_bytes = 0;
    use_tick = 0;
    evictions = 0;
  }

let bypassing t = t.bypass

(* Fault activation ([Hinj.is_failed]) is judged against the firmware's own
   accumulated clock ([Vehicle.time]), not the step-derived [Sim.time]; the
   two drift apart by float rounding. Checkpoint validity must use the same
   clock the injector sees, or a fault landing exactly on a profiled
   transition time could already be active at the "clean" checkpoint step. *)
let injection_clock sim = Avis_firmware.Vehicle.time (Sim.vehicle sim)

(* Checkpoints are keyed by the exact set of faults active when they were
   taken. Times are encoded by their bit pattern, so two runs share a key
   only when their fault histories agree float-for-float — which, with a
   fixed test seed, makes their states bit-identical up to the checkpoint.
   A link outage stays in the key even after its window closes: the dropped
   traffic leaves the run's state permanently different from a run that
   never lost the link. The clean prefix is the special case of the empty
   key. *)
let encode_fault (f : Scenario.fault) =
  match f with
  | Scenario.Sensor_fault sf ->
    Printf.sprintf "%s@%Lx"
      (Avis_sensors.Sensor.id_to_string sf.Scenario.sensor)
      (Int64.bits_of_float sf.Scenario.at)
  | Scenario.Link_loss { at; duration } ->
    Printf.sprintf "link@%Lx+%Lx" (Int64.bits_of_float at)
      (Int64.bits_of_float duration)

let encode_faults faults =
  String.concat ";" (List.sort compare (List.map encode_fault faults))

let active_key (scenario : Scenario.t) ~time =
  encode_faults
    (List.filter (fun f -> Scenario.fault_time f <= time) scenario)

let word_bytes = Sys.word_size / 8

(* Accounted size of a checkpoint: the simulator snapshot's exact byte
   size (dominated by the world's float blob and the trace columns) plus
   the reachable size of the stepper snapshot. *)
let entry_bytes ~sim_snap ~stepper_snap =
  Sim.snapshot_bytes sim_snap
  + (Obj.reachable_words (Obj.repr stepper_snap) * word_bytes)

let note_resident (t : t) =
  Avis_util.Trace.counter "cache.resident_bytes"
    (float_of_int t.resident_bytes)

(* A stored checkpoint is the two snapshots as independent length-prefixed
   blobs, so either side can grow its own format version. *)
let store_payload ~sim_snap ~stepper_snap =
  let open Avis_util.Codec in
  to_string
    (fun b () ->
      w_bytes b (Sim.to_bytes sim_snap);
      w_bytes b (Workload.Stepper.to_bytes stepper_snap))
    ()

let snaps_of_payload payload =
  let open Avis_util.Codec in
  of_string
    (fun r ->
      let sim_snap = Sim.of_bytes (r_bytes r) in
      let stepper_snap = Workload.Stepper.of_bytes (r_bytes r) in
      (sim_snap, stepper_snap))
    payload

let note_store (t : t) =
  match t.store with
  | None -> ()
  | Some s ->
    let st = Checkpoint_store.stats s in
    Avis_util.Trace.counter "store.hits"
      (float_of_int st.Checkpoint_store.hits);
    Avis_util.Trace.counter "store.misses"
      (float_of_int st.Checkpoint_store.misses);
    Avis_util.Trace.counter "store.bytes"
      (float_of_int st.Checkpoint_store.bytes)

(* Drop the globally least-recently-used checkpoint (capture and hit both
   count as uses). Linear in the entry count, which the byte budget keeps
   small relative to snapshot cost. *)
let evict_lru (t : t) =
  let victim = ref None in
  Hashtbl.iter
    (fun key es ->
      List.iter
        (fun e ->
          match !victim with
          | Some (_, v) when v.last_used <= e.last_used -> ()
          | _ -> victim := Some (key, e))
        es)
    t.entries;
  match !victim with
  | None -> false
  | Some (key, v) ->
    let es = Option.value ~default:[] (Hashtbl.find_opt t.entries key) in
    (match List.filter (fun e -> e != v) es with
    | [] -> Hashtbl.remove t.entries key
    | remaining -> Hashtbl.replace t.entries key remaining);
    t.resident_bytes <- t.resident_bytes - v.bytes;
    t.evictions <- t.evictions + 1;
    Avis_util.Trace.counter "cache.evictions" (float_of_int t.evictions);
    true

let enforce_budget (t : t) =
  while t.resident_bytes > t.budget_bytes && evict_lru t do () done;
  note_resident t

let capture (t : t) ~scenario sim st =
  Avis_util.Trace.span ~cat:"cache" "cache.checkpoint" @@ fun () ->
  let time = injection_clock sim in
  if time > 0.0 then begin
    let key = active_key scenario ~time in
    let existing =
      Option.value ~default:[] (Hashtbl.find_opt t.entries key)
    in
    (* Same key + same time means the frozen state is bit-identical to one
       already stored; skip the snapshot entirely. *)
    if not (List.exists (fun e -> e.time = time) existing) then begin
      let sim_snap = Sim.snapshot sim in
      let stepper_snap = Workload.Stepper.snapshot st in
      let bytes = entry_bytes ~sim_snap ~stepper_snap in
      Avis_util.Trace.counter "snapshot.bytes" (float_of_int bytes);
      t.use_tick <- t.use_tick + 1;
      let entry =
        { time; sim_snap; stepper_snap; bytes; last_used = t.use_tick }
      in
      let rec insert = function
        | e :: rest when e.time > time -> e :: insert rest
        | rest -> entry :: rest
      in
      Hashtbl.replace t.entries key (insert existing);
      t.resident_bytes <- t.resident_bytes + bytes;
      (* Write-through to the persistent tier. The payload is lazy: when a
         previous process already stored this exact key and time, nothing
         is serialised at all. *)
      (match t.store with
      | Some store ->
        Checkpoint_store.put store ~fault_key:key ~time
          ~payload:(lazy (store_payload ~sim_snap ~stepper_snap))
      | None -> ());
      (* A lone checkpoint larger than the whole budget evicts itself, so
         the resident set never exceeds the budget even transiently past
         this point. *)
      enforce_budget t
    end
  end

(* Start the clean builder from the latest clean checkpoint a previous
   process left in the store, when there is one: a warm-process campaign
   then never re-simulates the clean prefix it already paid for. A decode
   failure just falls back to a fresh builder. *)
let builder_from_store t =
  match t.store with
  | None -> None
  | Some store -> (
    let miss () =
      Checkpoint_store.count_miss store;
      note_store t;
      None
    in
    match Checkpoint_store.lookup store ~fault_key:"" ~before:infinity with
    | None -> miss ()
    | Some (time, payload) -> (
      match snaps_of_payload payload with
      | exception Avis_util.Codec.Corrupt _ -> miss ()
      | sim_snap, stepper_snap ->
        Checkpoint_store.count_hit store;
        t.saved_sim_s <- t.saved_sim_s +. time;
        note_store t;
        let sim =
          Sim.restore
            ~plan:(Scenario.to_plan Scenario.empty)
            ~link_outages:(Scenario.link_outages Scenario.empty)
            sim_snap
        in
        let st = Workload.Stepper.restore stepper_snap in
        (* Targets at or before the forked time stay served by the store
           itself; the builder only owes the later ones. *)
        t.clean_pending <-
          List.filter (fun target -> target > time) t.clean_pending;
        (* The forked state is itself the freshest clean checkpoint; keep it
           in memory so same-process lookups skip the disk. *)
        capture t ~scenario:Scenario.empty sim st;
        Some (sim, st)))

let builder_live t =
  match t.builder with
  | Live (sim, st) -> Some (sim, st)
  | Finished -> None
  | Unstarted ->
    let sim, st =
      match builder_from_store t with
      | Some live -> live
      | None ->
        ( t.make_sim ~scenario:Scenario.empty,
          Workload.Stepper.create t.workload )
    in
    t.builder <- Live (sim, st);
    Some (sim, st)

(* Capture every pending clean checkpoint at or before [time]. The stepper
   pauses strictly before each target, so a checkpoint captured for target T
   sits at a simulated time < T — which keeps it valid for any fault at T
   itself. *)
let rec advance_to t ~time =
  match t.clean_pending with
  | target :: rest when target <= time -> (
    match builder_live t with
    | None -> t.clean_pending <- []
    | Some (sim, st) -> (
      match Workload.Stepper.run st sim ~until:target with
      | Workload.Stepper.Running ->
        capture t ~scenario:Scenario.empty sim st;
        t.clean_pending <- rest;
        advance_to t ~time
      | Workload.Stepper.Done _ ->
        t.builder <- Finished;
        t.clean_pending <- []))
  | _ -> ()

let earliest_fault (scenario : Scenario.t) =
  match Scenario.first_injection_time scenario with
  | Some at -> at
  | None -> infinity

let compare_for_prefix a b =
  match compare (Scenario.fault_time a) (Scenario.fault_time b) with
  | 0 -> compare (encode_fault a) (encode_fault b)
  | c -> c

(* Find the latest checkpoint this scenario can fork from. With the faults
   sorted by activation time, each prefix of j faults is a candidate key; a
   checkpoint under it is sound iff it was taken strictly before the
   (j+1)-th fault activates ([Hinj.is_failed] activates at [at <= time], and
   an outage opens at the first step of its window, so equality would
   already differ). Entries under a key necessarily postdate every fault in
   it, so the window below is the only check needed. *)
let lookup t ~scenario =
  Avis_util.Trace.span ~cat:"cache" "cache.lookup" @@ fun () ->
  let faults = Array.of_list (List.sort compare_for_prefix scenario) in
  let k = Array.length faults in
  let best = ref None in
  for j = 0 to k do
    let next_at =
      if j = k then infinity else Scenario.fault_time faults.(j)
    in
    let key = encode_faults (Array.to_list (Array.sub faults 0 j)) in
    match Hashtbl.find_opt t.entries key with
    | None -> ()
    | Some es -> (
      (* [es] is latest-first: the first in-window entry is the best one. *)
      match List.find_opt (fun e -> e.time < next_at) es with
      | Some e -> (
        match !best with
        | Some b when b.time >= e.time -> ()
        | _ -> best := Some e)
      | None -> ())
  done;
  !best

(* The persistent fallback to [lookup]: the same prefix-key scan, against
   files written by this or any earlier process. A served checkpoint is
   decoded and re-warmed into memory, so the disk is touched once per
   prefix, not once per scenario. *)
let store_lookup t ~scenario =
  match t.store with
  | None -> None
  | Some store ->
    Avis_util.Trace.span ~cat:"cache" "store.lookup" @@ fun () ->
    let faults = Array.of_list (List.sort compare_for_prefix scenario) in
    let k = Array.length faults in
    let best = ref None in
    for j = 0 to k do
      let next_at =
        if j = k then infinity else Scenario.fault_time faults.(j)
      in
      let key = encode_faults (Array.to_list (Array.sub faults 0 j)) in
      match Checkpoint_store.lookup store ~fault_key:key ~before:next_at with
      | Some (time, payload) -> (
        match !best with
        | Some (best_time, _, _) when best_time >= time -> ()
        | _ -> best := Some (time, key, payload))
      | None -> ()
    done;
    (match !best with
    | None -> None
    | Some (time, key, payload) -> (
      match snaps_of_payload payload with
      | exception Avis_util.Codec.Corrupt _ ->
        (* The frame checksum held but the payload didn't decode (e.g. a
           foreign format revision): treat as a miss; the fingerprint in
           the key makes this all but impossible for files we wrote. *)
        None
      | sim_snap, stepper_snap ->
        let bytes = entry_bytes ~sim_snap ~stepper_snap in
        t.use_tick <- t.use_tick + 1;
        let entry =
          { time; sim_snap; stepper_snap; bytes; last_used = t.use_tick }
        in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt t.entries key)
        in
        let rec insert = function
          | e :: rest when e.time > time -> e :: insert rest
          | rest -> entry :: rest
        in
        Hashtbl.replace t.entries key (insert existing);
        t.resident_bytes <- t.resident_bytes + bytes;
        enforce_budget t;
        Some entry))

(* A scenario mid-execution: the forked (or cold) simulator and stepper
   plus the index of the next capture target. [begin_run] performs the
   serve/cold/bypass decision exactly as [execute] always did;
   [continue_run] is [run_capturing] made resumable, so a batched driver
   can advance many runs in interleaved slices. Pausing at a slice boundary
   is bit-identical to running through it (the stepper's contract), so the
   outcome — and every checkpoint captured along the way — is the same
   whatever the slicing. *)
type run = {
  run_scenario : Scenario.t;
  run_sim : Sim.t;
  run_st : Workload.Stepper.stepper;
  mutable next_target : int;  (** Index into [targets]. *)
  run_captures : bool;  (** False for bypassing configs: never checkpoint. *)
}

let run_sim r = r.run_sim

let begin_run t ~scenario =
  if t.bypass then begin
    (* Uncacheable config: cold-run without checkpointing, since no stored
       entry could ever be sound to serve. *)
    t.misses <- t.misses + 1;
    t.bypasses <- t.bypasses + 1;
    Avis_util.Trace.counter "cache.bypasses" (float_of_int t.bypasses);
    let sim = t.make_sim ~scenario in
    let st = Workload.Stepper.create t.workload in
    {
      run_scenario = scenario;
      run_sim = sim;
      run_st = st;
      next_target = Array.length t.targets;
      run_captures = false;
    }
  end
  else begin
    let serve e =
      t.hits <- t.hits + 1;
      Avis_util.Trace.counter "cache.hits" (float_of_int t.hits);
      t.use_tick <- t.use_tick + 1;
      e.last_used <- t.use_tick;
      t.saved_sim_s <- t.saved_sim_s +. e.time;
      let sim =
        Sim.restore
          ~plan:(Scenario.to_plan scenario)
          ~link_outages:(Scenario.link_outages scenario)
          e.sim_snap
      in
      (sim, Workload.Stepper.restore e.stepper_snap)
    in
    advance_to t ~time:(earliest_fault scenario);
    let sim, st =
      match lookup t ~scenario with
      | Some e -> serve e
      | None -> (
        match store_lookup t ~scenario with
        | Some e ->
          (match t.store with
          | Some s ->
            Checkpoint_store.count_hit s;
            note_store t
          | None -> ());
          serve e
        | None ->
          (match t.store with
          | Some s ->
            Checkpoint_store.count_miss s;
            note_store t
          | None -> ());
          t.misses <- t.misses + 1;
          Avis_util.Trace.counter "cache.misses" (float_of_int t.misses);
          (t.make_sim ~scenario, Workload.Stepper.create t.workload))
    in
    { run_scenario = scenario; run_sim = sim; run_st = st; next_target = 0;
      run_captures = true }
  end

let continue_run t r ~until =
  let n = Array.length t.targets in
  let sim = r.run_sim and st = r.run_st in
  let rec go () =
    (* Targets already behind the clock are skipped without capturing,
       exactly as the uninterrupted loop skips them. *)
    while r.next_target < n && t.targets.(r.next_target) <= Sim.time sim do
      r.next_target <- r.next_target + 1
    done;
    let target =
      if r.next_target < n then t.targets.(r.next_target) else infinity
    in
    let stop_at = Float.min target until in
    match Workload.Stepper.run st sim ~until:stop_at with
    | Workload.Stepper.Done passed ->
      Some (Sim.outcome sim ~workload_passed:passed)
    | Workload.Stepper.Running ->
      if stop_at = infinity then
        (* Nothing pauses at infinity, so a Running status here means the
           run cannot progress; judge it as a failed workload. *)
        Some (Sim.outcome sim ~workload_passed:false)
      else if target <= until then begin
        (* Paused just before a capture target. *)
        if r.run_captures then capture t ~scenario:r.run_scenario sim st;
        r.next_target <- r.next_target + 1;
        go ()
      end
      else None
  in
  go ()

let execute t ~scenario =
  let r = begin_run t ~scenario in
  match continue_run t r ~until:infinity with
  | Some outcome -> outcome
  | None ->
    (* [continue_run ~until:infinity] always resolves: every pause either
       captures and resumes or ends the run. *)
    assert false

let stats (t : t) =
  let store_hits, store_misses, store_bytes =
    match t.store with
    | None -> (0, 0, 0)
    | Some s ->
      let st = Checkpoint_store.stats s in
      Checkpoint_store.(st.hits, st.misses, st.bytes)
  in
  {
    hits = t.hits;
    misses = t.misses;
    saved_sim_s = t.saved_sim_s;
    evictions = t.evictions;
    resident_bytes = t.resident_bytes;
    store_hits;
    store_misses;
    store_bytes;
  }

let enabled_by_env () =
  Avis_util.Env.flag ~default:true ~var:"AVIS_PREFIX_CACHE" ()
