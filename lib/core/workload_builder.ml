let polygon_vertices ~sides ~radius =
  if sides < 3 then invalid_arg "Workload_builder: a polygon needs >= 3 sides";
  if radius <= 0.0 then invalid_arg "Workload_builder: non-positive radius";
  List.init sides (fun i ->
      let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int sides in
      (radius *. cos angle, radius *. sin angle))

(* Rough clean-flight time: legs at cruise speed plus climb and landing. *)
let polygon_duration ~sides ~radius ~alt =
  let side_length = 2.0 *. radius *. sin (Float.pi /. float_of_int sides) in
  let cruise = float_of_int sides *. (side_length +. radius) /. 3.0 in
  20.0 +. (alt /. 1.5) +. cruise

let auto_polygon ?name ~sides ~radius ~alt () =
  let vertices = polygon_vertices ~sides ~radius in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "auto-%dgon" sides
  in
  {
    Workload.name;
    description =
      Printf.sprintf
        "auto mission around a %d-sided polygon of radius %.0f m at %.0f m"
        sides radius alt;
    environment = (fun () -> None);
    nominal_duration = polygon_duration ~sides ~radius ~alt;
    script =
      [
        Workload.Wait_time 2.0;
        Workload.Upload_mission
          ((Workload.Takeoff_item alt
           :: List.map
                (fun (north, east) ->
                  Workload.Waypoint_item { north; east; alt })
                vertices)
          @ [ Workload.Rtl_item ]);
        Workload.Arm;
        Workload.Enter_auto;
        Workload.wait_altitude alt;
        Workload.Wait_disarmed;
      ];
  }

let manual_polygon ?name ~sides ~radius ~alt () =
  let vertices = polygon_vertices ~sides ~radius in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "manual-%dgon" sides
  in
  {
    Workload.name;
    description =
      Printf.sprintf
        "position-hold flight around a %d-sided polygon of radius %.0f m"
        sides radius;
    environment = (fun () -> None);
    nominal_duration = polygon_duration ~sides ~radius ~alt +. 10.0;
    script =
      [
        Workload.Wait_time 2.0;
        Workload.Arm;
        Workload.Takeoff alt;
        Workload.wait_altitude alt;
        Workload.Wait_mode 2;
      ]
      @ List.concat_map
          (fun (north, east) ->
            [
              Workload.Reposition { north; east; alt };
              Workload.wait_near ~timeout:40.0 ~north ~east ();
            ])
          vertices
      @ [ Workload.Land_now; Workload.Wait_disarmed ];
  }

let altitude_sweep ?name ~levels () =
  (match levels with
  | [] -> invalid_arg "Workload_builder.altitude_sweep: no levels"
  | levels ->
    if List.exists (fun l -> l <= 1.0) levels then
      invalid_arg "Workload_builder.altitude_sweep: levels must exceed 1 m");
  let name = match name with Some n -> n | None -> "altitude-sweep" in
  let first = List.hd levels in
  let travel =
    fst
      (List.fold_left
         (fun (acc, prev) l -> (acc +. Float.abs (l -. prev), l))
         (first, first) (List.tl levels))
  in
  {
    Workload.name;
    description = "hold position while stepping through altitude levels";
    environment = (fun () -> None);
    nominal_duration = 30.0 +. travel;
    script =
      [
        Workload.Wait_time 2.0;
        Workload.Arm;
        Workload.Takeoff first;
        Workload.wait_altitude first;
        Workload.Wait_mode 2;
      ]
      @ List.concat_map
          (fun level ->
            [
              Workload.Reposition { north = 0.0; east = 0.0; alt = level };
              Workload.wait_altitude ~tolerance:1.0 ~timeout:60.0 level;
            ])
          (List.tl levels)
      @ [ Workload.Land_now; Workload.Wait_disarmed ];
  }

let with_environment w environment = { w with Workload.environment }

let with_name w name = { w with Workload.name }
