open Avis_geo
open Avis_physics
open Avis_firmware

type report = {
  code : string;
  name : string;
  passed : bool;
  detail : string;
  elapsed_s : float;
}

type check = {
  code : string;
  name : string;
  run : unit -> (string, string) result;
}

(* ------------------------------------------------------------------ *)
(* Shared flight fixtures, mirroring the hot-loop bench: a             *)
(* climb / asymmetric-cruise / descend profile flown in calm and       *)
(* windy air, fingerprinted by the IEEE bits of the full rigid-body    *)
(* state.                                                              *)
(* ------------------------------------------------------------------ *)

let dt = 0.004
let hover = Airframe.hover_throttle Airframe.iris

let fingerprint w =
  let b = World.body w in
  let p = Rigid_body.position_v b
  and v = Rigid_body.velocity_v b
  and q = Rigid_body.attitude_q b
  and o = Rigid_body.angular_velocity_v b in
  List.map Int64.bits_of_float
    [ p.Vec3.x; p.y; p.z; v.x; v.y; v.z; q.Quat.w; q.Quat.x; q.Quat.y;
      q.Quat.z; o.Vec3.x; o.y; o.z; World.time w ]

let profile i =
  if i < 200 then Array.make 4 (hover *. 1.2)
  else if i < 1200 then [| hover *. 1.02; hover *. 0.98; hover; hover |]
  else Array.make 4 (hover *. 0.9)

let flight_world ~windy =
  let environment =
    if windy then
      Environment.create
        ~wind:
          (Some
             { Environment.steady = Vec3.make 3.0 1.0 0.0;
               gust_stddev = 1.0; gust_correlation_s = 1.0 })
        ()
    else Environment.benign ()
  in
  World.create ~environment ~rng:(Avis_util.Rng.create 7)
    ~position:(Vec3.make 0.0 0.0 0.0) ()

let flight_steps = 3000

let flight stepf ~windy =
  let w = flight_world ~windy in
  for i = 0 to flight_steps - 1 do
    ignore (stepf w ~motor_commands:(profile i) ~dt)
  done;
  fingerprint w

let air_label windy = if windy then "windy" else "calm"

(* ------------------------------------------------------------------ *)
(* Temp-dir plumbing for STORE-RW.                                     *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "avis-selftest-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with _ -> ())
  | false -> ( try Sys.remove path with _ -> ())
  | exception _ -> ()

(* ------------------------------------------------------------------ *)
(* The checks.                                                         *)
(* ------------------------------------------------------------------ *)

let det_fp ?(optimized = World.step) () =
  {
    code = "DET-FP";
    name = "optimised step vs reference: state fingerprints bit-equal";
    run =
      (fun () ->
        let diverged =
          List.filter
            (fun windy ->
              flight optimized ~windy <> flight World.step_reference ~windy)
            [ false; true ]
        in
        match diverged with
        | [] ->
          Ok
            (Printf.sprintf
               "calm and windy flights, %d steps each, 14-float fingerprints \
                bit-equal"
               flight_steps)
        | l ->
          Error
            (Printf.sprintf
               "optimised kernel diverges from step_reference in %s air"
               (String.concat " and " (List.map air_label l))));
  }

let lane_id () =
  {
    code = "LANE-ID";
    name = "lane batcher vs single-world stepping: bit-equal";
    run =
      (fun () ->
        let width = 4 in
        let bad = ref [] in
        List.iter
          (fun windy ->
            let reference = flight World.step ~windy in
            let lanes = Lanes.create ~width ~motor_count:4 in
            for i = 0 to width - 1 do
              ignore i;
              Lanes.adopt lanes i (flight_world ~windy)
            done;
            for i = 0 to flight_steps - 1 do
              Lanes.step_all lanes ~motor_commands:(profile i) ~dt
            done;
            for i = 0 to width - 1 do
              Lanes.flush lanes i;
              match Lanes.world lanes i with
              | Some w when fingerprint w = reference -> ()
              | Some _ | None ->
                bad := Printf.sprintf "lane %d (%s)" i (air_label windy) :: !bad
            done)
          [ false; true ];
        match List.rev !bad with
        | [] ->
          Ok
            (Printf.sprintf
               "%d lanes, calm and windy, %d steps: every lane bit-equal to \
                the single-world step"
               width flight_steps)
        | l -> Error ("lanes diverged from single-world stepping: " ^ String.concat ", " l));
  }

let sim_fingerprint sim =
  (Int64.bits_of_float (Avis_sitl.Sim.time sim), fingerprint (Avis_sitl.Sim.world sim))

let snap_rt () =
  {
    code = "SNAP-RT";
    name = "simulator snapshot -> bytes -> restore round-trip";
    run =
      (fun () ->
        let cfg =
          { (Avis_sitl.Sim.default_config Policy.apm) with
            Avis_sitl.Sim.seed = 42; max_duration = 30.0 }
        in
        let sim = Avis_sitl.Sim.create cfg in
        ignore (Avis_sitl.Sim.run_until sim (fun s -> Avis_sitl.Sim.time s >= 5.0));
        let snap = Avis_sitl.Sim.snapshot sim in
        let bytes = Avis_sitl.Sim.to_bytes snap in
        match Avis_sitl.Sim.of_bytes bytes with
        | exception Avis_util.Codec.Corrupt msg ->
          Error ("snapshot bytes failed to decode: " ^ msg)
        | decoded ->
          if Avis_sitl.Sim.to_bytes decoded <> bytes then
            Error "re-encoding a decoded snapshot changed its bytes"
          else begin
            let a = Avis_sitl.Sim.restore snap in
            let b = Avis_sitl.Sim.restore decoded in
            for _ = 1 to 250 do
              Avis_sitl.Sim.step a;
              Avis_sitl.Sim.step b
            done;
            if sim_fingerprint a <> sim_fingerprint b then
              Error
                "a run restored from decoded bytes diverged from the \
                 in-memory snapshot's"
            else
              Ok
                (Printf.sprintf
                   "%d-byte snapshot: byte-stable re-encode, restored runs \
                    bit-equal after 250 steps"
                   (String.length bytes))
          end);
  }

let store_rw ?dir () =
  {
    code = "STORE-RW";
    name = "checkpoint store: write/read, corrupt-detect, fingerprints";
    run =
      (fun () ->
        let d, cleanup =
          match dir with Some d -> (d, false) | None -> (temp_dir (), true)
        in
        Fun.protect ~finally:(fun () -> if cleanup then rm_rf d)
        @@ fun () ->
        let store =
          Checkpoint_store.create ~fingerprint:"selftest-fp" ~store_mb:8
            ~dir:d ~config_key:"selftest-cfg" ()
        in
        let payload =
          String.init 4096 (fun i -> Char.chr (((i * 131) + 7) land 0xff))
        in
        Checkpoint_store.put store ~fault_key:"fk" ~time:1.5
          ~payload:(lazy payload);
        match Checkpoint_store.lookup store ~fault_key:"fk" ~before:2.0 with
        | None ->
          Error
            (Printf.sprintf
               "write/read round-trip failed under %s: stored checkpoint \
                not served"
               d)
        | Some (t, p) when t <> 1.5 || p <> payload ->
          Error "round-trip served different time or bytes"
        | Some _ -> (
          let other =
            Checkpoint_store.create ~fingerprint:"other-fp" ~store_mb:8
              ~dir:d ~config_key:"selftest-cfg" ()
          in
          match Checkpoint_store.lookup other ~fault_key:"fk" ~before:2.0 with
          | Some _ -> Error "a checkpoint keyed by another binary was served"
          | None -> (
            let files =
              try
                Sys.readdir d |> Array.to_list
                |> List.filter (fun n -> Filename.check_suffix n ".ckpt")
              with _ -> []
            in
            match files with
            | [ name ] -> (
              let path = Filename.concat d name in
              let ic = open_in_bin path in
              let data = really_input_string ic (in_channel_length ic) in
              close_in ic;
              let b = Bytes.of_string data in
              let last = Bytes.length b - 1 in
              Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
              let oc = open_out_bin path in
              output_bytes oc b;
              close_out oc;
              match
                Checkpoint_store.lookup store ~fault_key:"fk" ~before:2.0
              with
              | Some _ -> Error "a corrupted checkpoint file was served"
              | None ->
                Ok
                  "round-trip, foreign-fingerprint isolation and \
                   corrupt-file detection all OK")
            | l ->
              Error
                (Printf.sprintf "expected exactly one checkpoint file, found %d"
                   (List.length l)))));
  }

(* A tiny fixed campaign, the shared fixture of CACHE-ID and soak mode:
   small enough to finish in a couple of seconds, large enough to schedule
   real injections and (with the default seed) record findings. *)
let mini_campaign ?(seed = 1) ~cached () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.quickstart) with
      Campaign.budget_s = 120.0;
      prefix_cache = cached;
      seed;
    }
  in
  Campaign.run config ~strategy:(fun ctx -> Sabre.make ctx)

let campaign_fingerprint (r : Campaign.result) =
  Printf.sprintf "sims=%d infs=%d spent_bits=%Lx findings=[%s]"
    r.Campaign.simulations r.Campaign.inferences
    (Int64.bits_of_float r.Campaign.wall_clock_spent_s)
    (String.concat ";"
       (List.map
          (fun (f : Campaign.finding) ->
            Printf.sprintf "%d@%s" f.Campaign.simulation_index
              (Digest.to_hex (Digest.string (Report.describe f.Campaign.report))))
          r.Campaign.findings))

let cache_id () =
  {
    code = "CACHE-ID";
    name = "mini campaign: prefix cache on vs off, identical outcomes";
    run =
      (fun () ->
        let cold = mini_campaign ~cached:false () in
        let cached = mini_campaign ~cached:true () in
        let a = campaign_fingerprint cold and b = campaign_fingerprint cached in
        if a <> b then
          Error (Printf.sprintf "cached campaign diverged: cold %s, cached %s" a b)
        else
          Ok
            (Printf.sprintf
               "%d simulations, %d findings: counts, ledger bits and finding \
                indices identical"
               cold.Campaign.simulations
               (Campaign.unsafe_count cold)));
  }

let pool_sane () =
  {
    code = "POOL-SANE";
    name = "domain pool: ordered map, exception propagation, close";
    run =
      (fun () ->
        let open Avis_util in
        let items = List.init 16 Fun.id in
        let squares = Pool.map ~jobs:2 (fun i -> i * i) items in
        if squares <> List.map (fun i -> i * i) items then
          Error "Pool.map returned results out of input order"
        else
          let propagated =
            match
              Pool.map ~jobs:2
                (fun i -> if i = 3 then failwith "selftest-boom" else i)
                (List.init 8 Fun.id)
            with
            | _ -> false
            | exception Failure msg -> msg = "selftest-boom"
            | exception _ -> false
          in
          if not propagated then
            Error "a job's exception did not propagate out of Pool.map"
          else begin
            let p = Pool.create ~jobs:2 in
            Pool.submit p (fun () -> ());
            Pool.close_and_wait p;
            Pool.close_and_wait p;
            match Pool.submit p (fun () -> ()) with
            | () -> Error "submitting to a closed pool did not raise"
            | exception Invalid_argument _ ->
              Ok
                "map order, exception propagation, idempotent close and \
                 closed-pool rejection all OK"
            | exception e ->
              Error
                ("closed-pool submit raised the wrong exception: "
                ^ Printexc.to_string e)
          end);
  }

let alloc_0 () =
  {
    code = "ALLOC-0";
    name = "step/sense/record hot loop allocates no minor words";
    run =
      (fun () ->
        let w = World.create ~position:(Vec3.make 0.0 0.0 100.0) () in
        let suite = Avis_sensors.Suite.create ~rng:(Avis_util.Rng.create 1) () in
        let trace = Avis_sitl.Trace.create () in
        let cmds = Array.make 4 hover in
        let steps = ref 0 in
        let kernel () =
          ignore (World.step w ~motor_commands:cmds ~dt);
          Avis_sensors.Suite.tick suite w ~dt;
          incr steps;
          Avis_sitl.Trace.record trace ~steps:!steps ~dt w ~mode:"Manual"
        in
        for _ = 1 to 2000 do kernel () done;
        let w0 = Gc.minor_words () in
        for _ = 1 to 1000 do kernel () done;
        let allocated = Gc.minor_words () -. w0 in
        (* [Gc.minor_words] itself boxes its result, hence the slack —
           the same 64-word bound the physics regression test uses. *)
        if allocated < 64.0 then
          Ok (Printf.sprintf "%.0f minor words over 1000 steps" allocated)
        else
          Error
            (Printf.sprintf
               "hot loop allocated %.0f minor words over 1000 steps"
               allocated));
  }

let checks () =
  [
    det_fp (); lane_id (); snap_rt (); store_rw (); cache_id (); pool_sane ();
    alloc_0 ();
  ]

let run_check c =
  let t0 = Avis_util.Metrics.now_s () in
  let passed, detail =
    match c.run () with
    | Ok d -> (true, d)
    | Error d -> (false, d)
    | exception e -> (false, "raised " ^ Printexc.to_string e)
  in
  {
    code = c.code;
    name = c.name;
    passed;
    detail;
    elapsed_s = Avis_util.Metrics.now_s () -. t0;
  }

let run_all ?checks:(cs = checks ()) () = List.map run_check cs

let all_passed = List.for_all (fun r -> r.passed)

let table reports =
  let t =
    Avis_util.Table.create ~header:[ "code"; "verdict"; "time (s)"; "detail" ]
  in
  List.iter
    (fun (r : report) ->
      Avis_util.Table.add_row t
        [
          r.code;
          (if r.passed then "ok" else "FAIL");
          Printf.sprintf "%.1f" r.elapsed_s;
          r.detail;
        ])
    reports;
  t

(* ------------------------------------------------------------------ *)
(* Soak mode.                                                          *)
(* ------------------------------------------------------------------ *)

type soak = { iterations : int; drift : string list }

let soak_seeds = [ 1; 2; 3 ]

let soak ?iterations ?(progress = fun (_ : int) -> ()) ~minutes () =
  let t0 = Avis_util.Metrics.now_s () in
  let seen : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let drift = ref [] in
  let keep_going i =
    match iterations with
    | Some n -> i < n
    | None ->
      (* At least one full seed rotation plus one repeat, so every seed
         gets at least one drift comparison even with [minutes = 0]. *)
      i < List.length soak_seeds + 1
      || Avis_util.Metrics.now_s () -. t0 < minutes *. 60.0
  in
  let i = ref 0 in
  while keep_going !i do
    let seed = List.nth soak_seeds (!i mod List.length soak_seeds) in
    let fp = campaign_fingerprint (mini_campaign ~seed ~cached:true ()) in
    (match Hashtbl.find_opt seen seed with
    | None -> Hashtbl.replace seen seed fp
    | Some prior when prior = fp -> ()
    | Some prior ->
      drift :=
        Printf.sprintf
          "iteration %d (seed %d) drifted: first saw %s, now %s" (!i + 1)
          seed prior fp
        :: !drift);
    incr i;
    progress !i
  done;
  { iterations = !i; drift = List.rev !drift }
