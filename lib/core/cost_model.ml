type stat = { mutable n : int; mutable total_s : float }

type t = {
  table : (string, stat) Hashtbl.t;  (** Keyed by cell label. *)
  mutable obs : int;
  mutable elapsed_sum_s : float;
  mutable spent_sum_s : float;
      (** Modelled budget seconds matching [elapsed_sum_s]: their ratio
          converts a budget into a wall-clock estimate for classes the
          model has never seen. *)
}

let create () =
  { table = Hashtbl.create 32; obs = 0; elapsed_sum_s = 0.0; spent_sum_s = 0.0 }

let observe ?spent_s t ~label ~elapsed_s =
  if Float.is_finite elapsed_s && elapsed_s >= 0.0 then begin
    (match Hashtbl.find_opt t.table label with
    | Some s ->
      s.n <- s.n + 1;
      s.total_s <- s.total_s +. elapsed_s
    | None -> Hashtbl.replace t.table label { n = 1; total_s = elapsed_s });
    t.obs <- t.obs + 1;
    t.elapsed_sum_s <- t.elapsed_sum_s +. elapsed_s;
    match spent_s with
    | Some sp when Float.is_finite sp && sp > 0.0 ->
      t.spent_sum_s <- t.spent_sum_s +. sp
    | Some _ | None -> ()
  end

let observe_record t (r : Run_journal.record) =
  match Run_journal.elapsed_s r with
  | Some elapsed_s ->
    observe t ~label:r.Run_journal.label ~spent_s:(Run_journal.spent_s r)
      ~elapsed_s
  | None -> ()

let of_journal journal =
  let t = create () in
  Run_journal.fold_records journal ~init:() ~f:(fun () r -> observe_record t r);
  t

let predict t ~label ~budget_s =
  match Hashtbl.find_opt t.table label with
  | Some s when s.n > 0 -> s.total_s /. float_of_int s.n
  | Some _ | None ->
    if t.spent_sum_s > 0.0 then budget_s *. (t.elapsed_sum_s /. t.spent_sum_s)
    else budget_s

let observations t = t.obs
