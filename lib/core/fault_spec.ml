type t = {
  kind : Avis_sensors.Sensor.kind;
  index : int option;
  at : float;
}

let to_string { kind; index; at } =
  Printf.sprintf "%s%s@%g"
    (Avis_sensors.Sensor.kind_to_string kind)
    (match index with Some i -> Printf.sprintf "[%d]" i | None -> "")
    at

let is_digit c = c >= '0' && c <= '9'

(* The sensor part is either a bare kind name or "<kind>[<digits>]".
   Anything bracket-like that is not exactly that form is an error — a
   malformed index such as "gps[abc]" must not silently degrade to the
   all-instances fault, which injects into every GPS at once. *)
let split_sensor sensor =
  match (String.index_opt sensor '[', String.index_opt sensor ']') with
  | None, None -> Ok (sensor, None)
  | Some l, Some r when r = String.length sensor - 1 && r > l + 1 ->
    let body = String.sub sensor (l + 1) (r - l - 1) in
    if String.for_all is_digit body then
      match int_of_string_opt body with
      | Some index -> Ok (String.sub sensor 0 l, Some index)
      | None -> Error (Printf.sprintf "sensor index %S out of range" body)
    else Error (Printf.sprintf "bad sensor index %S (want digits)" body)
  | _ -> Error (Printf.sprintf "malformed sensor %S (want <kind>[<index>])" sensor)

let parse s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "expected <sensor>[<index>]@<seconds>, got %S" s)
  | Some i -> (
    let sensor = String.sub s 0 i in
    let time = String.sub s (i + 1) (String.length s - i - 1) in
    match float_of_string_opt time with
    | None -> Error (Printf.sprintf "bad injection time %S" time)
    (* Non-finite times are rejected wholesale: nan never compares true
       against the simulation clock, and an "inf" injection time parses
       but can never fire within the bounded flight — a scenario that
       still charges its full budget while testing nothing. *)
    | Some at when not (Float.is_finite at) ->
      Error (Printf.sprintf "injection time %S is not finite" time)
    | Some at when at < 0.0 ->
      Error (Printf.sprintf "injection time %g is negative" at)
    | Some at -> (
      match split_sensor sensor with
      | Error _ as e -> e
      | Ok (name, index) -> (
        match Avis_sensors.Sensor.kind_of_string name with
        | None -> Error (Printf.sprintf "unknown sensor kind %S" name)
        | Some kind -> Ok { kind; index; at })))
