open Avis_sensors

type fault_subject =
  | Subject_sensor of Sensor.id
  | Subject_link of float  (** outage duration, seconds *)

type relative_fault = {
  subject : fault_subject;
  mode : string;
  offset_s : float;
}

type t = {
  scenario : Scenario.t;
  violation : Monitor.violation;
  injection_mode : string;
  relative_faults : relative_fault list;
  triggered_bugs : Avis_firmware.Bug.id list;
  duration : float;
}

(* Strictly before the fault: a fault activates at [at <= time], so a
   transition stamped at or after [at] may already be the failsafe's
   reaction to it, and the injection should be attributed to the mode the
   vehicle was flying, not the one it fled into. A transition stamped
   strictly earlier was decided before the fault existed and is always
   organic — even one a single step earlier, which matters for replay:
   faults scheduled at profiled transition times routinely land within a
   step of the observed transition, and recording them relative to the
   wrong mode makes the reconstruction schedule them absolutely, where a
   one-step timing shift under a new seed flips them to the wrong side of
   the boundary. *)
let mode_at_from_transitions transitions time =
  List.fold_left
    (fun acc tr ->
      if tr.Avis_hinj.Hinj.time < time then tr.Avis_hinj.Hinj.to_mode
      else acc)
    "Pre-Flight" transitions

let relative_fault transitions (fault : Scenario.fault) =
  let at = Scenario.fault_time fault in
  let entered, mode =
    List.fold_left
      (fun ((entered, _) as acc) tr ->
        if tr.Avis_hinj.Hinj.time < at && tr.Avis_hinj.Hinj.time >= entered
        then (tr.Avis_hinj.Hinj.time, tr.Avis_hinj.Hinj.to_mode)
        else acc)
      (0.0, "Pre-Flight") transitions
  in
  let subject =
    match fault with
    | Scenario.Sensor_fault f -> Subject_sensor f.Scenario.sensor
    | Scenario.Link_loss { duration; _ } -> Subject_link duration
  in
  { subject; mode; offset_s = at -. entered }

let make (outcome : Avis_sitl.Sim.outcome) scenario violation =
  let transitions = outcome.Avis_sitl.Sim.transitions in
  let injection_mode =
    match Scenario.first_injection_time scenario with
    | Some at -> mode_at_from_transitions transitions at
    | None -> "Pre-Flight"
  in
  {
    scenario;
    violation;
    injection_mode;
    relative_faults = List.map (relative_fault transitions) scenario;
    triggered_bugs = outcome.Avis_sitl.Sim.triggered_bugs;
    duration = outcome.Avis_sitl.Sim.duration;
  }

type mode_bucket = Takeoff_bucket | Manual_bucket | Waypoint_bucket | Land_bucket

let bucket_of_mode label =
  match Bfi_model.mode_class_of_label label with
  | "Waypoint" -> Waypoint_bucket
  | "Manual" -> Manual_bucket
  | "Return To Launch" | "Land" | "Disarmed" -> Land_bucket
  | "Pre-Flight" | "Takeoff" -> Takeoff_bucket
  | _ -> Takeoff_bucket

let all_buckets =
  [ Takeoff_bucket; Manual_bucket; Waypoint_bucket; Land_bucket ]

let bucket_label = function
  | Takeoff_bucket -> "Takeoff"
  | Manual_bucket -> "Manual"
  | Waypoint_bucket -> "Waypoint"
  | Land_bucket -> "Land"

let injection_bucket t = bucket_of_mode t.injection_mode

let describe t =
  Printf.sprintf "%s | injected %s in %s | %s"
    (Monitor.describe t.violation)
    (Scenario.to_string t.scenario)
    t.injection_mode
    (match t.triggered_bugs with
    | [] -> "no registered bug triggered"
    | bugs ->
      "triggered "
      ^ String.concat ", "
          (List.map
             (fun id -> (Avis_firmware.Bug.info id).Avis_firmware.Bug.report)
             bugs))
