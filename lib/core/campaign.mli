(** Model-checking campaigns: profiling, the search loop, budget
    accounting, and result aggregation.

    A campaign pairs one firmware personality with one workload: it first
    flies N fault-free profiling runs (with scheduler jitter) to build the
    monitor's profile and the search context, then drives a strategy until
    the wall-clock budget is exhausted, simulating each scheduled scenario
    in a freshly provisioned simulator and judging it with the invariant
    monitor. *)

open Avis_firmware

type config = {
  policy : Policy.t;
  workload : Workload.t;
  enabled_bugs : Bug.id list;
  budget_s : float;  (** Wall-clock budget (the paper uses 7200 s). *)
  speedup : float;  (** Simulated seconds per wall-clock second. *)
  seed : int;
  profiling_runs : int;
  link_jitter_steps : int;
  link_faults : Avis_mavlink.Link.fault_profile;
      (** Probabilistic datalink degradation applied to {e every} run of
          the campaign (profiling and test alike) — the ambient link
          quality, distinct from the scheduled outages a {!Scenario} may
          inject. [Link.no_faults] by default. *)
  prefix_cache : bool;
      (** Serve test runs from clean-run snapshots ({!Prefix_cache}).
          Outcomes and budget accounting are bit-identical either way;
          caching only reduces wall-clock time. A probabilistic
          [link_faults] profile makes runs uncacheable; the cache then
          counts every run as a miss. *)
}

val default_config : Policy.t -> Workload.t -> config
(** 7200 s budget, 6× speed-up, 8 profiling runs, the firmware's unknown
    bugs enabled; [prefix_cache] follows the [AVIS_PREFIX_CACHE]
    environment variable (on unless set to an explicit off value). *)

type finding = { report : Report.t; simulation_index : int }

type progress = {
  simulations : int;
  inferences : int;
  spent_s : float;
  budget_s : float;
  findings : int;
  minor_words : float;
      (** Minor-heap words allocated since the cell started. *)
  major_collections : int;
      (** Major GC cycles completed since the cell started. *)
  store_hits : int;
      (** Persistent-store restores so far; 0 when no store is active. *)
  store_misses : int;
      (** Store consultations that fell through to a cold run. *)
  store_bytes : int;  (** Bytes on disk under the store directory. *)
}
(** A snapshot of the search loop's counters, handed to the [progress]
    callback of {!run} after every simulated scenario. The GC fields are
    deltas from the start of the cell, so cells are comparable no matter
    what ran before them in the process. *)

type result = {
  approach : string;
  findings : finding list;  (** Oldest first. *)
  simulations : int;
  inferences : int;
  wall_clock_spent_s : float;
  profile : Monitor.profile;
  cache_stats : Prefix_cache.stats option;
      (** Prefix-cache counters for this campaign's test runs; [None] when
          the cache was disabled. *)
  minor_words : float;  (** Minor-heap words allocated by the cell. *)
  major_collections : int;  (** Major GC cycles during the cell. *)
}

val profile_and_context :
  config -> Monitor.profile * Search.context * Avis_sitl.Sim.outcome
(** Run the profiling phase only; also returns the first profiling run's
    outcome (the one the search context is built from). Raises [Failure]
    if a profiling run does not complete cleanly. *)

val make_cache : ?store_dir:string -> config -> Prefix_cache.t
(** A prefix cache bound to [config]'s test runs (exact seed and sim
    config), with a one-second checkpoint grid. Pass it to {!run} to share
    snapshots across campaigns {e of the same config}: replaying a campaign
    then forks every scenario from its last checkpoint and simulates only
    the tail, which is the fast path for regression re-runs and finding
    reproduction. A cache must never be shared across different configs —
    its snapshots encode that config's flights. [store_dir] (default the
    [AVIS_STORE_DIR] environment variable) additionally persists the
    checkpoints to a content-addressed on-disk store shared across
    processes — see {!Prefix_cache.create}; the content address keys by
    config, so one store directory can safely serve many configs. *)

val run :
  ?stop_when:(finding -> bool) -> ?progress:(progress -> unit) ->
  ?cache:Prefix_cache.t -> ?lanes:int -> ?deadline_s:float ->
  ?journal:Run_journal.t -> ?journal_approach:string -> config ->
  strategy:(Search.context -> Search.t) -> result
(** Run a full campaign. [stop_when] ends the campaign early when a
    finding satisfies it (used by the Table V until-found experiments).
    [progress] is invoked after every simulated scenario and once more on
    completion; campaign runners use it to emit live metrics. [cache]
    (used only when [config.prefix_cache] is set) substitutes an external
    snapshot cache from {!make_cache} for the internally built one — see
    {!make_cache} for the sharing rules. The campaign never spends past
    [budget_s]: affordability is checked against the simulator's duration
    cap before each run, and the ledger saturates at the budget.

    [lanes] (default the [AVIS_LANES] environment variable, else 1)
    selects the driver: 1 keeps the classic one-scenario-at-a-time loop;
    [n >= 2] schedules up to [n] scenarios in flight at once, each
    physics-stepped through a lane of a shared structure-of-arrays batch
    ({!Avis_sitl.Sim.Batch}) and advanced in interleaved slices. Budget
    charges, affordability gates, observations and findings are applied
    in strict schedule order, so a batched campaign's findings and budget
    ledger are bit-identical to the unbatched driver whenever the
    strategy's proposals don't depend on its observations (random
    search); adaptive strategies see observations up to [n] proposals
    late and may schedule differently (still valid searches).

    [deadline_s] is a cooperative wall-clock watchdog: checked at every
    scheduling boundary (never mid-simulation), raising {!Cell_deadline}
    when the cell has been running longer — use {!run_supervised} to get
    the deadline, retry and quarantine policy together. [journal] appends
    one completed-cell record on normal completion (not on an interrupt
    or an exception), keyed by {!journal_key} under [journal_approach]
    (default the strategy's name); see {!Run_journal}. *)

exception Cell_deadline of float
(** The cell's wall-clock deadline passed; carries the elapsed seconds. *)

(** {2 Interrupt}

    A process-wide cooperative stop flag. {!request_interrupt} (typically
    from a SIGINT handler) makes every in-flight {!run} stop at its next
    scheduling boundary and return its partial findings and ledger;
    interrupted cells never append a journal record. *)

val request_interrupt : unit -> unit
val interrupted : unit -> bool
val clear_interrupt : unit -> unit

(** {2 Watchdogged execution}

    Retry/backoff/quarantine around {!run} for unattended matrices: a
    transient failure (deadline hit, I/O error) is retried with
    exponential backoff; a cell that exhausts its attempts — or fails
    deterministically — is quarantined with a stable error code instead
    of aborting the whole matrix. *)

type cell_error = {
  code : string;
      (** Stable code: [CELL-DEADLINE], [CELL-IO], [CELL-FAIL] or
          [CELL-EXN]. *)
  message : string;  (** The rendered exception. *)
  attempts : int;  (** Attempts consumed, including the first. *)
}

type 'a supervised = Completed of 'a | Quarantined of cell_error

type supervision = {
  cell_timeout_s : float option;
      (** Per-attempt wall-clock deadline; [None] derives one from the
          cell's budget (the full modelled budget, floored at 60 s). *)
  max_attempts : int;  (** Total attempts, including the first. *)
  backoff_s : float;  (** First retry pause; doubles per retry. *)
  transient : exn -> bool;  (** Which failures are worth retrying. *)
  sleep : float -> unit;  (** Injectable for tests; [Unix.sleepf]. *)
}

val default_supervision : supervision
(** 3 attempts, 0.1 s initial backoff, budget-derived deadline; deadline
    hits and I/O errors ([Sys_error], [Unix.Unix_error]) are transient. *)

val with_retries :
  ?supervision:supervision -> label:string -> (attempt:int -> 'a) ->
  'a supervised
(** The bare retry engine: run the thunk, retrying transient failures
    with exponential backoff up to [max_attempts], quarantining
    otherwise. Each retry and quarantine bumps the [cell.retries] /
    [cell.quarantined] trace counters and warns on stderr. *)

val run_supervised :
  ?supervision:supervision -> ?stop_when:(finding -> bool) ->
  ?progress:(progress -> unit) -> ?cache:Prefix_cache.t -> ?lanes:int ->
  ?journal:Run_journal.t -> ?journal_approach:string -> config ->
  strategy:(Search.context -> Search.t) -> result supervised
(** {!run} under {!with_retries} and a wall-clock deadline. Retried
    attempts restart the campaign from scratch, so a [Completed] result
    is always one uninterrupted campaign's. *)

val watchdog_counters : unit -> int * int * int
(** Process-lifetime [(retries, quarantined, deadline_hits)] totals —
    the same values mirrored to the trace counter tracks. *)

(** {2 Journal keys}

    The resumable-journal addressing for one campaign cell; see
    {!Run_journal} for the file format and staleness rules. *)

val journal_identity : config -> approach:string -> string
(** The cell's canonical configuration bytes: the exact test-run
    simulator config, the workload name, the budget parameters by their
    IEEE-754 bits, and the approach label. *)

val journal_key : Run_journal.t -> config -> approach:string -> string
(** {!Run_journal.key} over the journal's binary fingerprint and
    {!journal_identity}. *)

val journal_memo :
  Run_journal.t -> config -> approach:string -> Run_journal.record option
(** The completed record for this cell, if the journal holds one — the
    caller then skips the campaign and serves the memo. The [approach]
    string must match the one passed (or defaulted) as
    [journal_approach] when the record was written. *)

val label_of : config -> approach:string -> string
(** The cell's display label, [approach/policy/workload]. *)

val record_of_result :
  ?elapsed_s:float -> config -> approach:string -> fingerprint:string ->
  result -> Run_journal.record
(** The journal record {!run} would append for this result — the single
    construction site shared with the hunt daemon's wire results, so a
    streamed result and a journal memo of the same cell are identical.
    [elapsed_s] is the cell's measured wall-clock duration (the cost
    model's training signal); omitted, the record carries no duration. *)

val lanes_of_env : unit -> int
(** The [AVIS_LANES] width: 1 (unbatched) when unset; invalid values are
    warned about and treated as 1. *)

val cell_seed :
  ?base:int -> policy:string -> workload:string -> approach:string -> unit -> int
(** A deterministic positive seed for one cell of a campaign matrix,
    derived (FNV-1a) from the cell's labels and the [base] seed
    (default 1). Both the sequential and the parallel matrix runners use
    this, so a cell's campaign is identical no matter where or in what
    order it executes. *)

val unsafe_count : result -> int

val count_by_bucket : result -> (Report.mode_bucket * int) list
(** Findings per Table IV mode bucket (buckets with zero included). *)

val found_bug : result -> Bug.id -> bool
(** Did any finding's ground-truth attribution include this bug? *)

val simulations_until_bug : result -> Bug.id -> int option
(** Simulation count at the first finding attributed to the bug. *)
