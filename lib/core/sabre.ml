type site = { at : float; base : Scenario.t }

type state = {
  ctx : Search.context;
  shift_s : float;
  prune : Prune.t;
  gate : (Scenario.t -> float * bool) option;
  queue : site Queue.t;
  seen_sites : (string, unit) Hashtbl.t;
  mutable current : (site * Scenario.t list) option;
}

let site_key s =
  Printf.sprintf "%d|%s" (int_of_float (Float.round (s.at *. 1000.0))) (Scenario.key s.base)

let enqueue_site st site =
  if site.at >= 0.0 && site.at <= st.ctx.Search.mission_duration +. 5.0 then begin
    let key = site_key site in
    if not (Hashtbl.mem st.seen_sites key) then begin
      Hashtbl.add st.seen_sites key ();
      Queue.push site st.queue
    end
  end

let make ?(shift_s = 0.5) ?prune ?gate ctx =
  let prune = match prune with Some p -> p | None -> Prune.create () in
  let st =
    {
      ctx;
      shift_s;
      prune;
      gate;
      queue = Queue.create ();
      seen_sites = Hashtbl.create 1024;
      current = None;
    }
  in
  (* Line 1: seed the queue with the profiling run's transitions. *)
  List.iter
    (fun (time, _, _) -> enqueue_site st { at = time; base = Scenario.empty })
    ctx.Search.transitions;
  let rec next () =
    match st.current with
    | Some (site, scenario :: rest) ->
      st.current <- Some (site, rest);
      if Prune.should_prune st.prune scenario then next ()
      else begin
        match st.gate with
        | None -> Search.Run (scenario, 0.0)
        | Some gate ->
          let cost, approved = gate scenario in
          if approved then Search.Run (scenario, cost)
          else
            (* Skipped by the model; surface the cost so the campaign
               still charges the inference. *)
            Search.Think cost
      end
    | Some (site, []) ->
      (* Line 20: revisit this site a little later. *)
      enqueue_site st { site with at = site.at +. st.shift_s };
      st.current <- None;
      next ()
    | None ->
      if Queue.is_empty st.queue then Search.Exhausted
      else begin
        let site = Queue.pop st.queue in
        let candidates =
          Avis_util.Trace.span ~cat:"search" "sabre.candidates" @@ fun () ->
          Search.candidate_sets st.ctx ~at:site.at ~base:site.base
        in
        st.current <- Some (site, candidates);
        next ()
      end
  in
  let observe scenario (result : Search.run_result) =
    Prune.note_run st.prune scenario;
    if result.Search.unsafe then Prune.note_bug st.prune scenario
    else
      (* Lines 11–14: every transition of a bug-free run becomes a new
         injection site carrying this run's faults. *)
      List.iter
        (fun time ->
          if time > 0.05 then enqueue_site st { at = time; base = scenario })
        result.Search.observed_transitions
  in
  { Search.name = "Avis (SABRE)"; next; observe }
