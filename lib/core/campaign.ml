open Avis_firmware
open Avis_mavlink
open Avis_sitl

type config = {
  policy : Policy.t;
  workload : Workload.t;
  enabled_bugs : Bug.id list;
  budget_s : float;
  speedup : float;
  seed : int;
  profiling_runs : int;
  link_jitter_steps : int;
  link_faults : Link.fault_profile;
  prefix_cache : bool;
}

let default_config policy workload =
  {
    policy;
    workload;
    enabled_bugs = Bug.unknown_bugs policy.Policy.firmware;
    budget_s = 7200.0;
    speedup = 6.0;
    seed = 1;
    profiling_runs = 8;
    link_jitter_steps = 2;
    link_faults = Link.no_faults;
    prefix_cache = Prefix_cache.enabled_by_env ();
  }

type finding = { report : Report.t; simulation_index : int }

type progress = {
  simulations : int;
  inferences : int;
  spent_s : float;
  budget_s : float;
  findings : int;
  minor_words : float;
  major_collections : int;
  store_hits : int;
  store_misses : int;
  store_bytes : int;
}

type result = {
  approach : string;
  findings : finding list;
  simulations : int;
  inferences : int;
  wall_clock_spent_s : float;
  profile : Monitor.profile;
  cache_stats : Prefix_cache.stats option;
  minor_words : float;
  major_collections : int;
}

(* ------------------------------------------------------------------ *)
(* Unattended operation: interrupt, watchdog, quarantine.              *)
(* ------------------------------------------------------------------ *)

(* Process-wide cooperative interrupt: a SIGINT handler (or test) raises
   the flag, and every in-flight campaign treats it like an early stop at
   its next scheduling boundary — partial findings and ledger are
   returned, nothing is torn mid-judgement, and no journal record is
   appended (an interrupted cell's counts are not a completed cell's). *)
let interrupt_flag = Atomic.make false
let request_interrupt () = Atomic.set interrupt_flag true
let clear_interrupt () = Atomic.set interrupt_flag false
let interrupted () = Atomic.get interrupt_flag

exception Cell_deadline of float
(** Raised inside {!run} when the cell's wall-clock deadline passes;
    carries the elapsed seconds. *)

(* Process-lifetime watchdog counters, mirrored onto the trace as counter
   tracks so an unattended run's retries are visible in Perfetto. *)
let retries_total = Atomic.make 0
let quarantined_total = Atomic.make 0
let deadline_hits_total = Atomic.make 0

let watchdog_counters () =
  ( Atomic.get retries_total,
    Atomic.get quarantined_total,
    Atomic.get deadline_hits_total )

type cell_error = { code : string; message : string; attempts : int }
type 'a supervised = Completed of 'a | Quarantined of cell_error

type supervision = {
  cell_timeout_s : float option;
  max_attempts : int;
  backoff_s : float;
  transient : exn -> bool;
  sleep : float -> unit;
}

(* Deadline hits and I/O errors are environmental (machine overload, a
   full or flaky disk) and worth retrying; anything else — Failure from a
   profiling run, Invalid_argument, Corrupt — is deterministic and would
   fail identically on every attempt. *)
let default_transient = function
  | Cell_deadline _ -> true
  | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let default_supervision =
  {
    cell_timeout_s = None;
    max_attempts = 3;
    backoff_s = 0.1;
    transient = default_transient;
    sleep = Unix.sleepf;
  }

let error_code = function
  | Cell_deadline _ -> "CELL-DEADLINE"
  | Sys_error _ | Unix.Unix_error _ -> "CELL-IO"
  | Failure _ -> "CELL-FAIL"
  | _ -> "CELL-EXN"

(* The budget is modelled wall-clock; real wall time is normally far
   below it (the simulator outruns real time and the cache shortcuts
   clean prefixes), so the full budget — floored at a minute for tiny
   test budgets — is a generous yet finite default deadline: it only
   fires on a genuinely wedged cell. *)
let deadline_of_budget budget_s = Float.max 60.0 budget_s

let with_retries ?(supervision = default_supervision) ~label f =
  let rec attempt n =
    match f ~attempt:n with
    | v -> Completed v
    | exception e ->
      (* During an interrupt-driven shutdown nothing is retried: the cell
         is quarantined immediately so the process can wind down. *)
      if
        (not (interrupted ()))
        && supervision.transient e
        && n < supervision.max_attempts
      then begin
        Atomic.incr retries_total;
        Avis_util.Trace.counter "cell.retries"
          (float_of_int (Atomic.get retries_total));
        let pause = supervision.backoff_s *. (2.0 ** float_of_int (n - 1)) in
        Printf.eprintf
          "[avis] warning: cell %s attempt %d/%d failed (%s: %s); retrying \
           in %.1f s\n\
           %!"
          label n supervision.max_attempts (error_code e)
          (Printexc.to_string e) pause;
        supervision.sleep pause;
        attempt (n + 1)
      end
      else begin
        Atomic.incr quarantined_total;
        Avis_util.Trace.counter "cell.quarantined"
          (float_of_int (Atomic.get quarantined_total));
        Printf.eprintf
          "[avis] warning: cell %s quarantined after %d attempt(s) (%s: %s)\n%!"
          label n (error_code e) (Printexc.to_string e);
        Quarantined
          { code = error_code e; message = Printexc.to_string e; attempts = n }
      end
  in
  attempt 1

(* The simulator's hard cap on one run, and therefore the most any run
   can charge to the budget. The affordability check below uses the same
   bound, so a run that starts is guaranteed to fit. *)
let max_sim_duration (config : config) =
  config.workload.Workload.nominal_duration +. 60.0

let sim_cfg_of (config : config) ~seed =
  let base = Sim.default_config config.policy in
  {
    base with
    Sim.enabled_bugs = config.enabled_bugs;
    seed;
    max_duration = max_sim_duration config;
    link_jitter_steps = config.link_jitter_steps;
    link_faults = config.link_faults;
    environment = config.workload.Workload.environment ();
  }

let sim_config (config : config) ~seed ~scenario =
  Sim.create ~plan:(Scenario.to_plan scenario)
    ~link_outages:(Scenario.link_outages scenario)
    (sim_cfg_of config ~seed)

let execute_run config ~seed ~scenario =
  let sim = sim_config config ~seed ~scenario in
  let passed = Workload.execute config.workload sim in
  Sim.outcome sim ~workload_passed:passed

let profile_and_context config =
  Avis_util.Trace.span ~cat:"campaign" "campaign.profile" @@ fun () ->
  let outcomes =
    List.init config.profiling_runs (fun i ->
        execute_run config ~seed:(config.seed + i) ~scenario:Scenario.empty)
  in
  List.iteri
    (fun i o ->
      if (not o.Sim.workload_passed) || o.Sim.crash <> None then
        failwith
          (Printf.sprintf
             "profiling run %d of %s on %s did not complete cleanly" i
             config.workload.Workload.name config.policy.Policy.name))
    outcomes;
  let profile = Monitor.build_profile outcomes in
  let first = List.hd outcomes in
  let rng = Avis_util.Rng.create (config.seed * 7919) in
  let ctx =
    Search.context_of_outcome ~rng
      ~suite_complement:Avis_sensors.Suite.iris_complement first
  in
  (profile, ctx, first)

(* A cache bound to [config]'s test runs, shareable across campaigns of the
   same config: grid checkpoints only, since the profiled transition times
   are not known until [run] profiles. *)
let make_cache ?store_dir config =
  let test_seed = config.seed + 1000 in
  let dur = max_sim_duration config in
  Prefix_cache.create ?store_dir ~workload:config.workload
    ~make_sim:(fun ~scenario -> sim_config config ~seed:test_seed ~scenario)
    ~checkpoint_times:(List.init (int_of_float dur) (fun i -> float_of_int (i + 1)))
    ()

(* Canonical identity of one campaign cell, the config half of its
   journal key: the exact test-run simulator configuration (policy, bugs,
   test seed, dt, link faults, environment, airframe — everything
   Sim.encode_config covers), the workload, the budget parameters by
   their IEEE-754 bits, and the approach label. Two invocations agree on
   these bytes exactly when their campaigns are bit-identical, which is
   when serving a memo is sound. *)
let journal_identity (config : config) ~approach =
  let b = Buffer.create 256 in
  Sim.encode_config b (sim_cfg_of config ~seed:(config.seed + 1000));
  Buffer.add_char b '\x00';
  Buffer.add_string b config.workload.Workload.name;
  Buffer.add_char b '\x00';
  Buffer.add_int64_le b (Int64.bits_of_float config.budget_s);
  Buffer.add_int64_le b (Int64.bits_of_float config.speedup);
  Buffer.add_int64_le b (Int64.of_int config.seed);
  Buffer.add_int64_le b (Int64.of_int config.profiling_runs);
  Buffer.add_string b approach;
  Buffer.contents b

let journal_key journal (config : config) ~approach =
  Run_journal.key
    ~fingerprint:(Run_journal.fingerprint journal)
    ~config_bytes:(journal_identity config ~approach)

let journal_memo journal config ~approach =
  Run_journal.find journal ~key:(journal_key journal config ~approach)

let label_of config ~approach =
  Printf.sprintf "%s/%s/%s" approach config.policy.Policy.name
    config.workload.Workload.name

let journal_finding (f : finding) =
  {
    Run_journal.simulation_index = f.simulation_index;
    description = Report.describe f.report;
    bucket = Report.bucket_label (Report.injection_bucket f.report);
    bugs =
      List.map
        (fun id -> (Bug.info id).Bug.report)
        f.report.Report.triggered_bugs;
  }

(* One construction site for the journal's view of a completed campaign:
   [run]'s own journalling and the hunt daemon's wire results both go
   through here, so a record streamed to a client is byte-for-byte the
   record a journal would memo-serve. *)
let record_of_result ?elapsed_s (config : config) ~approach ~fingerprint
    (result : result) =
  {
    Run_journal.key =
      Run_journal.key ~fingerprint
        ~config_bytes:(journal_identity config ~approach);
    label = label_of config ~approach;
    simulations = result.simulations;
    inferences = result.inferences;
    spent_bits = Int64.bits_of_float result.wall_clock_spent_s;
    elapsed_bits = Option.map Int64.bits_of_float elapsed_s;
    findings = List.map journal_finding result.findings;
  }

(* How many scenarios a batched campaign keeps in flight at once. Absent,
   empty, or 1 means the classic one-at-a-time driver; malformed values are
   rejected loudly (a typo'd width must not silently serialise a campaign
   that asked for lanes). *)
let lanes_of_env () =
  Avis_util.Env.positive_int ~default_label:"1 (unbatched)" ~var:"AVIS_LANES"
    ~default:1 ()

(* Batched-driver bookkeeping. A campaign's decision sequence — budget
   charges, affordability gates, observations, findings — is replayed in
   strict schedule order from a queue of these events, while the runs
   themselves advance out of order in interleaved lane slices. *)
type lane_handle =
  | Cached_run of Prefix_cache.run
  | Plain_run of Sim.t * Workload.Stepper.stepper

type lane_run = {
  lr_scenario : Scenario.t;
  lr_cost : float;  (** The [Search.Run] inference cost. *)
  lr_handle : lane_handle;
  mutable lr_slot : int;  (** Lane slot, [-1] when stepping unbatched. *)
  mutable lr_outcome : Sim.outcome option;
  mutable lr_inference_applied : bool;
}

type lane_ev =
  | Lane_think of float
  | Lane_exhausted
  | Lane_run of lane_run

let run ?(stop_when = fun _ -> false) ?(progress = fun (_ : progress) -> ())
    ?cache ?lanes ?deadline_s ?journal ?journal_approach config ~strategy =
  (* One span per campaign: everything a cell does (profiling, search
     decisions, simulation, monitoring) nests under it, which is what lets
     a trace attribute a cell's wall time phase by phase. *)
  Avis_util.Trace.span ~cat:"campaign" "campaign.cell" @@ fun () ->
  (* Cooperative wall-clock watchdog: checked at every scheduling
     boundary (never mid-simulation), so a deadline abort leaves no
     half-judged state behind. *)
  let wall0 = Avis_util.Metrics.now_s () in
  let tick_deadline () =
    match deadline_s with
    | None -> ()
    | Some d ->
      let elapsed = Avis_util.Metrics.now_s () -. wall0 in
      if elapsed > d then begin
        Atomic.incr deadline_hits_total;
        Avis_util.Trace.counter "cell.deadline_hits"
          (float_of_int (Atomic.get deadline_hits_total));
        Avis_util.Trace.instant ~cat:"campaign" "cell.deadline";
        raise (Cell_deadline elapsed)
      end
  in
  (* GC baseline for the cell: progress and result report allocation as
     deltas from here, so cells are comparable regardless of what ran
     before them in the process. Baseline and reading must come from the
     same primitive — [Gc.minor_words] is domain-local while
     [Gc.quick_stat]'s word counts aggregate promoted words across
     domains, and mixing them makes deltas go negative on a parallel
     matrix. *)
  let minor0 = Gc.minor_words () in
  let gc0 = Gc.quick_stat () in
  let gc_minor_words () = Gc.minor_words () -. minor0 in
  let gc_majors () =
    (Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections
  in
  let profile, ctx, _first = profile_and_context config in
  let searcher = strategy ctx in
  let budget = Budget.create ~speedup:config.speedup ~total_s:config.budget_s () in
  let findings = ref [] in
  let stopped = ref false in
  (* Test runs are deterministic: a fixed seed distinct from profiling. *)
  let test_seed = config.seed + 1000 in
  (* Checkpoint runs at the profiled mode transitions (where the strategies
     schedule injections) plus a one-second grid, so faults at observed —
     not just profiled — transition times also land near a snapshot. The
     cache provisions with the exact test config, which is what keeps
     cached outcomes bit-identical to cold ones. *)
  let cache =
    if not config.prefix_cache then None
    else
      match cache with
      | Some _ ->
        (* An externally shared cache (same config, earlier campaign): its
           checkpoints already cover these runs, so a replayed campaign
           forks every scenario from its last snapshot and simulates only
           the tail. *)
        cache
      | None ->
        let dur = max_sim_duration config in
        let grid =
          List.init (int_of_float dur) (fun i -> float_of_int (i + 1))
        in
        let checkpoint_times =
          List.map (fun (t, _, _) -> t) ctx.Search.transitions
          @ List.filter (fun t -> t < dur) grid
        in
        Some
          (Prefix_cache.create ~workload:config.workload
             ~make_sim:(fun ~scenario -> sim_config config ~seed:test_seed ~scenario)
             ~checkpoint_times ())
  in
  let run_scenario scenario =
    Avis_util.Trace.span ~cat:"sim" "campaign.run_scenario" @@ fun () ->
    match cache with
    | Some cache -> Prefix_cache.execute cache ~scenario
    | None -> execute_run config ~seed:test_seed ~scenario
  in
  let report_progress () =
    let store_hits, store_misses, store_bytes =
      match cache with
      | None -> (0, 0, 0)
      | Some c ->
        let s = Prefix_cache.stats c in
        Prefix_cache.(s.store_hits, s.store_misses, s.store_bytes)
    in
    progress
      {
        simulations = Budget.simulations_run budget;
        inferences = Budget.inferences_run budget;
        spent_s = Budget.spent_s budget;
        budget_s = config.budget_s;
        findings = List.length !findings;
        minor_words = gc_minor_words ();
        major_collections = gc_majors ();
        store_hits;
        store_misses;
        store_bytes;
      }
  in
  (* Judge one completed run: charge the budget, check the monitor, feed
     the observation back, record any finding — the shared tail of both
     drivers, always applied in schedule order. *)
  let judge_outcome scenario outcome =
    Budget.charge_simulation budget ~sim_seconds:outcome.Sim.duration;
    let verdict =
      Avis_util.Trace.span ~cat:"campaign" "monitor.check" @@ fun () ->
      Monitor.check profile outcome
    in
    let unsafe = match verdict with Monitor.Unsafe _ -> true | Monitor.Safe -> false in
    (Avis_util.Trace.span ~cat:"search" "search.observe" @@ fun () ->
     searcher.Search.observe scenario
       {
         Search.unsafe;
         observed_transitions =
           List.map (fun tr -> tr.Avis_hinj.Hinj.time) outcome.Sim.transitions;
       });
    (match verdict with
    | Monitor.Safe -> ()
    | Monitor.Unsafe violation ->
      Avis_util.Trace.instant ~cat:"campaign" "finding";
      let finding =
        {
          report = Report.make outcome scenario violation;
          simulation_index = Budget.simulations_run budget;
        }
      in
      findings := finding :: !findings;
      if stop_when finding then stopped := true);
    report_progress ()
  in
  let sequential_loop () =
    while (not !stopped) && (not (Budget.exhausted budget)) && not (interrupted ()) do
      tick_deadline ();
      match
        Avis_util.Trace.span ~cat:"search" "search.next" searcher.Search.next
      with
      | Search.Exhausted -> stopped := true
      | Search.Think cost -> Budget.charge_inference budget cost
      | Search.Run (scenario, inference_cost) ->
        if inference_cost > 0.0 then Budget.charge_inference budget inference_cost;
        if
          (* Check against the worst case the simulator could actually
             charge (its max_duration cap), not an optimistic estimate:
             any run that starts is then guaranteed to fit the budget. *)
          not
            (Budget.can_afford_run budget
               ~sim_seconds:(max_sim_duration config))
        then stopped := true
        else judge_outcome scenario (run_scenario scenario)
    done
  in
  (* The lanes driver: up to [width] scenarios in flight at once, each
     physics-stepped through a lane of the shared batch, advanced in
     interleaved one-second slices. The decision sequence is replayed from
     the event queue in strict schedule order — an event is applied only
     when everything before it has been, and the loop guard (stopped /
     budget exhausted) is re-evaluated at each event boundary exactly as
     the one-at-a-time loop evaluates it between iterations — so findings
     and budget charges are bit-identical to the unbatched driver whenever
     the strategy's proposals don't depend on its observations (e.g.
     random search). Adaptive strategies still work, but observe up to
     [width] proposals late, so their schedules may legitimately differ.
     Runs begun speculatively past a stop are discarded unjudged: wall
     clock wasted, results unchanged. *)
  let batched_loop width =
    let ev_queue : lane_ev Queue.t = Queue.create () in
    let batch = ref None in
    let inflight = ref 0 in
    let stream_done = ref false in
    let slice_s = 1.0 in
    let start_run scenario cost =
      let handle =
        match cache with
        | Some c -> Cached_run (Prefix_cache.begin_run c ~scenario)
        | None ->
          Plain_run
            ( sim_config config ~seed:test_seed ~scenario,
              Workload.Stepper.create config.workload )
      in
      let sim =
        match handle with
        | Cached_run r -> Prefix_cache.run_sim r
        | Plain_run (sim, _) -> sim
      in
      let b =
        match !batch with
        | Some b -> b
        | None ->
          let motor_count =
            (Avis_physics.World.airframe (Sim.world sim))
              .Avis_physics.Airframe.motor_count
          in
          let b = Sim.Batch.create ~width ~motor_count in
          batch := Some b;
          b
      in
      let slot = Option.value ~default:(-1) (Sim.Batch.adopt b sim) in
      {
        lr_scenario = scenario;
        lr_cost = cost;
        lr_handle = handle;
        lr_slot = slot;
        lr_outcome = None;
        lr_inference_applied = false;
      }
    in
    let finish r outcome =
      (match (!batch, r.lr_slot) with
      | Some b, slot when slot >= 0 -> Sim.Batch.release b slot
      | _ -> ());
      r.lr_slot <- -1;
      r.lr_outcome <- Some outcome;
      decr inflight
    in
    let advance r =
      match r.lr_handle with
      | Cached_run cr -> (
        let c = Option.get cache in
        let now = Sim.time (Prefix_cache.run_sim cr) in
        match Prefix_cache.continue_run c cr ~until:(now +. slice_s) with
        | Some outcome -> finish r outcome
        | None ->
          if Sim.time (Prefix_cache.run_sim cr) <= now then
            (* No progress within the slice (e.g. already finished): let
               the run resolve in one go. *)
            match Prefix_cache.continue_run c cr ~until:infinity with
            | Some outcome -> finish r outcome
            | None -> assert false)
      | Plain_run (sim, st) -> (
        let now = Sim.time sim in
        match Workload.Stepper.run st sim ~until:(now +. slice_s) with
        | Workload.Stepper.Done passed ->
          finish r (Sim.outcome sim ~workload_passed:passed)
        | Workload.Stepper.Running ->
          if Sim.time sim <= now then
            finish r
              (match Workload.Stepper.run st sim ~until:infinity with
              | Workload.Stepper.Done passed ->
                Sim.outcome sim ~workload_passed:passed
              | Workload.Stepper.Running ->
                Sim.outcome sim ~workload_passed:false))
    in
    let discard_rest () =
      Queue.iter
        (function
          | Lane_run r -> (
            match (!batch, r.lr_slot) with
            | Some b, slot when slot >= 0 ->
              Sim.Batch.release b slot;
              r.lr_slot <- -1;
              decr inflight
            | _ -> ())
          | Lane_think _ | Lane_exhausted -> ())
        ev_queue;
      Queue.clear ev_queue
    in
    let rec apply_ready () =
      match Queue.peek_opt ev_queue with
      | None -> ()
      | Some ev ->
        if !stopped || Budget.exhausted budget || interrupted () then begin
          stopped := true;
          discard_rest ()
        end
        else (
          match ev with
          | Lane_think cost ->
            ignore (Queue.pop ev_queue : lane_ev);
            Budget.charge_inference budget cost;
            apply_ready ()
          | Lane_exhausted ->
            ignore (Queue.pop ev_queue : lane_ev);
            stopped := true;
            discard_rest ()
          | Lane_run r ->
            if not r.lr_inference_applied then begin
              r.lr_inference_applied <- true;
              if r.lr_cost > 0.0 then
                Budget.charge_inference budget r.lr_cost;
              if
                not
                  (Budget.can_afford_run budget
                     ~sim_seconds:(max_sim_duration config))
              then begin
                stopped := true;
                discard_rest ()
              end
            end;
            if not !stopped then (
              match r.lr_outcome with
              | None -> () (* still simulating; apply resumes next round *)
              | Some outcome ->
                ignore (Queue.pop ev_queue : lane_ev);
                judge_outcome r.lr_scenario outcome;
                apply_ready ()))
    in
    let fill () =
      (* Pull ahead at most a lane-batch of runs (plus the thinks between
         them, drained as they surface at the queue front). *)
      let continue_fill = ref true in
      while
        !continue_fill && (not !stopped)
        && (not (Budget.exhausted budget))
        && (not (interrupted ()))
        && (not !stream_done)
        && !inflight < width
        && Queue.length ev_queue < width * 8
      do
        match
          Avis_util.Trace.span ~cat:"search" "search.next" searcher.Search.next
        with
        | Search.Exhausted ->
          Queue.push Lane_exhausted ev_queue;
          stream_done := true;
          continue_fill := false
        | Search.Think cost ->
          Queue.push (Lane_think cost) ev_queue;
          apply_ready ()
        | Search.Run (scenario, inference_cost) ->
          Queue.push (Lane_run (start_run scenario inference_cost)) ev_queue;
          incr inflight
      done
    in
    fill ();
    while (not !stopped) && not (Queue.is_empty ev_queue) do
      tick_deadline ();
      Queue.iter
        (function
          | Lane_run r when r.lr_outcome = None -> advance r
          | Lane_run _ | Lane_think _ | Lane_exhausted -> ())
        ev_queue;
      apply_ready ();
      if not !stopped then fill ()
    done;
    discard_rest ()
  in
  let width =
    match lanes with Some n -> max 1 n | None -> lanes_of_env ()
  in
  if width >= 2 then batched_loop width else sequential_loop ();
  (* Capture before building the result: an interrupt that lands after
     this point must not suppress the journal record of a cell whose
     campaign did in fact run to completion. *)
  let was_interrupted = interrupted () in
  report_progress ();
  let result =
    {
      approach = searcher.Search.name;
      findings = List.rev !findings;
      simulations = Budget.simulations_run budget;
      inferences = Budget.inferences_run budget;
      wall_clock_spent_s = Budget.spent_s budget;
      profile;
      cache_stats = Option.map Prefix_cache.stats cache;
      minor_words = gc_minor_words ();
      major_collections = gc_majors ();
    }
  in
  (match journal with
  | Some j when not was_interrupted ->
    let approach =
      match journal_approach with Some a -> a | None -> result.approach
    in
    (* Measured here — one campaign's wall time, profiling included — so
       every journal writer records the same notion of cell duration and
       the cost model's history is comparable across entry points. *)
    let elapsed_s = Avis_util.Metrics.now_s () -. wall0 in
    Run_journal.record_complete j
      (record_of_result ~elapsed_s config ~approach
         ~fingerprint:(Run_journal.fingerprint j) result)
  | Some _ | None -> ());
  result

(* Watchdogged cell execution: [run] under a wall-clock deadline (the
   supervision's [cell_timeout_s], else derived from the budget) with
   bounded exponential-backoff retry for transient failures. A cell that
   exhausts its attempts is quarantined — the caller's matrix degrades
   gracefully instead of aborting. Retried attempts re-run the campaign
   from scratch: a completed cell's results are therefore always those of
   one uninterrupted campaign, never a splice. *)
let run_supervised ?(supervision = default_supervision) ?stop_when ?progress
    ?cache ?lanes ?journal ?journal_approach (config : config) ~strategy =
  let deadline_s =
    match supervision.cell_timeout_s with
    | Some d -> d
    | None -> deadline_of_budget config.budget_s
  in
  let label =
    Printf.sprintf "%s/%s/%s"
      (match journal_approach with Some a -> a | None -> "campaign")
      config.policy.Policy.name config.workload.Workload.name
  in
  with_retries ~supervision ~label (fun ~attempt:_ ->
      run ?stop_when ?progress ?cache ?lanes ~deadline_s ?journal
        ?journal_approach config ~strategy)

(* A stable, platform-independent seed for one (policy, workload,
   approach) cell of a campaign matrix: FNV-1a over the labels, folded
   into a positive int. Sequential and parallel runners derive the same
   seed for the same cell, which is what makes their results
   bit-identical. *)
let cell_seed ?(base = 1) ~policy ~workload ~approach () =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    (Printf.sprintf "%d|%s|%s|%s" base policy workload approach);
  Int64.to_int (Int64.logand !h 0x3FFFFFFFL)

let unsafe_count result = List.length result.findings

let count_by_bucket result =
  List.map
    (fun bucket ->
      ( bucket,
        List.length
          (List.filter
             (fun f -> Report.injection_bucket f.report = bucket)
             result.findings) ))
    Report.all_buckets

let found_bug result bug =
  List.exists
    (fun f -> List.mem bug f.report.Report.triggered_bugs)
    result.findings

let simulations_until_bug result bug =
  List.fold_left
    (fun acc f ->
      match acc with
      | Some _ -> acc
      | None ->
        if List.mem bug f.report.Report.triggered_bugs then
          Some f.simulation_index
        else None)
    None result.findings
