let default_store_mb = 1024

(* Malformed or non-positive byte budgets fall back to the default with a
   warning, like [Pool.jobs_of_env]: a typo'd AVIS_STORE_MB must not
   silently disable (or unbound) the store. *)
let budget_bytes_of ?store_mb () =
  let mb =
    match store_mb with
    | Some mb when mb > 0 -> mb
    | Some mb ->
      Printf.eprintf
        "[avis] warning: ignoring invalid store_mb=%d (want a positive \
         integer); using %d\n\
         %!"
        mb default_store_mb;
      default_store_mb
    | None ->
      Avis_util.Env.positive_int ~var:"AVIS_STORE_MB" ~default:default_store_mb
        ()
  in
  mb * 1024 * 1024

type t = {
  dir : string;
  fingerprint : string;
  config_key : string;
  budget_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bytes : int;  (** Directory size after the last scan. *)
  mutable tmp_counter : int;
}

type stats = { hits : int; misses : int; bytes : int; evictions : int }

let suffix = ".ckpt"

let default_fingerprint () =
  match Digest.file Sys.executable_name with
  | d -> Digest.to_hex d
  | exception _ -> "unknown"

let is_checkpoint name = Filename.check_suffix name suffix

let scan_bytes t =
  let total = ref 0 in
  (try
     Array.iter
       (fun name ->
         if is_checkpoint name then
           try
             total :=
               !total + (Unix.stat (Filename.concat t.dir name)).Unix.st_size
           with _ -> ())
       (Sys.readdir t.dir)
   with _ -> ());
  t.bytes <- !total;
  !total

let create ?fingerprint ?store_mb ~dir ~config_key () =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with _ -> ());
  let fingerprint =
    match fingerprint with Some f -> f | None -> default_fingerprint ()
  in
  let t =
    {
      dir;
      fingerprint;
      config_key;
      budget_bytes = budget_bytes_of ?store_mb ();
      hits = 0;
      misses = 0;
      evictions = 0;
      bytes = 0;
      tmp_counter = 0;
    }
  in
  ignore (scan_bytes t);
  t

let dir t = t.dir

(* The content address: everything that must be bit-identical for a stored
   snapshot to be sound. The null separators keep distinct triples from
   colliding by concatenation. *)
let key_hash t ~fault_key =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ t.fingerprint; t.config_key; fault_key ]))

let file_name t ~fault_key ~time =
  Printf.sprintf "%s-%016Lx%s" (key_hash t ~fault_key)
    (Int64.bits_of_float time) suffix

(* File layout: magic, format version, MD5 of the payload, payload length,
   payload. The digest is over the payload only; magic/version/length
   mismatches are detected structurally. *)
let magic = "AVCK"
let format_version = '\001'

let frame_payload payload =
  let b = Buffer.create (String.length payload + 29) in
  Buffer.add_string b magic;
  Buffer.add_char b format_version;
  Buffer.add_string b (Digest.string payload);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.contents b

let header_len = 4 + 1 + 16 + 8

let unframe data =
  let n = String.length data in
  if n < header_len then None
  else if String.sub data 0 4 <> magic then None
  else if data.[4] <> format_version then None
  else
    let digest = String.sub data 5 16 in
    let len = Int64.to_int (String.get_int64_le data 21) in
    if len < 0 || len <> n - header_len then None
    else
      let payload = String.sub data header_len len in
      if Digest.string payload <> digest then None else Some payload

(* Oldest-mtime-first deletion until the directory fits the budget, with
   mtime ties broken by path: coarse filesystem timestamps (1 s mtime
   granularity) routinely leave whole batches of checkpoints with equal
   mtimes, and sorting those by anything else (size, inode order) would
   make the surviving set filesystem-dependent. Other processes may be
   adding or deleting concurrently; every step tolerates files vanishing
   underneath it. *)
let evict_to_budget t =
  if scan_bytes t > t.budget_bytes then begin
    let entries = ref [] in
    (try
       Array.iter
         (fun name ->
           if is_checkpoint name then
             let path = Filename.concat t.dir name in
             try
               let st = Unix.stat path in
               entries :=
                 (st.Unix.st_mtime, path, st.Unix.st_size) :: !entries
             with _ -> ())
         (Sys.readdir t.dir)
     with _ -> ());
    let by_age = List.sort compare !entries in
    let excess = ref (t.bytes - t.budget_bytes) in
    List.iter
      (fun (_, path, size) ->
        if !excess > 0 then begin
          (try
             Sys.remove path;
             excess := !excess - size;
             t.bytes <- t.bytes - size;
             t.evictions <- t.evictions + 1
           with _ -> ())
        end)
      by_age
  end

let put t ~fault_key ~time ~payload =
  try
    let target = Filename.concat t.dir (file_name t ~fault_key ~time) in
    if not (Sys.file_exists target) then begin
      let framed = frame_payload (Lazy.force payload) in
      t.tmp_counter <- t.tmp_counter + 1;
      let tmp =
        Filename.concat t.dir
          (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) t.tmp_counter)
      in
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
      in
      (try
         output_string oc framed;
         close_out oc;
         (* Atomic on POSIX: a concurrent reader sees either no file or the
            whole file, never a partial write. *)
         Sys.rename tmp target
       with e ->
         (try close_out_noerr oc; Sys.remove tmp with _ -> ());
         raise e);
      t.bytes <- t.bytes + String.length framed;
      if t.bytes > t.budget_bytes then evict_to_budget t
    end
  with _ -> ()

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with _ -> None

(* Candidates under [fault_key]: files whose name starts with the key hash,
   their capture time decoded from the name. Newest first. *)
let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let candidates t ~fault_key ~before =
  let prefix = key_hash t ~fault_key ^ "-" in
  let plen = String.length prefix in
  let found = ref [] in
  (try
     Array.iter
       (fun name ->
         if
           is_checkpoint name
           && String.length name = plen + 16 + String.length suffix
           && String.sub name 0 plen = prefix
         then begin
           let hex = String.sub name plen 16 in
           (* Exactly 16 hex digits: [Int64.of_string] would also accept
              underscores and sign characters a well-formed name never has.
              The parse cannot overflow — any 16-digit value fits an
              [Int64] bit pattern. *)
           if String.for_all is_hex hex then
             match Int64.of_string_opt ("0x" ^ hex) with
             | Some bits ->
               let time = Int64.float_of_bits bits in
               if time < before && time >= 0.0 then
                 found := (time, Filename.concat t.dir name) :: !found
             | None -> ()
         end)
       (Sys.readdir t.dir)
   with _ -> ());
  List.sort (fun (a, _) (b, _) -> compare b a) !found

let lookup t ~fault_key ~before =
  let rec first = function
    | [] -> None
    | (time, path) :: rest -> (
      match read_file path with
      | None -> first rest
      | Some data -> (
        match unframe data with
        | Some payload ->
          (* LRU touch: both timestamps to "now". *)
          (try Unix.utimes path 0.0 0.0 with _ -> ());
          Some (time, payload)
        | None ->
          (* Corrupt (truncated, bit-flipped, or foreign): delete so it is
             never tried again, and keep looking at older candidates. *)
          (try Sys.remove path with _ -> ());
          first rest))
  in
  first (candidates t ~fault_key ~before)

let count_hit (t : t) = t.hits <- t.hits + 1
let count_miss (t : t) = t.misses <- t.misses + 1

let stats (t : t) : stats =
  { hits = t.hits; misses = t.misses; bytes = scan_bytes t; evictions = t.evictions }
