(** Persistent, content-addressed checkpoint store.

    The prefix cache ({!Prefix_cache}) holds checkpoints in memory, so they
    die with the process. The store persists them to a directory shared
    across processes and runs: a campaign re-run with the same binary,
    configuration and seed forks from checkpoints written by an earlier
    process instead of re-simulating its clean prefix.

    {2 Key anatomy}

    A checkpoint is addressed by the MD5 of
    [(code fingerprint, canonical config bytes, canonical fault-set key)]
    plus the capture time:

    - the {e code fingerprint} defaults to the digest of the running
      executable, so checkpoints written by a different build are invisible
      (stale-fingerprint entries are never served, only evicted);
    - the {e config bytes} are {!Avis_sitl.Sim.config_to_bytes} of the
      campaign configuration (policy, bugs, seed, dt, faults profile,
      environment, airframe) plus the workload identity;
    - the {e fault-set key} is the prefix cache's canonical encoding of the
      faults active at capture time (times by their IEEE-754 bits);
    - the capture {e time} is the simulated time of the snapshot, encoded
      in the filename by its bits.

    Runs agree on a key only when their histories are bit-identical, which
    is exactly when serving the stored snapshot is sound.

    {2 Durability and corruption}

    Files are written to a temp name and atomically renamed into place, so
    concurrent writers and crashed processes never leave a partial file
    under a valid key. Every file carries a checksum header; a truncated,
    bit-flipped or otherwise malformed file is detected at read time,
    deleted, and reported as [None] — a corrupt store can cost wall-clock,
    never a wrong outcome.

    {2 Eviction}

    The store is bounded by [store_mb] (default the [AVIS_STORE_MB]
    environment variable, else 1024 MiB). When the directory exceeds the
    budget, files are deleted oldest-mtime-first — equal mtimes (coarse
    filesystem timestamp granularity) are broken deterministically by path
    order, so the surviving set does not depend on the filesystem; serving
    a checkpoint touches its mtime, making the policy LRU across
    processes.

    All I/O failures degrade to cache misses; the store never raises out of
    [put]/[lookup]. *)

type t

val create :
  ?fingerprint:string -> ?store_mb:int -> dir:string -> config_key:string -> unit -> t
(** Open (creating if needed) the store rooted at [dir]. [config_key] is
    the canonical configuration identity shared by every checkpoint this
    instance reads or writes. [fingerprint] overrides the code fingerprint
    (the digest of the running executable by default) — tests use this to
    simulate a rebuilt binary. [store_mb] bounds the directory size;
    non-positive or malformed values (including from [AVIS_STORE_MB]) are
    warned about and replaced by the 1024 MiB default. *)

val dir : t -> string

val put : t -> fault_key:string -> time:float -> payload:string Lazy.t -> unit
(** Persist a checkpoint. The payload is not forced when a file for this
    exact key and time already exists. Failures are silently ignored (the
    in-memory cache is unaffected). *)

val lookup : t -> fault_key:string -> before:float -> (float * string) option
(** The latest stored checkpoint under [fault_key] taken strictly before
    [before], with its capture time. Corrupt candidates are deleted and
    skipped. Serving a file refreshes its mtime (LRU touch). *)

val count_hit : t -> unit
(** Record that a [lookup] result was actually served. *)

val count_miss : t -> unit
(** Record that a scenario had to run cold as far as the store is
    concerned. *)

type stats = {
  hits : int;  (** Scenarios served from a stored checkpoint. *)
  misses : int;  (** Scenarios the store could not serve. *)
  bytes : int;  (** Bytes currently on disk under the store directory. *)
  evictions : int;  (** Files deleted by this instance to stay in budget. *)
}

val stats : t -> stats

val default_store_mb : int

val default_fingerprint : unit -> string
(** The code fingerprint used when [create]'s [?fingerprint] is omitted:
    the hex digest of the running executable ([Sys.executable_name]), or
    ["unknown"] when it cannot be read. {!Run_journal} keys its memos with
    the same fingerprint, so a rebuilt binary invalidates both stores and
    journals consistently. *)
