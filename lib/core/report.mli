(** Bug reports for unsafe conditions.

    When the monitor flags a run, Avis records everything needed to
    reproduce and diagnose it: the injected scenario, the violation, the
    operating mode each fault was injected in, and each fault's offset
    from the mode transition preceding it (the paper's replay mechanism
    re-injects at the same offsets from the same transitions, which makes
    reproduction robust to scheduler nondeterminism). *)

open Avis_sensors

type fault_subject =
  | Subject_sensor of Sensor.id
  | Subject_link of float
      (** A datalink outage; the payload is its duration in seconds. *)

type relative_fault = {
  subject : fault_subject;
  mode : string;  (** Mode in force when the fault began. *)
  offset_s : float;  (** Seconds after that mode was entered. *)
}

type t = {
  scenario : Scenario.t;
  violation : Monitor.violation;
  injection_mode : string;  (** Mode at the first injection. *)
  relative_faults : relative_fault list;
  triggered_bugs : Avis_firmware.Bug.id list;
      (** Ground-truth diagnostics from the instrumented firmware — used
          by the evaluation to attribute findings to reproduced bugs, not
          by the checker itself. *)
  duration : float;
}

val make : Avis_sitl.Sim.outcome -> Scenario.t -> Monitor.violation -> t

val mode_at_from_transitions :
  Avis_hinj.Hinj.transition list -> float -> string
(** Mode in force at a time, from a transition log ("Pre-Flight" before
    the first transition). *)

(** Table IV's mode buckets. *)
type mode_bucket = Takeoff_bucket | Manual_bucket | Waypoint_bucket | Land_bucket

val bucket_of_mode : string -> mode_bucket
(** Pre-Flight/Takeoff → takeoff; Waypoint legs → waypoint; Return To
    Launch/Land/Disarmed → land. *)

val all_buckets : mode_bucket list
(** Table IV's display order: takeoff, manual, waypoint, land. *)

val bucket_label : mode_bucket -> string

val injection_bucket : t -> mode_bucket

val describe : t -> string
