(** The wall-clock cost model.

    The paper gives each approach two hours of wall-clock per workload. We
    reproduce that with a deterministic accounting model instead of real
    time: simulated flight costs its duration divided by the simulator's
    real-time speed-up, and BFI's model inference costs the ~10 seconds
    per labelled scenario the paper reports. Campaigns stop when the
    budget is spent, so comparisons across approaches are equal-budget as
    in Table III. *)

type t

val min_inference_s : float
(** The floor on any inference charge (0.01 s): even a candidate the
    model rejects outright costs a feature lookup. Without the floor a
    searcher that keeps answering [Think 0.0] (e.g. a gate rejecting at
    zero cost) never advances [spent_s] and the campaign loop live-locks. *)

val create : ?speedup:float -> total_s:float -> unit -> t
(** [speedup] is simulated-seconds per wall-second (default 5). *)

val two_hours : unit -> t
(** The paper's 7200 s budget with the default speed-up. *)

val charge_simulation : t -> sim_seconds:float -> unit
(** Account a simulated run. The recorded spend saturates at [total_s]:
    a campaign is cut off when the budget clock runs out, so no ledger
    ever reports more wall-clock than it was given. *)

val charge_inference : t -> float -> unit
(** Account model-inference wall time (BFI variants). At least
    {!min_inference_s} is charged; saturates at [total_s] like
    {!charge_simulation}. *)

val spent_s : t -> float
val remaining_s : t -> float
val exhausted : t -> bool

val can_afford_run : t -> sim_seconds:float -> bool
(** Whether a run of that length still fits. *)

val simulations_run : t -> int
val inferences_run : t -> int
