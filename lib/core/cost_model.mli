(** Per-cell duration prediction for cost-model-guided scheduling.

    A campaign matrix's wall-clock is its makespan, and makespan under
    any greedy scheduler is dominated by where the long cells land — so
    both the in-process matrix runners and the hunt daemon order pending
    cells longest-predicted-first (LPT). This module supplies the
    predictions: observed mean wall-clock per cell class, keyed by the
    cell label (approach × firmware × workload — {!Campaign.label_of}),
    learned from {!Run_journal} history and from results as they
    complete.

    Prediction never affects results, only placement: per-cell seeding
    makes every cell's bytes independent of execution order, so a wrong
    prediction costs wall-clock, never correctness.

    Not thread-safe: observe and predict from one domain (the daemon's
    select loop, or a matrix runner before its pool fans out). *)

type t

val create : unit -> t
(** An empty model: every prediction is the budget-derived fallback. *)

val of_journal : Run_journal.t -> t
(** A model primed from every journal record that carries an
    [elapsed_bits] duration (records from older journals without the
    field contribute nothing — they still memo-serve as always). *)

val observe :
  ?spent_s:float -> t -> label:string -> elapsed_s:float -> unit
(** Record that a cell of class [label] took [elapsed_s] real seconds.
    [spent_s] is the modelled budget charge of the same run; when given
    it trains the global real-per-modelled-second ratio that powers the
    budget-derived fallback for never-seen classes. *)

val observe_record : t -> Run_journal.record -> unit
(** {!observe} from a journal record; a no-op when the record predates
    the [elapsed_bits] field. *)

val predict : t -> label:string -> budget_s:float -> float
(** Predicted duration in seconds for one cell: the observed mean for
    [label] when the class has history; otherwise [budget_s] scaled by
    the global observed real-per-modelled-second ratio; with no
    observations at all, [budget_s] itself. All three tiers order
    consistently under a uniform budget, so LPT degrades to arrival
    order exactly when the model knows nothing. *)

val observations : t -> int
(** Total observations across all classes (diagnostics/logging). *)
