(** Rotor model with first-order spin-up lag.

    The flight stack commands a throttle fraction per motor; actual thrust
    follows the command with a small time constant, which is what makes
    abrupt attitude-controller output physically bounded. Motors are laid
    out in an X configuration; [mix_layout] gives each motor's position and
    spin direction for torque computation.

    [step] refreshes a cached per-motor thrust table and its sum, so
    [total_thrust] and [body_torque_into] are allocation-free; the original
    allocating [body_torque] is kept as the hot-loop bench's cold
    baseline. *)

open Avis_geo

type t

val create : Airframe.t -> t
(** All motors at rest. *)

val copy : t -> t
(** An independent deep copy of the rotor state. *)

val command : t -> float array -> unit
(** Set commanded throttle per motor, clamped to [\[0, 1\]]. The array length
    must equal the airframe's motor count. *)

val step : t -> float -> unit
(** Advance rotor dynamics by [dt] seconds and refresh the thrust cache. *)

val thrusts : t -> float array
(** Current thrust per motor, newtons (fresh array per call). *)

val total_thrust : t -> float
(** Cached sum of the per-motor thrusts; O(1), no allocation. *)

val total_thrust_cell : t -> float array
(** The single-cell buffer behind {!total_thrust}, as a read-only view:
    lets the step kernel read the total without a boxed float crossing the
    module boundary. Do not write to it. *)

val body_torque : t -> rate:Vec3.t -> airspeed_body:Vec3.t -> Vec3.t
(** Net torque in the body frame from differential thrust, reaction
    torques, and blade flapping (a moment opposing roll/pitch [rate] plus a
    flap-back moment against the perpendicular [airspeed_body]) — the
    passive stability real rotors provide. Reference implementation;
    allocates intermediates. *)

val body_torque_into :
  t -> rate:Vec3.Mut.vec -> airspeed_body:Vec3.Mut.vec -> dst:Vec3.Mut.vec -> unit
(** [body_torque], bit-identically, into preallocated scratch. *)

val mix_layout : Airframe.t -> (Vec3.t * float) array
(** Per-motor [(position in body frame, spin direction ±1)]. *)

val layout : t -> (Vec3.t * float) array
(** This bank's layout (shared, immutable) — the lane kernel iterates it
    when replicating {!body_torque_into} column-wise. Do not mutate. *)

val float_count : t -> int
(** Float slots this motor bank needs in a flat snapshot blob. *)

val blit_to_floats : t -> float array -> pos:int -> unit
val restore_floats : t -> float array -> pos:int -> unit
(** Write/read commanded and actual fractions; [restore_floats] rebuilds
    the derived thrust cache. *)
