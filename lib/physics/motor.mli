(** Rotor model with first-order spin-up lag.

    The flight stack commands a throttle fraction per motor; actual thrust
    follows the command with a small time constant, which is what makes
    abrupt attitude-controller output physically bounded. Motors are laid
    out in an X configuration; [mix_layout] gives each motor's position and
    spin direction for torque computation. *)

open Avis_geo

type t

val create : Airframe.t -> t
(** All motors at rest. *)

val copy : t -> t
(** An independent deep copy of the rotor state. *)

val command : t -> float array -> unit
(** Set commanded throttle per motor, clamped to [\[0, 1\]]. The array length
    must equal the airframe's motor count. *)

val step : t -> float -> unit
(** Advance rotor dynamics by [dt] seconds. *)

val thrusts : t -> float array
(** Current thrust per motor, newtons. *)

val total_thrust : t -> float

val body_torque : t -> rate:Vec3.t -> airspeed_body:Vec3.t -> Vec3.t
(** Net torque in the body frame from differential thrust, reaction
    torques, and blade flapping (a moment opposing roll/pitch [rate] plus a
    flap-back moment against the perpendicular [airspeed_body]) — the
    passive stability real rotors provide. *)

val mix_layout : Airframe.t -> (Vec3.t * float) array
(** Per-motor [(position in body frame, spin direction ±1)]. *)
