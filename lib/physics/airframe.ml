open Avis_geo

type t = {
  name : string;
  mass_kg : float;
  arm_length_m : float;
  inertia : Vec3.t;
  motor_count : int;
  max_thrust_per_motor_n : float;
  motor_time_constant_s : float;
  torque_per_thrust : float;
  flap_rate_damping : float;
  flap_back : float;
  linear_drag : float;
  angular_drag : float;
}

let gravity = 9.80665

let iris =
  {
    name = "3DR Iris";
    mass_kg = 1.5;
    arm_length_m = 0.25;
    inertia = Vec3.make 0.029125 0.029125 0.055225;
    motor_count = 4;
    max_thrust_per_motor_n = 8.0;
    motor_time_constant_s = 0.05;
    torque_per_thrust = 0.016;
    flap_rate_damping = 0.12;
    flap_back = 0.02;
    linear_drag = 0.35;
    angular_drag = 0.02;
  }

let hexa =
  {
    name = "Hexa 550";
    mass_kg = 2.6;
    arm_length_m = 0.275;
    inertia = Vec3.make 0.052 0.052 0.096;
    motor_count = 6;
    max_thrust_per_motor_n = 9.5;
    motor_time_constant_s = 0.06;
    torque_per_thrust = 0.018;
    flap_rate_damping = 0.16;
    flap_back = 0.024;
    linear_drag = 0.5;
    angular_drag = 0.03;
  }

let by_name name =
  List.find_opt (fun frame -> frame.name = name) [ iris; hexa ]

let[@inline] max_total_thrust_n t =
  float_of_int t.motor_count *. t.max_thrust_per_motor_n

let[@inline] hover_throttle t = t.mass_kg *. gravity /. max_total_thrust_n t
