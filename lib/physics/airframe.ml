open Avis_geo

type t = {
  name : string;
  mass_kg : float;
  arm_length_m : float;
  inertia : Vec3.t;
  motor_count : int;
  max_thrust_per_motor_n : float;
  motor_time_constant_s : float;
  torque_per_thrust : float;
  flap_rate_damping : float;
  flap_back : float;
  linear_drag : float;
  angular_drag : float;
}

let gravity = 9.80665

let iris =
  {
    name = "3DR Iris";
    mass_kg = 1.5;
    arm_length_m = 0.25;
    inertia = Vec3.make 0.029125 0.029125 0.055225;
    motor_count = 4;
    max_thrust_per_motor_n = 8.0;
    motor_time_constant_s = 0.05;
    torque_per_thrust = 0.016;
    flap_rate_damping = 0.12;
    flap_back = 0.02;
    linear_drag = 0.35;
    angular_drag = 0.02;
  }

let hexa =
  {
    name = "Hexa 550";
    mass_kg = 2.6;
    arm_length_m = 0.275;
    inertia = Vec3.make 0.052 0.052 0.096;
    motor_count = 6;
    max_thrust_per_motor_n = 9.5;
    motor_time_constant_s = 0.06;
    torque_per_thrust = 0.018;
    flap_rate_damping = 0.16;
    flap_back = 0.024;
    linear_drag = 0.5;
    angular_drag = 0.03;
  }

let by_name name =
  List.find_opt (fun frame -> frame.name = name) [ iris; hexa ]

(* The full record is serialised (not just the name) so snapshots of
   hand-constructed airframes survive too. *)
let encode b t =
  let open Avis_util.Codec in
  w_version b 1;
  w_string b t.name;
  w_f64 b t.mass_kg;
  w_f64 b t.arm_length_m;
  Vec3.encode b t.inertia;
  w_int b t.motor_count;
  w_f64 b t.max_thrust_per_motor_n;
  w_f64 b t.motor_time_constant_s;
  w_f64 b t.torque_per_thrust;
  w_f64 b t.flap_rate_damping;
  w_f64 b t.flap_back;
  w_f64 b t.linear_drag;
  w_f64 b t.angular_drag

let decode r =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let name = r_string r in
  let mass_kg = r_f64 r in
  let arm_length_m = r_f64 r in
  let inertia = Vec3.decode r in
  let motor_count = r_int r in
  if motor_count <= 0 || motor_count > 64 then
    corrupt "bad motor count %d" motor_count;
  let max_thrust_per_motor_n = r_f64 r in
  let motor_time_constant_s = r_f64 r in
  let torque_per_thrust = r_f64 r in
  let flap_rate_damping = r_f64 r in
  let flap_back = r_f64 r in
  let linear_drag = r_f64 r in
  let angular_drag = r_f64 r in
  {
    name;
    mass_kg;
    arm_length_m;
    inertia;
    motor_count;
    max_thrust_per_motor_n;
    motor_time_constant_s;
    torque_per_thrust;
    flap_rate_damping;
    flap_back;
    linear_drag;
    angular_drag;
  }

let[@inline] max_total_thrust_n t =
  float_of_int t.motor_count *. t.max_thrust_per_motor_n

let[@inline] hover_throttle t = t.mass_kg *. gravity /. max_total_thrust_n t
