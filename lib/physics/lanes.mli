(** Structure-of-arrays batched multi-world stepping.

    A [t] is a fixed-width batch of lanes; each lane holds one world's
    per-step state (rigid body, motor bank, clock, latched flags) as
    entries in preallocated float columns, advanced in lock-step by a
    single allocation-free inner loop whose arithmetic replicates
    {!World.step} expression for expression. Each lane's trajectory is
    bit-identical ([Int64.bits_of_float]) to stepping its world alone —
    [World.step]/[World.step_reference] remain the oracle, and the
    identity property tests compare against both.

    A lane {e adopts} a live {!World.t}: scalar state is gathered into the
    columns; the world's physics RNG and gust cell are shared by pointer so
    the lane draws the world's own random stream in the same order.
    [flush] scatters the columns back so the world object stays a coherent
    view (the batched SITL driver flushes every step so firmware, monitors
    and snapshots read fresh state); [release] flushes and frees the slot
    for the next scenario in the campaign queue. *)

type t

val create : width:int -> motor_count:int -> t
(** A batch of [width] free lanes for airframes with [motor_count] motors.
    All columns are preallocated here; nothing allocates per step. *)

val width : t -> int

val active : t -> int
(** Number of currently adopted lanes. *)

val is_active : t -> int -> bool

val free_slot : t -> int option
(** Lowest free lane index, if any. *)

val world : t -> int -> World.t option
(** The world bound to a lane, if the lane is active. *)

val adopt : t -> int -> World.t -> unit
(** [adopt t i w] gathers [w] into lane [i] and binds them. The lane must
    be free and [w]'s airframe must have [motor_count] motors. After
    adoption, step the lane (not the world): the world's scalar state is
    stale until the next [flush]. *)

val flush : t -> int -> unit
(** Scatter lane [i]'s columns back into its bound world. *)

val release : t -> int -> unit
(** Flush lane [i] and free the slot. *)

val step :
  t -> int -> motor_commands:float array -> dt:float ->
  World.contact_event option
(** Advance lane [i] one time-step and flush, so the bound world is
    immediately coherent — the batched SITL driver's per-step call. Same
    contract as {!World.step}: after a crash the lane latches and further
    steps only advance the clock. *)

val step_resident :
  t -> int -> motor_commands:float array -> dt:float ->
  World.contact_event option
(** [step] without the flush: state stays resident in the columns until an
    explicit [flush]/[release]. The hot-loop bench steps resident lanes. *)

val step_all : t -> motor_commands:float array -> dt:float -> unit
(** One lock-step round: [step_resident] on every active lane with the
    same commands, discarding events (crashes still latch per lane). *)
