open Avis_geo

type obstacle = { centre : Vec3.t; half_extents : Vec3.t; label : string }

type fence = { centre_xy : Vec3.t; radius_m : float; max_alt_m : float }

type wind = {
  steady : Vec3.t;
  gust_stddev : float;
  gust_correlation_s : float;
}

type t = {
  obstacles : obstacle list;
  fence : fence option;
  wind : wind option;
  mutable gust : Vec3.t;
}

let create ?(obstacles = []) ?(fence = None) ?(wind = None) () =
  { obstacles; fence; wind; gust = Vec3.zero }

let benign () = create ()

let copy t =
  (* Obstacles, fence and wind spec are immutable; only the gust state is
     mutable. *)
  { obstacles = t.obstacles; fence = t.fence; wind = t.wind; gust = t.gust }

let obstacles t = t.obstacles
let fence t = t.fence

let wind_at t rng dt =
  match t.wind with
  | None -> Vec3.zero
  | Some w ->
    (* Ornstein-Uhlenbeck gusts: exponentially correlated noise around the
       steady component. *)
    let tau = Float.max 1e-3 w.gust_correlation_s in
    let alpha = exp (-.dt /. tau) in
    let sigma = w.gust_stddev *. sqrt (1.0 -. (alpha *. alpha)) in
    let noise =
      Vec3.make
        (Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:sigma)
        (Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:sigma)
        (Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:(sigma /. 3.0))
    in
    t.gust <- Vec3.add (Vec3.scale alpha t.gust) noise;
    Vec3.add w.steady t.gust

let ground_altitude _t _pos = 0.0

let inside_obstacle t pos =
  let contains o =
    let open Vec3 in
    let d = sub pos o.centre in
    Float.abs d.x <= o.half_extents.x
    && Float.abs d.y <= o.half_extents.y
    && Float.abs d.z <= o.half_extents.z
  in
  List.find_opt contains t.obstacles

let breaches_fence t pos =
  match t.fence with
  | None -> false
  | Some f ->
    let open Vec3 in
    let d = horizontal (sub pos f.centre_xy) in
    norm d > f.radius_m || pos.z > f.max_alt_m
