open Avis_geo

type obstacle = { centre : Vec3.t; half_extents : Vec3.t; label : string }

type fence = { centre_xy : Vec3.t; radius_m : float; max_alt_m : float }

type wind = {
  steady : Vec3.t;
  gust_stddev : float;
  gust_correlation_s : float;
}

type t = {
  obstacles : obstacle list;
  fence : fence option;
  wind : wind option;
  gust : Vec3.Mut.vec; (* updated in place by the step kernel *)
}

let create ?(obstacles = []) ?(fence = None) ?(wind = None) () =
  { obstacles; fence; wind; gust = Vec3.Mut.create () }

let benign () = create ()

let copy t =
  (* Obstacles, fence and wind spec are immutable; only the gust state is
     mutable. *)
  { obstacles = t.obstacles; fence = t.fence; wind = t.wind;
    gust = Vec3.Mut.copy t.gust }

let obstacles t = t.obstacles
let fence t = t.fence

(* Lane hooks: the batched stepper precomputes the gust filter constants
   from the (immutable) wind spec and updates the gust state through the
   cell pointer, exactly as [wind_into] would. *)
let wind_spec t = t.wind
let gust_cell t = t.gust

let encode_obstacle b o =
  Vec3.encode b o.centre;
  Vec3.encode b o.half_extents;
  Avis_util.Codec.w_string b o.label

let decode_obstacle r =
  let centre = Vec3.decode r in
  let half_extents = Vec3.decode r in
  let label = Avis_util.Codec.r_string r in
  { centre; half_extents; label }

let encode b t =
  let open Avis_util.Codec in
  w_version b 1;
  w_list b encode_obstacle t.obstacles;
  w_option b
    (fun b f ->
      Vec3.encode b f.centre_xy;
      w_f64 b f.radius_m;
      w_f64 b f.max_alt_m)
    t.fence;
  w_option b
    (fun b w ->
      Vec3.encode b w.steady;
      w_f64 b w.gust_stddev;
      w_f64 b w.gust_correlation_s)
    t.wind;
  w_f64 b t.gust.Vec3.Mut.x;
  w_f64 b t.gust.Vec3.Mut.y;
  w_f64 b t.gust.Vec3.Mut.z

let decode r =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let obstacles = r_list r decode_obstacle in
  let fence =
    r_option r (fun r ->
        let centre_xy = Vec3.decode r in
        let radius_m = r_f64 r in
        let max_alt_m = r_f64 r in
        { centre_xy; radius_m; max_alt_m })
  in
  let wind =
    r_option r (fun r ->
        let steady = Vec3.decode r in
        let gust_stddev = r_f64 r in
        let gust_correlation_s = r_f64 r in
        { steady; gust_stddev; gust_correlation_s })
  in
  let gust = Vec3.Mut.create () in
  gust.Vec3.Mut.x <- r_f64 r;
  gust.Vec3.Mut.y <- r_f64 r;
  gust.Vec3.Mut.z <- r_f64 r;
  { obstacles; fence; wind; gust }

(* Advance the gust process and write the current wind into [dst] — the
   single implementation [wind_at] also goes through, so both paths draw
   the same randomness and compute the same floats. Calm environments are
   allocation- and RNG-free. *)
let wind_into t rng dt (dst : Vec3.Mut.vec) =
  match t.wind with
  | None ->
    dst.Vec3.Mut.x <- 0.0;
    dst.Vec3.Mut.y <- 0.0;
    dst.Vec3.Mut.z <- 0.0
  | Some w ->
    (* Ornstein-Uhlenbeck gusts: exponentially correlated noise around the
       steady component. *)
    let tau = Float.max 1e-3 w.gust_correlation_s in
    let alpha = exp (-.dt /. tau) in
    let sigma = w.gust_stddev *. sqrt (1.0 -. (alpha *. alpha)) in
    (* The original built the noise vector with [Vec3.make g g g'], whose
       arguments evaluate right to left — so the z draw comes first. Keep
       that order or every windy run's randomness shifts. *)
    let nz = Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:(sigma /. 3.0) in
    let ny = Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:sigma in
    let nx = Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:sigma in
    let g = t.gust in
    g.Vec3.Mut.x <- (alpha *. g.Vec3.Mut.x) +. nx;
    g.Vec3.Mut.y <- (alpha *. g.Vec3.Mut.y) +. ny;
    g.Vec3.Mut.z <- (alpha *. g.Vec3.Mut.z) +. nz;
    dst.Vec3.Mut.x <- w.steady.Vec3.x +. g.Vec3.Mut.x;
    dst.Vec3.Mut.y <- w.steady.Vec3.y +. g.Vec3.Mut.y;
    dst.Vec3.Mut.z <- w.steady.Vec3.z +. g.Vec3.Mut.z

let wind_at t rng dt =
  match t.wind with
  | None -> Vec3.zero
  | Some _ ->
    let dst = Vec3.Mut.create () in
    wind_into t rng dt dst;
    Vec3.Mut.to_t dst

let ground_altitude _t _pos = 0.0
let[@inline] ground_altitude_xyz _t ~x:_ ~y:_ = 0.0

(* Pointer-only variant for the step kernel: writes the ground level under
   [pos] into the single-cell [dst]. No float crosses the call, so it stays
   allocation-free even without cross-module inlining. *)
let ground_altitude_into _t ~pos:(_ : Vec3.Mut.vec) (dst : float array) =
  dst.(0) <- 0.0

let[@inline] contains_xyz o ~x ~y ~z =
  let dx = x -. o.centre.Vec3.x in
  let dy = y -. o.centre.Vec3.y in
  let dz = z -. o.centre.Vec3.z in
  Float.abs dx <= o.half_extents.Vec3.x
  && Float.abs dy <= o.half_extents.Vec3.y
  && Float.abs dz <= o.half_extents.Vec3.z

(* Top-level recursion (not an inner closure) so the empty-obstacle probe
   allocates nothing for the environment. *)
let rec find_obstacle obstacles ~x ~y ~z =
  match obstacles with
  | [] -> None
  | o :: rest ->
    if contains_xyz o ~x ~y ~z then Some o else find_obstacle rest ~x ~y ~z

let obstacle_at t ~x ~y ~z = find_obstacle t.obstacles ~x ~y ~z

let[@inline] has_obstacles t = t.obstacles <> []
let[@inline] has_fence t = t.fence <> None

let inside_obstacle t pos =
  obstacle_at t ~x:pos.Vec3.x ~y:pos.Vec3.y ~z:pos.Vec3.z

let[@inline] breaches_fence_xyz t ~x ~y ~z =
  match t.fence with
  | None -> false
  | Some f ->
    (* horizontal (pos - centre), then its norm — spelled out so the fence
       check never allocates. *)
    let dx = x -. f.centre_xy.Vec3.x in
    let dy = y -. f.centre_xy.Vec3.y in
    let n = sqrt ((dx *. dx) +. (dy *. dy) +. (0.0 *. 0.0)) in
    n > f.radius_m || z > f.max_alt_m

let breaches_fence t pos =
  breaches_fence_xyz t ~x:pos.Vec3.x ~y:pos.Vec3.y ~z:pos.Vec3.z
