(** The simulated physical world: ground, obstacles, geofence and wind.

    The paper's environments contain obstacles and weather effects; the
    default evaluation environment is flat, obstacle-free and calm, and that
    is the default here too ([benign]). Obstacles are axis-aligned boxes;
    the geofence is an optional horizontal circle plus an altitude ceiling,
    matching the fence semantics the second default workload exercises. *)

open Avis_geo

type obstacle = { centre : Vec3.t; half_extents : Vec3.t; label : string }

type fence = { centre_xy : Vec3.t; radius_m : float; max_alt_m : float }

type wind = {
  steady : Vec3.t;  (** Constant component, m/s. *)
  gust_stddev : float;  (** Strength of the coloured-noise gusts. *)
  gust_correlation_s : float;  (** Gust time constant. *)
}

type t

val benign : unit -> t
(** Flat ground, no obstacles, no fence, no wind. *)

val create :
  ?obstacles:obstacle list -> ?fence:fence option -> ?wind:wind option -> unit -> t

val copy : t -> t
(** An independent copy, including the current gust state. *)

val obstacles : t -> obstacle list
val fence : t -> fence option

val wind_spec : t -> wind option
(** The immutable wind specification, if any — the lane kernel derives its
    per-lane gust filter constants from it. *)

val gust_cell : t -> Vec3.Mut.vec
(** The live gust state, as the cell the step kernels update in place. The
    batched stepper advances it through this pointer so a lane's gust
    process is the world's own. Treat as owned by the stepper. *)

val encode : Buffer.t -> t -> unit
(** Versioned binary layout: obstacles, fence, wind spec and the current
    gust state (so a decoded environment resumes the same gust process). *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}; raises [Avis_util.Codec.Corrupt] on malformed
    input. *)

val wind_at : t -> Avis_util.Rng.t -> float -> Vec3.t
(** [wind_at t rng dt] advances the gust process by [dt] and returns the
    current wind vector. Calm environments always return zero. *)

val wind_into : t -> Avis_util.Rng.t -> float -> Vec3.Mut.vec -> unit
(** [wind_at] into preallocated scratch — the same implementation (same
    RNG draws, same floats); allocation-free, and calm environments also
    draw no randomness. *)

val ground_altitude : t -> Vec3.t -> float
(** Terrain height under a position; the default world is flat at 0. *)

val ground_altitude_xyz : t -> x:float -> y:float -> float
(** [ground_altitude] from raw components (hot path). *)

val ground_altitude_into : t -> pos:Vec3.Mut.vec -> float array -> unit
(** Write the ground level under [pos] into the single-cell destination;
    only pointers cross the call, so the step kernel stays allocation-free
    without relying on cross-module inlining. *)

val has_obstacles : t -> bool
val has_fence : t -> bool
(** Allocation-free guards so the step kernel can skip the obstacle/fence
    probes entirely in environments without them. *)

val inside_obstacle : t -> Vec3.t -> obstacle option
(** The first obstacle containing the point, if any. *)

val obstacle_at : t -> x:float -> y:float -> z:float -> obstacle option
(** [inside_obstacle] from raw components; allocates only on a hit. *)

val breaches_fence : t -> Vec3.t -> bool
(** True when a fence exists and the point lies outside it. *)

val breaches_fence_xyz : t -> x:float -> y:float -> z:float -> bool
(** [breaches_fence] from raw components, allocation-free. *)
