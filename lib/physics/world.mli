(** The complete simulated vehicle-in-environment.

    One [step] is the simulation time-step of the paper's Fig. 7: the
    firmware's actuator outputs (motor commands) go in, the new physical
    state comes out, and any contact events are recorded. The contact model
    distinguishes a gentle touchdown (the vehicle comes to rest) from a hard
    impact or an obstacle strike, which is what the invariant monitor's
    crash detector consumes.

    [step] runs against preallocated scratch and performs no minor-heap
    allocation in steady flight or steady rest (events allocate, but fire
    at most once per contact). [step_reference] is the pre-optimisation
    allocating implementation, kept as the bench baseline and the identity
    oracle — the two produce bit-identical trajectories. *)

open Avis_geo

type contact_event =
  | Touchdown of { speed : float }
      (** Ground contact below the crash threshold; the vehicle settles. *)
  | Ground_impact of { speed : float }
      (** Ground contact above the crash threshold — a crash. *)
  | Obstacle_strike of { label : string; speed : float }
  | Tipover
      (** The vehicle is on the ground with excessive tilt. *)

type t

val create :
  ?environment:Environment.t ->
  ?rng:Avis_util.Rng.t ->
  ?airframe:Airframe.t ->
  ?position:Vec3.t ->
  unit ->
  t

val copy : t -> t
(** An independent deep copy: shared immutable structure, copied mutable
    state, fresh scratch. *)

type snapshot
(** A frozen copy of the whole physical state: the numeric state (body,
    motors, clock, latched flags) flattened into one float blob, plus the
    gust process and physics RNG. Immutable structure is shared with the
    live world. *)

val snapshot : t -> snapshot
val restore : snapshot -> t
(** [restore] yields a fresh world; one snapshot may be restored any number
    of times, each restore independent of the others. *)

val snapshot_bytes : snapshot -> int
(** Exact size in bytes of the snapshot's numeric payload. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
(** Versioned binary layout: airframe, environment, physics RNG, latched
    crash event, and the numeric float blob by bit pattern. *)

val decode_snapshot : Avis_util.Codec.reader -> snapshot
(** Inverse of {!encode_snapshot}; raises [Avis_util.Codec.Corrupt] on
    malformed input, including a blob whose length disagrees with the
    airframe's motor count. *)

val airframe : t -> Airframe.t
val environment : t -> Environment.t
val body : t -> Rigid_body.t

val time : t -> float
(** Simulated seconds since creation. *)

val on_ground : t -> bool

val step : t -> motor_commands:float array -> dt:float -> contact_event option
(** Advance one time-step. Returns the contact event produced during this
    step, if any. After a [Ground_impact], [Obstacle_strike] or [Tipover]
    the world latches [crashed] and further steps keep the vehicle where it
    stopped. *)

val step_reference :
  t -> motor_commands:float array -> dt:float -> contact_event option
(** The pre-optimisation allocating [step], preserved verbatim: same float
    expressions, same RNG draws, bit-identical trajectory. Cold baseline for
    the hot-loop bench and oracle for the identity tests. *)

val crashed : t -> bool

val crash_event : t -> contact_event option
(** The latched crash, if one occurred. *)

val fence_breached : t -> bool
(** True once the vehicle has ever left the geofence (latched). *)

val pp_contact : Format.formatter -> contact_event -> unit

(** {2 Lane hooks}

    Narrow access for the structure-of-arrays batched stepper
    ({!Lanes}), which gathers a world's per-step state into columns,
    advances it there with kernels bit-identical to [step], and scatters
    the result back. Everything below exists for that gather/scatter pair;
    ordinary clients should not need it. *)

type clock = { mutable elapsed : float }
(** The simulated clock in its own all-float record, so storing to it never
    boxes (the reason [t] does not use a [mutable float] field). *)

val clock : t -> clock
val rng : t -> Avis_util.Rng.t
val motors : t -> Motor.t
val resting : t -> bool

val set_crashed : t -> bool -> unit
val set_fence_breached : t -> bool -> unit
val set_resting : t -> bool -> unit
val set_crash_event : t -> contact_event option -> unit

val crash_sink_speed : float
val crash_lateral_speed : float
val tipover_tilt_rad : float
val ground_friction : float
(** The contact-model constants, exported so the lane kernel reproduces
    [step]'s thresholds from the same definitions. *)
