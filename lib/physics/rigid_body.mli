(** Six-degree-of-freedom rigid-body state and integration.

    Positions are metres in the local world frame (z up); attitudes map body
    vectors to world vectors. Integration is semi-implicit Euler, which is
    stable at the simulator's 250 Hz step for this system's stiffness.

    The state is held in mutable all-float records ({!Avis_geo.Vec3.Mut},
    {!Avis_geo.Quat.Mut}) so [step] updates it in place without allocating;
    the [*_v] accessors materialise immutable values for cold-path
    consumers. *)

open Avis_geo

type t = {
  position : Vec3.Mut.vec;
  velocity : Vec3.Mut.vec;
  attitude : Quat.Mut.quat;
  angular_velocity : Vec3.Mut.vec;  (** Body frame, rad/s. *)
  acceleration : Vec3.Mut.vec;  (** World frame, latest step, m/s². *)
}

val create : ?position:Vec3.t -> unit -> t
(** At rest, level, at the given position (origin by default). *)

val copy : t -> t
(** An independent deep copy; mutating one does not affect the other. *)

val position_v : t -> Vec3.t
val velocity_v : t -> Vec3.t
val attitude_q : t -> Quat.t
val angular_velocity_v : t -> Vec3.t
val acceleration_v : t -> Vec3.t

val set_position : t -> Vec3.t -> unit
val set_velocity : t -> Vec3.t -> unit
val set_attitude : t -> Quat.t -> unit
val set_angular_velocity : t -> Vec3.t -> unit
val set_acceleration : t -> Vec3.t -> unit

val float_count : int
(** Number of float components in the flat state (16): position, velocity,
    attitude, angular velocity, acceleration. *)

val blit_to_floats : t -> float array -> pos:int -> unit
(** Flatten the state into [float_count] consecutive slots of a blob. *)

val of_floats : float array -> pos:int -> t
(** Rebuild a body from a blob written by {!blit_to_floats}. *)

val step :
  t ->
  inertia:Vec3.t ->
  mass:float ->
  force:Vec3.Mut.vec ->
  torque:Vec3.Mut.vec ->
  dt:float ->
  unit
(** Advance by [dt] under a world-frame [force] (newtons, gravity included by
    the caller) and a body-frame [torque] (N·m). Updates [acceleration].
    Allocation-free. *)

val specific_force_body : t -> Vec3.t
(** What an ideal accelerometer strapped to the body reads: the world
    acceleration minus gravity, rotated into the body frame. *)

val speed : t -> float
val horizontal_speed : t -> float
val climb_rate : t -> float
