(** Six-degree-of-freedom rigid-body state and integration.

    Positions are metres in the local world frame (z up); attitudes map body
    vectors to world vectors. Integration is semi-implicit Euler, which is
    stable at the simulator's 250 Hz step for this system's stiffness. *)

open Avis_geo

type t = {
  mutable position : Vec3.t;
  mutable velocity : Vec3.t;
  mutable attitude : Quat.t;
  mutable angular_velocity : Vec3.t;  (** Body frame, rad/s. *)
  mutable acceleration : Vec3.t;  (** World frame, latest step, m/s². *)
}

val create : ?position:Vec3.t -> unit -> t
(** At rest, level, at the given position (origin by default). *)

val copy : t -> t
(** An independent deep copy; mutating one does not affect the other. *)

val step :
  t -> inertia:Vec3.t -> mass:float -> force:Vec3.t -> torque:Vec3.t -> dt:float -> unit
(** Advance by [dt] under a world-frame [force] (newtons, gravity included by
    the caller) and a body-frame [torque] (N·m). Updates [acceleration]. *)

val specific_force_body : t -> Vec3.t
(** What an ideal accelerometer strapped to the body reads: the world
    acceleration minus gravity, rotated into the body frame. *)

val speed : t -> float
val horizontal_speed : t -> float
val climb_rate : t -> float
