open Avis_geo

(* The state lives in mutable all-float records (flat storage): the step
   kernel updates components in place, so steady-state integration performs
   no minor-heap allocation. The *_v accessors materialise immutable values
   for cold-path consumers (monitors, estimator rigs, tests). *)
type t = {
  position : Vec3.Mut.vec;
  velocity : Vec3.Mut.vec;
  attitude : Quat.Mut.quat;
  angular_velocity : Vec3.Mut.vec;
  acceleration : Vec3.Mut.vec;
}

let create ?(position = Vec3.zero) () =
  {
    position = Vec3.Mut.of_t position;
    velocity = Vec3.Mut.create ();
    attitude = Quat.Mut.create ();
    angular_velocity = Vec3.Mut.create ();
    acceleration = Vec3.Mut.create ();
  }

let copy t =
  {
    position = Vec3.Mut.copy t.position;
    velocity = Vec3.Mut.copy t.velocity;
    attitude = Quat.Mut.copy t.attitude;
    angular_velocity = Vec3.Mut.copy t.angular_velocity;
    acceleration = Vec3.Mut.copy t.acceleration;
  }

let position_v t = Vec3.Mut.to_t t.position
let velocity_v t = Vec3.Mut.to_t t.velocity
let attitude_q t = Quat.Mut.to_t t.attitude
let angular_velocity_v t = Vec3.Mut.to_t t.angular_velocity
let acceleration_v t = Vec3.Mut.to_t t.acceleration

let set_position t v = Vec3.Mut.blit_t v t.position
let set_velocity t v = Vec3.Mut.blit_t v t.velocity
let set_attitude t q = Quat.Mut.blit_t q t.attitude
let set_angular_velocity t v = Vec3.Mut.blit_t v t.angular_velocity
let set_acceleration t v = Vec3.Mut.blit_t v t.acceleration

(* Number of float components in the flat state, for compact snapshots. *)
let float_count = 16

let blit_to_floats t (dst : float array) ~pos =
  let open Vec3.Mut in
  dst.(pos) <- t.position.x;
  dst.(pos + 1) <- t.position.y;
  dst.(pos + 2) <- t.position.z;
  dst.(pos + 3) <- t.velocity.x;
  dst.(pos + 4) <- t.velocity.y;
  dst.(pos + 5) <- t.velocity.z;
  dst.(pos + 6) <- t.attitude.Quat.Mut.w;
  dst.(pos + 7) <- t.attitude.Quat.Mut.x;
  dst.(pos + 8) <- t.attitude.Quat.Mut.y;
  dst.(pos + 9) <- t.attitude.Quat.Mut.z;
  dst.(pos + 10) <- t.angular_velocity.x;
  dst.(pos + 11) <- t.angular_velocity.y;
  dst.(pos + 12) <- t.angular_velocity.z;
  dst.(pos + 13) <- t.acceleration.x;
  dst.(pos + 14) <- t.acceleration.y;
  dst.(pos + 15) <- t.acceleration.z

let of_floats (src : float array) ~pos =
  let t = create () in
  let open Vec3.Mut in
  t.position.x <- src.(pos);
  t.position.y <- src.(pos + 1);
  t.position.z <- src.(pos + 2);
  t.velocity.x <- src.(pos + 3);
  t.velocity.y <- src.(pos + 4);
  t.velocity.z <- src.(pos + 5);
  t.attitude.Quat.Mut.w <- src.(pos + 6);
  t.attitude.Quat.Mut.x <- src.(pos + 7);
  t.attitude.Quat.Mut.y <- src.(pos + 8);
  t.attitude.Quat.Mut.z <- src.(pos + 9);
  t.angular_velocity.x <- src.(pos + 10);
  t.angular_velocity.y <- src.(pos + 11);
  t.angular_velocity.z <- src.(pos + 12);
  t.acceleration.x <- src.(pos + 13);
  t.acceleration.y <- src.(pos + 14);
  t.acceleration.z <- src.(pos + 15);
  t

let step t ~inertia ~mass ~(force : Vec3.Mut.vec) ~(torque : Vec3.Mut.vec) ~dt =
  let open Vec3.Mut in
  let inv_mass = 1.0 /. mass in
  let a = t.acceleration in
  a.x <- inv_mass *. force.x;
  a.y <- inv_mass *. force.y;
  a.z <- inv_mass *. force.z;
  (* Semi-implicit Euler: update velocity first, then position with the new
     velocity, which keeps the contact dynamics stable. *)
  let v = t.velocity in
  v.x <- v.x +. (dt *. a.x);
  v.y <- v.y +. (dt *. a.y);
  v.z <- v.z +. (dt *. a.z);
  let p = t.position in
  p.x <- p.x +. (dt *. v.x);
  p.y <- p.y +. (dt *. v.y);
  p.z <- p.z +. (dt *. v.z);
  let o = t.angular_velocity in
  let ox = o.x and oy = o.y and oz = o.z in
  (* Euler's equations with a diagonal inertia tensor. *)
  let cx = (inertia.Vec3.z -. inertia.Vec3.y) *. oy *. oz in
  let cy = (inertia.Vec3.x -. inertia.Vec3.z) *. oz *. ox in
  let cz = (inertia.Vec3.y -. inertia.Vec3.x) *. ox *. oy in
  let ax = (torque.x -. cx) /. inertia.Vec3.x in
  let ay = (torque.y -. cy) /. inertia.Vec3.y in
  let az = (torque.z -. cz) /. inertia.Vec3.z in
  o.x <- ox +. (dt *. ax);
  o.y <- oy +. (dt *. ay);
  o.z <- oz +. (dt *. az);
  Quat.Mut.integrate t.attitude o dt

let specific_force_body t =
  let gravity = Vec3.make 0.0 0.0 (-.Airframe.gravity) in
  Quat.rotate_inv (attitude_q t) (Vec3.sub (acceleration_v t) gravity)

let[@inline] speed t =
  let open Vec3.Mut in
  let v = t.velocity in
  sqrt ((v.x *. v.x) +. (v.y *. v.y) +. (v.z *. v.z))

let[@inline] horizontal_speed t =
  let open Vec3.Mut in
  let v = t.velocity in
  sqrt ((v.x *. v.x) +. (v.y *. v.y) +. (0.0 *. 0.0))

let[@inline] climb_rate t = t.velocity.Vec3.Mut.z
