open Avis_geo

type t = {
  mutable position : Vec3.t;
  mutable velocity : Vec3.t;
  mutable attitude : Quat.t;
  mutable angular_velocity : Vec3.t;
  mutable acceleration : Vec3.t;
}

let create ?(position = Vec3.zero) () =
  {
    position;
    velocity = Vec3.zero;
    attitude = Quat.identity;
    angular_velocity = Vec3.zero;
    acceleration = Vec3.zero;
  }

let copy t =
  (* Vec3/Quat values are immutable, so a field-wise copy is a deep copy. *)
  {
    position = t.position;
    velocity = t.velocity;
    attitude = t.attitude;
    angular_velocity = t.angular_velocity;
    acceleration = t.acceleration;
  }

let step t ~inertia ~mass ~force ~torque ~dt =
  let accel = Vec3.scale (1.0 /. mass) force in
  t.acceleration <- accel;
  (* Semi-implicit Euler: update velocity first, then position with the new
     velocity, which keeps the contact dynamics stable. *)
  t.velocity <- Vec3.add t.velocity (Vec3.scale dt accel);
  t.position <- Vec3.add t.position (Vec3.scale dt t.velocity);
  let open Vec3 in
  let omega = t.angular_velocity in
  (* Euler's equations with a diagonal inertia tensor. *)
  let coriolis =
    make
      ((inertia.z -. inertia.y) *. omega.y *. omega.z)
      ((inertia.x -. inertia.z) *. omega.z *. omega.x)
      ((inertia.y -. inertia.x) *. omega.x *. omega.y)
  in
  let angular_accel =
    make
      ((torque.x -. coriolis.x) /. inertia.x)
      ((torque.y -. coriolis.y) /. inertia.y)
      ((torque.z -. coriolis.z) /. inertia.z)
  in
  t.angular_velocity <- add omega (scale dt angular_accel);
  t.attitude <- Quat.integrate t.attitude t.angular_velocity dt

let specific_force_body t =
  let gravity = Vec3.make 0.0 0.0 (-.Airframe.gravity) in
  Quat.rotate_inv t.attitude (Vec3.sub t.acceleration gravity)

let speed t = Vec3.norm t.velocity
let horizontal_speed t = Vec3.norm (Vec3.horizontal t.velocity)
let climb_rate t = t.velocity.Vec3.z
