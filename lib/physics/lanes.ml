open Avis_geo

(* Structure-of-arrays batched stepping: N worlds held as parallel float
   columns (positions, velocities, quaternions, motor fractions), advanced
   in lock-step by one allocation-free inner loop.

   The kernel below is [World.step] — including [Motor.command]/[step]/
   [body_torque_into], [Environment.wind_into] and [Rigid_body.step] —
   replicated expression for expression over lane-indexed columns, so each
   lane's trajectory is bit-identical to stepping its world alone (the
   identity tests pin this down against both [World.step] and
   [World.step_reference]). Loop-invariant subexpressions whose inputs are
   immutable per lane (gravity, drag signs, the motor and gust filter
   constants, the friction and flap coefficients) are precomputed at
   adoption into constant columns; every one of them is a deterministic
   function (including [exp]/[sqrt]) of the same inputs the single-world
   kernel reads each step, so the cached bits equal the recomputed bits.

   A lane *adopts* a live [World.t]: mutable collaborators with their own
   state streams — the physics RNG and the gust cell — are shared by
   pointer, so the lane draws the world's own randomness in the world's own
   order; scalar state is gathered into the columns and scattered back by
   [flush]. *)

(* Unchecked column access for the kernel: indices are validated once at
   the [step]/[adopt] boundary (lane < width, slot < width * motor_count),
   so the ~100 per-lane-step bounds checks the safe operators would emit
   are pure overhead. Primitives, so fully applied uses compile to the
   raw load/store, specialised to unboxed floats where the element type is
   float. *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

type t = {
  width : int;
  motor_count : int;
  (* Rigid-body state, 16 floats per lane as columns. *)
  pos : Vec3.Cols.cols;
  vel : Vec3.Cols.cols;
  att : Quat.Cols.cols;
  omg : Vec3.Cols.cols;
  acc : Vec3.Cols.cols;
  elapsed : float array;
  (* Latched flags and events. *)
  active : bool array;
  crashed : bool array;
  fence_breached : bool array;
  resting : bool array;
  crash_events : World.contact_event option array;
  (* Motor bank, lane-major: lane i owns slots [i*mc, (i+1)*mc). *)
  m_commanded : float array;
  m_actual : float array;
  m_thrust : float array;
  m_total : float array;
  (* Per-lane collaborators, shared with the adopted world by pointer. *)
  worlds : World.t option array;
  envs : Environment.t array;
  rngs : Avis_util.Rng.t array;
  gusts : Vec3.Mut.vec array;
  layouts : (Vec3.t * float) array array;
  (* The motor layout flattened into lane-major float columns (same
     values as [layouts], copied at adoption): the torque loop reads
     flat unboxed loads per motor instead of chasing the tuple, record
     and boxed-float pointers of [(Vec3.t * float) array]. The zero
     cross-product terms and the spin-yaw coefficient are folded at
     adoption with the very expressions the per-step loop would
     evaluate — their inputs are per-motor constants, so the cached
     bits equal the recomputed bits. *)
  c_lx : float array;
  c_ly : float array;
  c_lz0 : float array; (* lz *. 0.0 *)
  c_az0 : float array; (* (lx *. 0.0) -. (ly *. 0.0) *)
  c_sy : float array; (* spin *. tpt *)
  winds : Environment.wind option array;
  has_wind : bool array;
  has_fence : bool array;
  has_obstacles : bool array;
  (* Airframe-derived constants, fixed at adoption. *)
  c_gravity_z : float array;
  c_neg_drag : float array;
  c_neg_adrag : float array;
  c_fric_k : float array;
  c_inv_mass : float array;
  c_ix : float array;
  c_iy : float array;
  c_iz : float array;
  c_max_n : float array;
  c_tpt : float array;
  c_flap_damp : float array;
  c_flap_back : float array;
  c_max_total : float array;
  c_tau : float array;
  c_wsx : float array;
  c_wsy : float array;
  c_wsz : float array;
  (* dt-derived constants, refreshed when a lane's dt changes. *)
  c_dt : float array;
  c_m_alpha : float array;
  c_w_alpha : float array;
  c_w_sigma : float array;
  c_w_sigma3 : float array;
  (* Scratch (no state across steps; shared by all lanes sequentially). *)
  s_ground : float array;
  s_torque : float array;
  s_blob : float array;
  (* Phase-major scratch: per-lane intermediates carried between the
     sweeps of [step_all], plus the shared clamped-command row. *)
  s_cmd : float array;
  s_live : bool array;
  s_fx : float array;
  s_fy : float array;
  s_fz : float array;
  s_tqx : float array;
  s_tqy : float array;
  s_tqz : float array;
  mutable s_any : bool;
  (* Inactive-slot placeholders so released lanes retain nothing. *)
  d_env : Environment.t;
  d_rng : Avis_util.Rng.t;
  d_gust : Vec3.Mut.vec;
  mutable n_active : int;
}

let fcol width = Array.make width 0.0

let create ~width ~motor_count =
  if width < 1 then invalid_arg "Lanes.create: width must be at least 1";
  if motor_count < 1 then
    invalid_arg "Lanes.create: motor count must be at least 1";
  let d_env = Environment.benign () in
  {
    width;
    motor_count;
    pos = Vec3.Cols.create width;
    vel = Vec3.Cols.create width;
    att = Quat.Cols.create width;
    omg = Vec3.Cols.create width;
    acc = Vec3.Cols.create width;
    elapsed = fcol width;
    active = Array.make width false;
    crashed = Array.make width false;
    fence_breached = Array.make width false;
    resting = Array.make width false;
    crash_events = Array.make width None;
    m_commanded = fcol (width * motor_count);
    m_actual = fcol (width * motor_count);
    m_thrust = fcol (width * motor_count);
    m_total = fcol width;
    worlds = Array.make width None;
    envs = Array.make width d_env;
    rngs = Array.make width (Avis_util.Rng.create 0);
    gusts = Array.make width (Environment.gust_cell d_env);
    layouts = Array.make width [||];
    c_lx = fcol (width * motor_count);
    c_ly = fcol (width * motor_count);
    c_lz0 = fcol (width * motor_count);
    c_az0 = fcol (width * motor_count);
    c_sy = fcol (width * motor_count);
    winds = Array.make width None;
    has_wind = Array.make width false;
    has_fence = Array.make width false;
    has_obstacles = Array.make width false;
    c_gravity_z = fcol width;
    c_neg_drag = fcol width;
    c_neg_adrag = fcol width;
    c_fric_k = fcol width;
    c_inv_mass = fcol width;
    c_ix = fcol width;
    c_iy = fcol width;
    c_iz = fcol width;
    c_max_n = fcol width;
    c_tpt = fcol width;
    c_flap_damp = fcol width;
    c_flap_back = fcol width;
    c_max_total = fcol width;
    c_tau = fcol width;
    c_wsx = fcol width;
    c_wsy = fcol width;
    c_wsz = fcol width;
    c_dt = Array.make width neg_infinity;
    c_m_alpha = fcol width;
    c_w_alpha = fcol width;
    c_w_sigma = fcol width;
    c_w_sigma3 = fcol width;
    s_ground = [| 0.0 |];
    s_torque = [| 0.0; 0.0; 0.0 |];
    s_blob = fcol (2 * motor_count);
    s_cmd = fcol motor_count;
    s_live = Array.make width false;
    s_fx = fcol width;
    s_fy = fcol width;
    s_fz = fcol width;
    s_tqx = fcol width;
    s_tqy = fcol width;
    s_tqz = fcol width;
    s_any = false;
    d_env;
    d_rng = Avis_util.Rng.create 0;
    d_gust = Environment.gust_cell d_env;
    n_active = 0;
  }

let width t = t.width
let active t = t.n_active
let is_active t i = t.active.(i)

let free_slot t =
  let rec scan i =
    if i >= t.width then None
    else if t.active.(i) then scan (i + 1)
    else Some i
  in
  scan 0

let world t i = t.worlds.(i)

(* Refresh the dt-derived constants for lane [i]: the motor spin-up alpha
   ([Motor.step]) and the Ornstein-Uhlenbeck gust filter constants
   ([Environment.wind_into]), computed from the same expressions. *)
let refresh_dt t i ~dt =
  t.c_dt.(i) <- dt;
  let tau = t.c_tau.(i) in
  t.c_m_alpha.(i) <- (if tau <= 0.0 then 1.0 else 1.0 -. exp (-.dt /. tau));
  match t.winds.(i) with
  | None -> ()
  | Some w ->
    let wtau = Float.max 1e-3 w.Environment.gust_correlation_s in
    let alpha = exp (-.dt /. wtau) in
    let sigma = w.Environment.gust_stddev *. sqrt (1.0 -. (alpha *. alpha)) in
    t.c_w_alpha.(i) <- alpha;
    t.c_w_sigma.(i) <- sigma;
    t.c_w_sigma3.(i) <- sigma /. 3.0

let adopt t i w =
  if i < 0 || i >= t.width then invalid_arg "Lanes.adopt: lane out of range";
  if t.active.(i) then invalid_arg "Lanes.adopt: lane already active";
  let frame = World.airframe w in
  if frame.Airframe.motor_count <> t.motor_count then
    invalid_arg "Lanes.adopt: airframe motor count mismatch";
  let b = World.body w in
  Vec3.Cols.load t.pos i b.Rigid_body.position;
  Vec3.Cols.load t.vel i b.Rigid_body.velocity;
  Quat.Cols.load t.att i b.Rigid_body.attitude;
  Vec3.Cols.load t.omg i b.Rigid_body.angular_velocity;
  Vec3.Cols.load t.acc i b.Rigid_body.acceleration;
  t.elapsed.(i) <- World.time w;
  t.crashed.(i) <- World.crashed w;
  t.fence_breached.(i) <- World.fence_breached w;
  t.resting.(i) <- World.resting w;
  t.crash_events.(i) <- World.crash_event w;
  let mc = t.motor_count in
  let base = i * mc in
  let motors = World.motors w in
  Motor.blit_to_floats motors t.s_blob ~pos:0;
  Array.blit t.s_blob 0 t.m_commanded base mc;
  Array.blit t.s_blob mc t.m_actual base mc;
  (* Rebuild the thrust cache columns with [refresh_thrust]'s expressions —
     deterministic in [actual], so bit-equal to the world's own cache. *)
  let max_n = frame.Airframe.max_thrust_per_motor_n in
  t.m_total.(i) <- 0.0;
  for j = 0 to mc - 1 do
    t.m_thrust.(base + j) <- t.m_actual.(base + j) *. max_n;
    t.m_total.(i) <- t.m_total.(i) +. t.m_thrust.(base + j)
  done;
  let env = World.environment w in
  t.worlds.(i) <- Some w;
  t.envs.(i) <- env;
  t.rngs.(i) <- World.rng w;
  t.gusts.(i) <- Environment.gust_cell env;
  t.layouts.(i) <- Motor.layout motors;
  let layout = t.layouts.(i) in
  for j = 0 to mc - 1 do
    let lpos, spin = layout.(j) in
    t.c_lx.(base + j) <- lpos.Vec3.x;
    t.c_ly.(base + j) <- lpos.Vec3.y;
    t.c_lz0.(base + j) <- lpos.Vec3.z *. 0.0;
    t.c_az0.(base + j) <- (lpos.Vec3.x *. 0.0) -. (lpos.Vec3.y *. 0.0);
    t.c_sy.(base + j) <- spin *. frame.Airframe.torque_per_thrust
  done;
  let wind = Environment.wind_spec env in
  t.winds.(i) <- wind;
  (match wind with
  | None ->
    t.has_wind.(i) <- false;
    t.c_wsx.(i) <- 0.0;
    t.c_wsy.(i) <- 0.0;
    t.c_wsz.(i) <- 0.0
  | Some wspec ->
    t.has_wind.(i) <- true;
    t.c_wsx.(i) <- wspec.Environment.steady.Vec3.x;
    t.c_wsy.(i) <- wspec.Environment.steady.Vec3.y;
    t.c_wsz.(i) <- wspec.Environment.steady.Vec3.z);
  t.has_fence.(i) <- Environment.has_fence env;
  t.has_obstacles.(i) <- Environment.has_obstacles env;
  t.c_gravity_z.(i) <- -.frame.Airframe.mass_kg *. Airframe.gravity;
  t.c_neg_drag.(i) <- -.frame.Airframe.linear_drag;
  t.c_neg_adrag.(i) <- -.frame.Airframe.angular_drag;
  t.c_fric_k.(i) <- -.World.ground_friction *. frame.Airframe.mass_kg;
  t.c_inv_mass.(i) <- 1.0 /. frame.Airframe.mass_kg;
  t.c_ix.(i) <- frame.Airframe.inertia.Vec3.x;
  t.c_iy.(i) <- frame.Airframe.inertia.Vec3.y;
  t.c_iz.(i) <- frame.Airframe.inertia.Vec3.z;
  t.c_max_n.(i) <- max_n;
  t.c_tpt.(i) <- frame.Airframe.torque_per_thrust;
  t.c_flap_damp.(i) <- frame.Airframe.flap_rate_damping;
  t.c_flap_back.(i) <- frame.Airframe.flap_back;
  (* [Float.max 1e-6 max_total] hoisted out of [body_torque_into]'s
     thrust-fraction divide. *)
  t.c_max_total.(i) <-
    Float.max 1e-6
      (float_of_int frame.Airframe.motor_count
      *. frame.Airframe.max_thrust_per_motor_n);
  t.c_tau.(i) <- frame.Airframe.motor_time_constant_s;
  (* Force a dt-constant refresh on the first step. *)
  t.c_dt.(i) <- neg_infinity;
  t.active.(i) <- true;
  t.n_active <- t.n_active + 1

let flush t i =
  match t.worlds.(i) with
  | None -> invalid_arg "Lanes.flush: inactive lane"
  | Some w ->
    let b = World.body w in
    Vec3.Cols.store t.pos i b.Rigid_body.position;
    Vec3.Cols.store t.vel i b.Rigid_body.velocity;
    Quat.Cols.store t.att i b.Rigid_body.attitude;
    Vec3.Cols.store t.omg i b.Rigid_body.angular_velocity;
    Vec3.Cols.store t.acc i b.Rigid_body.acceleration;
    (World.clock w).World.elapsed <- t.elapsed.(i);
    World.set_crashed w t.crashed.(i);
    World.set_fence_breached w t.fence_breached.(i);
    World.set_resting w t.resting.(i);
    World.set_crash_event w t.crash_events.(i);
    let mc = t.motor_count in
    let base = i * mc in
    Array.blit t.m_commanded base t.s_blob 0 mc;
    Array.blit t.m_actual base t.s_blob mc mc;
    Motor.restore_floats (World.motors w) t.s_blob ~pos:0
    (* The gust cell and RNG are the world's own (shared by pointer), so
       they are already current. *)

let release t i =
  if not t.active.(i) then invalid_arg "Lanes.release: inactive lane";
  flush t i;
  t.active.(i) <- false;
  t.worlds.(i) <- None;
  t.envs.(i) <- t.d_env;
  t.rngs.(i) <- t.d_rng;
  t.gusts.(i) <- t.d_gust;
  t.layouts.(i) <- [||];
  t.winds.(i) <- None;
  t.crash_events.(i) <- None;
  t.n_active <- t.n_active - 1

(* [World.latch_crash] on lane [i]. *)
let latch_lane t i e =
  t.crashed.(i) <- true;
  t.crash_events.(i) <- Some e;
  Vec3.Cols.set t.vel i ~x:0.0 ~y:0.0 ~z:0.0;
  Vec3.Cols.set t.omg i ~x:0.0 ~y:0.0 ~z:0.0

(* [World.settle_on_ground] on lane [i]; the ground level comes through the
   scratch cell so no float crosses the call. *)
let settle_lane t i =
  let ground = t.s_ground.(0) in
  t.pos.Vec3.Cols.zs.!(i) <- ground;
  let vz = t.vel.Vec3.Cols.zs.!(i) in
  t.vel.Vec3.Cols.zs.!(i) <- Float.max 0.0 vz

(* One step of lane [i]: [World.step] over the columns, expression for
   expression (see the header comment). Returns the contact event, if
   any. *)
let step_kernel t i ~motor_commands ~dt =
  t.elapsed.!(i) <- t.elapsed.!(i) +. dt;
  if t.crashed.!(i) then None
  else begin
    if dt <> t.c_dt.!(i) then refresh_dt t i ~dt;
    let mc = t.motor_count in
    if Array.length motor_commands <> mc then
      invalid_arg "Motor.command: wrong motor count";
    let base = i * mc in
    (* [Motor.command] + [Motor.step] + [refresh_thrust], fused: each
       motor's clamp, spin-up and thrust depend only on its own slots, and
       the total accumulates in the same order, so the fusion is
       value-identical to the three separate loops. *)
    let m_alpha = t.c_m_alpha.!(i) in
    let max_n = t.c_max_n.!(i) in
    t.m_total.!(i) <- 0.0;
    for j = 0 to mc - 1 do
      let cmd = Float.max 0.0 (Float.min 1.0 motor_commands.(j)) in
      t.m_commanded.!(base + j) <- cmd;
      let a =
        t.m_actual.!(base + j) +. (m_alpha *. (cmd -. t.m_actual.!(base + j)))
      in
      t.m_actual.!(base + j) <- a;
      let th = a *. max_n in
      t.m_thrust.!(base + j) <- th;
      t.m_total.!(i) <- t.m_total.!(i) +. th
    done;
    (* thrust_world = attitude ⊗ (0, 0, total): [Quat.Mut.rotate_comp] with
       vx = 0.0, vy = 0.0 spelled out (the zero products keep -0.0 sign
       propagation identical). *)
    let qw = t.att.Quat.Cols.ws.!(i)
    and qx = t.att.Quat.Cols.xs.!(i)
    and qy = t.att.Quat.Cols.ys.!(i)
    and qz = t.att.Quat.Cols.zs.!(i) in
    let tvz = t.m_total.!(i) in
    let ttx = 2.0 *. ((qy *. tvz) -. (qz *. 0.0)) in
    let tty = 2.0 *. ((qz *. 0.0) -. (qx *. tvz)) in
    let ttz = 2.0 *. ((qx *. 0.0) -. (qy *. 0.0)) in
    let thr_x = 0.0 +. ((qw *. ttx) +. ((qy *. ttz) -. (qz *. tty))) in
    let thr_y = 0.0 +. ((qw *. tty) +. ((qz *. ttx) -. (qx *. ttz))) in
    let thr_z = tvz +. ((qw *. ttz) +. ((qx *. tty) -. (qy *. ttx))) in
    let gravity_z = t.c_gravity_z.!(i) in
    (* [Environment.wind_into]: the gust process advances through the
       world's own gust cell and RNG (z draw first, as the original). The
       calm arm is a static tuple, so it does not allocate. *)
    let wind_x, wind_y, wind_z =
      if t.has_wind.!(i) then begin
        let w_alpha = t.c_w_alpha.!(i) in
        let rng = t.rngs.!(i) in
        let nz =
          Avis_util.Rng.gaussian_scaled rng ~mean:0.0
            ~stddev:t.c_w_sigma3.!(i)
        in
        let ny =
          Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:t.c_w_sigma.!(i)
        in
        let nx =
          Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:t.c_w_sigma.!(i)
        in
        let g = t.gusts.!(i) in
        g.Vec3.Mut.x <- (w_alpha *. g.Vec3.Mut.x) +. nx;
        g.Vec3.Mut.y <- (w_alpha *. g.Vec3.Mut.y) +. ny;
        g.Vec3.Mut.z <- (w_alpha *. g.Vec3.Mut.z) +. nz;
        ( t.c_wsx.!(i) +. g.Vec3.Mut.x,
          t.c_wsy.!(i) +. g.Vec3.Mut.y,
          t.c_wsz.!(i) +. g.Vec3.Mut.z )
      end
      else (0.0, 0.0, 0.0)
    in
    let velx = t.vel.Vec3.Cols.xs.!(i)
    and vely = t.vel.Vec3.Cols.ys.!(i)
    and velz = t.vel.Vec3.Cols.zs.!(i) in
    let asx = velx -. wind_x in
    let asy = vely -. wind_y in
    let asz = velz -. wind_z in
    let neg_drag = t.c_neg_drag.!(i) in
    let drag_x = neg_drag *. asx in
    let drag_y = neg_drag *. asy in
    let drag_z = neg_drag *. asz in
    let px = t.pos.Vec3.Cols.xs.!(i)
    and py = t.pos.Vec3.Cols.ys.!(i)
    and pz = t.pos.Vec3.Cols.zs.!(i) in
    (* [Environment.ground_altitude_into]: the world is flat, so the
       sample is the constant 0.0 regardless of position — written into
       the same scratch cell [post_step]'s replica below consumes. If
       terrain ever becomes position-dependent this must go back to
       calling the environment (the lane identity property tests guard
       the equivalence). *)
    t.s_ground.(0) <- 0.0;
    let ground = t.s_ground.(0) in
    let contact = pz <= ground +. 1e-9 in
    let normal_z =
      if contact then begin
        let net_z = thr_z +. gravity_z +. drag_z in
        if net_z < 0.0 then -.net_z else 0.0
      end
      else 0.0
    in
    let fric_k = t.c_fric_k.!(i) in
    let fric_x = if contact then fric_k *. velx else 0.0 in
    let fric_y = if contact then fric_k *. vely else 0.0 in
    let fric_z = if contact then fric_k *. 0.0 else 0.0 in
    let force_x = (((0.0 +. thr_x) +. 0.0) +. drag_x) +. 0.0 +. fric_x in
    let force_y = (((0.0 +. thr_y) +. 0.0) +. drag_y) +. 0.0 +. fric_y in
    let force_z =
      (((0.0 +. thr_z) +. gravity_z) +. drag_z) +. normal_z +. fric_z
    in
    (* airspeed_body = rotate_inv attitude airspeed; the z component is
       never consumed ([body_torque_into] reads x and y only), so it is not
       materialised. *)
    let nqx = -.qx and nqy = -.qy and nqz = -.qz in
    let atx = 2.0 *. ((nqy *. asz) -. (nqz *. asy)) in
    let aty = 2.0 *. ((nqz *. asx) -. (nqx *. asz)) in
    let atz = 2.0 *. ((nqx *. asy) -. (nqy *. asx)) in
    let ab_x = asx +. ((qw *. atx) +. ((nqy *. atz) -. (nqz *. aty))) in
    let ab_y = asy +. ((qw *. aty) +. ((nqz *. atx) -. (nqx *. atz))) in
    (* [Motor.body_torque_into]: accumulate through the scratch cells
       exactly as the original accumulates through its destination
       fields. *)
    let omx = t.omg.Vec3.Cols.xs.!(i)
    and omy = t.omg.Vec3.Cols.ys.!(i)
    and omz = t.omg.Vec3.Cols.zs.!(i) in
    let st = t.s_torque in
    st.!(0) <- 0.0;
    st.!(1) <- 0.0;
    st.!(2) <- 0.0;
    for j = 0 to mc - 1 do
      let lx = t.c_lx.!(base + j)
      and ly = t.c_ly.!(base + j)
      and lz0 = t.c_lz0.!(base + j)
      and az0 = t.c_az0.!(base + j)
      and sy = t.c_sy.!(base + j) in
      let th = t.m_thrust.!(base + j) in
      let arm_x = (ly *. th) -. lz0 in
      let arm_y = lz0 -. (lx *. th) in
      let arm_z = az0 in
      let yaw_z = sy *. th in
      st.!(0) <- st.!(0) +. (arm_x +. 0.0);
      st.!(1) <- st.!(1) +. (arm_y +. 0.0);
      st.!(2) <- st.!(2) +. (arm_z +. yaw_z)
    done;
    let thrust_fraction = t.m_total.!(i) /. t.c_max_total.!(i) in
    let k_damp = t.c_flap_damp.!(i) *. thrust_fraction in
    let rate_x = -.k_damp *. omx and rate_y = -.k_damp *. omy in
    let kb = t.c_flap_back.!(i) *. thrust_fraction in
    (* [(0.0 *. 0.0)] is +0.0; [1.0 *. x] is x and [x -. (+0.0)] is x,
       bit-for-bit, for every x — so the flap-back cross products fold
       to the terms below with identical results. *)
    let back_x = kb *. (0.0 -. ab_y) in
    let back_y = kb *. ab_x in
    let back_z = kb *. ((0.0 *. ab_y) -. (0.0 *. ab_x)) in
    (* ... then [World.step]'s angular drag and ground damping terms. *)
    let neg_adrag = t.c_neg_adrag.!(i) in
    let tq_x = (st.!(0) +. (rate_x +. back_x)) +. (neg_adrag *. omx) in
    let tq_y = (st.!(1) +. (rate_y +. back_y)) +. (neg_adrag *. omy) in
    let tq_z = (st.!(2) +. (0.0 +. back_z)) +. (neg_adrag *. omz) in
    let damped = contact && normal_z <> 0.0 in
    let tq_x = if damped then tq_x +. (-1.0 *. omx) else tq_x in
    let tq_y = if damped then tq_y +. (-1.0 *. omy) else tq_y in
    let tq_z = if damped then tq_z +. (-1.0 *. omz) else tq_z in
    (* [Rigid_body.step]: semi-implicit Euler, then Euler's equations with
       a diagonal inertia tensor, then the quaternion integration. *)
    let inv_mass = t.c_inv_mass.!(i) in
    let acc_x = inv_mass *. force_x in
    let acc_y = inv_mass *. force_y in
    let acc_z = inv_mass *. force_z in
    t.acc.Vec3.Cols.xs.!(i) <- acc_x;
    t.acc.Vec3.Cols.ys.!(i) <- acc_y;
    t.acc.Vec3.Cols.zs.!(i) <- acc_z;
    let velx' = velx +. (dt *. acc_x) in
    let vely' = vely +. (dt *. acc_y) in
    let velz' = velz +. (dt *. acc_z) in
    t.vel.Vec3.Cols.xs.!(i) <- velx';
    t.vel.Vec3.Cols.ys.!(i) <- vely';
    t.vel.Vec3.Cols.zs.!(i) <- velz';
    let px' = px +. (dt *. velx') in
    let py' = py +. (dt *. vely') in
    let pz' = pz +. (dt *. velz') in
    t.pos.Vec3.Cols.xs.!(i) <- px';
    t.pos.Vec3.Cols.ys.!(i) <- py';
    t.pos.Vec3.Cols.zs.!(i) <- pz';
    let ix = t.c_ix.!(i) and iy = t.c_iy.!(i) and iz = t.c_iz.!(i) in
    let cx = (iz -. iy) *. omy *. omz in
    let cy = (ix -. iz) *. omz *. omx in
    let cz = (iy -. ix) *. omx *. omy in
    let aax = (tq_x -. cx) /. ix in
    let aay = (tq_y -. cy) /. iy in
    let aaz = (tq_z -. cz) /. iz in
    let omx' = omx +. (dt *. aax) in
    let omy' = omy +. (dt *. aay) in
    let omz' = omz +. (dt *. aaz) in
    t.omg.Vec3.Cols.xs.!(i) <- omx';
    t.omg.Vec3.Cols.ys.!(i) <- omy';
    t.omg.Vec3.Cols.zs.!(i) <- omz';
    (* [Quat.Mut.integrate] (= [Quat.Cols.integrate] at lane [i]), inlined
       so the attitude and rate stay in the locals already loaded. *)
    let half_dt = dt /. 2.0 in
    let dw =
      0.0 -. (half_dt *. ((omx' *. qx) +. (omy' *. qy) +. (omz' *. qz)))
    in
    let dx = half_dt *. ((omx' *. qw) +. (omz' *. qy) -. (omy' *. qz)) in
    let dy = half_dt *. ((omy' *. qw) +. (omx' *. qz) -. (omz' *. qx)) in
    let dz = half_dt *. ((omz' *. qw) +. (omy' *. qx) -. (omx' *. qy)) in
    let nw = qw +. dw in
    let nx = qx +. dx in
    let ny = qy +. dy in
    let nz = qz +. dz in
    let n = sqrt ((nw *. nw) +. (nx *. nx) +. (ny *. ny) +. (nz *. nz)) in
    if n = 0.0 then begin
      t.att.Quat.Cols.ws.!(i) <- 1.0;
      t.att.Quat.Cols.xs.!(i) <- 0.0;
      t.att.Quat.Cols.ys.!(i) <- 0.0;
      t.att.Quat.Cols.zs.!(i) <- 0.0
    end
    else begin
      t.att.Quat.Cols.ws.!(i) <- nw /. n;
      t.att.Quat.Cols.xs.!(i) <- nx /. n;
      t.att.Quat.Cols.ys.!(i) <- ny /. n;
      t.att.Quat.Cols.zs.!(i) <- nz /. n
    end;
    (* [World.post_step] on the post-integration state, with the ground
       level sampled before integration (still in the scratch cell). *)
    let vx2 = velx'
    and vy2 = vely'
    and vz2 = velz' in
    if
      t.has_fence.!(i)
      && Environment.breaches_fence_xyz t.envs.!(i) ~x:px' ~y:py' ~z:pz'
    then t.fence_breached.!(i) <- true;
    let hit =
      if t.has_obstacles.!(i) then
        Environment.obstacle_at t.envs.!(i) ~x:px' ~y:py' ~z:pz'
      else None
    in
    match hit with
    | Some o when sqrt ((vx2 *. vx2) +. (vy2 *. vy2) +. (vz2 *. vz2)) > 0.5 ->
      let e =
        World.Obstacle_strike
          {
            label = o.Environment.label;
            speed = sqrt ((vx2 *. vx2) +. (vy2 *. vy2) +. (vz2 *. vz2));
          }
      in
      latch_lane t i e;
      Some e
    | Some _ | None ->
      let z = pz' in
      if z < ground then begin
        let sink = -.vz2 in
        let lateral = sqrt ((vx2 *. vx2) +. (vy2 *. vy2) +. (0.0 *. 0.0)) in
        if sink > World.crash_sink_speed || lateral > World.crash_lateral_speed
        then begin
          settle_lane t i;
          let e = World.Ground_impact { speed = Float.max sink lateral } in
          latch_lane t i e;
          Some e
        end
        else if Quat.Cols.tilt t.att i > World.tipover_tilt_rad then begin
          settle_lane t i;
          latch_lane t i World.Tipover;
          Some World.Tipover
        end
        else begin
          settle_lane t i;
          let was_resting = t.resting.!(i) in
          t.resting.!(i) <- true;
          if was_resting then None else Some (World.Touchdown { speed = sink })
        end
      end
      else if
        z <= ground +. 0.02 && Quat.Cols.tilt t.att i > World.tipover_tilt_rad
      then begin
        latch_lane t i World.Tipover;
        Some World.Tipover
      end
      else begin
        if z > ground +. 0.05 then t.resting.!(i) <- false;
        None
      end
  end

let step_resident t i ~motor_commands ~dt =
  if not t.active.(i) then invalid_arg "Lanes.step: inactive lane";
  step_kernel t i ~motor_commands ~dt

let step t i ~motor_commands ~dt =
  if not t.active.(i) then invalid_arg "Lanes.step: inactive lane";
  let event = step_kernel t i ~motor_commands ~dt in
  flush t i;
  event

(* One lock-step round, phase-major: the same per-lane expressions as
   [step_kernel], but arranged as a few sweeps that each advance every
   live lane through one pipeline stage before the next begins, with
   every column array hoisted into a local ahead of its sweep. Both
   halves matter on a non-flambda build: lanes are mutually independent,
   so consecutive iterations of a sweep carry no data dependence and the
   core overlaps them (the out-of-order window spans several small
   bodies, where one whole-kernel body would fill it alone), and the
   hoisted bindings turn each column access from a [t]-record chase
   (three dependent loads, re-issued per use because the compiler cannot
   prove the scratch stores don't alias [t]) into a single indexed load.
   Intermediates travel between sweeps in preallocated scratch columns.
   Every per-lane expression, evaluation order and store below is copied
   from [step_kernel], so each lane's trajectory stays bit-identical to
   stepping it alone (the property tests pin both paths to
   [World.step]). *)
let step_all t ~motor_commands ~dt =
  let mc = t.motor_count in
  let wd = t.width in
  let live = t.s_live in
  (* Clocks, the live mask and the dt-derived constants. Crashed lanes
     only advance their clock, exactly as the kernel's latched path. *)
  t.s_any <- false;
  let active = t.active and crashed = t.crashed in
  let elapsed = t.elapsed and c_dt = t.c_dt in
  for i = 0 to wd - 1 do
    if active.!(i) then begin
      elapsed.!(i) <- elapsed.!(i) +. dt;
      if crashed.!(i) then live.!(i) <- false
      else begin
        live.!(i) <- true;
        t.s_any <- true;
        if dt <> c_dt.!(i) then refresh_dt t i ~dt
      end
    end
    else live.!(i) <- false
  done;
  if t.s_any then begin
    if Array.length motor_commands <> mc then
      invalid_arg "Motor.command: wrong motor count";
    (* The commands are shared by every lane in the round, so the clamp
       ([Motor.command]) happens once per motor, not once per lane — the
       same expression on the same input, hence the same value. Ditto
       the quaternion half-step below. *)
    let s_cmd = t.s_cmd in
    for j = 0 to mc - 1 do
      s_cmd.!(j) <- Float.max 0.0 (Float.min 1.0 motor_commands.(j))
    done;
    let half_dt = dt /. 2.0 in
    t.s_ground.(0) <- 0.0;
    (* Motor spin-up and the thrust cache. *)
    let m_commanded = t.m_commanded
    and m_actual = t.m_actual
    and m_thrust = t.m_thrust
    and m_total = t.m_total
    and c_m_alpha = t.c_m_alpha
    and c_max_n = t.c_max_n in
    for i = 0 to wd - 1 do
      if live.!(i) then begin
        let base = i * mc in
        let m_alpha = c_m_alpha.!(i) in
        let max_n = c_max_n.!(i) in
        m_total.!(i) <- 0.0;
        for j = 0 to mc - 1 do
          let cmd = s_cmd.!(j) in
          m_commanded.!(base + j) <- cmd;
          let a =
            m_actual.!(base + j) +. (m_alpha *. (cmd -. m_actual.!(base + j)))
          in
          m_actual.!(base + j) <- a;
          let th = a *. max_n in
          m_thrust.!(base + j) <- th;
          m_total.!(i) <- m_total.!(i) +. th
        done
      end
    done;
    let att_ws = t.att.Quat.Cols.ws
    and att_xs = t.att.Quat.Cols.xs
    and att_ys = t.att.Quat.Cols.ys
    and att_zs = t.att.Quat.Cols.zs in
    let vel_xs = t.vel.Vec3.Cols.xs
    and vel_ys = t.vel.Vec3.Cols.ys
    and vel_zs = t.vel.Vec3.Cols.zs in
    let pos_xs = t.pos.Vec3.Cols.xs
    and pos_ys = t.pos.Vec3.Cols.ys
    and pos_zs = t.pos.Vec3.Cols.zs in
    let omg_xs = t.omg.Vec3.Cols.xs
    and omg_ys = t.omg.Vec3.Cols.ys
    and omg_zs = t.omg.Vec3.Cols.zs in
    let s_fx = t.s_fx and s_fy = t.s_fy and s_fz = t.s_fz in
    let s_tqx = t.s_tqx and s_tqy = t.s_tqy and s_tqz = t.s_tqz in
    (* Forces and torques in one sweep over the lanes: thrust rotation,
       gravity, wind, drag, contact normal and friction, then motor
       arms and yaw, flapping, angular drag and ground damping. One
       sweep rather than two so the quaternion and airspeed stay in
       registers instead of round-tripping through scratch columns. *)
    let st = t.s_torque in
    let c_lx = t.c_lx
    and c_ly = t.c_ly
    and c_lz0 = t.c_lz0
    and c_az0 = t.c_az0
    and c_sy = t.c_sy
    and c_gravity_z = t.c_gravity_z
    and c_neg_drag = t.c_neg_drag
    and c_fric_k = t.c_fric_k
    and c_max_total = t.c_max_total
    and c_flap_damp = t.c_flap_damp
    and c_flap_back = t.c_flap_back
    and c_neg_adrag = t.c_neg_adrag
    and has_wind = t.has_wind in
    for i = 0 to wd - 1 do
      if live.!(i) then begin
        let qw = att_ws.!(i)
        and qx = att_xs.!(i)
        and qy = att_ys.!(i)
        and qz = att_zs.!(i) in
        let tvz = m_total.!(i) in
        let ttx = 2.0 *. ((qy *. tvz) -. (qz *. 0.0)) in
        let tty = 2.0 *. ((qz *. 0.0) -. (qx *. tvz)) in
        let ttz = 2.0 *. ((qx *. 0.0) -. (qy *. 0.0)) in
        let thr_x = 0.0 +. ((qw *. ttx) +. ((qy *. ttz) -. (qz *. tty))) in
        let thr_y = 0.0 +. ((qw *. tty) +. ((qz *. ttx) -. (qx *. ttz))) in
        let thr_z = tvz +. ((qw *. ttz) +. ((qx *. tty) -. (qy *. ttx))) in
        let gravity_z = c_gravity_z.!(i) in
        let wind_x, wind_y, wind_z =
          if has_wind.!(i) then begin
            let w_alpha = t.c_w_alpha.!(i) in
            let rng = t.rngs.!(i) in
            let nz =
              Avis_util.Rng.gaussian_scaled rng ~mean:0.0
                ~stddev:t.c_w_sigma3.!(i)
            in
            let ny =
              Avis_util.Rng.gaussian_scaled rng ~mean:0.0
                ~stddev:t.c_w_sigma.!(i)
            in
            let nx =
              Avis_util.Rng.gaussian_scaled rng ~mean:0.0
                ~stddev:t.c_w_sigma.!(i)
            in
            let g = t.gusts.!(i) in
            g.Vec3.Mut.x <- (w_alpha *. g.Vec3.Mut.x) +. nx;
            g.Vec3.Mut.y <- (w_alpha *. g.Vec3.Mut.y) +. ny;
            g.Vec3.Mut.z <- (w_alpha *. g.Vec3.Mut.z) +. nz;
            ( t.c_wsx.!(i) +. g.Vec3.Mut.x,
              t.c_wsy.!(i) +. g.Vec3.Mut.y,
              t.c_wsz.!(i) +. g.Vec3.Mut.z )
          end
          else (0.0, 0.0, 0.0)
        in
        let velx = vel_xs.!(i)
        and vely = vel_ys.!(i)
        and velz = vel_zs.!(i) in
        let asx = velx -. wind_x in
        let asy = vely -. wind_y in
        let asz = velz -. wind_z in
        let neg_drag = c_neg_drag.!(i) in
        let drag_x = neg_drag *. asx in
        let drag_y = neg_drag *. asy in
        let drag_z = neg_drag *. asz in
        let pz = pos_zs.!(i) in
        let ground = 0.0 in
        let contact = pz <= ground +. 1e-9 in
        let normal_z =
          if contact then begin
            let net_z = thr_z +. gravity_z +. drag_z in
            if net_z < 0.0 then -.net_z else 0.0
          end
          else 0.0
        in
        let fric_k = c_fric_k.!(i) in
        let fric_x = if contact then fric_k *. velx else 0.0 in
        let fric_y = if contact then fric_k *. vely else 0.0 in
        let fric_z = if contact then fric_k *. 0.0 else 0.0 in
        s_fx.!(i) <- (((0.0 +. thr_x) +. 0.0) +. drag_x) +. 0.0 +. fric_x;
        s_fy.!(i) <- (((0.0 +. thr_y) +. 0.0) +. drag_y) +. 0.0 +. fric_y;
        s_fz.!(i) <-
          (((0.0 +. thr_z) +. gravity_z) +. drag_z) +. normal_z +. fric_z;
        let nqx = -.qx and nqy = -.qy and nqz = -.qz in
        let atx = 2.0 *. ((nqy *. asz) -. (nqz *. asy)) in
        let aty = 2.0 *. ((nqz *. asx) -. (nqx *. asz)) in
        let atz = 2.0 *. ((nqx *. asy) -. (nqy *. asx)) in
        let ab_x = asx +. ((qw *. atx) +. ((nqy *. atz) -. (nqz *. aty))) in
        let ab_y = asy +. ((qw *. aty) +. ((nqz *. atx) -. (nqx *. atz))) in
        let omx = omg_xs.!(i) and omy = omg_ys.!(i) and omz = omg_zs.!(i) in
        st.!(0) <- 0.0;
        st.!(1) <- 0.0;
        st.!(2) <- 0.0;
        let base = i * mc in
        for j = 0 to mc - 1 do
          let lx = c_lx.!(base + j)
          and ly = c_ly.!(base + j)
          and lz0 = c_lz0.!(base + j)
          and az0 = c_az0.!(base + j)
          and sy = c_sy.!(base + j) in
          let th = m_thrust.!(base + j) in
          let arm_x = (ly *. th) -. lz0 in
          let arm_y = lz0 -. (lx *. th) in
          let arm_z = az0 in
          let yaw_z = sy *. th in
          st.!(0) <- st.!(0) +. (arm_x +. 0.0);
          st.!(1) <- st.!(1) +. (arm_y +. 0.0);
          st.!(2) <- st.!(2) +. (arm_z +. yaw_z)
        done;
        let thrust_fraction = m_total.!(i) /. c_max_total.!(i) in
        let k_damp = c_flap_damp.!(i) *. thrust_fraction in
        let rate_x = -.k_damp *. omx and rate_y = -.k_damp *. omy in
        let kb = c_flap_back.!(i) *. thrust_fraction in
        let back_x = kb *. (0.0 -. ab_y) in
        let back_y = kb *. ab_x in
        let back_z = kb *. ((0.0 *. ab_y) -. (0.0 *. ab_x)) in
        let neg_adrag = c_neg_adrag.!(i) in
        let tq_x = (st.!(0) +. (rate_x +. back_x)) +. (neg_adrag *. omx) in
        let tq_y = (st.!(1) +. (rate_y +. back_y)) +. (neg_adrag *. omy) in
        let tq_z = (st.!(2) +. (0.0 +. back_z)) +. (neg_adrag *. omz) in
        let damped = contact && normal_z <> 0.0 in
        let tq_x = if damped then tq_x +. (-1.0 *. omx) else tq_x in
        let tq_y = if damped then tq_y +. (-1.0 *. omy) else tq_y in
        let tq_z = if damped then tq_z +. (-1.0 *. omz) else tq_z in
        s_tqx.!(i) <- tq_x;
        s_tqy.!(i) <- tq_y;
        s_tqz.!(i) <- tq_z
      end
    done;
    (* Integration, linear then rotational (semi-implicit Euler, then
       Euler's equations, the quaternion update and its normalisation —
       the longest latency chain in the step, and the sweep that gains
       most from overlapping lanes). *)
    let acc_xs = t.acc.Vec3.Cols.xs
    and acc_ys = t.acc.Vec3.Cols.ys
    and acc_zs = t.acc.Vec3.Cols.zs in
    let c_inv_mass = t.c_inv_mass in
    let c_ix = t.c_ix and c_iy = t.c_iy and c_iz = t.c_iz in
    for i = 0 to wd - 1 do
      if live.!(i) then begin
        let inv_mass = c_inv_mass.!(i) in
        let acc_x = inv_mass *. s_fx.!(i) in
        let acc_y = inv_mass *. s_fy.!(i) in
        let acc_z = inv_mass *. s_fz.!(i) in
        acc_xs.!(i) <- acc_x;
        acc_ys.!(i) <- acc_y;
        acc_zs.!(i) <- acc_z;
        let velx' = vel_xs.!(i) +. (dt *. acc_x) in
        let vely' = vel_ys.!(i) +. (dt *. acc_y) in
        let velz' = vel_zs.!(i) +. (dt *. acc_z) in
        vel_xs.!(i) <- velx';
        vel_ys.!(i) <- vely';
        vel_zs.!(i) <- velz';
        pos_xs.!(i) <- pos_xs.!(i) +. (dt *. velx');
        pos_ys.!(i) <- pos_ys.!(i) +. (dt *. vely');
        pos_zs.!(i) <- pos_zs.!(i) +. (dt *. velz');
        let omx = omg_xs.!(i) and omy = omg_ys.!(i) and omz = omg_zs.!(i) in
        let ix = c_ix.!(i) and iy = c_iy.!(i) and iz = c_iz.!(i) in
        let cx = (iz -. iy) *. omy *. omz in
        let cy = (ix -. iz) *. omz *. omx in
        let cz = (iy -. ix) *. omx *. omy in
        let aax = (s_tqx.!(i) -. cx) /. ix in
        let aay = (s_tqy.!(i) -. cy) /. iy in
        let aaz = (s_tqz.!(i) -. cz) /. iz in
        let omx' = omx +. (dt *. aax) in
        let omy' = omy +. (dt *. aay) in
        let omz' = omz +. (dt *. aaz) in
        omg_xs.!(i) <- omx';
        omg_ys.!(i) <- omy';
        omg_zs.!(i) <- omz';
        let qw = att_ws.!(i)
        and qx = att_xs.!(i)
        and qy = att_ys.!(i)
        and qz = att_zs.!(i) in
        let dw =
          0.0 -. (half_dt *. ((omx' *. qx) +. (omy' *. qy) +. (omz' *. qz)))
        in
        let dx = half_dt *. ((omx' *. qw) +. (omz' *. qy) -. (omy' *. qz)) in
        let dy = half_dt *. ((omy' *. qw) +. (omx' *. qz) -. (omz' *. qx)) in
        let dz = half_dt *. ((omz' *. qw) +. (omy' *. qx) -. (omx' *. qy)) in
        let nw = qw +. dw in
        let nx = qx +. dx in
        let ny = qy +. dy in
        let nz = qz +. dz in
        let n = sqrt ((nw *. nw) +. (nx *. nx) +. (ny *. ny) +. (nz *. nz)) in
        if n = 0.0 then begin
          att_ws.!(i) <- 1.0;
          att_xs.!(i) <- 0.0;
          att_ys.!(i) <- 0.0;
          att_zs.!(i) <- 0.0
        end
        else begin
          att_ws.!(i) <- nw /. n;
          att_xs.!(i) <- nx /. n;
          att_ys.!(i) <- ny /. n;
          att_zs.!(i) <- nz /. n
        end
      end
    done;
    (* Contact resolution ([World.post_step]): fence, obstacles, ground
       impact, tipover, touchdown. Events are discarded (crashes still
       latch per lane), as this sweep's callers only observe state. *)
    let has_fence = t.has_fence
    and has_obstacles = t.has_obstacles
    and resting = t.resting in
    for i = 0 to wd - 1 do
      if live.!(i) then begin
        let px' = pos_xs.!(i) and py' = pos_ys.!(i) and pz' = pos_zs.!(i) in
        if
          has_fence.!(i)
          && Environment.breaches_fence_xyz t.envs.!(i) ~x:px' ~y:py' ~z:pz'
        then t.fence_breached.!(i) <- true;
        let hit =
          if has_obstacles.!(i) then
            Environment.obstacle_at t.envs.!(i) ~x:px' ~y:py' ~z:pz'
          else None
        in
        match hit with
        | Some o
          when (let vx2 = vel_xs.!(i) and vy2 = vel_ys.!(i)
                and vz2 = vel_zs.!(i) in
                sqrt ((vx2 *. vx2) +. (vy2 *. vy2) +. (vz2 *. vz2)) > 0.5) ->
          let vx2 = vel_xs.!(i) and vy2 = vel_ys.!(i) and vz2 = vel_zs.!(i) in
          latch_lane t i
            (World.Obstacle_strike
               {
                 label = o.Environment.label;
                 speed = sqrt ((vx2 *. vx2) +. (vy2 *. vy2) +. (vz2 *. vz2));
               })
        | Some _ | None ->
          let ground = t.s_ground.(0) in
          let z = pz' in
          if z < ground then begin
            let vx2 = vel_xs.!(i) and vy2 = vel_ys.!(i)
            and vz2 = vel_zs.!(i) in
            let sink = -.vz2 in
            let lateral =
              sqrt ((vx2 *. vx2) +. (vy2 *. vy2) +. (0.0 *. 0.0))
            in
            if
              sink > World.crash_sink_speed
              || lateral > World.crash_lateral_speed
            then begin
              settle_lane t i;
              latch_lane t i
                (World.Ground_impact { speed = Float.max sink lateral })
            end
            else if Quat.Cols.tilt t.att i > World.tipover_tilt_rad then begin
              settle_lane t i;
              latch_lane t i World.Tipover
            end
            else begin
              settle_lane t i;
              resting.!(i) <- true
            end
          end
          else if
            z <= ground +. 0.02
            && Quat.Cols.tilt t.att i > World.tipover_tilt_rad
          then latch_lane t i World.Tipover
          else if z > ground +. 0.05 then resting.!(i) <- false
      end
    done
  end
