open Avis_geo

type contact_event =
  | Touchdown of { speed : float }
  | Ground_impact of { speed : float }
  | Obstacle_strike of { label : string; speed : float }
  | Tipover

type t = {
  airframe : Airframe.t;
  environment : Environment.t;
  rng : Avis_util.Rng.t;
  body : Rigid_body.t;
  motors : Motor.t;
  mutable time : float;
  mutable crashed : bool;
  mutable crash_event : contact_event option;
  mutable fence_breached : bool;
  mutable resting : bool;
}

(* Impact limits: a multicopter landing gear tolerates roughly 2.5 m/s of
   sink and modest lateral scrub; beyond that we call it a crash. *)
let crash_sink_speed = 2.5
let crash_lateral_speed = 2.0
let tipover_tilt_rad = Float.pi /. 4.0
let ground_friction = 8.0

let create ?environment ?rng ?(airframe = Airframe.iris) ?(position = Vec3.zero) () =
  let environment =
    match environment with Some e -> e | None -> Environment.benign ()
  in
  let rng = match rng with Some r -> r | None -> Avis_util.Rng.create 0 in
  {
    airframe;
    environment;
    rng;
    body = Rigid_body.create ~position ();
    motors = Motor.create airframe;
    time = 0.0;
    crashed = false;
    crash_event = None;
    fence_breached = false;
    resting = true;
  }

type snapshot = t

let copy t =
  {
    airframe = t.airframe;
    environment = Environment.copy t.environment;
    rng = Avis_util.Rng.copy t.rng;
    body = Rigid_body.copy t.body;
    motors = Motor.copy t.motors;
    time = t.time;
    crashed = t.crashed;
    crash_event = t.crash_event;
    fence_breached = t.fence_breached;
    resting = t.resting;
  }

let snapshot = copy
let restore = copy

let airframe t = t.airframe
let environment t = t.environment
let body t = t.body
let time t = t.time
let crashed t = t.crashed
let crash_event t = t.crash_event
let fence_breached t = t.fence_breached

let on_ground t =
  let ground = Environment.ground_altitude t.environment t.body.Rigid_body.position in
  t.body.Rigid_body.position.Vec3.z <= ground +. 0.02

let latch_crash t event =
  t.crashed <- true;
  t.crash_event <- Some event;
  t.body.Rigid_body.velocity <- Vec3.zero;
  t.body.Rigid_body.angular_velocity <- Vec3.zero

let settle_on_ground t ground =
  let b = t.body in
  b.Rigid_body.position <- { b.Rigid_body.position with Vec3.z = ground };
  let v = b.Rigid_body.velocity in
  b.Rigid_body.velocity <- { v with Vec3.z = Float.max 0.0 v.Vec3.z }

let step t ~motor_commands ~dt =
  t.time <- t.time +. dt;
  if t.crashed then None
  else begin
    Motor.command t.motors motor_commands;
    Motor.step t.motors dt;
    let b = t.body in
    let frame = t.airframe in
    let thrust_body = Vec3.make 0.0 0.0 (Motor.total_thrust t.motors) in
    let thrust_world = Quat.rotate b.Rigid_body.attitude thrust_body in
    let gravity =
      Vec3.make 0.0 0.0 (-.frame.Airframe.mass_kg *. Airframe.gravity)
    in
    let wind = Environment.wind_at t.environment t.rng dt in
    let airspeed = Vec3.sub b.Rigid_body.velocity wind in
    let drag = Vec3.scale (-.frame.Airframe.linear_drag) airspeed in
    let ground = Environment.ground_altitude t.environment b.Rigid_body.position in
    let contact = b.Rigid_body.position.Vec3.z <= ground +. 1e-9 in
    let normal =
      (* Ground reaction: cancel any net downward force while in contact. *)
      if contact then
        let net_z = thrust_world.Vec3.z +. gravity.Vec3.z +. drag.Vec3.z in
        if net_z < 0.0 then Vec3.make 0.0 0.0 (-.net_z) else Vec3.zero
      else Vec3.zero
    in
    let friction =
      if contact then
        Vec3.scale
          (-.ground_friction *. frame.Airframe.mass_kg)
          (Vec3.horizontal b.Rigid_body.velocity)
      else Vec3.zero
    in
    let force =
      List.fold_left Vec3.add Vec3.zero [ thrust_world; gravity; drag; normal; friction ]
    in
    let torque =
      let motor_torque =
        let airspeed_body = Quat.rotate_inv b.Rigid_body.attitude airspeed in
        Vec3.add
          (Motor.body_torque t.motors ~rate:b.Rigid_body.angular_velocity
             ~airspeed_body)
          (Vec3.scale (-.frame.Airframe.angular_drag)
             b.Rigid_body.angular_velocity)
      in
      if contact && normal <> Vec3.zero then
        (* Resting on the gear: the ground damps rotation strongly, but a
           sustained differential-thrust torque can still tip the vehicle. *)
        Vec3.add motor_torque (Vec3.scale (-1.0) b.Rigid_body.angular_velocity)
      else motor_torque
    in
    Rigid_body.step b ~inertia:frame.Airframe.inertia ~mass:frame.Airframe.mass_kg
      ~force ~torque ~dt;
    if Environment.breaches_fence t.environment b.Rigid_body.position then
      t.fence_breached <- true;
    let event =
      match Environment.inside_obstacle t.environment b.Rigid_body.position with
      | Some o when Rigid_body.speed b > 0.5 ->
        let e = Obstacle_strike { label = o.Environment.label; speed = Rigid_body.speed b } in
        latch_crash t e;
        Some e
      | Some _ | None ->
        let z = b.Rigid_body.position.Vec3.z in
        if z < ground then begin
          let sink = -.b.Rigid_body.velocity.Vec3.z in
          let lateral = Rigid_body.horizontal_speed b in
          if sink > crash_sink_speed || lateral > crash_lateral_speed then begin
            settle_on_ground t ground;
            let e = Ground_impact { speed = Float.max sink lateral } in
            latch_crash t e;
            Some e
          end
          else if Quat.tilt b.Rigid_body.attitude > tipover_tilt_rad then begin
            settle_on_ground t ground;
            latch_crash t Tipover;
            Some Tipover
          end
          else begin
            settle_on_ground t ground;
            let was_resting = t.resting in
            t.resting <- true;
            if was_resting then None else Some (Touchdown { speed = sink })
          end
        end
        else if
          (* Resting contact: tipping over on the ground (e.g. motors kept
             running after a missed touchdown) is also a crash. *)
          z <= ground +. 0.02
          && Quat.tilt b.Rigid_body.attitude > tipover_tilt_rad
        then begin
          latch_crash t Tipover;
          Some Tipover
        end
        else begin
          if z > ground +. 0.05 then t.resting <- false;
          None
        end
    in
    event
  end

let pp_contact ppf = function
  | Touchdown { speed } -> Format.fprintf ppf "touchdown (%.2f m/s)" speed
  | Ground_impact { speed } -> Format.fprintf ppf "ground impact (%.2f m/s)" speed
  | Obstacle_strike { label; speed } ->
    Format.fprintf ppf "obstacle strike on %s (%.2f m/s)" label speed
  | Tipover -> Format.fprintf ppf "tipover"
