open Avis_geo

type contact_event =
  | Touchdown of { speed : float }
  | Ground_impact of { speed : float }
  | Obstacle_strike of { label : string; speed : float }
  | Tipover

(* Preallocated working set for the step kernel: every intermediate vector
   of one step lives here, so steady-state stepping allocates nothing.
   Scratch carries no state across steps and is never snapshotted. *)
type scratch = {
  s_thrust : Vec3.Mut.vec;
  s_wind : Vec3.Mut.vec;
  s_airspeed : Vec3.Mut.vec;
  s_airspeed_body : Vec3.Mut.vec;
  s_force : Vec3.Mut.vec;
  s_torque : Vec3.Mut.vec;
  s_ground : float array;
      (* single cell: ground level sampled before integration, consumed by
         [post_step] — a cell rather than an argument so no float is boxed
         crossing that call. *)
}

let make_scratch () =
  {
    s_thrust = Vec3.Mut.create ();
    s_wind = Vec3.Mut.create ();
    s_airspeed = Vec3.Mut.create ();
    s_airspeed_body = Vec3.Mut.create ();
    s_force = Vec3.Mut.create ();
    s_torque = Vec3.Mut.create ();
    s_ground = [| 0.0 |];
  }

(* The simulated clock sits in its own all-float record so advancing it
   stores an unboxed float (a [mutable float] in the mixed record below
   would box on every step). *)
type clock = { mutable elapsed : float }

type t = {
  airframe : Airframe.t;
  environment : Environment.t;
  rng : Avis_util.Rng.t;
  body : Rigid_body.t;
  motors : Motor.t;
  clock : clock;
  mutable crashed : bool;
  mutable crash_event : contact_event option;
  mutable fence_breached : bool;
  mutable resting : bool;
  scratch : scratch;
}

(* Impact limits: a multicopter landing gear tolerates roughly 2.5 m/s of
   sink and modest lateral scrub; beyond that we call it a crash. *)
let crash_sink_speed = 2.5
let crash_lateral_speed = 2.0
let tipover_tilt_rad = Float.pi /. 4.0
let ground_friction = 8.0

let create ?environment ?rng ?(airframe = Airframe.iris) ?(position = Vec3.zero) () =
  let environment =
    match environment with Some e -> e | None -> Environment.benign ()
  in
  let rng = match rng with Some r -> r | None -> Avis_util.Rng.create 0 in
  {
    airframe;
    environment;
    rng;
    body = Rigid_body.create ~position ();
    motors = Motor.create airframe;
    clock = { elapsed = 0.0 };
    crashed = false;
    crash_event = None;
    fence_breached = false;
    resting = true;
    scratch = make_scratch ();
  }

let copy t =
  {
    airframe = t.airframe;
    environment = Environment.copy t.environment;
    rng = Avis_util.Rng.copy t.rng;
    body = Rigid_body.copy t.body;
    motors = Motor.copy t.motors;
    clock = { elapsed = t.clock.elapsed };
    crashed = t.crashed;
    crash_event = t.crash_event;
    fence_breached = t.fence_breached;
    resting = t.resting;
    scratch = make_scratch ();
  }

(* A snapshot flattens the numeric state into one float blob with an exact
   byte size: time, three latched flags, the 16 body floats and the motor
   bank. Immutable structure (airframe, environment statics, a latched
   crash event) is shared; the RNG and gust process are copied. *)
type snapshot = {
  snap_airframe : Airframe.t;
  snap_environment : Environment.t;
  snap_rng : Avis_util.Rng.t;
  snap_crash_event : contact_event option;
  snap_blob : float array;
}

let flag b = if b then 1.0 else 0.0

let snapshot t =
  let blob =
    Array.make (4 + Rigid_body.float_count + Motor.float_count t.motors) 0.0
  in
  blob.(0) <- t.clock.elapsed;
  blob.(1) <- flag t.crashed;
  blob.(2) <- flag t.fence_breached;
  blob.(3) <- flag t.resting;
  Rigid_body.blit_to_floats t.body blob ~pos:4;
  Motor.blit_to_floats t.motors blob ~pos:(4 + Rigid_body.float_count);
  {
    snap_airframe = t.airframe;
    snap_environment = Environment.copy t.environment;
    snap_rng = Avis_util.Rng.copy t.rng;
    snap_crash_event = t.crash_event;
    snap_blob = blob;
  }

let snapshot_bytes s = Array.length s.snap_blob * 8

let restore s =
  let blob = s.snap_blob in
  let motors = Motor.create s.snap_airframe in
  Motor.restore_floats motors blob ~pos:(4 + Rigid_body.float_count);
  {
    airframe = s.snap_airframe;
    environment = Environment.copy s.snap_environment;
    rng = Avis_util.Rng.copy s.snap_rng;
    body = Rigid_body.of_floats blob ~pos:4;
    motors;
    clock = { elapsed = blob.(0) };
    crashed = blob.(1) <> 0.0;
    crash_event = s.snap_crash_event;
    fence_breached = blob.(2) <> 0.0;
    resting = blob.(3) <> 0.0;
    scratch = make_scratch ();
  }

let encode_contact b e =
  let open Avis_util.Codec in
  match e with
  | Touchdown { speed } ->
    w_u8 b 0;
    w_f64 b speed
  | Ground_impact { speed } ->
    w_u8 b 1;
    w_f64 b speed
  | Obstacle_strike { label; speed } ->
    w_u8 b 2;
    w_string b label;
    w_f64 b speed
  | Tipover -> w_u8 b 3

let decode_contact r =
  let open Avis_util.Codec in
  match r_u8 r with
  | 0 -> Touchdown { speed = r_f64 r }
  | 1 -> Ground_impact { speed = r_f64 r }
  | 2 ->
    let label = r_string r in
    let speed = r_f64 r in
    Obstacle_strike { label; speed }
  | 3 -> Tipover
  | t -> corrupt "bad contact-event tag %d" t

let encode_snapshot b s =
  let open Avis_util.Codec in
  w_version b 1;
  Airframe.encode b s.snap_airframe;
  Environment.encode b s.snap_environment;
  w_i64 b (Avis_util.Rng.to_bits s.snap_rng);
  w_option b encode_contact s.snap_crash_event;
  w_float_array b s.snap_blob

let decode_snapshot r =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let snap_airframe = Airframe.decode r in
  let snap_environment = Environment.decode r in
  let snap_rng = Avis_util.Rng.of_bits (r_i64 r) in
  let snap_crash_event = r_option r decode_contact in
  let snap_blob = r_float_array r in
  let expected =
    4 + Rigid_body.float_count
    + Motor.float_count (Motor.create snap_airframe)
  in
  if Array.length snap_blob <> expected then
    corrupt "world blob has %d floats (want %d)" (Array.length snap_blob)
      expected;
  { snap_airframe; snap_environment; snap_rng; snap_crash_event; snap_blob }

let airframe t = t.airframe
let environment t = t.environment
let body t = t.body
let[@inline] time t = t.clock.elapsed
let crashed t = t.crashed
let crash_event t = t.crash_event
let fence_breached t = t.fence_breached

(* Lane hooks: the batched stepper (Lanes) gathers a world into its columns,
   steps it there, and scatters the result back, so it needs read/write
   access to exactly the state [snapshot] captures — the clock cell, the
   latched flags and event, and the collaborator pointers. *)
let clock t = t.clock
let rng t = t.rng
let motors t = t.motors
let resting t = t.resting
let set_crashed t b = t.crashed <- b
let set_fence_breached t b = t.fence_breached <- b
let set_resting t b = t.resting <- b
let set_crash_event t e = t.crash_event <- e

let on_ground t =
  let b = t.body in
  let px = b.Rigid_body.position.Vec3.Mut.x
  and py = b.Rigid_body.position.Vec3.Mut.y in
  let ground = Environment.ground_altitude_xyz t.environment ~x:px ~y:py in
  b.Rigid_body.position.Vec3.Mut.z <= ground +. 0.02

let latch_crash t event =
  t.crashed <- true;
  t.crash_event <- Some event;
  Vec3.Mut.set t.body.Rigid_body.velocity ~x:0.0 ~y:0.0 ~z:0.0;
  Vec3.Mut.set t.body.Rigid_body.angular_velocity ~x:0.0 ~y:0.0 ~z:0.0

let settle_on_ground t ground =
  let b = t.body in
  b.Rigid_body.position.Vec3.Mut.z <- ground;
  let v = b.Rigid_body.velocity in
  v.Vec3.Mut.z <- Float.max 0.0 v.Vec3.Mut.z

(* Contact/fence/crash resolution on the post-integration state — shared by
   the optimised and reference steps (both feed it the same ground level,
   sampled before integration, as the original code did). Steady flight and
   steady rest both take allocation-free paths; events allocate, but an
   event either latches a crash or fires once per touchdown. *)
let post_step t =
  let ground = t.scratch.s_ground.(0) in
  let b = t.body in
  let open Vec3.Mut in
  let px = b.Rigid_body.position.x
  and py = b.Rigid_body.position.y
  and pz = b.Rigid_body.position.z in
  if
    Environment.has_fence t.environment
    && Environment.breaches_fence_xyz t.environment ~x:px ~y:py ~z:pz
  then t.fence_breached <- true;
  let hit =
    if Environment.has_obstacles t.environment then
      Environment.obstacle_at t.environment ~x:px ~y:py ~z:pz
    else None
  in
  match hit with
  | Some o when Rigid_body.speed b > 0.5 ->
    let e =
      Obstacle_strike { label = o.Environment.label; speed = Rigid_body.speed b }
    in
    latch_crash t e;
    Some e
  | Some _ | None ->
    let z = pz in
    if z < ground then begin
      let sink = -.b.Rigid_body.velocity.z in
      let lateral = Rigid_body.horizontal_speed b in
      if sink > crash_sink_speed || lateral > crash_lateral_speed then begin
        settle_on_ground t ground;
        let e = Ground_impact { speed = Float.max sink lateral } in
        latch_crash t e;
        Some e
      end
      else if Quat.Mut.tilt b.Rigid_body.attitude > tipover_tilt_rad then begin
        settle_on_ground t ground;
        latch_crash t Tipover;
        Some Tipover
      end
      else begin
        settle_on_ground t ground;
        let was_resting = t.resting in
        t.resting <- true;
        if was_resting then None else Some (Touchdown { speed = sink })
      end
    end
    else if
      (* Resting contact: tipping over on the ground (e.g. motors kept
         running after a missed touchdown) is also a crash. *)
      z <= ground +. 0.02
      && Quat.Mut.tilt b.Rigid_body.attitude > tipover_tilt_rad
    then begin
      latch_crash t Tipover;
      Some Tipover
    end
    else begin
      if z > ground +. 0.05 then t.resting <- false;
      None
    end

let step t ~motor_commands ~dt =
  t.clock.elapsed <- t.clock.elapsed +. dt;
  if t.crashed then None
  else begin
    Motor.command t.motors motor_commands;
    Motor.step t.motors dt;
    let b = t.body in
    let frame = t.airframe in
    let s = t.scratch in
    let open Vec3.Mut in
    (* thrust_world = attitude ⊗ (0, 0, total thrust). Direct field stores
       and a cell read: under -opaque (dev builds) cross-module [@inline]
       does not apply, so no float may cross a module boundary here. *)
    s.s_thrust.x <- 0.0;
    s.s_thrust.y <- 0.0;
    s.s_thrust.z <- (Motor.total_thrust_cell t.motors).(0);
    Quat.Mut.rotate s.s_thrust b.Rigid_body.attitude s.s_thrust;
    let gravity_z = -.frame.Airframe.mass_kg *. Airframe.gravity in
    Environment.wind_into t.environment t.rng dt s.s_wind;
    Vec3.Mut.sub s.s_airspeed b.Rigid_body.velocity s.s_wind;
    let neg_drag = -.frame.Airframe.linear_drag in
    let drag_x = neg_drag *. s.s_airspeed.x in
    let drag_y = neg_drag *. s.s_airspeed.y in
    let drag_z = neg_drag *. s.s_airspeed.z in
    Environment.ground_altitude_into t.environment ~pos:b.Rigid_body.position
      s.s_ground;
    let ground = s.s_ground.(0) in
    let contact = b.Rigid_body.position.z <= ground +. 1e-9 in
    (* Ground reaction: cancel any net downward force while in contact. *)
    let normal_z =
      if contact then begin
        let net_z = s.s_thrust.z +. gravity_z +. drag_z in
        if net_z < 0.0 then -.net_z else 0.0
      end
      else 0.0
    in
    let fric_x, fric_y, fric_z =
      if contact then begin
        let k = -.ground_friction *. frame.Airframe.mass_kg in
        (* friction = k * horizontal velocity; the z term is k * 0.0 as in
           the vector original (the sign of that zero matters for bit
           identity). *)
        ( k *. b.Rigid_body.velocity.x,
          k *. b.Rigid_body.velocity.y,
          k *. 0.0 )
      end
      else (0.0, 0.0, 0.0)
    in
    (* force = fold add zero [thrust; gravity; drag; normal; friction],
       with gravity and normal zero outside z. *)
    s.s_force.x <- (((0.0 +. s.s_thrust.x) +. 0.0) +. drag_x) +. 0.0 +. fric_x;
    s.s_force.y <- (((0.0 +. s.s_thrust.y) +. 0.0) +. drag_y) +. 0.0 +. fric_y;
    s.s_force.z <-
      (((0.0 +. s.s_thrust.z) +. gravity_z) +. drag_z) +. normal_z +. fric_z;
    Quat.Mut.rotate_inv s.s_airspeed_body b.Rigid_body.attitude s.s_airspeed;
    Motor.body_torque_into t.motors ~rate:b.Rigid_body.angular_velocity
      ~airspeed_body:s.s_airspeed_body ~dst:s.s_torque;
    let neg_adrag = -.frame.Airframe.angular_drag in
    let rate = b.Rigid_body.angular_velocity in
    s.s_torque.x <- s.s_torque.x +. (neg_adrag *. rate.x);
    s.s_torque.y <- s.s_torque.y +. (neg_adrag *. rate.y);
    s.s_torque.z <- s.s_torque.z +. (neg_adrag *. rate.z);
    if contact && normal_z <> 0.0 then begin
      (* Resting on the gear: the ground damps rotation strongly, but a
         sustained differential-thrust torque can still tip the vehicle. *)
      s.s_torque.x <- s.s_torque.x +. (-1.0 *. rate.x);
      s.s_torque.y <- s.s_torque.y +. (-1.0 *. rate.y);
      s.s_torque.z <- s.s_torque.z +. (-1.0 *. rate.z)
    end;
    Rigid_body.step b ~inertia:frame.Airframe.inertia ~mass:frame.Airframe.mass_kg
      ~force:s.s_force ~torque:s.s_torque ~dt;
    post_step t
  end

(* The pre-optimisation step, preserved verbatim in its allocating
   pure-vector form: the hot-loop bench's cold baseline, and the oracle the
   identity tests compare [step] against bit for bit. *)
let step_reference t ~motor_commands ~dt =
  t.clock.elapsed <- t.clock.elapsed +. dt;
  if t.crashed then None
  else begin
    Motor.command t.motors motor_commands;
    Motor.step t.motors dt;
    let b = t.body in
    let frame = t.airframe in
    let position0 = Rigid_body.position_v b in
    let velocity0 = Rigid_body.velocity_v b in
    let attitude0 = Rigid_body.attitude_q b in
    let omega0 = Rigid_body.angular_velocity_v b in
    let thrust_body =
      Vec3.make 0.0 0.0 (Array.fold_left ( +. ) 0.0 (Motor.thrusts t.motors))
    in
    let thrust_world = Quat.rotate attitude0 thrust_body in
    let gravity =
      Vec3.make 0.0 0.0 (-.frame.Airframe.mass_kg *. Airframe.gravity)
    in
    let wind = Environment.wind_at t.environment t.rng dt in
    let airspeed = Vec3.sub velocity0 wind in
    let drag = Vec3.scale (-.frame.Airframe.linear_drag) airspeed in
    let ground = Environment.ground_altitude t.environment position0 in
    t.scratch.s_ground.(0) <- ground;
    let contact = position0.Vec3.z <= ground +. 1e-9 in
    let normal =
      if contact then
        let net_z = thrust_world.Vec3.z +. gravity.Vec3.z +. drag.Vec3.z in
        if net_z < 0.0 then Vec3.make 0.0 0.0 (-.net_z) else Vec3.zero
      else Vec3.zero
    in
    let friction =
      if contact then
        Vec3.scale
          (-.ground_friction *. frame.Airframe.mass_kg)
          (Vec3.horizontal velocity0)
      else Vec3.zero
    in
    let force =
      List.fold_left Vec3.add Vec3.zero
        [ thrust_world; gravity; drag; normal; friction ]
    in
    let torque =
      let motor_torque =
        let airspeed_body = Quat.rotate_inv attitude0 airspeed in
        Vec3.add
          (Motor.body_torque t.motors ~rate:omega0 ~airspeed_body)
          (Vec3.scale (-.frame.Airframe.angular_drag) omega0)
      in
      if contact && normal <> Vec3.zero then
        Vec3.add motor_torque (Vec3.scale (-1.0) omega0)
      else motor_torque
    in
    (* The pure rigid-body step (the pre-optimisation [Rigid_body.step]). *)
    let mass = frame.Airframe.mass_kg in
    let inertia = frame.Airframe.inertia in
    let accel = Vec3.scale (1.0 /. mass) force in
    let velocity = Vec3.add velocity0 (Vec3.scale dt accel) in
    let position = Vec3.add position0 (Vec3.scale dt velocity) in
    let open Vec3 in
    let coriolis =
      make
        ((inertia.z -. inertia.y) *. omega0.y *. omega0.z)
        ((inertia.x -. inertia.z) *. omega0.z *. omega0.x)
        ((inertia.y -. inertia.x) *. omega0.x *. omega0.y)
    in
    let angular_accel =
      make
        ((torque.x -. coriolis.x) /. inertia.x)
        ((torque.y -. coriolis.y) /. inertia.y)
        ((torque.z -. coriolis.z) /. inertia.z)
    in
    let omega = add omega0 (scale dt angular_accel) in
    let attitude = Quat.integrate attitude0 omega dt in
    Rigid_body.set_acceleration b accel;
    Rigid_body.set_velocity b velocity;
    Rigid_body.set_position b position;
    Rigid_body.set_angular_velocity b omega;
    Rigid_body.set_attitude b attitude;
    post_step t
  end

let pp_contact ppf = function
  | Touchdown { speed } -> Format.fprintf ppf "touchdown (%.2f m/s)" speed
  | Ground_impact { speed } -> Format.fprintf ppf "ground impact (%.2f m/s)" speed
  | Obstacle_strike { label; speed } ->
    Format.fprintf ppf "obstacle strike on %s (%.2f m/s)" label speed
  | Tipover -> Format.fprintf ppf "tipover"
