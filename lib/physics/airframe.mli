(** Physical parameters of the simulated vehicle.

    The evaluation uses the 3DR Iris quadcopter; [iris] carries parameters in
    the same regime as that airframe (1.5 kg class, ~25 cm arms, roughly
    2:1 thrust-to-weight). The flight stack and the model checker only read
    these through this record, so other airframes can be tested by
    constructing a different value. *)

open Avis_geo

type t = {
  name : string;
  mass_kg : float;
  arm_length_m : float;  (** Motor distance from the centre of mass. *)
  inertia : Vec3.t;  (** Diagonal of the inertia tensor, kg·m². *)
  motor_count : int;
  max_thrust_per_motor_n : float;
  motor_time_constant_s : float;  (** First-order rotor spin-up lag. *)
  torque_per_thrust : float;  (** Yaw reaction torque per newton of thrust. *)
  flap_rate_damping : float;
      (** Blade-flapping moment opposing roll/pitch rates, N·m per (rad/s)
          at full collective thrust. *)
  flap_back : float;
      (** Flap-back moment tilting the rotor disc against translation,
          N·m per (m/s) of perpendicular airspeed at full thrust. *)
  linear_drag : float;  (** Translational drag coefficient, N per (m/s). *)
  angular_drag : float;  (** Rotational drag coefficient, N·m per (rad/s). *)
}

val iris : t
(** 3DR Iris-class quadcopter. *)

val hexa : t
(** A heavier six-rotor craft, for testing beyond the Iris. *)

val by_name : string -> t option
(** Look up a registered airframe by [name]. *)

val encode : Buffer.t -> t -> unit
(** Versioned binary layout of the whole record (not just the name, so
    hand-constructed airframes snapshot too). *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}; raises [Avis_util.Codec.Corrupt] on malformed
    input. *)

val hover_throttle : t -> float
(** The per-motor throttle fraction at which total thrust balances gravity. *)

val max_total_thrust_n : t -> float

val gravity : float
(** Standard gravity, m/s². *)
