open Avis_geo

type t = {
  frame : Airframe.t;
  layout : (Vec3.t * float) array;
  commanded : float array;
  actual : float array; (* thrust fraction actually produced *)
  thrust_n : float array; (* newtons per motor, refreshed by [step] *)
  total_n : float array; (* single cell: cached sum of [thrust_n] *)
}

(* Motors evenly spaced around the airframe starting 45 degrees off the
   nose (so a quad is the usual X configuration), with alternating spin
   directions for yaw authority. Any even motor count works. *)
let mix_layout (frame : Airframe.t) =
  let n = frame.motor_count in
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Motor.mix_layout: motor count must be even and at least 4";
  Array.init n (fun i ->
      let angle =
        (Float.pi /. 4.0)
        -. (2.0 *. Float.pi *. float_of_int i /. float_of_int n)
      in
      let pos =
        Vec3.make
          (frame.arm_length_m *. cos angle)
          (frame.arm_length_m *. sin angle)
          0.0
      in
      let spin = if i mod 2 = 0 then 1.0 else -1.0 in
      (pos, spin))

(* Refresh the cached per-motor newtons and their sum from [actual]; the
   expressions match the pure [thrusts]/fold pair so the cache is
   bit-identical to recomputing. *)
let refresh_thrust t =
  let max_n = t.frame.Airframe.max_thrust_per_motor_n in
  t.total_n.(0) <- 0.0;
  for i = 0 to Array.length t.actual - 1 do
    t.thrust_n.(i) <- t.actual.(i) *. max_n;
    t.total_n.(0) <- t.total_n.(0) +. t.thrust_n.(i)
  done

let create frame =
  let n = frame.Airframe.motor_count in
  {
    frame;
    layout = mix_layout frame;
    commanded = Array.make n 0.0;
    actual = Array.make n 0.0;
    thrust_n = Array.make n 0.0;
    total_n = Array.make 1 0.0;
  }

let copy t =
  (* [frame] and [layout] are immutable and safely shared. *)
  {
    t with
    commanded = Array.copy t.commanded;
    actual = Array.copy t.actual;
    thrust_n = Array.copy t.thrust_n;
    total_n = Array.copy t.total_n;
  }

let command t cmds =
  if Array.length cmds <> Array.length t.commanded then
    invalid_arg "Motor.command: wrong motor count";
  for i = 0 to Array.length cmds - 1 do
    (* [Stats.clamp ~lo:0.0 ~hi:1.0] spelled out so the floats stay in
       registers (the helper is not guaranteed to inline). *)
    t.commanded.(i) <- Float.max 0.0 (Float.min 1.0 cmds.(i))
  done

let step t dt =
  let tau = t.frame.Airframe.motor_time_constant_s in
  let alpha = if tau <= 0.0 then 1.0 else 1.0 -. exp (-.dt /. tau) in
  for i = 0 to Array.length t.actual - 1 do
    t.actual.(i) <- t.actual.(i) +. (alpha *. (t.commanded.(i) -. t.actual.(i)))
  done;
  refresh_thrust t

let thrusts t =
  Array.map (fun f -> f *. t.frame.Airframe.max_thrust_per_motor_n) t.actual

let[@inline] total_thrust t = t.total_n.(0)

(* Read-only view of the cached total for the step kernel: returning the
   cell (a pointer) instead of the float keeps the call unboxed even when
   cross-module inlining is off (dev builds compile with -opaque). *)
let total_thrust_cell t = t.total_n

(* The layout is immutable and shared; the lane kernel iterates it when
   replicating [body_torque_into] column-wise. *)
let layout t = t.layout

(* Reference implementation of the torque model, kept for the hot-loop
   bench's cold baseline and the identity tests: allocates intermediate
   vectors per call, recomputing thrusts from scratch. *)
let body_torque t ~rate ~airspeed_body =
  let th = thrusts t in
  let torque = ref Vec3.zero in
  Array.iteri
    (fun i (pos, spin) ->
      let lift = Vec3.make 0.0 0.0 th.(i) in
      (* Differential-thrust roll/pitch torque plus yaw reaction torque. *)
      let arm = Vec3.cross pos lift in
      let yaw =
        Vec3.make 0.0 0.0 (spin *. t.frame.Airframe.torque_per_thrust *. th.(i))
      in
      torque := Vec3.add !torque (Vec3.add arm yaw))
    t.layout;
  (* Blade flapping, scaled by how hard the rotors are working: a moment
     opposing roll/pitch rates, and a flap-back moment about (z x v)
     tilting the disc against the perpendicular airflow. *)
  let thrust_fraction =
    Array.fold_left ( +. ) 0.0 th
    /. Float.max 1e-6 (Airframe.max_total_thrust_n t.frame)
  in
  let k_damp = t.frame.Airframe.flap_rate_damping *. thrust_fraction in
  let rate_term = Vec3.make (-.k_damp *. rate.Vec3.x) (-.k_damp *. rate.Vec3.y) 0.0 in
  let v_perp = Vec3.horizontal airspeed_body in
  let back_term =
    Vec3.scale
      (t.frame.Airframe.flap_back *. thrust_fraction)
      (Vec3.cross Vec3.unit_z v_perp)
  in
  Vec3.add !torque (Vec3.add rate_term back_term)

(* Allocation-free torque kernel: identical float expressions to
   [body_torque], accumulated into [dst] using the cached thrusts. *)
let body_torque_into t ~(rate : Vec3.Mut.vec) ~(airspeed_body : Vec3.Mut.vec)
    ~(dst : Vec3.Mut.vec) =
  let open Vec3.Mut in
  dst.x <- 0.0;
  dst.y <- 0.0;
  dst.z <- 0.0;
  let tpt = t.frame.Airframe.torque_per_thrust in
  for i = 0 to Array.length t.layout - 1 do
    let pos, spin = t.layout.(i) in
    let th = t.thrust_n.(i) in
    (* arm = cross pos (0, 0, th); yaw = (0, 0, spin * tpt * th). *)
    let arm_x = (pos.Vec3.y *. th) -. (pos.Vec3.z *. 0.0) in
    let arm_y = (pos.Vec3.z *. 0.0) -. (pos.Vec3.x *. th) in
    let arm_z = (pos.Vec3.x *. 0.0) -. (pos.Vec3.y *. 0.0) in
    let yaw_z = spin *. tpt *. th in
    dst.x <- dst.x +. (arm_x +. 0.0);
    dst.y <- dst.y +. (arm_y +. 0.0);
    dst.z <- dst.z +. (arm_z +. yaw_z)
  done;
  (* [Airframe.max_total_thrust_n] spelled out from the frame fields: the
     cross-module call would box its float return in dev builds. *)
  let max_total =
    float_of_int t.frame.Airframe.motor_count
    *. t.frame.Airframe.max_thrust_per_motor_n
  in
  let thrust_fraction = t.total_n.(0) /. Float.max 1e-6 max_total in
  let k_damp = t.frame.Airframe.flap_rate_damping *. thrust_fraction in
  let rate_x = -.k_damp *. rate.x and rate_y = -.k_damp *. rate.y in
  (* back_term = flap_back * fraction * (unit_z x horizontal airspeed). *)
  let kb = t.frame.Airframe.flap_back *. thrust_fraction in
  let vx = airspeed_body.x and vy = airspeed_body.y in
  let back_x = kb *. ((0.0 *. 0.0) -. (1.0 *. vy)) in
  let back_y = kb *. ((1.0 *. vx) -. (0.0 *. 0.0)) in
  let back_z = kb *. ((0.0 *. vy) -. (0.0 *. vx)) in
  dst.x <- dst.x +. (rate_x +. back_x);
  dst.y <- dst.y +. (rate_y +. back_y);
  dst.z <- dst.z +. (0.0 +. back_z)

(* Flat-snapshot support: [commanded] then [actual]; derived thrust caches
   are rebuilt on restore. *)
let float_count t = 2 * Array.length t.commanded

let blit_to_floats t (dst : float array) ~pos =
  let n = Array.length t.commanded in
  Array.blit t.commanded 0 dst pos n;
  Array.blit t.actual 0 dst (pos + n) n

let restore_floats t (src : float array) ~pos =
  let n = Array.length t.commanded in
  Array.blit src pos t.commanded 0 n;
  Array.blit src (pos + n) t.actual 0 n;
  refresh_thrust t
