open Avis_geo

type t = {
  frame : Airframe.t;
  layout : (Vec3.t * float) array;
  commanded : float array;
  actual : float array; (* thrust fraction actually produced *)
}

(* Motors evenly spaced around the airframe starting 45 degrees off the
   nose (so a quad is the usual X configuration), with alternating spin
   directions for yaw authority. Any even motor count works. *)
let mix_layout (frame : Airframe.t) =
  let n = frame.motor_count in
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Motor.mix_layout: motor count must be even and at least 4";
  Array.init n (fun i ->
      let angle =
        (Float.pi /. 4.0)
        -. (2.0 *. Float.pi *. float_of_int i /. float_of_int n)
      in
      let pos =
        Vec3.make
          (frame.arm_length_m *. cos angle)
          (frame.arm_length_m *. sin angle)
          0.0
      in
      let spin = if i mod 2 = 0 then 1.0 else -1.0 in
      (pos, spin))

let create frame =
  let n = frame.Airframe.motor_count in
  {
    frame;
    layout = mix_layout frame;
    commanded = Array.make n 0.0;
    actual = Array.make n 0.0;
  }

let copy t =
  (* [frame] and [layout] are immutable and safely shared. *)
  { t with commanded = Array.copy t.commanded; actual = Array.copy t.actual }

let command t cmds =
  if Array.length cmds <> Array.length t.commanded then
    invalid_arg "Motor.command: wrong motor count";
  Array.iteri
    (fun i c -> t.commanded.(i) <- Avis_util.Stats.clamp ~lo:0.0 ~hi:1.0 c)
    cmds

let step t dt =
  let tau = t.frame.Airframe.motor_time_constant_s in
  let alpha = if tau <= 0.0 then 1.0 else 1.0 -. exp (-.dt /. tau) in
  for i = 0 to Array.length t.actual - 1 do
    t.actual.(i) <- t.actual.(i) +. (alpha *. (t.commanded.(i) -. t.actual.(i)))
  done

let thrusts t =
  Array.map (fun f -> f *. t.frame.Airframe.max_thrust_per_motor_n) t.actual

let total_thrust t = Array.fold_left ( +. ) 0.0 (thrusts t)

let body_torque t ~rate ~airspeed_body =
  let th = thrusts t in
  let torque = ref Vec3.zero in
  Array.iteri
    (fun i (pos, spin) ->
      let lift = Vec3.make 0.0 0.0 th.(i) in
      (* Differential-thrust roll/pitch torque plus yaw reaction torque. *)
      let arm = Vec3.cross pos lift in
      let yaw =
        Vec3.make 0.0 0.0 (spin *. t.frame.Airframe.torque_per_thrust *. th.(i))
      in
      torque := Vec3.add !torque (Vec3.add arm yaw))
    t.layout;
  (* Blade flapping, scaled by how hard the rotors are working: a moment
     opposing roll/pitch rates, and a flap-back moment about (z x v)
     tilting the disc against the perpendicular airflow. *)
  let thrust_fraction =
    total_thrust t /. Float.max 1e-6 (Airframe.max_total_thrust_n t.frame)
  in
  let k_damp = t.frame.Airframe.flap_rate_damping *. thrust_fraction in
  let rate_term = Vec3.make (-.k_damp *. rate.Vec3.x) (-.k_damp *. rate.Vec3.y) 0.0 in
  let v_perp = Vec3.horizontal airspeed_body in
  let back_term =
    Vec3.scale
      (t.frame.Airframe.flap_back *. thrust_fraction)
      (Vec3.cross Vec3.unit_z v_perp)
  in
  Vec3.add !torque (Vec3.add rate_term back_term)
