open Avis_sensors

type flight_context = {
  phase : Phase.t;
  phase_entered_at : float;
  transitions : (float * Phase.t * Phase.t) list;
  time : float;
  gcs_lost_at : float option;
}

type phase_request = Fs_land | Fs_rtl | Fs_altitude_hold

type directives = {
  alt_mode : Estimator.alt_mode;
  att_mode : Estimator.att_mode;
  yaw_mode : Estimator.yaw_mode;
  pos_mode : Estimator.pos_mode;
  phase_request : phase_request option;
  takeoff_gate_open : bool;
  touchdown_blind : bool;
  reset_state_below : float option;
  land_abort_climb : bool;
  gentle_descent : bool;
  blind_position_hold : bool;
  degraded_position_hold : bool;
  heading_valid : bool;
  triggered_bugs : Bug.id list;
}

let defaults =
  {
    alt_mode = Estimator.Alt_fused;
    att_mode = Estimator.Att_normal;
    yaw_mode = Estimator.Yaw_compass;
    pos_mode = Estimator.Pos_gps;
    phase_request = None;
    takeoff_gate_open = true;
    touchdown_blind = false;
    reset_state_below = None;
    land_abort_climb = false;
    gentle_descent = false;
    blind_position_hold = false;
    degraded_position_hold = false;
    heading_valid = true;
    triggered_bugs = [];
  }

let bug_window_matches (info : Bug.info) ~ctx ~failed_at =
  let w = info.Bug.window in
  List.exists
    (fun (tm, from_phase, to_phase) ->
      Phase.matches w.Bug.from_phase from_phase
      && Phase.matches w.Bug.to_phase to_phase
      && failed_at >= tm -. w.Bug.pre_s
      && failed_at <= tm +. w.Bug.post_s)
    ctx.transitions

(* A kind is "lost" once every instance has failed; bug windows are judged
   against the moment the last instance died, because that is when the
   failure-handling logic in question actually runs. *)
let lost_at drivers kind = (Drivers.status drivers kind).Drivers.kind_failed_at

let stronger a b =
  (* Land beats RTL beats altitude-hold: the safest available action wins
     when several failsafes fire at once. *)
  match (a, b) with
  | Some Fs_land, _ | _, Some Fs_land -> Some Fs_land
  | Some Fs_rtl, _ | _, Some Fs_rtl -> Some Fs_rtl
  | Some Fs_altitude_hold, _ | _, Some Fs_altitude_hold -> Some Fs_altitude_hold
  | None, None -> None

let evaluate ~policy ~params ~bugs ~drivers ~ctx ~battery_low =
  let active bug_id failed_at =
    Bug.enabled bugs bug_id
    && bug_window_matches (Bug.info bug_id) ~ctx ~failed_at
  in
  let d = ref defaults in
  let trigger bug_id = d := { !d with triggered_bugs = bug_id :: !d.triggered_bugs } in
  let request r = d := { !d with phase_request = stronger !d.phase_request (Some r) } in

  (* Gyroscope loss. *)
  (match lost_at drivers Sensor.Gyroscope with
  | None -> ()
  | Some failed_at ->
    let age = ctx.time -. failed_at in
    ignore age;
    if active Bug.Px4_17057 failed_at then begin
      trigger Bug.Px4_17057;
      d := { !d with att_mode = Estimator.Att_frozen }
    end
    else if active Bug.Apm_16953 failed_at then begin
      trigger Bug.Apm_16953;
      d := { !d with att_mode = Estimator.Att_frozen }
    end
    else if active Bug.Px4_17046 failed_at then begin
      trigger Bug.Px4_17046;
      (* Flawed: the yaw loop's correction sign flips while the mission
         carries on; the heading estimate runs away and the return leg
         spirals outwards. *)
      d := { !d with att_mode = Estimator.Att_accel_only;
                     yaw_mode = Estimator.Yaw_flipped }
    end
    else begin
      (* Guarded: degrade to accelerometer-levelled attitude and land
         gently and level — the rate information is gone. *)
      d := { !d with att_mode = Estimator.Att_accel_only;
                     gentle_descent = true; degraded_position_hold = true };
      request Fs_land
    end);

  (* Accelerometer loss. *)
  (match lost_at drivers Sensor.Accelerometer with
  | None -> ()
  | Some failed_at ->
    let age = ctx.time -. failed_at in
    if active Bug.Apm_16021 failed_at then begin
      trigger Bug.Apm_16021;
      (* Flawed: vertical state falls back to a heavily lagged barometer
         filter; once the (late) variance check reacts, the vehicle lands
         on that same lagged estimate. *)
      d := { !d with alt_mode = Estimator.Alt_lagged };
      if age > 2.5 then request Fs_land
    end
    else if active Bug.Apm_16682 failed_at then begin
      trigger Bug.Apm_16682;
      (* Flawed (Fig. 1): abort the landing into a GPS-guided climb without
         checking that GPS altitude can support it. *)
      d := { !d with alt_mode = Estimator.Alt_gps_raw; land_abort_climb = true }
    end
    else if active Bug.Apm_9349 failed_at then begin
      trigger Bug.Apm_9349;
      (* Flawed: the touchdown detector keys on the accelerometer jolt and
         goes blind; motors keep fighting on the ground. *)
      d := { !d with touchdown_blind = true }
    end
    else begin
      (* Guarded: the vertical velocity estimate is degraded without the
         IMU, so land on open-loop collective; GPS position hold still
         works and cancels the frozen attitude-estimate error. *)
      d := { !d with gentle_descent = true };
      request Fs_land
    end);

  (* Barometer loss. *)
  (match lost_at drivers Sensor.Barometer with
  | None -> ()
  | Some failed_at ->
    if active Bug.Apm_16027 failed_at then begin
      trigger Bug.Apm_16027;
      d := { !d with alt_mode = Estimator.Alt_frozen }
    end
    else if active Bug.Px4_17181 failed_at then begin
      trigger Bug.Px4_17181;
      d := { !d with alt_mode = Estimator.Alt_none }
    end
    else if active Bug.Apm_4679 failed_at then begin
      trigger Bug.Apm_4679;
      d := { !d with alt_mode = Estimator.Alt_gps_raw }
    end
    else
      (* Guarded: GPS altitude is a coarser reference, so also land/fly
         vertical manoeuvres conservatively. *)
      d := { !d with alt_mode = Estimator.Alt_gps_fused; gentle_descent = true });

  (* Compass loss. *)
  (match lost_at drivers Sensor.Compass with
  | None -> ()
  | Some failed_at ->
    let age = ctx.time -. failed_at in
    if active Bug.Px4_17192 failed_at then begin
      trigger Bug.Px4_17192;
      d := { !d with heading_valid = false; yaw_mode = Estimator.Yaw_gyro_only }
    end
    else if active Bug.Apm_16967 failed_at then begin
      trigger Bug.Apm_16967;
      d := { !d with yaw_mode = Estimator.Yaw_stale_compass;
                     reset_state_below = Some 3.0 };
      if age > 4.0 then request Fs_land
    end
    else if active Bug.Apm_5428 failed_at then begin
      trigger Bug.Apm_5428;
      d := { !d with yaw_mode = Estimator.Yaw_flipped }
    end
    else d := { !d with yaw_mode = Estimator.Yaw_gyro_only });

  (* GPS loss. *)
  let gps_lost = lost_at drivers Sensor.Gps in
  (match gps_lost with
  | None -> ()
  | Some failed_at ->
    d := { !d with pos_mode = Estimator.Pos_dead_reckon };
    if active Bug.Apm_16020 failed_at then begin
      (* Flawed: keep flying the mission on dead-reckoned state. *)
      trigger Bug.Apm_16020;
      d := { !d with blind_position_hold = true }
    end
    else if active Bug.Apm_4455 failed_at then begin
      (* Flawed: position hold stays engaged without a position source. *)
      trigger Bug.Apm_4455;
      d := { !d with blind_position_hold = true }
    end
    else begin
      match policy.Policy.gps_loss_action with
      | Policy.Gps_failsafe_land -> request Fs_land
      | Policy.Gps_altitude_hold -> request Fs_altitude_hold
    end);

  (* Battery: a lost monitor is treated as a (conservative) low battery. *)
  let battery_lost = lost_at drivers Sensor.Battery in
  (match battery_lost with
  | None -> if battery_low then
      (match gps_lost with
      | None -> request Fs_rtl
      | Some _ -> request Fs_land)
  | Some failed_at ->
    let thirteen291 =
      Bug.enabled bugs Bug.Px4_13291
      && gps_lost <> None
      && (match gps_lost with
         | Some gps_at ->
           bug_window_matches (Bug.info Bug.Px4_13291) ~ctx ~failed_at:gps_at
         | None -> false)
    in
    ignore failed_at;
    if thirteen291 then begin
      trigger Bug.Px4_13291;
      (* Flawed: the battery failsafe returns to launch even though there
         is no local position to navigate with. *)
      d := { !d with blind_position_hold = true };
      request Fs_rtl
    end
    else
      match gps_lost with None -> request Fs_rtl | Some _ -> request Fs_land);

  (* GCS datalink loss: once the ground station's heartbeats have been
     silent past the timeout, take the personality's link-loss action. *)
  (match ctx.gcs_lost_at with
  | None -> ()
  | Some _ -> (
    match Policy.gcs_loss_action policy params with
    | Policy.Gcs_disabled -> ()
    | Policy.Gcs_altitude_hold -> request Fs_altitude_hold
    | Policy.Gcs_land -> request Fs_land
    | Policy.Gcs_rtl -> (
      (* Returning without a position source would be a blind flight;
         degrade to a landing, as the battery failsafe does. *)
      match gps_lost with None -> request Fs_rtl | Some _ -> request Fs_land)));

  (* Takeoff gates (PX4): refuse to climb without valid heading/altitude. *)
  if policy.Policy.takeoff_gates then begin
    let gate_open =
      !d.heading_valid && !d.alt_mode <> Estimator.Alt_none
    in
    d := { !d with takeoff_gate_open = gate_open }
  end;
  !d
