open Avis_geo

type demand = {
  pos_target : Vec3.t option;
  velocity_ff : Vec3.t;
  climb_demand : float;
  yaw_target : float;
  idle : bool;
  max_speed : float option;
  level_hold : bool;
  open_loop_descent : bool;
}

let hold_demand ~yaw ~pos =
  { pos_target = Some pos; velocity_ff = Vec3.zero; climb_demand = 0.0;
    yaw_target = yaw; idle = false; max_speed = None; level_hold = false;
    open_loop_descent = false }

type t = {
  params : Params.t;
  airframe : Avis_physics.Airframe.t;
  hover : float;
  climb_pid : Pid.t;
  layout : (Vec3.t * float) array; (* immutable mix layout, hoisted *)
  output : float array; (* reused across steps; consumers copy *)
}

let create ~params ~airframe () =
  {
    params;
    airframe;
    hover = Avis_physics.Airframe.hover_throttle airframe;
    climb_pid =
      Pid.create ~kp:params.Params.climb_vel_p ~ki:params.Params.climb_vel_i
        ~i_limit:2.0 ~out_limit:0.6 ();
    layout = Avis_physics.Motor.mix_layout airframe;
    output = Array.make airframe.Avis_physics.Airframe.motor_count 0.0;
  }

let copy t =
  { t with climb_pid = Pid.copy t.climb_pid; output = Array.copy t.output }

let reset t = Pid.reset t.climb_pid

let step t est demand ~dt =
  let p = t.params in
  if demand.idle then begin
    Array.fill t.output 0 (Array.length t.output) 0.0;
    t.output
  end
  else begin
    let pos = Estimator.position est in
    let vel = Estimator.velocity est in
    let yaw = Estimator.yaw est in
    (* Position loop: target -> velocity demand (horizontal). *)
    let speed_limit =
      match demand.max_speed with
      | Some s -> Float.min s p.Params.cruise_speed
      | None -> p.Params.cruise_speed
    in
    let vel_demand =
      let ff = Vec3.horizontal demand.velocity_ff in
      match demand.pos_target with
      | Some target ->
        let err = Vec3.horizontal (Vec3.sub target pos) in
        Vec3.clamp_norm speed_limit (Vec3.add ff (Vec3.scale p.Params.pos_p err))
      | None -> ff
    in
    (* Degraded attitude estimation tolerates only gentle manoeuvres. *)
    let tilt_limit =
      match Estimator.att_mode est with
      | Estimator.Att_accel_only -> 0.15
      | Estimator.Att_normal | Estimator.Att_frozen -> p.Params.max_tilt_rad
    in
    (* Velocity loop: velocity error -> world-frame acceleration demand.
       In level-hold (no position source) the dead-reckoned velocity is
       still good enough to brake with for a few seconds, then the
       feedback fades to a pure attitude hold. *)
    let accel_demand =
      let weight =
        if demand.level_hold then
          Avis_util.Stats.clamp ~lo:0.0 ~hi:1.0
            (1.0 -. (Estimator.dead_reckon_age est /. 8.0))
        else 1.0
      in
      let target_vel = if demand.level_hold then Vec3.zero else vel_demand in
      let err = Vec3.sub target_vel (Vec3.horizontal vel) in
      Vec3.clamp_norm
        (Avis_physics.Airframe.gravity *. tan tilt_limit)
        (Vec3.scale (weight *. p.Params.vel_p) err)
    in
    (* Acceleration demand -> lean angles in the body-yaw frame. *)
    let g = Avis_physics.Airframe.gravity in
    let cy = cos yaw and sy = sin yaw in
    let ax_b = (cy *. accel_demand.Vec3.x) +. (sy *. accel_demand.Vec3.y) in
    let ay_b = (-.sy *. accel_demand.Vec3.x) +. (cy *. accel_demand.Vec3.y) in
    let clamp_tilt = Avis_util.Stats.clamp ~lo:(-.tilt_limit) ~hi:tilt_limit in
    let pitch_demand = clamp_tilt (atan (ax_b /. g)) in
    let roll_demand = clamp_tilt (atan (-.ay_b /. g)) in
    (* Vertical loop: climb-rate error -> thrust around hover. *)
    let climb_demand =
      Avis_util.Stats.clamp ~lo:(-.p.Params.max_climb_rate)
        ~hi:p.Params.max_climb_rate demand.climb_demand
    in
    let climb_err = climb_demand -. Estimator.climb_rate est in
    let thrust =
      (* Tilt compensation: keep the vertical thrust component constant as
         the vehicle leans, capped at the commanded-tilt limit so a tumbled
         vehicle does not firewall the throttle. *)
      let tilt_comp =
        let c = cos (Quat.tilt (Estimator.attitude est)) in
        1.0 /. Float.max (cos p.Params.max_tilt_rad) c
      in
      if demand.open_loop_descent then
        (* Fixed collective just under hover: a steady drag-limited sink
           with no feedback path to go unstable through. *)
        Avis_util.Stats.clamp ~lo:0.05 ~hi:1.0 (t.hover *. 0.965 *. tilt_comp)
      else
        let correction = Pid.update t.climb_pid ~error:climb_err ~dt in
        Avis_util.Stats.clamp ~lo:0.05 ~hi:1.0
          ((t.hover +. correction) *. tilt_comp)
    in
    (* Attitude loop on the full quaternion error: decomposing into
       independent Euler-angle errors goes unstable when yawing while
       tilted, so the rate demand comes from the body-frame rotation vector
       between current and desired attitude. *)
    let attitude = Estimator.attitude est in
    let rate = Estimator.angular_rate est in
    (* The lean angles were computed in the *current* yaw frame, so the
       desired attitude must keep the current yaw; the heading change is a
       separate, slower yaw-rate demand. Mixing them (building the desired
       quaternion with the target yaw) mis-directs the lean by the yaw
       error and diverges during turns. *)
    let desired =
      Quat.of_euler ~roll:roll_demand ~pitch:pitch_demand ~yaw
    in
    let yaw_err =
      let e = demand.yaw_target -. yaw in
      let twopi = 2.0 *. Float.pi in
      let e = Float.rem e twopi in
      if e > Float.pi then e -. twopi
      else if e < -.Float.pi then e +. twopi
      else e
    in
    let rate_demand =
      let q_err = Quat.mul (Quat.conjugate attitude) desired in
      (* Take the short way round. *)
      let q_err =
        if q_err.Quat.w < 0.0 then
          {
            Quat.w = -.q_err.Quat.w;
            x = -.q_err.Quat.x;
            y = -.q_err.Quat.y;
            z = -.q_err.Quat.z;
          }
        else q_err
      in
      let w = Float.min 1.0 (Float.max (-1.0) q_err.Quat.w) in
      let angle = 2.0 *. acos w in
      let s = sqrt (Float.max 1e-12 (1.0 -. (w *. w))) in
      let err =
        if s < 1e-6 then Vec3.zero
        else
          Vec3.scale (angle /. s)
            (Vec3.make q_err.Quat.x q_err.Quat.y q_err.Quat.z)
      in
      Vec3.make
        (Avis_util.Stats.clamp ~lo:(-3.0) ~hi:3.0 (p.Params.att_p *. err.Vec3.x))
        (Avis_util.Stats.clamp ~lo:(-3.0) ~hi:3.0 (p.Params.att_p *. err.Vec3.y))
        (Avis_util.Stats.clamp ~lo:(-0.7) ~hi:0.7 (p.Params.yaw_p *. yaw_err))
    in
    let torque_cmd =
      Vec3.make
        (p.Params.rate_p *. (rate_demand.Vec3.x -. rate.Vec3.x))
        (p.Params.rate_p *. (rate_demand.Vec3.y -. rate.Vec3.y))
        (p.Params.yaw_rate_p *. (rate_demand.Vec3.z -. rate.Vec3.z))
    in
    (* Mix thrust and torque demands onto the motors, into the reused
       output buffer (the simulator's motor model copies it). *)
    let arm = t.airframe.Avis_physics.Airframe.arm_length_m in
    for i = 0 to Array.length t.layout - 1 do
      let mpos, spin = t.layout.(i) in
      let open Vec3 in
      let roll_term = torque_cmd.x *. (mpos.y /. arm) in
      let pitch_term = torque_cmd.y *. (-.mpos.x /. arm) in
      let yaw_term = torque_cmd.z *. spin in
      t.output.(i) <-
        Float.max 0.0
          (Float.min 1.0 (thrust +. roll_term +. pitch_term +. yaw_term))
    done;
    t.output
  end

(* [hover] and [layout] are pure functions of the airframe, so only the
   airframe and the mutable state travel in the snapshot. *)
let encode b (t : t) =
  let open Avis_util.Codec in
  w_version b 1;
  Params.encode b t.params;
  Avis_physics.Airframe.encode b t.airframe;
  Pid.encode b t.climb_pid;
  w_float_array b t.output

let decode r : t =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let params = Params.decode r in
  let airframe = Avis_physics.Airframe.decode r in
  let climb_pid = Pid.decode r in
  let output = r_float_array r in
  if Array.length output <> airframe.Avis_physics.Airframe.motor_count then
    corrupt "control output length %d does not match motor count %d"
      (Array.length output) airframe.Avis_physics.Airframe.motor_count;
  {
    params;
    airframe;
    hover = Avis_physics.Airframe.hover_throttle airframe;
    climb_pid;
    layout = Avis_physics.Motor.mix_layout airframe;
    output;
  }
