open Avis_geo
open Avis_sensors

type alt_mode = Alt_fused | Alt_gps_fused | Alt_gps_raw | Alt_lagged | Alt_frozen | Alt_none

type att_mode = Att_normal | Att_frozen | Att_accel_only

type yaw_mode = Yaw_compass | Yaw_gyro_only | Yaw_stale_compass | Yaw_flipped

type pos_mode = Pos_gps | Pos_dead_reckon

type t = {
  params : Params.t;
  mutable prev_up_body : Vec3.t option;  (* for accel-only rate estimation *)
  mutable position : Vec3.t;
  mutable velocity : Vec3.t;
  mutable attitude : Quat.t;
  mutable angular_rate : Vec3.t;
  mutable alt_mode : alt_mode;
  mutable att_mode : att_mode;
  mutable yaw_mode : yaw_mode;
  mutable pos_mode : pos_mode;
  mutable heading_valid : bool;
  mutable last_gps_alt : float option;  (* for Alt_gps_raw differentiation *)
  mutable raw_climb : float;
  mutable accel_world : Vec3.t;  (* latest predicted world acceleration *)
  mutable vertical_degraded : bool;
  mutable dead_reckon_age : float;
}

let create ~params () =
  {
    params;
    prev_up_body = None;
    position = Vec3.zero;
    velocity = Vec3.zero;
    attitude = Quat.identity;
    angular_rate = Vec3.zero;
    alt_mode = Alt_fused;
    att_mode = Att_normal;
    yaw_mode = Yaw_compass;
    pos_mode = Pos_gps;
    heading_valid = true;
    last_gps_alt = None;
    raw_climb = 0.0;
    accel_world = Vec3.zero;
    vertical_degraded = false;
    dead_reckon_age = 0.0;
  }

let copy t =
  (* Every field is a mutable slot holding an immutable value, so a
     field-wise record copy is a deep copy. *)
  { t with position = t.position }

let set_alt_mode t m = t.alt_mode <- m
let set_att_mode t m = t.att_mode <- m
let set_yaw_mode t m = t.yaw_mode <- m
let set_pos_mode t m = t.pos_mode <- m
let alt_mode t = t.alt_mode
let att_mode t = t.att_mode
let yaw_mode t = t.yaw_mode
let pos_mode t = t.pos_mode

let reset_state t =
  let _, _, yaw = Quat.to_euler t.attitude in
  t.position <- Vec3.zero;
  t.velocity <- Vec3.zero;
  t.attitude <- Quat.of_euler ~roll:0.0 ~pitch:0.0 ~yaw

let wrap_angle a =
  let twopi = 2.0 *. Float.pi in
  let a = Float.rem a twopi in
  if a > Float.pi then a -. twopi else if a < -.Float.pi then a +. twopi else a

(* Complementary-filter gains (1/s). *)
let k_tilt = 0.5
let k_yaw = 1.5
let k_alt = 2.5
let k_alt_gps = 2.2
let k_climb = 1.5
let k_pos = 1.2
let k_vel = 1.6
let lag_tau = 2.5

let accel_reading d =
  match (Drivers.status d Sensor.Accelerometer).Drivers.fresh with
  | Some (Sensor.Accel v) -> Some v
  | Some _ | None -> None

let gyro_reading d =
  match (Drivers.status d Sensor.Gyroscope).Drivers.fresh with
  | Some (Sensor.Gyro v) -> Some v
  | Some _ | None -> None

let compass_fresh d =
  match (Drivers.status d Sensor.Compass).Drivers.fresh with
  | Some (Sensor.Heading h) -> Some h
  | Some _ | None -> None

let compass_stale d =
  match (Drivers.status d Sensor.Compass).Drivers.stale with
  | Some (Sensor.Heading h) -> Some h
  | Some _ | None -> None

let baro_fresh d =
  match (Drivers.status d Sensor.Barometer).Drivers.fresh with
  | Some (Sensor.Pressure_alt a) -> Some a
  | Some _ | None -> None

let gps_fresh d =
  match (Drivers.status d Sensor.Gps).Drivers.fresh with
  | Some (Sensor.Gps_fix { position; velocity; hdop = _ }) ->
    Some (position, velocity)
  | Some _ | None -> None

let update_attitude t d ~dt =
  match t.att_mode with
  | Att_frozen ->
    (* The flawed path: rate and attitude stop evolving; the controllers
       keep consuming the stale state. *)
    ()
  | Att_accel_only ->
    (* Gyro gone: track the measured gravity direction directly, and
       recover roll/pitch body rates by differentiating it — crude, but
       enough damping for gentle flight. *)
    (match accel_reading d with
    | Some f ->
      let up_body = Vec3.normalize f in
      let measured_up_world = Quat.rotate t.attitude up_body in
      let err = Vec3.cross measured_up_world Vec3.unit_z in
      let gain = 6.0 in
      let correction = Vec3.scale (gain *. dt) err in
      let angle = Vec3.norm correction in
      if angle > 1e-9 then
        t.attitude <- Quat.mul (Quat.of_axis_angle correction angle) t.attitude;
      (match t.prev_up_body with
      | Some prev when dt > 0.0 ->
        (* up_body is fixed in the world; its apparent motion in the body
           frame is -omega x up, so omega_tilt = up x d(up)/dt. *)
        let dup = Vec3.scale (1.0 /. dt) (Vec3.sub up_body prev) in
        let rate = Vec3.cross up_body dup in
        t.angular_rate <-
          Vec3.add (Vec3.scale 0.85 t.angular_rate) (Vec3.scale 0.15 rate)
      | Some _ | None -> ());
      t.prev_up_body <- Some up_body
    | None -> ())
  | Att_normal ->
    (match gyro_reading d with
    | Some rate -> t.angular_rate <- rate
    | None -> ());
    t.attitude <- Quat.integrate t.attitude t.angular_rate dt;
    (* Tilt correction: the measured specific force points along body-up
       when the vehicle is not accelerating hard. *)
    (match accel_reading d with
    | Some f ->
      let n = Vec3.norm f in
      let g = Avis_physics.Airframe.gravity in
      if n > 0.5 *. g && n < 1.5 *. g then begin
        let measured_up_world = Quat.rotate t.attitude (Vec3.normalize f) in
        let err = Vec3.cross measured_up_world Vec3.unit_z in
        let correction = Vec3.scale (k_tilt *. dt) err in
        let angle = Vec3.norm correction in
        if angle > 1e-9 then
          t.attitude <- Quat.mul (Quat.of_axis_angle correction angle) t.attitude
      end
    | None -> ())

let update_yaw t d ~dt =
  (* Fresh-compass corrections are applied once per sample and scale with
     the sample period; the flawed stale modes run every cycle and scale
     with dt. *)
  let period = t.params.Params.compass_period in
  let apply_correction target gain =
    let _, _, yaw = Quat.to_euler t.attitude in
    let err = wrap_angle (target -. yaw) in
    let step = gain *. period *. err in
    t.attitude <- Quat.mul (Quat.of_axis_angle Vec3.unit_z step) t.attitude
  in
  match t.yaw_mode with
  | Yaw_compass -> (
    match compass_fresh d with
    | Some h ->
      t.heading_valid <- true;
      apply_correction h k_yaw
    | None -> ())
  | Yaw_gyro_only -> ()
  | Yaw_stale_compass -> (
    (* Flawed: the stale heading is treated as current truth, pinning the
       estimate to where the vehicle pointed when the compass died. The
       stale value is available every cycle, so the step scales with dt. *)
    match compass_stale d with
    | Some h ->
      let _, _, yaw = Quat.to_euler t.attitude in
      let err = wrap_angle (h -. yaw) in
      let step = k_yaw *. dt *. err in
      t.attitude <- Quat.mul (Quat.of_axis_angle Vec3.unit_z step) t.attitude
    | None -> ())
  | Yaw_flipped -> (
    match compass_stale d with
    | Some h ->
      let _, _, yaw = Quat.to_euler t.attitude in
      let err = wrap_angle (h -. yaw) in
      (* Flawed sign: the "correction" drives the estimate away. *)
      let step = -.k_yaw *. dt *. err in
      t.attitude <- Quat.mul (Quat.of_axis_angle Vec3.unit_z step) t.attitude
    | None -> ())

let predicted_accel t d =
  match t.att_mode with
  | Att_frozen | Att_accel_only -> Vec3.zero
  | Att_normal -> (
    match accel_reading d with
    | Some f ->
      let gravity = Vec3.make 0.0 0.0 (-.Avis_physics.Airframe.gravity) in
      Vec3.add (Quat.rotate t.attitude f) gravity
    | None -> Vec3.zero)

let update_vertical t d ~dt =
  let a = t.accel_world in
  match t.alt_mode with
  | Alt_frozen -> ()
  | Alt_none -> ()
  | Alt_gps_raw -> (
    (* Flawed: with the IMU gone there is no vertical rate source, so the
       altitude estimate jumps to each raw GPS sample and the climb-rate
       estimate is stuck at zero. The vertical loop degenerates to
       undamped altitude-P control on metre-scale noise — tolerable at
       cruise altitude, fatal for altitude changes near the ground
       (Fig. 1). *)
    match gps_fresh d with
    | Some (gpos, _gvel) ->
      let z = gpos.Vec3.z in
      t.last_gps_alt <- Some z;
      t.raw_climb <- 0.0;
      t.position <- { t.position with Vec3.z = z };
      t.velocity <- { t.velocity with Vec3.z = 0.0 }
    | None -> ())
  | Alt_lagged -> (
    (* Flawed: no IMU prediction, just a long-time-constant pull towards
       the barometer; the estimate lags a climbing vehicle by seconds. *)
    match baro_fresh d with
    | Some alt ->
      let alpha = dt /. lag_tau in
      let z = t.position.Vec3.z in
      let z' = z +. (alpha *. (alt -. z)) in
      t.velocity <- { t.velocity with Vec3.z = (z' -. z) /. dt };
      t.position <- { t.position with Vec3.z = z' }
    | None -> ())
  | Alt_fused | Alt_gps_fused ->
    (* Predict with the IMU... *)
    let vz = t.velocity.Vec3.z +. (a.Vec3.z *. dt) in
    let z = t.position.Vec3.z +. (vz *. dt) in
    (* ...then correct towards the selected reference. *)
    let reference =
      match t.alt_mode with
      | Alt_fused -> baro_fresh d
      | Alt_gps_fused | Alt_gps_raw | Alt_lagged | Alt_frozen | Alt_none -> (
        match gps_fresh d with
        | Some (gpos, _) -> Some gpos.Vec3.z
        | None -> None)
    in
    (* Corrections land once per sensor sample; scale gains by the sample
       period so the filter bandwidth is independent of the control rate.
       Without an IMU prediction the innovation is the only velocity
       source, so the velocity gain must be much higher. *)
    let have_imu = a <> Vec3.zero in
    let gain, period =
      if t.alt_mode = Alt_fused then (k_alt, t.params.Params.baro_period)
      else (k_alt_gps, t.params.Params.gps_period)
    in
    (* Without an IMU the innovations are the whole observer; pick gains
       giving a critically damped second-order estimator. *)
    let gain = if have_imu then gain else 6.0 in
    let k_climb = if have_imu then k_climb else 8.0 in
    let z, vz =
      match reference with
      | Some alt ->
        let innovation = alt -. z in
        ( z +. (gain *. period *. innovation),
          vz +. (k_climb *. period *. innovation) )
      | None -> (z, vz)
    in
    t.position <- { t.position with Vec3.z = z };
    t.velocity <- { t.velocity with Vec3.z = vz }

let update_horizontal t d ~dt =
  let a = t.accel_world in
  let vx = t.velocity.Vec3.x +. (a.Vec3.x *. dt) in
  let vy = t.velocity.Vec3.y +. (a.Vec3.y *. dt) in
  let x = t.position.Vec3.x +. (vx *. dt) in
  let y = t.position.Vec3.y +. (vy *. dt) in
  let x, y, vx, vy =
    match t.pos_mode with
    | Pos_dead_reckon -> (x, y, vx, vy)
    | Pos_gps -> (
      match gps_fresh d with
      | Some (gpos, gvel) ->
        let period = t.params.Params.gps_period in
        (* Without the IMU prediction, the GPS innovations are the only
           information; weight them heavily or the estimate lags the
           vehicle by enough to destabilise the velocity loop. *)
        let have_imu = a <> Vec3.zero in
        let k_pos = if have_imu then k_pos else 3.0 in
        let k_vel = if have_imu then k_vel else 6.0 in
        let px = gpos.Vec3.x and py = gpos.Vec3.y in
        let gvx = gvel.Vec3.x and gvy = gvel.Vec3.y in
        ( x +. (k_pos *. period *. (px -. x)),
          y +. (k_pos *. period *. (py -. y)),
          vx +. (k_vel *. period *. (gvx -. vx)),
          vy +. (k_vel *. period *. (gvy -. vy)) )
      | None -> (x, y, vx, vy))
  in
  t.position <- Vec3.make x y t.position.Vec3.z;
  t.velocity <- Vec3.make vx vy t.velocity.Vec3.z

let update t d ~dt =
  update_attitude t d ~dt;
  (* A frozen attitude (the flawed gyro-loss path) freezes its heading
     corrections too: the whole attitude stack has stopped. *)
  if t.att_mode <> Att_frozen then update_yaw t d ~dt;
  t.accel_world <- predicted_accel t d;
  t.vertical_degraded <-
    (t.accel_world = Vec3.zero && t.att_mode <> Att_frozen)
    || (match t.alt_mode with
       | Alt_gps_raw | Alt_lagged | Alt_frozen | Alt_none -> true
       | Alt_fused | Alt_gps_fused -> false);
  update_vertical t d ~dt;
  update_horizontal t d ~dt;
  t.dead_reckon_age <-
    (match t.pos_mode with
    | Pos_dead_reckon -> t.dead_reckon_age +. dt
    | Pos_gps -> 0.0)

let position t = t.position
let velocity t = t.velocity
let attitude t = t.attitude
let angular_rate t = t.angular_rate

let yaw t =
  let _, _, y = Quat.to_euler t.attitude in
  y

let altitude t = t.position.Vec3.z
let climb_rate t = t.velocity.Vec3.z

let alt_valid t = t.alt_mode <> Alt_none

let vertical_degraded t = t.vertical_degraded

let dead_reckon_age t = t.dead_reckon_age

let heading_valid t = t.heading_valid
let set_heading_valid t v = t.heading_valid <- v

let alt_mode_tag = function
  | Alt_fused -> 0
  | Alt_gps_fused -> 1
  | Alt_gps_raw -> 2
  | Alt_lagged -> 3
  | Alt_frozen -> 4
  | Alt_none -> 5

let alt_mode_of_tag = function
  | 0 -> Alt_fused
  | 1 -> Alt_gps_fused
  | 2 -> Alt_gps_raw
  | 3 -> Alt_lagged
  | 4 -> Alt_frozen
  | 5 -> Alt_none
  | t -> Avis_util.Codec.corrupt "bad alt-mode tag %d" t

let att_mode_tag = function
  | Att_normal -> 0
  | Att_frozen -> 1
  | Att_accel_only -> 2

let att_mode_of_tag = function
  | 0 -> Att_normal
  | 1 -> Att_frozen
  | 2 -> Att_accel_only
  | t -> Avis_util.Codec.corrupt "bad att-mode tag %d" t

let yaw_mode_tag = function
  | Yaw_compass -> 0
  | Yaw_gyro_only -> 1
  | Yaw_stale_compass -> 2
  | Yaw_flipped -> 3

let yaw_mode_of_tag = function
  | 0 -> Yaw_compass
  | 1 -> Yaw_gyro_only
  | 2 -> Yaw_stale_compass
  | 3 -> Yaw_flipped
  | t -> Avis_util.Codec.corrupt "bad yaw-mode tag %d" t

let pos_mode_tag = function Pos_gps -> 0 | Pos_dead_reckon -> 1

let pos_mode_of_tag = function
  | 0 -> Pos_gps
  | 1 -> Pos_dead_reckon
  | t -> Avis_util.Codec.corrupt "bad pos-mode tag %d" t

let encode b (t : t) =
  let open Avis_util.Codec in
  w_version b 1;
  Params.encode b t.params;
  w_option b Vec3.encode t.prev_up_body;
  Vec3.encode b t.position;
  Vec3.encode b t.velocity;
  Quat.encode b t.attitude;
  Vec3.encode b t.angular_rate;
  w_u8 b (alt_mode_tag t.alt_mode);
  w_u8 b (att_mode_tag t.att_mode);
  w_u8 b (yaw_mode_tag t.yaw_mode);
  w_u8 b (pos_mode_tag t.pos_mode);
  w_bool b t.heading_valid;
  w_option b w_f64 t.last_gps_alt;
  w_f64 b t.raw_climb;
  Vec3.encode b t.accel_world;
  w_bool b t.vertical_degraded;
  w_f64 b t.dead_reckon_age

let decode r : t =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let params = Params.decode r in
  let prev_up_body = r_option r Vec3.decode in
  let position = Vec3.decode r in
  let velocity = Vec3.decode r in
  let attitude = Quat.decode r in
  let angular_rate = Vec3.decode r in
  let alt_mode = alt_mode_of_tag (r_u8 r) in
  let att_mode = att_mode_of_tag (r_u8 r) in
  let yaw_mode = yaw_mode_of_tag (r_u8 r) in
  let pos_mode = pos_mode_of_tag (r_u8 r) in
  let heading_valid = r_bool r in
  let last_gps_alt = r_option r r_f64 in
  let raw_climb = r_f64 r in
  let accel_world = Vec3.decode r in
  let vertical_degraded = r_bool r in
  let dead_reckon_age = r_f64 r in
  {
    params;
    prev_up_body;
    position;
    velocity;
    attitude;
    angular_rate;
    alt_mode;
    att_mode;
    yaw_mode;
    pos_mode;
    heading_valid;
    last_gps_alt;
    raw_climb;
    accel_world;
    vertical_degraded;
    dead_reckon_age;
  }
