(** Sensor- and datalink-failure handling — the code under test.

    Every control cycle this module looks at which sensor kinds have been
    lost — and whether the ground station's heartbeats have gone silent —
    and decides how the firmware responds: which estimator source modes to
    use, whether to request a failsafe mode change, and whether any of the
    auxiliary behaviours (touchdown detection, state resets, landing
    aborts) are affected.

    The *guarded* decisions are the safe ones; each reproduced bug replaces
    a guarded decision with the flawed one the paper found, and only fires
    when its registered trigger window matches the failure's timing — which
    is exactly why fault-injection timing matters and why SABRE prioritises
    mode boundaries. *)

type flight_context = {
  phase : Phase.t;
  phase_entered_at : float;
  transitions : (float * Phase.t * Phase.t) list;
      (** Mode-transition history, oldest first, including the initial
          entry into [Preflight] as [(0, Preflight, Preflight)]. *)
  time : float;
  gcs_lost_at : float option;
      (** When the ground station's heartbeat silence exceeded the
          timeout (the deadline itself, not the current time); [None]
          while the datalink is healthy or before first contact. *)
}

type phase_request =
  | Fs_land
  | Fs_rtl
  | Fs_altitude_hold  (** Degrade to Manual hold (PX4 GPS loss). *)

type directives = {
  alt_mode : Estimator.alt_mode;
  att_mode : Estimator.att_mode;
  yaw_mode : Estimator.yaw_mode;
  pos_mode : Estimator.pos_mode;
  phase_request : phase_request option;
  takeoff_gate_open : bool;
      (** False keeps the climb demand at zero during takeoff. *)
  touchdown_blind : bool;  (** APM-9349: touchdown detector disabled. *)
  reset_state_below : float option;
      (** APM-16967: reset the state estimate below this estimated
          altitude while landing. *)
  land_abort_climb : bool;
      (** APM-16682: abort the landing and climb to a "safe" altitude using
          raw GPS altitude as the reference. *)
  gentle_descent : bool;
      (** Guarded IMU loss: descend conservatively because the climb-rate
          estimate is degraded. *)
  blind_position_hold : bool;
      (** APM-4455: keep the position controller engaged on dead-reckoned
          state. The guarded behaviour drops horizontal position control
          when no position source remains. *)
  degraded_position_hold : bool;
      (** Guarded IMU loss: fly level instead of position-holding — the
          attitude/velocity estimates are too coarse for tight control. *)
  heading_valid : bool;
  triggered_bugs : Bug.id list;
      (** Which bug triggers matched this cycle (diagnostics only — the
          checker never reads this; it must detect misbehaviour from the
          vehicle's physics). *)
}

val bug_window_matches :
  Bug.info -> ctx:flight_context -> failed_at:float -> bool
(** Does a failure that began at [failed_at] fall inside the bug's window,
    given the observed transition history? *)

val evaluate :
  policy:Policy.t ->
  params:Params.t ->
  bugs:Bug.registry ->
  drivers:Drivers.t ->
  ctx:flight_context ->
  battery_low:bool ->
  directives
(** [params] is the vehicle's live parameter set (not the policy's
    defaults), so a GCS-written NAV_DLL_ACT / FS_GCS_TIMEOUT takes effect
    on the next control cycle. *)
