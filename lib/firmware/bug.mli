(** The catalogue of reproduced sensor bugs.

    Table II's ten previously-unknown bugs and Table V's five re-inserted
    known bugs are reproduced as flaws in this firmware's failure-handling
    logic. Each bug has a *trigger*: the sensor kind whose failure it
    mishandles, and the window — relative to a mode transition — in which
    the failure must begin. When a bug is enabled and its trigger matches,
    the firmware takes the flawed action implemented at the bug's site in
    [Failsafe]/[Estimator]; when disabled, the guarded (fixed) action runs
    instead.

    Unknown bugs are enabled by default (they were present in the code
    bases the paper checked); known bugs are disabled and can be
    re-inserted per Table V's methodology. *)

open Avis_sensors

type id =
  | Apm_16020
  | Apm_16021
  | Apm_16027
  | Apm_16967
  | Apm_16682
  | Apm_16953
  | Px4_17046
  | Px4_17057
  | Px4_17192
  | Px4_17181
  | Apm_4455
  | Apm_4679
  | Apm_5428
  | Apm_9349
  | Px4_13291

val all : id list

type firmware_kind = Ardupilot | Px4

val firmware_name : firmware_kind -> string

type symptom = Crash | Fly_away | Takeoff_failure

val symptom_to_string : symptom -> string

(** Where, relative to the flight's mode structure, the triggering failure
    must begin. *)
type window = {
  from_phase : Phase.pattern;
      (** The phase the vehicle was in before the boundary... *)
  to_phase : Phase.pattern;  (** ...and the phase after it. *)
  pre_s : float;
      (** Seconds before the transition in which a failure still counts. *)
  post_s : float;  (** Seconds after the transition. *)
}

type info = {
  id : id;
  report : string;  (** The paper's report number, e.g. "APM-16682". *)
  firmware : firmware_kind;
  symptom : symptom;
  sensor : Sensor.kind;
  window : window;
  known : bool;  (** True for Table V's pre-existing bugs. *)
  window_label : string;  (** The paper's "Failure Starting Moment" text. *)
  description : string;
  requires_second_failure : Sensor.kind option;
      (** PX4-13291 needs a second sensor (battery) to fail too. *)
}

val info : id -> info

val of_report : string -> id option
(** Look up by report number, e.g. ["APM-16021"]. *)

val unknown_bugs : firmware_kind -> id list
(** Table II bugs for a firmware. *)

val known_bugs : firmware_kind -> id list
(** Table V bugs for a firmware. *)

(** A per-vehicle set of enabled bugs. *)
type registry

val registry : ?enabled:id list -> firmware_kind -> registry
(** By default, the firmware's unknown bugs are enabled. *)

val copy_registry : registry -> registry
(** An independent copy of the enabled set. *)

val enabled : registry -> id -> bool
val enable : registry -> id -> unit
val disable : registry -> id -> unit
val enabled_list : registry -> id list

val encode_id : Buffer.t -> id -> unit
(** One stable byte per bug (its position in {!all}). *)

val decode_id : Avis_util.Codec.reader -> id
(** Inverse of {!encode_id}. Raises [Avis_util.Codec.Corrupt] on an unknown
    tag. *)
