open Avis_sensors

type kind_status = {
  healthy : bool;
  primary_failed_at : float option;
  kind_failed_at : float option;
  active_instance : int option;
  fresh : Sensor.reading option;
  stale : Sensor.reading option;
}

type kind_state = {
  kind : Sensor.kind;
  count : int;
  period : float;
  mutable next_sample : float;
  mutable failed : (int * float) list;  (* instance index -> failure time *)
  mutable fresh : Sensor.reading option;
  mutable stale : Sensor.reading option;
}

type t = {
  suite : Suite.t;
  hinj : Avis_hinj.Hinj.t;
  rng : Avis_util.Rng.t;
  kinds : kind_state list;
}

let period_for (params : Params.t) = function
  | Sensor.Accelerometer | Sensor.Gyroscope -> params.Params.imu_period
  | Sensor.Gps -> params.Params.gps_period
  | Sensor.Compass -> params.Params.compass_period
  | Sensor.Barometer -> params.Params.baro_period
  | Sensor.Battery -> params.Params.battery_period

let create ?rng ~params ~suite ~hinj () =
  let rng = match rng with Some r -> r | None -> Avis_util.Rng.create 0 in
  let kinds =
    List.filter_map
      (fun kind ->
        let count = Suite.count suite kind in
        if count = 0 then None
        else
          Some
            {
              kind;
              count;
              period = period_for params kind;
              next_sample = 0.0;
              failed = [];
              fresh = None;
              stale = None;
            })
      Sensor.all_kinds
  in
  { suite; hinj; rng; kinds }

type snapshot = { snap_rng : Avis_util.Rng.t; snap_kinds : kind_state list }

(* [failed] entries and readings are immutable, so copying the record's
   mutable slots is a deep copy. *)
let copy_kind ks = { ks with next_sample = ks.next_sample }

let snapshot t =
  {
    snap_rng = Avis_util.Rng.copy t.rng;
    snap_kinds = List.map copy_kind t.kinds;
  }

let restore ~suite ~hinj s =
  {
    suite;
    hinj;
    rng = Avis_util.Rng.copy s.snap_rng;
    kinds = List.map copy_kind s.snap_kinds;
  }

let instance_failed ks index = List.mem_assoc index ks.failed

let active_instance ks =
  let rec first i = if i >= ks.count then None
    else if instance_failed ks i then first (i + 1)
    else Some i
  in
  first 0

(* Probe every not-yet-failed instance (the health monitoring real firmware
   performs on backups too), recording clean failures, and read the
   lowest-indexed healthy instance. *)
let probe_and_read t ks world ~time =
  for index = 0 to ks.count - 1 do
    if not (instance_failed ks index) then begin
      let id = { Sensor.kind = ks.kind; index } in
      match Avis_hinj.Hinj.sensor_read t.hinj ~time id with
      | Avis_hinj.Hinj.Healthy -> ()
      | Avis_hinj.Hinj.Failed -> ks.failed <- (index, time) :: ks.failed
    end
  done;
  match active_instance ks with
  | None -> None
  | Some index -> Some (Suite.read t.suite world { Sensor.kind = ks.kind; index })

(* Degradations keep the sensor "responding" but corrupt its readings; the
   driver is none the wiser (the whole point of the richer fault model). *)
let corrupt t kind ~(stale : Sensor.reading option) (reading : Sensor.reading) =
  let open Avis_geo in
  let perturb offset v = v +. offset () in
  let perturb_vec offset v =
    Vec3.make (perturb offset v.Vec3.x) (perturb offset v.Vec3.y)
      (perturb offset v.Vec3.z)
  in
  let offset_of = function
    | Avis_hinj.Hinj.Extra_noise stddev ->
      fun () -> Avis_util.Rng.gaussian_scaled t.rng ~mean:0.0 ~stddev
    | Avis_hinj.Hinj.Constant_bias b -> fun () -> b
    | Avis_hinj.Hinj.Stuck_at_last -> fun () -> 0.0
  in
  match kind with
  | Avis_hinj.Hinj.Stuck_at_last -> (
    match stale with Some old -> old | None -> reading)
  | Avis_hinj.Hinj.Extra_noise _ | Avis_hinj.Hinj.Constant_bias _ -> (
    let offset = offset_of kind in
    match reading with
    | Sensor.Accel v -> Sensor.Accel (perturb_vec offset v)
    | Sensor.Gyro v -> Sensor.Gyro (perturb_vec offset v)
    | Sensor.Gps_fix { position; velocity; hdop } ->
      Sensor.Gps_fix { position = perturb_vec offset position; velocity; hdop }
    | Sensor.Heading h -> Sensor.Heading (perturb offset h)
    | Sensor.Pressure_alt a -> Sensor.Pressure_alt (perturb offset a)
    | Sensor.Battery_state { voltage; remaining } ->
      Sensor.Battery_state { voltage = perturb offset voltage; remaining })

let sample t world ~time =
  List.iter
    (fun ks ->
      ks.fresh <- None;
      if time >= ks.next_sample then begin
        ks.next_sample <- ks.next_sample +. ks.period;
        (* If scheduling fell far behind (it should not), resynchronise. *)
        if ks.next_sample <= time then ks.next_sample <- time +. ks.period;
        match probe_and_read t ks world ~time with
        | Some reading ->
          let reading =
            match active_instance ks with
            | Some index -> (
              let id = { Sensor.kind = ks.kind; index } in
              match Avis_hinj.Hinj.degradation_of t.hinj ~time id with
              | Some kind -> corrupt t kind ~stale:ks.stale reading
              | None -> reading)
            | None -> reading
          in
          ks.fresh <- Some reading;
          ks.stale <- Some reading
        | None -> ()
      end)
    t.kinds

let state_for t kind =
  match List.find_opt (fun ks -> ks.kind = kind) t.kinds with
  | Some ks -> ks
  | None -> invalid_arg ("Drivers: no such kind " ^ Sensor.kind_to_string kind)

let status t kind =
  let ks = state_for t kind in
  let active = active_instance ks in
  {
    healthy = active <> None;
    primary_failed_at = List.assoc_opt 0 ks.failed;
    kind_failed_at =
      (if active = None then
         match List.map snd ks.failed with
         | [] -> None
         | times -> Some (List.fold_left Float.max neg_infinity times)
       else None);
    active_instance = active;
    fresh = ks.fresh;
    stale = ks.stale;
  }

let kind_healthy t kind = (status t kind).healthy

let failure_start t kind =
  let ks = state_for t kind in
  match List.map snd ks.failed with
  | [] -> None
  | times -> Some (List.fold_left Float.min infinity times)

let encode_kind_state b (ks : kind_state) =
  let open Avis_util.Codec in
  Sensor.encode_kind b ks.kind;
  w_int b ks.count;
  w_f64 b ks.period;
  w_f64 b ks.next_sample;
  w_list b
    (fun b (index, at) ->
      w_int b index;
      w_f64 b at)
    ks.failed;
  w_option b Sensor.encode_reading ks.fresh;
  w_option b Sensor.encode_reading ks.stale

let decode_kind_state r : kind_state =
  let open Avis_util.Codec in
  let kind = Sensor.decode_kind r in
  let count = r_int r in
  let period = r_f64 r in
  let next_sample = r_f64 r in
  let failed =
    r_list r (fun r ->
        let index = r_int r in
        let at = r_f64 r in
        (index, at))
  in
  let fresh = r_option r Sensor.decode_reading in
  let stale = r_option r Sensor.decode_reading in
  { kind; count; period; next_sample; failed; fresh; stale }

let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  w_i64 b (Avis_util.Rng.to_bits s.snap_rng);
  w_list b encode_kind_state s.snap_kinds

let decode_snapshot r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let snap_rng = Avis_util.Rng.of_bits (r_i64 r) in
  let snap_kinds = r_list r decode_kind_state in
  { snap_rng; snap_kinds }
