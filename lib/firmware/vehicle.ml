open Avis_geo
open Avis_sensors
open Avis_mavlink

type mission_target =
  | T_takeoff of float
  | T_waypoint of int * Vec3.t  (* ordinal (1-based), local position *)
  | T_land
  | T_rtl

type after_takeoff = Run_mission | Hold_manual

type rtl_stage = Rtl_climb | Rtl_return

type t = {
  policy : Policy.t;
  fence : Avis_physics.Environment.fence option;
  mutable params : Params.t;
  bugs : Bug.registry;
  suite : Suite.t;
  hinj : Avis_hinj.Hinj.t;
  frame : Geodesy.frame;
  drivers : Drivers.t;
  estimator : Estimator.t;
  control : Control.t;
  protocol : Protocol.t;
  mutable time : float;
  mutable armed : bool;
  mutable phase : Phase.t;
  mutable phase_entered_at : float;
  mutable transitions : (float * Phase.t * Phase.t) list; (* newest first *)
  mutable targets : mission_target list;
  mutable target_index : int;
  mutable takeoff_target : float;
  mutable after_takeoff : after_takeoff;
  mutable manual_target : Vec3.t;
  mutable yaw_target : float;
  mutable land_capture : Vec3.t;
  mutable rtl_stage : rtl_stage;
  mutable rtl_capture : Vec3.t;
  mutable touchdown_since : float option;
  mutable alt_ema_fast : float;
  mutable alt_ema_slow : float;
  mutable alt_history : float list; (* slow EMA sampled every second, newest first *)
  mutable alt_history_next : float;
  mutable did_state_reset : bool;
  mutable triggered : Bug.id list;
  home : Vec3.t;
}

let create ?fence ?(airframe = Avis_physics.Airframe.iris) ~policy ~bugs ~suite
    ~hinj ~link ~frame () =
  let params = policy.Policy.params in
  let drivers = Drivers.create ~params ~suite ~hinj () in
  let estimator = Estimator.create ~params () in
  let control = Control.create ~params ~airframe () in
  let protocol = Protocol.create ~link ~frame ~params () in
  let t =
    {
      policy;
      fence;
      params;
      bugs;
      suite;
      hinj;
      frame;
      drivers;
      estimator;
      control;
      protocol;
      time = 0.0;
      armed = false;
      phase = Phase.Preflight;
      phase_entered_at = 0.0;
      transitions = [];
      targets = [];
      target_index = 0;
      takeoff_target = 0.0;
      after_takeoff = Hold_manual;
      manual_target = Vec3.zero;
      yaw_target = 0.0;
      land_capture = Vec3.zero;
      rtl_stage = Rtl_climb;
      rtl_capture = Vec3.zero;
      touchdown_since = None;
      alt_ema_fast = 0.0;
      alt_ema_slow = 0.0;
      alt_history = [];
      alt_history_next = 0.0;
      did_state_reset = false;
      triggered = [];
      home = Vec3.zero;
    }
  in
  Avis_hinj.Hinj.update_mode hinj ~time:0.0 (Phase.label Phase.Preflight);
  t

type snapshot = {
  snap_core : t;  (** A frozen copy; its sub-module references are unused. *)
  snap_drivers : Drivers.snapshot;
  snap_protocol : Protocol.snapshot;
}

let freeze t =
  {
    t with
    params = t.params;
    bugs = Bug.copy_registry t.bugs;
    estimator = Estimator.copy t.estimator;
    control = Control.copy t.control;
  }

let snapshot t =
  {
    snap_core = freeze t;
    snap_drivers = Drivers.snapshot t.drivers;
    snap_protocol = Protocol.snapshot t.protocol;
  }

let restore ~suite ~hinj ~link s =
  let t = freeze s.snap_core in
  {
    t with
    suite;
    hinj;
    drivers = Drivers.restore ~suite ~hinj s.snap_drivers;
    protocol = Protocol.restore ~link s.snap_protocol;
  }

let set_phase t phase =
  if not (Phase.equal t.phase phase) then begin
    t.transitions <- (t.time, t.phase, phase) :: t.transitions;
    t.phase <- phase;
    t.phase_entered_at <- t.time;
    t.touchdown_since <- None;
    t.alt_history <- [];
    Avis_hinj.Hinj.update_mode t.hinj ~time:t.time (Phase.label phase)
  end

(* Hold the last heading when close to the target: chasing the bearing of
   a nearby point makes the yaw spin as the vehicle passes it. *)
let bearing from_pos to_pos =
  let open Vec3 in
  let d = sub to_pos from_pos in
  if norm (horizontal d) < 5.0 then None else Some (atan2 d.y d.x)

let parse_mission t items =
  let waypoint_ordinal = ref 0 in
  List.filter_map
    (fun (item : Msg.mission_item) ->
      if item.Msg.command = Msg.cmd_takeoff then Some (T_takeoff item.Msg.z)
      else if item.Msg.command = Msg.cmd_waypoint then begin
        incr waypoint_ordinal;
        let local =
          Geodesy.to_local t.frame
            { Geodesy.lat = item.Msg.x; lon = item.Msg.y; alt = item.Msg.z }
        in
        Some (T_waypoint (!waypoint_ordinal, local))
      end
      else if item.Msg.command = Msg.cmd_land then Some T_land
      else if item.Msg.command = Msg.cmd_return_to_launch then Some T_rtl
      else None)
    items

(* Advance to the mission target at [t.target_index], entering the
   corresponding phase; called at takeoff completion and waypoint arrival. *)
let rec engage_current_target t =
  if t.target_index >= List.length t.targets then begin
    (* Mission exhausted: return home as ArduPilot's AUTO does. *)
    t.rtl_stage <- Rtl_climb;
    t.rtl_capture <- Estimator.position t.estimator;
    set_phase t Phase.Rtl
  end
  else
    match List.nth t.targets t.target_index with
    | T_takeoff alt ->
      t.takeoff_target <- alt;
      t.after_takeoff <- Run_mission;
      set_phase t Phase.Takeoff
    | T_waypoint (ordinal, _) -> set_phase t (Phase.Waypoint ordinal)
    | T_land ->
      t.land_capture <- Estimator.position t.estimator;
      set_phase t Phase.Land
    | T_rtl ->
      t.rtl_stage <- Rtl_climb;
      t.rtl_capture <- Estimator.position t.estimator;
      set_phase t Phase.Rtl

and advance_mission t =
  t.target_index <- t.target_index + 1;
  engage_current_target t

let handle_request t req =
  let est_pos = Estimator.position t.estimator in
  let airborne = Phase.is_airborne t.phase in
  match req with
  | Protocol.Req_arm ->
    let fresh = Phase.equal t.phase Phase.Preflight && not t.armed in
    if fresh then begin
      t.armed <- true;
      Control.reset t.control
    end;
    (* A retransmitted ARM that finds the vehicle already armed succeeded
       the first time; acknowledge it as such instead of refusing. *)
    Protocol.ack_command t.protocol ~command:Msg.cmd_arm_disarm
      ~accepted:(fresh || t.armed)
  | Protocol.Req_disarm ->
    let ok = not airborne in
    if ok then t.armed <- false;
    Protocol.ack_command t.protocol ~command:Msg.cmd_arm_disarm ~accepted:ok
  | Protocol.Req_takeoff alt ->
    let fresh = t.armed && Phase.equal t.phase Phase.Preflight in
    (* A duplicate of a takeoff already under way (same target, climbing
       or already holding at it) is acknowledged, not refused. *)
    let duplicate =
      t.armed && t.takeoff_target = alt
      && (Phase.equal t.phase Phase.Takeoff
         || (Phase.equal t.phase Phase.Manual && t.after_takeoff = Hold_manual))
    in
    if fresh then begin
      t.takeoff_target <- alt;
      t.after_takeoff <- Hold_manual;
      set_phase t Phase.Takeoff
    end;
    Protocol.ack_command t.protocol ~command:Msg.cmd_takeoff
      ~accepted:(fresh || duplicate)
  | Protocol.Req_auto ->
    if t.armed && Phase.equal t.phase Phase.Preflight then begin
      let targets = parse_mission t (Protocol.mission t.protocol) in
      if targets <> [] then begin
        t.targets <- targets;
        t.target_index <- 0;
        engage_current_target t
      end
    end
  | Protocol.Req_land ->
    (* A duplicate while already landing must not recapture the descent
       point mid-flight. *)
    if airborne && not (Phase.equal t.phase Phase.Land) then begin
      t.land_capture <- est_pos;
      set_phase t Phase.Land
    end;
    Protocol.ack_command t.protocol ~command:Msg.cmd_land ~accepted:airborne
  | Protocol.Req_rtl ->
    (* Likewise, a duplicate must not restart the RTL climb stage. *)
    if airborne && not (Phase.equal t.phase Phase.Rtl) then begin
      t.rtl_stage <- Rtl_climb;
      t.rtl_capture <- est_pos;
      set_phase t Phase.Rtl
    end;
    Protocol.ack_command t.protocol ~command:Msg.cmd_return_to_launch
      ~accepted:airborne
  | Protocol.Req_manual ->
    if airborne then begin
      t.manual_target <- est_pos;
      set_phase t Phase.Manual
    end
  | Protocol.Req_reposition target ->
    let ok = Phase.equal t.phase Phase.Manual in
    if ok then t.manual_target <- target;
    Protocol.ack_command t.protocol ~command:Msg.cmd_reposition ~accepted:ok
  | Protocol.Req_param_set (name, value) -> (
    (* Out-of-range values are clamped, unknown names answered with nothing
       (the GCS will time out), both as real firmware behaves. *)
    match Param_registry.apply_set t.params ~name ~value with
    | Some (params, accepted) ->
      t.params <- params;
      let index = Option.value ~default:0 (Param_registry.index_of name) in
      Protocol.send_param_value t.protocol ~name ~value:accepted ~index
    | None -> ())
  | Protocol.Req_param_list ->
    List.iteri
      (fun index entry ->
        Protocol.send_param_value t.protocol ~name:entry.Param_registry.name
          ~value:(entry.Param_registry.get t.params) ~index)
      Param_registry.all

(* The firmware's own geofence: return to launch before crossing it. *)
let check_fence t =
  match t.fence with
  | None -> ()
  | Some f ->
    if
      Phase.is_airborne t.phase
      && (not (Phase.equal t.phase Phase.Rtl))
      && (not (Phase.equal t.phase Phase.Land))
    then begin
      let open Vec3 in
      let pos = Estimator.position t.estimator in
      let margin = 3.0 in
      let outside_soon =
        norm (horizontal (sub pos f.Avis_physics.Environment.centre_xy))
        > f.Avis_physics.Environment.radius_m -. margin
        || pos.z > f.Avis_physics.Environment.max_alt_m -. margin
      in
      if outside_soon then begin
        t.rtl_stage <- Rtl_climb;
        t.rtl_capture <- pos;
        set_phase t Phase.Rtl
      end
    end

let apply_failsafe_request t (dirs : Failsafe.directives) =
  (* A failsafe firing while the vehicle is still on the ground aborts
     the takeoff: disarm rather than fly a degraded mission. Once the
     vehicle has actually left the ground the failsafe flies instead. *)
  let aborting =
    dirs.Failsafe.phase_request <> None
    && (Phase.equal t.phase Phase.Preflight
       || Phase.equal t.phase Phase.Takeoff)
    && Estimator.altitude t.estimator < 0.5
    && Float.abs (Estimator.climb_rate t.estimator) < 0.5
  in
  if aborting && t.armed then begin
    t.armed <- false;
    if not (Phase.equal t.phase Phase.Preflight) then set_phase t Phase.Landed
  end
  else if t.armed && Phase.is_airborne t.phase then
    match dirs.Failsafe.phase_request with
    | None -> ()
    | Some Failsafe.Fs_land ->
      if not (Phase.equal t.phase Phase.Land) then begin
        t.land_capture <- Estimator.position t.estimator;
        set_phase t Phase.Land
      end
    | Some Failsafe.Fs_rtl ->
      if not (Phase.equal t.phase Phase.Rtl)
         && not (Phase.equal t.phase Phase.Land) then begin
        t.rtl_stage <- Rtl_climb;
        t.rtl_capture <- Estimator.position t.estimator;
        set_phase t Phase.Rtl
      end
    | Some Failsafe.Fs_altitude_hold ->
      if not (Phase.equal t.phase Phase.Manual)
         && not (Phase.equal t.phase Phase.Land)
         && not (Phase.equal t.phase Phase.Rtl) then begin
        t.manual_target <- Estimator.position t.estimator;
        set_phase t Phase.Manual
      end

(* Without a position source the guarded behaviour drops horizontal
   position control (attitude hold only); the flawed paths that keep the
   controller engaged on dead-reckoned state set [blind_position_hold]. *)
let horizontal_target t (dirs : Failsafe.directives) target =
  let no_position =
    Estimator.pos_mode t.estimator = Estimator.Pos_dead_reckon
    && not dirs.Failsafe.blind_position_hold
  in
  if no_position || dirs.Failsafe.degraded_position_hold then (None, true)
  else (Some target, false)

let climb_demand_towards t target_alt =
  let err = target_alt -. Estimator.altitude t.estimator in
  Avis_util.Stats.clamp ~lo:(-.t.params.Params.max_climb_rate)
    ~hi:t.params.Params.max_climb_rate
    (t.params.Params.climb_pos_p *. err)

let descent_demand t ~gentle =
  let alt = Estimator.altitude t.estimator in
  if gentle then
    (* Degraded vertical estimate: no fast stage, early and slow flare. *)
    if alt > 2.0 *. t.params.Params.land_flare_alt then -1.0 else -0.4
  else if alt > t.params.Params.land_fast_descent_alt then
    -.t.params.Params.land_fast_descent_rate
  else if alt > t.params.Params.land_flare_alt then
    -.t.params.Params.land_descent_rate
  else -.t.params.Params.land_flare_rate

(* APM-16682's flawed landing abort: climb back to a "safe" altitude with
   the raw GPS altitude as feedback; at a real altitude of a couple of
   metres the GPS's vertical error dominates the demand. *)
let land_abort_safe_altitude = 5.0

(* Phase behaviour: produce this cycle's control demand and perform phase
   transitions driven by estimated state. *)
let run_phase t (dirs : Failsafe.directives) ~dt =
  let est = t.estimator in
  let pos = Estimator.position est in
  let idle_demand =
    {
      Control.pos_target = None;
      velocity_ff = Vec3.zero;
      climb_demand = 0.0;
      yaw_target = Estimator.yaw est;
      idle = true;
      max_speed = None;
      level_hold = false;
      open_loop_descent = false;
    }
  in
  match t.phase with
  | Phase.Preflight | Phase.Landed -> idle_demand
  | Phase.Takeoff ->
    if not dirs.Failsafe.takeoff_gate_open then
      (* Gate closed: the climb is refused every cycle; the vehicle sits
         on the ground with the motors at idle. *)
      { idle_demand with Control.idle = true }
    else begin
      let done_climb =
        Estimator.altitude est
        >= t.takeoff_target -. t.params.Params.takeoff_accept_m
      in
      if done_climb then begin
        (match t.after_takeoff with
        | Run_mission -> advance_mission t
        | Hold_manual ->
          t.manual_target <-
            { pos with Vec3.z = t.takeoff_target };
          set_phase t Phase.Manual);
        Control.hold_demand ~yaw:t.yaw_target ~pos
      end
      else
        {
          Control.pos_target = Some { t.home with Vec3.z = pos.Vec3.z };
          velocity_ff = Vec3.zero;
          climb_demand =
            Float.min t.params.Params.takeoff_climb_rate
              (climb_demand_towards t t.takeoff_target);
          yaw_target = t.yaw_target;
          idle = false;
          max_speed = None;
          level_hold = false;
          open_loop_descent = false;
        }
    end
  | Phase.Waypoint _ ->
    let target =
      match List.nth_opt t.targets t.target_index with
      | Some (T_waypoint (_, p)) -> p
      | Some (T_takeoff _) | Some T_land | Some T_rtl | None ->
        (* Phase/mission mismatch can only follow an external phase change;
           hold position. *)
        pos
    in
    let open Vec3 in
    let horizontal_dist = norm (horizontal (sub target pos)) in
    if horizontal_dist < t.params.Params.waypoint_radius then begin
      advance_mission t;
      Control.hold_demand ~yaw:t.yaw_target ~pos
    end
    else begin
      (match bearing pos target with
      | Some b -> t.yaw_target <- b
      | None -> ());
      let pos_target, level_hold = horizontal_target t dirs target in
      {
        Control.pos_target;
        velocity_ff = Vec3.zero;
        climb_demand = climb_demand_towards t target.z;
        yaw_target = t.yaw_target;
        idle = false;
        (* Taper the approach so corner arrivals are consistent. *)
        max_speed = Some (Float.max 1.5 (0.4 *. horizontal_dist));
        level_hold;
        open_loop_descent = false;
      }
    end
  | Phase.Manual ->
    let pos_target, level_hold = horizontal_target t dirs t.manual_target in
    {
      Control.pos_target;
      velocity_ff = Vec3.zero;
      climb_demand = climb_demand_towards t t.manual_target.Vec3.z;
      yaw_target = t.yaw_target;
      idle = false;
      max_speed = None;
      level_hold;
      open_loop_descent = false;
    }
  | Phase.Rtl ->
    let rtl_alt =
      Float.max t.params.Params.rtl_altitude (t.rtl_capture.Vec3.z)
    in
    (match t.rtl_stage with
    | Rtl_climb ->
      if Estimator.altitude t.estimator >= rtl_alt -. 0.3 then
        t.rtl_stage <- Rtl_return;
      let pos_target, level_hold =
        horizontal_target t dirs { t.rtl_capture with Vec3.z = rtl_alt }
      in
      {
        Control.pos_target;
        velocity_ff = Vec3.zero;
        climb_demand = climb_demand_towards t rtl_alt;
        yaw_target = t.yaw_target;
        idle = false;
        max_speed = None;
        level_hold;
        open_loop_descent = false;
      }
    | Rtl_return ->
      let target = { t.home with Vec3.z = rtl_alt } in
      let open Vec3 in
      let horizontal_dist = norm (horizontal (sub target pos)) in
      let slow_enough =
        norm (horizontal (Estimator.velocity t.estimator)) < 1.0
      in
      if horizontal_dist < t.params.Params.waypoint_radius && slow_enough
      then begin
        t.land_capture <- pos;
        set_phase t Phase.Land;
        Control.hold_demand ~yaw:t.yaw_target ~pos
      end
      else begin
        (match bearing pos target with
        | Some b -> t.yaw_target <- b
        | None -> ());
        let pos_target, level_hold = horizontal_target t dirs target in
        {
          Control.pos_target;
          velocity_ff = Vec3.zero;
          climb_demand = climb_demand_towards t rtl_alt;
          yaw_target = t.yaw_target;
          idle = false;
          max_speed = Some (Float.max 1.5 (0.4 *. horizontal_dist));
          level_hold;
          open_loop_descent = false;
        }
      end)
  | Phase.Land ->
    (* APM-16967's flawed state reset near the end of the landing. *)
    (match dirs.Failsafe.reset_state_below with
    | Some threshold
      when (not t.did_state_reset) && Estimator.altitude est < threshold ->
      t.did_state_reset <- true;
      Estimator.reset_state est
    | Some _ | None -> ());
    let climb =
      if dirs.Failsafe.land_abort_climb then
        Avis_util.Stats.clamp ~lo:(-4.0) ~hi:4.0
          (3.0 *. (land_abort_safe_altitude -. Estimator.altitude est))
      else descent_demand t ~gentle:dirs.Failsafe.gentle_descent
    in
    let settled =
      (* Touchdown detector: near the ground and the (filtered) altitude
         has stopped falling over the last few seconds. Land always
         demands a descent, so only ground contact can stall the altitude;
         the long window makes the check robust to the noisier altitude
         sources the failsafes fall back on. *)
      let stagnant =
        match List.rev t.alt_history with
        | oldest :: _ when List.length t.alt_history >= 4 ->
          oldest -. t.alt_ema_slow < 0.35
        | _ -> false
      in
      (not dirs.Failsafe.touchdown_blind) && t.alt_ema_fast < 2.5 && stagnant
    in
    (match (settled, t.touchdown_since) with
    | true, None -> t.touchdown_since <- Some t.time
    | true, Some since when t.time -. since > 1.0 ->
      t.armed <- false;
      set_phase t Phase.Landed
    | true, Some _ -> ()
    | false, _ -> t.touchdown_since <- None);
    ignore dt;
    let pos_target, level_hold =
      horizontal_target t dirs (Vec3.horizontal t.land_capture)
    in
    {
      Control.pos_target;
      velocity_ff = Vec3.zero;
      climb_demand = climb;
      yaw_target = t.yaw_target;
      idle = not t.armed;
      max_speed = Some 2.0;
      level_hold;
      open_loop_descent = dirs.Failsafe.gentle_descent && climb < 0.0;
    }

let battery_state t =
  match (Drivers.status t.drivers Sensor.Battery).Drivers.stale with
  | Some (Sensor.Battery_state { voltage; remaining }) -> (voltage, remaining)
  | Some _ | None -> (12.6, 1.0)

let step t world ~dt =
  t.time <- t.time +. dt;
  Drivers.sample t.drivers world ~time:t.time;
  (let alt = Estimator.altitude t.estimator in
   let blend tau prev = prev +. (dt /. tau *. (alt -. prev)) in
   t.alt_ema_fast <- blend 0.3 t.alt_ema_fast;
   t.alt_ema_slow <- blend 0.5 t.alt_ema_slow;
   if t.time >= t.alt_history_next then begin
     t.alt_history_next <- t.time +. 1.0;
     t.alt_history <-
       (if List.length t.alt_history >= 4 then
          t.alt_ema_slow :: List.filteri (fun i _ -> i < 3) t.alt_history
        else t.alt_ema_slow :: t.alt_history)
   end);
  let voltage, remaining = battery_state t in
  let battery_low = remaining < t.params.Params.battery_low_fraction in
  let gcs_lost_at =
    match Protocol.gcs_last_heartbeat t.protocol with
    | None -> None
    | Some last ->
      let deadline = last +. t.params.Params.gcs_timeout_s in
      if t.time > deadline then Some deadline else None
  in
  let ctx =
    {
      Failsafe.phase = t.phase;
      phase_entered_at = t.phase_entered_at;
      transitions =
        (0.0, Phase.Preflight, Phase.Preflight) :: List.rev t.transitions;
      time = t.time;
      gcs_lost_at;
    }
  in
  let dirs =
    Failsafe.evaluate ~policy:t.policy ~params:t.params ~bugs:t.bugs
      ~drivers:t.drivers ~ctx ~battery_low
  in
  List.iter
    (fun b -> if not (List.mem b t.triggered) then t.triggered <- b :: t.triggered)
    dirs.Failsafe.triggered_bugs;
  Estimator.set_alt_mode t.estimator dirs.Failsafe.alt_mode;
  Estimator.set_att_mode t.estimator dirs.Failsafe.att_mode;
  Estimator.set_yaw_mode t.estimator dirs.Failsafe.yaw_mode;
  Estimator.set_pos_mode t.estimator dirs.Failsafe.pos_mode;
  Estimator.set_heading_valid t.estimator dirs.Failsafe.heading_valid;
  Estimator.update t.estimator t.drivers ~dt;
  let telemetry =
    {
      Protocol.phase_code = Phase.to_code t.phase;
      armed = t.armed;
      position = Estimator.position t.estimator;
      velocity = Estimator.velocity t.estimator;
      yaw = Estimator.yaw t.estimator;
      battery_voltage = voltage;
      battery_remaining = remaining;
    }
  in
  let requests = Protocol.step t.protocol ~time:t.time telemetry in
  List.iter (handle_request t) requests;
  apply_failsafe_request t dirs;
  check_fence t;
  let demand = run_phase t dirs ~dt in
  let demand = if t.armed then demand else { demand with Control.idle = true } in
  Control.step t.control t.estimator demand ~dt

let time t = t.time
let phase t = t.phase
let armed t = t.armed
let policy t = t.policy
let bugs t = t.bugs
let transitions t = List.rev t.transitions
let estimator t = t.estimator
let triggered_bugs t = t.triggered
let home t = t.home

let encode_phase b phase =
  let open Avis_util.Codec in
  match phase with
  | Phase.Preflight -> w_u8 b 0
  | Phase.Takeoff -> w_u8 b 1
  | Phase.Manual -> w_u8 b 2
  | Phase.Rtl -> w_u8 b 3
  | Phase.Land -> w_u8 b 4
  | Phase.Landed -> w_u8 b 5
  | Phase.Waypoint i ->
    w_u8 b 6;
    w_int b i

let decode_phase r =
  let open Avis_util.Codec in
  match r_u8 r with
  | 0 -> Phase.Preflight
  | 1 -> Phase.Takeoff
  | 2 -> Phase.Manual
  | 3 -> Phase.Rtl
  | 4 -> Phase.Land
  | 5 -> Phase.Landed
  | 6 -> Phase.Waypoint (r_int r)
  | t -> corrupt "bad phase tag %d" t

let encode_target b target =
  let open Avis_util.Codec in
  match target with
  | T_takeoff alt ->
    w_u8 b 0;
    w_f64 b alt
  | T_waypoint (ordinal, p) ->
    w_u8 b 1;
    w_int b ordinal;
    Vec3.encode b p
  | T_land -> w_u8 b 2
  | T_rtl -> w_u8 b 3

let decode_target r =
  let open Avis_util.Codec in
  match r_u8 r with
  | 0 -> T_takeoff (r_f64 r)
  | 1 ->
    let ordinal = r_int r in
    let p = Vec3.decode r in
    T_waypoint (ordinal, p)
  | 2 -> T_land
  | 3 -> T_rtl
  | t -> corrupt "bad mission-target tag %d" t

let encode_fence b (f : Avis_physics.Environment.fence) =
  Vec3.encode b f.Avis_physics.Environment.centre_xy;
  Avis_util.Codec.w_f64 b f.Avis_physics.Environment.radius_m;
  Avis_util.Codec.w_f64 b f.Avis_physics.Environment.max_alt_m

let decode_fence r : Avis_physics.Environment.fence =
  let centre_xy = Vec3.decode r in
  let radius_m = Avis_util.Codec.r_f64 r in
  let max_alt_m = Avis_util.Codec.r_f64 r in
  { Avis_physics.Environment.centre_xy; radius_m; max_alt_m }

(* The policy is one of the two fixed personalities, so its firmware tag is
   the whole encoding; the snapshot's live parameter set travels separately
   (PARAM_SET mutates it away from the policy's defaults). *)
let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  let c = s.snap_core in
  w_version b 1;
  w_u8 b (match c.policy.Policy.firmware with Bug.Ardupilot -> 0 | Bug.Px4 -> 1);
  w_option b encode_fence c.fence;
  Params.encode b c.params;
  w_list b Bug.encode_id (Bug.enabled_list c.bugs);
  Geodesy.encode_frame b c.frame;
  Estimator.encode b c.estimator;
  Control.encode b c.control;
  w_f64 b c.time;
  w_bool b c.armed;
  encode_phase b c.phase;
  w_f64 b c.phase_entered_at;
  w_list b
    (fun b (at, from_p, to_p) ->
      w_f64 b at;
      encode_phase b from_p;
      encode_phase b to_p)
    c.transitions;
  w_list b encode_target c.targets;
  w_int b c.target_index;
  w_f64 b c.takeoff_target;
  w_u8 b (match c.after_takeoff with Run_mission -> 0 | Hold_manual -> 1);
  Vec3.encode b c.manual_target;
  w_f64 b c.yaw_target;
  Vec3.encode b c.land_capture;
  w_u8 b (match c.rtl_stage with Rtl_climb -> 0 | Rtl_return -> 1);
  Vec3.encode b c.rtl_capture;
  w_option b w_f64 c.touchdown_since;
  w_f64 b c.alt_ema_fast;
  w_f64 b c.alt_ema_slow;
  w_list b w_f64 c.alt_history;
  w_f64 b c.alt_history_next;
  w_bool b c.did_state_reset;
  w_list b Bug.encode_id c.triggered;
  Vec3.encode b c.home;
  Drivers.encode_snapshot b s.snap_drivers;
  Protocol.encode_snapshot b s.snap_protocol

let decode_snapshot ~suite ~hinj ~link r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let policy =
    match r_u8 r with
    | 0 -> Policy.of_firmware Bug.Ardupilot
    | 1 -> Policy.of_firmware Bug.Px4
    | t -> corrupt "bad firmware tag %d" t
  in
  let fence = r_option r decode_fence in
  let params = Params.decode r in
  let bugs = Bug.registry ~enabled:(r_list r Bug.decode_id) policy.Policy.firmware in
  let frame = Geodesy.decode_frame r in
  let estimator = Estimator.decode r in
  let control = Control.decode r in
  let time = r_f64 r in
  let armed = r_bool r in
  let phase = decode_phase r in
  let phase_entered_at = r_f64 r in
  let transitions =
    r_list r (fun r ->
        let at = r_f64 r in
        let from_p = decode_phase r in
        let to_p = decode_phase r in
        (at, from_p, to_p))
  in
  let targets = r_list r decode_target in
  let target_index = r_int r in
  let takeoff_target = r_f64 r in
  let after_takeoff =
    match r_u8 r with
    | 0 -> Run_mission
    | 1 -> Hold_manual
    | t -> corrupt "bad after-takeoff tag %d" t
  in
  let manual_target = Vec3.decode r in
  let yaw_target = r_f64 r in
  let land_capture = Vec3.decode r in
  let rtl_stage =
    match r_u8 r with
    | 0 -> Rtl_climb
    | 1 -> Rtl_return
    | t -> corrupt "bad rtl-stage tag %d" t
  in
  let rtl_capture = Vec3.decode r in
  let touchdown_since = r_option r r_f64 in
  let alt_ema_fast = r_f64 r in
  let alt_ema_slow = r_f64 r in
  let alt_history = r_list r r_f64 in
  let alt_history_next = r_f64 r in
  let did_state_reset = r_bool r in
  let triggered = r_list r Bug.decode_id in
  let home = Vec3.decode r in
  let snap_drivers = Drivers.decode_snapshot r in
  let snap_protocol = Protocol.decode_snapshot ~link r in
  let snap_core =
    {
      policy;
      fence;
      params;
      bugs;
      suite;
      hinj;
      frame;
      drivers = Drivers.restore ~suite ~hinj snap_drivers;
      estimator;
      control;
      protocol = Protocol.restore ~link snap_protocol;
      time;
      armed;
      phase;
      phase_entered_at;
      transitions;
      targets;
      target_index;
      takeoff_target;
      after_takeoff;
      manual_target;
      yaw_target;
      land_capture;
      rtl_stage;
      rtl_capture;
      touchdown_since;
      alt_ema_fast;
      alt_ema_slow;
      alt_history;
      alt_history_next;
      did_state_reset;
      triggered;
      home;
    }
  in
  { snap_core; snap_drivers; snap_protocol }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s

let of_bytes ~suite ~hinj ~link data =
  Avis_util.Codec.of_string (decode_snapshot ~suite ~hinj ~link) data
