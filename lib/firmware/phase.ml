type t =
  | Preflight
  | Takeoff
  | Waypoint of int
  | Manual
  | Rtl
  | Land
  | Landed

(* Labels are recorded into the trace every sample; memoise the waypoint
   labels so steady flight stores a shared string instead of sprintf-ing a
   fresh one per sample. *)
let waypoint_labels =
  Array.init 64 (fun i -> Printf.sprintf "Waypoint %d" i)

let label = function
  | Preflight -> "Pre-Flight"
  | Takeoff -> "Takeoff"
  | Waypoint i ->
    if i >= 0 && i < Array.length waypoint_labels then waypoint_labels.(i)
    else Printf.sprintf "Waypoint %d" i
  | Manual -> "Manual"
  | Rtl -> "Return To Launch"
  | Land -> "Land"
  | Landed -> "Disarmed"

let of_label = function
  | "Pre-Flight" -> Some Preflight
  | "Takeoff" -> Some Takeoff
  | "Manual" -> Some Manual
  | "Return To Launch" -> Some Rtl
  | "Land" -> Some Land
  | "Disarmed" -> Some Landed
  | s ->
    (match String.split_on_char ' ' s with
    | [ "Waypoint"; n ] -> (
      match int_of_string_opt n with Some i -> Some (Waypoint i) | None -> None)
    | _ -> None)

let equal a b =
  match (a, b) with
  | Preflight, Preflight
  | Takeoff, Takeoff
  | Manual, Manual
  | Rtl, Rtl
  | Land, Land
  | Landed, Landed ->
    true
  | Waypoint i, Waypoint j -> i = j
  | ( (Preflight | Takeoff | Waypoint _ | Manual | Rtl | Land | Landed),
      (Preflight | Takeoff | Waypoint _ | Manual | Rtl | Land | Landed) ) ->
    false

let is_airborne = function
  | Takeoff | Waypoint _ | Manual | Rtl | Land -> true
  | Preflight | Landed -> false

type pattern =
  | Any
  | Exactly of t
  | Any_waypoint
  | One_of : pattern list -> pattern

let rec matches p phase =
  match p with
  | Any -> true
  | Exactly t -> equal t phase
  | Any_waypoint -> ( match phase with Waypoint _ -> true | _ -> false)
  | One_of ps -> List.exists (fun p -> matches p phase) ps

let to_code = function
  | Preflight -> 0
  | Takeoff -> 1
  | Manual -> 2
  | Rtl -> 5
  | Land -> 6
  | Landed -> 7
  | Waypoint i -> 100 + i

let of_code = function
  | 0 -> Some Preflight
  | 1 -> Some Takeoff
  | 2 -> Some Manual
  | 5 -> Some Rtl
  | 6 -> Some Land
  | 7 -> Some Landed
  | c when c > 100 -> Some (Waypoint (c - 100))
  | _ -> None
