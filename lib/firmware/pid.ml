type t = {
  kp : float;
  ki : float;
  kd : float;
  i_limit : float;
  out_limit : float;
  mutable integral : float;
  mutable last_error : float option;
}

let create ?(kp = 0.0) ?(ki = 0.0) ?(kd = 0.0) ?(i_limit = infinity)
    ?(out_limit = infinity) () =
  { kp; ki; kd; i_limit; out_limit; integral = 0.0; last_error = None }

let copy t = { t with integral = t.integral }

let clamp limit v = Avis_util.Stats.clamp ~lo:(-.limit) ~hi:limit v

let finish t ~error ~derivative ~dt =
  t.integral <- clamp t.i_limit (t.integral +. (error *. dt));
  let out = (t.kp *. error) +. (t.ki *. t.integral) +. (t.kd *. derivative) in
  clamp t.out_limit out

let update t ~error ~dt =
  let derivative =
    match t.last_error with
    | Some prev when dt > 0.0 -> (error -. prev) /. dt
    | Some _ | None -> 0.0
  in
  t.last_error <- Some error;
  finish t ~error ~derivative ~dt

let update_with_rate t ~error ~rate ~dt =
  t.last_error <- Some error;
  finish t ~error ~derivative:(-.rate) ~dt

let reset t =
  t.integral <- 0.0;
  t.last_error <- None
