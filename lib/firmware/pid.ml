(* All fields are floats so the record stays flat and the per-step stores
   into [integral]/[last_error] are unboxed; [has_last] is a 0.0/1.0 flag
   for the same reason (a bool field would force the boxed mixed-record
   layout). *)
type t = {
  kp : float;
  ki : float;
  kd : float;
  i_limit : float;
  out_limit : float;
  mutable integral : float;
  mutable last_error : float;
  mutable has_last : float; (* 0.0 = no previous error recorded *)
}

let create ?(kp = 0.0) ?(ki = 0.0) ?(kd = 0.0) ?(i_limit = infinity)
    ?(out_limit = infinity) () =
  { kp; ki; kd; i_limit; out_limit; integral = 0.0; last_error = 0.0;
    has_last = 0.0 }

let copy t = { t with integral = t.integral }

let clamp limit v = Float.max (-.limit) (Float.min limit v)

let finish t ~error ~derivative ~dt =
  t.integral <- clamp t.i_limit (t.integral +. (error *. dt));
  let out = (t.kp *. error) +. (t.ki *. t.integral) +. (t.kd *. derivative) in
  clamp t.out_limit out

let update t ~error ~dt =
  let derivative =
    if t.has_last <> 0.0 && dt > 0.0 then (error -. t.last_error) /. dt
    else 0.0
  in
  t.last_error <- error;
  t.has_last <- 1.0;
  finish t ~error ~derivative ~dt

let update_with_rate t ~error ~rate ~dt =
  t.last_error <- error;
  t.has_last <- 1.0;
  finish t ~error ~derivative:(-.rate) ~dt

let reset t =
  t.integral <- 0.0;
  t.last_error <- 0.0;
  t.has_last <- 0.0

let encode b t =
  let open Avis_util.Codec in
  w_f64 b t.kp;
  w_f64 b t.ki;
  w_f64 b t.kd;
  w_f64 b t.i_limit;
  w_f64 b t.out_limit;
  w_f64 b t.integral;
  w_f64 b t.last_error;
  w_f64 b t.has_last

let decode r =
  let open Avis_util.Codec in
  let kp = r_f64 r in
  let ki = r_f64 r in
  let kd = r_f64 r in
  let i_limit = r_f64 r in
  let out_limit = r_f64 r in
  let integral = r_f64 r in
  let last_error = r_f64 r in
  let has_last = r_f64 r in
  { kp; ki; kd; i_limit; out_limit; integral; last_error; has_last }
