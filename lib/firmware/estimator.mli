(** State estimation with explicit source-selection modes.

    A complementary-filter estimator standing in for ArduPilot's EKF: it
    predicts with IMU data and corrects with GPS, barometer and compass.
    Failure handling selects *source modes* — and this is precisely where
    most of the reproduced sensor bugs live: the flawed modes
    ([Alt_gps_raw], [Alt_frozen], [Att_frozen], [Yaw_stale_compass], …) are
    the incorrect failover choices the paper's bugs made, while the guarded
    modes are the safe ones. The failsafe logic decides which mode is
    active; the estimator just executes it faithfully. *)

open Avis_geo

type alt_mode =
  | Alt_fused  (** Barometer + IMU prediction (normal). *)
  | Alt_gps_fused  (** Guarded barometer-loss fallback: smoothed GPS. *)
  | Alt_gps_raw
      (** Flawed: raw GPS altitude and its finite difference as climb rate
          (Fig. 1 / APM-16682, APM-4679). *)
  | Alt_lagged  (** Flawed: heavily lagged barometer only (APM-16021). *)
  | Alt_frozen  (** Flawed: the altitude estimate stops updating (APM-16027). *)
  | Alt_none  (** Flawed: no altitude source selected (PX4-17181). *)

type att_mode =
  | Att_normal
  | Att_frozen  (** Flawed gyro loss: attitude and rate stop updating. *)
  | Att_accel_only  (** Guarded gyro loss: level from accelerometer, rates zeroed. *)

type yaw_mode =
  | Yaw_compass
  | Yaw_gyro_only  (** Guarded compass loss: coast on the gyro. *)
  | Yaw_stale_compass
      (** Flawed: keep correcting towards the last heading ever read
          (APM-16967, APM-5428). *)
  | Yaw_flipped  (** Flawed: yaw correction sign inverted (PX4-17046). *)

type pos_mode =
  | Pos_gps
  | Pos_dead_reckon  (** Integrate the IMU only; drifts. *)

type t

val create : params:Params.t -> unit -> t

val copy : t -> t
(** An independent copy of the whole estimated state. *)

val set_alt_mode : t -> alt_mode -> unit
val set_att_mode : t -> att_mode -> unit
val set_yaw_mode : t -> yaw_mode -> unit
val set_pos_mode : t -> pos_mode -> unit

val alt_mode : t -> alt_mode
val att_mode : t -> att_mode
val yaw_mode : t -> yaw_mode
val pos_mode : t -> pos_mode

val reset_state : t -> unit
(** The "reset state estimate" flaw: zero position, velocity and level the
    attitude, mid-air (APM-16967's landing reset). *)

val update : t -> Drivers.t -> dt:float -> unit
(** One estimation step from the drivers' latest readings. *)

val position : t -> Vec3.t
val velocity : t -> Vec3.t
val attitude : t -> Quat.t
val angular_rate : t -> Vec3.t
val yaw : t -> float
val altitude : t -> float
val climb_rate : t -> float

val alt_valid : t -> bool
(** False in [Alt_none] mode. *)

val vertical_degraded : t -> bool
(** True when the vertical estimate has no IMU prediction behind it (the
    controllers soften the vertical loop accordingly). *)

val dead_reckon_age : t -> float
(** Seconds spent continuously in [Pos_dead_reckon]; 0 with a position
    source. The dead-reckoned velocity is trustworthy for only a few
    seconds, so the controllers fade velocity feedback out with this. *)

val heading_valid : t -> bool
(** False while the compass is unavailable in guarded mode; the PX4
    personality's takeoff gate checks this (PX4-17192). *)

val set_heading_valid : t -> bool -> unit

val encode : Buffer.t -> t -> unit
(** Versioned bit-exact binary layout of the whole estimated state. *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}. Raises [Avis_util.Codec.Corrupt] on malformed
    input. *)
