type gps_loss_action = Gps_failsafe_land | Gps_altitude_hold

type gcs_loss_action = Gcs_rtl | Gcs_land | Gcs_altitude_hold | Gcs_disabled

type gcs_loss_policy = Gcs_fixed of gcs_loss_action | Gcs_configurable

type t = {
  firmware : Bug.firmware_kind;
  name : string;
  params : Params.t;
  gps_loss_action : gps_loss_action;
  gcs_loss : gcs_loss_policy;
  takeoff_gates : bool;
}

let apm =
  {
    firmware = Bug.Ardupilot;
    name = "ArduPilot";
    params = Params.default;
    gps_loss_action = Gps_failsafe_land;
    gcs_loss = Gcs_fixed Gcs_rtl;
    takeoff_gates = false;
  }

let px4 =
  {
    firmware = Bug.Px4;
    name = "PX4";
    params = Params.default;
    gps_loss_action = Gps_altitude_hold;
    gcs_loss = Gcs_configurable;
    takeoff_gates = true;
  }

let of_firmware = function Bug.Ardupilot -> apm | Bug.Px4 -> px4

let gcs_loss_action policy (params : Params.t) =
  match policy.gcs_loss with
  | Gcs_fixed action -> action
  | Gcs_configurable -> (
    match int_of_float params.Params.gcs_loss_action_code with
    | 0 -> Gcs_disabled
    | 1 -> Gcs_altitude_hold
    | 3 -> Gcs_land
    | _ -> Gcs_rtl)
