(** PID controller with output and integrator limits. *)

type t

val create :
  ?kp:float -> ?ki:float -> ?kd:float -> ?i_limit:float -> ?out_limit:float -> unit -> t
(** Gains default to zero; limits default to infinity. *)

val copy : t -> t
(** An independent copy of gains, integrator and derivative history. *)

val update : t -> error:float -> dt:float -> float
(** One controller step. The derivative term acts on the error's change. *)

val update_with_rate : t -> error:float -> rate:float -> dt:float -> float
(** Like [update], but the derivative term uses the measured [rate] of the
    process variable (sign convention: damping opposes [rate]). This avoids
    derivative kick from setpoint changes. *)

val reset : t -> unit
(** Clear integrator and derivative history. *)

val encode : Buffer.t -> t -> unit
(** Bit-exact binary layout: gains, limits, integrator and derivative
    history as IEEE-754 doubles. *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}. Raises [Avis_util.Codec.Corrupt] on truncated
    input. *)
