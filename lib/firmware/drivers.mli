(** hinj-instrumented sensor drivers with instance failover.

    Every read goes through {!Avis_hinj.Hinj.sensor_read} — the paper's
    libhinj call site inside each driver's [read()] — so the fault-injection
    engine can fail any instance at any moment. When the active instance of
    a kind fails, the driver fails over to the next healthy instance within
    the same cycle (that is the redundancy the sensor-instance-symmetry
    pruning policy exploits). When every instance of a kind has failed, the
    kind is *lost* and the failure-handling logic upstairs must cope. *)

open Avis_sensors

type kind_status = {
  healthy : bool;  (** Some instance of the kind still responds. *)
  primary_failed_at : float option;
  kind_failed_at : float option;  (** When the last instance was lost. *)
  active_instance : int option;
  fresh : Sensor.reading option;  (** Reading obtained this step, if sampled. *)
  stale : Sensor.reading option;  (** Most recent successful reading ever. *)
}

type t

val create :
  ?rng:Avis_util.Rng.t ->
  params:Params.t -> suite:Suite.t -> hinj:Avis_hinj.Hinj.t -> unit -> t
(** [rng] seeds the noise used by injected [Extra_noise] degradations
    (default seed 0). *)

type snapshot
(** Per-kind sampling schedules, failure records, cached readings and the
    degradation-noise RNG, frozen. *)

val snapshot : t -> snapshot

val restore : suite:Suite.t -> hinj:Avis_hinj.Hinj.t -> snapshot -> t
(** Rebuild drivers over the restored copies of the suite and injector. *)

val sample : t -> Avis_physics.World.t -> time:float -> unit
(** Run every driver whose sampling period has elapsed. Call once per
    control cycle before reading statuses. *)

val status : t -> Sensor.kind -> kind_status

val kind_healthy : t -> Sensor.kind -> bool

val failure_start : t -> Sensor.kind -> float option
(** When the kind's health was first degraded (primary or whole kind),
    whichever came first. This is the timestamp bug trigger windows are
    evaluated against. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
(** Versioned bit-exact binary layout of the frozen driver state. *)

val decode_snapshot : Avis_util.Codec.reader -> snapshot
(** Inverse of {!encode_snapshot}; pair with {!restore}. Raises
    [Avis_util.Codec.Corrupt] on malformed input. *)
