(** Vehicle-side MAVLink handling.

    Owns the vehicle end of the link: decodes incoming frames, runs the
    vehicle's half of the mission-upload handshake (it requests each item —
    the ground station must answer, which is the transaction the paper
    notes makes naive workloads deadlock-prone), acknowledges commands, and
    streams telemetry at the configured rates. Pilot-level requests are
    surfaced as a queue of {!request} values for the mode logic. *)

open Avis_geo
open Avis_mavlink

type request =
  | Req_arm
  | Req_disarm
  | Req_takeoff of float  (** Target altitude, metres. *)
  | Req_land
  | Req_rtl
  | Req_auto  (** Start the uploaded mission. *)
  | Req_manual
  | Req_reposition of Vec3.t  (** Local-frame target. *)
  | Req_param_set of string * float
  | Req_param_list

(** What the mode logic must expose for telemetry. *)
type telemetry = {
  phase_code : int;
  armed : bool;
  position : Vec3.t;  (** Estimated position, local frame. *)
  velocity : Vec3.t;
  yaw : float;
  battery_voltage : float;
  battery_remaining : float;
}

type t

val create : link:Link.t -> frame:Geodesy.frame -> params:Params.t -> unit -> t

type snapshot
(** Upload transaction, mission, telemetry schedules and decoder, frozen. *)

val snapshot : t -> snapshot

val restore : link:Link.t -> snapshot -> t
(** Rebuild the protocol driver over the restored copy of the link. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
(** Versioned bit-exact binary layout of the frozen protocol state. *)

val decode_snapshot : link:Link.t -> Avis_util.Codec.reader -> snapshot
(** Inverse of {!encode_snapshot}; the decoded snapshot is attached to
    [link] via {!restore}. Raises [Avis_util.Codec.Corrupt] on malformed
    input. *)

val step : t -> time:float -> telemetry -> request list
(** Process inbound traffic and emit due telemetry. Returns the pilot
    requests decoded this cycle, in arrival order. *)

val mission : t -> Msg.mission_item list
(** The last fully uploaded mission (empty before any upload). *)

val gcs_last_heartbeat : t -> float option
(** When the last heartbeat from the ground station arrived — the input to
    the GCS-loss failsafe. [None] before first contact, so a vehicle that
    never heard a GCS does not failsafe on the ground. *)

val ack_command : t -> command:int -> accepted:bool -> unit
(** Send a COMMAND_ACK (the mode logic decides acceptance). *)

val send_statustext : t -> Msg.severity -> string -> unit

val send_param_value : t -> name:string -> value:float -> index:int -> unit
(** Emit a PARAM_VALUE (the reply to PARAM_SET and PARAM_REQUEST_LIST). *)
