open Avis_geo
open Avis_mavlink

type request =
  | Req_arm
  | Req_disarm
  | Req_takeoff of float
  | Req_land
  | Req_rtl
  | Req_auto
  | Req_manual
  | Req_reposition of Vec3.t
  | Req_param_set of string * float
  | Req_param_list

type telemetry = {
  phase_code : int;
  armed : bool;
  position : Vec3.t;
  velocity : Vec3.t;
  yaw : float;
  battery_voltage : float;
  battery_remaining : float;
}

type upload = {
  expected : int;
  mutable received : Msg.mission_item list; (* newest first *)
  mutable next_seq : int;
}

type t = {
  link : Link.t;
  frame : Geodesy.frame;
  params : Params.t;
  decoder : Frame.decoder;
  mutable seq : int;
  mutable upload : upload option;
  mutable mission : Msg.mission_item list;
  mutable next_heartbeat : float;
  mutable next_position : float;
  mutable next_sys_status : float;
  mutable last_gcs_heartbeat : float option;
}

let create ~link ~frame ~params () =
  {
    link;
    frame;
    params;
    decoder = Frame.decoder ();
    seq = 0;
    upload = None;
    mission = [];
    next_heartbeat = 0.0;
    next_position = 0.0;
    next_sys_status = 0.0;
    last_gcs_heartbeat = None;
  }

type snapshot = t

let copy_upload u = { u with received = u.received }

let snapshot t =
  {
    t with
    decoder = Frame.copy_decoder t.decoder;
    upload = Option.map copy_upload t.upload;
  }

let restore ~link s =
  {
    s with
    link;
    decoder = Frame.copy_decoder s.decoder;
    upload = Option.map copy_upload s.upload;
  }

let send t msg =
  let data = Frame.encode ~seq:t.seq ~sysid:1 ~compid:1 msg in
  t.seq <- (t.seq + 1) land 0xFF;
  Link.send t.link Link.Vehicle_end data

let ack_command t ~command ~accepted = send t (Msg.Command_ack { command; accepted })

let send_statustext t severity text = send t (Msg.Statustext { severity; text })

let send_param_value t ~name ~value ~index =
  send t (Msg.Param_value { name; value; index; count = Param_registry.count })

let handle_mission_count t count =
  if count <= 0 then send t (Msg.Mission_ack { accepted = false })
  else begin
    t.upload <- Some { expected = count; received = []; next_seq = 0 };
    send t (Msg.Mission_request { seq = 0 })
  end

let handle_mission_item t (item : Msg.mission_item) =
  match t.upload with
  | None -> ()
  | Some u ->
    if item.Msg.seq = u.next_seq then begin
      u.received <- item :: u.received;
      u.next_seq <- u.next_seq + 1;
      if u.next_seq >= u.expected then begin
        t.mission <- List.rev u.received;
        t.upload <- None;
        send t (Msg.Mission_ack { accepted = true })
      end
      else send t (Msg.Mission_request { seq = u.next_seq })
    end
    else
      (* Out-of-order item: re-request the one we need. *)
      send t (Msg.Mission_request { seq = u.next_seq })

let request_of_command t (command : int) param1 param2 param3 param4 =
  if command = Msg.cmd_arm_disarm then
    Some (if param1 >= 0.5 then Req_arm else Req_disarm)
  else if command = Msg.cmd_takeoff then Some (Req_takeoff param1)
  else if command = Msg.cmd_land then Some Req_land
  else if command = Msg.cmd_return_to_launch then Some Req_rtl
  else if command = Msg.cmd_reposition then begin
    ignore param4;
    ignore t;
    Some (Req_reposition (Vec3.make param1 param2 param3))
  end
  else None

let request_of_mode code =
  match Phase.of_code code with
  | Some Phase.Manual -> Some Req_manual
  | Some Phase.Rtl -> Some Req_rtl
  | Some Phase.Land -> Some Req_land
  | Some (Phase.Waypoint _) -> Some Req_auto
  | Some Phase.Takeoff -> Some Req_auto
  | Some Phase.Preflight | Some Phase.Landed | None -> (
    (* Convention: SET_MODE 3 requests the Auto mission even though no
       phase maps to 3 directly (it is ArduPilot's AUTO number). *)
    match code with 3 -> Some Req_auto | _ -> None)

let handle_message t msg =
  match msg with
  | Msg.Mission_count { count } ->
    handle_mission_count t count;
    None
  | Msg.Mission_item item ->
    handle_mission_item t item;
    None
  | Msg.Command_long { command; param1; param2; param3; param4 } ->
    let req = request_of_command t command param1 param2 param3 param4 in
    if req = None then ack_command t ~command ~accepted:false;
    req
  | Msg.Set_mode { custom_mode } -> request_of_mode custom_mode
  | Msg.Param_set { name; value } -> Some (Req_param_set (name, value))
  | Msg.Param_request_list -> Some Req_param_list
  | Msg.Heartbeat _ | Msg.Sys_status _ | Msg.Mission_request _
  | Msg.Mission_ack _ | Msg.Mission_current _ | Msg.Command_ack _
  | Msg.Global_position _ | Msg.Statustext _ | Msg.Param_value _ ->
    None

let emit_telemetry t ~time tel =
  if time >= t.next_heartbeat then begin
    t.next_heartbeat <- time +. t.params.Params.heartbeat_period;
    send t
      (Msg.Heartbeat
         { custom_mode = tel.phase_code; armed = tel.armed; system_status = 4 })
  end;
  if time >= t.next_position then begin
    t.next_position <- time +. t.params.Params.position_period;
    let geo = Geodesy.of_local t.frame tel.position in
    let open Vec3 in
    send t
      (Msg.Global_position
         {
           time_boot_ms = int_of_float (time *. 1000.0);
           lat_e7 = Geodesy.lat_to_e7 geo.Geodesy.lat;
           lon_e7 = Geodesy.lon_to_e7 geo.Geodesy.lon;
           relative_alt_mm = int_of_float (tel.position.z *. 1000.0);
           vx_cm = int_of_float (tel.velocity.x *. 100.0);
           vy_cm = int_of_float (tel.velocity.y *. 100.0);
           vz_cm = int_of_float (tel.velocity.z *. 100.0);
           heading_cdeg =
             (let deg = tel.yaw *. 180.0 /. Float.pi in
              let deg = if deg < 0.0 then deg +. 360.0 else deg in
              int_of_float (deg *. 100.0) mod 36000);
         })
  end;
  if time >= t.next_sys_status then begin
    t.next_sys_status <- time +. t.params.Params.sys_status_period;
    send t
      (Msg.Sys_status
         {
           voltage_mv = int_of_float (tel.battery_voltage *. 1000.0);
           battery_remaining =
             Avis_util.Stats.clampi ~lo:0 ~hi:100
               (int_of_float (tel.battery_remaining *. 100.0));
         })
  end

let step t ~time tel =
  let bytes = Link.receive t.link Link.Vehicle_end in
  let frames = Frame.feed t.decoder bytes in
  let requests =
    List.filter_map
      (fun f ->
        (match f.Frame.message with
        | Msg.Heartbeat _ -> t.last_gcs_heartbeat <- Some time
        | _ -> ());
        handle_message t f.Frame.message)
      frames
  in
  emit_telemetry t ~time tel;
  requests

let mission t = t.mission

let gcs_last_heartbeat t = t.last_gcs_heartbeat

(* As with [Gcs], the [link] field is not serialised: the caller passes the
   link the decoded snapshot will be restored over. *)
let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  Geodesy.encode_frame b s.frame;
  Params.encode b s.params;
  Frame.encode_decoder b s.decoder;
  w_int b s.seq;
  w_option b
    (fun b (u : upload) ->
      w_int b u.expected;
      w_list b Msg.encode_mission_item u.received;
      w_int b u.next_seq)
    s.upload;
  w_list b Msg.encode_mission_item s.mission;
  w_f64 b s.next_heartbeat;
  w_f64 b s.next_position;
  w_f64 b s.next_sys_status;
  w_option b w_f64 s.last_gcs_heartbeat

let decode_snapshot ~link r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let frame = Geodesy.decode_frame r in
  let params = Params.decode r in
  let decoder = Frame.decode_decoder r in
  let seq = r_int r in
  let upload =
    r_option r (fun r ->
        let expected = r_int r in
        let received = r_list r Msg.decode_mission_item in
        let next_seq = r_int r in
        { expected; received; next_seq })
  in
  let mission = r_list r Msg.decode_mission_item in
  let next_heartbeat = r_f64 r in
  let next_position = r_f64 r in
  let next_sys_status = r_f64 r in
  let last_gcs_heartbeat = r_option r r_f64 in
  {
    link;
    frame;
    params;
    decoder;
    seq;
    upload;
    mission;
    next_heartbeat;
    next_position;
    next_sys_status;
    last_gcs_heartbeat;
  }
