(** The complete control firmware.

    One [step] per simulation time-step: sample the (hinj-instrumented)
    drivers, evaluate failure handling, update the state estimate, process
    ground-station traffic, run the active flight phase's logic, and
    produce motor commands. Mode changes are reported through hinj (the
    paper's [hinj_update_mode] call site), which is what the fault
    injection engine keys its schedule on. *)

open Avis_geo
open Avis_mavlink

type t

val create :
  ?fence:Avis_physics.Environment.fence ->
  ?airframe:Avis_physics.Airframe.t ->
  policy:Policy.t ->
  bugs:Bug.registry ->
  suite:Avis_sensors.Suite.t ->
  hinj:Avis_hinj.Hinj.t ->
  link:Link.t ->
  frame:Geodesy.frame ->
  unit ->
  t
(** [fence] configures the firmware's own geofence (as uploaded by a ground
    station); the vehicle returns to launch rather than cross it. *)

type snapshot
(** Every mutable layer of the firmware, frozen: estimator, controller,
    drivers, protocol, mode logic and bug registry. *)

val snapshot : t -> snapshot

val restore :
  suite:Avis_sensors.Suite.t ->
  hinj:Avis_hinj.Hinj.t ->
  link:Link.t ->
  snapshot ->
  t
(** Rebuild the firmware over restored copies of its collaborators (the
    sensor suite, the fault injector and the MAVLink link). *)

val step : t -> Avis_physics.World.t -> dt:float -> float array
(** Run one control cycle and return the motor commands for this step. *)

val time : t -> float
val phase : t -> Phase.t
val armed : t -> bool
val policy : t -> Policy.t
val bugs : t -> Bug.registry

val transitions : t -> (float * Phase.t * Phase.t) list
(** Mode-transition history, oldest first. *)

val estimator : t -> Estimator.t
(** The firmware's belief about its own state (diagnostics). *)

val triggered_bugs : t -> Bug.id list
(** Every bug whose flawed path has been exercised so far in this run
    (diagnostics; the model checker does not read this). *)

val home : t -> Vec3.t
(** Launch position in the local frame. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
(** Versioned bit-exact binary layout of the whole frozen firmware
    (estimator, controller, drivers, protocol, mode logic and bug
    registry). *)

val decode_snapshot :
  suite:Avis_sensors.Suite.t ->
  hinj:Avis_hinj.Hinj.t ->
  link:Link.t ->
  Avis_util.Codec.reader ->
  snapshot
(** Inverse of {!encode_snapshot}; the decoded snapshot is attached to the
    given collaborators via {!restore}. Raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val to_bytes : snapshot -> string

val of_bytes :
  suite:Avis_sensors.Suite.t ->
  hinj:Avis_hinj.Hinj.t ->
  link:Link.t ->
  string ->
  snapshot
(** Raises [Avis_util.Codec.Corrupt] on malformed input. *)
