(** Firmware tuning parameters.

    Gains and thresholds for the cascaded controllers, sensor sampling
    periods, telemetry rates and failsafe settings. The two personalities
    share most values; the [default] set is tuned for the Iris airframe at
    the simulator's 250 Hz step. *)

type t = {
  (* vertical flight *)
  takeoff_climb_rate : float;  (** m/s commanded during takeoff. *)
  land_descent_rate : float;  (** m/s above the flare altitude. *)
  land_fast_descent_rate : float;  (** m/s used when far above ground. *)
  land_fast_descent_alt : float;  (** Altitude above which fast descent is used. *)
  land_flare_alt : float;  (** Flare below this estimated altitude. *)
  land_flare_rate : float;  (** m/s during the flare. *)
  takeoff_accept_m : float;  (** Climb is complete within this of the target. *)
  (* horizontal flight *)
  cruise_speed : float;  (** m/s along mission legs. *)
  waypoint_radius : float;  (** Acceptance radius, metres. *)
  rtl_altitude : float;  (** Metres; climb to this before returning. *)
  (* controller gains *)
  pos_p : float;  (** Position error to velocity demand. *)
  vel_p : float;  (** Velocity error to acceleration demand. *)
  max_tilt_rad : float;
  max_climb_rate : float;
  climb_pos_p : float;  (** Altitude error to climb-rate demand. *)
  climb_vel_p : float;  (** Climb-rate error to thrust-fraction demand. *)
  climb_vel_i : float;
  att_p : float;  (** Attitude error to rate demand. *)
  rate_p : float;  (** Rate error to torque demand. *)
  yaw_p : float;
  yaw_rate_p : float;
  (* sensor scheduling, seconds between samples *)
  imu_period : float;
  gps_period : float;
  baro_period : float;
  compass_period : float;
  battery_period : float;
  (* telemetry *)
  heartbeat_period : float;
  position_period : float;
  sys_status_period : float;
  (* failsafe *)
  failsafe_grace_s : float;
      (** New failures are not acted on for this long after a mode change
          (mode-change suppression, as in real autopilots). *)
  battery_low_fraction : float;  (** Battery failsafe threshold. *)
  touchdown_speed : float;  (** Climb rates below this count as settled. *)
  gcs_timeout_s : float;
      (** Heartbeat silence after which the ground station counts as
          lost. *)
  gcs_loss_action_code : float;
      (** PX4's NAV_DLL_ACT: datalink-loss action for the configurable
          personality (0 disabled, 1 hold, 2 RTL, 3 land). Ignored by
          personalities with a fixed GCS-loss action. *)
}

val default : t

val encode : Buffer.t -> t -> unit
(** Bit-exact binary layout: every field as an IEEE-754 double, in
    declaration order. *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}. Raises [Avis_util.Codec.Corrupt] on truncated
    input. *)
