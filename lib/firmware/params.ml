type t = {
  takeoff_climb_rate : float;
  land_descent_rate : float;
  land_fast_descent_rate : float;
  land_fast_descent_alt : float;
  land_flare_alt : float;
  land_flare_rate : float;
  takeoff_accept_m : float;
  cruise_speed : float;
  waypoint_radius : float;
  rtl_altitude : float;
  pos_p : float;
  vel_p : float;
  max_tilt_rad : float;
  max_climb_rate : float;
  climb_pos_p : float;
  climb_vel_p : float;
  climb_vel_i : float;
  att_p : float;
  rate_p : float;
  yaw_p : float;
  yaw_rate_p : float;
  imu_period : float;
  gps_period : float;
  baro_period : float;
  compass_period : float;
  battery_period : float;
  heartbeat_period : float;
  position_period : float;
  sys_status_period : float;
  failsafe_grace_s : float;
  battery_low_fraction : float;
  touchdown_speed : float;
  gcs_timeout_s : float;
  gcs_loss_action_code : float;
}

let default =
  {
    takeoff_climb_rate = 2.5;
    land_descent_rate = 1.5;
    land_fast_descent_rate = 3.5;
    land_fast_descent_alt = 10.0;
    land_flare_alt = 2.5;
    land_flare_rate = 0.5;
    takeoff_accept_m = 0.3;
    cruise_speed = 5.0;
    waypoint_radius = 3.0;
    rtl_altitude = 15.0;
    pos_p = 0.55;
    vel_p = 1.4;
    max_tilt_rad = 0.6;
    max_climb_rate = 4.0;
    climb_pos_p = 1.2;
    climb_vel_p = 0.22;
    climb_vel_i = 0.12;
    att_p = 2.0;
    rate_p = 0.2;
    yaw_p = 1.5;
    yaw_rate_p = 0.12;
    imu_period = 0.004;
    gps_period = 0.1;
    baro_period = 0.04;
    compass_period = 0.04;
    battery_period = 1.0;
    heartbeat_period = 1.0;
    position_period = 0.1;
    sys_status_period = 1.0;
    failsafe_grace_s = 0.5;
    battery_low_fraction = 0.2;
    touchdown_speed = 0.3;
    gcs_timeout_s = 5.0;
    gcs_loss_action_code = 2.0;
  }

let encode b (p : t) =
  let open Avis_util.Codec in
  w_f64 b p.takeoff_climb_rate;
  w_f64 b p.land_descent_rate;
  w_f64 b p.land_fast_descent_rate;
  w_f64 b p.land_fast_descent_alt;
  w_f64 b p.land_flare_alt;
  w_f64 b p.land_flare_rate;
  w_f64 b p.takeoff_accept_m;
  w_f64 b p.cruise_speed;
  w_f64 b p.waypoint_radius;
  w_f64 b p.rtl_altitude;
  w_f64 b p.pos_p;
  w_f64 b p.vel_p;
  w_f64 b p.max_tilt_rad;
  w_f64 b p.max_climb_rate;
  w_f64 b p.climb_pos_p;
  w_f64 b p.climb_vel_p;
  w_f64 b p.climb_vel_i;
  w_f64 b p.att_p;
  w_f64 b p.rate_p;
  w_f64 b p.yaw_p;
  w_f64 b p.yaw_rate_p;
  w_f64 b p.imu_period;
  w_f64 b p.gps_period;
  w_f64 b p.baro_period;
  w_f64 b p.compass_period;
  w_f64 b p.battery_period;
  w_f64 b p.heartbeat_period;
  w_f64 b p.position_period;
  w_f64 b p.sys_status_period;
  w_f64 b p.failsafe_grace_s;
  w_f64 b p.battery_low_fraction;
  w_f64 b p.touchdown_speed;
  w_f64 b p.gcs_timeout_s;
  w_f64 b p.gcs_loss_action_code

let decode r : t =
  let open Avis_util.Codec in
  let takeoff_climb_rate = r_f64 r in
  let land_descent_rate = r_f64 r in
  let land_fast_descent_rate = r_f64 r in
  let land_fast_descent_alt = r_f64 r in
  let land_flare_alt = r_f64 r in
  let land_flare_rate = r_f64 r in
  let takeoff_accept_m = r_f64 r in
  let cruise_speed = r_f64 r in
  let waypoint_radius = r_f64 r in
  let rtl_altitude = r_f64 r in
  let pos_p = r_f64 r in
  let vel_p = r_f64 r in
  let max_tilt_rad = r_f64 r in
  let max_climb_rate = r_f64 r in
  let climb_pos_p = r_f64 r in
  let climb_vel_p = r_f64 r in
  let climb_vel_i = r_f64 r in
  let att_p = r_f64 r in
  let rate_p = r_f64 r in
  let yaw_p = r_f64 r in
  let yaw_rate_p = r_f64 r in
  let imu_period = r_f64 r in
  let gps_period = r_f64 r in
  let baro_period = r_f64 r in
  let compass_period = r_f64 r in
  let battery_period = r_f64 r in
  let heartbeat_period = r_f64 r in
  let position_period = r_f64 r in
  let sys_status_period = r_f64 r in
  let failsafe_grace_s = r_f64 r in
  let battery_low_fraction = r_f64 r in
  let touchdown_speed = r_f64 r in
  let gcs_timeout_s = r_f64 r in
  let gcs_loss_action_code = r_f64 r in
  {
    takeoff_climb_rate;
    land_descent_rate;
    land_fast_descent_rate;
    land_fast_descent_alt;
    land_flare_alt;
    land_flare_rate;
    takeoff_accept_m;
    cruise_speed;
    waypoint_radius;
    rtl_altitude;
    pos_p;
    vel_p;
    max_tilt_rad;
    max_climb_rate;
    climb_pos_p;
    climb_vel_p;
    climb_vel_i;
    att_p;
    rate_p;
    yaw_p;
    yaw_rate_p;
    imu_period;
    gps_period;
    baro_period;
    compass_period;
    battery_period;
    heartbeat_period;
    position_period;
    sys_status_period;
    failsafe_grace_s;
    battery_low_fraction;
    touchdown_speed;
    gcs_timeout_s;
    gcs_loss_action_code;
  }
