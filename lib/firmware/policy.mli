(** Firmware personalities.

    ArduPilot and PX4 differ, for Avis's purposes, in their mode vocabulary
    and in their failure-handling policies; this record captures those
    differences so that the rest of the flight stack is shared. Each
    personality also owns its set of reproduced bugs (see {!Bug}). *)

type gps_loss_action =
  | Gps_failsafe_land  (** ArduPilot: land in place when position is lost. *)
  | Gps_altitude_hold
      (** PX4: degrade to an altitude-hold manual mode and keep flying. *)

type gcs_loss_action =
  | Gcs_rtl  (** Return to launch when the ground station goes silent. *)
  | Gcs_land
  | Gcs_altitude_hold
  | Gcs_disabled  (** Keep flying the mission without a GCS. *)

type gcs_loss_policy =
  | Gcs_fixed of gcs_loss_action
      (** ArduPilot: FS_GCS_ENABLE behaviour is effectively RTL. *)
  | Gcs_configurable
      (** PX4: the action is read from the NAV_DLL_ACT parameter
          ([Params.gcs_loss_action_code]) at evaluation time. *)

type t = {
  firmware : Bug.firmware_kind;
  name : string;
  params : Params.t;
  gps_loss_action : gps_loss_action;
  gcs_loss : gcs_loss_policy;
  takeoff_gates : bool;
      (** PX4 refuses to climb until heading and altitude sources are
          valid; ArduPilot climbs regardless. *)
}

val apm : t
(** The ArduPilot-like personality. *)

val px4 : t
(** The PX4-like personality. *)

val of_firmware : Bug.firmware_kind -> t

val gcs_loss_action : t -> Params.t -> gcs_loss_action
(** Resolve the personality's GCS-loss action against the vehicle's live
    parameter set (PX4 reads NAV_DLL_ACT; ArduPilot is fixed). *)
