(** Cascaded flight control: position → velocity → attitude → rates → motors.

    The controller consumes only the *estimated* state — never the
    simulator's truth — so a corrupted estimate produces exactly the
    physical misbehaviour the paper's bugs exhibit. The cascade is the
    standard multicopter stack: a P position loop produces a velocity
    demand, a P velocity loop produces a lean-angle/thrust demand, a P
    attitude loop produces body-rate demands, and a P rate loop produces
    torques mixed to the four motors. *)

open Avis_geo

(** What the active flight phase wants the vehicle to do this cycle. *)
type demand = {
  pos_target : Vec3.t option;
      (** Horizontal position target; [None] leaves the velocity demand at
          the feedforward only. *)
  velocity_ff : Vec3.t;  (** Horizontal velocity feedforward, m/s. *)
  climb_demand : float;  (** Desired climb rate, m/s (positive up). *)
  yaw_target : float;  (** Desired heading, radians. *)
  idle : bool;  (** True keeps motors at ground idle (pre-flight, landed). *)
  max_speed : float option;
      (** Horizontal speed limit for this phase; defaults to cruise speed.
          Landing approaches use a lower limit for stability. *)
  level_hold : bool;
      (** Hold the attitude level instead of running the velocity loop —
          the guarded behaviour when no horizontal position/velocity source
          can be trusted. *)
  open_loop_descent : bool;
      (** Descend on fixed collective slightly below hover instead of the
          closed vertical loop — the guarded response when the climb-rate
          estimate cannot support feedback. *)
}

val hold_demand : yaw:float -> pos:Vec3.t -> demand
(** Hover in place at [pos] facing [yaw]. *)

type t

val create : params:Params.t -> airframe:Avis_physics.Airframe.t -> unit -> t

val copy : t -> t
(** An independent copy of the controller's state (PID integrators). *)

val step : t -> Estimator.t -> demand -> dt:float -> float array
(** Motor commands in [\[0, 1\]] for this cycle. The returned array is a
    buffer reused on the next [step]; read or copy it before then (the
    simulator's motor model copies it immediately). *)

val reset : t -> unit
(** Clear integrators (on arming and mode changes). *)

val encode : Buffer.t -> t -> unit
(** Versioned bit-exact binary layout (params, airframe and mutable
    controller state; derived fields are recomputed on decode). *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}. Raises [Avis_util.Codec.Corrupt] on malformed
    input. *)
