type entry = {
  name : string;
  get : Params.t -> float;
  set : Params.t -> float -> Params.t;
  min_value : float;
  max_value : float;
  description : string;
}

let all =
  [
    {
      name = "WPNAV_SPEED";
      get = (fun p -> p.Params.cruise_speed);
      set = (fun p v -> { p with Params.cruise_speed = v });
      min_value = 1.0;
      max_value = 5.0;
      description = "horizontal speed along mission legs, m/s";
    };
    {
      name = "WPNAV_RADIUS";
      get = (fun p -> p.Params.waypoint_radius);
      set = (fun p v -> { p with Params.waypoint_radius = v });
      min_value = 1.0;
      max_value = 10.0;
      description = "waypoint acceptance radius, m";
    };
    {
      name = "TKOFF_SPD";
      get = (fun p -> p.Params.takeoff_climb_rate);
      set = (fun p v -> { p with Params.takeoff_climb_rate = v });
      min_value = 0.5;
      max_value = 4.0;
      description = "takeoff climb rate, m/s";
    };
    {
      name = "LAND_SPEED";
      get = (fun p -> p.Params.land_descent_rate);
      set = (fun p v -> { p with Params.land_descent_rate = v });
      min_value = 0.3;
      max_value = 2.5;
      description = "landing descent rate below the fast stage, m/s";
    };
    {
      name = "RTL_ALT";
      get = (fun p -> p.Params.rtl_altitude);
      set = (fun p v -> { p with Params.rtl_altitude = v });
      min_value = 5.0;
      max_value = 100.0;
      description = "return altitude, m";
    };
    {
      name = "FS_GCS_TIMEOUT";
      get = (fun p -> p.Params.gcs_timeout_s);
      set = (fun p v -> { p with Params.gcs_timeout_s = v });
      min_value = 1.0;
      max_value = 30.0;
      description = "GCS heartbeat loss timeout, s";
    };
    {
      name = "NAV_DLL_ACT";
      get = (fun p -> p.Params.gcs_loss_action_code);
      set = (fun p v -> { p with Params.gcs_loss_action_code = v });
      min_value = 0.0;
      max_value = 3.0;
      description = "datalink-loss action (0 off, 1 hold, 2 RTL, 3 land)";
    };
    {
      name = "FS_BATT_PCT";
      get = (fun p -> 100.0 *. p.Params.battery_low_fraction);
      set = (fun p v -> { p with Params.battery_low_fraction = v /. 100.0 });
      min_value = 5.0;
      max_value = 50.0;
      description = "battery failsafe threshold, percent";
    };
  ]

let count = List.length all

let find name = List.find_opt (fun e -> e.name = name) all

let index_of name =
  let rec loop i = function
    | [] -> None
    | e :: rest -> if e.name = name then Some i else loop (i + 1) rest
  in
  loop 0 all

let apply_set params ~name ~value =
  match find name with
  | None -> None
  | Some entry ->
    let value = Avis_util.Stats.clamp ~lo:entry.min_value ~hi:entry.max_value value in
    Some (entry.set params value, value)
