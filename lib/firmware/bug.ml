open Avis_sensors

type id =
  | Apm_16020
  | Apm_16021
  | Apm_16027
  | Apm_16967
  | Apm_16682
  | Apm_16953
  | Px4_17046
  | Px4_17057
  | Px4_17192
  | Px4_17181
  | Apm_4455
  | Apm_4679
  | Apm_5428
  | Apm_9349
  | Px4_13291

let all =
  [
    Apm_16020;
    Apm_16021;
    Apm_16027;
    Apm_16967;
    Apm_16682;
    Apm_16953;
    Px4_17046;
    Px4_17057;
    Px4_17192;
    Px4_17181;
    Apm_4455;
    Apm_4679;
    Apm_5428;
    Apm_9349;
    Px4_13291;
  ]

type firmware_kind = Ardupilot | Px4

let firmware_name = function Ardupilot -> "ArduPilot" | Px4 -> "PX4"

type symptom = Crash | Fly_away | Takeoff_failure

let symptom_to_string = function
  | Crash -> "Crash"
  | Fly_away -> "Fly Away"
  | Takeoff_failure -> "Takeoff Failure"

type window = {
  from_phase : Phase.pattern;
  to_phase : Phase.pattern;
  pre_s : float;
  post_s : float;
}

type info = {
  id : id;
  report : string;
  firmware : firmware_kind;
  symptom : symptom;
  sensor : Sensor.kind;
  window : window;
  known : bool;
  window_label : string;
  description : string;
  requires_second_failure : Sensor.kind option;
}

let window ?(pre = 1.0) ?(post = 2.0) from_phase to_phase =
  { from_phase; to_phase; pre_s = pre; post_s = post }

let info = function
  | Apm_16020 ->
    {
      id = Apm_16020;
      report = "APM-16020";
      firmware = Ardupilot;
      symptom = Fly_away;
      sensor = Sensor.Gps;
      window = window Phase.(Exactly Takeoff) Phase.Any_waypoint;
      known = false;
      window_label = "Takeoff -> Autopilot";
      description =
        "GPS loss in the window around entering autopilot navigation is \
         latched as healthy; the leg controller keeps dead-reckoning on \
         biased accelerometer data and the vehicle departs its track.";
      requires_second_failure = None;
    }
  | Apm_16021 ->
    {
      id = Apm_16021;
      report = "APM-16021";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Accelerometer;
      window = window ~pre:1.0 ~post:9.0 Phase.(Exactly Preflight) Phase.(Exactly Takeoff);
      known = false;
      window_label = "Takeoff -> Waypoint 1";
      description =
        "An accelerometer failure late in the climb corrupts the vertical \
         state model; the vehicle overshoots the target altitude, the land \
         failsafe engages with a wrong altitude estimate and the descent is \
         not flared.";
      requires_second_failure = None;
    }
  | Apm_16027 ->
    {
      id = Apm_16027;
      report = "APM-16027";
      firmware = Ardupilot;
      symptom = Fly_away;
      sensor = Sensor.Barometer;
      window = window Phase.(Exactly Preflight) Phase.(Exactly Takeoff);
      known = false;
      window_label = "Pre-Flight -> Takeoff";
      description =
        "Barometer loss at takeoff entry leaves the altitude estimate \
         frozen near zero; the climb controller never observes progress and \
         the vehicle keeps ascending.";
      requires_second_failure = None;
    }
  | Apm_16967 ->
    {
      id = Apm_16967;
      report = "APM-16967";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Compass;
      window =
        {
          from_phase = Phase.Any_waypoint;
          to_phase = Phase.Any_waypoint;
          pre_s = 1.0;
          post_s = 8.0;
        };
      known = false;
      window_label = "Waypoint 1 -> Waypoint 2";
      description =
        "Compass loss between waypoints freezes the heading estimate while \
         the vehicle turns; the land failsafe engages, and near the ground \
         the firmware resets its state estimate, destabilising touchdown.";
      requires_second_failure = None;
    }
  | Apm_16682 ->
    {
      id = Apm_16682;
      report = "APM-16682";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Accelerometer;
      window = window ~pre:1.0 ~post:6.0 Phase.(Exactly Rtl) Phase.(Exactly Land);
      known = false;
      window_label = "Return To Launch -> Land";
      description =
        "The Fig. 1 bug: an IMU failure at the end of landing triggers \
         GPS-driven altitude control without checking flight conditions; at \
         low altitude GPS vertical error drives the vehicle into the ground.";
      requires_second_failure = None;
    }
  | Apm_16953 ->
    {
      id = Apm_16953;
      report = "APM-16953";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Gyroscope;
      window = window ~pre:1.0 ~post:6.0 Phase.(Exactly Rtl) Phase.(Exactly Land);
      known = false;
      window_label = "Return To Launch -> Land";
      description =
        "Gyroscope loss entering the landing phase leaves the rate loop \
         consuming a frozen rate; the attitude oscillation grows during the \
         descent and the vehicle impacts with excessive tilt.";
      requires_second_failure = None;
    }
  | Px4_17046 ->
    {
      id = Px4_17046;
      report = "PX4-17046";
      firmware = Px4;
      symptom = Fly_away;
      sensor = Sensor.Gyroscope;
      window = window Phase.Any_waypoint Phase.(Exactly Rtl);
      known = false;
      window_label = "Waypoint 3 -> Return To Launch";
      description =
        "A gyroscope failure at RTL entry flips the sign of the yaw-rate \
         feedforward used to line up the return leg; the vehicle circles \
         outwards instead of converging on home.";
      requires_second_failure = None;
    }
  | Px4_17057 ->
    {
      id = Px4_17057;
      report = "PX4-17057";
      firmware = Px4;
      symptom = Crash;
      sensor = Sensor.Gyroscope;
      window = window Phase.(Exactly Preflight) Phase.(Exactly Takeoff);
      known = false;
      window_label = "Pre-Flight -> Takeoff";
      description =
        "Gyroscope loss during motor ramp-up is not caught by the preflight \
         monitor once arming has been granted; the rate loop lifts off \
         open-loop and the vehicle flips at low altitude.";
      requires_second_failure = None;
    }
  | Px4_17192 ->
    {
      id = Px4_17192;
      report = "PX4-17192";
      firmware = Px4;
      symptom = Takeoff_failure;
      sensor = Sensor.Compass;
      window = window Phase.(Exactly Preflight) Phase.(Exactly Takeoff);
      known = false;
      window_label = "Pre-Flight -> Takeoff";
      description =
        "A compass failure racing the arming sequence leaves the heading \
         validity flag unset; the takeoff controller aborts the climb every \
         cycle and the vehicle never leaves the ground.";
      requires_second_failure = None;
    }
  | Px4_17181 ->
    {
      id = Px4_17181;
      report = "PX4-17181";
      firmware = Px4;
      symptom = Takeoff_failure;
      sensor = Sensor.Barometer;
      window = window Phase.(Exactly Preflight) Phase.(Exactly Takeoff);
      known = false;
      window_label = "Pre-Flight -> Takeoff";
      description =
        "Barometer loss at takeoff entry leaves no altitude source selected \
         even though GPS altitude is available; the climb demand is zeroed \
         and the vehicle sits on the ground with motors spinning.";
      requires_second_failure = None;
    }
  | Apm_4455 ->
    {
      id = Apm_4455;
      report = "APM-4455";
      firmware = Ardupilot;
      symptom = Fly_away;
      sensor = Sensor.Gps;
      window = window ~pre:1.0 ~post:30.0 Phase.Any Phase.(Exactly Manual);
      known = true;
      window_label = "Manual (position hold)";
      description =
        "Known bug: GPS loss in position-hold keeps the position controller \
         engaged on dead-reckoned state instead of degrading to altitude \
         hold; the vehicle drifts away.";
      requires_second_failure = None;
    }
  | Apm_4679 ->
    {
      id = Apm_4679;
      report = "APM-4679";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Barometer;
      window =
        {
          from_phase = Phase.Any;
          to_phase = Phase.One_of [ Phase.Any_waypoint; Phase.Exactly Phase.Manual ];
          pre_s = 1.0;
          post_s = 30.0;
        };
      known = true;
      window_label = "Cruise (any waypoint leg)";
      description =
        "Known bug: barometer loss in cruise switches altitude control to \
         raw GPS altitude; the noisy vertical feedback drives violent \
         climb-rate oscillations.";
      requires_second_failure = None;
    }
  | Apm_5428 ->
    {
      id = Apm_5428;
      report = "APM-5428";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Compass;
      window = window ~pre:1.0 ~post:6.0 Phase.(Exactly Preflight) Phase.(Exactly Takeoff);
      known = true;
      window_label = "Takeoff";
      description =
        "Known bug: compass loss during the climb feeds an unreferenced \
         heading into the yaw loop; the vehicle enters a tightening spiral \
         (toilet-bowl) and crashes.";
      requires_second_failure = None;
    }
  | Apm_9349 ->
    {
      id = Apm_9349;
      report = "APM-9349";
      firmware = Ardupilot;
      symptom = Crash;
      sensor = Sensor.Accelerometer;
      window = window ~pre:1.0 ~post:10.0 Phase.Any Phase.(Exactly Land);
      known = true;
      window_label = "Land";
      description =
        "Known bug: accelerometer loss during landing blinds the touchdown \
         detector (it keys on the contact jolt); the motors keep running on \
         the ground and the vehicle tips over.";
      requires_second_failure = None;
    }
  | Px4_13291 ->
    {
      id = Px4_13291;
      report = "PX4-13291";
      firmware = Px4;
      symptom = Fly_away;
      sensor = Sensor.Gps;
      window =
        {
          from_phase = Phase.Any;
          to_phase =
            Phase.One_of [ Phase.Any_waypoint; Phase.Exactly Phase.Manual ];
          pre_s = 1.0;
          post_s = 30.0;
        };
      known = true;
      window_label = "Cruise, GPS + battery";
      description =
        "Known bug: with GPS already failed (no local position), a battery \
         monitor failure triggers the battery failsafe's return-to-launch, \
         which dead-reckons away instead of landing in place.";
      requires_second_failure = Some Sensor.Battery;
    }

let of_report r =
  List.find_opt (fun id -> (info id).report = r) all

let unknown_bugs fw =
  List.filter (fun id -> let i = info id in i.firmware = fw && not i.known) all

let known_bugs fw =
  List.filter (fun id -> let i = info id in i.firmware = fw && i.known) all

type registry = { mutable enabled : id list }

let registry ?enabled fw =
  match enabled with
  | Some ids -> { enabled = ids }
  | None -> { enabled = unknown_bugs fw }

let copy_registry r = { enabled = r.enabled }

let enabled r id = List.mem id r.enabled

let enable r id = if not (List.mem id r.enabled) then r.enabled <- id :: r.enabled

let disable r id = r.enabled <- List.filter (fun x -> x <> id) r.enabled

let enabled_list r = r.enabled

(* Stable wire ids for snapshots: the position in [all]. Appending new bugs
   keeps old snapshots decodable; never reorder. *)
let encode_id b id =
  let rec index i = function
    | [] -> invalid_arg "Bug.encode_id: id not in Bug.all"
    | x :: rest -> if x = id then i else index (i + 1) rest
  in
  Avis_util.Codec.w_u8 b (index 0 all)

let decode_id r =
  let tag = Avis_util.Codec.r_u8 r in
  let rec nth i = function
    | [] -> Avis_util.Codec.corrupt "bad bug-id tag %d" tag
    | x :: rest -> if i = 0 then x else nth (i - 1) rest
  in
  nth tag all
