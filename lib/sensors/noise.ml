type spec = { white_stddev : float; bias_stddev : float; drift_rate : float }

let accel = { white_stddev = 0.05; bias_stddev = 0.03; drift_rate = 0.0 }
let gyro = { white_stddev = 0.005; bias_stddev = 0.0003; drift_rate = 0.0 }
let gps_horizontal = { white_stddev = 0.6; bias_stddev = 0.3; drift_rate = 0.0 }
let gps_vertical = { white_stddev = 2.2; bias_stddev = 1.0; drift_rate = 0.0 }
let gps_velocity = { white_stddev = 0.12; bias_stddev = 0.05; drift_rate = 0.0 }
let compass = { white_stddev = 0.02; bias_stddev = 0.01; drift_rate = 0.0 }
let baro = { white_stddev = 0.12; bias_stddev = 0.25; drift_rate = 0.01 }
let battery_voltage = { white_stddev = 0.02; bias_stddev = 0.01; drift_rate = 0.0 }

type channel = {
  rng : Avis_util.Rng.t;
  spec : spec;
  bias : float;
  mutable drift : float;
}

let channel rng spec =
  let rng = Avis_util.Rng.split rng in
  let bias = Avis_util.Rng.gaussian_scaled rng ~mean:0.0 ~stddev:spec.bias_stddev in
  { rng; spec; bias; drift = 0.0 }

let copy_channel c = { c with rng = Avis_util.Rng.copy c.rng }

(* The spec is serialised alongside the state: a channel must resume with
   the exact spec it was created from even if the built-in constants above
   are retuned in a later build. *)
let encode_channel b c =
  let open Avis_util.Codec in
  w_i64 b (Avis_util.Rng.to_bits c.rng);
  w_f64 b c.spec.white_stddev;
  w_f64 b c.spec.bias_stddev;
  w_f64 b c.spec.drift_rate;
  w_f64 b c.bias;
  w_f64 b c.drift

let decode_channel r =
  let open Avis_util.Codec in
  let rng = Avis_util.Rng.of_bits (r_i64 r) in
  let white_stddev = r_f64 r in
  let bias_stddev = r_f64 r in
  let drift_rate = r_f64 r in
  let bias = r_f64 r in
  let drift = r_f64 r in
  { rng; spec = { white_stddev; bias_stddev; drift_rate }; bias; drift }

let sample c ~dt ~truth =
  if c.spec.drift_rate > 0.0 then
    c.drift <-
      c.drift
      +. Avis_util.Rng.gaussian_scaled c.rng ~mean:0.0
           ~stddev:(c.spec.drift_rate *. sqrt dt);
  truth +. c.bias +. c.drift
  +. Avis_util.Rng.gaussian_scaled c.rng ~mean:0.0 ~stddev:c.spec.white_stddev
