(** Per-kind sensor noise characteristics.

    Each instance gets a constant bias drawn at creation plus white noise per
    sample; the barometer additionally drifts slowly. The GPS's vertical
    error is deliberately several times its horizontal error — that
    asymmetry is what makes the Fig. 1 bug (GPS-guided altitude changes at
    low altitude) physically unsafe. *)

type spec = {
  white_stddev : float;
  bias_stddev : float;
  drift_rate : float;  (** Random-walk rate per second (barometer). *)
}

val accel : spec
val gyro : spec
val gps_horizontal : spec
val gps_vertical : spec
val gps_velocity : spec
val compass : spec
val baro : spec
val battery_voltage : spec

type channel
(** One noisy scalar channel: bias + drift + white noise. *)

val channel : Avis_util.Rng.t -> spec -> channel
(** Draw the channel's bias from the spec using the given generator. *)

val copy_channel : channel -> channel
(** An independent copy: same bias, current drift, and a copied RNG, so the
    copy produces the same sample stream as the original would have. *)

val encode_channel : Buffer.t -> channel -> unit
(** Binary layout: RNG state, spec, bias and drift — everything needed to
    resume the exact sample stream. *)

val decode_channel : Avis_util.Codec.reader -> channel
(** Inverse of {!encode_channel}; raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val sample : channel -> dt:float -> truth:float -> float
(** Corrupt a true value; advances drift by [dt]. *)
