open Avis_geo

type kind = Accelerometer | Gyroscope | Gps | Compass | Barometer | Battery

let all_kinds = [ Accelerometer; Gyroscope; Gps; Compass; Barometer; Battery ]

let kind_to_string = function
  | Accelerometer -> "accelerometer"
  | Gyroscope -> "gyroscope"
  | Gps -> "gps"
  | Compass -> "compass"
  | Barometer -> "barometer"
  | Battery -> "battery"

let kind_of_string = function
  | "accelerometer" -> Some Accelerometer
  | "gyroscope" -> Some Gyroscope
  | "gps" -> Some Gps
  | "compass" -> Some Compass
  | "barometer" -> Some Barometer
  | "battery" -> Some Battery
  | _ -> None

type role = Primary | Backup

type id = { kind : kind; index : int }

let role_of id = if id.index = 0 then Primary else Backup

let id_to_string id = Printf.sprintf "%s[%d]" (kind_to_string id.kind) id.index

let compare_id a b =
  match compare a.kind b.kind with 0 -> compare a.index b.index | c -> c

let equal_id a b = compare_id a b = 0

type reading =
  | Accel of Vec3.t
  | Gyro of Vec3.t
  | Gps_fix of { position : Vec3.t; velocity : Vec3.t; hdop : float }
  | Heading of float
  | Pressure_alt of float
  | Battery_state of { voltage : float; remaining : float }

let reading_kind = function
  | Accel _ -> Accelerometer
  | Gyro _ -> Gyroscope
  | Gps_fix _ -> Gps
  | Heading _ -> Compass
  | Pressure_alt _ -> Barometer
  | Battery_state _ -> Battery

let kind_tag = function
  | Accelerometer -> 0
  | Gyroscope -> 1
  | Gps -> 2
  | Compass -> 3
  | Barometer -> 4
  | Battery -> 5

let kind_of_tag = function
  | 0 -> Accelerometer
  | 1 -> Gyroscope
  | 2 -> Gps
  | 3 -> Compass
  | 4 -> Barometer
  | 5 -> Battery
  | t -> Avis_util.Codec.corrupt "bad sensor-kind tag %d" t

let encode_kind b k = Avis_util.Codec.w_u8 b (kind_tag k)
let decode_kind r = kind_of_tag (Avis_util.Codec.r_u8 r)

let encode_id b id =
  encode_kind b id.kind;
  Avis_util.Codec.w_int b id.index

let decode_id r =
  let kind = decode_kind r in
  let index = Avis_util.Codec.r_int r in
  if index < 0 || index > 255 then
    Avis_util.Codec.corrupt "bad sensor index %d" index;
  { kind; index }

let encode_reading b reading =
  let open Avis_util.Codec in
  match reading with
  | Accel v ->
    w_u8 b 0;
    Vec3.encode b v
  | Gyro v ->
    w_u8 b 1;
    Vec3.encode b v
  | Gps_fix { position; velocity; hdop } ->
    w_u8 b 2;
    Vec3.encode b position;
    Vec3.encode b velocity;
    w_f64 b hdop
  | Heading h ->
    w_u8 b 3;
    w_f64 b h
  | Pressure_alt a ->
    w_u8 b 4;
    w_f64 b a
  | Battery_state { voltage; remaining } ->
    w_u8 b 5;
    w_f64 b voltage;
    w_f64 b remaining

let decode_reading r =
  let open Avis_util.Codec in
  match r_u8 r with
  | 0 -> Accel (Vec3.decode r)
  | 1 -> Gyro (Vec3.decode r)
  | 2 ->
    let position = Vec3.decode r in
    let velocity = Vec3.decode r in
    let hdop = r_f64 r in
    Gps_fix { position; velocity; hdop }
  | 3 -> Heading (r_f64 r)
  | 4 -> Pressure_alt (r_f64 r)
  | 5 ->
    let voltage = r_f64 r in
    let remaining = r_f64 r in
    Battery_state { voltage; remaining }
  | t -> corrupt "bad reading tag %d" t

let pp_reading ppf = function
  | Accel v -> Format.fprintf ppf "accel %a" Vec3.pp v
  | Gyro v -> Format.fprintf ppf "gyro %a" Vec3.pp v
  | Gps_fix { position; velocity; hdop } ->
    Format.fprintf ppf "gps pos=%a vel=%a hdop=%.2f" Vec3.pp position Vec3.pp
      velocity hdop
  | Heading h -> Format.fprintf ppf "heading %.3f rad" h
  | Pressure_alt a -> Format.fprintf ppf "baro alt %.2f m" a
  | Battery_state { voltage; remaining } ->
    Format.fprintf ppf "battery %.2f V (%.0f%%)" voltage (remaining *. 100.0)
