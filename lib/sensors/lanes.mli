(** Batched per-step sensor state, the sensor half of lane stepping.

    The suite's only per-step state is the battery's state of charge, which
    {!Suite.t} already keeps in a single-cell float array. A lane therefore
    {e shares} that cell by pointer — every drain lands directly in the
    suite, so there is nothing to flush — and replicates {!Suite.tick}'s
    drain expression from airframe constants gathered at adoption. Each
    lane's charge trajectory is bit-identical to ticking its suite alone. *)

type t

val create : width:int -> t
(** A batch of [width] free sensor lanes; nothing allocates per tick. *)

val width : t -> int

val n_active : t -> int
(** Number of currently adopted lanes. *)

val is_active : t -> int -> bool

val adopt : t -> int -> Suite.t -> Avis_physics.World.t -> unit
(** [adopt t i suite world] binds lane [i] to [suite]'s charge cell and
    precomputes the constant power draw from [world]'s airframe. The lane
    must be free. *)

val release : t -> int -> unit
(** Free lane [i]; the suite keeps its (already current) charge. *)

val tick : t -> int -> dt:float -> unit
(** Advance lane [i] one step — the batched {!Suite.tick}. *)

val tick_all : t -> dt:float -> unit
(** One lock-step round: [tick] on every active lane. *)
