(** Sensor identities, roles and readings.

    A vehicle carries several *instances* of each sensor *kind*; instance 0
    of a kind is the primary, the rest are backups. The paper's
    sensor-instance-symmetry pruning (§IV-B) relies on exactly this
    distinction: firmware behaviour depends on the role of a failed
    instance, not on which physical instance failed. *)

open Avis_geo

type kind = Accelerometer | Gyroscope | Gps | Compass | Barometer | Battery

val all_kinds : kind list

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type role = Primary | Backup

type id = { kind : kind; index : int }
(** Instance 0 is the primary of its kind. *)

val role_of : id -> role
val id_to_string : id -> string

val compare_id : id -> id -> int
val equal_id : id -> id -> bool

type reading =
  | Accel of Vec3.t  (** Specific force, body frame, m/s². *)
  | Gyro of Vec3.t  (** Angular rate, body frame, rad/s. *)
  | Gps_fix of { position : Vec3.t; velocity : Vec3.t; hdop : float }
      (** Position/velocity in the local world frame. [hdop] is the
          dilution-of-precision figure the firmware uses to judge quality. *)
  | Heading of float  (** Magnetic heading, radians. *)
  | Pressure_alt of float  (** Barometric altitude, metres. *)
  | Battery_state of { voltage : float; remaining : float }

val reading_kind : reading -> kind

val encode_kind : Buffer.t -> kind -> unit
val decode_kind : Avis_util.Codec.reader -> kind

val encode_id : Buffer.t -> id -> unit
val decode_id : Avis_util.Codec.reader -> id

val encode_reading : Buffer.t -> reading -> unit
val decode_reading : Avis_util.Codec.reader -> reading
(** Binary layouts for snapshot persistence; decoders raise
    [Avis_util.Codec.Corrupt] on malformed input. *)

val pp_reading : Format.formatter -> reading -> unit
