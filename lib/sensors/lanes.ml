open Avis_physics

external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* Batched counterpart of [Suite.tick]. The only per-step suite state is the
   battery's state of charge, already held in a single-cell float array — so
   a lane shares that cell by pointer and replicates the drain expression
   from per-lane constants gathered at adoption. No flush is needed: every
   store lands in the suite itself. *)

type t = {
  width : int;
  active : bool array;
  cells : float array array; (* per-lane pointer to the suite's charge cell *)
  c_power_w : float array;
  c_capacity_j : float array;
  d_cell : float array; (* placeholder so released lanes retain no suite *)
  mutable n_active : int;
}

let create ~width =
  if width < 1 then invalid_arg "Sensors.Lanes.create: width must be at least 1";
  let d_cell = [| 0.0 |] in
  {
    width;
    active = Array.make width false;
    cells = Array.make width d_cell;
    c_power_w = Array.make width 0.0;
    c_capacity_j = Array.make width 1.0;
    d_cell;
    n_active = 0;
  }

let width t = t.width
let n_active t = t.n_active

let is_active t i =
  if i < 0 || i >= t.width then
    invalid_arg "Sensors.Lanes.is_active: lane out of range";
  t.active.(i)

let adopt t i suite world =
  if i < 0 || i >= t.width then
    invalid_arg "Sensors.Lanes.adopt: lane out of range";
  if t.active.(i) then invalid_arg "Sensors.Lanes.adopt: lane already active";
  (* [Suite.tick]'s power draw is a deterministic function of airframe
     constants alone, so hoisting it to adoption reproduces the same float
     every step. *)
  let frame = World.airframe world in
  let hover =
    frame.Airframe.mass_kg *. Airframe.gravity
    /. (float_of_int frame.Airframe.motor_count
       *. frame.Airframe.max_thrust_per_motor_n)
  in
  let thrust_fraction = Float.max 0.05 hover in
  let power_w = 180.0 *. (thrust_fraction /. hover) in
  t.cells.(i) <- Suite.charge_cell suite;
  t.c_power_w.(i) <- power_w;
  t.c_capacity_j.(i) <- Suite.capacity_j suite;
  t.active.(i) <- true;
  t.n_active <- t.n_active + 1

let release t i =
  if i < 0 || i >= t.width then
    invalid_arg "Sensors.Lanes.release: lane out of range";
  if t.active.(i) then begin
    t.active.(i) <- false;
    t.cells.(i) <- t.d_cell;
    t.c_power_w.(i) <- 0.0;
    t.c_capacity_j.(i) <- 1.0;
    t.n_active <- t.n_active - 1
  end

let[@inline] tick_lane t i ~dt =
  (* Expression-for-expression replica of [Suite.tick]'s store. *)
  let cell = t.cells.!(i) in
  cell.!(0) <-
    Float.max 0.0 (cell.!(0) -. (t.c_power_w.!(i) *. dt /. t.c_capacity_j.!(i)))

let tick t i ~dt =
  if not t.active.(i) then invalid_arg "Sensors.Lanes.tick: inactive lane";
  tick_lane t i ~dt

let tick_all t ~dt =
  for i = 0 to t.width - 1 do
    if t.active.!(i) then tick_lane t i ~dt
  done
