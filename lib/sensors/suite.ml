open Avis_geo
open Avis_physics

type complement = {
  accelerometers : int;
  gyroscopes : int;
  compasses : int;
  gps_receivers : int;
  barometers : int;
  batteries : int;
}

let iris_complement =
  {
    accelerometers = 2;
    gyroscopes = 2;
    compasses = 2;
    gps_receivers = 2;
    barometers = 2;
    batteries = 1;
  }

let instances_of_complement c =
  let ids kind n = List.init n (fun index -> { Sensor.kind; index }) in
  List.concat
    [
      ids Sensor.Accelerometer c.accelerometers;
      ids Sensor.Gyroscope c.gyroscopes;
      ids Sensor.Compass c.compasses;
      ids Sensor.Gps c.gps_receivers;
      ids Sensor.Barometer c.barometers;
      ids Sensor.Battery c.batteries;
    ]

(* Noise channels per instance: three spatial channels for vector sensors,
   dedicated channels for GPS's anisotropic errors. *)
type instance_state = {
  id : Sensor.id;
  ch1 : Noise.channel;
  ch2 : Noise.channel;
  ch3 : Noise.channel;
  ch_aux : Noise.channel;
}

type t = {
  complement : complement;
  states : (Sensor.id * instance_state) list;
  charge : float array; (* single cell: state of charge, 0..1 — flat so the
                           per-tick store stays unboxed *)
  full_voltage : float;
  empty_voltage : float;
  capacity_j : float;
}

let spec_for (id : Sensor.id) =
  match id.Sensor.kind with
  | Sensor.Accelerometer -> (Noise.accel, Noise.accel)
  | Sensor.Gyroscope -> (Noise.gyro, Noise.gyro)
  | Sensor.Gps -> (Noise.gps_horizontal, Noise.gps_vertical)
  | Sensor.Compass -> (Noise.compass, Noise.compass)
  | Sensor.Barometer -> (Noise.baro, Noise.baro)
  | Sensor.Battery -> (Noise.battery_voltage, Noise.battery_voltage)

let create ?(complement = iris_complement) ~rng () =
  let make_state id =
    let spec, spec_v = spec_for id in
    let aux_spec =
      match id.Sensor.kind with
      | Sensor.Gps -> Noise.gps_velocity
      | _ -> spec
    in
    ( id,
      {
        id;
        ch1 = Noise.channel rng spec;
        ch2 = Noise.channel rng spec;
        ch3 = Noise.channel rng spec_v;
        ch_aux = Noise.channel rng aux_spec;
      } )
  in
  {
    complement;
    states = List.map make_state (instances_of_complement complement);
    charge = [| 1.0 |];
    full_voltage = 12.6;
    empty_voltage = 10.2;
    capacity_j = 180_000.0;
  }

type snapshot = t

let copy t =
  let copy_state (id, s) =
    ( id,
      {
        s with
        ch1 = Noise.copy_channel s.ch1;
        ch2 = Noise.copy_channel s.ch2;
        ch3 = Noise.copy_channel s.ch3;
        ch_aux = Noise.copy_channel s.ch_aux;
      } )
  in
  { t with states = List.map copy_state t.states; charge = Array.copy t.charge }

let snapshot = copy
let restore = copy

let encode_instance b (id, s) =
  Sensor.encode_id b id;
  Noise.encode_channel b s.ch1;
  Noise.encode_channel b s.ch2;
  Noise.encode_channel b s.ch3;
  Noise.encode_channel b s.ch_aux

let decode_instance r =
  let id = Sensor.decode_id r in
  let ch1 = Noise.decode_channel r in
  let ch2 = Noise.decode_channel r in
  let ch3 = Noise.decode_channel r in
  let ch_aux = Noise.decode_channel r in
  (id, { id; ch1; ch2; ch3; ch_aux })

let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  w_int b s.complement.accelerometers;
  w_int b s.complement.gyroscopes;
  w_int b s.complement.compasses;
  w_int b s.complement.gps_receivers;
  w_int b s.complement.barometers;
  w_int b s.complement.batteries;
  w_list b encode_instance s.states;
  w_f64 b s.charge.(0);
  w_f64 b s.full_voltage;
  w_f64 b s.empty_voltage;
  w_f64 b s.capacity_j

let decode_snapshot r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let accelerometers = r_int r in
  let gyroscopes = r_int r in
  let compasses = r_int r in
  let gps_receivers = r_int r in
  let barometers = r_int r in
  let batteries = r_int r in
  let states = r_list r decode_instance in
  let charge = [| r_f64 r |] in
  let full_voltage = r_f64 r in
  let empty_voltage = r_f64 r in
  let capacity_j = r_f64 r in
  {
    complement =
      {
        accelerometers;
        gyroscopes;
        compasses;
        gps_receivers;
        barometers;
        batteries;
      };
    states;
    charge;
    full_voltage;
    empty_voltage;
    capacity_j;
  }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s
let of_bytes data = Avis_util.Codec.of_string decode_snapshot data

let instances t = List.map fst t.states

let count t kind =
  match kind with
  | Sensor.Accelerometer -> t.complement.accelerometers
  | Sensor.Gyroscope -> t.complement.gyroscopes
  | Sensor.Compass -> t.complement.compasses
  | Sensor.Gps -> t.complement.gps_receivers
  | Sensor.Barometer -> t.complement.barometers
  | Sensor.Battery -> t.complement.batteries

let tick t world ~dt =
  (* Electrical power rises with thrust; hovering the Iris draws ~180 W.
     [Airframe.hover_throttle] spelled out from the airframe fields so the
     per-step tick allocates no boxed return. *)
  let frame = World.airframe world in
  let hover =
    frame.Airframe.mass_kg *. Airframe.gravity
    /. (float_of_int frame.Airframe.motor_count
       *. frame.Airframe.max_thrust_per_motor_n)
  in
  let thrust_fraction = Float.max 0.05 hover in
  let power_w = 180.0 *. (thrust_fraction /. hover) in
  t.charge.(0) <- Float.max 0.0 (t.charge.(0) -. (power_w *. dt /. t.capacity_j))

let battery_remaining t = t.charge.(0)

(* Lane hooks: the batched sensor stepper shares the charge cell by pointer
   and replicates [tick]'s drain expression from these constants. *)
let charge_cell t = t.charge
let capacity_j t = t.capacity_j

let drain_battery_to t level =
  t.charge.(0) <- Avis_util.Stats.clamp ~lo:0.0 ~hi:1.0 level

let state_for t id =
  match List.assoc_opt id t.states with
  | Some s -> s
  | None -> invalid_arg ("Suite.read: unknown instance " ^ Sensor.id_to_string id)

let read t world id =
  let s = state_for t id in
  let b = World.body world in
  let dt = 0.0 in
  match id.Sensor.kind with
  | Sensor.Accelerometer ->
    let f = Avis_physics.Rigid_body.specific_force_body b in
    Sensor.Accel
      (Vec3.make
         (Noise.sample s.ch1 ~dt ~truth:f.Vec3.x)
         (Noise.sample s.ch2 ~dt ~truth:f.Vec3.y)
         (Noise.sample s.ch3 ~dt ~truth:f.Vec3.z))
  | Sensor.Gyroscope ->
    let w = b.Avis_physics.Rigid_body.angular_velocity in
    Sensor.Gyro
      (Vec3.make
         (Noise.sample s.ch1 ~dt ~truth:w.Vec3.Mut.x)
         (Noise.sample s.ch2 ~dt ~truth:w.Vec3.Mut.y)
         (Noise.sample s.ch3 ~dt ~truth:w.Vec3.Mut.z))
  | Sensor.Gps ->
    let p = b.Avis_physics.Rigid_body.position in
    let v = b.Avis_physics.Rigid_body.velocity in
    Sensor.Gps_fix
      {
        position =
          Vec3.make
            (Noise.sample s.ch1 ~dt ~truth:p.Vec3.Mut.x)
            (Noise.sample s.ch2 ~dt ~truth:p.Vec3.Mut.y)
            (Noise.sample s.ch3 ~dt ~truth:p.Vec3.Mut.z);
        velocity =
          Vec3.make
            (Noise.sample s.ch_aux ~dt ~truth:v.Vec3.Mut.x)
            (Noise.sample s.ch_aux ~dt ~truth:v.Vec3.Mut.y)
            (Noise.sample s.ch_aux ~dt ~truth:v.Vec3.Mut.z);
        hdop = 0.8;
      }
  | Sensor.Compass ->
    let _, _, yaw = Quat.to_euler (Avis_physics.Rigid_body.attitude_q b) in
    Sensor.Heading (Noise.sample s.ch1 ~dt ~truth:yaw)
  | Sensor.Barometer ->
    let alt = b.Avis_physics.Rigid_body.position.Vec3.Mut.z in
    Sensor.Pressure_alt (Noise.sample s.ch1 ~dt:0.004 ~truth:alt)
  | Sensor.Battery ->
    let truth_v =
      t.empty_voltage +. ((t.full_voltage -. t.empty_voltage) *. t.charge.(0))
    in
    Sensor.Battery_state
      {
        voltage = Noise.sample s.ch1 ~dt ~truth:truth_v;
        remaining = t.charge.(0);
      }
