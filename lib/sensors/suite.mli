(** The vehicle's full sensor complement.

    Produces noisy readings from the simulated world's true state. The suite
    knows nothing about failures — fault injection happens one layer up, in
    the hinj-instrumented drivers — so a [read] here is always the "healthy
    instance" behaviour. The battery is modelled inside the suite because
    its truth (state of charge) is a function of the flight so far rather
    than of the instantaneous world state. *)

type complement = {
  accelerometers : int;
  gyroscopes : int;
  compasses : int;
  gps_receivers : int;
  barometers : int;
  batteries : int;
}

val iris_complement : complement
(** 2 accelerometers, 2 gyroscopes, 2 compasses, 2 GPS, 2 barometers,
    1 battery monitor — 11 instances (primary + one backup per redundant
    kind). *)

val instances_of_complement : complement -> Sensor.id list
(** All instance ids, primaries first within each kind. *)

type t

val create : ?complement:complement -> rng:Avis_util.Rng.t -> unit -> t

type snapshot
(** A frozen deep copy of the suite: every noise channel's RNG, bias and
    drift plus the battery's state of charge. *)

val snapshot : t -> snapshot
val restore : snapshot -> t
(** Each restore yields an independent suite; a snapshot may be restored
    any number of times. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
val decode_snapshot : Avis_util.Codec.reader -> snapshot

val to_bytes : snapshot -> string
(** Versioned binary form of a snapshot — complement, every noise
    channel's RNG/spec/bias/drift and the battery state — bit-exact on
    round-trip. *)

val of_bytes : string -> snapshot
(** Inverse of {!to_bytes}; raises [Avis_util.Codec.Corrupt] on malformed
    input. *)

val instances : t -> Sensor.id list

val count : t -> Sensor.kind -> int

val tick : t -> Avis_physics.World.t -> dt:float -> unit
(** Advance suite-internal state (battery discharge) one simulation step. *)

val read : t -> Avis_physics.World.t -> Sensor.id -> Sensor.reading
(** Noisy reading for an instance. Raises [Invalid_argument] for an unknown
    instance. *)

val battery_remaining : t -> float
(** True state of charge in [\[0, 1\]]. *)

val charge_cell : t -> float array
(** The live single-cell state-of-charge array — the cell {!tick} updates
    in place. The batched sensor stepper drains it through this pointer so
    a lane's battery is the suite's own. Treat as owned by the stepper. *)

val capacity_j : t -> float
(** Battery capacity in joules (a constant of the suite). *)

val drain_battery_to : t -> float -> unit
(** Force the state of charge (used by workloads that test low-battery
    behaviour). *)
