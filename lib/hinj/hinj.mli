(** The hardware-fault-injector interface ("libhinj").

    This is the reproduction of the paper's libhinj: the only firmware
    modifications Avis requires. Firmware sensor drivers route every read
    through [sensor_read], which consults the injection plan and either
    passes the read through or reports a clean failure; the firmware's
    mode-change function calls [update_mode], which is how Avis observes
    mode transitions and timestamps them.

    The fault model is the paper's: a *clean sensor failure* — from its
    start time onwards the instance stops communicating and the driver
    reports it failed; a failed sensor never recovers within a run. *)

open Avis_sensors

type fault = { sensor : Sensor.id; at : float }
(** Fail [sensor] from simulation time [at] (seconds) onwards. *)

type plan = fault list

(** Degradations — the richer fault models the paper leaves to future work.
    Unlike clean failures, a degraded sensor keeps responding, but its
    readings are corrupted; the driver cannot tell from the transport that
    anything is wrong. *)
type degradation_kind =
  | Stuck_at_last  (** The reading freezes at its last healthy value. *)
  | Extra_noise of float
      (** Additional zero-mean Gaussian noise with this stddev on every
          scalar channel. *)
  | Constant_bias of float  (** A constant offset on every scalar channel. *)

type degradation = {
  target : Sensor.id;
  from_time : float;
  kind : degradation_kind;
}

type decision = Healthy | Failed

type transition = { time : float; from_mode : string; to_mode : string }

type t

val create : ?plan:plan -> ?degradations:degradation list -> unit -> t

val plan : t -> plan

val degradations : t -> degradation list
(** The degradations this injector was provisioned with. Degradations
    cannot be substituted on [restore], so forked runs must share them —
    the prefix cache refuses to serve configurations that carry any. *)

type snapshot
(** Mode log, read counter and plan, frozen. *)

val snapshot : t -> snapshot

val restore : ?plan:plan -> snapshot -> t
(** Rebuild an injector from a snapshot. [?plan] substitutes a different
    injection plan — the prefix cache uses this to fork a clean run into a
    faulty scenario, which is only sound if no fault in the new plan starts
    at or before the snapshot time. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
val decode_snapshot : Avis_util.Codec.reader -> snapshot

val to_bytes : snapshot -> string
(** Versioned binary form of a snapshot: plan, degradations, mode log and
    read counter. *)

val of_bytes : string -> snapshot
(** Inverse of {!to_bytes}; raises [Avis_util.Codec.Corrupt] on malformed
    input. *)

val sensor_read : t -> time:float -> Sensor.id -> decision
(** The instrumented driver's question: should this read succeed? Also
    counts reads for throughput statistics. *)

val is_failed : t -> time:float -> Sensor.id -> bool
(** Same decision without counting a read (used by health monitors). *)

val update_mode : t -> time:float -> string -> unit
(** Called by the firmware whenever its mode changes. The first call
    records the initial mode; subsequent calls with a different mode record
    a transition. *)

val current_mode : t -> string option

val transitions : t -> transition list
(** All observed transitions, oldest first. *)

val mode_at : t -> float -> string option
(** The mode the firmware was in at a given time, from the transition log. *)

val read_count : t -> int
(** Total sensor reads intercepted. *)

val injected_so_far : t -> time:float -> fault list
(** The part of the plan already active at [time]. *)

val degradation_of : t -> time:float -> Sensor.id -> degradation_kind option
(** The degradation active on an instance, if any (clean failures take
    precedence: a failed instance does not respond at all). *)
