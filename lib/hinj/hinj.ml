open Avis_sensors

type fault = { sensor : Sensor.id; at : float }

type plan = fault list

type degradation_kind =
  | Stuck_at_last
  | Extra_noise of float
  | Constant_bias of float

type degradation = {
  target : Sensor.id;
  from_time : float;
  kind : degradation_kind;
}

type decision = Healthy | Failed

type transition = { time : float; from_mode : string; to_mode : string }

type t = {
  plan : plan;
  degradations : degradation list;
  mutable mode : string option;
  mutable initial_mode : (float * string) option;
  mutable transitions : transition list; (* newest first *)
  mutable read_count : int;
}

let create ?(plan = []) ?(degradations = []) () =
  { plan; degradations; mode = None; initial_mode = None; transitions = [];
    read_count = 0 }

let plan t = t.plan

let degradations t = t.degradations

type snapshot = t

let freeze ?plan t =
  (* Transition entries are immutable, so sharing the list is safe. *)
  let plan = match plan with Some p -> p | None -> t.plan in
  {
    plan;
    degradations = t.degradations;
    mode = t.mode;
    initial_mode = t.initial_mode;
    transitions = t.transitions;
    read_count = t.read_count;
  }

let snapshot t = freeze t
let restore ?plan s = freeze ?plan s

let is_failed t ~time id =
  List.exists (fun f -> Sensor.equal_id f.sensor id && f.at <= time) t.plan

let sensor_read t ~time id =
  t.read_count <- t.read_count + 1;
  if is_failed t ~time id then Failed else Healthy

let update_mode t ~time mode =
  match t.mode with
  | None ->
    t.mode <- Some mode;
    t.initial_mode <- Some (time, mode)
  | Some current when current = mode -> ()
  | Some current ->
    t.mode <- Some mode;
    t.transitions <- { time; from_mode = current; to_mode = mode } :: t.transitions

let current_mode t = t.mode

let transitions t = List.rev t.transitions

let mode_at t time =
  match t.initial_mode with
  | None -> None
  | Some (t0, first) ->
    if time < t0 then None
    else
      List.fold_left
        (fun acc tr -> if tr.time <= time then Some tr.to_mode else acc)
        (Some first) (transitions t)

let read_count t = t.read_count

let injected_so_far t ~time = List.filter (fun f -> f.at <= time) t.plan

let degradation_of t ~time id =
  if is_failed t ~time id then None
  else
    List.find_map
      (fun d ->
        if Sensor.equal_id d.target id && d.from_time <= time then Some d.kind
        else None)
      t.degradations
