open Avis_sensors

type fault = { sensor : Sensor.id; at : float }

type plan = fault list

type degradation_kind =
  | Stuck_at_last
  | Extra_noise of float
  | Constant_bias of float

type degradation = {
  target : Sensor.id;
  from_time : float;
  kind : degradation_kind;
}

type decision = Healthy | Failed

type transition = { time : float; from_mode : string; to_mode : string }

type t = {
  plan : plan;
  degradations : degradation list;
  mutable mode : string option;
  mutable initial_mode : (float * string) option;
  mutable transitions : transition list; (* newest first *)
  mutable read_count : int;
}

let create ?(plan = []) ?(degradations = []) () =
  { plan; degradations; mode = None; initial_mode = None; transitions = [];
    read_count = 0 }

let plan t = t.plan

let degradations t = t.degradations

type snapshot = t

let freeze ?plan t =
  (* Transition entries are immutable, so sharing the list is safe. *)
  let plan = match plan with Some p -> p | None -> t.plan in
  {
    plan;
    degradations = t.degradations;
    mode = t.mode;
    initial_mode = t.initial_mode;
    transitions = t.transitions;
    read_count = t.read_count;
  }

let snapshot t = freeze t
let restore ?plan s = freeze ?plan s

let encode_fault b f =
  Sensor.encode_id b f.sensor;
  Avis_util.Codec.w_f64 b f.at

let decode_fault r =
  let sensor = Sensor.decode_id r in
  let at = Avis_util.Codec.r_f64 r in
  { sensor; at }

let encode_degradation b d =
  let open Avis_util.Codec in
  Sensor.encode_id b d.target;
  w_f64 b d.from_time;
  match d.kind with
  | Stuck_at_last -> w_u8 b 0
  | Extra_noise s ->
    w_u8 b 1;
    w_f64 b s
  | Constant_bias o ->
    w_u8 b 2;
    w_f64 b o

let decode_degradation r =
  let open Avis_util.Codec in
  let target = Sensor.decode_id r in
  let from_time = r_f64 r in
  let kind =
    match r_u8 r with
    | 0 -> Stuck_at_last
    | 1 -> Extra_noise (r_f64 r)
    | 2 -> Constant_bias (r_f64 r)
    | t -> corrupt "bad degradation tag %d" t
  in
  { target; from_time; kind }

let encode_transition b tr =
  let open Avis_util.Codec in
  w_f64 b tr.time;
  w_string b tr.from_mode;
  w_string b tr.to_mode

let decode_transition r =
  let open Avis_util.Codec in
  let time = r_f64 r in
  let from_mode = r_string r in
  let to_mode = r_string r in
  { time; from_mode; to_mode }

let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  w_list b encode_fault s.plan;
  w_list b encode_degradation s.degradations;
  w_option b w_string s.mode;
  w_option b
    (fun b (t, m) ->
      w_f64 b t;
      w_string b m)
    s.initial_mode;
  w_list b encode_transition s.transitions;
  w_int b s.read_count

let decode_snapshot r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let plan = r_list r decode_fault in
  let degradations = r_list r decode_degradation in
  let mode = r_option r r_string in
  let initial_mode =
    r_option r (fun r ->
        let t = r_f64 r in
        let m = r_string r in
        (t, m))
  in
  let transitions = r_list r decode_transition in
  let read_count = r_int r in
  { plan; degradations; mode; initial_mode; transitions; read_count }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s
let of_bytes data = Avis_util.Codec.of_string decode_snapshot data

let is_failed t ~time id =
  List.exists (fun f -> Sensor.equal_id f.sensor id && f.at <= time) t.plan

let sensor_read t ~time id =
  t.read_count <- t.read_count + 1;
  if is_failed t ~time id then Failed else Healthy

let update_mode t ~time mode =
  match t.mode with
  | None ->
    t.mode <- Some mode;
    t.initial_mode <- Some (time, mode)
  | Some current when current = mode -> ()
  | Some current ->
    t.mode <- Some mode;
    t.transitions <- { time; from_mode = current; to_mode = mode } :: t.transitions

let current_mode t = t.mode

let transitions t = List.rev t.transitions

let mode_at t time =
  match t.initial_mode with
  | None -> None
  | Some (t0, first) ->
    if time < t0 then None
    else
      List.fold_left
        (fun acc tr -> if tr.time <= time then Some tr.to_mode else acc)
        (Some first) (transitions t)

let read_count t = t.read_count

let injected_so_far t ~time = List.filter (fun f -> f.at <= time) t.plan

let degradation_of t ~time id =
  if is_failed t ~time id then None
  else
    List.find_map
      (fun d ->
        if Sensor.equal_id d.target id && d.from_time <= time then Some d.kind
        else None)
      t.degradations
