(* Binary snapshot codecs: a Buffer-backed writer and a cursor-backed
   reader over the same explicit, versioned wire format. Everything
   numeric goes through Int64 bit patterns, so round-trips are exact to
   the float bit. No Marshal anywhere: every layer states its layout. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let remaining r = String.length r.data - r.pos

let finished r = remaining r = 0

(* ---------------- writers ---------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_i64 b v = Buffer.add_int64_le b v

let w_int b v = w_i64 b (Int64.of_int v)

let w_f64 b v = w_i64 b (Int64.bits_of_float v)

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_option b f = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    f b v

let w_list b f xs =
  w_int b (List.length xs);
  List.iter (fun x -> f b x) xs

let w_array b f xs =
  w_int b (Array.length xs);
  Array.iter (fun x -> f b x) xs

let w_float_array b xs =
  w_int b (Array.length xs);
  Array.iter (fun x -> w_f64 b x) xs

let w_version b v = w_u8 b v

(* ---------------- readers ---------------- *)

let r_u8 r =
  if remaining r < 1 then corrupt "truncated input (u8)";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  if remaining r < 8 then corrupt "truncated input (i64)";
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r =
  let v = r_i64 r in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then corrupt "integer out of range";
  i

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad bool tag %d" v

(* Every element of a counted sequence occupies at least one byte, so a
   length exceeding the remaining input is corruption, not a huge
   allocation waiting to happen. *)
let r_count r =
  let n = r_int r in
  if n < 0 || n > remaining r then corrupt "bad sequence length %d" n;
  n

let r_string r =
  let n = r_count r in
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_option r f =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | v -> corrupt "bad option tag %d" v

let r_list r f =
  let n = r_count r in
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f r :: acc) in
  go 0 []

let r_array r f =
  let n = r_count r in
  Array.init n (fun _ -> f r)

let r_float_array r =
  let n = r_count r in
  if n > remaining r / 8 then corrupt "bad float-array length %d" n;
  Array.init n (fun _ -> r_f64 r)

let r_version r ~expect =
  let v = r_u8 r in
  if v <> expect then corrupt "unsupported codec version %d (want %d)" v expect;
  v

(* ---------------- framing ---------------- *)

(* Length-prefixed nesting, used to compose per-layer [to_bytes] blobs
   into one payload without the outer layer knowing inner layouts. *)
let w_bytes = w_string
let r_bytes = r_string

let to_string f v =
  let b = Buffer.create 256 in
  f b v;
  Buffer.contents b

let of_string f s =
  let r = reader s in
  let v = f r in
  if not (finished r) then corrupt "trailing bytes after value";
  v
