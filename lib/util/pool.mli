(** A small bounded work-queue over OCaml 5 domains.

    Jobs are closures; a fixed crew of worker domains drains a bounded
    queue (submission blocks when the queue is full, so a fast producer
    cannot build an unbounded backlog). With [jobs <= 1] everything runs
    inline on the calling domain in submission order, which is the
    determinism baseline the campaign runner is checked against: a job
    must not depend on which domain runs it or on completion order. *)

type t

val create : jobs:int -> t
(** Start a pool of [max 1 jobs] workers. [jobs <= 1] creates an inline
    pool that runs each job during {!submit}. *)

val jobs : t -> int
(** The worker count the pool was created with (at least 1). *)

val submit : t -> (unit -> unit) -> unit
(** Queue a job. Blocks while the queue is full. Raises [Invalid_argument]
    if the pool is already closed — including when the close happened while
    this submit was blocked on a full queue (enqueueing then could land the
    job after the workers exited, silently dropping it). A failing job
    never raises here, whatever the backend: the first failure is deferred
    to {!close_and_wait}, so [jobs = 1] and [jobs > 1] behave identically. *)

val close_and_wait : t -> unit
(** Stop accepting jobs, run everything queued, join the workers. If any
    job raised, the first exception (in completion order) is re-raised
    here with its backtrace. Idempotent: only the first close joins and
    may re-raise (the failure is consumed under the pool lock); every
    later close is a no-op. *)

val queue_wait_s : t -> float
(** Cumulative seconds jobs spent queued before a worker picked them up
    (0 for inline pools, where jobs run during {!submit}). Each job's
    individual wait is also emitted as the [pool.queue_wait_s] trace
    counter, so scheduling wins are readable straight off a trace. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item on a fresh pool and
    returns results in input order regardless of completion order.
    Exceptions propagate as in {!close_and_wait}. *)

val map_lpt :
  jobs:int -> weight:('a -> float) -> ('a -> 'b) -> 'a list -> 'b list
(** {!map}, but items are fed to the pool heaviest-[weight]-first (LPT
    list scheduling), so predicted-long items start early instead of
    straggling at the tail of the queue. Ties keep arrival order — a
    constant weight makes this exactly {!map}. Results still come back
    in input order; with order-independent jobs (the campaign matrix's
    per-cell seeding) the output is byte-identical to {!map}'s, only the
    makespan changes. *)

val default_jobs : unit -> int
(** What the hardware suggests: [Domain.recommended_domain_count ()]. *)

val jobs_of_env : ?var:string -> unit -> int
(** Read the worker count from the environment ([AVIS_JOBS] by default).
    Unset means {!default_jobs}; a malformed or non-positive value warns
    on stderr and falls back to {!default_jobs}. *)
