(** Explicit binary codecs for snapshot persistence.

    A [Buffer.t]-backed writer and a cursor [reader] over one wire
    format: little-endian 64-bit integers, floats by their
    [Int64.bits_of_float] pattern (round-trips are bit-exact), counted
    sequences, tagged options, and per-layer version bytes. Any
    malformed input — truncation, bad tag, impossible length — raises
    {!Corrupt}; callers that read untrusted bytes (the on-disk
    checkpoint store) catch it and treat the entry as a miss. [Marshal]
    is deliberately not used anywhere: layouts stay versioned and
    explicit. *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Corrupt} with a formatted message. *)

type reader

val reader : string -> reader
val remaining : reader -> int
val finished : reader -> bool

val w_u8 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int64 -> unit
val w_int : Buffer.t -> int -> unit
val w_f64 : Buffer.t -> float -> unit
val w_bool : Buffer.t -> bool -> unit
val w_string : Buffer.t -> string -> unit
val w_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val w_array : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
val w_float_array : Buffer.t -> float array -> unit

val w_version : Buffer.t -> int -> unit
(** Write a one-byte layout version. *)

val r_u8 : reader -> int
val r_i64 : reader -> int64
val r_int : reader -> int
val r_f64 : reader -> float
val r_bool : reader -> bool
val r_string : reader -> string
val r_option : reader -> (reader -> 'a) -> 'a option
val r_list : reader -> (reader -> 'a) -> 'a list
val r_array : reader -> (reader -> 'a) -> 'a array
val r_float_array : reader -> float array

val r_version : reader -> expect:int -> int
(** Read a layout version byte; {!Corrupt} unless it equals [expect]. *)

val w_bytes : Buffer.t -> string -> unit
(** Length-prefixed blob, for nesting one layer's [to_bytes] output
    inside another payload. *)

val r_bytes : reader -> string

val to_string : (Buffer.t -> 'a -> unit) -> 'a -> string
(** Run a writer into a fresh buffer and return its contents. *)

val of_string : (reader -> 'a) -> string -> 'a
(** Run a reader over a whole string; {!Corrupt} on trailing bytes. *)
