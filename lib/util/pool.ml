type shared = {
  queue : (unit -> unit) Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable wait_total_s : float;
      (** Cumulative seconds jobs sat queued before a worker picked them
          up — the scheduler-health number: a busy pool with near-zero
          queue wait is saturated by work, not by dispatch. *)
}

type t =
  | Inline of {
      mutable closed : bool;
      mutable failure : (exn * Printexc.raw_backtrace) option;
    }
  | Crew of { shared : shared; workers : unit Domain.t list; njobs : int }

let record_wait shared wait_s =
  Mutex.lock shared.mutex;
  shared.wait_total_s <- shared.wait_total_s +. wait_s;
  Mutex.unlock shared.mutex;
  Trace.counter "pool.queue_wait_s" wait_s

let run_job shared job =
  try Trace.span ~cat:"pool" "pool.job" job
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Mutex.lock shared.mutex;
    if shared.failure = None then shared.failure <- Some (e, bt);
    Mutex.unlock shared.mutex

let worker shared () =
  let rec loop () =
    Mutex.lock shared.mutex;
    while Queue.is_empty shared.queue && not shared.closed do
      Condition.wait shared.not_empty shared.mutex
    done;
    match Queue.take_opt shared.queue with
    | None ->
      (* Closed and drained. *)
      Mutex.unlock shared.mutex
    | Some job ->
      Condition.signal shared.not_full;
      Mutex.unlock shared.mutex;
      run_job shared job;
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs <= 1 then Inline { closed = false; failure = None }
  else begin
    let shared =
      {
        queue = Queue.create ();
        capacity = 2 * jobs;
        mutex = Mutex.create ();
        not_empty = Condition.create ();
        not_full = Condition.create ();
        closed = false;
        failure = None;
        wait_total_s = 0.0;
      }
    in
    let workers = List.init jobs (fun _ -> Domain.spawn (worker shared)) in
    Crew { shared; workers; njobs = jobs }
  end

let jobs = function Inline _ -> 1 | Crew { njobs; _ } -> njobs

let queue_wait_s = function
  | Inline _ -> 0.0
  | Crew { shared; _ } ->
    Mutex.lock shared.mutex;
    let w = shared.wait_total_s in
    Mutex.unlock shared.mutex;
    w

let submit t job =
  match t with
  | Inline i ->
    if i.closed then invalid_arg "Pool.submit: pool is closed";
    (* An inline job runs during submit: its queue wait is zero by
       construction. Emitted anyway so jobs=1 traces carry the counter. *)
    Trace.counter "pool.queue_wait_s" 0.0;
    (* Capture instead of raising here: [jobs = 1] must behave like
       [jobs > 1], where a failure only surfaces at [close_and_wait]. *)
    (try Trace.span ~cat:"pool" "pool.job" job
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       if i.failure = None then i.failure <- Some (e, bt))
  | Crew { shared; _ } ->
    Mutex.lock shared.mutex;
    if shared.closed then begin
      Mutex.unlock shared.mutex;
      invalid_arg "Pool.submit: pool is closed"
    end;
    while Queue.length shared.queue >= shared.capacity && not shared.closed do
      Condition.wait shared.not_full shared.mutex
    done;
    (* The pool may have been closed while we were blocked on [not_full]:
       enqueueing now could land the job after the workers have drained the
       queue and exited, silently dropping it (and starving [Pool.map] of a
       result). Refuse, exactly as if the submit had arrived late. *)
    if shared.closed then begin
      Mutex.unlock shared.mutex;
      invalid_arg "Pool.submit: pool is closed"
    end;
    let enqueued_at = Metrics.now_s () in
    Queue.push
      (fun () ->
        record_wait shared (Metrics.now_s () -. enqueued_at);
        job ())
      shared.queue;
    Trace.counter "pool.queue_depth" (float_of_int (Queue.length shared.queue));
    Condition.signal shared.not_empty;
    Mutex.unlock shared.mutex

let close_and_wait t =
  match t with
  | Inline i ->
    i.closed <- true;
    let failure = i.failure in
    i.failure <- None;
    (match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ())
  | Crew { shared; workers; _ } ->
    Mutex.lock shared.mutex;
    let first = not shared.closed in
    shared.closed <- true;
    Condition.broadcast shared.not_empty;
    Condition.broadcast shared.not_full;
    Mutex.unlock shared.mutex;
    (* Only the close that flipped [closed] joins the workers and may
       re-raise; every later close is a no-op. The failure is consumed
       under the mutex and only after the join, so a concurrent second
       close can neither steal it nor observe a half-written one. *)
    if first then begin
      List.iter Domain.join workers;
      Mutex.lock shared.mutex;
      let failure = shared.failure in
      shared.failure <- None;
      Mutex.unlock shared.mutex;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map ~jobs f items =
  match items with
  | [] -> []
  | items ->
    let arr = Array.of_list items in
    let n = Array.length arr in
    let results = Array.make n None in
    let pool = create ~jobs:(min jobs n) in
    Array.iteri
      (fun i item -> submit pool (fun () -> results.(i) <- Some (f item)))
      arr;
    close_and_wait pool;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None ->
           (* Only reachable when a sibling job raised first. *)
           failwith "Pool.map: job did not complete")

(* LPT (longest-processing-time-first) list scheduling: feed the heaviest
   work to the pool first so a long item starts on a fresh worker instead
   of landing last on a drained queue and straggling alone. Results come
   back in input order, so callers are order-blind to the reordering. *)
let map_lpt ~jobs ~weight f items =
  match items with
  | [] -> []
  | items ->
    let arr = Array.of_list items in
    let n = Array.length arr in
    let w = Array.map weight arr in
    let order = Array.init n (fun i -> i) in
    (* Heaviest first; ties keep arrival order, so a weight function that
       knows nothing (all equal) degrades to plain [map]. *)
    Array.sort
      (fun a b -> match compare w.(b) w.(a) with 0 -> compare a b | c -> c)
      order;
    let results = Array.make n None in
    let pool = create ~jobs:(min jobs n) in
    Array.iter
      (fun i -> submit pool (fun () -> results.(i) <- Some (f arr.(i))))
      order;
    close_and_wait pool;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> failwith "Pool.map_lpt: job did not complete")

let default_jobs () = Domain.recommended_domain_count ()

let jobs_of_env ?(var = "AVIS_JOBS") () =
  Env.positive_int ~var ~default:(default_jobs ()) ()
