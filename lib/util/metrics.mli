(** Structured campaign progress lines and the end-of-run summary.

    A 16-way parallel campaign matrix interleaves the output of every
    cell, so progress is reported as single-line [key=value] records on
    stderr that are emitted atomically (one [output_string] under a
    global mutex) and are grep-able by cell label:

    {v [avis] event=progress cell=Avis/apm/auto-box sims=41 infs=0 spent_s=612.0 budget_s=7200.0 findings=3 wall_s=0.8 minor_mw=12.50 majors=2 store_h=0 store_m=0 store_b=0 v} *)

type snapshot = {
  cell : string;
      (** [approach/policy/workload]. Reserved bytes (space, ['='], ['%'],
          control characters) are percent-escaped by {!line}. *)
  simulations : int;
  inferences : int;
  spent_s : float;  (** Modelled wall-clock charged to the budget. *)
  budget_s : float;
  findings : int;
  wall_s : float;  (** Real (monotonic) seconds since the cell started. *)
  minor_words : float;
      (** Minor-heap words allocated by the cell so far (rendered in
          megawords as [minor_mw]). *)
  major_collections : int;  (** Major GC cycles during the cell. *)
  store_hits : int;
      (** Restores served from the persistent checkpoint store; 0 when no
          store is configured. *)
  store_misses : int;  (** Store consultations that ran cold instead. *)
  store_bytes : int;  (** Bytes on disk under the store directory. *)
}

val now_s : unit -> float
(** Monotonic clock reading in seconds. Only differences are meaningful;
    immune to wall-clock steps (NTP, DST) unlike [Unix.gettimeofday]. *)

val line : ?tags:(string * string) list -> event:string -> snapshot -> string
(** Render one record (no trailing newline). [tags] are appended as extra
    [key=value] pairs — the hunt daemon tags every streamed record with
    the owning request id ([req=...]). Values (the cell label, the event
    and every tag) are percent-escaped so that a space, ['='], ['%'] or
    control byte in a label cannot corrupt the [key=value] framing;
    {!parse_line} reverses the escaping. *)

val parse_line :
  string ->
  (string * snapshot * (string * string) list, string) result
(** Parse a {!line}-rendered record back into [(event, snapshot, tags)] —
    the inverse the daemon's clients use to read the stream. Strict: the
    ["[avis]"] prefix and every snapshot field must be present and
    well-formed. Labels and tag values round-trip exactly; numeric fields
    round-trip through their fixed-point rendering, so
    [line ~tags ~event snapshot] of a parsed line reproduces the input
    byte for byte. *)

val emit :
  ?oc:out_channel -> ?tags:(string * string) list -> event:string ->
  snapshot -> unit
(** Write [line] atomically to [oc] (default stderr) and flush. Safe to
    call concurrently from worker domains. *)

val total : snapshot list -> snapshot
(** The summary's TOTAL row: sums simulations, inferences, spend, budget,
    findings and GC work, but takes the {e max} of [wall_s] — concurrent
    cells' elapsed times overlap rather than add, while their allocation
    and collections are real per-domain work and do add. *)

val summary_table : snapshot list -> Table.t
(** The per-cell table, with a separator and {!total} row appended when
    there are at least two snapshots. *)

val summary : ?oc:out_channel -> snapshot list -> unit
(** Print {!summary_table} atomically (default stderr). *)
