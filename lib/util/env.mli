(** Uniform environment-variable parsing with warn-and-fall-back.

    Every [AVIS_*] knob used to hand-roll its own parser, and they drifted:
    some warned on a malformed value, some silently accepted garbage
    ([AVIS_TRACE=tru] used to mean {e on}), and the wording differed. These
    helpers give them one behaviour — an unset variable is the default, a
    well-formed value wins, and anything else (malformed, zero, negative,
    unrecognised) warns once on stderr and falls back to the default. A
    typo must never silently disable, unbound or serialise anything. *)

val positive_int : ?default_label:string -> var:string -> default:int -> unit -> int
(** Parse [var] as a strictly positive integer. [default_label] names the
    fallback in the warning when the default is computed (e.g. ["the
    hardware's recommendation"]); it defaults to the rendered value. *)

val positive_float :
  ?default_label:string -> var:string -> default:float -> unit -> float
(** Parse [var] as a strictly positive float (seconds, typically). *)

val flag : ?default:bool -> var:string -> unit -> bool
(** Parse [var] as a boolean: ["1"/"true"/"on"/"yes"] are true,
    ["0"/"false"/"off"/"no"] are false (case-insensitive, trimmed).
    Anything else warns and falls back to [default] (itself false by
    default). *)
