type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let to_bits t = t.state

let of_bits state = { state }

(* splitmix64 core: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let uniform t =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let gaussian t =
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 0.0 then draw () else u1
  in
  let u1 = draw () in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~stddev = mean +. (stddev *. gaussian t)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
