type event =
  | Span of { name : string; cat : string; ts : int64; dur : int64 }
  | Count of { name : string; ts : int64; value : float }
  | Instant of { name : string; cat : string; ts : int64 }

(* One buffer per recording domain: events are prepended to a private list,
   so recording never takes a lock and parallel campaign cells never
   contend. The registry only grows (a domain's buffer outlives it, so its
   events survive into the export). *)
type buffer = { tid : int; mutable events : event list; mutable n : int }

let registry : buffer list ref = ref []
let registry_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); events = []; n = 0 } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0L

let now () = Monotonic_clock.now ()

let set_enabled on =
  if on && not (Atomic.get enabled_flag) then Atomic.set epoch (now ());
  Atomic.set enabled_flag on

let enabled () = Atomic.get enabled_flag

let enabled_by_env ?(var = "AVIS_TRACE") () = Env.flag ~var ()

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      b.events <- [];
      b.n <- 0)
    !registry;
  Mutex.unlock registry_mutex;
  Atomic.set epoch (now ())

let record ev =
  let b = Domain.DLS.get buffer_key in
  b.events <- ev :: b.events;
  b.n <- b.n + 1

let span ?(cat = "avis") name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now () in
    match f () with
    | v ->
      record (Span { name; cat; ts = t0; dur = Int64.sub (now ()) t0 });
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      record (Span { name; cat; ts = t0; dur = Int64.sub (now ()) t0 });
      Printexc.raise_with_backtrace e bt
  end

(* [No_span] is an immediate: a disabled [begin_span] allocates nothing. *)
type started = No_span | Started of { name : string; cat : string; ts : int64 }

let begin_span ?(cat = "avis") name =
  if not (Atomic.get enabled_flag) then No_span
  else Started { name; cat; ts = now () }

let end_span = function
  | No_span -> ()
  | Started { name; cat; ts } ->
    record (Span { name; cat; ts; dur = Int64.sub (now ()) ts })

let counter name value =
  if Atomic.get enabled_flag then record (Count { name; ts = now (); value })

let instant ?(cat = "avis") name =
  if Atomic.get enabled_flag then record (Instant { name; cat; ts = now () })

let all_events () =
  Mutex.lock registry_mutex;
  let buffers = !registry in
  Mutex.unlock registry_mutex;
  List.concat_map (fun b -> List.map (fun e -> (b.tid, e)) b.events) buffers

let event_count () =
  Mutex.lock registry_mutex;
  let n = List.fold_left (fun acc b -> acc + b.n) 0 !registry in
  Mutex.unlock registry_mutex;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace format (https://ui.perfetto.dev, chrome://tracing)     *)
(* ------------------------------------------------------------------ *)

let event_ts = function
  | Span { ts; _ } | Count { ts; _ } | Instant { ts; _ } -> ts

(* Timestamps are microseconds relative to the epoch; durations likewise. *)
let us_of ts = Int64.to_float (Int64.sub ts (Atomic.get epoch)) /. 1e3

let chrome_event tid ev =
  let base name cat ph ts =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ph", Json.String ph);
      ("ts", Json.Number (us_of ts));
      ("pid", Json.int 0);
      ("tid", Json.int tid);
    ]
  in
  match ev with
  | Span { name; cat; ts; dur } ->
    Json.Assoc
      (base name cat "X" ts @ [ ("dur", Json.Number (Int64.to_float dur /. 1e3)) ])
  | Count { name; ts; value } ->
    Json.Assoc
      (base name "counter" "C" ts
      @ [ ("args", Json.Assoc [ ("value", Json.Number value) ]) ])
  | Instant { name; cat; ts } ->
    Json.Assoc (base name cat "i" ts @ [ ("s", Json.String "t") ])

let to_chrome_json () =
  let events = all_events () in
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> Int64.compare (event_ts a) (event_ts b)) events
  in
  let tids = List.sort_uniq compare (List.map fst sorted) in
  let thread_names =
    List.map
      (fun tid ->
        Json.Assoc
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.int 0);
            ("tid", Json.int tid);
            ( "args",
              Json.Assoc
                [ ("name", Json.String (Printf.sprintf "domain-%d" tid)) ] );
          ])
      tids
  in
  Json.Assoc
    [
      ("displayTimeUnit", Json.String "ms");
      ( "traceEvents",
        Json.List (thread_names @ List.map (fun (tid, e) -> chrome_event tid e) sorted) );
    ]

let write_chrome ~path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string_pretty (to_chrome_json ()));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Plain-text per-span summary                                         *)
(* ------------------------------------------------------------------ *)

type summary_row = {
  span_name : string;
  count : int;
  total_s : float;
  min_s : float;
  max_s : float;
}

(* Spans flattened to (name, begin, duration) tuples — the inline record
   payload cannot escape its constructor. *)
let spans () =
  List.filter_map
    (function
      | _, Span { name; ts; dur; _ } -> Some (name, ts, dur)
      | _, (Count _ | Instant _) -> None)
    (all_events ())

let summary () =
  let agg = Hashtbl.create 32 in
  List.iter
    (fun (name, _, dur) ->
      let d = Int64.to_float dur /. 1e9 in
      let row =
        match Hashtbl.find_opt agg name with
        | Some r -> r
        | None ->
          { span_name = name; count = 0; total_s = 0.0; min_s = infinity;
            max_s = 0.0 }
      in
      Hashtbl.replace agg name
        {
          row with
          count = row.count + 1;
          total_s = row.total_s +. d;
          min_s = Float.min row.min_s d;
          max_s = Float.max row.max_s d;
        })
    (spans ());
  Hashtbl.fold (fun _ r acc -> r :: acc) agg []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let wall_s () =
  match spans () with
  | [] -> 0.0
  | ss ->
    let lo =
      List.fold_left (fun acc (_, ts, _) -> Int64.min acc ts) Int64.max_int ss
    in
    let hi =
      List.fold_left
        (fun acc (_, ts, dur) -> Int64.max acc (Int64.add ts dur))
        Int64.min_int ss
    in
    Int64.to_float (Int64.sub hi lo) /. 1e9

let summary_table () =
  let wall = wall_s () in
  let t =
    Table.create
      ~header:
        [ "span"; "count"; "total (ms)"; "mean (ms)"; "min (ms)"; "max (ms)";
          "% of wall" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.span_name;
          string_of_int r.count;
          Printf.sprintf "%.2f" (r.total_s *. 1e3);
          Printf.sprintf "%.3f" (r.total_s *. 1e3 /. float_of_int r.count);
          Printf.sprintf "%.3f" (r.min_s *. 1e3);
          Printf.sprintf "%.3f" (r.max_s *. 1e3);
          Printf.sprintf "%.1f%%" (100.0 *. r.total_s /. Float.max 1e-9 wall);
        ])
    (summary ());
  t

let print_summary ?(oc = stderr) () =
  output_string oc (Table.render (summary_table ()));
  output_char oc '\n';
  flush oc
