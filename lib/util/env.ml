let warn ~var ~value ~want ~using =
  Printf.eprintf
    "[avis] warning: ignoring invalid %s=%S (want %s); using %s\n%!" var value
    want using

let parse_with ~of_string ~valid ?default_label ~var ~default ~want ~render ()
    =
  match Sys.getenv_opt var with
  | None -> default
  | Some v -> (
    match of_string (String.trim v) with
    | Some x when valid x -> x
    | Some _ | None ->
      let using =
        match default_label with Some l -> l | None -> render default
      in
      warn ~var ~value:v ~want ~using;
      default)

let positive_int ?default_label ~var ~default () =
  parse_with ~of_string:int_of_string_opt
    ~valid:(fun n -> n >= 1)
    ?default_label ~var ~default ~want:"a positive integer"
    ~render:string_of_int ()

let positive_float ?default_label ~var ~default () =
  parse_with ~of_string:float_of_string_opt
    ~valid:(fun f -> f > 0.0)
    ?default_label ~var ~default ~want:"a positive number"
    ~render:(Printf.sprintf "%g") ()

let bool_of_string v =
  match String.lowercase_ascii v with
  | "1" | "true" | "on" | "yes" -> Some true
  | "0" | "false" | "off" | "no" -> Some false
  | _ -> None

let flag ?(default = false) ~var () =
  parse_with ~of_string:bool_of_string
    ~valid:(fun _ -> true)
    ~var ~default ~want:"1|true|on|yes or 0|false|off|no"
    ~render:string_of_bool ()
