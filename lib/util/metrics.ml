type snapshot = {
  cell : string;
  simulations : int;
  inferences : int;
  spent_s : float;
  budget_s : float;
  findings : int;
  wall_s : float;
  minor_words : float;
  major_collections : int;
  store_hits : int;
  store_misses : int;
  store_bytes : int;
}

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* The stream is parsed back by clients (the hunt daemon's submit/watch
   commands split on spaces and '='), so a value may not contain either
   raw. Cell labels are normally "approach/policy/workload", but the
   daemon serves labels derived from client requests — an unescaped space
   or '=' there would corrupt every consumer's view of the whole line,
   not just the one field. Percent-encode exactly the bytes the framing
   reserves: '%', '=', space and control characters (newlines would end
   the record early). Tag values (request ids) get the same treatment. *)
let needs_escape c = c = '%' || c = '=' || c = ' ' || Char.code c < 0x20

let escape_value s =
  if String.for_all (fun c -> not (needs_escape c)) s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape_value s =
  match String.index_opt s '%' with
  | None -> Ok s
  | Some _ ->
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else if s.[i] = '%' then
        if i + 2 < n then
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code when code >= 0 && code < 256 ->
            Buffer.add_char b (Char.chr code);
            go (i + 3)
          | Some _ | None -> Error (Printf.sprintf "bad %%-escape in %S" s)
        else Error (Printf.sprintf "truncated %%-escape in %S" s)
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
    in
    go 0

let prefix = "[avis]"

let line ?(tags = []) ~event s =
  let base =
    Printf.sprintf
      "%s event=%s cell=%s sims=%d infs=%d spent_s=%.1f budget_s=%.1f findings=%d wall_s=%.1f minor_mw=%.2f majors=%d store_h=%d store_m=%d store_b=%d"
      prefix
      (escape_value event)
      (escape_value s.cell)
      s.simulations s.inferences s.spent_s s.budget_s s.findings s.wall_s
      (s.minor_words /. 1e6)
      s.major_collections s.store_hits s.store_misses s.store_bytes
  in
  List.fold_left
    (fun acc (k, v) ->
      acc ^ Printf.sprintf " %s=%s" (escape_value k) (escape_value v))
    base tags

(* The inverse of [line], strict enough that a daemon client can trust the
   stream: the "[avis]" prefix, every snapshot field present with its
   value parseable, and any remaining key=value pairs returned as tags in
   order. Numeric fields round-trip through their rendering (%.1f / %.2f),
   so [line] of a parsed snapshot reproduces the input line byte for byte;
   the cell label and tag values round-trip exactly, whatever bytes they
   contain. *)
let parse_line text =
  let ( let* ) = Result.bind in
  let* body =
    let p = prefix ^ " " in
    let pl = String.length p in
    if String.length text > pl && String.sub text 0 pl = p then
      Ok (String.sub text pl (String.length text - pl))
    else Error (Printf.sprintf "missing %S prefix" prefix)
  in
  let* pairs =
    List.fold_left
      (fun acc token ->
        let* acc = acc in
        if token = "" then Ok acc (* tolerate doubled spaces *)
        else
          match String.index_opt token '=' with
          | None -> Error (Printf.sprintf "token %S is not key=value" token)
          | Some i ->
            let k = String.sub token 0 i in
            let raw = String.sub token (i + 1) (String.length token - i - 1) in
            let* v = unescape_value raw in
            Ok ((k, v) :: acc))
      (Ok [])
      (String.split_on_char ' ' body)
  in
  let pairs = List.rev pairs in
  let field name =
    match List.assoc_opt name pairs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int_field name =
    let* v = field name in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %s=%S is not an integer" name v)
  in
  let float_field name =
    let* v = field name in
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "field %s=%S is not a number" name v)
  in
  let* event = field "event" in
  let* cell = field "cell" in
  let* simulations = int_field "sims" in
  let* inferences = int_field "infs" in
  let* spent_s = float_field "spent_s" in
  let* budget_s = float_field "budget_s" in
  let* findings = int_field "findings" in
  let* wall_s = float_field "wall_s" in
  let* minor_mw = float_field "minor_mw" in
  let* major_collections = int_field "majors" in
  let* store_hits = int_field "store_h" in
  let* store_misses = int_field "store_m" in
  let* store_bytes = int_field "store_b" in
  let known =
    [ "event"; "cell"; "sims"; "infs"; "spent_s"; "budget_s"; "findings";
      "wall_s"; "minor_mw"; "majors"; "store_h"; "store_m"; "store_b" ]
  in
  let tags = List.filter (fun (k, _) -> not (List.mem k known)) pairs in
  Ok
    ( event,
      {
        cell; simulations; inferences; spent_s; budget_s; findings; wall_s;
        minor_words = minor_mw *. 1e6; major_collections; store_hits;
        store_misses; store_bytes;
      },
      tags )

(* One mutex for every channel: emission is rare (campaign granularity),
   and a single lock keeps interleaved stderr/file output ordered too. *)
let emit_mutex = Mutex.create ()

let emit ?(oc = stderr) ?tags ~event s =
  let text = line ?tags ~event s ^ "\n" in
  Mutex.lock emit_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_mutex)
    (fun () ->
      output_string oc text;
      flush oc)

(* The TOTAL row sums the additive columns (simulations, inferences,
   modelled spend, budget, findings, GC work) but takes the max of
   [wall_s]: cells run concurrently, so their real elapsed times overlap
   rather than add. Allocation and collections are per-domain work and do
   add. *)
let total snapshots =
  List.fold_left
    (fun acc s ->
      {
        acc with
        simulations = acc.simulations + s.simulations;
        inferences = acc.inferences + s.inferences;
        spent_s = acc.spent_s +. s.spent_s;
        budget_s = acc.budget_s +. s.budget_s;
        findings = acc.findings + s.findings;
        wall_s = Float.max acc.wall_s s.wall_s;
        minor_words = acc.minor_words +. s.minor_words;
        major_collections = acc.major_collections + s.major_collections;
        store_hits = acc.store_hits + s.store_hits;
        store_misses = acc.store_misses + s.store_misses;
        (* Cells sharing one store directory would double-count its size;
           the max is the honest aggregate either way. *)
        store_bytes = max acc.store_bytes s.store_bytes;
      })
    {
      cell = "TOTAL (wall = max)"; simulations = 0; inferences = 0;
      spent_s = 0.0; budget_s = 0.0; findings = 0; wall_s = 0.0;
      minor_words = 0.0; major_collections = 0; store_hits = 0;
      store_misses = 0; store_bytes = 0;
    }
    snapshots

let summary_table snapshots =
  let t =
    Table.create
      ~header:
        [ "cell"; "sims"; "infs"; "spent (s)"; "budget (s)"; "findings";
          "wall (s)"; "minor (Mw)"; "majors"; "store hits"; "store miss";
          "store (MB)" ]
  in
  let row s =
    [
      s.cell; string_of_int s.simulations; string_of_int s.inferences;
      Printf.sprintf "%.1f" s.spent_s; Printf.sprintf "%.0f" s.budget_s;
      string_of_int s.findings; Printf.sprintf "%.1f" s.wall_s;
      Printf.sprintf "%.2f" (s.minor_words /. 1e6);
      string_of_int s.major_collections;
      string_of_int s.store_hits; string_of_int s.store_misses;
      Printf.sprintf "%.1f" (float_of_int s.store_bytes /. 1e6);
    ]
  in
  List.iter (fun s -> Table.add_row t (row s)) snapshots;
  (match snapshots with
  | [] | [ _ ] -> ()
  | _ ->
    Table.add_separator t;
    Table.add_row t (row (total snapshots)));
  t

let summary ?(oc = stderr) snapshots =
  let t = summary_table snapshots in
  Mutex.lock emit_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_mutex)
    (fun () ->
      output_string oc (Table.render t);
      output_char oc '\n';
      flush oc)
