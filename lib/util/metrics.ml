type snapshot = {
  cell : string;
  simulations : int;
  inferences : int;
  spent_s : float;
  budget_s : float;
  findings : int;
  wall_s : float;
  minor_words : float;
  major_collections : int;
  store_hits : int;
  store_misses : int;
  store_bytes : int;
}

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let line ~event s =
  Printf.sprintf
    "[avis] event=%s cell=%s sims=%d infs=%d spent_s=%.1f budget_s=%.1f findings=%d wall_s=%.1f minor_mw=%.2f majors=%d store_h=%d store_m=%d store_b=%d"
    event s.cell s.simulations s.inferences s.spent_s s.budget_s s.findings
    s.wall_s (s.minor_words /. 1e6) s.major_collections s.store_hits
    s.store_misses s.store_bytes

(* One mutex for every channel: emission is rare (campaign granularity),
   and a single lock keeps interleaved stderr/file output ordered too. *)
let emit_mutex = Mutex.create ()

let emit ?(oc = stderr) ~event s =
  let text = line ~event s ^ "\n" in
  Mutex.lock emit_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_mutex)
    (fun () ->
      output_string oc text;
      flush oc)

(* The TOTAL row sums the additive columns (simulations, inferences,
   modelled spend, budget, findings, GC work) but takes the max of
   [wall_s]: cells run concurrently, so their real elapsed times overlap
   rather than add. Allocation and collections are per-domain work and do
   add. *)
let total snapshots =
  List.fold_left
    (fun acc s ->
      {
        acc with
        simulations = acc.simulations + s.simulations;
        inferences = acc.inferences + s.inferences;
        spent_s = acc.spent_s +. s.spent_s;
        budget_s = acc.budget_s +. s.budget_s;
        findings = acc.findings + s.findings;
        wall_s = Float.max acc.wall_s s.wall_s;
        minor_words = acc.minor_words +. s.minor_words;
        major_collections = acc.major_collections + s.major_collections;
        store_hits = acc.store_hits + s.store_hits;
        store_misses = acc.store_misses + s.store_misses;
        (* Cells sharing one store directory would double-count its size;
           the max is the honest aggregate either way. *)
        store_bytes = max acc.store_bytes s.store_bytes;
      })
    {
      cell = "TOTAL (wall = max)"; simulations = 0; inferences = 0;
      spent_s = 0.0; budget_s = 0.0; findings = 0; wall_s = 0.0;
      minor_words = 0.0; major_collections = 0; store_hits = 0;
      store_misses = 0; store_bytes = 0;
    }
    snapshots

let summary_table snapshots =
  let t =
    Table.create
      ~header:
        [ "cell"; "sims"; "infs"; "spent (s)"; "budget (s)"; "findings";
          "wall (s)"; "minor (Mw)"; "majors"; "store hits"; "store miss";
          "store (MB)" ]
  in
  let row s =
    [
      s.cell; string_of_int s.simulations; string_of_int s.inferences;
      Printf.sprintf "%.1f" s.spent_s; Printf.sprintf "%.0f" s.budget_s;
      string_of_int s.findings; Printf.sprintf "%.1f" s.wall_s;
      Printf.sprintf "%.2f" (s.minor_words /. 1e6);
      string_of_int s.major_collections;
      string_of_int s.store_hits; string_of_int s.store_misses;
      Printf.sprintf "%.1f" (float_of_int s.store_bytes /. 1e6);
    ]
  in
  List.iter (fun s -> Table.add_row t (row s)) snapshots;
  (match snapshots with
  | [] | [ _ ] -> ()
  | _ ->
    Table.add_separator t;
    Table.add_row t (row (total snapshots)));
  t

let summary ?(oc = stderr) snapshots =
  let t = summary_table snapshots in
  Mutex.lock emit_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_mutex)
    (fun () ->
      output_string oc (Table.render t);
      output_char oc '\n';
      flush oc)
