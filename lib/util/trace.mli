(** Low-overhead structured span and counter tracing.

    A campaign's cost story (where do the seconds of a cell go: simulation
    steps, cache serves, search decisions, pool scheduling?) is recorded as
    begin/end spans and counter samples with monotonic timestamps. Recording
    is compiled in everywhere and costs one atomic load plus a branch when
    tracing is disabled — no allocation per span, verified by a test — so
    the hot paths carry their instrumentation permanently.

    Every domain records into its own buffer (via [Domain.DLS]), so parallel
    campaign cells never contend on a lock; the exporters aggregate all
    buffers. Export either as Chrome trace format JSON (open in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) or as a
    plain-text per-span summary table. *)

val set_enabled : bool -> unit
(** Turn recording on or off globally (all domains see the flag). Enabling
    (re)anchors the trace epoch at "now"; events already recorded keep
    their timestamps. *)

val enabled : unit -> bool

val enabled_by_env : ?var:string -> unit -> bool
(** Whether the environment asks for tracing ([AVIS_TRACE] by default;
    truthy unless ["0"|"false"|"off"|"no"]). Unset means disabled. The
    caller decides what to do with the answer — typically
    [set_enabled (enabled_by_env ())]. *)

val reset : unit -> unit
(** Drop every recorded event in every domain's buffer and re-anchor the
    epoch. The enabled flag is unchanged. *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is enabled, the call is
    recorded as a complete span (begin timestamp + duration) named [name]
    in category [cat] (default ["avis"]). If [f] raises, the span is still
    recorded before the exception is re-raised with its backtrace. When
    disabled this is just [f ()]. *)

type started
(** An open span from {!begin_span}, to be closed with {!end_span}. *)

val begin_span : ?cat:string -> string -> started
(** For call sites where wrapping a closure is awkward. When tracing is
    disabled the returned token is an immediate (no allocation). *)

val end_span : started -> unit
(** Record the span opened by {!begin_span}. No-op on a disabled token. *)

val counter : string -> float -> unit
(** Record one sample of a named counter (cache hits, pool queue depth,
    budget spend, ...). Samples render as a stepped counter track in the
    Chrome trace viewer. *)

val instant : ?cat:string -> string -> unit
(** Record a zero-duration marker (e.g. a finding). *)

val event_count : unit -> int
(** Events currently buffered across all domains. *)

(** {2 Exporters} *)

val to_chrome_json : unit -> Json.t
(** All buffered events as a Chrome trace format object:
    [{"displayTimeUnit": "ms", "traceEvents": [...]}] with spans as ["X"]
    (complete) events, counters as ["C"] events, instants as ["i"] events,
    timestamps in microseconds since the epoch, and one thread per
    recording domain. *)

val write_chrome : path:string -> unit
(** Write {!to_chrome_json} (pretty-printed) to [path]. *)

type summary_row = {
  span_name : string;
  count : int;
  total_s : float;
  min_s : float;
  max_s : float;
}

val summary : unit -> summary_row list
(** Spans aggregated by name, sorted by descending total time. Nested
    spans overlap their parents, so totals are per-name costs, not a
    partition of the wall clock. *)

val wall_s : unit -> float
(** The extent of the recorded trace: latest span end minus earliest span
    begin, in seconds (0 when no spans were recorded). *)

val summary_table : unit -> Table.t
(** {!summary} rendered as a table with count, total/mean/min/max
    milliseconds and each span's share of {!wall_s}. *)

val print_summary : ?oc:out_channel -> unit -> unit
(** Write {!summary_table} to [oc] (default stderr). *)
