(** A minimal JSON value, serialiser and parser.

    Findings, traces and flight logs are exported as JSON artefacts (the
    paper publishes the system logs behind each report); this is a
    dependency-free emitter plus a small strict parser, enough to
    round-trip and schema-check our own artefacts. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val int : int -> t
(** Convenience: integers are numbers. *)

val to_string : t -> string
(** Compact rendering with correct string escaping; non-finite numbers are
    rendered as [null] (JSON has no NaN/infinity). *)

val to_string_pretty : ?indent:int -> t -> string
(** Multi-line rendering (default 2-space indent). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (strict: no trailing commas or comments; the
    whole input must be consumed). [\uXXXX] escapes decode to UTF-8.
    Errors carry the byte offset of the failure. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Assoc], [None] otherwise
    (including on non-objects). *)
