(** Deterministic pseudo-random number generation.

    Every stochastic component in the reproduction (sensor noise, scheduler
    jitter, random fault injection) draws from an explicit [Rng.t] so that
    simulations are reproducible from a seed. The generator is splitmix64,
    which is small, fast and has well-understood statistical quality. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Two generators built from the same
    seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val to_bits : t -> int64
(** The raw splitmix64 state, for snapshot serialisation. *)

val of_bits : int64 -> t
(** Rebuild a generator from {!to_bits} output; the pair round-trips the
    exact stream position. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Use to give each subsystem its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian_scaled : t -> mean:float -> stddev:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on an empty array. *)
