type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let int i = Number (float_of_int i)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number f -> Buffer.add_string buf (number_to_string f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (String key);
        Buffer.add_char buf ':';
        write buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let rec write_pretty buf ~indent ~level = function
  | (Null | Bool _ | Number _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | Assoc [] -> Buffer.add_string buf "{}"
  | List items ->
    let pad n = String.make (n * indent) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write_pretty buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Assoc fields ->
    let pad n = String.make (n * indent) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write buf (String key);
        Buffer.add_string buf ": ";
        write_pretty buf ~indent ~level:(level + 1) value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 512 in
  write_pretty buf ~indent ~level:0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

(* A plain recursive-descent parser over the string; [pos] is the cursor.
   Strict enough for round-tripping our own artefacts: no trailing commas,
   no comments, numbers via [float_of_string]. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> -1
  in
  let hex4 () =
    if !pos + 4 > n then parse_error !pos "truncated \\u escape";
    (* Each of the four characters must itself be a hex digit — going
       through [int_of_string] would also accept OCaml numeric-literal
       syntax like underscores ("\u1_23") or a sign. *)
    let v = ref 0 in
    for i = 0 to 3 do
      let d = hex_digit s.[!pos + i] in
      if d < 0 then parse_error !pos "bad \\u escape";
      v := (!v lsl 4) lor d
    done;
    pos := !pos + 4;
    !v
  in
  let add_utf8 buf code =
    (* Encode the scalar value as UTF-8 bytes (surrogates are kept as the
       replacement-free raw value; our own emitter never produces them). *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then parse_error !pos "unterminated string";
      match s.[!pos] with
      | '"' ->
        advance ();
        Buffer.contents buf
      | '\\' ->
        advance ();
        (if !pos >= n then parse_error !pos "unterminated escape"
         else
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
             advance ();
             add_utf8 buf (hex4 ())
           | c -> parse_error !pos (Printf.sprintf "bad escape \\%C" c));
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Number f
    | None -> parse_error start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> parse_error !pos "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> parse_error !pos "expected ',' or '}'"
        in
        Assoc (fields [])
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "at offset %d: trailing input" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None
