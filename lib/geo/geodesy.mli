(** Conversion between geodetic coordinates and local metres.

    MAVLink-style messages carry latitude/longitude in degrees (scaled to
    1e7 integers on the wire) and altitude in metres. The simulator works in
    a local tangent plane anchored at the mission's home location. A
    spherical-earth small-area approximation is exact enough for missions a
    few hundred metres across, which is all the paper's workloads use. *)

type geodetic = { lat : float; lon : float; alt : float }
(** Latitude and longitude in degrees, altitude in metres above the home
    plane. *)

type frame
(** A local tangent plane anchored at a home location. *)

val earth_radius_m : float

val frame_at : geodetic -> frame
(** Local frame anchored at the given home point. *)

val home : frame -> geodetic

val encode_frame : Buffer.t -> frame -> unit
(** Versioned binary layout (origin plus the cached latitude cosine, so
    decoding never recomputes a transcendental). *)

val decode_frame : Avis_util.Codec.reader -> frame
(** Inverse of {!encode_frame}; raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val to_local : frame -> geodetic -> Vec3.t
(** Geodetic point to local metres (x north, y east, z up relative to the
    home altitude). *)

val of_local : frame -> Vec3.t -> geodetic
(** Inverse of [to_local]. *)

val lat_to_e7 : float -> int
val lon_to_e7 : float -> int
val e7_to_deg : int -> float
(** Wire scaling used by position messages (degrees times 1e7). *)

val ground_distance_m : geodetic -> geodetic -> float
(** Horizontal great-circle distance (small-angle approximation). *)
