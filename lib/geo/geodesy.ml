type geodetic = { lat : float; lon : float; alt : float }

type frame = { origin : geodetic; cos_lat : float }

let earth_radius_m = 6371000.0

let deg_to_rad d = d *. Float.pi /. 180.0
let rad_to_deg r = r *. 180.0 /. Float.pi

let frame_at origin = { origin; cos_lat = cos (deg_to_rad origin.lat) }

let home f = f.origin

(* The cached cosine is serialised rather than recomputed so a decoded
   frame is field-for-field bit-identical to the one snapshotted, whatever
   the libm. *)
let encode_frame b f =
  let open Avis_util.Codec in
  w_version b 1;
  w_f64 b f.origin.lat;
  w_f64 b f.origin.lon;
  w_f64 b f.origin.alt;
  w_f64 b f.cos_lat

let decode_frame r =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let lat = r_f64 r in
  let lon = r_f64 r in
  let alt = r_f64 r in
  let cos_lat = r_f64 r in
  { origin = { lat; lon; alt }; cos_lat }

let to_local f g =
  let dlat = deg_to_rad (g.lat -. f.origin.lat) in
  let dlon = deg_to_rad (g.lon -. f.origin.lon) in
  Vec3.make (dlat *. earth_radius_m)
    (dlon *. earth_radius_m *. f.cos_lat)
    (g.alt -. f.origin.alt)

let of_local f v =
  let open Vec3 in
  {
    lat = f.origin.lat +. rad_to_deg (v.x /. earth_radius_m);
    lon = f.origin.lon +. rad_to_deg (v.y /. (earth_radius_m *. f.cos_lat));
    alt = f.origin.alt +. v.z;
  }

let lat_to_e7 deg = int_of_float (Float.round (deg *. 1e7))
let lon_to_e7 = lat_to_e7
let e7_to_deg i = float_of_int i /. 1e7

let ground_distance_m a b =
  let f = frame_at a in
  let v = to_local f { b with alt = a.alt } in
  Vec3.norm (Vec3.horizontal v)
