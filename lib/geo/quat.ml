type t = { w : float; x : float; y : float; z : float }

let identity = { w = 1.0; x = 0.0; y = 0.0; z = 0.0 }

let make ~w ~x ~y ~z = { w; x; y; z }

let norm q = sqrt ((q.w *. q.w) +. (q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z))

let normalize q =
  let n = norm q in
  if n = 0.0 then identity
  else { w = q.w /. n; x = q.x /. n; y = q.y /. n; z = q.z /. n }

let of_axis_angle axis angle =
  let a = Vec3.normalize axis in
  let half = angle /. 2.0 in
  let s = sin half in
  normalize { w = cos half; x = s *. a.Vec3.x; y = s *. a.Vec3.y; z = s *. a.Vec3.z }

let of_euler ~roll ~pitch ~yaw =
  let cr = cos (roll /. 2.0) and sr = sin (roll /. 2.0) in
  let cp = cos (pitch /. 2.0) and sp = sin (pitch /. 2.0) in
  let cy = cos (yaw /. 2.0) and sy = sin (yaw /. 2.0) in
  {
    w = (cr *. cp *. cy) +. (sr *. sp *. sy);
    x = (sr *. cp *. cy) -. (cr *. sp *. sy);
    y = (cr *. sp *. cy) +. (sr *. cp *. sy);
    z = (cr *. cp *. sy) -. (sr *. sp *. cy);
  }

let to_euler q =
  let q = normalize q in
  let sinr = 2.0 *. ((q.w *. q.x) +. (q.y *. q.z)) in
  let cosr = 1.0 -. (2.0 *. ((q.x *. q.x) +. (q.y *. q.y))) in
  let roll = atan2 sinr cosr in
  let sinp = 2.0 *. ((q.w *. q.y) -. (q.z *. q.x)) in
  let pitch =
    if Float.abs sinp >= 1.0 then Float.copy_sign (Float.pi /. 2.0) sinp
    else asin sinp
  in
  let siny = 2.0 *. ((q.w *. q.z) +. (q.x *. q.y)) in
  let cosy = 1.0 -. (2.0 *. ((q.y *. q.y) +. (q.z *. q.z))) in
  let yaw = atan2 siny cosy in
  (roll, pitch, yaw)

let mul a b =
  {
    w = (a.w *. b.w) -. (a.x *. b.x) -. (a.y *. b.y) -. (a.z *. b.z);
    x = (a.w *. b.x) +. (a.x *. b.w) +. (a.y *. b.z) -. (a.z *. b.y);
    y = (a.w *. b.y) -. (a.x *. b.z) +. (a.y *. b.w) +. (a.z *. b.x);
    z = (a.w *. b.z) +. (a.x *. b.y) -. (a.y *. b.x) +. (a.z *. b.w);
  }

let conjugate q = { w = q.w; x = -.q.x; y = -.q.y; z = -.q.z }

let rotate q v =
  (* v' = q * (0, v) * q^-1, expanded without building quaternions. *)
  let u = Vec3.make q.x q.y q.z in
  let t = Vec3.scale 2.0 (Vec3.cross u v) in
  Vec3.add v (Vec3.add (Vec3.scale q.w t) (Vec3.cross u t))

let rotate_inv q v = rotate (conjugate q) v

let integrate q omega dt =
  let ox = omega.Vec3.x and oy = omega.Vec3.y and oz = omega.Vec3.z in
  let half_dt = dt /. 2.0 in
  (* dq = (dt/2) * q ⊗ (0, omega), with omega in the body frame. *)
  let dq =
    {
      w = 0.0 -. (half_dt *. ((ox *. q.x) +. (oy *. q.y) +. (oz *. q.z)));
      x = half_dt *. ((ox *. q.w) +. (oz *. q.y) -. (oy *. q.z));
      y = half_dt *. ((oy *. q.w) +. (ox *. q.z) -. (oz *. q.x));
      z = half_dt *. ((oz *. q.w) +. (oy *. q.x) -. (ox *. q.y));
    }
  in
  normalize { w = q.w +. dq.w; x = q.x +. dq.x; y = q.y +. dq.y; z = q.z +. dq.z }

let dot a b = (a.w *. b.w) +. (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let slerp a b s =
  let a = normalize a and b = normalize b in
  let d = dot a b in
  (* Take the shortest arc by flipping one endpoint when needed. *)
  let negate q = { w = -.q.w; x = -.q.x; y = -.q.y; z = -.q.z } in
  let b, d = if d < 0.0 then (negate b, -.d) else (b, d) in
  if d > 0.9995 then
    normalize
      {
        w = a.w +. (s *. (b.w -. a.w));
        x = a.x +. (s *. (b.x -. a.x));
        y = a.y +. (s *. (b.y -. a.y));
        z = a.z +. (s *. (b.z -. a.z));
      }
  else
    let theta = acos (Float.min 1.0 d) in
    let sin_theta = sin theta in
    let wa = sin ((1.0 -. s) *. theta) /. sin_theta in
    let wb = sin (s *. theta) /. sin_theta in
    normalize
      {
        w = (wa *. a.w) +. (wb *. b.w);
        x = (wa *. a.x) +. (wb *. b.x);
        y = (wa *. a.y) +. (wb *. b.y);
        z = (wa *. a.z) +. (wb *. b.z);
      }

let angle_between a b =
  let d = Float.abs (dot (normalize a) (normalize b)) in
  2.0 *. acos (Float.min 1.0 d)

let tilt q =
  let body_up = rotate q Vec3.unit_z in
  let c = Stdlib.max (-1.0) (Stdlib.min 1.0 (Vec3.dot body_up Vec3.unit_z)) in
  acos c

let pp ppf q = Format.fprintf ppf "(w=%.4f x=%.4f y=%.4f z=%.4f)" q.w q.x q.y q.z

(* In-place kernels over a mutable all-float quaternion. As with
   [Vec3.Mut], each operation reproduces the pure version's arithmetic
   expression for expression so results are bit-identical; the rotation
   kernels read the quaternion and vector into locals before storing, so a
   destination may alias the input vector. *)
module Mut = struct
  type quat = {
    mutable w : float;
    mutable x : float;
    mutable y : float;
    mutable z : float;
  }

  let create () = { w = 1.0; x = 0.0; y = 0.0; z = 0.0 }

  let[@inline] set q ~w ~x ~y ~z =
    q.w <- w;
    q.x <- x;
    q.y <- y;
    q.z <- z

  let[@inline] of_t (a : t) = { w = a.w; x = a.x; y = a.y; z = a.z }
  let[@inline] to_t q : t = { w = q.w; x = q.x; y = q.y; z = q.z }

  let[@inline] blit_t (a : t) dst =
    dst.w <- a.w;
    dst.x <- a.x;
    dst.y <- a.y;
    dst.z <- a.z

  let copy q = { w = q.w; x = q.x; y = q.y; z = q.z }

  let[@inline] norm q =
    sqrt ((q.w *. q.w) +. (q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z))

  let normalize q =
    let n = norm q in
    if n = 0.0 then set q ~w:1.0 ~x:0.0 ~y:0.0 ~z:0.0
    else begin
      q.w <- q.w /. n;
      q.x <- q.x /. n;
      q.y <- q.y /. n;
      q.z <- q.z /. n
    end

  (* [rotate dst q v]: the same expansion as the pure [rotate], with the
     intermediate cross products inlined into locals. *)
  let[@inline] rotate_comp ~qw ~qx ~qy ~qz (v : Vec3.Mut.vec)
      (dst : Vec3.Mut.vec) =
    let vx = v.Vec3.Mut.x and vy = v.Vec3.Mut.y and vz = v.Vec3.Mut.z in
    let tx = 2.0 *. ((qy *. vz) -. (qz *. vy)) in
    let ty = 2.0 *. ((qz *. vx) -. (qx *. vz)) in
    let tz = 2.0 *. ((qx *. vy) -. (qy *. vx)) in
    let rx = vx +. ((qw *. tx) +. ((qy *. tz) -. (qz *. ty))) in
    let ry = vy +. ((qw *. ty) +. ((qz *. tx) -. (qx *. tz))) in
    let rz = vz +. ((qw *. tz) +. ((qx *. ty) -. (qy *. tx))) in
    dst.Vec3.Mut.x <- rx;
    dst.Vec3.Mut.y <- ry;
    dst.Vec3.Mut.z <- rz

  let[@inline] rotate dst q v =
    rotate_comp ~qw:q.w ~qx:q.x ~qy:q.y ~qz:q.z v dst

  let[@inline] rotate_inv dst q v =
    rotate_comp ~qw:q.w ~qx:(-.q.x) ~qy:(-.q.y) ~qz:(-.q.z) v dst

  let integrate q (omega : Vec3.Mut.vec) dt =
    let ox = omega.Vec3.Mut.x
    and oy = omega.Vec3.Mut.y
    and oz = omega.Vec3.Mut.z in
    let half_dt = dt /. 2.0 in
    let dw = 0.0 -. (half_dt *. ((ox *. q.x) +. (oy *. q.y) +. (oz *. q.z))) in
    let dx = half_dt *. ((ox *. q.w) +. (oz *. q.y) -. (oy *. q.z)) in
    let dy = half_dt *. ((oy *. q.w) +. (ox *. q.z) -. (oz *. q.x)) in
    let dz = half_dt *. ((oz *. q.w) +. (oy *. q.x) -. (ox *. q.y)) in
    q.w <- q.w +. dw;
    q.x <- q.x +. dx;
    q.y <- q.y +. dy;
    q.z <- q.z +. dz;
    normalize q

  let[@inline] tilt q =
    (* [rotate q unit_z] with the zero terms kept so the float expression
       matches the pure [tilt] exactly. *)
    let tx = 2.0 *. ((q.y *. 1.0) -. (q.z *. 0.0)) in
    let ty = 2.0 *. ((q.z *. 0.0) -. (q.x *. 1.0)) in
    let tz = 2.0 *. ((q.x *. 0.0) -. (q.y *. 0.0)) in
    let bx = 0.0 +. ((q.w *. tx) +. ((q.y *. tz) -. (q.z *. ty))) in
    let by = 0.0 +. ((q.w *. ty) +. ((q.z *. tx) -. (q.x *. tz))) in
    let bz = 1.0 +. ((q.w *. tz) +. ((q.x *. ty) -. (q.y *. tx))) in
    let d = (bx *. 0.0) +. (by *. 0.0) +. (bz *. 1.0) in
    let c = Stdlib.max (-1.0) (Stdlib.min 1.0 d) in
    acos c
end

(* Structure-of-arrays storage for N attitudes, indexed by lane. Kernels
   read a lane into locals, reproduce the [Mut] arithmetic expression for
   expression, and write the lane back — so a batch of worlds integrated
   column-wise stays bit-identical to the single-world stepper. Angular
   rate comes in as a [Vec3.Cols] lane rather than loose floats so no
   float crosses a module boundary unboxed-then-reboxed on the hot
   path. *)
module Cols = struct
  type cols = {
    ws : float array;
    xs : float array;
    ys : float array;
    zs : float array;
  }

  (* Unchecked lane access for the hot kernels: the batched stepper
     validates lane indices once at its boundary, and the primitives
     compile to raw unboxed float loads/stores. *)
  external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
  external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

  let create n =
    {
      ws = Array.make n 1.0;
      xs = Array.make n 0.0;
      ys = Array.make n 0.0;
      zs = Array.make n 0.0;
    }

  let[@inline] load c i (src : Mut.quat) =
    c.ws.(i) <- src.Mut.w;
    c.xs.(i) <- src.Mut.x;
    c.ys.(i) <- src.Mut.y;
    c.zs.(i) <- src.Mut.z

  let[@inline] store c i (dst : Mut.quat) =
    dst.Mut.w <- c.ws.(i);
    dst.Mut.x <- c.xs.(i);
    dst.Mut.y <- c.ys.(i);
    dst.Mut.z <- c.zs.(i)

  let integrate c i (omega : Vec3.Cols.cols) dt =
    let ox = omega.Vec3.Cols.xs.!(i)
    and oy = omega.Vec3.Cols.ys.!(i)
    and oz = omega.Vec3.Cols.zs.!(i) in
    let qw = c.ws.!(i)
    and qx = c.xs.!(i)
    and qy = c.ys.!(i)
    and qz = c.zs.!(i) in
    let half_dt = dt /. 2.0 in
    let dw = 0.0 -. (half_dt *. ((ox *. qx) +. (oy *. qy) +. (oz *. qz))) in
    let dx = half_dt *. ((ox *. qw) +. (oz *. qy) -. (oy *. qz)) in
    let dy = half_dt *. ((oy *. qw) +. (ox *. qz) -. (oz *. qx)) in
    let dz = half_dt *. ((oz *. qw) +. (oy *. qx) -. (ox *. qy)) in
    let w = qw +. dw in
    let x = qx +. dx in
    let y = qy +. dy in
    let z = qz +. dz in
    (* [Mut.normalize], applied to the lane's post-increment values. *)
    let n = sqrt ((w *. w) +. (x *. x) +. (y *. y) +. (z *. z)) in
    if n = 0.0 then begin
      c.ws.!(i) <- 1.0;
      c.xs.!(i) <- 0.0;
      c.ys.!(i) <- 0.0;
      c.zs.!(i) <- 0.0
    end
    else begin
      c.ws.!(i) <- w /. n;
      c.xs.!(i) <- x /. n;
      c.ys.!(i) <- y /. n;
      c.zs.!(i) <- z /. n
    end

  let[@inline] tilt c i =
    let qw = c.ws.!(i)
    and qx = c.xs.!(i)
    and qy = c.ys.!(i)
    and qz = c.zs.!(i) in
    let tx = 2.0 *. ((qy *. 1.0) -. (qz *. 0.0)) in
    let ty = 2.0 *. ((qz *. 0.0) -. (qx *. 1.0)) in
    let tz = 2.0 *. ((qx *. 0.0) -. (qy *. 0.0)) in
    let bx = 0.0 +. ((qw *. tx) +. ((qy *. tz) -. (qz *. ty))) in
    let by = 0.0 +. ((qw *. ty) +. ((qz *. tx) -. (qx *. tz))) in
    let bz = 1.0 +. ((qw *. tz) +. ((qx *. ty) -. (qy *. tx))) in
    let d = (bx *. 0.0) +. (by *. 0.0) +. (bz *. 1.0) in
    let c = Stdlib.max (-1.0) (Stdlib.min 1.0 d) in
    acos c
end

let encode b q =
  Avis_util.Codec.w_f64 b q.w;
  Avis_util.Codec.w_f64 b q.x;
  Avis_util.Codec.w_f64 b q.y;
  Avis_util.Codec.w_f64 b q.z

let decode r =
  let w = Avis_util.Codec.r_f64 r in
  let x = Avis_util.Codec.r_f64 r in
  let y = Avis_util.Codec.r_f64 r in
  let z = Avis_util.Codec.r_f64 r in
  { w; x; y; z }
