(** Unit quaternions representing vehicle attitude.

    Attitude maps body-frame vectors into the world frame via [rotate].
    Euler angles follow the aerospace convention: roll about body x, pitch
    about body y, yaw about world z (heading, radians, zero = north = +x,
    increasing towards east = +y). *)

type t = { w : float; x : float; y : float; z : float }

val identity : t

val make : w:float -> x:float -> y:float -> z:float -> t

val of_axis_angle : Vec3.t -> float -> t
(** Rotation of [angle] radians about the given axis (normalised internally). *)

val of_euler : roll:float -> pitch:float -> yaw:float -> t
(** Build from aerospace Euler angles (ZYX order). *)

val to_euler : t -> float * float * float
(** [(roll, pitch, yaw)] of a (near-)unit quaternion. *)

val mul : t -> t -> t
(** Hamilton product; [mul a b] applies [b] first, then [a]. *)

val conjugate : t -> t

val norm : t -> float

val normalize : t -> t
(** Renormalise to unit length; the identity if the norm is zero. *)

val rotate : t -> Vec3.t -> Vec3.t
(** Rotate a body-frame vector into the world frame. *)

val rotate_inv : t -> Vec3.t -> Vec3.t
(** Rotate a world-frame vector into the body frame. *)

val integrate : t -> Vec3.t -> float -> t
(** [integrate q omega dt] advances attitude [q] by body angular rate
    [omega] (rad/s) over [dt] seconds and renormalises. *)

val slerp : t -> t -> float -> t
(** Spherical linear interpolation (shortest arc). *)

val angle_between : t -> t -> float
(** Magnitude of the rotation taking one attitude to the other, in
    [\[0, pi\]]. *)

val tilt : t -> float
(** Angle between the body z axis and the world vertical — how far from
    level the vehicle is, in radians. *)

val pp : Format.formatter -> t -> unit

(** In-place kernels over a mutable all-float quaternion, bit-identical to
    the pure operations above (property-tested). Used by the physics step
    kernel so steady-state integration allocates nothing. *)
module Mut : sig
  type quat = {
    mutable w : float;
    mutable x : float;
    mutable y : float;
    mutable z : float;
  }

  val create : unit -> quat
  (** A fresh identity quaternion. *)

  val set : quat -> w:float -> x:float -> y:float -> z:float -> unit
  val of_t : t -> quat
  val to_t : quat -> t
  val blit_t : t -> quat -> unit
  val copy : quat -> quat
  val norm : quat -> float

  val normalize : quat -> unit
  (** In place; the identity if the norm is zero, like the pure version. *)

  val rotate : Vec3.Mut.vec -> quat -> Vec3.Mut.vec -> unit
  (** [rotate dst q v] stores the world-frame image of body vector [v] in
      [dst]; [dst] may alias [v]. *)

  val rotate_inv : Vec3.Mut.vec -> quat -> Vec3.Mut.vec -> unit

  val integrate : quat -> Vec3.Mut.vec -> float -> unit
  (** [integrate q omega dt] advances [q] in place and renormalises,
      matching the pure [integrate] float for float. *)

  val tilt : quat -> float
  (** Angle between body z and world vertical, without allocating. *)
end

(** Structure-of-arrays storage for N attitudes, indexed by lane; the
    batched stepper's column-wise counterpart of {!Mut}, bit-identical to
    it kernel for kernel. *)
module Cols : sig
  type cols = {
    ws : float array;
    xs : float array;
    ys : float array;
    zs : float array;
  }

  val create : int -> cols
  (** [create n] allocates [n] identity quaternions as four columns. *)

  val load : cols -> int -> Mut.quat -> unit
  val store : cols -> int -> Mut.quat -> unit

  val integrate : cols -> int -> Vec3.Cols.cols -> float -> unit
  (** [integrate c i omega dt] advances lane [i] by lane [i] of [omega]
      and renormalises, matching [Mut.integrate] float for float. *)

  val tilt : cols -> int -> float
  (** Lane [i]'s angle between body z and world vertical. *)
end

val encode : Buffer.t -> t -> unit
(** Bit-exact binary layout (four IEEE-754 doubles). *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}. Raises [Avis_util.Codec.Corrupt] on truncated
    input. *)
