(** Three-dimensional vectors.

    The simulator works in a local NED-like frame: x north, y east, z *up*
    (we keep z-up rather than NED's z-down because altitude arithmetic reads
    more naturally; the convention is applied consistently everywhere). *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val unit_x : t
val unit_y : t
val unit_z : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val cross : t -> t -> t

val norm : t -> float
(** Euclidean length. *)

val norm_sq : t -> float
(** Squared length (cheaper; use for comparisons). *)

val dist : t -> t -> float
(** Euclidean distance between two points — the [d_e] of the paper's
    liveliness metric. *)

val normalize : t -> t
(** Unit vector in the same direction; [zero] maps to [zero]. *)

val lerp : t -> t -> float -> t
(** [lerp a b s] is [a + s*(b - a)]. *)

val horizontal : t -> t
(** Projection onto the ground plane (z set to 0). *)

val clamp_norm : float -> t -> t
(** [clamp_norm limit v] rescales [v] so its length does not exceed
    [limit] (which must be non-negative). *)

val is_finite : t -> bool
(** All three components are finite (no NaN/inf). *)

val equal_eps : ?eps:float -> t -> t -> bool
(** Component-wise comparison within [eps] (default [1e-9]). *)

val encode : Buffer.t -> t -> unit
(** Write the three components by bit pattern (24 bytes). *)

val decode : Avis_util.Codec.reader -> t
(** Inverse of {!encode}; bit-exact. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Destination-passing variants over a mutable all-float record.

    [vec] is stored flat (an OCaml float record), so component reads and
    writes never allocate — the simulator's step kernel keeps its whole
    working set in preallocated [vec]s. Every kernel is float-for-float
    identical to its pure counterpart above (property-tested); in
    particular [normalize] maps the zero vector to zero and [clamp_norm]
    rejects negative limits and leaves short vectors untouched.
    Component-wise kernels tolerate [dst] aliasing an argument; [cross]
    reads its inputs before the first store, so aliasing is safe there
    too. *)
module Mut : sig
  type vec = { mutable x : float; mutable y : float; mutable z : float }

  val create : unit -> vec
  (** A fresh zero vector. *)

  val set : vec -> x:float -> y:float -> z:float -> unit
  val of_t : t -> vec
  val to_t : vec -> t

  val blit_t : t -> vec -> unit
  (** Overwrite [vec] with an immutable vector's components. *)

  val copy_into : vec -> vec -> unit
  (** [copy_into src dst] overwrites [dst] with [src]. *)

  val copy : vec -> vec

  val add : vec -> vec -> vec -> unit
  (** [add dst a b] stores [a + b] in [dst]. Same convention below. *)

  val sub : vec -> vec -> vec -> unit
  val neg : vec -> vec -> unit
  val scale : vec -> float -> vec -> unit
  val dot : vec -> vec -> float
  val cross : vec -> vec -> vec -> unit
  val norm : vec -> float
  val norm_sq : vec -> float
  val normalize : vec -> vec -> unit
  val horizontal : vec -> vec -> unit
  val clamp_norm : vec -> float -> vec -> unit
end

(** Structure-of-arrays storage: N vectors held as three parallel float
    columns indexed by lane. The batched multi-world stepper keeps every
    world's vector state in columns like these so one inner loop advances
    all lanes through contiguous float arrays; loads and stores move floats
    only between unboxed homes (columns, [Mut.vec] records), so the hot
    path allocates nothing. *)
module Cols : sig
  type cols = { xs : float array; ys : float array; zs : float array }

  val create : int -> cols
  (** [create n] allocates three zeroed columns of width [n]. *)

  val width : cols -> int

  val load : cols -> int -> Mut.vec -> unit
  (** [load c i src] writes [src]'s components into lane [i]. *)

  val store : cols -> int -> Mut.vec -> unit
  (** [store c i dst] reads lane [i]'s components into [dst]. *)

  val load_t : cols -> int -> t -> unit
  val to_t : cols -> int -> t
  val set : cols -> int -> x:float -> y:float -> z:float -> unit
end
