type t = { x : float; y : float; z : float }

let zero = { x = 0.0; y = 0.0; z = 0.0 }
let[@inline] make x y z = { x; y; z }
let unit_x = { x = 1.0; y = 0.0; z = 0.0 }
let unit_y = { x = 0.0; y = 1.0; z = 0.0 }
let unit_z = { x = 0.0; y = 0.0; z = 1.0 }

let[@inline] add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let[@inline] sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let[@inline] neg a = { x = -.a.x; y = -.a.y; z = -.a.z }
let[@inline] scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let[@inline] dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let[@inline] cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }

let[@inline] norm_sq a = dot a a
let[@inline] norm a = sqrt (norm_sq a)
let[@inline] dist a b = norm (sub a b)

let normalize a =
  let n = norm a in
  if n = 0.0 then zero else scale (1.0 /. n) a

let lerp a b s = add a (scale s (sub b a))
let[@inline] horizontal a = { a with z = 0.0 }

let clamp_norm limit v =
  if limit < 0.0 then invalid_arg "Vec3.clamp_norm: negative limit";
  let n = norm v in
  if n <= limit || n = 0.0 then v else scale (limit /. n) v

let is_finite a =
  Float.is_finite a.x && Float.is_finite a.y && Float.is_finite a.z

let equal_eps ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps
  && Float.abs (a.y -. b.y) <= eps
  && Float.abs (a.z -. b.z) <= eps

let encode b (a : t) =
  Avis_util.Codec.w_f64 b a.x;
  Avis_util.Codec.w_f64 b a.y;
  Avis_util.Codec.w_f64 b a.z

let decode r =
  let x = Avis_util.Codec.r_f64 r in
  let y = Avis_util.Codec.r_f64 r in
  let z = Avis_util.Codec.r_f64 r in
  { x; y; z }

let pp ppf a = Format.fprintf ppf "(%.4f, %.4f, %.4f)" a.x a.y a.z
let to_string a = Format.asprintf "%a" pp a

(* Destination-passing kernels over a mutable all-float record (stored
   flat, so component writes never box). Every operation reproduces its
   pure counterpart's arithmetic expression for expression, which is what
   the bit-identity property tests pin down. Component-wise operations are
   alias-safe ([dst] may be [a] or [b]); [cross]/[rotate]-style kernels
   read everything into locals before the first store. *)
module Mut = struct
  type vec = { mutable x : float; mutable y : float; mutable z : float }

  let create () = { x = 0.0; y = 0.0; z = 0.0 }

  let[@inline] set v ~x ~y ~z =
    v.x <- x;
    v.y <- y;
    v.z <- z

  let[@inline] of_t (a : t) = { x = a.x; y = a.y; z = a.z }
  let[@inline] to_t v : t = { x = v.x; y = v.y; z = v.z }

  let[@inline] blit_t (a : t) dst =
    dst.x <- a.x;
    dst.y <- a.y;
    dst.z <- a.z

  let[@inline] copy_into src dst =
    dst.x <- src.x;
    dst.y <- src.y;
    dst.z <- src.z

  let copy v = { x = v.x; y = v.y; z = v.z }

  let[@inline] add dst a b =
    dst.x <- a.x +. b.x;
    dst.y <- a.y +. b.y;
    dst.z <- a.z +. b.z

  let[@inline] sub dst a b =
    dst.x <- a.x -. b.x;
    dst.y <- a.y -. b.y;
    dst.z <- a.z -. b.z

  let[@inline] neg dst a =
    dst.x <- -.a.x;
    dst.y <- -.a.y;
    dst.z <- -.a.z

  let[@inline] scale dst s a =
    dst.x <- s *. a.x;
    dst.y <- s *. a.y;
    dst.z <- s *. a.z

  let[@inline] dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

  let[@inline] cross dst a b =
    let x = (a.y *. b.z) -. (a.z *. b.y) in
    let y = (a.z *. b.x) -. (a.x *. b.z) in
    let z = (a.x *. b.y) -. (a.y *. b.x) in
    dst.x <- x;
    dst.y <- y;
    dst.z <- z

  let[@inline] norm_sq a = dot a a
  let[@inline] norm a = sqrt (norm_sq a)

  let normalize dst a =
    let n = norm a in
    if n = 0.0 then set dst ~x:0.0 ~y:0.0 ~z:0.0 else scale dst (1.0 /. n) a

  let[@inline] horizontal dst a =
    dst.x <- a.x;
    dst.y <- a.y;
    dst.z <- 0.0

  let clamp_norm dst limit a =
    if limit < 0.0 then invalid_arg "Vec3.clamp_norm: negative limit";
    let n = norm a in
    if n <= limit || n = 0.0 then copy_into a dst
    else scale dst (limit /. n) a
end

(* Structure-of-arrays storage: N vectors as three parallel float columns,
   indexed by lane. The batched multi-world stepper keeps every world's
   state in columns like these so one inner loop advances all lanes through
   contiguous memory; the kernels extend the [Mut] destination-passing
   style with a lane index and move floats only via pointers (columns and
   [Mut.vec] records), so nothing boxes even without cross-module
   inlining. *)
module Cols = struct
  type cols = { xs : float array; ys : float array; zs : float array }

  let create n = { xs = Array.make n 0.0; ys = Array.make n 0.0; zs = Array.make n 0.0 }

  let[@inline] width c = Array.length c.xs

  let[@inline] load c i (src : Mut.vec) =
    c.xs.(i) <- src.Mut.x;
    c.ys.(i) <- src.Mut.y;
    c.zs.(i) <- src.Mut.z

  let[@inline] store c i (dst : Mut.vec) =
    dst.Mut.x <- c.xs.(i);
    dst.Mut.y <- c.ys.(i);
    dst.Mut.z <- c.zs.(i)

  let[@inline] load_t c i (src : t) =
    c.xs.(i) <- src.x;
    c.ys.(i) <- src.y;
    c.zs.(i) <- src.z

  let[@inline] to_t c i : t = { x = c.xs.(i); y = c.ys.(i); z = c.zs.(i) }

  let[@inline] set c i ~x ~y ~z =
    c.xs.(i) <- x;
    c.ys.(i) <- y;
    c.zs.(i) <- z
end
