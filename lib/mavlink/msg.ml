type mission_item = {
  seq : int;
  command : int;
  param1 : float;
  x : float;
  y : float;
  z : float;
}

let encode_mission_item b (it : mission_item) =
  let open Avis_util.Codec in
  w_int b it.seq;
  w_int b it.command;
  w_f64 b it.param1;
  w_f64 b it.x;
  w_f64 b it.y;
  w_f64 b it.z

let decode_mission_item r : mission_item =
  let open Avis_util.Codec in
  let seq = r_int r in
  let command = r_int r in
  let param1 = r_f64 r in
  let x = r_f64 r in
  let y = r_f64 r in
  let z = r_f64 r in
  { seq; command; param1; x; y; z }

let cmd_waypoint = 16
let cmd_takeoff = 22
let cmd_land = 21
let cmd_return_to_launch = 20
let cmd_arm_disarm = 400
let cmd_reposition = 192

type severity = Emergency | Alert | Critical | Error | Warning | Notice | Info

type t =
  | Heartbeat of { custom_mode : int; armed : bool; system_status : int }
  | Sys_status of { voltage_mv : int; battery_remaining : int }
  | Set_mode of { custom_mode : int }
  | Mission_count of { count : int }
  | Mission_request of { seq : int }
  | Mission_item of mission_item
  | Mission_ack of { accepted : bool }
  | Mission_current of { seq : int }
  | Command_long of {
      command : int;
      param1 : float;
      param2 : float;
      param3 : float;
      param4 : float;
    }
  | Command_ack of { command : int; accepted : bool }
  | Global_position of {
      time_boot_ms : int;
      lat_e7 : int;
      lon_e7 : int;
      relative_alt_mm : int;
      vx_cm : int;
      vy_cm : int;
      vz_cm : int;
      heading_cdeg : int;
    }
  | Statustext of { severity : severity; text : string }
  | Param_request_list
  | Param_value of { name : string; value : float; index : int; count : int }
  | Param_set of { name : string; value : float }

let id_heartbeat = 0
let id_sys_status = 1
let id_set_mode = 11
let id_global_position = 33
let id_mission_item = 39
let id_mission_request = 40
let id_mission_current = 42
let id_mission_count = 44
let id_mission_ack = 47
let id_command_long = 76
let id_command_ack = 77
let id_statustext = 253
let id_param_request_list = 21
let id_param_value = 22
let id_param_set = 23
let param_name_len = 16

let msg_id = function
  | Heartbeat _ -> id_heartbeat
  | Sys_status _ -> id_sys_status
  | Set_mode _ -> id_set_mode
  | Global_position _ -> id_global_position
  | Mission_item _ -> id_mission_item
  | Mission_request _ -> id_mission_request
  | Mission_current _ -> id_mission_current
  | Mission_count _ -> id_mission_count
  | Mission_ack _ -> id_mission_ack
  | Command_long _ -> id_command_long
  | Command_ack _ -> id_command_ack
  | Statustext _ -> id_statustext
  | Param_request_list -> id_param_request_list
  | Param_value _ -> id_param_value
  | Param_set _ -> id_param_set

let severity_to_int = function
  | Emergency -> 0
  | Alert -> 1
  | Critical -> 2
  | Error -> 3
  | Warning -> 4
  | Notice -> 5
  | Info -> 6

let severity_of_int = function
  | 0 -> Emergency
  | 1 -> Alert
  | 2 -> Critical
  | 3 -> Error
  | 4 -> Warning
  | 5 -> Notice
  | _ -> Info

let statustext_len = 50

let encode_payload t =
  let w = Buf.writer () in
  (match t with
  | Heartbeat { custom_mode; armed; system_status } ->
    Buf.put_i32 w custom_mode;
    Buf.put_u8 w (if armed then 1 else 0);
    Buf.put_u8 w system_status
  | Sys_status { voltage_mv; battery_remaining } ->
    Buf.put_u16 w voltage_mv;
    Buf.put_u8 w battery_remaining
  | Set_mode { custom_mode } -> Buf.put_i32 w custom_mode
  | Mission_count { count } -> Buf.put_u16 w count
  | Mission_request { seq } -> Buf.put_u16 w seq
  | Mission_item { seq; command; param1; x; y; z } ->
    Buf.put_u16 w seq;
    Buf.put_u16 w command;
    Buf.put_f32 w param1;
    Buf.put_f32 w x;
    Buf.put_f32 w y;
    Buf.put_f32 w z
  | Mission_ack { accepted } -> Buf.put_u8 w (if accepted then 0 else 1)
  | Mission_current { seq } -> Buf.put_u16 w seq
  | Command_long { command; param1; param2; param3; param4 } ->
    Buf.put_u16 w command;
    Buf.put_f32 w param1;
    Buf.put_f32 w param2;
    Buf.put_f32 w param3;
    Buf.put_f32 w param4
  | Command_ack { command; accepted } ->
    Buf.put_u16 w command;
    Buf.put_u8 w (if accepted then 0 else 4)
  | Global_position g ->
    Buf.put_i32 w g.time_boot_ms;
    Buf.put_i32 w g.lat_e7;
    Buf.put_i32 w g.lon_e7;
    Buf.put_i32 w g.relative_alt_mm;
    Buf.put_i32 w g.vx_cm;
    Buf.put_i32 w g.vy_cm;
    Buf.put_i32 w g.vz_cm;
    Buf.put_u16 w g.heading_cdeg
  | Statustext { severity; text } ->
    Buf.put_u8 w (severity_to_int severity);
    Buf.put_string w ~len:statustext_len text
  | Param_request_list -> ()
  | Param_value { name; value; index; count } ->
    Buf.put_string w ~len:param_name_len name;
    Buf.put_f32 w value;
    Buf.put_u16 w index;
    Buf.put_u16 w count
  | Param_set { name; value } ->
    Buf.put_string w ~len:param_name_len name;
    Buf.put_f32 w value);
  Buf.contents w

let decode_exn ~msg_id payload =
  let r = Buf.reader payload in
  if msg_id = id_heartbeat then
    let custom_mode = Buf.get_i32 r in
    let armed = Buf.get_u8 r = 1 in
    let system_status = Buf.get_u8 r in
    Heartbeat { custom_mode; armed; system_status }
  else if msg_id = id_sys_status then
    let voltage_mv = Buf.get_u16 r in
    let battery_remaining = Buf.get_u8 r in
    Sys_status { voltage_mv; battery_remaining }
  else if msg_id = id_set_mode then Set_mode { custom_mode = Buf.get_i32 r }
  else if msg_id = id_mission_count then Mission_count { count = Buf.get_u16 r }
  else if msg_id = id_mission_request then Mission_request { seq = Buf.get_u16 r }
  else if msg_id = id_mission_item then
    let seq = Buf.get_u16 r in
    let command = Buf.get_u16 r in
    let param1 = Buf.get_f32 r in
    let x = Buf.get_f32 r in
    let y = Buf.get_f32 r in
    let z = Buf.get_f32 r in
    Mission_item { seq; command; param1; x; y; z }
  else if msg_id = id_mission_ack then Mission_ack { accepted = Buf.get_u8 r = 0 }
  else if msg_id = id_mission_current then Mission_current { seq = Buf.get_u16 r }
  else if msg_id = id_command_long then
    let command = Buf.get_u16 r in
    let param1 = Buf.get_f32 r in
    let param2 = Buf.get_f32 r in
    let param3 = Buf.get_f32 r in
    let param4 = Buf.get_f32 r in
    Command_long { command; param1; param2; param3; param4 }
  else if msg_id = id_command_ack then
    let command = Buf.get_u16 r in
    let accepted = Buf.get_u8 r = 0 in
    Command_ack { command; accepted }
  else if msg_id = id_global_position then
    let time_boot_ms = Buf.get_i32 r in
    let lat_e7 = Buf.get_i32 r in
    let lon_e7 = Buf.get_i32 r in
    let relative_alt_mm = Buf.get_i32 r in
    let vx_cm = Buf.get_i32 r in
    let vy_cm = Buf.get_i32 r in
    let vz_cm = Buf.get_i32 r in
    let heading_cdeg = Buf.get_u16 r in
    Global_position
      { time_boot_ms; lat_e7; lon_e7; relative_alt_mm; vx_cm; vy_cm; vz_cm; heading_cdeg }
  else if msg_id = id_statustext then
    let severity = severity_of_int (Buf.get_u8 r) in
    let text = Buf.get_string r ~len:statustext_len in
    Statustext { severity; text }
  else if msg_id = id_param_request_list then Param_request_list
  else if msg_id = id_param_value then
    let name = Buf.get_string r ~len:param_name_len in
    let value = Buf.get_f32 r in
    let index = Buf.get_u16 r in
    let count = Buf.get_u16 r in
    Param_value { name; value; index; count }
  else if msg_id = id_param_set then
    let name = Buf.get_string r ~len:param_name_len in
    let value = Buf.get_f32 r in
    Param_set { name; value }
  else raise Buf.Truncated

let decode_payload ~msg_id payload =
  match decode_exn ~msg_id payload with
  | msg -> Some msg
  | exception Buf.Truncated -> None

(* A fixed pseudo-random byte per message id, mixed into the frame CRC so
   that decoding a payload against the wrong layout fails the checksum. *)
let crc_extra id = (id * 151 + 47) land 0xFF

let describe = function
  | Heartbeat { custom_mode; armed; _ } ->
    Printf.sprintf "HEARTBEAT mode=%d armed=%b" custom_mode armed
  | Sys_status { voltage_mv; battery_remaining } ->
    Printf.sprintf "SYS_STATUS %.1fV %d%%" (float_of_int voltage_mv /. 1000.0)
      battery_remaining
  | Set_mode { custom_mode } -> Printf.sprintf "SET_MODE %d" custom_mode
  | Mission_count { count } -> Printf.sprintf "MISSION_COUNT %d" count
  | Mission_request { seq } -> Printf.sprintf "MISSION_REQUEST %d" seq
  | Mission_item { seq; command; _ } ->
    Printf.sprintf "MISSION_ITEM seq=%d cmd=%d" seq command
  | Mission_ack { accepted } -> Printf.sprintf "MISSION_ACK accepted=%b" accepted
  | Mission_current { seq } -> Printf.sprintf "MISSION_CURRENT %d" seq
  | Command_long { command; _ } -> Printf.sprintf "COMMAND_LONG %d" command
  | Command_ack { command; accepted } ->
    Printf.sprintf "COMMAND_ACK %d accepted=%b" command accepted
  | Global_position { relative_alt_mm; _ } ->
    Printf.sprintf "GLOBAL_POSITION alt=%.2fm" (float_of_int relative_alt_mm /. 1000.0)
  | Statustext { text; _ } -> Printf.sprintf "STATUSTEXT %S" text
  | Param_request_list -> "PARAM_REQUEST_LIST"
  | Param_value { name; value; _ } -> Printf.sprintf "PARAM_VALUE %s=%g" name value
  | Param_set { name; value } -> Printf.sprintf "PARAM_SET %s=%g" name value
