type upload_state =
  | Upload_idle
  | Upload_in_progress
  | Upload_done
  | Upload_failed
  | Upload_timed_out

type tx_status = Tx_pending | Tx_acked of bool | Tx_timed_out

(* Bounded retransmission with exponential backoff. The records are
   immutable so snapshots stay O(1) [{t with ...}]. *)
type retry = { next_at : float; backoff : float; left : int }

let initial_backoff = 0.4
let backoff_factor = 2.0
let upload_retries = 5
let command_retries = 3
let mode_retries = 3

type pending_command = {
  cmd : int;
  p1 : float;
  p2 : float;
  p3 : float;
  p4 : float;
  cmd_retry : retry;
}

type pending_mode = {
  mode : int;
  baseline : int option;  (** vehicle mode when the request was issued *)
  mode_retry : retry;
}

let heartbeat_period = 1.0

type t = {
  link : Link.t;
  sysid : int;
  compid : int;
  decoder : Frame.decoder;
  mutable seq : int;
  mutable now : float;
  mutable next_heartbeat : float;
  (* telemetry cache *)
  mutable relative_alt : float;
  mutable latitude : float;
  mutable longitude : float;
  mutable velocity : float * float * float;
  mutable heading_deg : float;
  mutable vehicle_mode : int option;
  mutable armed : bool;
  mutable battery_pct : int;
  mutable statustexts : string list; (* newest first *)
  (* transactions *)
  mutable upload : upload_state;
  mutable upload_items : Msg.mission_item array;
  mutable upload_last_seq : int option;  (** last ITEM sent; None = COUNT *)
  mutable upload_retry : retry option;
  mutable pending_commands : pending_command list;
  mutable timed_out_commands : int list;
  mutable pending_mode : pending_mode option;
  mutable mode_timed_out : bool;
  mutable command_acks : (int * bool) list;
  mutable params : (string * float) list;
}

let create ?(sysid = 255) ?(compid = 190) link =
  {
    link;
    sysid;
    compid;
    decoder = Frame.decoder ();
    seq = 0;
    now = 0.0;
    next_heartbeat = 0.0;
    relative_alt = 0.0;
    latitude = 0.0;
    longitude = 0.0;
    velocity = (0.0, 0.0, 0.0);
    heading_deg = 0.0;
    vehicle_mode = None;
    armed = false;
    battery_pct = 100;
    statustexts = [];
    upload = Upload_idle;
    upload_items = [||];
    upload_last_seq = None;
    upload_retry = None;
    pending_commands = [];
    timed_out_commands = [];
    pending_mode = None;
    mode_timed_out = false;
    command_acks = [];
    params = [];
  }

type snapshot = t

let snapshot t =
  {
    t with
    decoder = Frame.copy_decoder t.decoder;
    upload_items = Array.copy t.upload_items;
  }

let restore ~link s =
  {
    s with
    link;
    decoder = Frame.copy_decoder s.decoder;
    upload_items = Array.copy s.upload_items;
  }

let fresh_retry t ~retries =
  { next_at = t.now +. initial_backoff; backoff = initial_backoff;
    left = retries }

let bumped_retry t (r : retry) =
  let backoff = r.backoff *. backoff_factor in
  { next_at = t.now +. backoff; backoff; left = r.left - 1 }

let send t msg =
  let data = Frame.encode ~seq:t.seq ~sysid:t.sysid ~compid:t.compid msg in
  t.seq <- (t.seq + 1) land 0xFF;
  Link.send t.link Link.Gcs_end data

let handle t (msg : Msg.t) =
  match msg with
  | Msg.Heartbeat { custom_mode; armed; _ } ->
    t.vehicle_mode <- Some custom_mode;
    t.armed <- armed;
    (match t.pending_mode with
    | Some pm when custom_mode = pm.mode || pm.baseline <> Some custom_mode ->
      (* The requested mode may never appear verbatim in a heartbeat (AUTO
         resolves to a mission phase code), so any departure from the mode
         cached at request time also counts as confirmation. *)
      t.pending_mode <- None
    | _ -> ())
  | Msg.Sys_status { battery_remaining; _ } -> t.battery_pct <- battery_remaining
  | Msg.Global_position g ->
    t.relative_alt <- float_of_int g.relative_alt_mm /. 1000.0;
    t.latitude <- Avis_geo.Geodesy.e7_to_deg g.lat_e7;
    t.longitude <- Avis_geo.Geodesy.e7_to_deg g.lon_e7;
    t.velocity <-
      ( float_of_int g.vx_cm /. 100.0,
        float_of_int g.vy_cm /. 100.0,
        float_of_int g.vz_cm /. 100.0 );
    t.heading_deg <- float_of_int g.heading_cdeg /. 100.0
  | Msg.Statustext { text; _ } -> t.statustexts <- text :: t.statustexts
  | Msg.Mission_request { seq } ->
    if t.upload = Upload_in_progress then
      if seq >= 0 && seq < Array.length t.upload_items then begin
        send t (Msg.Mission_item t.upload_items.(seq));
        t.upload_last_seq <- Some seq;
        (* A request is progress: the channel works, so the backoff and the
           retry budget start over. *)
        t.upload_retry <- Some (fresh_retry t ~retries:upload_retries)
      end
      else begin
        t.upload <- Upload_failed;
        t.upload_retry <- None
      end
  | Msg.Mission_ack { accepted } ->
    if t.upload = Upload_in_progress then begin
      t.upload <- (if accepted then Upload_done else Upload_failed);
      t.upload_retry <- None
    end
  | Msg.Command_ack { command; accepted } ->
    t.command_acks <- (command, accepted) :: t.command_acks;
    t.pending_commands <-
      List.filter (fun p -> p.cmd <> command) t.pending_commands
  | Msg.Param_value { name; value; _ } ->
    t.params <- (name, value) :: List.remove_assoc name t.params
  | Msg.Set_mode _ | Msg.Mission_count _ | Msg.Mission_item _
  | Msg.Mission_current _ | Msg.Command_long _ | Msg.Param_request_list
  | Msg.Param_set _ ->
    (* Vehicle-to-GCS traffic never carries these; ignore. *)
    ()

let poll t =
  let bytes = Link.receive t.link Link.Gcs_end in
  let frames = Frame.feed t.decoder bytes in
  let msgs = List.map (fun f -> f.Frame.message) frames in
  List.iter (handle t) msgs;
  msgs

let resend_upload t =
  match t.upload_last_seq with
  | None ->
    send t (Msg.Mission_count { count = Array.length t.upload_items })
  | Some seq -> send t (Msg.Mission_item t.upload_items.(seq))

let drive_retries t =
  (match t.upload_retry with
  | Some r when t.upload = Upload_in_progress && t.now >= r.next_at ->
    if r.left = 0 then begin
      t.upload <- Upload_timed_out;
      t.upload_retry <- None
    end
    else begin
      resend_upload t;
      t.upload_retry <- Some (bumped_retry t r)
    end
  | _ -> ());
  t.pending_commands <-
    List.filter_map
      (fun p ->
        if t.now < p.cmd_retry.next_at then Some p
        else if p.cmd_retry.left = 0 then begin
          t.timed_out_commands <- p.cmd :: t.timed_out_commands;
          None
        end
        else begin
          send t
            (Msg.Command_long
               { command = p.cmd; param1 = p.p1; param2 = p.p2; param3 = p.p3;
                 param4 = p.p4 });
          Some { p with cmd_retry = bumped_retry t p.cmd_retry }
        end)
      t.pending_commands;
  match t.pending_mode with
  | Some pm when t.now >= pm.mode_retry.next_at ->
    if pm.mode_retry.left = 0 then begin
      t.pending_mode <- None;
      t.mode_timed_out <- true
    end
    else begin
      send t (Msg.Set_mode { custom_mode = pm.mode });
      t.pending_mode <- Some { pm with mode_retry = bumped_retry t pm.mode_retry }
    end
  | _ -> ()

let tick t ~time =
  t.now <- time;
  let msgs = poll t in
  if t.now >= t.next_heartbeat then begin
    send t (Msg.Heartbeat { custom_mode = 0; armed = false; system_status = 0 });
    t.next_heartbeat <- t.next_heartbeat +. heartbeat_period
  end;
  drive_retries t;
  msgs

let relative_alt t = t.relative_alt
let latitude t = t.latitude
let longitude t = t.longitude
let velocity t = t.velocity
let heading_deg t = t.heading_deg
let vehicle_mode t = t.vehicle_mode
let armed t = t.armed
let battery_remaining_pct t = t.battery_pct
let statustexts t = List.rev t.statustexts

let start_mission_upload t items =
  if t.upload = Upload_in_progress then
    invalid_arg "Gcs.start_mission_upload: upload already in progress";
  t.upload_items <- Array.of_list items;
  t.upload <- Upload_in_progress;
  t.upload_last_seq <- None;
  t.upload_retry <- Some (fresh_retry t ~retries:upload_retries);
  send t (Msg.Mission_count { count = List.length items })

let upload_state t = t.upload

let send_command t ~command ?(param2 = 0.0) ?(param3 = 0.0) ?(param4 = 0.0)
    ~param1 () =
  t.command_acks <- List.remove_assoc command t.command_acks;
  t.timed_out_commands <-
    List.filter (fun c -> c <> command) t.timed_out_commands;
  t.pending_commands <-
    { cmd = command; p1 = param1; p2 = param2; p3 = param3; p4 = param4;
      cmd_retry = fresh_retry t ~retries:command_retries }
    :: List.filter (fun p -> p.cmd <> command) t.pending_commands;
  send t (Msg.Command_long { command; param1; param2; param3; param4 })

let command_ack t ~command = List.assoc_opt command t.command_acks

let command_status t ~command =
  match List.assoc_opt command t.command_acks with
  | Some accepted -> Tx_acked accepted
  | None ->
    if List.exists (fun p -> p.cmd = command) t.pending_commands then Tx_pending
    else if List.mem command t.timed_out_commands then Tx_timed_out
    else Tx_pending

let request_mode t mode =
  t.mode_timed_out <- false;
  t.pending_mode <-
    Some
      { mode; baseline = t.vehicle_mode;
        mode_retry = fresh_retry t ~retries:mode_retries };
  send t (Msg.Set_mode { custom_mode = mode })

let mode_status t =
  if t.mode_timed_out then Tx_timed_out
  else match t.pending_mode with Some _ -> Tx_pending | None -> Tx_acked true

let set_param t ~name ~value = send t (Msg.Param_set { name; value })

let request_param_list t = send t Msg.Param_request_list

let param t name = List.assoc_opt name t.params

let params t = t.params
