type upload_state =
  | Upload_idle
  | Upload_in_progress
  | Upload_done
  | Upload_failed
  | Upload_timed_out

type tx_status = Tx_pending | Tx_acked of bool | Tx_timed_out

(* Bounded retransmission with exponential backoff. The records are
   immutable so snapshots stay O(1) [{t with ...}]. *)
type retry = { next_at : float; backoff : float; left : int }

let initial_backoff = 0.4
let backoff_factor = 2.0
let upload_retries = 5
let command_retries = 3
let mode_retries = 3

type pending_command = {
  cmd : int;
  p1 : float;
  p2 : float;
  p3 : float;
  p4 : float;
  cmd_retry : retry;
}

type pending_mode = {
  mode : int;
  baseline : int option;  (** vehicle mode when the request was issued *)
  mode_retry : retry;
}

let heartbeat_period = 1.0

type t = {
  link : Link.t;
  sysid : int;
  compid : int;
  decoder : Frame.decoder;
  mutable seq : int;
  mutable now : float;
  mutable next_heartbeat : float;
  (* telemetry cache *)
  mutable relative_alt : float;
  mutable latitude : float;
  mutable longitude : float;
  mutable velocity : float * float * float;
  mutable heading_deg : float;
  mutable vehicle_mode : int option;
  mutable armed : bool;
  mutable battery_pct : int;
  mutable statustexts : string list; (* newest first *)
  (* transactions *)
  mutable upload : upload_state;
  mutable upload_items : Msg.mission_item array;
  mutable upload_last_seq : int option;  (** last ITEM sent; None = COUNT *)
  mutable upload_retry : retry option;
  mutable pending_commands : pending_command list;
  mutable timed_out_commands : int list;
  mutable pending_mode : pending_mode option;
  mutable mode_timed_out : bool;
  mutable command_acks : (int * bool) list;
  mutable params : (string * float) list;
}

let create ?(sysid = 255) ?(compid = 190) link =
  {
    link;
    sysid;
    compid;
    decoder = Frame.decoder ();
    seq = 0;
    now = 0.0;
    next_heartbeat = 0.0;
    relative_alt = 0.0;
    latitude = 0.0;
    longitude = 0.0;
    velocity = (0.0, 0.0, 0.0);
    heading_deg = 0.0;
    vehicle_mode = None;
    armed = false;
    battery_pct = 100;
    statustexts = [];
    upload = Upload_idle;
    upload_items = [||];
    upload_last_seq = None;
    upload_retry = None;
    pending_commands = [];
    timed_out_commands = [];
    pending_mode = None;
    mode_timed_out = false;
    command_acks = [];
    params = [];
  }

type snapshot = t

let snapshot t =
  {
    t with
    decoder = Frame.copy_decoder t.decoder;
    upload_items = Array.copy t.upload_items;
  }

let restore ~link s =
  {
    s with
    link;
    decoder = Frame.copy_decoder s.decoder;
    upload_items = Array.copy s.upload_items;
  }

let encode_retry b (r : retry) =
  let open Avis_util.Codec in
  w_f64 b r.next_at;
  w_f64 b r.backoff;
  w_int b r.left

let decode_retry r : retry =
  let open Avis_util.Codec in
  let next_at = r_f64 r in
  let backoff = r_f64 r in
  let left = r_int r in
  { next_at; backoff; left }

let encode_upload_state b u =
  Avis_util.Codec.w_u8 b
    (match u with
    | Upload_idle -> 0
    | Upload_in_progress -> 1
    | Upload_done -> 2
    | Upload_failed -> 3
    | Upload_timed_out -> 4)

let decode_upload_state r =
  match Avis_util.Codec.r_u8 r with
  | 0 -> Upload_idle
  | 1 -> Upload_in_progress
  | 2 -> Upload_done
  | 3 -> Upload_failed
  | 4 -> Upload_timed_out
  | t -> Avis_util.Codec.corrupt "bad upload-state tag %d" t

(* The snapshot's [link] field is deliberately not serialised: a decoded
   snapshot is only usable through [restore ~link], which substitutes the
   restored link — exactly as [Vehicle.restore] substitutes its
   collaborators. [of_bytes] takes the link the caller will restore over
   so the interim record is well-typed. *)
let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  w_int b s.sysid;
  w_int b s.compid;
  Frame.encode_decoder b s.decoder;
  w_int b s.seq;
  w_f64 b s.now;
  w_f64 b s.next_heartbeat;
  w_f64 b s.relative_alt;
  w_f64 b s.latitude;
  w_f64 b s.longitude;
  (let vx, vy, vz = s.velocity in
   w_f64 b vx;
   w_f64 b vy;
   w_f64 b vz);
  w_f64 b s.heading_deg;
  w_option b w_int s.vehicle_mode;
  w_bool b s.armed;
  w_int b s.battery_pct;
  w_list b w_string s.statustexts;
  encode_upload_state b s.upload;
  w_array b Msg.encode_mission_item s.upload_items;
  w_option b w_int s.upload_last_seq;
  w_option b encode_retry s.upload_retry;
  w_list b
    (fun b p ->
      w_int b p.cmd;
      w_f64 b p.p1;
      w_f64 b p.p2;
      w_f64 b p.p3;
      w_f64 b p.p4;
      encode_retry b p.cmd_retry)
    s.pending_commands;
  w_list b w_int s.timed_out_commands;
  w_option b
    (fun b pm ->
      w_int b pm.mode;
      w_option b w_int pm.baseline;
      encode_retry b pm.mode_retry)
    s.pending_mode;
  w_bool b s.mode_timed_out;
  w_list b
    (fun b (cmd, accepted) ->
      w_int b cmd;
      w_bool b accepted)
    s.command_acks;
  w_list b
    (fun b (name, value) ->
      w_string b name;
      w_f64 b value)
    s.params

let decode_snapshot ~link r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let sysid = r_int r in
  let compid = r_int r in
  let decoder = Frame.decode_decoder r in
  let seq = r_int r in
  let now = r_f64 r in
  let next_heartbeat = r_f64 r in
  let relative_alt = r_f64 r in
  let latitude = r_f64 r in
  let longitude = r_f64 r in
  let velocity =
    let vx = r_f64 r in
    let vy = r_f64 r in
    let vz = r_f64 r in
    (vx, vy, vz)
  in
  let heading_deg = r_f64 r in
  let vehicle_mode = r_option r r_int in
  let armed = r_bool r in
  let battery_pct = r_int r in
  let statustexts = r_list r r_string in
  let upload = decode_upload_state r in
  let upload_items = r_array r Msg.decode_mission_item in
  let upload_last_seq = r_option r r_int in
  let upload_retry = r_option r decode_retry in
  let pending_commands =
    r_list r (fun r ->
        let cmd = r_int r in
        let p1 = r_f64 r in
        let p2 = r_f64 r in
        let p3 = r_f64 r in
        let p4 = r_f64 r in
        let cmd_retry = decode_retry r in
        { cmd; p1; p2; p3; p4; cmd_retry })
  in
  let timed_out_commands = r_list r r_int in
  let pending_mode =
    r_option r (fun r ->
        let mode = r_int r in
        let baseline = r_option r r_int in
        let mode_retry = decode_retry r in
        { mode; baseline; mode_retry })
  in
  let mode_timed_out = r_bool r in
  let command_acks =
    r_list r (fun r ->
        let cmd = r_int r in
        let accepted = r_bool r in
        (cmd, accepted))
  in
  let params =
    r_list r (fun r ->
        let name = r_string r in
        let value = r_f64 r in
        (name, value))
  in
  {
    link;
    sysid;
    compid;
    decoder;
    seq;
    now;
    next_heartbeat;
    relative_alt;
    latitude;
    longitude;
    velocity;
    heading_deg;
    vehicle_mode;
    armed;
    battery_pct;
    statustexts;
    upload;
    upload_items;
    upload_last_seq;
    upload_retry;
    pending_commands;
    timed_out_commands;
    pending_mode;
    mode_timed_out;
    command_acks;
    params;
  }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s

let of_bytes ~link data =
  Avis_util.Codec.of_string (decode_snapshot ~link) data

let fresh_retry t ~retries =
  { next_at = t.now +. initial_backoff; backoff = initial_backoff;
    left = retries }

let bumped_retry t (r : retry) =
  let backoff = r.backoff *. backoff_factor in
  { next_at = t.now +. backoff; backoff; left = r.left - 1 }

let send t msg =
  let data = Frame.encode ~seq:t.seq ~sysid:t.sysid ~compid:t.compid msg in
  t.seq <- (t.seq + 1) land 0xFF;
  Link.send t.link Link.Gcs_end data

let handle t (msg : Msg.t) =
  match msg with
  | Msg.Heartbeat { custom_mode; armed; _ } ->
    t.vehicle_mode <- Some custom_mode;
    t.armed <- armed;
    (match t.pending_mode with
    | Some pm when custom_mode = pm.mode || pm.baseline <> Some custom_mode ->
      (* The requested mode may never appear verbatim in a heartbeat (AUTO
         resolves to a mission phase code), so any departure from the mode
         cached at request time also counts as confirmation. *)
      t.pending_mode <- None
    | _ -> ())
  | Msg.Sys_status { battery_remaining; _ } -> t.battery_pct <- battery_remaining
  | Msg.Global_position g ->
    t.relative_alt <- float_of_int g.relative_alt_mm /. 1000.0;
    t.latitude <- Avis_geo.Geodesy.e7_to_deg g.lat_e7;
    t.longitude <- Avis_geo.Geodesy.e7_to_deg g.lon_e7;
    t.velocity <-
      ( float_of_int g.vx_cm /. 100.0,
        float_of_int g.vy_cm /. 100.0,
        float_of_int g.vz_cm /. 100.0 );
    t.heading_deg <- float_of_int g.heading_cdeg /. 100.0
  | Msg.Statustext { text; _ } -> t.statustexts <- text :: t.statustexts
  | Msg.Mission_request { seq } ->
    if t.upload = Upload_in_progress then
      if seq >= 0 && seq < Array.length t.upload_items then begin
        send t (Msg.Mission_item t.upload_items.(seq));
        t.upload_last_seq <- Some seq;
        (* A request is progress: the channel works, so the backoff and the
           retry budget start over. *)
        t.upload_retry <- Some (fresh_retry t ~retries:upload_retries)
      end
      else begin
        t.upload <- Upload_failed;
        t.upload_retry <- None
      end
  | Msg.Mission_ack { accepted } ->
    if t.upload = Upload_in_progress then begin
      t.upload <- (if accepted then Upload_done else Upload_failed);
      t.upload_retry <- None
    end
  | Msg.Command_ack { command; accepted } ->
    t.command_acks <- (command, accepted) :: t.command_acks;
    t.pending_commands <-
      List.filter (fun p -> p.cmd <> command) t.pending_commands
  | Msg.Param_value { name; value; _ } ->
    t.params <- (name, value) :: List.remove_assoc name t.params
  | Msg.Set_mode _ | Msg.Mission_count _ | Msg.Mission_item _
  | Msg.Mission_current _ | Msg.Command_long _ | Msg.Param_request_list
  | Msg.Param_set _ ->
    (* Vehicle-to-GCS traffic never carries these; ignore. *)
    ()

let poll t =
  let bytes = Link.receive t.link Link.Gcs_end in
  let frames = Frame.feed t.decoder bytes in
  let msgs = List.map (fun f -> f.Frame.message) frames in
  List.iter (handle t) msgs;
  msgs

let resend_upload t =
  match t.upload_last_seq with
  | None ->
    send t (Msg.Mission_count { count = Array.length t.upload_items })
  | Some seq -> send t (Msg.Mission_item t.upload_items.(seq))

let drive_retries t =
  (match t.upload_retry with
  | Some r when t.upload = Upload_in_progress && t.now >= r.next_at ->
    if r.left = 0 then begin
      t.upload <- Upload_timed_out;
      t.upload_retry <- None
    end
    else begin
      resend_upload t;
      t.upload_retry <- Some (bumped_retry t r)
    end
  | _ -> ());
  t.pending_commands <-
    List.filter_map
      (fun p ->
        if t.now < p.cmd_retry.next_at then Some p
        else if p.cmd_retry.left = 0 then begin
          t.timed_out_commands <- p.cmd :: t.timed_out_commands;
          None
        end
        else begin
          send t
            (Msg.Command_long
               { command = p.cmd; param1 = p.p1; param2 = p.p2; param3 = p.p3;
                 param4 = p.p4 });
          Some { p with cmd_retry = bumped_retry t p.cmd_retry }
        end)
      t.pending_commands;
  match t.pending_mode with
  | Some pm when t.now >= pm.mode_retry.next_at ->
    if pm.mode_retry.left = 0 then begin
      t.pending_mode <- None;
      t.mode_timed_out <- true
    end
    else begin
      send t (Msg.Set_mode { custom_mode = pm.mode });
      t.pending_mode <- Some { pm with mode_retry = bumped_retry t pm.mode_retry }
    end
  | _ -> ()

let tick t ~time =
  t.now <- time;
  let msgs = poll t in
  if t.now >= t.next_heartbeat then begin
    send t (Msg.Heartbeat { custom_mode = 0; armed = false; system_status = 0 });
    t.next_heartbeat <- t.next_heartbeat +. heartbeat_period
  end;
  drive_retries t;
  msgs

let relative_alt t = t.relative_alt
let latitude t = t.latitude
let longitude t = t.longitude
let velocity t = t.velocity
let heading_deg t = t.heading_deg
let vehicle_mode t = t.vehicle_mode
let armed t = t.armed
let battery_remaining_pct t = t.battery_pct
let statustexts t = List.rev t.statustexts

let start_mission_upload t items =
  if t.upload = Upload_in_progress then
    invalid_arg "Gcs.start_mission_upload: upload already in progress";
  t.upload_items <- Array.of_list items;
  t.upload <- Upload_in_progress;
  t.upload_last_seq <- None;
  t.upload_retry <- Some (fresh_retry t ~retries:upload_retries);
  send t (Msg.Mission_count { count = List.length items })

let upload_state t = t.upload

let send_command t ~command ?(param2 = 0.0) ?(param3 = 0.0) ?(param4 = 0.0)
    ~param1 () =
  t.command_acks <- List.remove_assoc command t.command_acks;
  t.timed_out_commands <-
    List.filter (fun c -> c <> command) t.timed_out_commands;
  t.pending_commands <-
    { cmd = command; p1 = param1; p2 = param2; p3 = param3; p4 = param4;
      cmd_retry = fresh_retry t ~retries:command_retries }
    :: List.filter (fun p -> p.cmd <> command) t.pending_commands;
  send t (Msg.Command_long { command; param1; param2; param3; param4 })

let command_ack t ~command = List.assoc_opt command t.command_acks

let command_status t ~command =
  match List.assoc_opt command t.command_acks with
  | Some accepted -> Tx_acked accepted
  | None ->
    if List.exists (fun p -> p.cmd = command) t.pending_commands then Tx_pending
    else if List.mem command t.timed_out_commands then Tx_timed_out
    else Tx_pending

let request_mode t mode =
  t.mode_timed_out <- false;
  t.pending_mode <-
    Some
      { mode; baseline = t.vehicle_mode;
        mode_retry = fresh_retry t ~retries:mode_retries };
  send t (Msg.Set_mode { custom_mode = mode })

let mode_status t =
  if t.mode_timed_out then Tx_timed_out
  else match t.pending_mode with Some _ -> Tx_pending | None -> Tx_acked true

let set_param t ~name ~value = send t (Msg.Param_set { name; value })

let request_param_list t = send t Msg.Param_request_list

let param t name = List.assoc_opt name t.params

let params t = t.params
