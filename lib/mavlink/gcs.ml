type upload_state = Upload_idle | Upload_in_progress | Upload_done | Upload_failed

type t = {
  link : Link.t;
  sysid : int;
  compid : int;
  decoder : Frame.decoder;
  mutable seq : int;
  (* telemetry cache *)
  mutable relative_alt : float;
  mutable latitude : float;
  mutable longitude : float;
  mutable velocity : float * float * float;
  mutable heading_deg : float;
  mutable vehicle_mode : int option;
  mutable armed : bool;
  mutable battery_pct : int;
  mutable statustexts : string list; (* newest first *)
  (* transactions *)
  mutable upload : upload_state;
  mutable upload_items : Msg.mission_item array;
  mutable command_acks : (int * bool) list;
  mutable params : (string * float) list;
}

let create ?(sysid = 255) ?(compid = 190) link =
  {
    link;
    sysid;
    compid;
    decoder = Frame.decoder ();
    seq = 0;
    relative_alt = 0.0;
    latitude = 0.0;
    longitude = 0.0;
    velocity = (0.0, 0.0, 0.0);
    heading_deg = 0.0;
    vehicle_mode = None;
    armed = false;
    battery_pct = 100;
    statustexts = [];
    upload = Upload_idle;
    upload_items = [||];
    command_acks = [];
    params = [];
  }

type snapshot = t

let snapshot t =
  {
    t with
    decoder = Frame.copy_decoder t.decoder;
    upload_items = Array.copy t.upload_items;
  }

let restore ~link s =
  {
    s with
    link;
    decoder = Frame.copy_decoder s.decoder;
    upload_items = Array.copy s.upload_items;
  }

let send t msg =
  let data = Frame.encode ~seq:t.seq ~sysid:t.sysid ~compid:t.compid msg in
  t.seq <- (t.seq + 1) land 0xFF;
  Link.send t.link Link.Gcs_end data

let handle t (msg : Msg.t) =
  match msg with
  | Msg.Heartbeat { custom_mode; armed; _ } ->
    t.vehicle_mode <- Some custom_mode;
    t.armed <- armed
  | Msg.Sys_status { battery_remaining; _ } -> t.battery_pct <- battery_remaining
  | Msg.Global_position g ->
    t.relative_alt <- float_of_int g.relative_alt_mm /. 1000.0;
    t.latitude <- Avis_geo.Geodesy.e7_to_deg g.lat_e7;
    t.longitude <- Avis_geo.Geodesy.e7_to_deg g.lon_e7;
    t.velocity <-
      ( float_of_int g.vx_cm /. 100.0,
        float_of_int g.vy_cm /. 100.0,
        float_of_int g.vz_cm /. 100.0 );
    t.heading_deg <- float_of_int g.heading_cdeg /. 100.0
  | Msg.Statustext { text; _ } -> t.statustexts <- text :: t.statustexts
  | Msg.Mission_request { seq } ->
    if t.upload = Upload_in_progress then
      if seq >= 0 && seq < Array.length t.upload_items then
        send t (Msg.Mission_item t.upload_items.(seq))
      else t.upload <- Upload_failed
  | Msg.Mission_ack { accepted } ->
    if t.upload = Upload_in_progress then
      t.upload <- (if accepted then Upload_done else Upload_failed)
  | Msg.Command_ack { command; accepted } ->
    t.command_acks <- (command, accepted) :: t.command_acks
  | Msg.Param_value { name; value; _ } ->
    t.params <- (name, value) :: List.remove_assoc name t.params
  | Msg.Set_mode _ | Msg.Mission_count _ | Msg.Mission_item _
  | Msg.Mission_current _ | Msg.Command_long _ | Msg.Param_request_list
  | Msg.Param_set _ ->
    (* Vehicle-to-GCS traffic never carries these; ignore. *)
    ()

let poll t =
  let bytes = Link.receive t.link Link.Gcs_end in
  let frames = Frame.feed t.decoder bytes in
  let msgs = List.map (fun f -> f.Frame.message) frames in
  List.iter (handle t) msgs;
  msgs

let relative_alt t = t.relative_alt
let latitude t = t.latitude
let longitude t = t.longitude
let velocity t = t.velocity
let heading_deg t = t.heading_deg
let vehicle_mode t = t.vehicle_mode
let armed t = t.armed
let battery_remaining_pct t = t.battery_pct
let statustexts t = List.rev t.statustexts

let start_mission_upload t items =
  if t.upload = Upload_in_progress then
    invalid_arg "Gcs.start_mission_upload: upload already in progress";
  t.upload_items <- Array.of_list items;
  t.upload <- Upload_in_progress;
  send t (Msg.Mission_count { count = List.length items })

let upload_state t = t.upload

let send_command t ~command ?(param2 = 0.0) ?(param3 = 0.0) ?(param4 = 0.0) ~param1 () =
  t.command_acks <- List.remove_assoc command t.command_acks;
  send t (Msg.Command_long { command; param1; param2; param3; param4 })

let command_ack t ~command = List.assoc_opt command t.command_acks

let request_mode t mode = send t (Msg.Set_mode { custom_mode = mode })

let set_param t ~name ~value = send t (Msg.Param_set { name; value })

let request_param_list t = send t Msg.Param_request_list

let param t name = List.assoc_opt name t.params

let params t = t.params
