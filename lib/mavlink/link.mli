(** In-memory duplex byte link between the ground-control station and the
    vehicle.

    The paper's monitor copes with "slight delays between the workload
    sending and the firmware receiving messages" introduced by the OS
    scheduler; the link reproduces that nondeterminism deterministically: an
    optional jitter source delays each chunk by a small random number of
    simulation steps. *)

type endpoint = Gcs_end | Vehicle_end

type t

val create : ?jitter:Avis_util.Rng.t * int -> unit -> t
(** [create ~jitter:(rng, max_steps) ()] delays each sent chunk by a uniform
    0..max_steps steps. Without [jitter], delivery happens on the next
    step. *)

type snapshot
(** In-flight chunks, delivery clocks and the jitter RNG, frozen. *)

val snapshot : t -> snapshot
val restore : snapshot -> t

val send : t -> endpoint -> string -> unit
(** Queue bytes from the given endpoint towards the other side. *)

val step : t -> unit
(** Advance one simulation step; due chunks become receivable. *)

val receive : t -> endpoint -> string
(** Drain all bytes that have arrived at the given endpoint. *)

val in_flight : t -> int
(** Chunks queued in either direction, for diagnostics. *)
