(** In-memory duplex byte link between the ground-control station and the
    vehicle.

    The paper's monitor copes with "slight delays between the workload
    sending and the firmware receiving messages" introduced by the OS
    scheduler; the link reproduces that nondeterminism deterministically: an
    optional jitter source delays each chunk by a small random number of
    simulation steps.

    On top of jitter the link carries a schedulable fault plan. A
    {!fault_profile} degrades the channel probabilistically (chunk drop,
    single-byte corruption, duplication) from a dedicated fault RNG, and
    {!outage} windows silence it entirely for a span of steps. Outages are
    deterministic and consume no randomness, which is what makes them
    substitutable on {!restore}: a forked run that schedules a different
    outage window replays all surviving traffic bit-identically. *)

type endpoint = Gcs_end | Vehicle_end

type fault_profile = {
  drop : float;  (** probability a sent chunk vanishes *)
  corrupt : float;  (** probability one byte of a chunk is flipped *)
  duplicate : float;  (** probability a chunk is delivered twice *)
}

val no_faults : fault_profile
(** All probabilities zero: a clean channel. *)

val probabilistic : fault_profile -> bool
(** [true] iff any probability is positive, i.e. the profile consumes the
    fault RNG. Probabilistic channels are excluded from prefix-cache forks. *)

type outage = { from_step : int; until_step : int }
(** Chunks sent at step [s] with [from_step <= s < until_step] are dropped.
    Judged at send time: bytes already in flight still arrive. *)

type t

val create :
  ?jitter:Avis_util.Rng.t * int ->
  ?faults:fault_profile * Avis_util.Rng.t ->
  ?outages:outage list ->
  unit ->
  t
(** [create ~jitter:(rng, max_steps) ()] delays each sent chunk by a uniform
    0..max_steps steps. Without [jitter], delivery happens on the next step.
    [faults] attaches a probabilistic degradation profile with its own RNG
    (ignored when the profile is {!no_faults}); [outages] schedules silent
    windows. *)

type snapshot
(** In-flight chunks, delivery clocks, fault counters and both RNGs,
    frozen. *)

val snapshot : t -> snapshot

val restore : ?outages:outage list -> snapshot -> t
(** Rebuild the link; [outages], when given, substitutes the outage
    schedule — the link half of the simulator's fork operation. *)

val encode_snapshot : Buffer.t -> snapshot -> unit
val decode_snapshot : Avis_util.Codec.reader -> snapshot

val to_bytes : snapshot -> string
(** Versioned binary form of a snapshot: both RNGs, in-flight chunks,
    outage schedule, clocks and fault counters. *)

val of_bytes : string -> snapshot
(** Inverse of {!to_bytes}; raises [Avis_util.Codec.Corrupt] on malformed
    input. *)

val send : t -> endpoint -> string -> unit
(** Queue bytes from the given endpoint towards the other side, subject to
    the fault plan. *)

val step : t -> unit
(** Advance one simulation step; due chunks become receivable. *)

val receive : t -> endpoint -> string
(** Drain all bytes that have arrived at the given endpoint. *)

val in_flight : t -> int
(** Chunks queued in either direction, for diagnostics. *)

val profile : t -> fault_profile
(** The active fault profile ({!no_faults} when none was attached). *)

val outages : t -> outage list
(** The scheduled outage windows. *)

val dropped : t -> int
(** Chunks dropped so far (by outage windows or the drop probability). *)

val corrupted : t -> int
(** Chunks whose payload was corrupted so far. *)

val duplicated : t -> int
(** Chunks delivered twice so far. *)
