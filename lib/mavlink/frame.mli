(** Frame-level encoding and a resynchronising streaming decoder.

    Frames follow MAVLink 1's layout: a start byte, length, sequence number,
    system/component ids, message id, payload, and a 16-bit X25 checksum
    that also covers a per-message-type extra byte. The decoder consumes a
    byte stream, skips garbage until a start byte, and validates checksums,
    so a corrupted or truncated frame is dropped rather than mis-parsed. *)

type frame = { seq : int; sysid : int; compid : int; message : Msg.t }

val stx : char
(** Start-of-frame marker. *)

val encode : seq:int -> sysid:int -> compid:int -> Msg.t -> string
(** A complete wire frame. *)

type decoder

val decoder : unit -> decoder

val copy_decoder : decoder -> decoder
(** An independent copy of the decoder's buffered bytes and drop count. *)

val encode_decoder : Buffer.t -> decoder -> unit
(** Binary layout: buffered bytes plus the drop counter. *)

val decode_decoder : Avis_util.Codec.reader -> decoder
(** Inverse of {!encode_decoder}; raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val feed : decoder -> string -> frame list
(** Push received bytes; returns the frames completed by this chunk, in
    order. Frames with bad checksums or unknown message ids are counted and
    discarded. *)

val dropped : decoder -> int
(** Number of frames discarded so far (bad CRC, unknown id, or garbage). *)
