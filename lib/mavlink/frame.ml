type frame = { seq : int; sysid : int; compid : int; message : Msg.t }

let stx = '\xFE'

let encode ~seq ~sysid ~compid msg =
  let payload = Msg.encode_payload msg in
  let msg_id = Msg.msg_id msg in
  let len = String.length payload in
  if len > 255 then invalid_arg "Frame.encode: payload too long";
  let header =
    let b = Buffer.create 6 in
    Buffer.add_char b stx;
    Buffer.add_char b (Char.chr len);
    Buffer.add_char b (Char.chr (seq land 0xFF));
    Buffer.add_char b (Char.chr (sysid land 0xFF));
    Buffer.add_char b (Char.chr (compid land 0xFF));
    Buffer.add_char b (Char.chr (msg_id land 0xFF));
    Buffer.contents b
  in
  (* The checksum covers everything after STX plus the crc_extra byte. *)
  let crc = Crc.init () in
  let crc = Crc.accumulate_string crc (String.sub header 1 (String.length header - 1)) in
  let crc = Crc.accumulate_string crc payload in
  let crc = Crc.accumulate crc (Char.chr (Msg.crc_extra msg_id)) in
  let sum = Crc.value crc in
  let out = Buffer.create (String.length header + len + 2) in
  Buffer.add_string out header;
  Buffer.add_string out payload;
  Buffer.add_char out (Char.chr (sum land 0xFF));
  Buffer.add_char out (Char.chr ((sum lsr 8) land 0xFF));
  Buffer.contents out

type decoder = { mutable buffer : string; mutable dropped : int }

let decoder () = { buffer = ""; dropped = 0 }

let copy_decoder d = { buffer = d.buffer; dropped = d.dropped }

let encode_decoder b d =
  Avis_util.Codec.w_string b d.buffer;
  Avis_util.Codec.w_int b d.dropped

let decode_decoder r =
  let buffer = Avis_util.Codec.r_string r in
  let dropped = Avis_util.Codec.r_int r in
  { buffer; dropped }

let dropped d = d.dropped

(* Attempt to parse one frame at the head of the buffer. Returns
   [`Frame (frame, consumed)], [`Skip n] to drop n garbage/bad bytes, or
   [`Need_more]. *)
let parse_head d =
  let buf = d.buffer in
  let len_buf = String.length buf in
  if len_buf = 0 then `Need_more
  else if buf.[0] <> stx then
    (* Resynchronise: drop everything up to the next STX. *)
    match String.index_opt buf stx with
    | Some i -> `Skip i
    | None -> `Skip len_buf
  else if len_buf < 6 then `Need_more
  else
    let payload_len = Char.code buf.[1] in
    let total = 6 + payload_len + 2 in
    if len_buf < total then `Need_more
    else
      let seq = Char.code buf.[2] in
      let sysid = Char.code buf.[3] in
      let compid = Char.code buf.[4] in
      let msg_id = Char.code buf.[5] in
      let payload = String.sub buf 6 payload_len in
      let crc = Crc.init () in
      let crc = Crc.accumulate_string crc (String.sub buf 1 (4 + payload_len + 1)) in
      let crc = Crc.accumulate crc (Char.chr (Msg.crc_extra msg_id)) in
      let expect = Crc.value crc in
      let got =
        Char.code buf.[6 + payload_len] lor (Char.code buf.[6 + payload_len + 1] lsl 8)
      in
      if expect <> got then begin
        d.dropped <- d.dropped + 1;
        (* Skip just the STX so an embedded real frame can still be found. *)
        `Skip 1
      end
      else begin
        match Msg.decode_payload ~msg_id payload with
        | Some message -> `Frame ({ seq; sysid; compid; message }, total)
        | None ->
          d.dropped <- d.dropped + 1;
          `Skip total
      end

let feed d chunk =
  d.buffer <- d.buffer ^ chunk;
  let rec drain acc =
    match parse_head d with
    | `Need_more -> List.rev acc
    | `Skip n ->
      d.buffer <- String.sub d.buffer n (String.length d.buffer - n);
      if n = 0 then List.rev acc else drain acc
    | `Frame (f, consumed) ->
      d.buffer <- String.sub d.buffer consumed (String.length d.buffer - consumed);
      drain (f :: acc)
  in
  drain []
