(** The MAVLink-style message set.

    This is a faithful subset of MAVLink 1 message *semantics* — the
    messages, fields and transaction rules the paper's workload framework
    has to deal with (most importantly the multi-message mission-upload
    handshake). Wire compatibility with real MAVLink is a non-goal: the
    framing, CRC style and little-endian packing match, but message layouts
    are our own, so the dialect is self-consistent rather than
    interoperable. *)

type mission_item = {
  seq : int;
  command : int;  (** MAV_CMD numeric id; see the [cmd_*] constants. *)
  param1 : float;
  x : float;  (** Latitude, degrees. *)
  y : float;  (** Longitude, degrees. *)
  z : float;  (** Altitude, metres above home. *)
}

val encode_mission_item : Buffer.t -> mission_item -> unit
val decode_mission_item : Avis_util.Codec.reader -> mission_item
(** Binary layout for snapshot persistence (not the wire format). *)

val cmd_waypoint : int
val cmd_takeoff : int
val cmd_land : int
val cmd_return_to_launch : int
val cmd_arm_disarm : int
val cmd_reposition : int

type severity = Emergency | Alert | Critical | Error | Warning | Notice | Info

type t =
  | Heartbeat of { custom_mode : int; armed : bool; system_status : int }
  | Sys_status of { voltage_mv : int; battery_remaining : int }
  | Set_mode of { custom_mode : int }
  | Mission_count of { count : int }
  | Mission_request of { seq : int }
  | Mission_item of mission_item
  | Mission_ack of { accepted : bool }
  | Mission_current of { seq : int }
  | Command_long of {
      command : int;
      param1 : float;
      param2 : float;
      param3 : float;
      param4 : float;
    }
  | Command_ack of { command : int; accepted : bool }
  | Global_position of {
      time_boot_ms : int;
      lat_e7 : int;
      lon_e7 : int;
      relative_alt_mm : int;
      vx_cm : int;
      vy_cm : int;
      vz_cm : int;
      heading_cdeg : int;
    }
  | Statustext of { severity : severity; text : string }
  | Param_request_list
  | Param_value of { name : string; value : float; index : int; count : int }
  | Param_set of { name : string; value : float }

val msg_id : t -> int

val encode_payload : t -> string

val decode_payload : msg_id:int -> string -> t option
(** [None] when the id is unknown or the payload is malformed. *)

val crc_extra : int -> int
(** Per-message-id CRC seed byte, as in MAVLink's packet signing of message
    layouts. Unknown ids get 0. *)

val describe : t -> string
(** One-line human-readable rendering for logs. *)
