type endpoint = Gcs_end | Vehicle_end

type chunk = { deliver_at : int; data : string }

type t = {
  jitter : (Avis_util.Rng.t * int) option;
  mutable now : int;
  mutable to_vehicle : chunk list; (* newest first *)
  mutable to_gcs : chunk list;
  mutable last_to_vehicle : int;
  mutable last_to_gcs : int;
}

let create ?jitter () =
  { jitter; now = 0; to_vehicle = []; to_gcs = []; last_to_vehicle = 0;
    last_to_gcs = 0 }

type snapshot = t

let copy t =
  (* Chunk records are immutable; the queues can be shared structurally. *)
  {
    jitter =
      (match t.jitter with
      | None -> None
      | Some (rng, max_steps) -> Some (Avis_util.Rng.copy rng, max_steps));
    now = t.now;
    to_vehicle = t.to_vehicle;
    to_gcs = t.to_gcs;
    last_to_vehicle = t.last_to_vehicle;
    last_to_gcs = t.last_to_gcs;
  }

let snapshot = copy
let restore = copy

let delay t =
  match t.jitter with
  | None -> 1
  | Some (rng, max_steps) -> 1 + Avis_util.Rng.int rng (max_steps + 1)

let send t from data =
  if data <> "" then begin
    (* A byte stream never reorders: each chunk's delivery time is at
       least the previous chunk's in the same direction. *)
    let at = t.now + delay t in
    let at =
      match from with
      | Gcs_end ->
        let at = max at t.last_to_vehicle in
        t.last_to_vehicle <- at;
        at
      | Vehicle_end ->
        let at = max at t.last_to_gcs in
        t.last_to_gcs <- at;
        at
    in
    let chunk = { deliver_at = at; data } in
    match from with
    | Gcs_end -> t.to_vehicle <- chunk :: t.to_vehicle
    | Vehicle_end -> t.to_gcs <- chunk :: t.to_gcs
  end

let step t = t.now <- t.now + 1

let receive t at =
  let queue = match at with Gcs_end -> t.to_gcs | Vehicle_end -> t.to_vehicle in
  let due, pending = List.partition (fun c -> c.deliver_at <= t.now) queue in
  (match at with
  | Gcs_end -> t.to_gcs <- pending
  | Vehicle_end -> t.to_vehicle <- pending);
  (* Queues are newest-first; restore send order, then stably order by
     delivery time so jittered chunks cannot overtake within a step. *)
  let ordered =
    List.stable_sort (fun a b -> compare a.deliver_at b.deliver_at) (List.rev due)
  in
  String.concat "" (List.map (fun c -> c.data) ordered)

let in_flight t = List.length t.to_vehicle + List.length t.to_gcs
