type endpoint = Gcs_end | Vehicle_end

type chunk = { deliver_at : int; data : string }

type fault_profile = { drop : float; corrupt : float; duplicate : float }

let no_faults = { drop = 0.0; corrupt = 0.0; duplicate = 0.0 }

let probabilistic p = p.drop > 0.0 || p.corrupt > 0.0 || p.duplicate > 0.0

type outage = { from_step : int; until_step : int }

type t = {
  jitter : (Avis_util.Rng.t * int) option;
  faults : (fault_profile * Avis_util.Rng.t) option;
  mutable outages : outage list;
  mutable now : int;
  mutable to_vehicle : chunk list; (* newest first *)
  mutable to_gcs : chunk list;
  mutable last_to_vehicle : int;
  mutable last_to_gcs : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
}

let create ?jitter ?faults ?(outages = []) () =
  let faults =
    match faults with
    | Some (profile, _) when not (probabilistic profile) -> None
    | _ -> faults
  in
  { jitter; faults; outages; now = 0; to_vehicle = []; to_gcs = [];
    last_to_vehicle = 0; last_to_gcs = 0; dropped = 0; corrupted = 0;
    duplicated = 0 }

type snapshot = t

let copy ?outages t =
  (* Chunk and outage records are immutable; the lists can be shared
     structurally. *)
  {
    jitter =
      (match t.jitter with
      | None -> None
      | Some (rng, max_steps) -> Some (Avis_util.Rng.copy rng, max_steps));
    faults =
      (match t.faults with
      | None -> None
      | Some (profile, rng) -> Some (profile, Avis_util.Rng.copy rng));
    outages = (match outages with Some o -> o | None -> t.outages);
    now = t.now;
    to_vehicle = t.to_vehicle;
    to_gcs = t.to_gcs;
    last_to_vehicle = t.last_to_vehicle;
    last_to_gcs = t.last_to_gcs;
    dropped = t.dropped;
    corrupted = t.corrupted;
    duplicated = t.duplicated;
  }

let snapshot t = copy t
let restore ?outages snap = copy ?outages snap

let encode_chunk b c =
  Avis_util.Codec.w_int b c.deliver_at;
  Avis_util.Codec.w_string b c.data

let decode_chunk r =
  let deliver_at = Avis_util.Codec.r_int r in
  let data = Avis_util.Codec.r_string r in
  { deliver_at; data }

let encode_snapshot b (s : snapshot) =
  let open Avis_util.Codec in
  w_version b 1;
  w_option b
    (fun b (rng, max_steps) ->
      w_i64 b (Avis_util.Rng.to_bits rng);
      w_int b max_steps)
    s.jitter;
  w_option b
    (fun b (p, rng) ->
      w_f64 b p.drop;
      w_f64 b p.corrupt;
      w_f64 b p.duplicate;
      w_i64 b (Avis_util.Rng.to_bits rng))
    s.faults;
  w_list b
    (fun b o ->
      w_int b o.from_step;
      w_int b o.until_step)
    s.outages;
  w_int b s.now;
  w_list b encode_chunk s.to_vehicle;
  w_list b encode_chunk s.to_gcs;
  w_int b s.last_to_vehicle;
  w_int b s.last_to_gcs;
  w_int b s.dropped;
  w_int b s.corrupted;
  w_int b s.duplicated

let decode_snapshot r : snapshot =
  let open Avis_util.Codec in
  let (_ : int) = r_version r ~expect:1 in
  let jitter =
    r_option r (fun r ->
        let rng = Avis_util.Rng.of_bits (r_i64 r) in
        let max_steps = r_int r in
        (rng, max_steps))
  in
  let faults =
    r_option r (fun r ->
        let drop = r_f64 r in
        let corrupt = r_f64 r in
        let duplicate = r_f64 r in
        let rng = Avis_util.Rng.of_bits (r_i64 r) in
        ({ drop; corrupt; duplicate }, rng))
  in
  let outages =
    r_list r (fun r ->
        let from_step = r_int r in
        let until_step = r_int r in
        { from_step; until_step })
  in
  let now = r_int r in
  let to_vehicle = r_list r decode_chunk in
  let to_gcs = r_list r decode_chunk in
  let last_to_vehicle = r_int r in
  let last_to_gcs = r_int r in
  let dropped = r_int r in
  let corrupted = r_int r in
  let duplicated = r_int r in
  {
    jitter;
    faults;
    outages;
    now;
    to_vehicle;
    to_gcs;
    last_to_vehicle;
    last_to_gcs;
    dropped;
    corrupted;
    duplicated;
  }

let to_bytes s = Avis_util.Codec.to_string encode_snapshot s
let of_bytes data = Avis_util.Codec.of_string decode_snapshot data

let delay t =
  match t.jitter with
  | None -> 1
  | Some (rng, max_steps) -> 1 + Avis_util.Rng.int rng (max_steps + 1)

let in_outage t =
  List.exists (fun o -> o.from_step <= t.now && t.now < o.until_step) t.outages

let corrupt_byte rng data =
  let i = Avis_util.Rng.int rng (String.length data) in
  let b = Bytes.of_string data in
  let flipped = Char.code (Bytes.get b i) lxor (1 + Avis_util.Rng.int rng 255) in
  Bytes.set b i (Char.chr flipped);
  Bytes.to_string b

let enqueue t from chunk =
  match from with
  | Gcs_end -> t.to_vehicle <- chunk :: t.to_vehicle
  | Vehicle_end -> t.to_gcs <- chunk :: t.to_gcs

let send t from data =
  if data <> "" then begin
    (* Scheduled outage windows silence the channel without consuming any
       randomness, so a fork that substitutes a different outage schedule
       (Sim.restore ?link_outages) replays the surviving traffic
       bit-identically. *)
    if in_outage t then begin
      t.dropped <- t.dropped + 1;
      Avis_util.Trace.counter "link.dropped" (float_of_int t.dropped)
    end
    else begin
      (* The probabilistic path draws a fixed number of variates per chunk
         (three decisions, plus two more only when corrupting) so the fault
         RNG stream is a pure function of the traffic that reaches it. *)
      let data, duplicate =
        match t.faults with
        | None -> (Some data, false)
        | Some (profile, rng) ->
          let d = Avis_util.Rng.float rng 1.0 in
          let c = Avis_util.Rng.float rng 1.0 in
          let u = Avis_util.Rng.float rng 1.0 in
          if d < profile.drop then begin
            t.dropped <- t.dropped + 1;
            Avis_util.Trace.counter "link.dropped" (float_of_int t.dropped);
            (None, false)
          end
          else begin
            let data =
              if c < profile.corrupt then begin
                t.corrupted <- t.corrupted + 1;
                Avis_util.Trace.counter "link.corrupted"
                  (float_of_int t.corrupted);
                corrupt_byte rng data
              end
              else data
            in
            let duplicate = u < profile.duplicate in
            if duplicate then begin
              t.duplicated <- t.duplicated + 1;
              Avis_util.Trace.counter "link.duplicated"
                (float_of_int t.duplicated)
            end;
            (Some data, duplicate)
          end
      in
      match data with
      | None -> ()
      | Some data ->
        (* A byte stream never reorders: each chunk's delivery time is at
           least the previous chunk's in the same direction. *)
        let at = t.now + delay t in
        let at =
          match from with
          | Gcs_end ->
            let at = max at t.last_to_vehicle in
            t.last_to_vehicle <- at;
            at
          | Vehicle_end ->
            let at = max at t.last_to_gcs in
            t.last_to_gcs <- at;
            at
        in
        let chunk = { deliver_at = at; data } in
        enqueue t from chunk;
        if duplicate then enqueue t from chunk
    end
  end

let step t = t.now <- t.now + 1

let receive t at =
  let queue = match at with Gcs_end -> t.to_gcs | Vehicle_end -> t.to_vehicle in
  let due, pending = List.partition (fun c -> c.deliver_at <= t.now) queue in
  (match at with
  | Gcs_end -> t.to_gcs <- pending
  | Vehicle_end -> t.to_vehicle <- pending);
  (* Queues are newest-first; restore send order, then stably order by
     delivery time so jittered chunks cannot overtake within a step. *)
  let ordered =
    List.stable_sort (fun a b -> compare a.deliver_at b.deliver_at) (List.rev due)
  in
  String.concat "" (List.map (fun c -> c.data) ordered)

let in_flight t = List.length t.to_vehicle + List.length t.to_gcs

let profile t = match t.faults with None -> no_faults | Some (p, _) -> p
let outages t = t.outages
let dropped t = t.dropped
let corrupted t = t.corrupted
let duplicated t = t.duplicated
