(** Ground-control-station protocol driver.

    Wraps one end of a {!Link} with frame encoding/decoding, telemetry
    caching, and the stateful transactions a workload needs: the
    mission-upload handshake (COUNT → REQUEST… → ITEM… → ACK), long
    commands with acknowledgements, and mode changes. All operations are
    non-blocking — [poll] must be called every simulation step, and
    completion is observed through the state accessors. This is exactly the
    structure the paper's workload framework exists to hide; the high-level
    blocking API lives in [Avis_core.Workload]. *)

type t

val create : ?sysid:int -> ?compid:int -> Link.t -> t
(** Attach to the GCS end of a link. *)

type snapshot
(** Telemetry cache, transaction state and decoder, frozen. *)

val snapshot : t -> snapshot

val restore : link:Link.t -> snapshot -> t
(** Rebuild a GCS attached to [link] (the restored copy of the link the
    snapshot was taken over). *)

val poll : t -> Msg.t list
(** Ingest everything that arrived since the last poll, update cached
    telemetry, answer mission-upload requests, and return the decoded
    messages for custom handling. Call once per simulation step. *)

val send : t -> Msg.t -> unit
(** Fire-and-forget send (framed with the next sequence number). *)

(** {2 Cached telemetry} *)

val relative_alt : t -> float
(** Metres above home from the latest position message (0 before any). *)

val latitude : t -> float
val longitude : t -> float
val velocity : t -> float * float * float
(** North/east/up velocity, m/s. *)

val heading_deg : t -> float
val vehicle_mode : t -> int option
val armed : t -> bool
val battery_remaining_pct : t -> int
val statustexts : t -> string list
(** All STATUSTEXT strings received so far, oldest first. *)

(** {2 Transactions} *)

type upload_state = Upload_idle | Upload_in_progress | Upload_done | Upload_failed

val start_mission_upload : t -> Msg.mission_item list -> unit
(** Begin the mission-upload handshake. Raises [Invalid_argument] if an
    upload is already in progress. *)

val upload_state : t -> upload_state

val send_command :
  t ->
  command:int ->
  ?param2:float ->
  ?param3:float ->
  ?param4:float ->
  param1:float ->
  unit ->
  unit
(** COMMAND_LONG; the acknowledgement is observable via [command_ack]. *)

val command_ack : t -> command:int -> bool option
(** [Some accepted] once an ack for [command] has arrived. *)

val request_mode : t -> int -> unit
(** SET_MODE; confirmation arrives via the heartbeat's custom mode. *)

val set_param : t -> name:string -> value:float -> unit
(** PARAM_SET; the vehicle echoes a PARAM_VALUE observable via [param]. *)

val request_param_list : t -> unit

val param : t -> string -> float option
(** Latest PARAM_VALUE received for a name. *)

val params : t -> (string * float) list
(** Every parameter seen so far. *)
