(** Ground-control-station protocol driver.

    Wraps one end of a {!Link} with frame encoding/decoding, telemetry
    caching, and the stateful transactions a workload needs: the
    mission-upload handshake (COUNT → REQUEST… → ITEM… → ACK), long
    commands with acknowledgements, and mode changes. All operations are
    non-blocking — [tick] must be called every simulation step, and
    completion is observed through the state accessors. This is exactly the
    structure the paper's workload framework exists to hide; the high-level
    blocking API lives in [Avis_core.Workload].

    Transactions survive a lossy link: the upload handshake, long commands
    and mode changes are retransmitted with exponential backoff a bounded
    number of times, after which they resolve to an explicit timeout
    ([Upload_timed_out] / {!Tx_timed_out}) instead of hanging forever. The
    GCS also beacons its own 1 Hz heartbeat so the vehicle can detect
    datalink loss. *)

type t

val create : ?sysid:int -> ?compid:int -> Link.t -> t
(** Attach to the GCS end of a link. *)

type snapshot
(** Telemetry cache, transaction state and decoder, frozen. *)

val snapshot : t -> snapshot

val restore : link:Link.t -> snapshot -> t
(** Rebuild a GCS attached to [link] (the restored copy of the link the
    snapshot was taken over). *)

val encode_snapshot : Buffer.t -> snapshot -> unit
(** Versioned binary layout of the full snapshot (telemetry cache,
    transaction state, decoder). Floats are written bit-exactly. *)

val decode_snapshot : link:Link.t -> Avis_util.Codec.reader -> snapshot
(** Inverse of {!encode_snapshot}; the decoded snapshot is attached to
    [link] when passed to {!restore}. Raises [Avis_util.Codec.Corrupt] on
    malformed input. *)

val to_bytes : snapshot -> string

val of_bytes : link:Link.t -> string -> snapshot
(** Raises [Avis_util.Codec.Corrupt] on malformed input. *)

val tick : t -> time:float -> Msg.t list
(** Run one GCS scheduling slice at simulated [time]: ingest everything
    that arrived since the last tick, emit the periodic GCS heartbeat,
    retransmit overdue transactions, and return the decoded messages for
    custom handling. Call once per simulation step. *)

val poll : t -> Msg.t list
(** Ingest and decode only, without heartbeats or retransmission — [tick]
    minus the time-driven behaviour, for tests that drive the link by
    hand. *)

val send : t -> Msg.t -> unit
(** Fire-and-forget send (framed with the next sequence number). *)

(** {2 Cached telemetry} *)

val relative_alt : t -> float
(** Metres above home from the latest position message (0 before any). *)

val latitude : t -> float
val longitude : t -> float
val velocity : t -> float * float * float
(** North/east/up velocity, m/s. *)

val heading_deg : t -> float
val vehicle_mode : t -> int option
val armed : t -> bool
val battery_remaining_pct : t -> int
val statustexts : t -> string list
(** All STATUSTEXT strings received so far, oldest first. *)

(** {2 Transactions} *)

type upload_state =
  | Upload_idle
  | Upload_in_progress
  | Upload_done
  | Upload_failed
  | Upload_timed_out
      (** Retransmission budget exhausted without progress: the link is
          effectively dead, give up cleanly. *)

type tx_status = Tx_pending | Tx_acked of bool | Tx_timed_out
(** Outcome of a retried transaction. *)

val start_mission_upload : t -> Msg.mission_item list -> unit
(** Begin the mission-upload handshake. Lost COUNT/ITEM chunks are
    retransmitted with exponential backoff; each MISSION_REQUEST from the
    vehicle resets the budget. Raises [Invalid_argument] if an upload is
    already in progress. *)

val upload_state : t -> upload_state

val send_command :
  t ->
  command:int ->
  ?param2:float ->
  ?param3:float ->
  ?param4:float ->
  param1:float ->
  unit ->
  unit
(** COMMAND_LONG, retried until acknowledged or the retry budget runs out;
    the outcome is observable via [command_status]. *)

val command_ack : t -> command:int -> bool option
(** [Some accepted] once an ack for [command] has arrived. *)

val command_status : t -> command:int -> tx_status
(** Resolution of the most recent [send_command] for [command]:
    [Tx_pending] while (re)transmission is in flight, [Tx_acked] once the
    vehicle answered, [Tx_timed_out] when the retry budget ran dry. A
    command never sent reads as [Tx_pending]. *)

val request_mode : t -> int -> unit
(** SET_MODE, retried until a heartbeat shows the vehicle left the mode it
    was in at request time (the requested mode itself may never appear:
    AUTO resolves to a mission phase code). *)

val mode_status : t -> tx_status
(** Resolution of the most recent [request_mode]; [Tx_acked true] when
    nothing is outstanding. *)

val set_param : t -> name:string -> value:float -> unit
(** PARAM_SET; the vehicle echoes a PARAM_VALUE observable via [param]. *)

val request_param_list : t -> unit

val param : t -> string -> float option
(** Latest PARAM_VALUE received for a name. *)

val params : t -> (string * float) list
(** Every parameter seen so far. *)
