lib/sensors/suite.mli: Avis_physics Avis_util Sensor
