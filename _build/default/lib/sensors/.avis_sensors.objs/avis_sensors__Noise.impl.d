lib/sensors/noise.ml: Avis_util
