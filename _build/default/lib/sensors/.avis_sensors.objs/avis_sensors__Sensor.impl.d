lib/sensors/sensor.ml: Avis_geo Format Printf Vec3
