lib/sensors/sensor.mli: Avis_geo Format Vec3
