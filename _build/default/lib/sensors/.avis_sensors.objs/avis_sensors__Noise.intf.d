lib/sensors/noise.mli: Avis_util
