lib/sensors/suite.ml: Airframe Avis_geo Avis_physics Avis_util Float List Noise Quat Sensor Vec3 World
