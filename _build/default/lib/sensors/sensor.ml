open Avis_geo

type kind = Accelerometer | Gyroscope | Gps | Compass | Barometer | Battery

let all_kinds = [ Accelerometer; Gyroscope; Gps; Compass; Barometer; Battery ]

let kind_to_string = function
  | Accelerometer -> "accelerometer"
  | Gyroscope -> "gyroscope"
  | Gps -> "gps"
  | Compass -> "compass"
  | Barometer -> "barometer"
  | Battery -> "battery"

let kind_of_string = function
  | "accelerometer" -> Some Accelerometer
  | "gyroscope" -> Some Gyroscope
  | "gps" -> Some Gps
  | "compass" -> Some Compass
  | "barometer" -> Some Barometer
  | "battery" -> Some Battery
  | _ -> None

type role = Primary | Backup

type id = { kind : kind; index : int }

let role_of id = if id.index = 0 then Primary else Backup

let id_to_string id = Printf.sprintf "%s[%d]" (kind_to_string id.kind) id.index

let compare_id a b =
  match compare a.kind b.kind with 0 -> compare a.index b.index | c -> c

let equal_id a b = compare_id a b = 0

type reading =
  | Accel of Vec3.t
  | Gyro of Vec3.t
  | Gps_fix of { position : Vec3.t; velocity : Vec3.t; hdop : float }
  | Heading of float
  | Pressure_alt of float
  | Battery_state of { voltage : float; remaining : float }

let reading_kind = function
  | Accel _ -> Accelerometer
  | Gyro _ -> Gyroscope
  | Gps_fix _ -> Gps
  | Heading _ -> Compass
  | Pressure_alt _ -> Barometer
  | Battery_state _ -> Battery

let pp_reading ppf = function
  | Accel v -> Format.fprintf ppf "accel %a" Vec3.pp v
  | Gyro v -> Format.fprintf ppf "gyro %a" Vec3.pp v
  | Gps_fix { position; velocity; hdop } ->
    Format.fprintf ppf "gps pos=%a vel=%a hdop=%.2f" Vec3.pp position Vec3.pp
      velocity hdop
  | Heading h -> Format.fprintf ppf "heading %.3f rad" h
  | Pressure_alt a -> Format.fprintf ppf "baro alt %.2f m" a
  | Battery_state { voltage; remaining } ->
    Format.fprintf ppf "battery %.2f V (%.0f%%)" voltage (remaining *. 100.0)
