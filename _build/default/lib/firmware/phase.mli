(** Flight phases — the firmware's operating modes.

    These are the "operating modes" Avis exploits: every phase change goes
    through the mode-update function instrumented with hinj, so each one is
    a potential fault-injection site for SABRE. Waypoint legs are separate
    modes (as in ArduPilot's AUTO sub-modes), which is why the paper's
    Table II can report windows like "Waypoint 1 → Waypoint 2". *)

type t =
  | Preflight  (** On the ground, initialising and waiting to arm. *)
  | Takeoff
  | Waypoint of int  (** 1-based leg of an uploaded mission. *)
  | Manual  (** Pilot-commanded position hold / repositioning. *)
  | Rtl  (** Return to launch. *)
  | Land
  | Landed  (** Mission complete, disarmed. *)

val label : t -> string
(** Human-readable mode label, matching the paper's vocabulary
    ("Pre-Flight", "Takeoff", "Waypoint 1", "Return To Launch", …). This is
    the string reported through hinj's mode-update call. *)

val of_label : string -> t option
(** Inverse of [label]. *)

val equal : t -> t -> bool

val is_airborne : t -> bool
(** Phases in which the vehicle is expected to be flying. *)

(** Pattern over phases, for describing bug trigger windows. *)
type pattern =
  | Any
  | Exactly of t
  | Any_waypoint
  | One_of : pattern list -> pattern

val matches : pattern -> t -> bool

val to_code : t -> int
(** Integer encoding carried in heartbeats' custom-mode field. *)

val of_code : int -> t option
