(** The firmware's tunable-parameter table.

    A small registry of the navigation parameters a ground station may read
    and write over the PARAM protocol, in ArduPilot's naming style. Each
    entry carries an accessor pair over {!Params.t} plus the valid range;
    sets outside the range are rejected (the vehicle replies with the
    unchanged value, as real firmware does). Controller *gains* are
    deliberately not exposed. *)

type entry = {
  name : string;
  get : Params.t -> float;
  set : Params.t -> float -> Params.t;
  min_value : float;
  max_value : float;
  description : string;
}

val all : entry list
(** In index order (the PARAM_VALUE index/count fields follow this). *)

val count : int

val find : string -> entry option

val index_of : string -> int option

val apply_set : Params.t -> name:string -> value:float -> (Params.t * float) option
(** [Some (params', accepted_value)] when the parameter exists; the value
    is clamped into the entry's range. [None] for unknown names. *)
