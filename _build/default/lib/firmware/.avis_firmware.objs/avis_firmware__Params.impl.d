lib/firmware/params.ml:
