lib/firmware/estimator.ml: Avis_geo Avis_physics Avis_sensors Drivers Float Params Quat Sensor Vec3
