lib/firmware/phase.mli:
