lib/firmware/param_registry.mli: Params
