lib/firmware/protocol.mli: Avis_geo Avis_mavlink Geodesy Link Msg Params Vec3
