lib/firmware/vehicle.mli: Avis_geo Avis_hinj Avis_mavlink Avis_physics Avis_sensors Bug Estimator Geodesy Link Phase Policy Vec3
