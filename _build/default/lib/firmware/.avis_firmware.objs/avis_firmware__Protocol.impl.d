lib/firmware/protocol.ml: Avis_geo Avis_mavlink Avis_util Float Frame Geodesy Link List Msg Param_registry Params Phase Vec3
