lib/firmware/pid.mli:
