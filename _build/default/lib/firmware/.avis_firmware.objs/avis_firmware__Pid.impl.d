lib/firmware/pid.ml: Avis_util
