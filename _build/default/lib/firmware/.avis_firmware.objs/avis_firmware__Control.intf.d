lib/firmware/control.mli: Avis_geo Avis_physics Estimator Params Vec3
