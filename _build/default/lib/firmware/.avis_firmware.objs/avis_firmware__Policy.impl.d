lib/firmware/policy.ml: Bug Params
