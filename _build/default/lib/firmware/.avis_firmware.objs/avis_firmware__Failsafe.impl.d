lib/firmware/failsafe.ml: Avis_sensors Bug Drivers Estimator List Phase Policy Sensor
