lib/firmware/bug.mli: Avis_sensors Phase Sensor
