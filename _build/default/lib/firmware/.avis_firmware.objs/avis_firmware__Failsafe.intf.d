lib/firmware/failsafe.mli: Bug Drivers Estimator Phase Policy
