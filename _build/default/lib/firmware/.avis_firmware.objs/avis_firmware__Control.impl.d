lib/firmware/control.ml: Array Avis_geo Avis_physics Avis_util Estimator Float Params Pid Quat Vec3
