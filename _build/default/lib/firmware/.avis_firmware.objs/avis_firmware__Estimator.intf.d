lib/firmware/estimator.mli: Avis_geo Drivers Params Quat Vec3
