lib/firmware/phase.ml: List Printf String
