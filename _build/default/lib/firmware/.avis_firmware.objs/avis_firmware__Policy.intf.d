lib/firmware/policy.mli: Bug Params
