lib/firmware/drivers.ml: Avis_geo Avis_hinj Avis_sensors Avis_util Float List Params Sensor Suite Vec3
