lib/firmware/bug.ml: Avis_sensors List Phase Sensor
