lib/firmware/drivers.mli: Avis_hinj Avis_physics Avis_sensors Avis_util Params Sensor Suite
