lib/firmware/params.mli:
