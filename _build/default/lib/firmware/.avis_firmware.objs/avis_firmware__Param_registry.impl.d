lib/firmware/param_registry.ml: Avis_util List Params
