type gps_loss_action = Gps_failsafe_land | Gps_altitude_hold

type t = {
  firmware : Bug.firmware_kind;
  name : string;
  params : Params.t;
  gps_loss_action : gps_loss_action;
  takeoff_gates : bool;
}

let apm =
  {
    firmware = Bug.Ardupilot;
    name = "ArduPilot";
    params = Params.default;
    gps_loss_action = Gps_failsafe_land;
    takeoff_gates = false;
  }

let px4 =
  {
    firmware = Bug.Px4;
    name = "PX4";
    params = Params.default;
    gps_loss_action = Gps_altitude_hold;
    takeoff_gates = true;
  }

let of_firmware = function Bug.Ardupilot -> apm | Bug.Px4 -> px4
