(** Firmware personalities.

    ArduPilot and PX4 differ, for Avis's purposes, in their mode vocabulary
    and in their failure-handling policies; this record captures those
    differences so that the rest of the flight stack is shared. Each
    personality also owns its set of reproduced bugs (see {!Bug}). *)

type gps_loss_action =
  | Gps_failsafe_land  (** ArduPilot: land in place when position is lost. *)
  | Gps_altitude_hold
      (** PX4: degrade to an altitude-hold manual mode and keep flying. *)

type t = {
  firmware : Bug.firmware_kind;
  name : string;
  params : Params.t;
  gps_loss_action : gps_loss_action;
  takeoff_gates : bool;
      (** PX4 refuses to climb until heading and altitude sources are
          valid; ArduPilot climbs regardless. *)
}

val apm : t
(** The ArduPilot-like personality. *)

val px4 : t
(** The PX4-like personality. *)

val of_firmware : Bug.firmware_kind -> t
