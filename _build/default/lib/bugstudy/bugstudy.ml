type firmware = Ardupilot_tracker | Px4_tracker

type root_cause = Semantic | Memory | Sensor_fault | Other

type reproducibility = Default_settings | Special_settings

type symptom_class = Asymptomatic | Transient | Serious_crash | Serious_fly_away

type record = {
  id : string;
  firmware : firmware;
  root_cause : root_cause;
  reproducibility : reproducibility;
  symptom : symptom_class;
  summary : string;
}

(* Summary templates per category; records cycle through them so the
   dataset reads plausibly without reproducing tracker text. *)
let semantic_summaries =
  [|
    "mission item index off by one after upload";
    "unit conversion error in reported ground speed";
    "log message printed with wrong severity";
    "parameter range check missing on rate limit";
    "waypoint acceptance radius ignored for spline legs";
    "heading displayed in radians in telemetry view";
    "gradual drift during long loiter from integrator preload";
    "unimplemented command acknowledged as accepted";
    "altitude offset applied twice in terrain following";
    "stale copy of home position used after in-flight reset";
  |]

let memory_summaries =
  [|
    "buffer overrun parsing oversized telemetry frame";
    "use-after-free in logging backend on unmount";
    "stack overflow in recursive mission validation";
    "uninitialised covariance matrix read on cold start";
  |]

let sensor_summaries =
  [|
    "IMU failure at low altitude triggers GPS-altitude climb";
    "baro glitch mid-cruise switches to raw GPS altitude";
    "compass loss between waypoints freezes heading estimate";
    "GPS loss during position hold keeps controller engaged";
    "accelerometer clipping mishandled during landing flare";
    "gyro dropout at takeoff leaves rate loop open";
    "battery monitor brown-out triggers blind failsafe";
    "rangefinder timeout treated as zero altitude";
    "airspeed sensor ice-up drives pitch oscillation";
    "magnetometer interference misread as yaw step";
  |]

let other_summaries =
  [|
    "race between mode change and mission advance";
    "deadlock between logging thread and sensor driver";
    "watchdog reset during parameter flash write";
    "scheduler overrun starves telemetry task";
  |]

(* Category counts chosen to match the paper's reported statistics over
   215 bugs: 68 % semantic, 20 % sensor (44), the rest memory/other;
   sensor bugs are 40 % of crash-causing bugs, 47 % default-reproducible,
   34 % serious; 90 % of semantic bugs are asymptomatic. *)
type spec = {
  cause : root_cause;
  count : int;
  symptoms : (symptom_class * int) list;
  default_reproducible : int;
  summaries : string array;
}

let specs =
  [
    {
      cause = Semantic;
      count = 146;
      (* 90 % asymptomatic; 9 crashes keep sensor at 40 % of crashes. *)
      symptoms =
        [ (Asymptomatic, 131); (Transient, 5); (Serious_crash, 9); (Serious_fly_away, 1) ];
      default_reproducible = 95;
      summaries = semantic_summaries;
    }
    ;
    {
      cause = Sensor_fault;
      count = 44;
      (* 15/44 serious (34 %), 12 of them crashes. *)
      symptoms =
        [ (Asymptomatic, 11); (Transient, 18); (Serious_crash, 12); (Serious_fly_away, 3) ];
      default_reproducible = 21;
      summaries = sensor_summaries;
    }
    ;
    {
      cause = Memory;
      count = 12;
      symptoms =
        [ (Asymptomatic, 4); (Transient, 2); (Serious_crash, 5); (Serious_fly_away, 1) ];
      default_reproducible = 8;
      summaries = memory_summaries;
    }
    ;
    {
      cause = Other;
      count = 13;
      symptoms =
        [ (Asymptomatic, 5); (Transient, 3); (Serious_crash, 4); (Serious_fly_away, 1) ];
      default_reproducible = 6;
      summaries = other_summaries;
    }
    ;
  ]

let cause_tag = function
  | Semantic -> "SEM"
  | Memory -> "MEM"
  | Sensor_fault -> "SNS"
  | Other -> "OTH"

let records_of_spec spec =
  let symptom_list =
    List.concat_map
      (fun (symptom, n) -> List.init n (fun _ -> symptom))
      spec.symptoms
  in
  if List.length symptom_list <> spec.count then
    invalid_arg "Bugstudy: symptom counts do not sum to category count";
  List.mapi
    (fun i symptom ->
      {
        id = Printf.sprintf "%s-%03d" (cause_tag spec.cause) (i + 1);
        firmware = (if i mod 2 = 0 then Ardupilot_tracker else Px4_tracker);
        root_cause = spec.cause;
        reproducibility =
          (if i < spec.default_reproducible then Default_settings
           else Special_settings);
        symptom;
        summary = spec.summaries.(i mod Array.length spec.summaries);
      })
    symptom_list

let dataset = List.concat_map records_of_spec specs

let total = List.length dataset

let root_cause_to_string = function
  | Semantic -> "semantic"
  | Memory -> "memory"
  | Sensor_fault -> "sensor"
  | Other -> "other"

let symptom_to_string = function
  | Asymptomatic -> "asymptomatic"
  | Transient -> "transient"
  | Serious_crash -> "crash"
  | Serious_fly_away -> "fly away"

let count pred = List.length (List.filter pred dataset)

let fraction_by_cause cause =
  float_of_int (count (fun r -> r.root_cause = cause)) /. float_of_int total

let crash_fraction_by_cause cause =
  let crashes = count (fun r -> r.symptom = Serious_crash) in
  let cause_crashes =
    count (fun r -> r.symptom = Serious_crash && r.root_cause = cause)
  in
  float_of_int cause_crashes /. float_of_int crashes

let sensor_bugs = List.filter (fun r -> r.root_cause = Sensor_fault) dataset

let fraction_of pred records =
  float_of_int (List.length (List.filter pred records))
  /. float_of_int (List.length records)

let sensor_default_reproducible_fraction =
  fraction_of (fun r -> r.reproducibility = Default_settings) sensor_bugs

let sensor_serious_fraction =
  fraction_of
    (fun r -> r.symptom = Serious_crash || r.symptom = Serious_fly_away)
    sensor_bugs

let semantic_asymptomatic_fraction =
  fraction_of
    (fun r -> r.symptom = Asymptomatic)
    (List.filter (fun r -> r.root_cause = Semantic) dataset)

let symptom_breakdown records =
  List.map
    (fun symptom ->
      (symptom, List.length (List.filter (fun r -> r.symptom = symptom) records)))
    [ Asymptomatic; Transient; Serious_crash; Serious_fly_away ]
