lib/bugstudy/bugstudy.ml: Array List Printf
