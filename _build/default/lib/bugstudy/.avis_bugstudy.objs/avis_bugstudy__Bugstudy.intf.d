lib/bugstudy/bugstudy.mli:
