(** The §III bug study: 215 classified bug reports.

    The paper reviewed 394 issues from the ArduPilot and PX4 GitHub
    trackers (2016–2019), kept 215 after pruning, and classified them by
    root cause, reproducibility and symptom. We cannot redistribute the
    GitHub text, so this module carries an embedded dataset of 215 records
    whose classification marginals match the paper's reported statistics;
    the [findings] functions recompute §III's three findings and Fig. 3's
    panels from the records rather than hard-coding the percentages. *)

type firmware = Ardupilot_tracker | Px4_tracker

type root_cause = Semantic | Memory | Sensor_fault | Other

type reproducibility = Default_settings | Special_settings

type symptom_class = Asymptomatic | Transient | Serious_crash | Serious_fly_away

type record = {
  id : string;
  firmware : firmware;
  root_cause : root_cause;
  reproducibility : reproducibility;
  symptom : symptom_class;
  summary : string;
}

val dataset : record list
(** All 215 records. *)

val total : int

val root_cause_to_string : root_cause -> string
val symptom_to_string : symptom_class -> string

(** {2 The paper's findings} *)

val fraction_by_cause : root_cause -> float
(** Finding 1's first half: e.g. sensor bugs ≈ 20 %, semantic ≈ 68 %. *)

val crash_fraction_by_cause : root_cause -> float
(** Fig. 3(A): share of crash-causing bugs per root cause (sensor ≈ 40 %). *)

val sensor_bugs : record list

val sensor_default_reproducible_fraction : float
(** Finding 2: ≈ 47 %. *)

val sensor_serious_fraction : float
(** Finding 3: ≈ 34 %. *)

val semantic_asymptomatic_fraction : float
(** ≈ 90 %, the paper's explanation for why semantic bugs are benign. *)

val symptom_breakdown : record list -> (symptom_class * int) list
(** Fig. 3(C) for any subset. *)
