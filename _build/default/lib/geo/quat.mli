(** Unit quaternions representing vehicle attitude.

    Attitude maps body-frame vectors into the world frame via [rotate].
    Euler angles follow the aerospace convention: roll about body x, pitch
    about body y, yaw about world z (heading, radians, zero = north = +x,
    increasing towards east = +y). *)

type t = { w : float; x : float; y : float; z : float }

val identity : t

val make : w:float -> x:float -> y:float -> z:float -> t

val of_axis_angle : Vec3.t -> float -> t
(** Rotation of [angle] radians about the given axis (normalised internally). *)

val of_euler : roll:float -> pitch:float -> yaw:float -> t
(** Build from aerospace Euler angles (ZYX order). *)

val to_euler : t -> float * float * float
(** [(roll, pitch, yaw)] of a (near-)unit quaternion. *)

val mul : t -> t -> t
(** Hamilton product; [mul a b] applies [b] first, then [a]. *)

val conjugate : t -> t

val norm : t -> float

val normalize : t -> t
(** Renormalise to unit length; the identity if the norm is zero. *)

val rotate : t -> Vec3.t -> Vec3.t
(** Rotate a body-frame vector into the world frame. *)

val rotate_inv : t -> Vec3.t -> Vec3.t
(** Rotate a world-frame vector into the body frame. *)

val integrate : t -> Vec3.t -> float -> t
(** [integrate q omega dt] advances attitude [q] by body angular rate
    [omega] (rad/s) over [dt] seconds and renormalises. *)

val slerp : t -> t -> float -> t
(** Spherical linear interpolation (shortest arc). *)

val angle_between : t -> t -> float
(** Magnitude of the rotation taking one attitude to the other, in
    [\[0, pi\]]. *)

val tilt : t -> float
(** Angle between the body z axis and the world vertical — how far from
    level the vehicle is, in radians. *)

val pp : Format.formatter -> t -> unit
