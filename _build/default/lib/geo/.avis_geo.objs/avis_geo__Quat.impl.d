lib/geo/quat.ml: Float Format Stdlib Vec3
