lib/geo/vec3.mli: Format
