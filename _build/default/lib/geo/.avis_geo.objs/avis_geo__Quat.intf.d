lib/geo/quat.mli: Format Vec3
