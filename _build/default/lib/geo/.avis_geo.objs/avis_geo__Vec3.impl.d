lib/geo/vec3.ml: Float Format
