lib/geo/geodesy.ml: Float Vec3
