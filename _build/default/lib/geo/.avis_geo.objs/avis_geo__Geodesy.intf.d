lib/geo/geodesy.mli: Vec3
