type t = { x : float; y : float; z : float }

let zero = { x = 0.0; y = 0.0; z = 0.0 }
let make x y z = { x; y; z }
let unit_x = { x = 1.0; y = 0.0; z = 0.0 }
let unit_y = { x = 0.0; y = 1.0; z = 0.0 }
let unit_z = { x = 0.0; y = 0.0; z = 1.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let neg a = { x = -.a.x; y = -.a.y; z = -.a.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }

let norm_sq a = dot a a
let norm a = sqrt (norm_sq a)
let dist a b = norm (sub a b)

let normalize a =
  let n = norm a in
  if n = 0.0 then zero else scale (1.0 /. n) a

let lerp a b s = add a (scale s (sub b a))
let horizontal a = { a with z = 0.0 }

let clamp_norm limit v =
  if limit < 0.0 then invalid_arg "Vec3.clamp_norm: negative limit";
  let n = norm v in
  if n <= limit || n = 0.0 then v else scale (limit /. n) v

let is_finite a =
  Float.is_finite a.x && Float.is_finite a.y && Float.is_finite a.z

let equal_eps ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps
  && Float.abs (a.y -. b.y) <= eps
  && Float.abs (a.z -. b.z) <= eps

let pp ppf a = Format.fprintf ppf "(%.4f, %.4f, %.4f)" a.x a.y a.z
let to_string a = Format.asprintf "%a" pp a
