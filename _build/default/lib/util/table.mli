(** ASCII table rendering for the benchmark harness.

    The bench executable regenerates every table of the paper; this module
    renders them in aligned, pipe-separated form so that the output can be
    compared side by side with the paper's tables. *)

type t

val create : header:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are right-padded with blanks;
    longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** The table as a multi-line string (no trailing newline). *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the optional title and the rendered table to
    standard output. *)
