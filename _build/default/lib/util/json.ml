type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let int i = Number (float_of_int i)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number f -> Buffer.add_string buf (number_to_string f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (String key);
        Buffer.add_char buf ':';
        write buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let rec write_pretty buf ~indent ~level = function
  | (Null | Bool _ | Number _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | Assoc [] -> Buffer.add_string buf "{}"
  | List items ->
    let pad n = String.make (n * indent) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write_pretty buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf ']'
  | Assoc fields ->
    let pad n = String.make (n * indent) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (level + 1));
        write buf (String key);
        Buffer.add_string buf ": ";
        write_pretty buf ~indent ~level:(level + 1) value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad level);
    Buffer.add_char buf '}'

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 512 in
  write_pretty buf ~indent ~level:0 t;
  Buffer.contents buf
