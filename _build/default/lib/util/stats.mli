(** Small statistics helpers used by the monitor and the bench harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val min_max : float list -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank method.
    Raises [Invalid_argument] on empty input or out-of-range [p]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Restrict a value to an interval. *)

val clampi : lo:int -> hi:int -> int -> int
(** Integer [clamp]. *)

type running
(** Online mean/variance accumulator (Welford). *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stddev : running -> float
val running_max : running -> float
(** Largest sample seen; [neg_infinity] when empty. *)
