lib/util/json.mli:
