lib/util/rng.mli:
