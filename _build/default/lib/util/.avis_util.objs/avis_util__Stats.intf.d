lib/util/stats.mli:
