lib/util/table.mli:
