let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  List.nth sorted idx

let clamp ~lo ~hi v = Float.max lo (Float.min hi v)

let clampi ~lo ~hi v = max lo (min hi v)

type running = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable max : float;
}

let running_create () = { count = 0; mean = 0.0; m2 = 0.0; max = neg_infinity }

let running_add r x =
  r.count <- r.count + 1;
  let delta = x -. r.mean in
  r.mean <- r.mean +. (delta /. float_of_int r.count);
  r.m2 <- r.m2 +. (delta *. (x -. r.mean));
  if x > r.max then r.max <- x

let running_count r = r.count
let running_mean r = if r.count = 0 then 0.0 else r.mean

let running_stddev r =
  if r.count < 2 then 0.0 else sqrt (r.m2 /. float_of_int r.count)

let running_max r = r.max
