(** A minimal JSON value and serialiser.

    Findings, traces and flight logs are exported as JSON artefacts (the
    paper publishes the system logs behind each report); this is a
    dependency-free emitter, with a parser deliberately out of scope. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val int : int -> t
(** Convenience: integers are numbers. *)

val to_string : t -> string
(** Compact rendering with correct string escaping; non-finite numbers are
    rendered as [null] (JSON has no NaN/infinity). *)

val to_string_pretty : ?indent:int -> t -> string
(** Multi-line rendering (default 2-space indent). *)
