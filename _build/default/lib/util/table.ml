type row = Cells of string list | Separator

type t = { header : string list; mutable rows : row list (* reversed *) }

let create ~header = { header; rows = [] }

let add_row t cells =
  let width = List.length t.header in
  let n = List.length cells in
  if n > width then invalid_arg "Table.add_row: more cells than headers";
  let padded = cells @ List.init (width - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let column_widths t =
  let rows = List.rev t.rows in
  let update widths cells =
    List.map2 (fun w c -> max w (String.length c)) widths cells
  in
  let init = List.map String.length t.header in
  List.fold_left
    (fun widths row ->
      match row with Cells cells -> update widths cells | Separator -> widths)
    init rows

let pad width s = s ^ String.make (width - String.length s) ' '

let render t =
  let widths = column_widths t in
  let render_cells cells =
    "| " ^ String.concat " | " (List.map2 pad widths cells) ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let body =
    List.rev_map
      (fun row -> match row with Cells cells -> render_cells cells | Separator -> rule)
      t.rows
  in
  String.concat "\n" (render_cells t.header :: rule :: body)

let print ?title t =
  (match title with
  | Some s -> Printf.printf "%s\n" s
  | None -> ());
  print_endline (render t)
