exception Truncated

type writer = Buffer.t

let writer () = Buffer.create 64

let put_u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

let put_u16 w v =
  put_u8 w v;
  put_u8 w (v lsr 8)

let put_i32 w v =
  let v = v land 0xFFFFFFFF in
  put_u8 w v;
  put_u8 w (v lsr 8);
  put_u8 w (v lsr 16);
  put_u8 w (v lsr 24)

let put_f32 w f =
  let bits = Int32.bits_of_float f in
  put_i32 w (Int32.to_int bits land 0xFFFFFFFF)

let put_string w ~len s =
  for i = 0 to len - 1 do
    if i < String.length s then Buffer.add_char w s.[i] else Buffer.add_char w '\000'
  done

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let need r n = if r.pos + n > String.length r.data then raise Truncated

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let lo = get_u8 r in
  let hi = get_u8 r in
  lo lor (hi lsl 8)

let get_i32 r =
  let b0 = get_u8 r in
  let b1 = get_u8 r in
  let b2 = get_u8 r in
  let b3 = get_u8 r in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (* Sign-extend from 32 bits. *)
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let get_f32 r =
  let v = get_i32 r in
  Int32.float_of_bits (Int32.of_int v)

let get_string r ~len =
  need r len;
  let raw = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  match String.index_opt raw '\000' with
  | Some i -> String.sub raw 0 i
  | None -> raw

let remaining r = String.length r.data - r.pos
