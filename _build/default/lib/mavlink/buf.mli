(** Little-endian payload serialisation.

    MAVLink payloads are packed little-endian structures; this module gives
    the writer and a cursor-based reader used by the message codec. Readers
    raise [Truncated] rather than returning partial values, so a corrupt
    frame is rejected as a whole. *)

exception Truncated

type writer

val writer : unit -> writer
val put_u8 : writer -> int -> unit
val put_u16 : writer -> int -> unit
val put_i32 : writer -> int -> unit
val put_f32 : writer -> float -> unit
val put_string : writer -> len:int -> string -> unit
(** Fixed-width string field, zero-padded or truncated to [len]. *)

val contents : writer -> string

type reader

val reader : string -> reader
val get_u8 : reader -> int
val get_u16 : reader -> int
val get_i32 : reader -> int
val get_f32 : reader -> float
val get_string : reader -> len:int -> string
(** Reads [len] bytes and strips trailing zero padding. *)

val remaining : reader -> int
