lib/mavlink/crc.mli: Bytes
