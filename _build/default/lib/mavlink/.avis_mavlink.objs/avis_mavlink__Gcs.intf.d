lib/mavlink/gcs.mli: Link Msg
