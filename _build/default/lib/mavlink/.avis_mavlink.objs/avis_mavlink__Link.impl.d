lib/mavlink/link.ml: Avis_util List String
