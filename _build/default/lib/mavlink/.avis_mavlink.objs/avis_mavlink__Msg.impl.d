lib/mavlink/msg.ml: Buf Printf
