lib/mavlink/crc.ml: Bytes Char String
