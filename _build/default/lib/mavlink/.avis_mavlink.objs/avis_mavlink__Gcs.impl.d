lib/mavlink/gcs.ml: Array Avis_geo Frame Link List Msg
