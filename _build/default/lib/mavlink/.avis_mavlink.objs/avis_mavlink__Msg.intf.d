lib/mavlink/msg.mli:
