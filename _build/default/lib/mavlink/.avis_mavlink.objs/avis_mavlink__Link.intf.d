lib/mavlink/link.mli: Avis_util
