lib/mavlink/buf.ml: Buffer Char Int32 String
