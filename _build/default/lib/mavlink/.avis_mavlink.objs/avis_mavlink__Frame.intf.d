lib/mavlink/frame.mli: Msg
