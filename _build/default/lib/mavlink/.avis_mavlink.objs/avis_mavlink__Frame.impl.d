lib/mavlink/frame.ml: Buffer Char Crc List Msg String
