lib/mavlink/buf.mli:
