(** X25 / CRC-16-MCRF4XX checksum as used by MAVLink framing. *)

type t
(** Accumulator. *)

val init : unit -> t
(** Fresh accumulator (seed [0xFFFF]). *)

val accumulate : t -> char -> t
(** Fold one byte into the accumulator. *)

val accumulate_bytes : t -> Bytes.t -> t
val accumulate_string : t -> string -> t

val value : t -> int
(** Current 16-bit checksum. *)

val of_string : string -> int
(** One-shot checksum of a whole string. *)
