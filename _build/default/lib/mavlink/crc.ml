type t = int

let init () = 0xFFFF

let accumulate acc byte =
  let data = Char.code byte in
  let tmp = data lxor (acc land 0xFF) in
  let tmp = (tmp lxor (tmp lsl 4)) land 0xFF in
  ((acc lsr 8) lxor (tmp lsl 8) lxor (tmp lsl 3) lxor (tmp lsr 4)) land 0xFFFF

let accumulate_bytes acc b =
  let acc = ref acc in
  Bytes.iter (fun c -> acc := accumulate !acc c) b;
  !acc

let accumulate_string acc s =
  let acc = ref acc in
  String.iter (fun c -> acc := accumulate !acc c) s;
  !acc

let value t = t

let of_string s = value (accumulate_string (init ()) s)
