lib/physics/world.ml: Airframe Avis_geo Avis_util Environment Float Format List Motor Quat Rigid_body Vec3
