lib/physics/environment.mli: Avis_geo Avis_util Vec3
