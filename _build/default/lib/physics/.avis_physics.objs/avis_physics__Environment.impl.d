lib/physics/environment.ml: Avis_geo Avis_util Float List Vec3
