lib/physics/rigid_body.ml: Airframe Avis_geo Quat Vec3
