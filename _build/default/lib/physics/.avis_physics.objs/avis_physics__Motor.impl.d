lib/physics/motor.ml: Airframe Array Avis_geo Avis_util Float Vec3
