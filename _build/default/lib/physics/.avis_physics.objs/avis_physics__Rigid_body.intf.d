lib/physics/rigid_body.mli: Avis_geo Quat Vec3
