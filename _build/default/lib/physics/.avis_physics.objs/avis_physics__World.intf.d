lib/physics/world.mli: Airframe Avis_geo Avis_util Environment Format Rigid_body Vec3
