lib/physics/airframe.mli: Avis_geo Vec3
