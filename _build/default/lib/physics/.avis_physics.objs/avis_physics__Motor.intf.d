lib/physics/motor.mli: Airframe Avis_geo Vec3
