lib/physics/airframe.ml: Avis_geo List Vec3
