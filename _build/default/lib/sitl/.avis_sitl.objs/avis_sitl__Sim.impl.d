lib/sitl/sim.ml: Avis_firmware Avis_geo Avis_hinj Avis_mavlink Avis_physics Avis_sensors Avis_util Bug Gcs Link Phase Policy Trace Vehicle
