lib/sitl/sim.mli: Avis_firmware Avis_geo Avis_hinj Avis_mavlink Avis_physics Bug Gcs Policy Trace Vehicle
