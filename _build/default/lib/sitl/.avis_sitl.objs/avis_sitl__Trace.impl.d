lib/sitl/trace.ml: Array Avis_geo Avis_physics List Vec3
