lib/sitl/trace.mli: Avis_geo Avis_physics Vec3
