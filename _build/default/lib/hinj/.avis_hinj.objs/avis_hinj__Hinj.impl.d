lib/hinj/hinj.ml: Avis_sensors List Sensor
