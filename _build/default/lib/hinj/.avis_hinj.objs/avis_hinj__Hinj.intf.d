lib/hinj/hinj.mli: Avis_sensors Sensor
