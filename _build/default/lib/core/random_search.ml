let make ?(max_runs = 1_000_000) ctx =
  let seen = Hashtbl.create 1024 in
  let produced = ref 0 in
  let next () =
    if !produced >= max_runs then Search.Exhausted
    else begin
      incr produced;
      let rec draw attempts =
        let scenario = Search.random_scenario ctx in
        let key = Scenario.key scenario in
        if Hashtbl.mem seen key && attempts < 5 then draw (attempts + 1)
        else begin
          Hashtbl.replace seen key ();
          scenario
        end
      in
      Search.Run (draw 0, 0.0)
    end
  in
  let observe _scenario _result = () in
  { Search.name = "Random"; next; observe }
