(** SABRE — stratified breadth-first search over the fault space
    (Algorithm 1).

    The transition queue is seeded with the profiling run's mode
    transitions. Each dequeued site is expanded into the per-site failure
    powerset (pruned by the §IV-B policies); bug-free runs re-enqueue
    every transition they exhibited (composing multi-time scenarios, which
    is how PX4-13291's GPS-then-battery pair is reached), and the dequeued
    site itself is re-enqueued shifted later (line 20), so injection
    points gradually sweep away from the boundaries. *)

val make :
  ?shift_s:float ->
  ?prune:Prune.t ->
  ?gate:(Scenario.t -> float * bool) ->
  Search.context ->
  Search.t
(** [gate] (used by Stratified BFI) maps a candidate to (inference cost,
    approved); rejected candidates are skipped but their cost is charged.
    [shift_s] is the line-20 re-enqueue offset (default 0.5 s).
    [prune] defaults to a fresh tracker with both policies on. *)
