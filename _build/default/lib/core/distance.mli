(** The liveliness state metric (§IV-C).

    A vehicle state is the tuple (P, α, M) — position, acceleration and
    mode. Position and acceleration distances are Euclidean, normalised so
    that the largest pairwise difference seen across profiling runs maps to
    the mode graph's diameter; mode distance is the shortest path in the
    mode graph. The total distance is the Euclidean norm of the three
    components.

    [Position_only] is the paper's discussed-and-rejected alternative
    (detection takes tens of seconds instead of seconds); it is kept for
    the ablation benchmark. *)

open Avis_sitl

type metric = Full | Position_only

type t
(** Normalisers (the paper's P̂, Â and D) plus the mode graph. *)

val build : graph:Mode_graph.t -> profiles:Trace.t list -> t
(** Compute P̂ and Â as the largest pairwise distances between profiling
    runs at equal time offsets (shorter runs padded with their final
    state). Degenerate zero maxima fall back to 1 so the metric stays
    defined. *)

val graph : t -> Mode_graph.t
val p_hat : t -> float
val a_hat : t -> float

val state_distance : ?metric:metric -> t -> Trace.sample -> Trace.sample -> float
(** Distance between two states at the same time offset. *)

val tau : ?metric:metric -> t -> Trace.t list -> float
(** The threshold τ: the largest state distance between any two profiling
    runs at the same offset. *)
