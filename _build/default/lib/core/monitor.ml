open Avis_geo
open Avis_sitl

type profile = {
  traces : Trace.t list;
  graph : Mode_graph.t;
  norm : Distance.t;
  tau_full : float;
  tau_position : float;
  max_alt : float;
  max_home_dist : float;
}

let build_profile outcomes =
  if outcomes = [] then invalid_arg "Monitor.build_profile: no profiling runs";
  let traces = List.map (fun o -> o.Sim.trace) outcomes in
  let transitions =
    List.map
      (fun o ->
        List.map
          (fun tr -> (tr.Avis_hinj.Hinj.from_mode, tr.Avis_hinj.Hinj.to_mode))
          o.Sim.transitions)
      outcomes
  in
  let graph = Mode_graph.build ~transitions in
  let norm = Distance.build ~graph ~profiles:traces in
  let max_alt, max_home_dist =
    List.fold_left
      (fun (alt, dist) trace ->
        Array.fold_left
          (fun (alt, dist) s ->
            ( Float.max alt s.Trace.position.Vec3.z,
              Float.max dist (Vec3.norm (Vec3.horizontal s.Trace.position)) ))
          (alt, dist) (Trace.samples trace))
      (0.0, 0.0) traces
  in
  (* A floor keeps τ meaningful when the profiling runs are near-identical,
     and a safety margin absorbs per-instance sensor biases the profiling
     runs cannot have sampled (a failover to a backup instance changes the
     noise realisation without being a misbehaviour). *)
  let tau_floor = 0.75 in
  let margin = 1.35 in
  {
    traces;
    graph;
    norm;
    tau_full =
      Float.max tau_floor (margin *. Distance.tau ~metric:Distance.Full norm traces);
    tau_position =
      Float.max tau_floor
        (margin *. Distance.tau ~metric:Distance.Position_only norm traces);
    max_alt;
    max_home_dist;
  }

let graph p = p.graph
let tau p = p.tau_full
let normalisers p = p.norm

type symptom = Crash | Fly_away | Takeoff_failure | Stalled

let symptom_to_string = function
  | Crash -> "Crash"
  | Fly_away -> "Fly Away"
  | Takeoff_failure -> "Takeoff Failure"
  | Stalled -> "Stalled"

type violation_kind =
  | Safety of string
  | Fence_breach
  | Liveliness
  | Safe_mode_invariant of string

type violation = {
  kind : violation_kind;
  time : float;
  mode : string;
  symptom : symptom;
}

type verdict = Safe | Unsafe of violation

(* Ticks are the 10 Hz trace samples; windows are expressed in ticks. *)
let consecutive_needed = 5
let invariant_window = 30 (* 3 s *)
let grounded_grace = 150 (* 15 s *)

let mode_rtl = "Return To Launch"
let mode_land = "Land"
let mode_disarmed = "Disarmed"
let mode_manual = "Manual"

let home_distance (s : Trace.sample) = Vec3.norm (Vec3.horizontal s.Trace.position)

(* Safe-mode invariants, evaluated per tick once the vehicle has been in
   the safe mode for at least [invariant_window] ticks. *)
let safe_mode_ok (samples : Trace.sample array) i ~entered_tick ~grounded_ticks =
  let s = samples.(i) in
  let alt = s.Trace.position.Vec3.z in
  if s.Trace.mode = mode_rtl then
    if i - entered_tick < invariant_window then true
    else begin
      let prev = samples.(i - invariant_window) in
      let progressing = home_distance s < home_distance prev -. 0.1 in
      let climbing = alt > prev.Trace.position.Vec3.z +. 0.2 in
      (* Wide enough that the braking creep before the Land hand-off
         still counts as arrived. *)
      let arrived = home_distance s < 8.0 in
      progressing || climbing || arrived
    end
  else if s.Trace.mode = mode_land then
    (* Extra grace: entering Land at speed takes a few seconds of braking
       before the descent shows. *)
    if i - entered_tick < 2 * invariant_window then true
    else begin
      let prev = samples.(i - invariant_window) in
      let descending = alt < prev.Trace.position.Vec3.z -. 0.2 in
      let freshly_grounded = alt < 0.3 && grounded_ticks <= grounded_grace in
      descending || freshly_grounded
    end
  else if s.Trace.mode = mode_disarmed then alt < 0.5
  else true

(* The Manual hover excuse: liveliness in Manual is tolerated while the
   vehicle stays put (degraded GPS-loss hold), but not while it moves. *)
let manual_hover_excuse (samples : Trace.sample array) i =
  let s = samples.(i) in
  if s.Trace.mode <> mode_manual then false
  else if i = 0 then true
  else begin
    let prev = samples.(max 0 (i - 10)) in
    let dt = Float.max 0.1 (s.Trace.time -. prev.Trace.time) in
    let speed =
      Vec3.norm
        (Vec3.horizontal (Vec3.sub s.Trace.position prev.Trace.position))
      /. dt
    in
    speed < 1.5
  end

let is_safe_mode mode =
  mode = mode_rtl || mode = mode_land || mode = mode_disarmed

let classify profile ~(samples : Trace.sample array) ~violation_tick ~crashed =
  if crashed then Crash
  else begin
    let max_alt_seen =
      Array.fold_left
        (fun acc s -> Float.max acc s.Trace.position.Vec3.z)
        0.0 samples
    in
    if max_alt_seen < 1.5 && profile.max_alt > 5.0 then Takeoff_failure
    else begin
      let s = samples.(min violation_tick (Array.length samples - 1)) in
      let away =
        home_distance s > profile.max_home_dist +. 10.0
        || s.Trace.position.Vec3.z > profile.max_alt +. 10.0
      in
      (* Still departing at the end of the run also reads as a fly-away. *)
      let final = samples.(Array.length samples - 1) in
      let final_away =
        home_distance final > profile.max_home_dist +. 10.0
        || final.Trace.position.Vec3.z > profile.max_alt +. 10.0
      in
      if away || final_away then Fly_away else Stalled
    end
  end

let first_violation ?(metric = Distance.Full) profile (outcome : Sim.outcome) =
  let samples = Trace.samples outcome.Sim.trace in
  let n = Array.length samples in
  if n = 0 then None
  else begin
    let tau =
      match metric with
      | Distance.Full -> profile.tau_full
      | Distance.Position_only -> profile.tau_position
    in
    let profiles = Array.of_list profile.traces in
    let result = ref None in
    let live_streak = ref 0 in
    let safe_streak = ref 0 in
    let entered_tick = ref 0 in
    let grounded_ticks = ref 0 in
    let i = ref 0 in
    while !result = None && !i < n do
      let s = samples.(!i) in
      if !i > 0 && samples.(!i - 1).Trace.mode <> s.Trace.mode then begin
        entered_tick := !i;
        grounded_ticks := 0
      end;
      if s.Trace.position.Vec3.z < 0.3 then incr grounded_ticks
      else grounded_ticks := 0;
      (* Safe-mode invariants run whenever the vehicle is in a safe mode. *)
      if is_safe_mode s.Trace.mode then begin
        if
          safe_mode_ok samples !i ~entered_tick:!entered_tick
            ~grounded_ticks:!grounded_ticks
        then safe_streak := 0
        else begin
          incr safe_streak;
          if !safe_streak >= consecutive_needed then
            result :=
              Some
                ( Safe_mode_invariant s.Trace.mode,
                  s.Trace.time,
                  s.Trace.mode,
                  !i )
        end
      end
      else safe_streak := 0;
      (* Liveliness: the state must stay within tau of some profiling run,
         unless a safe mode (whose invariant is already enforced above) or
         a legitimate Manual hover explains the divergence. *)
      if !result = None then begin
        let d_min = ref infinity in
        Array.iter
          (fun p ->
            let d =
              Distance.state_distance ~metric profile.norm s
                (Trace.nth_padded p !i)
            in
            if d < !d_min then d_min := d)
          profiles;
        let preflight_refusal =
          (* A vehicle that refuses to fly after a pre-arming failure is
             preserving safety, not violating liveliness. *)
          s.Trace.mode = "Pre-Flight" && s.Trace.position.Vec3.z < 0.5
        in
        if !d_min > tau && (not (is_safe_mode s.Trace.mode))
           && (not (manual_hover_excuse samples !i))
           && not preflight_refusal
        then begin
          incr live_streak;
          if !live_streak >= consecutive_needed then
            result := Some (Liveliness, s.Trace.time, s.Trace.mode, !i)
        end
        else live_streak := 0
      end;
      incr i
    done;
    !result
  end

let check ?(metric = Distance.Full) profile (outcome : Sim.outcome) =
  let samples = Trace.samples outcome.Sim.trace in
  let n = Array.length samples in
  if n = 0 then Safe
  else begin
    match outcome.Sim.crash with
    | Some event ->
      let s = samples.(n - 1) in
      Unsafe
        {
          kind = Safety (Format.asprintf "%a" Avis_physics.World.pp_contact event);
          time = outcome.Sim.duration;
          mode = s.Trace.mode;
          symptom = Crash;
        }
    | None ->
      if outcome.Sim.fence_breached then
        let s = samples.(n - 1) in
        Unsafe
          {
            kind = Fence_breach;
            time = outcome.Sim.duration;
            mode = s.Trace.mode;
            symptom = Fly_away;
          }
      else begin
        match first_violation ~metric profile outcome with
        | None -> Safe
        | Some (kind, time, mode, tick) ->
          let symptom =
            classify profile ~samples ~violation_tick:tick ~crashed:false
          in
          Unsafe { kind; time; mode; symptom }
      end
  end

let detection_time ?(metric = Distance.Full) profile outcome =
  match check ~metric profile outcome with
  | Safe -> None
  | Unsafe v -> Some v.time

let describe v =
  let kind =
    match v.kind with
    | Safety s -> "safety: " ^ s
    | Fence_breach -> "geofence breach"
    | Liveliness -> "liveliness violation"
    | Safe_mode_invariant m -> "safe-mode invariant failed in " ^ m
  in
  Printf.sprintf "%s at t=%.1fs in %s (%s)" kind v.time v.mode
    (symptom_to_string v.symptom)
