(** Bayesian Fault Injection (the paper's BFI baseline).

    Candidates are enumerated depth-first (as in the paper's
    implementation) and each is labelled by the learned model at ~10 s of
    wall-clock per prediction; only candidates the model considers likely
    to be unsafe are simulated. With thousands of injection sites per
    second of flight, the budget is consumed almost entirely by
    inference — the paper observes BFI "was unable to explore even a
    single second of data" in two hours. Every thirty rejected candidates
    the current best-scoring one is simulated anyway (exploration), which
    is why BFI occasionally still finds something. *)

val make : ?model:Bfi_model.t -> ?site_step_s:float -> Search.context -> Search.t
