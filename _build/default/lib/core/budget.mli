(** The wall-clock cost model.

    The paper gives each approach two hours of wall-clock per workload. We
    reproduce that with a deterministic accounting model instead of real
    time: simulated flight costs its duration divided by the simulator's
    real-time speed-up, and BFI's model inference costs the ~10 seconds
    per labelled scenario the paper reports. Campaigns stop when the
    budget is spent, so comparisons across approaches are equal-budget as
    in Table III. *)

type t

val create : ?speedup:float -> total_s:float -> unit -> t
(** [speedup] is simulated-seconds per wall-second (default 5). *)

val two_hours : unit -> t
(** The paper's 7200 s budget with the default speed-up. *)

val charge_simulation : t -> sim_seconds:float -> unit
(** Account a simulated run. *)

val charge_inference : t -> float -> unit
(** Account model-inference wall time (BFI variants). *)

val spent_s : t -> float
val remaining_s : t -> float
val exhausted : t -> bool

val can_afford_run : t -> sim_seconds:float -> bool
(** Whether a run of that length still fits. *)

val simulations_run : t -> int
val inferences_run : t -> int
