(** The mode graph (§IV-C).

    A directed graph whose nodes are operating-mode labels and whose edges
    are the mode-change events observed in profiling runs. The liveliness
    metric uses shortest-path distances between modes, normalised by the
    graph's diameter. Modes that were never observed, or pairs with no
    directed path either way, are assigned the diameter — maximally
    different. *)

type t

val build : transitions:(string * string) list list -> t
(** One transition list per profiling run, as (from, to) label pairs. Every
    label mentioned becomes a node. *)

val modes : t -> string list
(** All node labels, in first-observed order. *)

val has_mode : t -> string -> bool

val distance : t -> string -> string -> int
(** Length of the shortest directed path (in either direction — we take the
    smaller of the two, since "how far apart are these modes" is
    symmetric). Identical modes are at distance 0; unknown modes or
    unreachable pairs are at [diameter]. *)

val diameter : t -> int
(** The longest finite shortest-path distance — the paper's [D], the
    normalisation scale. At least 1 even for degenerate graphs. *)

val edges : t -> (string * string) list
(** Distinct observed edges. *)
