let polygon_vertices ~sides ~radius =
  if sides < 3 then invalid_arg "Workload_builder: a polygon needs >= 3 sides";
  if radius <= 0.0 then invalid_arg "Workload_builder: non-positive radius";
  List.init sides (fun i ->
      let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int sides in
      (radius *. cos angle, radius *. sin angle))

(* Rough clean-flight time: legs at cruise speed plus climb and landing. *)
let polygon_duration ~sides ~radius ~alt =
  let side_length = 2.0 *. radius *. sin (Float.pi /. float_of_int sides) in
  let cruise = float_of_int sides *. (side_length +. radius) /. 3.0 in
  20.0 +. (alt /. 1.5) +. cruise

let auto_polygon ?name ~sides ~radius ~alt () =
  let vertices = polygon_vertices ~sides ~radius in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "auto-%dgon" sides
  in
  {
    Workload.name;
    description =
      Printf.sprintf
        "auto mission around a %d-sided polygon of radius %.0f m at %.0f m"
        sides radius alt;
    environment = (fun () -> None);
    nominal_duration = polygon_duration ~sides ~radius ~alt;
    run =
      (fun api ->
        Workload.wait_time api 2.0;
        Workload.upload_mission api
          (Workload.renumber
             (Workload.takeoff_item ~alt
             :: List.map
                  (fun (north, east) -> Workload.waypoint_item api ~north ~east ~alt)
                  vertices
             @ [ Workload.rtl_item () ]));
        Workload.arm_system_completely api;
        Workload.enter_auto_mode api;
        Workload.wait_altitude api alt;
        Workload.wait_disarmed api);
  }

let manual_polygon ?name ~sides ~radius ~alt () =
  let vertices = polygon_vertices ~sides ~radius in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "manual-%dgon" sides
  in
  {
    Workload.name;
    description =
      Printf.sprintf
        "position-hold flight around a %d-sided polygon of radius %.0f m"
        sides radius;
    environment = (fun () -> None);
    nominal_duration = polygon_duration ~sides ~radius ~alt +. 10.0;
    run =
      (fun api ->
        Workload.wait_time api 2.0;
        Workload.arm_system_completely api;
        Workload.takeoff api alt;
        Workload.wait_altitude api alt;
        Workload.wait_mode api 2;
        List.iter
          (fun (north, east) ->
            Workload.reposition api ~north ~east ~alt;
            Workload.wait_until api ~timeout:40.0 (fun api ->
                let open Avis_geo.Vec3 in
                let p = Workload.local_position api in
                norm (horizontal (sub p (make north east 0.0))) < 2.5))
          vertices;
        Workload.land_now api;
        Workload.wait_disarmed api);
  }

let altitude_sweep ?name ~levels () =
  (match levels with
  | [] -> invalid_arg "Workload_builder.altitude_sweep: no levels"
  | levels ->
    if List.exists (fun l -> l <= 1.0) levels then
      invalid_arg "Workload_builder.altitude_sweep: levels must exceed 1 m");
  let name = match name with Some n -> n | None -> "altitude-sweep" in
  let first = List.hd levels in
  let travel =
    fst
      (List.fold_left
         (fun (acc, prev) l -> (acc +. Float.abs (l -. prev), l))
         (first, first) (List.tl levels))
  in
  {
    Workload.name;
    description = "hold position while stepping through altitude levels";
    environment = (fun () -> None);
    nominal_duration = 30.0 +. travel;
    run =
      (fun api ->
        Workload.wait_time api 2.0;
        Workload.arm_system_completely api;
        Workload.takeoff api first;
        Workload.wait_altitude api first;
        Workload.wait_mode api 2;
        List.iter
          (fun level ->
            Workload.reposition api ~north:0.0 ~east:0.0 ~alt:level;
            Workload.wait_until api ~timeout:60.0 (fun api ->
                Float.abs (Avis_mavlink.Gcs.relative_alt (Workload.gcs api) -. level)
                < 1.0))
          (List.tl levels);
        Workload.land_now api;
        Workload.wait_disarmed api);
  }

let with_environment w environment = { w with Workload.environment }

let with_name w name = { w with Workload.name }
