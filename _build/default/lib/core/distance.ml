open Avis_geo
open Avis_sitl

type metric = Full | Position_only

type t = { graph : Mode_graph.t; p_hat : float; a_hat : float }

let pairwise_max traces component =
  let n = List.length traces in
  let arr = Array.of_list traces in
  let len =
    Array.fold_left (fun acc tr -> max acc (Trace.length tr)) 0 arr
  in
  let best = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = 0 to len - 1 do
        let a = Trace.nth_padded arr.(i) k in
        let b = Trace.nth_padded arr.(j) k in
        let d = component a b in
        if d > !best then best := d
      done
    done
  done;
  !best

let position_component (a : Trace.sample) (b : Trace.sample) =
  Vec3.dist a.Trace.position b.Trace.position

let accel_component (a : Trace.sample) (b : Trace.sample) =
  Vec3.dist a.Trace.acceleration b.Trace.acceleration

let build ~graph ~profiles =
  let nonzero v = if v <= 1e-9 then 1.0 else v in
  {
    graph;
    p_hat = nonzero (pairwise_max profiles position_component);
    a_hat = nonzero (pairwise_max profiles accel_component);
  }

let graph t = t.graph
let p_hat t = t.p_hat
let a_hat t = t.a_hat

let state_distance ?(metric = Full) t a b =
  let scale = float_of_int (Mode_graph.diameter t.graph) in
  let d_p = position_component a b *. scale /. t.p_hat in
  match metric with
  | Position_only -> d_p
  | Full ->
    let d_a = accel_component a b *. scale /. t.a_hat in
    let d_m =
      float_of_int (Mode_graph.distance t.graph a.Trace.mode b.Trace.mode)
    in
    sqrt ((d_p *. d_p) +. (d_a *. d_a) +. (d_m *. d_m))

let tau ?(metric = Full) t profiles =
  let arr = Array.of_list profiles in
  let n = Array.length arr in
  let len = Array.fold_left (fun acc tr -> max acc (Trace.length tr)) 0 arr in
  let best = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = 0 to len - 1 do
        let d =
          state_distance ~metric t (Trace.nth_padded arr.(i) k)
            (Trace.nth_padded arr.(j) k)
        in
        if d > !best then best := d
      done
    done
  done;
  !best
