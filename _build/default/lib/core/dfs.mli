(** Depth-first exploration of the fault space (§IV-B's first strawman,
    and the ordering the paper's BFI implementation uses).

    Enumerates injection sites from the end of the mission backwards at
    sensor-sampling granularity — the paper's DFS tests failures at the
    latest timestamps first, then extends earlier — so within any
    realistic budget it only ever exercises a narrow slice of the
    mission. *)

val make : ?site_step_s:float -> ?prune:Prune.t -> Search.context -> Search.t
(** [site_step_s] is the spacing between candidate sites (default 0.1 s,
    the GPS sampling period). *)
