open Avis_sensors

type relative_fault = {
  sensor : Sensor.id;
  mode : string;
  offset_s : float;
}

type t = {
  scenario : Scenario.t;
  violation : Monitor.violation;
  injection_mode : string;
  relative_faults : relative_fault list;
  triggered_bugs : Avis_firmware.Bug.id list;
  duration : float;
}

(* Strictly before the fault: a failsafe reaction can change mode in the
   very step the fault lands, and the injection should be attributed to
   the mode the vehicle was flying, not the one it fled into. *)
let mode_at_from_transitions transitions time =
  List.fold_left
    (fun acc tr ->
      if tr.Avis_hinj.Hinj.time <= time -. 0.02 then tr.Avis_hinj.Hinj.to_mode
      else acc)
    "Pre-Flight" transitions

let relative_fault transitions (fault : Scenario.fault) =
  let entered, mode =
    List.fold_left
      (fun ((entered, _) as acc) tr ->
        if tr.Avis_hinj.Hinj.time <= fault.Scenario.at -. 0.02
           && tr.Avis_hinj.Hinj.time >= entered
        then (tr.Avis_hinj.Hinj.time, tr.Avis_hinj.Hinj.to_mode)
        else acc)
      (0.0, "Pre-Flight") transitions
  in
  { sensor = fault.Scenario.sensor; mode; offset_s = fault.Scenario.at -. entered }

let make (outcome : Avis_sitl.Sim.outcome) scenario violation =
  let transitions = outcome.Avis_sitl.Sim.transitions in
  let injection_mode =
    match Scenario.first_injection_time scenario with
    | Some at -> mode_at_from_transitions transitions at
    | None -> "Pre-Flight"
  in
  {
    scenario;
    violation;
    injection_mode;
    relative_faults = List.map (relative_fault transitions) scenario;
    triggered_bugs = outcome.Avis_sitl.Sim.triggered_bugs;
    duration = outcome.Avis_sitl.Sim.duration;
  }

type mode_bucket = Takeoff_bucket | Manual_bucket | Waypoint_bucket | Land_bucket

let bucket_of_mode label =
  match Bfi_model.mode_class_of_label label with
  | "Waypoint" -> Waypoint_bucket
  | "Manual" -> Manual_bucket
  | "Return To Launch" | "Land" | "Disarmed" -> Land_bucket
  | "Pre-Flight" | "Takeoff" -> Takeoff_bucket
  | _ -> Takeoff_bucket

let bucket_label = function
  | Takeoff_bucket -> "Takeoff"
  | Manual_bucket -> "Manual"
  | Waypoint_bucket -> "Waypoint"
  | Land_bucket -> "Land"

let injection_bucket t = bucket_of_mode t.injection_mode

let describe t =
  Printf.sprintf "%s | injected %s in %s | %s"
    (Monitor.describe t.violation)
    (Scenario.to_string t.scenario)
    t.injection_mode
    (match t.triggered_bugs with
    | [] -> "no registered bug triggered"
    | bugs ->
      "triggered "
      ^ String.concat ", "
          (List.map
             (fun id -> (Avis_firmware.Bug.info id).Avis_firmware.Bug.report)
             bugs))
