let make ?model ?prune ctx =
  let model = match model with Some m -> m | None -> Bfi_model.default () in
  let gate scenario =
    let features =
      Bfi_model.features_of_scenario ~mode_at:ctx.Search.mode_at
        ~instances_of_kind:ctx.Search.instances_of_kind scenario
    in
    (Bfi_model.inference_cost_s, Bfi_model.predict model features > 0.5)
  in
  let inner = Sabre.make ?prune ~gate ctx in
  { inner with Search.name = "Stratified BFI" }
