lib/core/budget.mli:
