lib/core/bfs.ml: Prune Scenario Search
