lib/core/scenario.mli: Avis_hinj Avis_sensors Format Sensor
