lib/core/search.mli: Avis_sensors Avis_sitl Avis_util Scenario Sensor
