lib/core/budget.ml: Float
