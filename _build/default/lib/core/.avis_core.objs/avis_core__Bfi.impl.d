lib/core/bfi.ml: Bfi_model Dfs Scenario Search
