lib/core/sabre.ml: Float Hashtbl List Printf Prune Queue Scenario Search
