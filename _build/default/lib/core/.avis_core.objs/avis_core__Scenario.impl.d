lib/core/scenario.ml: Avis_hinj Avis_sensors Float Format List Printf Sensor String
