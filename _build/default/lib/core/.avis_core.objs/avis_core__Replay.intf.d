lib/core/replay.mli: Avis_hinj Campaign Monitor Report
