lib/core/campaign.mli: Avis_firmware Avis_sitl Bug Monitor Policy Report Search Workload
