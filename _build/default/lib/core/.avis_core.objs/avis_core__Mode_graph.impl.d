lib/core/mode_graph.ml: Array Hashtbl List
