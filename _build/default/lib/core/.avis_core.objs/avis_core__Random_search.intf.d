lib/core/random_search.mli: Search
