lib/core/bfi.mli: Bfi_model Search
