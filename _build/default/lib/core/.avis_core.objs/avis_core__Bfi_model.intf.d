lib/core/bfi_model.mli: Avis_sensors Avis_util Scenario Sensor
