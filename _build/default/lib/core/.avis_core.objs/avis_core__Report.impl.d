lib/core/report.ml: Avis_firmware Avis_hinj Avis_sensors Avis_sitl Bfi_model List Monitor Printf Scenario Sensor String
