lib/core/sabre.mli: Prune Scenario Search
