lib/core/strat_bfi.ml: Bfi_model Sabre Search
