lib/core/random_search.ml: Hashtbl Scenario Search
