lib/core/monitor.ml: Array Avis_geo Avis_hinj Avis_physics Avis_sitl Distance Float Format List Mode_graph Printf Sim Trace Vec3
