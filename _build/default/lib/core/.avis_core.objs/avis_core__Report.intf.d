lib/core/report.mli: Avis_firmware Avis_hinj Avis_sensors Avis_sitl Monitor Scenario Sensor
