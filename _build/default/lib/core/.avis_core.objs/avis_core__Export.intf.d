lib/core/export.mli: Avis_sitl Avis_util Campaign Json Mode_graph Report
