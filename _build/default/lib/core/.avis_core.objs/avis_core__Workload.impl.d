lib/core/workload.ml: Avis_geo Avis_mavlink Avis_physics Avis_sitl Float Gcs Geodesy List Msg Sim Vec3
