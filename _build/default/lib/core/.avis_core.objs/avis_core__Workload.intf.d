lib/core/workload.mli: Avis_geo Avis_mavlink Avis_physics Avis_sitl Gcs Msg Sim
