lib/core/strat_bfi.mli: Bfi_model Prune Search
