lib/core/dfs.mli: Prune Search
