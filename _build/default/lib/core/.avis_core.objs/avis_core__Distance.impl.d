lib/core/distance.ml: Array Avis_geo Avis_sitl List Mode_graph Trace Vec3
