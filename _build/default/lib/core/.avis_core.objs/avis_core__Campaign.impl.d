lib/core/campaign.ml: Avis_firmware Avis_hinj Avis_sensors Avis_sitl Avis_util Budget Bug List Monitor Policy Printf Report Scenario Search Sim Workload
