lib/core/replay.ml: Avis_hinj Avis_sitl Campaign List Monitor Report Sim Workload
