lib/core/bfs.mli: Prune Search
