lib/core/search.ml: Array Avis_hinj Avis_sensors Avis_sitl Avis_util Hashtbl List Scenario Sensor Suite
