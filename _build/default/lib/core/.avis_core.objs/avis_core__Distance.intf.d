lib/core/distance.mli: Avis_sitl Mode_graph Trace
