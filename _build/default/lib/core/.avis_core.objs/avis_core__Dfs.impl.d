lib/core/dfs.ml: Prune Scenario Search
