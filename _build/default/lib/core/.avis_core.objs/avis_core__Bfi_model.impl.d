lib/core/bfi_model.ml: Avis_sensors Avis_util Float Hashtbl List Option Printf Scenario Sensor String
