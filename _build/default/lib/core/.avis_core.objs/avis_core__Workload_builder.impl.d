lib/core/workload_builder.ml: Avis_geo Avis_mavlink Float List Printf Workload
