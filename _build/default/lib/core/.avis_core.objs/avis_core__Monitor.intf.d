lib/core/monitor.mli: Avis_sitl Distance Mode_graph Sim
