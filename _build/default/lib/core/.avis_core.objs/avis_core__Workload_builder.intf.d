lib/core/workload_builder.mli: Avis_physics Workload
