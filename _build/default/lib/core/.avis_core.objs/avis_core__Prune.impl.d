lib/core/prune.ml: Hashtbl List Scenario
