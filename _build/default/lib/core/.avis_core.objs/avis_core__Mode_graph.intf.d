lib/core/mode_graph.mli:
