lib/core/prune.mli: Scenario
