open Avis_sensors

type fault = Avis_hinj.Hinj.fault = { sensor : Sensor.id; at : float }

type t = fault list

let empty = []

let bucket at = int_of_float (Float.round (at *. 1000.0))

let compare_fault a b =
  match compare (bucket a.at) (bucket b.at) with
  | 0 -> Sensor.compare_id a.sensor b.sensor
  | c -> c

let of_faults faults =
  let sorted = List.sort_uniq compare_fault faults in
  sorted

let add t fault = of_faults (fault :: t)

let union a b = of_faults (a @ b)

let to_plan t = t

let cardinality = List.length

let key t =
  String.concat ";"
    (List.map
       (fun f -> Printf.sprintf "%s@%d" (Sensor.id_to_string f.sensor) (bucket f.at))
       t)

let role_key t =
  String.concat ";"
    (List.map
       (fun f ->
         let role =
           match Sensor.role_of f.sensor with
           | Sensor.Primary -> "P"
           | Sensor.Backup -> "B"
         in
         Printf.sprintf "%s/%s@%d"
           (Sensor.kind_to_string f.sensor.Sensor.kind)
           role (bucket f.at))
       t)

let subsumes ~smaller ~larger =
  List.for_all
    (fun f -> List.exists (fun g -> compare_fault f g = 0) larger)
    smaller

let sensors_failed t = List.map (fun f -> f.sensor) t

let first_injection_time = function
  | [] -> None
  | f :: rest ->
    Some (List.fold_left (fun acc g -> Float.min acc g.at) f.at rest)

let pp ppf t =
  if t = [] then Format.fprintf ppf "(no faults)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      (fun ppf f ->
        Format.fprintf ppf "%s@%.2fs" (Sensor.id_to_string f.sensor) f.at)
      ppf t

let to_string t = Format.asprintf "%a" pp t
