(** The high-level workload framework (§V-A, Fig. 8).

    Raw MAVLink is awkward for building workloads — the mission-upload
    handshake alone is a multi-message transaction driven by the vehicle —
    so this framework wraps the ground-control station in blocking-style
    primitives ([wait_time], [upload_mission], [arm_system_completely],
    [wait_altitude], …). Each primitive pumps the simulator step by step
    (the step() RPC of Fig. 7) until its condition holds, and raises
    {!Workload_failed} if the run ends first, so workloads can never
    deadlock against the vehicle.

    Two default workloads mirror the paper's: a *manual box* (position-hold
    mode around a 20 m × 20 m square at 20 m) and an *auto box* mission
    (waypoints, then return to launch); [fence_mission] adds the geofenced
    variant and [quickstart] is Fig. 8's takeoff-and-land verbatim. *)

open Avis_mavlink
open Avis_sitl

exception Workload_failed of string
(** The run ended (crash or time-out) before a wait completed, or the
    vehicle rejected a command. *)

(** Handle passed to a running workload. *)
type api

val sim : api -> Sim.t
val gcs : api -> Gcs.t

(** {2 Blocking primitives} *)

val step : api -> unit
(** Advance exactly one simulation time-step. *)

val wait_time : api -> float -> unit
(** Let the simulation run for the given number of seconds. *)

val wait_until : api -> ?timeout:float -> (api -> bool) -> unit
(** Pump until the predicate holds. [timeout] is in simulated seconds from
    now (default: until the run's duration cap). *)

val arm_system_completely : api -> unit
(** Send the arm command and wait for a positive acknowledgement. *)

val upload_mission : api -> Msg.mission_item list -> unit
(** Run the full COUNT → REQUEST… → ACK handshake to completion. *)

val enter_auto_mode : api -> unit
(** Request the Auto mission mode. *)

val takeoff : api -> float -> unit
(** Direct takeoff command to the given altitude (manual workloads). *)

val reposition : api -> north:float -> east:float -> alt:float -> unit
(** Send a position-hold target in local metres (manual mode). *)

val land_now : api -> unit
val return_to_launch : api -> unit

val wait_altitude : api -> ?tolerance:float -> float -> unit
(** Wait until telemetry reports the vehicle within [tolerance] (default
    0.75 m) of the given relative altitude. *)

val wait_mode : api -> int -> unit
(** Wait for a heartbeat carrying the given custom mode code. *)

val wait_disarmed : api -> unit

val local_position : api -> Avis_geo.Vec3.t
(** The vehicle's reported position converted back to local metres. *)

(** {2 Mission builders} *)

val takeoff_item : alt:float -> Msg.mission_item
val waypoint_item : api -> north:float -> east:float -> alt:float -> Msg.mission_item
(** Local offsets (metres from home) converted to geodetic coordinates. *)

val land_item : unit -> Msg.mission_item
val rtl_item : unit -> Msg.mission_item
val renumber : Msg.mission_item list -> Msg.mission_item list
(** Assign consecutive sequence numbers. *)

(** {2 Workloads} *)

type t = {
  name : string;
  description : string;
  environment : unit -> Avis_physics.Environment.t option;
      (** The physical environment this workload needs ([None] = benign). *)
  nominal_duration : float;  (** Simulated seconds a clean run takes. *)
  run : api -> unit;  (** Raises {!Workload_failed} on failure. *)
}

val execute : t -> Sim.t -> bool
(** Run the workload against a provisioned simulation; [true] when it
    completed (called [pass_test] in the paper's framework). *)

val quickstart : t
(** Fig. 8: wait, upload takeoff+land, arm, auto, wait up, wait down. *)

val manual_box : t
(** First default workload: position-hold around a 20 m box at 20 m. *)

val auto_box : t
(** Second default workload (fenceless variant): an auto mission around the
    box, then return to launch. *)

val fence_mission : t
(** The fenced variant: one leg crosses restricted airspace the firmware
    must refuse to enter. *)

val defaults : t list
(** The two default workloads used in the evaluation. *)

val by_name : string -> t option
