(** Redundancy-elimination policies (§IV-B1).

    Two policies from the paper plus plain deduplication:

    - {b found-bug pruning}: once a scenario triggered a bug, any scenario
      that merely adds more failures on top of it is skipped — a vehicle
      that cannot handle one failure will not handle more in the same
      context.
    - {b sensor-instance symmetry}: firmware behaviour depends on the
      *roles* of the failed instances (primary vs backup), not on which
      backup failed; scenarios equal up to backup permutation are run only
      once. For N instances of a kind this cuts the per-site combinations
      from [N·(2^N − 1)] to [2N − 1] (Fig. 6's 21 → 5 for three
      compasses).

    The tracker is shared mutable state across a search: record every run
    and every found bug, and query [should_prune] before running. *)

type t

val create : ?symmetry:bool -> ?found_bug:bool -> unit -> t
(** Both policies default to enabled; the flags exist for the ablation
    benchmarks. *)

val should_prune : t -> Scenario.t -> bool
(** True when the scenario is redundant: already run, equivalent under
    instance symmetry to one already run, or a superset of a scenario
    that already triggered a bug. *)

val note_run : t -> Scenario.t -> unit
val note_bug : t -> Scenario.t -> unit

val runs_recorded : t -> int
val bugs_recorded : t -> int

val symmetry_scenarios : instances:int -> int
(** [2N − 1]: distinct per-site scenarios for one sensor kind with [N]
    instances under the symmetry policy. *)

val unpruned_scenarios : instances:int -> int
(** [N·(2^N − 1)]: the paper's count without the policy. *)
