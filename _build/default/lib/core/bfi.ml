let make ?model ?(site_step_s = 0.1) ctx =
  let model = match model with Some m -> m | None -> Bfi_model.default () in
  let inner = Dfs.make ~site_step_s ctx in
  let rejected_streak = ref 0 in
  let best : (float * Scenario.t) option ref = ref None in
  let score scenario =
    let features =
      Bfi_model.features_of_scenario ~mode_at:ctx.Search.mode_at
        ~instances_of_kind:ctx.Search.instances_of_kind scenario
    in
    Bfi_model.predict model features
  in
  let next () =
    match inner.Search.next () with
    | Search.Exhausted -> Search.Exhausted
    | Search.Think cost -> Search.Think cost
    | Search.Run (scenario, _) ->
      let p = score scenario in
      if p > 0.5 then begin
        rejected_streak := 0;
        Search.Run (scenario, Bfi_model.inference_cost_s)
      end
      else begin
        incr rejected_streak;
        (match !best with
        | Some (bp, _) when bp >= p -> ()
        | Some _ | None -> best := Some (p, scenario));
        if !rejected_streak >= 30 then begin
          rejected_streak := 0;
          match !best with
          | Some (_, candidate) ->
            best := None;
            Search.Run (candidate, Bfi_model.inference_cost_s)
          | None -> Search.Think Bfi_model.inference_cost_s
        end
        else Search.Think Bfi_model.inference_cost_s
      end
  in
  let observe scenario result = inner.Search.observe scenario result in
  { Search.name = "BFI"; next; observe }
