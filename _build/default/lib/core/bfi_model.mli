(** The Bayesian fault-injection model (the BFI baseline's learner).

    BFI (Jha et al., DSN'19) uses an ML model trained on past incidents to
    predict which injection scenarios are likely to produce unsafe
    conditions. We reproduce it as a Naive-Bayes classifier over scenario
    features (operating mode at injection, failed sensor kinds, whether a
    whole kind is lost, failure multiplicity).

    The paper attributes BFI's misses to its training distribution: past
    incidents are concentrated on single-sensor failures in the main
    flight modes, so the model never predicts unsafe conditions at takeoff
    or landing boundaries, nor for multi-sensor combinations. The
    [synthetic_corpus] reproduces exactly that distribution. Inference is
    charged at the ~10 s per labelled scenario the paper measured. *)

open Avis_sensors

type features = {
  mode_class : string;
      (** Operating mode at the first injection, with waypoint legs
          collapsed to one class. *)
  kinds : Sensor.kind list;  (** Distinct sensor kinds touched. *)
  whole_kind_lost : bool;  (** Some kind loses every instance. *)
  multiplicity : int;  (** Number of distinct kinds failed. *)
}

val mode_class_of_label : string -> string
(** "Waypoint 7" → "Waypoint"; other labels unchanged. *)

val features_of_scenario :
  mode_at:(float -> string option) ->
  instances_of_kind:(Sensor.kind -> int) ->
  Scenario.t ->
  features
(** Build features using the profiling run's mode timeline and the
    vehicle's sensor complement. Empty scenarios get mode class
    ["Pre-Flight"]. *)

type t

val train : (features * bool) list -> t
(** Laplace-smoothed Naive Bayes; the boolean labels are "caused an unsafe
    condition". Raises [Invalid_argument] on an empty corpus. *)

val predict : t -> features -> float
(** Posterior probability of an unsafe condition. *)

val synthetic_corpus : ?size:int -> Avis_util.Rng.t -> (features * bool) list
(** The BFI training distribution described above (default 400 examples). *)

val default : unit -> t
(** Trained on the synthetic corpus with a fixed seed. *)

val inference_cost_s : float
(** Wall-clock charged per prediction (the paper's ~10 s). *)
