(** The invariant monitor (§IV-C).

    Two rules, as in the paper:

    - {b Safety} — the vehicle does not collide with anything (the crash
      detector also reports geofence violations).
    - {b Liveliness} — the run must track the profiling runs: at every time
      offset the state must be within τ of at least one profiling run.

    Liveliness may legitimately be sacrificed to preserve safety, so
    developer-specified *safe modes* carry their own invariants instead:
    Return To Launch must make progress home (or climb to its return
    altitude), Land must descend (or be freshly on the ground), Disarmed
    must be on the ground, and a Manual hover (the degraded GPS-loss hold)
    is excused while it stays put. *)

open Avis_sitl

type profile

val build_profile : Sim.outcome list -> profile
(** From fault-free profiling runs (the paper uses a handful with
    scheduler jitter). Raises [Invalid_argument] on an empty list. *)

val graph : profile -> Mode_graph.t
val tau : profile -> float
val normalisers : profile -> Distance.t

type symptom = Crash | Fly_away | Takeoff_failure | Stalled

val symptom_to_string : symptom -> string

type violation_kind =
  | Safety of string  (** Collision or tipover; the payload describes it. *)
  | Fence_breach
  | Liveliness
  | Safe_mode_invariant of string  (** Which safe mode's invariant failed. *)

type violation = {
  kind : violation_kind;
  time : float;  (** When the violation was detected. *)
  mode : string;  (** Operating mode at that moment. *)
  symptom : symptom;
}

type verdict = Safe | Unsafe of violation

val check : ?metric:Distance.metric -> profile -> Sim.outcome -> verdict
(** Judge a test run against the profile. [metric] selects the liveliness
    state metric (default [Full]; [Position_only] exists for the
    ablation). *)

val detection_time : ?metric:Distance.metric -> profile -> Sim.outcome -> float option
(** Time of the first detected violation, if any — used by the ablation
    comparing detection latency of the two metrics. *)

val describe : violation -> string
