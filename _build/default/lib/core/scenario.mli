(** Fault-injection scenarios.

    A scenario is a set of (sensor instance, injection time) pairs — the
    paper's set of (Timestamp, Fault) tuples. Scenarios are kept in a
    canonical sorted form so that equality, hashing and the pruning
    policies are well defined. *)

open Avis_sensors

type fault = Avis_hinj.Hinj.fault = { sensor : Sensor.id; at : float }

type t = fault list
(** Canonically sorted (by time, then sensor id). *)

val empty : t

val of_faults : fault list -> t
(** Sort into canonical form and drop exact duplicates. *)

val add : t -> fault -> t

val union : t -> t -> t

val to_plan : t -> Avis_hinj.Hinj.plan

val cardinality : t -> int

val key : t -> string
(** Canonical string key for the explored-scenario hash set. Times are
    bucketed to the millisecond. *)

val role_key : t -> string
(** Key under sensor-instance symmetry: instances are reduced to their
    roles, so two scenarios failing "some backup compass at t" get the
    same key (§IV-B's symmetry policy). *)

val subsumes : smaller:t -> larger:t -> bool
(** [subsumes ~smaller ~larger] when every fault of [smaller] appears in
    [larger] (same instance, same time bucket) — the found-bug pruning
    relation. *)

val sensors_failed : t -> Sensor.id list

val first_injection_time : t -> float option

val pp : Format.formatter -> t -> unit
val to_string : t -> string
