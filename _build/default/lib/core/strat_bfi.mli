(** Stratified BFI — the paper's improved baseline.

    BFI's learned model gates which scenarios to simulate, but the
    candidates are scheduled by SABRE, so the model is at least asked
    about the right sites. Its remaining weakness is the training
    distribution: scenarios in modes the workload (and the incident
    history) spend little time in — takeoff, landing, pre-flight — are
    predicted safe and never simulated, which is exactly why it misses
    the Table II bugs in those windows. *)

val make : ?model:Bfi_model.t -> ?prune:Prune.t -> Search.context -> Search.t
