(** Breadth-first exploration of the fault space (§IV-B's second strawman).

    Enumerates injection sites forward in time at sensor-sampling
    granularity: all failure sets at the earliest site, then the next
    site, and so on — thorough but slow to reach dissimilar execution
    contexts, exactly the weakness SABRE's stratification fixes. Used by
    the Fig. 5 reproduction and the search-order ablation. *)

val make :
  ?start_s:float -> ?site_step_s:float -> ?prune:Prune.t -> Search.context -> Search.t
(** [start_s] is the first injection site (default 0). *)
