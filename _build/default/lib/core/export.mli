(** Export of runs, findings and campaign results as artefacts.

    The paper publishes the system logs behind every reported unsafe
    condition; these converters produce the equivalent machine-readable
    artefacts — JSON for traces, reports and campaign summaries, and
    Graphviz DOT for the mode graph. *)

open Avis_util

val trace_to_json : Avis_sitl.Trace.t -> Json.t
(** The 10 Hz state series: time, position, acceleration, mode. *)

val outcome_to_json : Avis_sitl.Sim.outcome -> Json.t
(** Full run record: trace, transitions, crash, workload result. *)

val report_to_json : Report.t -> Json.t
(** A finding: scenario, violation, injection mode, mode-relative offsets,
    ground-truth bug attribution. *)

val campaign_to_json : Campaign.result -> Json.t
(** Summary plus every finding. *)

val mode_graph_to_dot : Mode_graph.t -> string
(** Graphviz rendering of the observed mode graph. *)

val write_file : path:string -> string -> unit
(** Write a string artefact, creating the parent directory if needed
    (single level). *)
