(** Random fault injection (the Rnd baseline of Table I).

    Sites are drawn uniformly from all sensor readings and scenarios are
    chosen at random, as in the paper — which makes the combinations that
    actually defeat the sensor redundancy (every instance of a kind, in a
    narrow window) correspondingly unlikely. *)

val make : ?max_runs:int -> Search.context -> Search.t
(** [max_runs] bounds the stream (default 1_000_000; the budget normally
    stops the campaign long before). Duplicate scenarios are re-rolled a
    few times, then surrendered to. *)
