(** Common interface for the fault-space search strategies.

    A strategy is a stateful generator: [next] yields the scenario to
    simulate next together with the inference wall-clock the strategy spent
    deciding (zero for everything except the BFI variants), and [observe]
    feeds back the run's outcome — SABRE enqueues the run's mode
    transitions as new injection sites, BFI's model is static, etc. *)

open Avis_sensors

(** What every strategy knows before searching: the profiling run. *)
type context = {
  transitions : (float * string * string) list;
      (** Mode transitions of the fault-free profiling run (time, from, to). *)
  mission_duration : float;  (** Length of the profiling run, seconds. *)
  instances : Sensor.id list;  (** The vehicle's sensor instances. *)
  instances_of_kind : Sensor.kind -> int;
  mode_at : float -> string option;
      (** Mode timeline of the profiling run. *)
  rng : Avis_util.Rng.t;
}

val context_of_outcome :
  rng:Avis_util.Rng.t -> suite_complement:Avis_sensors.Suite.complement ->
  Avis_sitl.Sim.outcome -> context
(** Build the search context from a profiling run's outcome. *)

type run_result = {
  unsafe : bool;
  observed_transitions : float list;
      (** Transition timestamps observed during the injected run. *)
}

(** One scheduling decision. *)
type step =
  | Run of Scenario.t * float
      (** Simulate this scenario; the float is inference wall-clock spent
          deciding (zero except for the BFI variants). *)
  | Think of float
      (** No scenario yet, but this much inference wall-clock was burned
          considering (and rejecting) candidates. *)
  | Exhausted

type t = {
  name : string;
  next : unit -> step;
  observe : Scenario.t -> run_result -> unit;
}

(** {2 Shared machinery} *)

val candidate_sets : context -> at:float -> base:Scenario.t -> Scenario.t list
(** All scenarios obtained by adding a non-empty failure set at time [at]
    on top of [base]. The powerset of Algorithm 1 ranges over sensor
    *types* (instance symmetry already folds the instances of a type):
    whole-kind outages first, then pairs of whole-kind outages (multi-type
    losses such as PX4-13291's GPS+battery), then single-instance failures
    (which exercise the failover paths). Larger combinations arise by
    composition across sites (lines 11–14). *)

val random_scenario : context -> Scenario.t
(** The Rnd baseline's sampler: a uniformly random reading (site), failing
    mostly a single instance — matching the paper's "chose fault injection
    sites from all sensor readings with equal probability". *)
