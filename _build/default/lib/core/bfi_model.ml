open Avis_sensors

type features = {
  mode_class : string;
  kinds : Sensor.kind list;
  whole_kind_lost : bool;
  multiplicity : int;
}

let mode_class_of_label label =
  match String.split_on_char ' ' label with
  | "Waypoint" :: _ -> "Waypoint"
  | _ -> label

let features_of_scenario ~mode_at ~instances_of_kind scenario =
  let mode_class =
    match Scenario.first_injection_time scenario with
    | None -> "Pre-Flight"
    | Some at -> (
      match mode_at at with
      | Some label -> mode_class_of_label label
      | None -> "Pre-Flight")
  in
  let kinds =
    List.sort_uniq compare
      (List.map (fun id -> id.Sensor.kind) (Scenario.sensors_failed scenario))
  in
  let whole_kind_lost =
    List.exists
      (fun kind ->
        let failed =
          List.length
            (List.filter
               (fun id -> id.Sensor.kind = kind)
               (Scenario.sensors_failed scenario))
        in
        failed >= instances_of_kind kind)
      kinds
  in
  { mode_class; kinds; whole_kind_lost; multiplicity = List.length kinds }

let tokens f =
  (* Multiplicities above two share the two-failure token: the incident
     corpus contains no higher-order combinations, and an unseen token
     would otherwise be neutral — letting the cruise features approve
     arbitrarily deep composites the model has no evidence about. *)
  ("mode:" ^ f.mode_class)
  :: Printf.sprintf "mult:%d" (min f.multiplicity 2)
  :: (if f.whole_kind_lost then "whole-kind" else "partial")
  :: List.map (fun k -> "kind:" ^ Sensor.kind_to_string k) f.kinds

type t = {
  prior_unsafe : float;
  unsafe_counts : (string, int) Hashtbl.t;
  safe_counts : (string, int) Hashtbl.t;
  unsafe_total : int;
  safe_total : int;
  vocabulary : int;
}

let train corpus =
  if corpus = [] then invalid_arg "Bfi_model.train: empty corpus";
  let unsafe_counts = Hashtbl.create 64 in
  let safe_counts = Hashtbl.create 64 in
  let vocab = Hashtbl.create 64 in
  let unsafe_total = ref 0 and safe_total = ref 0 in
  let unsafe_examples = ref 0 in
  List.iter
    (fun (f, unsafe) ->
      if unsafe then incr unsafe_examples;
      let table = if unsafe then unsafe_counts else safe_counts in
      let total = if unsafe then unsafe_total else safe_total in
      List.iter
        (fun tok ->
          Hashtbl.replace vocab tok ();
          Hashtbl.replace table tok
            (1 + Option.value ~default:0 (Hashtbl.find_opt table tok));
          incr total)
        (tokens f))
    corpus;
  {
    prior_unsafe = float_of_int !unsafe_examples /. float_of_int (List.length corpus);
    unsafe_counts;
    safe_counts;
    unsafe_total = !unsafe_total;
    safe_total = !safe_total;
    vocabulary = Hashtbl.length vocab;
  }

let log_likelihood counts total vocabulary tok =
  let c = Option.value ~default:0 (Hashtbl.find_opt counts tok) in
  log (float_of_int (c + 1) /. float_of_int (total + vocabulary))

let predict t f =
  let toks = tokens f in
  let log_unsafe =
    log (Float.max 1e-9 t.prior_unsafe)
    +. List.fold_left
         (fun acc tok ->
           acc +. log_likelihood t.unsafe_counts t.unsafe_total t.vocabulary tok)
         0.0 toks
  in
  let log_safe =
    log (Float.max 1e-9 (1.0 -. t.prior_unsafe))
    +. List.fold_left
         (fun acc tok ->
           acc +. log_likelihood t.safe_counts t.safe_total t.vocabulary tok)
         0.0 toks
  in
  1.0 /. (1.0 +. exp (log_safe -. log_unsafe))

(* The incident distribution the paper describes: plenty of single-kind
   whole-kind failures during cruise (waypoint legs) and manual flight,
   some of them unsafe; takeoff/landing/pre-flight examples are rare and
   recorded as handled; multi-sensor combinations are absent from the
   unsafe side entirely. *)
let synthetic_corpus ?(size = 400) rng =
  let cruise_modes = [| "Waypoint"; "Manual" |] in
  let edge_modes = [| "Takeoff"; "Land"; "Pre-Flight"; "Return To Launch" |] in
  let kinds =
    [|
      Sensor.Accelerometer;
      Sensor.Gyroscope;
      Sensor.Gps;
      Sensor.Compass;
      Sensor.Barometer;
    |]
  in
  List.init size (fun _ ->
      let in_cruise = Avis_util.Rng.uniform rng < 0.8 in
      let mode_class =
        if in_cruise then Avis_util.Rng.choose rng cruise_modes
        else Avis_util.Rng.choose rng edge_modes
      in
      let kind = Avis_util.Rng.choose rng kinds in
      let whole = Avis_util.Rng.uniform rng < 0.7 in
      let multi = Avis_util.Rng.uniform rng < 0.15 in
      let kinds_failed =
        if multi then
          List.sort_uniq compare [ kind; Avis_util.Rng.choose rng kinds ]
        else [ kind ]
      in
      let features =
        {
          mode_class;
          kinds = kinds_failed;
          whole_kind_lost = whole;
          multiplicity = List.length kinds_failed;
        }
      in
      (* Label: historical incidents show unsafe outcomes for whole-kind
         single failures in cruise; everything else was handled (or never
         observed failing). *)
      let unsafe =
        in_cruise && whole
        && List.length kinds_failed = 1
        && Avis_util.Rng.uniform rng < 0.75
      in
      (features, unsafe))

let default () = train (synthetic_corpus (Avis_util.Rng.create 42))

let inference_cost_s = 10.0
