open Avis_geo
open Avis_mavlink
open Avis_sitl

exception Workload_failed of string

type api = { sim : Sim.t; gcs : Gcs.t }

let sim api = api.sim
let gcs api = api.gcs

let step api =
  if Sim.finished api.sim then raise (Workload_failed "run ended mid-workload");
  Sim.step api.sim

let wait_until api ?timeout pred =
  let deadline =
    match timeout with Some s -> Sim.time api.sim +. s | None -> infinity
  in
  let rec loop () =
    if pred api then ()
    else if Sim.time api.sim >= deadline then
      raise (Workload_failed "wait timed out")
    else begin
      step api;
      loop ()
    end
  in
  loop ()

let wait_time api seconds =
  let until = Sim.time api.sim +. seconds in
  wait_until api (fun api -> Sim.time api.sim >= until)

let local_position api =
  let geo =
    {
      Geodesy.lat = Gcs.latitude api.gcs;
      lon = Gcs.longitude api.gcs;
      alt = Gcs.relative_alt api.gcs;
    }
  in
  Geodesy.to_local (Sim.frame api.sim) geo

let arm_system_completely api =
  Gcs.send_command api.gcs ~command:Msg.cmd_arm_disarm ~param1:1.0 ();
  wait_until api ~timeout:10.0 (fun api ->
      match Gcs.command_ack api.gcs ~command:Msg.cmd_arm_disarm with
      | Some true -> true
      | Some false -> raise (Workload_failed "arming rejected")
      | None -> false)

let upload_mission api items =
  Gcs.start_mission_upload api.gcs items;
  wait_until api ~timeout:30.0 (fun api ->
      match Gcs.upload_state api.gcs with
      | Gcs.Upload_done -> true
      | Gcs.Upload_failed -> raise (Workload_failed "mission upload rejected")
      | Gcs.Upload_idle | Gcs.Upload_in_progress -> false)

let enter_auto_mode api = Gcs.request_mode api.gcs 3

let takeoff api alt =
  Gcs.send_command api.gcs ~command:Msg.cmd_takeoff ~param1:alt ();
  wait_until api ~timeout:10.0 (fun api ->
      match Gcs.command_ack api.gcs ~command:Msg.cmd_takeoff with
      | Some true -> true
      | Some false -> raise (Workload_failed "takeoff rejected")
      | None -> false)

let reposition api ~north ~east ~alt =
  Gcs.send_command api.gcs ~command:Msg.cmd_reposition ~param1:north
    ~param2:east ~param3:alt ()

let land_now api = Gcs.send_command api.gcs ~command:Msg.cmd_land ~param1:0.0 ()

let return_to_launch api =
  Gcs.send_command api.gcs ~command:Msg.cmd_return_to_launch ~param1:0.0 ()

let wait_altitude api ?(tolerance = 0.75) alt =
  wait_until api (fun api ->
      Float.abs (Gcs.relative_alt api.gcs -. alt) <= tolerance)

let wait_mode api code =
  wait_until api (fun api -> Gcs.vehicle_mode api.gcs = Some code)

let wait_disarmed api =
  (* Armed state rides on heartbeats (1 Hz); wait for one that says so. *)
  let seen_armed = ref false in
  wait_until api (fun api ->
      let armed = Gcs.armed api.gcs in
      if armed then seen_armed := true;
      !seen_armed && not armed)

let takeoff_item ~alt =
  { Msg.seq = 0; command = Msg.cmd_takeoff; param1 = 0.0; x = 0.0; y = 0.0; z = alt }

let waypoint_item api ~north ~east ~alt =
  let geo = Geodesy.of_local (Sim.frame api.sim) (Vec3.make north east alt) in
  {
    Msg.seq = 0;
    command = Msg.cmd_waypoint;
    param1 = 0.0;
    x = geo.Geodesy.lat;
    y = geo.Geodesy.lon;
    z = alt;
  }

let land_item () =
  { Msg.seq = 0; command = Msg.cmd_land; param1 = 0.0; x = 0.0; y = 0.0; z = 0.0 }

let rtl_item () =
  {
    Msg.seq = 0;
    command = Msg.cmd_return_to_launch;
    param1 = 0.0;
    x = 0.0;
    y = 0.0;
    z = 0.0;
  }

let renumber items = List.mapi (fun i item -> { item with Msg.seq = i }) items

type t = {
  name : string;
  description : string;
  environment : unit -> Avis_physics.Environment.t option;
  nominal_duration : float;
  run : api -> unit;
}

let execute w sim =
  let api = { sim; gcs = Sim.gcs sim } in
  match w.run api with
  | () -> true
  | exception Workload_failed _ -> false

let no_environment () = None

let quickstart =
  {
    name = "quickstart";
    description = "Fig. 8: takeoff to 20 m under the auto mission, then land";
    environment = no_environment;
    nominal_duration = 45.0;
    run =
      (fun api ->
        wait_time api 2.0;
        upload_mission api
          (renumber [ takeoff_item ~alt:20.0; land_item () ]);
        arm_system_completely api;
        enter_auto_mode api;
        wait_altitude api 20.0;
        wait_altitude api 0.0;
        wait_disarmed api);
  }

let box_corners = [ (20.0, 0.0); (20.0, 20.0); (0.0, 20.0); (0.0, 0.0) ]

let manual_box =
  {
    name = "manual-box";
    description =
      "Position-hold workload: ascend to 20 m, fly the perimeter of a \
       20 m x 20 m box, land at the launch point";
    environment = no_environment;
    nominal_duration = 75.0;
    run =
      (fun api ->
        wait_time api 2.0;
        arm_system_completely api;
        takeoff api 20.0;
        wait_altitude api 20.0;
        (* The vehicle switches to Manual only after the climb completes;
           repositions sent before that would be rejected. *)
        wait_mode api 2;
        List.iter
          (fun (north, east) ->
            reposition api ~north ~east ~alt:20.0;
            wait_until api ~timeout:30.0 (fun api ->
                let open Vec3 in
                let p = local_position api in
                norm (horizontal (sub p (make north east 0.0))) < 2.5))
          box_corners;
        land_now api;
        wait_disarmed api);
  }

let auto_box =
  {
    name = "auto-box";
    description =
      "Auto mission: takeoff to 20 m, the four corners of a 20 m box, \
       return to launch";
    environment = no_environment;
    nominal_duration = 85.0;
    run =
      (fun api ->
        wait_time api 2.0;
        upload_mission api
          (renumber
             (takeoff_item ~alt:20.0
             :: List.map
                  (fun (north, east) -> waypoint_item api ~north ~east ~alt:20.0)
                  box_corners
             @ [ rtl_item () ]));
        arm_system_completely api;
        enter_auto_mode api;
        wait_altitude api 20.0;
        wait_disarmed api);
  }

let fence_mission =
  {
    name = "fence-mission";
    description =
      "Auto mission whose second leg crosses a geofence; the firmware must \
       refuse the leg and return to launch";
    environment =
      (fun () ->
        Some
          (Avis_physics.Environment.create
             ~fence:
               (Some
                  {
                    Avis_physics.Environment.centre_xy = Vec3.zero;
                    radius_m = 30.0;
                    max_alt_m = 60.0;
                  })
             ()));
    nominal_duration = 70.0;
    run =
      (fun api ->
        wait_time api 2.0;
        upload_mission api
          (renumber
             [
               takeoff_item ~alt:20.0;
               waypoint_item api ~north:20.0 ~east:0.0 ~alt:20.0;
               (* This target lies outside the 30 m fence. *)
               waypoint_item api ~north:70.0 ~east:0.0 ~alt:20.0;
               rtl_item ();
             ]);
        arm_system_completely api;
        enter_auto_mode api;
        wait_altitude api 20.0;
        wait_disarmed api);
  }

let defaults = [ manual_box; auto_box ]

let all = [ quickstart; manual_box; auto_box; fence_mission ]

let by_name name = List.find_opt (fun w -> w.name = name) all
