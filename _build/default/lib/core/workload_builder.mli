(** Combinators for building custom workloads.

    The paper's framework lets developers extend the default workloads with
    their own; these builders assemble parameterised missions from the
    blocking primitives in {!Workload}. Each produces an ordinary
    {!Workload.t}, so custom workloads drive campaigns, the monitor and the
    searchers exactly like the built-in ones. *)

val auto_polygon :
  ?name:string -> sides:int -> radius:float -> alt:float -> unit -> Workload.t
(** An auto mission around a regular polygon centred on home: takeoff,
    one waypoint per vertex, return to launch. [sides] must be at least 3.
    The paper's box missions are the [sides = 4] case. *)

val manual_polygon :
  ?name:string -> sides:int -> radius:float -> alt:float -> unit -> Workload.t
(** The same shape flown with position-hold repositioning commands. *)

val altitude_sweep : ?name:string -> levels:float list -> unit -> Workload.t
(** Take off to the first level, then reposition through the remaining
    altitudes in place, and land. Exercises climbs and descents — the
    vertical failure-handling paths. [levels] must be non-empty and
    positive. *)

val with_environment :
  Workload.t -> (unit -> Avis_physics.Environment.t option) -> Workload.t
(** Override a workload's environment (e.g. to add wind or obstacles). *)

val with_name : Workload.t -> string -> Workload.t
