type state = {
  ctx : Search.context;
  site_step_s : float;
  prune : Prune.t;
  mutable at : float;
  mutable current : Scenario.t list;
}

let make ?(start_s = 0.0) ?(site_step_s = 0.1) ?prune ctx =
  let prune = match prune with Some p -> p | None -> Prune.create () in
  let st = { ctx; site_step_s; prune; at = start_s; current = [] } in
  let rec next () =
    match st.current with
    | scenario :: rest ->
      st.current <- rest;
      if Prune.should_prune st.prune scenario then next ()
      else Search.Run (scenario, 0.0)
    | [] ->
      if st.at > st.ctx.Search.mission_duration then Search.Exhausted
      else begin
        st.current <- Search.candidate_sets st.ctx ~at:st.at ~base:Scenario.empty;
        st.at <- st.at +. st.site_step_s;
        next ()
      end
  in
  let observe scenario (result : Search.run_result) =
    Prune.note_run st.prune scenario;
    if result.Search.unsafe then Prune.note_bug st.prune scenario
  in
  { Search.name = "BFS"; next; observe }
