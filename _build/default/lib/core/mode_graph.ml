type t = {
  nodes : string array;
  index : (string, int) Hashtbl.t;
  dist : int array array;  (* symmetrised shortest paths; max_int = infinite *)
  diameter : int;
  edges : (string * string) list;
}

let build ~transitions =
  let index = Hashtbl.create 16 in
  let nodes = ref [] in
  let intern label =
    match Hashtbl.find_opt index label with
    | Some i -> i
    | None ->
      let i = Hashtbl.length index in
      Hashtbl.add index label i;
      nodes := label :: !nodes;
      i
  in
  let edge_set = Hashtbl.create 16 in
  List.iter
    (fun run ->
      List.iter
        (fun (from_mode, to_mode) ->
          let a = intern from_mode and b = intern to_mode in
          if a <> b then Hashtbl.replace edge_set (a, b) ())
        run)
    transitions;
  let n = Hashtbl.length index in
  let nodes = Array.of_list (List.rev !nodes) in
  let inf = max_int / 4 in
  let dist = Array.make_matrix (max n 1) (max n 1) inf in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0
  done;
  Hashtbl.iter (fun (a, b) () -> dist.(a).(b) <- 1) edge_set;
  (* Floyd–Warshall; the graphs have at most a dozen modes. *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if dist.(i).(k) + dist.(k).(j) < dist.(i).(j) then
          dist.(i).(j) <- dist.(i).(k) + dist.(k).(j)
      done
    done
  done;
  (* Symmetrise: distance between modes is direction-free. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = min dist.(i).(j) dist.(j).(i) in
      dist.(i).(j) <- d;
      dist.(j).(i) <- d
    done
  done;
  let diameter = ref 1 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if dist.(i).(j) < inf && dist.(i).(j) > !diameter then
        diameter := dist.(i).(j)
    done
  done;
  let edges =
    Hashtbl.fold (fun (a, b) () acc -> (nodes.(a), nodes.(b)) :: acc) edge_set []
  in
  { nodes; index; dist; diameter = !diameter; edges }

let modes t = Array.to_list t.nodes

let has_mode t label = Hashtbl.mem t.index label

let diameter t = t.diameter

let distance t a b =
  if a = b then 0
  else
    match (Hashtbl.find_opt t.index a, Hashtbl.find_opt t.index b) with
    | Some i, Some j ->
      let d = t.dist.(i).(j) in
      if d >= max_int / 4 then t.diameter else d
    | None, _ | _, None -> t.diameter

let edges t = t.edges
