type t = {
  symmetry : bool;
  found_bug : bool;
  seen_keys : (string, unit) Hashtbl.t;
  seen_role_keys : (string, unit) Hashtbl.t;
  mutable bug_scenarios : Scenario.t list;
  mutable runs : int;
}

let create ?(symmetry = true) ?(found_bug = true) () =
  {
    symmetry;
    found_bug;
    seen_keys = Hashtbl.create 256;
    seen_role_keys = Hashtbl.create 256;
    bug_scenarios = [];
    runs = 0;
  }

let should_prune t scenario =
  Hashtbl.mem t.seen_keys (Scenario.key scenario)
  || (t.symmetry && Hashtbl.mem t.seen_role_keys (Scenario.role_key scenario))
  || (t.found_bug
     && List.exists
          (fun bug -> Scenario.subsumes ~smaller:bug ~larger:scenario)
          t.bug_scenarios)

let note_run t scenario =
  t.runs <- t.runs + 1;
  Hashtbl.replace t.seen_keys (Scenario.key scenario) ();
  if t.symmetry then
    Hashtbl.replace t.seen_role_keys (Scenario.role_key scenario) ()

let note_bug t scenario = t.bug_scenarios <- scenario :: t.bug_scenarios

let runs_recorded t = t.runs
let bugs_recorded t = List.length t.bug_scenarios

let symmetry_scenarios ~instances = (2 * instances) - 1

let unpruned_scenarios ~instances =
  instances * ((1 lsl instances) - 1)
