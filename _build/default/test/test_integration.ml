(* End-to-end tests: golden missions fly cleanly on both firmware
   personalities, the monitor accepts clean runs and rejects each
   reproduced bug's documented scenario, flawed paths stay silent when
   their flags are off, campaigns find bugs, and recorded findings replay
   under different nondeterminism. *)

open Avis_sensors
open Avis_firmware
open Avis_sitl
open Avis_core

let fail_kind ?(n = 2) kind at =
  List.init n (fun index -> { Avis_hinj.Hinj.sensor = { Sensor.kind; index }; at })

let run_workload ?(enabled = []) ?(seed = 0) ?(plan = []) policy workload =
  let base = Sim.default_config policy in
  let config =
    {
      base with
      Sim.seed;
      enabled_bugs = enabled;
      max_duration = workload.Workload.nominal_duration +. 60.0;
      environment = workload.Workload.environment ();
    }
  in
  let sim = Sim.create ~plan config in
  let passed = Workload.execute workload sim in
  Sim.outcome sim ~workload_passed:passed

let transition_time outcome ~to_mode =
  match
    List.find_opt
      (fun tr -> tr.Avis_hinj.Hinj.to_mode = to_mode)
      outcome.Sim.transitions
  with
  | Some tr -> tr.Avis_hinj.Hinj.time
  | None -> Alcotest.fail ("no transition into " ^ to_mode)

let test_golden_runs () =
  List.iter
    (fun policy ->
      List.iter
        (fun workload ->
          let o = run_workload policy workload in
          Alcotest.(check bool)
            (policy.Policy.name ^ "/" ^ workload.Workload.name ^ " passes")
            true
            (o.Sim.workload_passed && o.Sim.crash = None))
        [ Workload.quickstart; Workload.manual_box; Workload.auto_box;
          Workload.fence_mission ])
    [ Policy.apm; Policy.px4 ]

let test_fence_respected () =
  let o = run_workload Policy.apm Workload.fence_mission in
  Alcotest.(check bool) "no breach" false o.Sim.fence_breached;
  Alcotest.(check bool) "fence stop triggered RTL" true
    (List.exists
       (fun tr -> tr.Avis_hinj.Hinj.to_mode = "Return To Launch")
       o.Sim.transitions)

(* Each unknown bug is triggerable by failing its documented sensor inside
   its documented window, and the monitor flags the run. *)
let bug_scenario (golden : Sim.outcome) bug =
  let info = Bug.info bug in
  let w = info.Bug.window in
  let site =
    List.find_map
      (fun tr ->
        let from_phase = Phase.of_label tr.Avis_hinj.Hinj.from_mode in
        let to_phase = Phase.of_label tr.Avis_hinj.Hinj.to_mode in
        match (from_phase, to_phase) with
        | Some f, Some t
          when Phase.matches w.Bug.from_phase f && Phase.matches w.Bug.to_phase t ->
          Some tr.Avis_hinj.Hinj.time
        | _ -> None)
      golden.Sim.transitions
  in
  match site with
  | Some t ->
    let at = t +. Float.min 1.0 (w.Bug.post_s /. 2.0) in
    let plan = fail_kind info.Bug.sensor at in
    (match info.Bug.requires_second_failure with
    | Some kind -> plan @ fail_kind ~n:1 kind (at +. 2.0)
    | None -> plan)
  | None -> Alcotest.fail ("no window site for " ^ info.Bug.report)

let profile_for policy workload =
  let config = Campaign.default_config policy workload in
  let profile, _, first = Campaign.profile_and_context config in
  (profile, first)

let apm_profile = lazy (profile_for Policy.apm Workload.auto_box)
let px4_profile = lazy (profile_for Policy.px4 Workload.auto_box)

let check_bug_detected bug =
  let info = Bug.info bug in
  let policy = Policy.of_firmware info.Bug.firmware in
  let profile, golden = Lazy.force (match info.Bug.firmware with
    | Bug.Ardupilot -> apm_profile
    | Bug.Px4 -> px4_profile)
  in
  let plan = bug_scenario golden bug in
  let o =
    run_workload ~enabled:[ bug ] ~seed:1001 ~plan policy Workload.auto_box
  in
  Alcotest.(check bool) (info.Bug.report ^ " flawed path exercised") true
    (List.mem bug o.Sim.triggered_bugs);
  match Monitor.check profile o with
  | Monitor.Unsafe _ -> ()
  | Monitor.Safe -> Alcotest.fail (info.Bug.report ^ " not flagged by the monitor")

let auto_box_bugs =
  (* Bugs whose windows occur in the auto-box mission. APM-4455 needs the
     manual workload and is tested separately. *)
  [
    Bug.Apm_16020; Bug.Apm_16021; Bug.Apm_16027; Bug.Apm_16967; Bug.Apm_16682;
    Bug.Apm_16953; Bug.Px4_17046; Bug.Px4_17057; Bug.Px4_17192; Bug.Px4_17181;
    Bug.Apm_4679; Bug.Apm_5428; Bug.Px4_13291;
  ]

let test_bugs_detected () = List.iter check_bug_detected auto_box_bugs

let test_manual_bug_4455 () =
  let config = Campaign.default_config Policy.apm Workload.manual_box in
  let profile, _, golden = Campaign.profile_and_context config in
  let manual_entry = transition_time golden ~to_mode:"Manual" in
  let plan = fail_kind Sensor.Gps (manual_entry +. 4.0) in
  let o =
    run_workload ~enabled:[ Bug.Apm_4455 ] ~seed:1001 ~plan Policy.apm
      Workload.manual_box
  in
  Alcotest.(check bool) "flawed path" true (List.mem Bug.Apm_4455 o.Sim.triggered_bugs);
  match Monitor.check profile o with
  | Monitor.Unsafe v ->
    Alcotest.(check bool) "fly away or crash" true
      (v.Monitor.symptom = Monitor.Fly_away || v.Monitor.symptom = Monitor.Crash)
  | Monitor.Safe -> Alcotest.fail "4455 not flagged"

let test_guarded_paths_silent () =
  (* With every bug disabled, the same injections must not exercise any
     flawed path. (The runs themselves may still be unsafe for the
     genuinely unrecoverable gyro-pair outages.) *)
  let _, golden = Lazy.force apm_profile in
  List.iter
    (fun bug ->
      let info = Bug.info bug in
      if info.Bug.firmware = Bug.Ardupilot then begin
        let plan = bug_scenario golden bug in
        let o = run_workload ~enabled:[] ~seed:1001 ~plan Policy.apm Workload.auto_box in
        Alcotest.(check bool) (info.Bug.report ^ " stays silent") true
          (o.Sim.triggered_bugs = [])
      end)
    [ Bug.Apm_16020; Bug.Apm_16021; Bug.Apm_16027; Bug.Apm_16682 ]

let test_guarded_baro_flight_is_safe () =
  let profile, golden = Lazy.force apm_profile in
  let takeoff = transition_time golden ~to_mode:"Takeoff" in
  let o =
    run_workload ~enabled:[] ~seed:1001
      ~plan:(fail_kind Sensor.Barometer (takeoff +. 0.1))
      Policy.apm Workload.auto_box
  in
  Alcotest.(check bool) "no crash" true (o.Sim.crash = None);
  match Monitor.check profile o with
  | Monitor.Safe -> ()
  | Monitor.Unsafe v -> Alcotest.fail ("guarded baro flagged: " ^ Monitor.describe v)

let test_single_failures_safe () =
  (* Failing any single primary instance mid-mission fails over and stays
     safe. The battery monitor (no backup) is exempt: its loss is a real
     failsafe. *)
  let profile, _ = Lazy.force apm_profile in
  List.iter
    (fun kind ->
      let plan = [ { Avis_hinj.Hinj.sensor = { Sensor.kind; index = 0 }; at = 12.0 } ] in
      let o = run_workload ~enabled:[] ~seed:1001 ~plan Policy.apm Workload.auto_box in
      match Monitor.check profile o with
      | Monitor.Safe -> ()
      | Monitor.Unsafe v ->
        Alcotest.fail
          (Printf.sprintf "single %s flagged: %s" (Sensor.kind_to_string kind)
             (Monitor.describe v)))
    [ Sensor.Accelerometer; Sensor.Gyroscope; Sensor.Gps; Sensor.Compass;
      Sensor.Barometer ]

let test_campaign_finds_bugs () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = 1500.0;
    }
  in
  let result = Campaign.run config ~strategy:(fun ctx -> Sabre.make ctx) in
  Alcotest.(check bool) "found unsafe conditions" true
    (Campaign.unsafe_count result >= 3);
  Alcotest.(check bool) "attributed to registered bugs" true
    (Campaign.found_bug result Bug.Apm_16021
    || Campaign.found_bug result Bug.Apm_16027)

let test_campaign_deterministic () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = 300.0;
    }
  in
  let a = Campaign.run config ~strategy:(fun ctx -> Sabre.make ctx) in
  let b = Campaign.run config ~strategy:(fun ctx -> Sabre.make ctx) in
  Alcotest.(check int) "same simulations" a.Campaign.simulations b.Campaign.simulations;
  Alcotest.(check int) "same findings" (Campaign.unsafe_count a) (Campaign.unsafe_count b)

let test_replay_reproduces () =
  let config =
    {
      (Campaign.default_config Policy.apm Workload.auto_box) with
      Campaign.budget_s = 1200.0;
    }
  in
  let result =
    Campaign.run ~stop_when:(fun _ -> true) config
      ~strategy:(fun ctx -> Sabre.make ctx)
  in
  match result.Campaign.findings with
  | [] -> Alcotest.fail "no finding to replay"
  | finding :: _ ->
    let r =
      Replay.replay ~config ~profile:result.Campaign.profile ~seed:777
        finding.Campaign.report
    in
    Alcotest.(check bool) "reproduced under a new seed" true r.Replay.reproduced

let test_monitor_flags_takeoff_failure_symptom () =
  let config = Campaign.default_config Policy.px4 Workload.auto_box in
  let profile, _, golden = Campaign.profile_and_context config in
  let takeoff = transition_time golden ~to_mode:"Takeoff" in
  let o =
    run_workload ~enabled:[ Bug.Px4_17181 ] ~seed:1001
      ~plan:(fail_kind Sensor.Barometer (takeoff +. 0.1))
      Policy.px4 Workload.auto_box
  in
  match Monitor.check profile o with
  | Monitor.Unsafe v ->
    Alcotest.(check string) "classified as takeoff failure" "Takeoff Failure"
      (Monitor.symptom_to_string v.Monitor.symptom)
  | Monitor.Safe -> Alcotest.fail "17181 not flagged"

let () =
  Alcotest.run "avis_integration"
    [
      ( "golden",
        [
          Alcotest.test_case "all workloads pass" `Slow test_golden_runs;
          Alcotest.test_case "fence respected" `Quick test_fence_respected;
        ] );
      ( "bugs",
        [
          Alcotest.test_case "all auto-box bugs detected" `Slow test_bugs_detected;
          Alcotest.test_case "manual workload bug (4455)" `Quick test_manual_bug_4455;
          Alcotest.test_case "guarded paths silent" `Slow test_guarded_paths_silent;
          Alcotest.test_case "guarded baro safe" `Quick test_guarded_baro_flight_is_safe;
          Alcotest.test_case "single failures safe" `Slow test_single_failures_safe;
          Alcotest.test_case "takeoff-failure symptom" `Quick test_monitor_flags_takeoff_failure_symptom;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "finds bugs" `Slow test_campaign_finds_bugs;
          Alcotest.test_case "deterministic" `Slow test_campaign_deterministic;
          Alcotest.test_case "replay reproduces" `Slow test_replay_reproduces;
        ] );
    ]
