(* Tests for avis_hinj: the clean-failure fault model and the
   mode-transition log. *)

open Avis_sensors
open Avis_hinj

let gps0 = { Sensor.kind = Sensor.Gps; index = 0 }
let gps1 = { Sensor.kind = Sensor.Gps; index = 1 }

let test_healthy_without_plan () =
  let h = Hinj.create () in
  Alcotest.(check bool) "healthy" true
    (Hinj.sensor_read h ~time:1.0 gps0 = Hinj.Healthy)

let test_failure_starts_at_time () =
  let h = Hinj.create ~plan:[ { Hinj.sensor = gps0; at = 5.0 } ] () in
  Alcotest.(check bool) "before" true (Hinj.sensor_read h ~time:4.99 gps0 = Hinj.Healthy);
  Alcotest.(check bool) "at" true (Hinj.sensor_read h ~time:5.0 gps0 = Hinj.Failed);
  Alcotest.(check bool) "after (no recovery)" true
    (Hinj.sensor_read h ~time:100.0 gps0 = Hinj.Failed)

let test_failure_is_per_instance () =
  let h = Hinj.create ~plan:[ { Hinj.sensor = gps0; at = 0.0 } ] () in
  Alcotest.(check bool) "other instance fine" true
    (Hinj.sensor_read h ~time:10.0 gps1 = Hinj.Healthy)

let test_read_count () =
  let h = Hinj.create () in
  for _ = 1 to 7 do
    ignore (Hinj.sensor_read h ~time:0.0 gps0)
  done;
  Alcotest.(check int) "counted" 7 (Hinj.read_count h);
  ignore (Hinj.is_failed h ~time:0.0 gps0);
  Alcotest.(check int) "is_failed does not count" 7 (Hinj.read_count h)

let test_mode_transitions () =
  let h = Hinj.create () in
  Hinj.update_mode h ~time:0.0 "Pre-Flight";
  Hinj.update_mode h ~time:2.0 "Takeoff";
  Hinj.update_mode h ~time:2.5 "Takeoff";
  Hinj.update_mode h ~time:10.0 "Waypoint 1";
  let transitions = Hinj.transitions h in
  Alcotest.(check int) "two transitions" 2 (List.length transitions);
  let first = List.hd transitions in
  Alcotest.(check string) "from" "Pre-Flight" first.Hinj.from_mode;
  Alcotest.(check string) "to" "Takeoff" first.Hinj.to_mode;
  Alcotest.(check (float 1e-9)) "time" 2.0 first.Hinj.time

let test_mode_at () =
  let h = Hinj.create () in
  Hinj.update_mode h ~time:0.0 "Pre-Flight";
  Hinj.update_mode h ~time:2.0 "Takeoff";
  Hinj.update_mode h ~time:10.0 "Waypoint 1";
  Alcotest.(check (option string)) "initial" (Some "Pre-Flight") (Hinj.mode_at h 1.0);
  Alcotest.(check (option string)) "mid" (Some "Takeoff") (Hinj.mode_at h 5.0);
  Alcotest.(check (option string)) "late" (Some "Waypoint 1") (Hinj.mode_at h 99.0)

let test_injected_so_far () =
  let h =
    Hinj.create
      ~plan:[ { Hinj.sensor = gps0; at = 5.0 }; { Hinj.sensor = gps1; at = 9.0 } ]
      ()
  in
  Alcotest.(check int) "none yet" 0 (List.length (Hinj.injected_so_far h ~time:1.0));
  Alcotest.(check int) "one" 1 (List.length (Hinj.injected_so_far h ~time:6.0));
  Alcotest.(check int) "both" 2 (List.length (Hinj.injected_so_far h ~time:20.0))

let () =
  Alcotest.run "avis_hinj"
    [
      ( "faults",
        [
          Alcotest.test_case "healthy without plan" `Quick test_healthy_without_plan;
          Alcotest.test_case "failure timing" `Quick test_failure_starts_at_time;
          Alcotest.test_case "per instance" `Quick test_failure_is_per_instance;
          Alcotest.test_case "read count" `Quick test_read_count;
          Alcotest.test_case "injected so far" `Quick test_injected_so_far;
        ] );
      ( "modes",
        [
          Alcotest.test_case "transitions" `Quick test_mode_transitions;
          Alcotest.test_case "mode_at" `Quick test_mode_at;
        ] );
    ]
