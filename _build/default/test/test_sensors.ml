(* Tests for avis_sensors: identities, roles, noise channels and the
   vehicle's sensor suite. *)

open Avis_geo
open Avis_sensors

let world = Avis_physics.World.create ~position:(Vec3.make 1.0 2.0 10.0) ()

let fresh_suite seed = Suite.create ~rng:(Avis_util.Rng.create seed) ()

let test_roles () =
  Alcotest.(check bool) "index 0 primary" true
    (Sensor.role_of { Sensor.kind = Sensor.Gps; index = 0 } = Sensor.Primary);
  Alcotest.(check bool) "index 1 backup" true
    (Sensor.role_of { Sensor.kind = Sensor.Gps; index = 1 } = Sensor.Backup)

let test_kind_string_roundtrip () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) "roundtrip" true
        (Sensor.kind_of_string (Sensor.kind_to_string kind) = Some kind))
    Sensor.all_kinds;
  Alcotest.(check bool) "unknown" true (Sensor.kind_of_string "radar" = None)

let test_complement_instances () =
  let ids = Suite.instances_of_complement Suite.iris_complement in
  Alcotest.(check int) "11 instances" 11 (List.length ids);
  let gps = List.filter (fun i -> i.Sensor.kind = Sensor.Gps) ids in
  Alcotest.(check int) "two gps" 2 (List.length gps)

let test_reading_kinds_match () =
  let suite = fresh_suite 1 in
  List.iter
    (fun id ->
      let reading = Suite.read suite world id in
      Alcotest.(check bool)
        (Sensor.id_to_string id ^ " kind matches") true
        (Sensor.reading_kind reading = id.Sensor.kind))
    (Suite.instances suite)

let test_unknown_instance () =
  let suite = fresh_suite 1 in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Suite.read: unknown instance battery[5]") (fun () ->
      ignore (Suite.read suite world { Sensor.kind = Sensor.Battery; index = 5 }))

let test_gps_reads_near_truth () =
  let suite = fresh_suite 2 in
  let sum = ref Vec3.zero in
  let n = 200 in
  for _ = 1 to n do
    match Suite.read suite world { Sensor.kind = Sensor.Gps; index = 0 } with
    | Sensor.Gps_fix { position; _ } -> sum := Vec3.add !sum position
    | _ -> Alcotest.fail "expected gps fix"
  done;
  let mean = Vec3.scale (1.0 /. float_of_int n) !sum in
  Alcotest.(check bool) "horizontal mean near truth" true
    (Vec3.norm (Vec3.horizontal (Vec3.sub mean (Vec3.make 1.0 2.0 0.0))) < 1.5);
  Alcotest.(check bool) "vertical mean within bias range" true
    (Float.abs (mean.Vec3.z -. 10.0) < 5.0)

let test_baro_tracks_altitude () =
  let suite = fresh_suite 3 in
  match Suite.read suite world { Sensor.kind = Sensor.Barometer; index = 0 } with
  | Sensor.Pressure_alt alt ->
    Alcotest.(check bool) "near 10 m" true (Float.abs (alt -. 10.0) < 2.0)
  | _ -> Alcotest.fail "expected pressure altitude"

let test_instances_have_distinct_biases () =
  let suite = fresh_suite 4 in
  let avg index =
    let sum = ref 0.0 in
    for _ = 1 to 500 do
      match Suite.read suite world { Sensor.kind = Sensor.Barometer; index } with
      | Sensor.Pressure_alt alt -> sum := !sum +. alt
      | _ -> ()
    done;
    !sum /. 500.0
  in
  Alcotest.(check bool) "different instances differ" true
    (Float.abs (avg 0 -. avg 1) > 0.01)

let test_suite_determinism () =
  let read_seq seed =
    let suite = Suite.create ~rng:(Avis_util.Rng.create seed) () in
    List.init 10 (fun _ ->
        match Suite.read suite world { Sensor.kind = Sensor.Compass; index = 0 } with
        | Sensor.Heading h -> h
        | _ -> nan)
  in
  Alcotest.(check (list (float 1e-12))) "same seed same readings"
    (read_seq 7) (read_seq 7)

let test_battery_discharges () =
  let suite = fresh_suite 5 in
  Alcotest.(check (float 1e-9)) "full at start" 1.0 (Suite.battery_remaining suite);
  for _ = 1 to 2500 do
    Suite.tick suite world ~dt:0.004
  done;
  let remaining = Suite.battery_remaining suite in
  Alcotest.(check bool) "drained a little" true (remaining < 1.0 && remaining > 0.9)

let test_battery_reading_tracks_charge () =
  let suite = fresh_suite 6 in
  Suite.drain_battery_to suite 0.5;
  match Suite.read suite world { Sensor.kind = Sensor.Battery; index = 0 } with
  | Sensor.Battery_state { voltage; remaining } ->
    Alcotest.(check (float 1e-9)) "remaining" 0.5 remaining;
    Alcotest.(check bool) "voltage mid-range" true (voltage > 11.0 && voltage < 11.8)
  | _ -> Alcotest.fail "expected battery state"

let test_drain_clamped () =
  let suite = fresh_suite 7 in
  Suite.drain_battery_to suite 2.0;
  Alcotest.(check (float 1e-9)) "clamped to 1" 1.0 (Suite.battery_remaining suite);
  Suite.drain_battery_to suite (-1.0);
  Alcotest.(check (float 1e-9)) "clamped to 0" 0.0 (Suite.battery_remaining suite)

let test_noise_channel_bias_is_stable () =
  let rng = Avis_util.Rng.create 9 in
  let ch = Noise.channel rng Noise.gps_vertical in
  let n = 2000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Noise.sample ch ~dt:0.0 ~truth:0.0
  done;
  let mean1 = !sum /. float_of_int n in
  sum := 0.0;
  for _ = 1 to n do
    sum := !sum +. Noise.sample ch ~dt:0.0 ~truth:0.0
  done;
  let mean2 = !sum /. float_of_int n in
  Alcotest.(check bool) "bias persists" true (Float.abs (mean1 -. mean2) < 0.25)

let () =
  Alcotest.run "avis_sensors"
    [
      ( "sensor",
        [
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "kind strings" `Quick test_kind_string_roundtrip;
        ] );
      ( "suite",
        [
          Alcotest.test_case "complement" `Quick test_complement_instances;
          Alcotest.test_case "reading kinds" `Quick test_reading_kinds_match;
          Alcotest.test_case "unknown instance" `Quick test_unknown_instance;
          Alcotest.test_case "gps near truth" `Quick test_gps_reads_near_truth;
          Alcotest.test_case "baro tracks" `Quick test_baro_tracks_altitude;
          Alcotest.test_case "distinct biases" `Quick test_instances_have_distinct_biases;
          Alcotest.test_case "determinism" `Quick test_suite_determinism;
        ] );
      ( "battery",
        [
          Alcotest.test_case "discharges" `Quick test_battery_discharges;
          Alcotest.test_case "reading tracks charge" `Quick test_battery_reading_tracks_charge;
          Alcotest.test_case "drain clamped" `Quick test_drain_clamped;
        ] );
      ( "noise",
        [ Alcotest.test_case "bias stable" `Quick test_noise_channel_bias_is_stable ] );
    ]
