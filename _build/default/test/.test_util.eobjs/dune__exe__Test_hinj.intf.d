test/test_hinj.mli:
