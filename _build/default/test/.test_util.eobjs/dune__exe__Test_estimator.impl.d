test/test_estimator.ml: Alcotest Avis_firmware Avis_geo Avis_hinj Avis_physics Avis_sensors Avis_util Drivers Estimator Float List Params Quat Sensor Suite Vec3
