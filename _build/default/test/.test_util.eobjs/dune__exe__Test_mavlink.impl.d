test/test_mavlink.ml: Alcotest Avis_mavlink Avis_util Buf Bytes Char Crc Float Frame Gcs Link List Msg Printf QCheck QCheck_alcotest String
