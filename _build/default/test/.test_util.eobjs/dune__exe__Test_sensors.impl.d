test/test_sensors.ml: Alcotest Avis_geo Avis_physics Avis_sensors Avis_util Float List Noise Sensor Suite Vec3
