test/test_util.ml: Alcotest Array Avis_util Float Fun List Rng Stats String Table
