test/test_geo.ml: Alcotest Avis_geo Float Format Geodesy QCheck QCheck_alcotest Quat Vec3
