test/test_sensors.mli:
