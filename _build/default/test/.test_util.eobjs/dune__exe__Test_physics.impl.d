test/test_physics.ml: Airframe Alcotest Array Avis_geo Avis_physics Avis_util Environment Float Motor Rigid_body Vec3 World
