test/test_core.ml: Alcotest Avis_bugstudy Avis_core Avis_hinj Avis_sensors Bfi_model Budget Float List Mode_graph Prune QCheck QCheck_alcotest Report Scenario Sensor
