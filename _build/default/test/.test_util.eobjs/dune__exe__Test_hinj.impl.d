test/test_hinj.ml: Alcotest Avis_hinj Avis_sensors Hinj List Sensor
