test/test_integration.ml: Alcotest Avis_core Avis_firmware Avis_hinj Avis_sensors Avis_sitl Bug Campaign Float Lazy List Monitor Phase Policy Printf Replay Sabre Sensor Sim Workload
