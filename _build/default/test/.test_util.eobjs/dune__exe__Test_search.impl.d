test/test_search.ml: Alcotest Avis_core Avis_sensors Avis_util Bfi Bfs Dfs Float List Random_search Sabre Scenario Search Sensor Strat_bfi Suite
